(* Regenerates every figure and experiment series of the paper; see
   DESIGN.md for the experiment index and EXPERIMENTS.md for the
   paper-vs-measured record. *)

let std = Format.std_formatter

let experiments =
  [
    ("fig1", "Figure 1: MFM read-back, heated dot peak vanishes", Expt.Figures.fig1);
    ("fig2", "Figure 2: bit state transitions", Expt.Figures.fig2);
    ("fig3", "Figure 3: heated-line medium layout", Expt.Figures.fig3);
    ("fig7", "Figure 7: anisotropy vs annealing temperature", Expt.Figures.fig7);
    ("fig8", "Figure 8: low-angle XRD", Expt.Figures.fig8);
    ("fig9", "Figure 9: high-angle XRD", Expt.Figures.fig9);
    ("ops", "E7: operation cost hierarchy", Expt.Ops.print);
    ("heat", "E8: heat cost & overhead vs line size", Expt.Heatcost.print);
    ("security", "E10: attack/outcome matrix", Expt.Security_matrix.print);
    ("worm", "E11: WORM technology comparison", Expt.Worm_compare.print);
    ("archive", "E12: Venti & fossilised index", Expt.Archive.print);
    ("thermal", "E13: neighbour thermal damage", Expt.Thermal_study.print);
    ("coding", "E14: write-once coding efficiency", Expt.Coding.print);
    ("aging", "E15: device lifetime, WMRM shrink to read-only", Expt.Aging.print);
    ("erb", "E16: erb protocol reliability (reproduction finding)", Expt.Erb_study.print);
    ("media", "E17: media reliability vs the sector ECC budget", Expt.Reliability.print);
    ("fault", "E18: fault injection and RAS recovery", Expt.Fault_study.print);
    ("seek", "E19: sled scheduling for random IO", Expt.Seek_study.print);
    ("queue", "E20: request queueing (depth x policy x scrub)", Expt.Queue_study.print);
    ("cache", "E21: buffer cache (size x read-ahead x Zipf skew)", Expt.Cache_study.print);
    ("endure", "E22: endurance lifecycle (health ledger x migration)", Expt.Endurance_study.print);
    ("array", "E23: sharded array (quorum x degraded mode x rebuild)", Expt.Array_study.print);
    ("qos", "E25: multi-tenant QoS (tenants x arbiter under Zipf)", Expt.Qos_study.print);
    ("fleet", "E26: fleet fan-out (CoW clones x PRNG streams x calendar queue)", Expt.Fleet_study.print);
    ("campaign", "E27: insider campaigns vs a bounded audit budget", Expt.Campaign_study.print);
    ("lfs", "E9: LFS clustering/bimodality study (slowest)", Expt.Lfs_study.print);
  ]

let set_jobs = function None -> () | Some n -> Sim.Pool.set_jobs n

let run_one jobs name =
  set_jobs jobs;
  match List.find_opt (fun (n, _, _) -> String.equal n name) experiments with
  | Some (_, _, f) ->
      f std;
      Format.pp_print_flush std ();
      `Ok ()
  | None -> `Error (false, Printf.sprintf "unknown experiment %S" name)

let run_all jobs () =
  set_jobs jobs;
  List.iter
    (fun (name, _, f) ->
      Format.fprintf std "@.===== %s =====@." name;
      f std)
    experiments;
  Format.pp_print_flush std ();
  `Ok ()

open Cmdliner

let jobs_arg =
  let doc =
    "Worker domains for the parallel sweeps (E13, E16, E17, E18).  \
     Defaults to $(b,SERO_JOBS) or the core count; the output is \
     bit-identical for any value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let list_cmd =
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc)
    (Term.(
       const (fun () ->
           List.iter
             (fun (n, d, _) -> Printf.printf "%-10s %s\n" n d)
             experiments;
           `Ok ())
       $ const ())
    |> Term.ret)

let run_cmd =
  let name_arg =
    let doc = "Experiment to run (see $(b,list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let doc = "Run one experiment and print its series." in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run_one $ jobs_arg $ name_arg))

let all_cmd =
  let doc = "Run every experiment in order." in
  Cmd.v (Cmd.info "all" ~doc) Term.(ret (const run_all $ jobs_arg $ const ()))

let () =
  let doc = "regenerate the figures and experiments of the SERO paper" in
  let info = Cmd.info "experiments" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd ]))
