(* serotool — drive a simulated SERO device image from the shell.

   A device lives in an image file; every subcommand loads it, performs
   one operation through the same stack the experiments use, and saves
   it back, so shell sessions compose like operations on real media:

     serotool mkdev disk.img --blocks 2048
     serotool mkfs disk.img
     echo 'ledger 2007' | serotool write disk.img /ledger
     serotool heat disk.img /ledger
     serotool verify disk.img /ledger
     serotool attack disk.img mwb-data && serotool verify disk.img /ledger
     serotool fsck disk.img *)

let std = Format.std_formatter
let err fmt = Format.kasprintf (fun s -> `Error (false, s)) fmt

let with_device image f =
  match Sero.Image.load image with
  | Error e -> err "cannot load %s: %s" image e
  | Ok dev -> (
      match f dev with
      | Ok save ->
          if save then Sero.Image.save dev image;
          `Ok ()
      | Error e -> `Error (false, e))

let with_fs image f =
  with_device image (fun dev ->
      match Lfs.Fs.mount dev with
      | Error e -> Error (Printf.sprintf "mount failed: %s" e)
      | Ok fs -> (
          match f dev fs with
          | Ok save ->
              if save then Lfs.Fs.sync fs;
              Ok save
          | Error _ as e -> e))

(* {1 Commands} *)

let mkdev image blocks line_exp ras endurance spares =
  let base = Sero.Device.default_config ~n_blocks:blocks ~line_exp () in
  let config =
    if ras then { base with Sero.Device.ras = Sero.Device.active_ras } else base
  in
  let config =
    match (endurance, spares) with
    | false, None -> config
    | on, sp ->
        let e =
          if on then Sero.Device.active_endurance
          else Sero.Device.default_endurance
        in
        let e =
          match sp with
          | None -> e
          | Some n -> { e with Sero.Device.spare_lines = n }
        in
        { config with Sero.Device.endurance = e }
  in
  match Sero.Device.create config with
  | dev ->
      Sero.Image.save dev image;
      let e = (Sero.Device.config dev).Sero.Device.endurance in
      Format.fprintf std "created %s: %d blocks, lines of %d%s%s@." image blocks
        (1 lsl line_exp)
        (if ras then ", RAS on" else "")
        (if e.Sero.Device.health_enabled then
           Printf.sprintf ", endurance on (%d spares)" e.Sero.Device.spare_lines
         else if e.Sero.Device.spare_lines > 0 then
           Printf.sprintf ", %d spares reserved" e.Sero.Device.spare_lines
         else "");
      Format.pp_print_flush std ();
      `Ok ()
  | exception Invalid_argument e -> err "%s" e

let mkfs image =
  with_device image (fun dev ->
      let _fs = Lfs.Fs.format dev in
      Format.fprintf std "formatted %s@." image;
      Ok true)

let ls image path =
  with_fs image (fun _ fs ->
      match Lfs.Fs.readdir fs path with
      | Error e -> Error e
      | Ok entries ->
          List.iter
            (fun (e : Lfs.Enc.dirent) ->
              Format.fprintf std "%-6s %s@."
                (Format.asprintf "%a" Lfs.Enc.pp_kind e.Lfs.Enc.entry_kind)
                e.Lfs.Enc.name)
            entries;
          Format.pp_print_flush std ();
          Ok false)

let mkdir image path =
  with_fs image (fun _ fs -> Result.map (fun () -> true) (Lfs.Fs.mkdir fs path))

let write image path group =
  with_fs image (fun _ fs ->
      let data = In_channel.input_all In_channel.stdin in
      let create_result =
        if Lfs.Fs.exists fs path then Ok ()
        else Lfs.Fs.create fs ~heat_group:group path
      in
      match create_result with
      | Error e -> Error e
      | Ok () ->
          Result.map (fun () -> true) (Lfs.Fs.write_file fs path ~offset:0 data))

let cat image path =
  with_fs image (fun _ fs ->
      match Lfs.Fs.read_file fs path with
      | Error e -> Error e
      | Ok data ->
          print_string data;
          Ok false)

let rm image path =
  with_fs image (fun _ fs -> Result.map (fun () -> true) (Lfs.Fs.unlink fs path))

let heat image path =
  with_fs image (fun _ fs ->
      match Lfs.Fs.heat fs path with
      | Error e -> Error e
      | Ok r ->
          Format.fprintf std "heated %d lines (%d blocks relocated)@."
            (List.length r.Lfs.Heat.lines)
            r.Lfs.Heat.relocated_blocks;
          Format.pp_print_flush std ();
          Ok true)

let verify image path =
  with_fs image (fun _ fs ->
      match Lfs.Fs.verify fs path with
      | Error e -> Error e
      | Ok verdicts ->
          List.iter
            (fun (line, v) ->
              Format.fprintf std "line %-6d %a@." line Sero.Tamper.pp_verdict v)
            verdicts;
          Format.pp_print_flush std ();
          let bad =
            List.filter (fun (_, v) -> Sero.Tamper.is_tampered v) verdicts
          in
          if bad = [] then Ok false
          else
            Error
              (Printf.sprintf "tamper evidence on %d of %d line(s)"
                 (List.length bad) (List.length verdicts)))

let fsck image =
  with_device image (fun dev ->
      let report = Lfs.Fsck.run dev in
      Format.fprintf std "%a" Lfs.Fsck.pp_report report;
      Format.pp_print_flush std ();
      Ok false)

(* ASCII map of the medium: one character per line (the heat unit). *)
let map_cmd image =
  with_device image (fun dev ->
      let lay = Sero.Device.layout dev in
      let n = Sero.Layout.n_lines lay in
      Format.fprintf std
        "%d lines (%d blocks each); #=heated, .=WMRM, 64 lines per row@." n
        (Sero.Layout.blocks_per_line lay);
      for row = 0 to (n - 1) / 64 do
        Format.fprintf std "%6d " (row * 64);
        for col = 0 to min 63 (n - 1 - (row * 64)) do
          let line = (row * 64) + col in
          Format.pp_print_char std
            (if Sero.Device.is_line_heated dev ~line then '#' else '.')
        done;
        Format.pp_print_newline std ()
      done;
      Format.pp_print_flush std ();
      Ok false)

(* {2 Host front-end commands} *)

let read_text_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Ok s
  | exception Sys_error e -> Error e

let load_command_trace path =
  match read_text_file path with
  | Error e -> Error (Printf.sprintf "trace: %s" e)
  | Ok text -> (
      match Host.Proto.parse_trace text with
      | frames -> Ok frames
      | exception Host.Proto.Proto_error e ->
          Error (Printf.sprintf "trace %s: %s" path e)
      | exception Codec.Binio.R.Truncated ->
          Error (Printf.sprintf "trace %s: truncated frame" path))

let serve_replay image trace_path expect depth rate burst =
  with_device image (fun dev ->
      match load_command_trace trace_path with
      | Error _ as e -> e
      | Ok frames -> (
          let des = Sim.Des.create () in
          let q = Sero.Queue.create des dev in
          let limits_of _ =
            { Host.Server.weight = 1.; max_depth = depth; rate; burst }
          in
          let server =
            Host.Server.create ~limits_of (Host.Server.Device q)
          in
          let rs = Host.Server.replay server frames in
          let out = Host.Server.format_replay rs in
          print_string out;
          flush stdout;
          match expect with
          | Some file -> (
              match read_text_file file with
              | Error e -> Error (Printf.sprintf "expect: %s" e)
              | Ok want ->
                  if String.equal out want then Ok true
                  else
                    let got = String.split_on_char '\n' out
                    and exp = String.split_on_char '\n' want in
                    let rec first_diff i = function
                      | g :: gs, e :: es when String.equal g e ->
                          first_diff (i + 1) (gs, es)
                      | g :: _, e :: _ ->
                          Printf.sprintf "line %d: got %S, expected %S" i g e
                      | g :: _, [] -> Printf.sprintf "line %d: extra %S" i g
                      | [], e :: _ -> Printf.sprintf "line %d: missing %S" i e
                      | [], [] -> "trailing difference"
                    in
                    Error
                      (Printf.sprintf "status mismatch vs %s (%s)" file
                         (first_diff 1 (got, exp))))
          | None ->
              let failed =
                List.length (List.filter Host.Proto.response_failed rs)
              in
              if failed = 0 then Ok true
              else
                Error
                  (Printf.sprintf "%d of %d commands failed a phase" failed
                     (List.length rs))))

let tenants_cmd image trace_path arbiter depth rate burst =
  with_device image (fun dev ->
      match load_command_trace trace_path with
      | Error _ as e -> e
      | Ok frames ->
          let des = Sim.Des.create () in
          let q = Sero.Queue.create des dev in
          let limits_of _ =
            {
              Host.Server.weight = 1.;
              max_depth = depth;
              rate;
              burst;
            }
          in
          let server =
            Host.Server.create ~limits_of (Host.Server.Device q)
          in
          Host.Server.set_policy server arbiter;
          (* Concurrent submission: every frame enters admission at t=0
             and the arbiter decides the service order. *)
          List.iter (Host.Server.submit_frame server) frames;
          Host.Server.drain server;
          Format.fprintf std "%d commands, %d tenants (arbiter %s)@."
            (List.length frames)
            (List.length (Host.Server.tenants server))
            (Host.Arbiter.policy_name arbiter);
          List.iter
            (fun tenant ->
              Format.fprintf std "tenant %-4d %a@." tenant Host.Slo.pp_report
                (Host.Server.report server ~tenant))
            (Host.Server.tenants server);
          Format.pp_print_flush std ();
          let failed =
            List.filter Host.Proto.response_failed
              (Host.Server.responses server)
          in
          if failed = [] then Ok false
          else
            Error
              (Printf.sprintf "%d of %d commands failed a phase"
                 (List.length failed)
                 (List.length frames)))

let replay image trace_path =
  with_fs image (fun _ fs ->
      match Workload.Trace.load trace_path with
      | Error e -> Error (Printf.sprintf "trace: %s" e)
      | Ok ops ->
          let outcome = Workload.Trace.replay fs ops in
          Format.fprintf std "replayed %d operations (%d refused)@."
            outcome.Workload.Trace.applied outcome.Workload.Trace.refused;
          Format.pp_print_flush std ();
          Ok true)

(* The endurance ledger: device state, spares, per-line margins and the
   grown-defect list. *)
let health image limit =
  with_device image (fun dev ->
      let lay = Sero.Device.layout dev in
      let e = (Sero.Device.config dev).Sero.Device.endurance in
      let s = Sero.Device.stats dev in
      Format.fprintf std
        "endurance: %s (lifecycle %s), %d/%d spares left, %d retirements, %d \
         re-attest failures@."
        (Format.asprintf "%a" Sero.Device.pp_device_state
           (Sero.Device.device_state dev))
        (if e.Sero.Device.health_enabled then "on" else "off")
        s.Sero.Device.spare_lines_left e.Sero.Device.spare_lines
        s.Sero.Device.line_retirements s.Sero.Device.reattest_failures;
      let usable = Sero.Layout.usable_lines lay in
      let rows =
        List.filteri (fun i _ -> i < limit)
          (List.sort
             (fun (_, a) (_, b) -> compare (a : float) b)
             (List.init usable (fun l -> (l, Sero.Device.line_margin dev ~line:l))))
      in
      Format.fprintf std "weakest usable lines (of %d):@." usable;
      List.iter
        (fun (l, m) ->
          let h = Sero.Health.line (Sero.Device.health dev) ~line:l in
          Format.fprintf std
            "  line %-5d phys %-5d margin %5.3f  reads %-6d retries %-4d \
             unreadable %-4d defects %-4d%s@."
            l
            (Sero.Device.phys_of_line dev ~line:l)
            m h.Sero.Health.reads h.Sero.Health.retries
            h.Sero.Health.unreadable h.Sero.Health.defect_dots
            (if Sero.Device.line_due dev ~line:l then "  DUE" else ""))
        rows;
      (match Sero.Device.migrations dev with
      | [] -> ()
      | ms ->
          Format.fprintf std "grown-defect list:@.";
          List.iter
            (fun m ->
              Format.fprintf std
                "  line %d: phys %d -> %d%s at t=%g@." m.Sero.Device.m_line
                m.Sero.Device.m_from m.Sero.Device.m_to
                (if m.Sero.Device.m_heated then " (re-attested)" else "")
                m.Sero.Device.m_timestamp)
            ms);
      Format.pp_print_flush std ();
      Ok false)

(* Evacuate one line (or everything the policy says is due). *)
let migrate image line =
  with_device image (fun dev ->
      match line with
      | Some line -> (
          match Sero.Device.evacuate_line dev ~line () with
          | Ok m ->
              Format.fprintf std "line %d migrated: phys %d -> %d%s@."
                m.Sero.Device.m_line m.Sero.Device.m_from m.Sero.Device.m_to
                (if m.Sero.Device.m_heated then " (re-attested)" else "");
              Format.pp_print_flush std ();
              Ok true
          | Error e ->
              Error
                (Format.asprintf "migrate line %d: %a" line
                   Sero.Device.pp_migrate_error e)
          | exception Invalid_argument e -> Error e)
      | None ->
          let ms = Sero.Device.maintenance dev () in
          if ms = [] then Format.fprintf std "no line is due for migration@."
          else
            List.iter
              (fun m ->
                Format.fprintf std "line %d migrated: phys %d -> %d%s@."
                  m.Sero.Device.m_line m.Sero.Device.m_from m.Sero.Device.m_to
                  (if m.Sero.Device.m_heated then " (re-attested)" else ""))
              ms;
          Format.pp_print_flush std ();
          Ok (ms <> []))

let stats image =
  with_device image (fun dev ->
      Format.fprintf std "%a@." Sero.Device.pp_stats (Sero.Device.stats dev);
      Format.pp_print_flush std ();
      Ok false)

(* Replay a trace through the asynchronous request pipeline instead of
   the direct device path, then print what the queue measured. *)
let queue_stats image trace_path policy no_coalesce =
  with_fs image (fun dev fs ->
      match Workload.Trace.load trace_path with
      | Error e -> Error (Printf.sprintf "trace: %s" e)
      | Ok ops ->
          let des = Sim.Des.create () in
          let q =
            Sero.Queue.create ~policy ~coalesce:(not no_coalesce) des dev
          in
          Lfs.Fs.attach_queue fs q;
          let outcome = Workload.Trace.replay fs ops in
          Sero.Queue.drain q;
          Format.fprintf std
            "replayed %d operations (%d refused) through the pipeline@."
            outcome.Workload.Trace.applied outcome.Workload.Trace.refused;
          Format.fprintf std "%a" Sero.Queue.pp_summary q;
          let fg = Sero.Queue.Foreground in
          let n = Sero.Queue.completed q fg
          and t_end = Sero.Queue.last_completion q fg in
          if t_end > 0. then
            Format.fprintf std "  foreground throughput: %.0f requests/s@."
              (float_of_int n /. t_end);
          Format.pp_print_flush std ();
          Ok true)

(* Replay a trace through the buffer cache over the request pipeline and
   print what the cache absorbed vs what reached the sled. *)
let cache_stats image trace_path policy capacity read_ahead =
  with_fs image (fun dev fs ->
      match Workload.Trace.load trace_path with
      | Error e -> Error (Printf.sprintf "trace: %s" e)
      | Ok ops ->
          let des = Sim.Des.create () in
          let q = Sero.Queue.create ~policy des dev in
          let bc = Sero.Bcache.create ~capacity ~read_ahead q in
          Lfs.Fs.attach_cache fs bc;
          let outcome = Workload.Trace.replay fs ops in
          Sero.Bcache.sync bc;
          Format.fprintf std
            "replayed %d operations (%d refused) through the cache@."
            outcome.Workload.Trace.applied outcome.Workload.Trace.refused;
          Format.fprintf std "%a" Sero.Bcache.pp_stats bc;
          Format.fprintf std "%a" Sero.Queue.pp_summary q;
          Format.pp_print_flush std ();
          Ok true)

(* Deterministic fault injection against the image: persistent magnetic
   bit-flips, and optionally a torn burn (power cut mid-heat) on one
   line.  Heated dots are immune to flips, exactly as on the medium. *)
let inject image seed flips tear tear_cells =
  with_device image (fun dev ->
      let med = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
      let rng = Sim.Prng.create seed in
      let n = Pmedia.Medium.size med in
      let flipped = ref 0 in
      let attempts = ref 0 in
      while !flipped < flips && !attempts < (flips * 100) + 100 do
        incr attempts;
        let dot = Sim.Prng.int rng n in
        match Pmedia.Medium.get med dot with
        | Pmedia.Dot.Magnetised d ->
            Pmedia.Medium.set med dot
              (Pmedia.Dot.Magnetised
                 (match d with
                 | Pmedia.Dot.Up -> Pmedia.Dot.Down
                 | Pmedia.Dot.Down -> Pmedia.Dot.Up));
            incr flipped
        | Pmedia.Dot.Heated -> ()
      done;
      let torn =
        match tear with
        | None -> Ok None
        | Some line
          when line < 0
               || line >= Sero.Layout.n_lines (Sero.Device.layout dev) ->
            Error
              (Printf.sprintf "--tear %d: the image has lines 0..%d" line
                 (Sero.Layout.n_lines (Sero.Device.layout dev) - 1))
        | Some line ->
            let inj =
              Fault.Injector.create
                (Fault.Plan.make ~power_cut_after_ewb:tear_cells ())
            in
            Sero.Device.install_fault dev inj;
            let r =
              match Sero.Device.heat_line dev ~line () with
              | exception Fault.Injector.Power_cut -> Ok (Some (line, inj))
              | Ok _ -> Ok (Some (line, inj))
              | Error e ->
                  Error (Format.asprintf "heat: %a" Sero.Device.pp_heat_error e)
            in
            Sero.Device.clear_fault dev;
            r
      in
      match torn with
      | Error e -> Error e
      | Ok torn ->
          Format.fprintf std "injected %d magnetic flips (seed %d)@." !flipped
            seed;
          (match torn with
          | None -> ()
          | Some (line, inj) ->
              Format.fprintf std
                "tore the burn of line %d after %d cells; ledger:@.%s" line
                tear_cells
                (Fault.Injector.ledger_to_string inj));
          Format.pp_print_flush std ();
          Ok true)

let scrub image threshold deep =
  with_device image (fun dev ->
      let config =
        {
          Sero.Scrub.default_config with
          Sero.Scrub.correction_threshold = threshold;
          deep_verify = deep;
        }
      in
      let report = Sero.Scrub.pass ~config dev in
      Format.fprintf std "%a@." Sero.Scrub.pp_report report;
      Format.pp_print_flush std ();
      Ok true)

let attack_names =
  List.map
    (fun a ->
      let slug =
        String.map
          (fun c -> if c = ' ' || c = '/' || c = '(' || c = ')' then '-' else c)
          (String.lowercase_ascii (Security.Attacks.label a))
      in
      (slug, a))
    Security.Attacks.all

(* Raw-device attacks can run against an image; the FS-level ones need
   the full environment and run in-memory (documented in the output). *)
let attack image name =
  match List.find_opt (fun (n, _) -> String.equal n name) attack_names with
  | None ->
      err "unknown attack %S; one of: %s" name
        (String.concat ", " (List.map fst attack_names))
  | Some (_, a) -> (
      match a with
      | Security.Attacks.Mwb_hash | Security.Attacks.Mwb_data
      | Security.Attacks.Ewb_hash | Security.Attacks.Ewb_data
      | Security.Attacks.Bulk_erase ->
          with_device image (fun dev ->
              let lay = Sero.Device.layout dev in
              let heated =
                List.filter
                  (fun l -> Sero.Device.is_line_heated dev ~line:l)
                  (List.init (Sero.Layout.n_lines lay) (fun l -> l))
              in
              match (heated, a) with
              | [], Security.Attacks.Bulk_erase | _ :: _, _ ->
                  (match a with
                  | Security.Attacks.Mwb_hash ->
                      let line = List.hd heated in
                      Sero.Device.unsafe_write_block dev
                        ~pba:(Sero.Layout.hash_block_of_line lay line)
                        (String.make 512 '\xFF')
                  | Security.Attacks.Mwb_data ->
                      let line = List.hd heated in
                      Sero.Device.unsafe_write_block dev
                        ~pba:(List.hd (Sero.Layout.data_blocks_of_line lay line))
                        "history, rewritten"
                  | Security.Attacks.Ewb_hash ->
                      let line = List.hd heated in
                      Sero.Device.unsafe_heat_dots dev
                        ~dot:(Sero.Layout.wo_first_dot lay ~line)
                        ~n:64
                  | Security.Attacks.Ewb_data ->
                      let line = List.hd heated in
                      Sero.Device.unsafe_heat_dots dev
                        ~dot:
                          (Sero.Layout.block_first_dot lay
                             (List.hd (Sero.Layout.data_blocks_of_line lay line)))
                        ~n:512
                  | _ ->
                      Sero.Device.unsafe_magnetic_wipe dev;
                      Sero.Device.refresh_heated_cache dev);
                  Format.fprintf std
                    "attack %s applied to the image; run verify/fsck to see \
                     the evidence@."
                    name;
                  Format.pp_print_flush std ();
                  Ok true
              | [], _ -> Error "no heated line on this image to attack")
      | _ ->
          (* FS-level attacks need the full host environment; they run on
             a fresh in-memory instance and leave the image untouched. *)
          let outcome = Security.Attacks.run a in
          Format.fprintf std
            "(attack ran on a fresh in-memory environment)@.%s: %a@." name
            Security.Attacks.pp_outcome outcome;
          Format.pp_print_flush std ();
          `Ok ())

(* {1 Array commands}

   An array image is a text manifest plus one member image per device
   (<path>.d<i>); member images are ordinary device images, so every
   single-device subcommand (attack, verify, fsck, ...) works on them
   directly. *)

let with_volume image f =
  match Sarray.Aimage.load image with
  | Error e -> err "cannot load array %s: %s" image e
  | Ok v -> (
      match f v with
      | Ok save ->
          if save then Sarray.Aimage.save v image;
          `Ok ()
      | Error e -> `Error (false, e))

let mkarray image slots replication spares blocks line_exp seed fill =
  match
    Sarray.Volume.create
      (Sarray.Volume.default_config ~slots ~replication ~spares
         ~member_blocks:blocks ~line_exp ~seed ())
  with
  | exception Invalid_argument e -> err "%s" e
  | v ->
      if fill then begin
        (* Deterministic records, every other line heated: enough state
           for attacks, audits and rebuilds straight from the shell. *)
        let m = Sarray.Volume.map v in
        for line = 0 to Sarray.Amap.logical_lines m - 1 do
          for o = 0 to Sarray.Amap.data_blocks_per_line m - 1 do
            let vba = Sarray.Amap.vba_of m ~line ~offset:o in
            ignore
              (Sarray.Volume.write_block v ~vba
                 (Printf.sprintf "array record %d (line %d offset %d)" vba
                    line o))
          done;
          if line mod 2 = 0 then ignore (Sarray.Volume.heat_line v ~line ())
        done;
        Sarray.Volume.flush v
      end;
      Sarray.Aimage.save v image;
      let m = Sarray.Volume.map v in
      Format.fprintf std
        "created array %s: %d slots in %d-way mirrors + %d spares, %d \
         logical lines (%d data blocks)%s@."
        image slots replication spares
        (Sarray.Amap.logical_lines m)
        (Sarray.Amap.n_blocks m)
        (if fill then ", filled, every other line heated" else "");
      Format.pp_print_flush std ();
      `Ok ()

let array_status image do_verify jobs =
  with_volume image (fun v ->
      (* Audit first so the member table below shows the post-audit
         trust ledger. *)
      let report =
        if do_verify then Some (Sarray.Quorum.verify_volume ?jobs v)
        else None
      in
      Format.fprintf std "%a@." Sarray.Volume.pp_stats (Sarray.Volume.stats v);
      let states = Sarray.Volume.member_states v in
      Array.iteri
        (fun dev st ->
          let role =
            match Sarray.Volume.slot_of_dev v ~dev with
            | Some s -> Printf.sprintf "slot %d" s
            | None ->
                if List.mem dev (Sarray.Volume.spare_pool v) then "spare"
                else "carcass"
          in
          Format.fprintf std "  device %d (%-7s) %-12s %a@." dev role
            (Format.asprintf "%a" Sarray.Volume.pp_member_state st)
            Sarray.Trust.pp_entry
            (Sarray.Trust.entry (Sarray.Volume.trust v) ~dev))
        states;
      (match report with
      | Some r -> Format.fprintf std "%a@." Sarray.Quorum.pp_report r
      | None -> ());
      Format.pp_print_flush std ();
      match report with
      | None -> Ok false
      | Some r ->
          (* A verify charged the trust ledger: persist it before the
             verdict decides the exit status, so the image keeps the
             evidence either way and CI can trust the exit code alone. *)
          Sarray.Aimage.save v image;
          let c = r.Sarray.Quorum.counts in
          if
            c.Sarray.Quorum.unattested > 0
            || c.Sarray.Quorum.outvoted_replicas > 0
            || c.Sarray.Quorum.convicted_replicas > 0
            || c.Sarray.Quorum.offline > 0
          then
            Error
              (Printf.sprintf
                 "quorum found evidence: %d unattested and %d offline lines, \
                  %d outvoted + %d convicted replicas"
                 c.Sarray.Quorum.unattested c.Sarray.Quorum.offline
                 c.Sarray.Quorum.outvoted_replicas
                 c.Sarray.Quorum.convicted_replicas)
          else Ok false)

let array_fail image slot tamper replica =
  with_volume image (fun v ->
      match (slot, tamper) with
      | Some slot, None ->
          if slot < 0 || slot >= (Sarray.Volume.cfg v).Sarray.Volume.slots then
            Error (Printf.sprintf "slot %d out of range" slot)
          else begin
            Sarray.Volume.fail_slot v ~slot;
            Format.fprintf std "slot %d lost; volume is now %a@." slot
              Sarray.Volume.pp_volume_state
              (Sarray.Volume.volume_state v);
            Format.pp_print_flush std ();
            Ok true
          end
      | None, Some line ->
          let m = Sarray.Volume.map v in
          if line < 0 || line >= Sarray.Amap.logical_lines m then
            Error (Printf.sprintf "line %d out of range" line)
          else if replica < 0 || replica >= m.Sarray.Amap.replication then
            Error (Printf.sprintf "replica %d out of range" replica)
          else begin
            let slot = List.nth (Sarray.Amap.slots_of_line m line) replica in
            let dev = Sarray.Volume.dev_of_slot v ~slot in
            let d = Sarray.Volume.device v ~dev in
            let lay = Sero.Device.layout d in
            Sero.Device.unsafe_write_block d
              ~pba:
                (Sero.Layout.first_data_block lay
                   (Sarray.Amap.local_line m line))
              "tampered by array-fail";
            Sero.Device.refresh_heated_cache d;
            Format.fprintf std
              "tampered replica %d (slot %d, device %d) of line %d; run \
               array-status --verify to see the quorum's verdict@."
              replica slot dev line;
            Format.pp_print_flush std ();
            Ok true
          end
      | Some _, Some _ -> Error "--slot and --tamper are mutually exclusive"
      | None, None -> Error "one of --slot or --tamper is required")

let array_rebuild image slot force =
  with_volume image (fun v ->
      match Sarray.Rebuild.rebuild_slot ~force v ~slot with
      | Ok r ->
          Format.fprintf std "%a@." Sarray.Rebuild.pp_report r;
          Format.pp_print_flush std ();
          Ok true
      | Error Sarray.Rebuild.No_spare ->
          Error "no pooled spare to rebuild onto"
      | Error Sarray.Rebuild.Slot_healthy ->
          Error
            (Printf.sprintf
               "slot %d is active and trusted; pass --force to rebuild anyway"
               slot)
      | Error (Sarray.Rebuild.No_source l) ->
          Error
            (Printf.sprintf
               "line %d has no surviving source; nothing was committed" l)
      | exception Invalid_argument e -> Error e)

(* One-process large-geometry soak, sized for the CI memory ceiling:
   create, format, write, heat, verify, stream the image out, reload
   it, remount, re-verify and scrub — all without ever materialising a
   whole-device buffer on the OCaml heap.  The bigdev-smoke CI job runs
   this under `ulimit -v`, so a regression that buffers the medium (or
   the image file) shows up as an allocation failure, not a slowdown. *)
let bigdev image blocks line_exp =
  let step fmt =
    Format.kfprintf (fun f -> Format.pp_print_flush f ()) std (fmt ^^ "@.")
  in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let all_intact verdicts =
    List.for_all
      (fun (_, v) -> Sero.Tamper.equal_verdict v Sero.Tamper.Intact)
      verdicts
  in
  let ( let* ) = Result.bind in
  (* The checkpoint lists every segment and must fit one segment's
     payload capacity, so segments have to grow with the device:
     double [segment_lines] until there are ~1k segments.  Derived
     from the layout alone so save and reload agree on the policy. *)
  let scaled_policy lay =
    let usable = Sero.Layout.usable_lines lay in
    let rec fit sl =
      if sl * 1024 >= usable || usable mod (sl * 2) <> 0 then sl
      else fit (sl * 2)
    in
    { Lfs.State.default_policy with Lfs.State.segment_lines = fit 4 }
  in
  (* Device-level sample: a spread of lines in the upper half of the
     device (clear of the LFS log head), derived from the layout alone
     so the writer and the reloader agree on it. *)
  let sample_lines lay =
    let usable = Sero.Layout.usable_lines lay in
    let n = min 64 (usable / 2) in
    List.init n (fun i -> (usable / 2) + (i * (usable / 2) / n))
    |> List.sort_uniq compare
  in
  let record line = Printf.sprintf "bigdev soak line %d" line in
  let verify_sample dev sample =
    List.for_all
      (fun line ->
        Sero.Tamper.equal_verdict
          (Sero.Device.verify_line dev ~line)
          Sero.Tamper.Intact)
      sample
  in
  let lfs_soak dev lay =
    (* LFS lifecycle where the geometry fits its checkpoint and summary
       bounds (the on-medium format caps out around a few thousand
       lines); the device-level soak runs regardless. *)
    match Lfs.Fs.format ~policy:(scaled_policy lay) dev with
    | exception Lfs.State.Fs_error e ->
        step "lfs soak skipped at this geometry (%s)" e;
        Ok None
    | exception Invalid_argument e ->
        step "lfs soak skipped at this geometry (%s)" e;
        Ok None
    | fs ->
        let payload = String.init 65536 (fun i -> Char.chr (i land 0xFF)) in
        let* () = Lfs.Fs.create fs "/soak" in
        let* () = Lfs.Fs.write_file fs "/soak" ~offset:0 payload in
        Lfs.Fs.sync fs;
        let* r = Lfs.Fs.heat fs "/soak" in
        let* verdicts = Lfs.Fs.verify fs "/soak" in
        if not (all_intact verdicts) then fail "tamper verdict after heat"
        else begin
          step "lfs: formatted, wrote /soak, heated %d lines"
            (List.length r.Lfs.Heat.lines);
          Ok (Some (List.length r.Lfs.Heat.lines))
        end
  in
  (* Phases are separate functions so the writer device is provably
     unreachable (its frame is popped) before the reload allocates the
     second medium — the soak peaks at one device even under ulimit. *)
  let phase1 () =
    match
      Sero.Device.create
        (Sero.Device.default_config ~n_blocks:blocks ~line_exp ())
    with
    | exception Invalid_argument e -> fail "%s" e
    | dev ->
        let lay = Sero.Device.layout dev in
        step "created: %d blocks in %d lines" blocks (Sero.Layout.n_lines lay);
        let* lfs_heated = lfs_soak dev lay in
        (* Device-level soak: fill and burn a spread of lines, verify
           each, then stream the image out. *)
        let sample = sample_lines lay in
        let* () =
          List.fold_left
            (fun acc line ->
              let* () = acc in
              let* () =
                List.fold_left
                  (fun acc pba ->
                    let* () = acc in
                    match Sero.Device.write_block dev ~pba (record line) with
                    | Ok () -> Ok ()
                    | Error e ->
                        fail "write pba %d: %s" pba
                          (Format.asprintf "%a" Sero.Device.pp_write_error e))
                  (Ok ())
                  (Sero.Layout.data_blocks_of_line lay line)
              in
              match Sero.Device.heat_line dev ~line () with
              | Ok _ -> Ok ()
              | Error _ -> fail "heat of line %d refused" line)
            (Ok ()) sample
        in
        let* () =
          if verify_sample dev sample then Ok ()
          else fail "device-level verify failed before save"
        in
        Sero.Image.save dev image;
        step "burned+verified %d sample lines; image streamed to %s"
          (List.length sample) image;
        Ok lfs_heated
  in
  let phase2 lfs_heated =
    let* dev = Sero.Image.load image in
    let lay = Sero.Device.layout dev in
    let sample = sample_lines lay in
    let* () =
      if verify_sample dev sample then Ok ()
      else fail "reloaded image fails device-level verification"
    in
    step "reloaded: %d sample lines re-verified intact" (List.length sample);
    let* () =
      match lfs_heated with
      | None -> Ok ()
      | Some heated ->
          let* fs = Lfs.Fs.mount ~policy:(scaled_policy lay) dev in
          let* data = Lfs.Fs.read_file fs "/soak" in
          let* () =
            if String.length data >= 65536 then Ok ()
            else fail "short read-back (%d bytes)" (String.length data)
          in
          let* verdicts = Lfs.Fs.verify fs "/soak" in
          if all_intact verdicts && List.length verdicts = heated then begin
            step "lfs: remounted, read /soak back, %d lines intact" heated;
            Ok ()
          end
          else fail "reloaded lfs fails verification"
    in
    let report = Sero.Scrub.pass dev in
    step "%a" Sero.Scrub.pp_report report;
    let mb w = w * 8 / 1_048_576 in
    step "peak OCaml heap: %d MB" (mb Gc.((quick_stat ()).top_heap_words));
    Ok ()
  in
  let result =
    let* lfs_heated = phase1 () in
    (* The writer device died with phase1's frame; reclaim its off-heap
       store before loading the image back.  Two full majors: on OCaml 5
       one pass can leave unreachable custom blocks unswept, and the
       medium's gigabyte Bigarray must actually be unmapped here for the
       soak to peak at one device. *)
    Gc.full_major ();
    Gc.full_major ();
    phase2 lfs_heated
  in
  match result with Ok () -> `Ok () | Error e -> `Error (false, e)

(* Fleet smoke: a CoW-clone fleet fanned out over Sim.Fleet with keyed
   per-device PRNG streams — the serotool face of E26.  The exit status
   is the check: nonzero if any clone saw a tamper verdict or a failed
   operation, so CI can run it under ulimit -v and trust the result. *)
let fleet_cmd devices ops seed jobs =
  (match jobs with None -> () | Some n -> Sim.Pool.set_jobs n);
  if devices < 1 then `Error (false, "need at least one device")
  else begin
    let f = Expt.Fleet_study.run_fleet ~seed ~ops devices in
    let p50, p95, p99 = Sim.Stats.quantiles f.Expt.Fleet_study.f_lat in
    Format.printf
      "fleet: %d devices (%d jobs), %d ops, %d events, %d scheduler \
       comparisons@."
      f.Expt.Fleet_study.f_devices (Sim.Pool.jobs ())
      f.Expt.Fleet_study.f_ops f.Expt.Fleet_study.f_events
      f.Expt.Fleet_study.f_sched_work;
    Format.printf
      "fleet: latency p50/p95/p99 = %.3f/%.3f/%.3f ms, %d scrub rewrites, \
       %d CoW segments@."
      p50 p95 p99 f.Expt.Fleet_study.f_scrub_rewrites
      f.Expt.Fleet_study.f_cow_segments;
    Format.printf "fleet: peak OCaml heap %d MB@."
      (Gc.((quick_stat ()).top_heap_words) * 8 / 1_048_576);
    if f.Expt.Fleet_study.f_tampers = 0 && f.Expt.Fleet_study.f_fails = 0
    then begin
      Format.printf "fleet: 0 tamper verdicts, 0 failed operations@.";
      `Ok ()
    end
    else
      `Error
        ( false,
          Printf.sprintf "fleet saw %d tamper verdicts, %d failed operations"
            f.Expt.Fleet_study.f_tampers f.Expt.Fleet_study.f_fails )
  end

(* Insider campaign vs. a bounded audit budget — the serotool face of
   E27.  The exit status is the acceptance check: nonzero if any landed
   tamper was still undetected at the campaign horizon, so CI runs the
   reference budget expecting success and the starved budget expecting
   failure. *)
let campaign_cmd attack defender sites budget seed jobs =
  (match jobs with None -> () | Some n -> Sim.Pool.set_jobs n);
  let module C = Security.Campaign in
  let attacks =
    if attack = "all" then Ok C.all_attacks
    else
      match C.attack_of_string attack with
      | Some a -> Ok [ a ]
      | None ->
          Error
            (Printf.sprintf "unknown attack %S (try %s or all)" attack
               (String.concat ", " (List.map C.attack_name C.all_attacks)))
  in
  match attacks with
  | Error e -> `Error (false, e)
  | Ok attacks ->
      let adversary = { C.default_adversary with ops_budget = budget } in
      let results =
        List.map
          (fun a -> C.run ~seed ~sites ~attack:a ~adversary ~defender ())
          attacks
      in
      List.iter2
        (fun a r ->
          Format.printf "campaign %-16s %a@." (C.attack_name a) C.pp_result r)
        attacks results;
      let m = C.merge results in
      Format.printf
        "campaign: %d sites/class, %d tampers landed, %d detected, \
         %d undetected, %d units of audit spend@."
        sites m.C.r_landed m.C.r_detected m.C.r_undetected (C.audit_spend m);
      if m.C.r_undetected = 0 then `Ok ()
      else
        `Error
          ( false,
            Printf.sprintf "campaign: %d tampers escaped the audit budget"
              m.C.r_undetected )

open Cmdliner

let image_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")

let path_arg p = Arg.(required & pos p (some string) None & info [] ~docv:"PATH")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) (Term.ret term)

let () =
  let blocks =
    Arg.(value & opt int 2048 & info [ "blocks" ] ~docv:"N" ~doc:"Device blocks.")
  in
  let line_exp =
    Arg.(
      value & opt int 3 & info [ "line-exp" ] ~docv:"N" ~doc:"Line is 2^N blocks.")
  in
  let group =
    Arg.(
      value & opt int 0
      & info [ "group" ] ~docv:"G" ~doc:"Heat-affinity group for new files.")
  in
  let attack_name =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ATTACK")
  in
  let ras =
    Arg.(
      value & flag
      & info [ "ras" ] ~doc:"Enable the RAS layer (retry, sparing, re-pulse).")
  in
  let endurance =
    Arg.(
      value & flag
      & info [ "endurance" ]
          ~doc:
            "Enable the endurance lifecycle: health-led line retirement \
             onto reserved spares (4 unless $(b,--spares) says otherwise).")
  in
  let spares =
    Arg.(
      value & opt (some int) None
      & info [ "spares" ] ~docv:"N"
          ~doc:
            "Lines reserved for grown-defect remapping (overrides the \
             $(b,--endurance) default; without $(b,--endurance) the spares \
             are reserved but no line retires automatically).")
  in
  let mig_line =
    Arg.(
      value & opt (some int) None
      & info [ "line" ] ~docv:"LINE"
          ~doc:
            "Evacuate this usable line explicitly (default: migrate \
             whatever the health ledger says is due).")
  in
  let health_limit =
    Arg.(
      value & opt int 10
      & info [ "limit" ] ~docv:"N"
          ~doc:"Show the N weakest usable lines (default 10).")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"S" ~doc:"Injection seed.")
  in
  let flips =
    Arg.(
      value & opt int 0
      & info [ "flips" ] ~docv:"N" ~doc:"Persistent magnetic bit-flips.")
  in
  let tear =
    Arg.(
      value & opt (some int) None
      & info [ "tear" ] ~docv:"LINE" ~doc:"Tear the burn of this line.")
  in
  let tear_cells =
    Arg.(
      value & opt int 700
      & info [ "tear-cells" ] ~docv:"K"
          ~doc:"Cut the power after K of 2048 burn pulses.")
  in
  let threshold =
    Arg.(
      value & opt int 6
      & info [ "threshold" ] ~docv:"T"
          ~doc:"Rewrite sectors at or past T corrected RS symbols.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ] ~doc:"Also re-verify heated lines against their hashes.")
  in
  let policy =
    let policy_conv =
      Arg.enum
        [
          ("fifo", Probe.Sched.Fifo);
          ("sstf", Probe.Sched.Sstf);
          ("elevator", Probe.Sched.Elevator);
        ]
    in
    Arg.(
      value
      & opt policy_conv Probe.Sched.Elevator
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Sled scheduling policy: $(b,fifo), $(b,sstf) or $(b,elevator).")
  in
  let no_coalesce =
    Arg.(
      value & flag
      & info [ "no-coalesce" ]
          ~doc:
            "Do not merge adjacent reads into bulk spans (by default the \
             queue coalesces up to 8 consecutive reads per sled pass).")
  in
  let capacity =
    Arg.(
      value & opt int 64
      & info [ "capacity" ] ~docv:"N" ~doc:"Cache capacity in blocks.")
  in
  let read_ahead =
    Arg.(
      value & opt int 8
      & info [ "read-ahead" ] ~docv:"N"
          ~doc:"Blocks prefetched past each cache miss (0 disables).")
  in
  let arr_slots =
    Arg.(
      value & opt int 4
      & info [ "slots" ] ~docv:"N" ~doc:"Data-bearing array slots.")
  in
  let arr_replication =
    Arg.(
      value & opt int 2
      & info [ "replication" ] ~docv:"R"
          ~doc:"Replicas per logical line (must divide $(b,--slots)).")
  in
  let arr_spares =
    Arg.(
      value & opt int 1
      & info [ "spares" ] ~docv:"N" ~doc:"Pooled spare devices.")
  in
  let arr_blocks =
    Arg.(
      value & opt int 256
      & info [ "blocks" ] ~docv:"N" ~doc:"Blocks per member device.")
  in
  let arr_seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"Base member seed (member $(i,i) gets S+$(i,i)).")
  in
  let arr_fill =
    Arg.(
      value & flag
      & info [ "fill" ]
          ~doc:
            "Write deterministic records to every data block and heat \
             every other line, so the fresh array is ready for attacks, \
             audits and rebuilds.")
  in
  let arr_verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Also run the cross-device attestation quorum over every line \
             and persist the updated trust ledger.")
  in
  let arr_jobs =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the quorum fan-out (byte-identical output \
             for any value).")
  in
  let fleet_devices =
    Arg.(
      value & opt int 256
      & info [ "devices" ] ~docv:"N" ~doc:"Cloned devices to simulate.")
  in
  let fleet_ops =
    Arg.(
      value
      & opt int Expt.Fleet_study.default_ops
      & info [ "ops" ] ~docv:"N" ~doc:"Open-loop operations per device.")
  in
  let fleet_seed =
    Arg.(
      value & opt int 0xE26
      & info [ "seed" ] ~docv:"S"
          ~doc:"Fleet seed (device $(i,i) draws from stream (S, i)).")
  in
  let campaign_attack =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"ATTACK"
          ~doc:
            "Attack class (selective-tamper, scrubber-race, carcass-replay, \
             spare-exhaustion, mirror-split) or $(b,all).")
  in
  let campaign_defender =
    let defender_conv =
      Arg.enum
        [
          ("reference", Security.Campaign.reference_defender);
          ("scrub-only", Security.Campaign.scrub_only_defender);
          ("starved", Security.Campaign.starved_defender);
        ]
    in
    Arg.(
      value
      & opt defender_conv Security.Campaign.reference_defender
      & info [ "defender" ] ~docv:"BUDGET"
          ~doc:
            "Audit budget: $(b,reference) (sampled deep scrub + line \
             audits, default), $(b,scrub-only) or $(b,starved).")
  in
  let campaign_sites =
    Arg.(
      value & opt int 4
      & info [ "sites" ] ~docv:"N" ~doc:"Fleet sites per attack class.")
  in
  let campaign_budget =
    Arg.(
      value
      & opt int Security.Campaign.default_adversary.Security.Campaign.ops_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Attack operations per compromised site.")
  in
  let campaign_seed =
    Arg.(
      value & opt int 0xE27
      & info [ "seed" ] ~docv:"S"
          ~doc:"Campaign seed (site $(i,i) draws from stream (S, i)).")
  in
  let arr_fail_slot =
    Arg.(
      value & opt (some int) None
      & info [ "slot" ] ~docv:"SLOT" ~doc:"Lose this slot's whole device.")
  in
  let arr_tamper =
    Arg.(
      value & opt (some int) None
      & info [ "tamper" ] ~docv:"LINE"
          ~doc:
            "Magnetically rewrite one replica of this volume line under \
             its burned hash (pick the replica with $(b,--replica)).")
  in
  let arr_replica =
    Arg.(
      value & opt int 0
      & info [ "replica" ] ~docv:"R"
          ~doc:"Replica ordinal for $(b,--tamper) (default 0).")
  in
  let arr_rebuild_slot =
    Arg.(
      required
      & opt (some int) None
      & info [ "slot" ] ~docv:"SLOT" ~doc:"Slot to rebuild onto a spare.")
  in
  let arr_force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:"Rebuild even if the slot's member is active and trusted.")
  in
  let expect =
    Arg.(
      value & opt (some string) None
      & info [ "expect" ] ~docv:"FILE"
          ~doc:
            "Compare the replay output against this golden file; any \
             difference (extra, missing or changed status line) exits \
             nonzero and leaves the image unmodified.")
  in
  let arbiter =
    let arbiter_conv =
      Arg.enum
        [
          ("blind", Host.Arbiter.Tenant_blind);
          ("fifo", Host.Arbiter.Arrival_order);
          ("wfs", Host.Arbiter.Fair_share (fun _ -> 1.));
        ]
    in
    Arg.(
      value
      & opt arbiter_conv (Host.Arbiter.Fair_share (fun _ -> 1.))
      & info [ "arbiter" ] ~docv:"POLICY"
          ~doc:
            "Tenant arbiter: $(b,wfs) (weighted fair share, default), \
             $(b,fifo) (arrival order) or $(b,blind) (no arbiter).")
  in
  let tenant_depth =
    Arg.(
      value & opt int max_int
      & info [ "depth" ] ~docv:"N" ~absent:"unlimited"
          ~doc:
            "Per-tenant in-flight command limit; the N+1st concurrent \
             command is refused with REJECTED_DEPTH.")
  in
  let tenant_rate =
    Arg.(
      value & opt float infinity
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Per-tenant token-bucket refill (commands per simulated \
             second); an empty bucket refuses with REJECTED_RATE.")
  in
  let tenant_burst =
    Arg.(
      value & opt float infinity
      & info [ "burst" ] ~docv:"B" ~doc:"Token-bucket capacity.")
  in
  let cmds =
    [
      cmd "mkdev" "Create a fresh device image."
        Term.(const mkdev $ image_arg $ blocks $ line_exp $ ras $ endurance
              $ spares);
      cmd "bigdev"
        "Large-geometry soak: create, format, heat, verify, stream-save, \
         reload, remount and scrub a device in one process (run under \
         ulimit -v to prove O(1)-per-line memory)."
        Term.(const bigdev $ image_arg $ blocks $ line_exp);
      cmd "mkfs" "Format the SERO file system." Term.(const mkfs $ image_arg);
      cmd "ls" "List a directory." Term.(const ls $ image_arg $ path_arg 1);
      cmd "mkdir" "Create a directory."
        Term.(const mkdir $ image_arg $ path_arg 1);
      cmd "write" "Write stdin to a file (created if needed)."
        Term.(const write $ image_arg $ path_arg 1 $ group);
      cmd "cat" "Print a file." Term.(const cat $ image_arg $ path_arg 1);
      cmd "rm" "Unlink a file." Term.(const rm $ image_arg $ path_arg 1);
      cmd "heat" "Make a file tamper-evident (burn per-line hashes)."
        Term.(const heat $ image_arg $ path_arg 1);
      cmd "verify" "Verify a heated file against its burned hashes."
        Term.(const verify $ image_arg $ path_arg 1);
      cmd "fsck" "Forensic scan: recover heated files from the raw medium."
        Term.(const fsck $ image_arg);
      cmd "stats" "Device statistics." Term.(const stats $ image_arg);
      cmd "health"
        "Endurance ledger: device state, spare pool, per-line margins and \
         the grown-defect list."
        Term.(const health $ image_arg $ health_limit);
      cmd "migrate"
        "Evacuate weakening lines onto spares (re-attesting heated lines)."
        Term.(const migrate $ image_arg $ mig_line);
      cmd "map" "ASCII map of heated vs WMRM lines."
        Term.(const map_cmd $ image_arg);
      cmd "replay" "Replay a recorded operation trace onto the image."
        Term.(const replay $ image_arg $ path_arg 1);
      cmd "serve-replay"
        "Replay a golden command trace (hex frames, one per line) through \
         the host front-end, printing one status line per response; exits \
         nonzero on any failed phase, or on any difference from \
         $(b,--expect)."
        Term.(
          const serve_replay $ image_arg $ path_arg 1 $ expect $ tenant_depth
          $ tenant_rate $ tenant_burst);
      cmd "tenants"
        "Replay a command trace concurrently under the tenant arbiter and \
         admission limits, printing each tenant's SLO ledger (latency \
         p50/p95/p99, energy, rejections); exits nonzero on any failed \
         phase."
        Term.(
          const tenants_cmd $ image_arg $ path_arg 1 $ arbiter $ tenant_depth
          $ tenant_rate $ tenant_burst);
      cmd "queue-stats"
        "Replay a trace through the request queue and print its latency \
         and throughput."
        Term.(const queue_stats $ image_arg $ path_arg 1 $ policy $ no_coalesce);
      cmd "cache-stats"
        "Replay a trace through the buffer cache over the request queue \
         and print hit/miss, write-behind and eviction counters."
        Term.(
          const cache_stats $ image_arg $ path_arg 1 $ policy $ capacity
          $ read_ahead);
      cmd "attack" "Run a Section 5 attack against the image."
        Term.(const attack $ image_arg $ attack_name);
      cmd "inject" "Inject deterministic faults (bit-flips, torn burn)."
        Term.(const inject $ image_arg $ seed $ flips $ tear $ tear_cells);
      cmd "scrub" "Run one scrubber pass (repair, torn completion)."
        Term.(const scrub $ image_arg $ threshold $ deep);
      cmd "fleet"
        "Simulate a fleet of CoW-cloned devices (open-loop traffic plus \
         background scrub, keyed per-device PRNG streams, deterministic \
         fan-out); exits nonzero on any tamper verdict or failed \
         operation."
        Term.(const fleet_cmd $ fleet_devices $ fleet_ops $ fleet_seed
              $ arr_jobs);
      cmd "campaign"
        "Run a budgeted insider campaign against a cloned fleet under a \
         chosen audit budget; exits nonzero if any landed tamper is still \
         undetected at the horizon."
        Term.(
          const campaign_cmd $ campaign_attack $ campaign_defender
          $ campaign_sites $ campaign_budget $ campaign_seed $ arr_jobs);
      cmd "mkarray"
        "Create a sharded array image (a manifest plus one member device \
         image per slot and spare)."
        Term.(
          const mkarray $ image_arg $ arr_slots $ arr_replication
          $ arr_spares $ arr_blocks $ line_exp $ arr_seed $ arr_fill);
      cmd "array-status"
        "Volume state, member table and trust ledger; with $(b,--verify), \
         run the cross-device attestation quorum."
        Term.(const array_status $ image_arg $ arr_verify $ arr_jobs);
      cmd "array-fail"
        "Script a disaster against the array: whole-device loss \
         ($(b,--slot)) or a targeted replica tamper ($(b,--tamper))."
        Term.(
          const array_fail $ image_arg $ arr_fail_slot $ arr_tamper
          $ arr_replica);
      cmd "rebuild"
        "Rebuild a lost or outvoted slot onto a pooled spare, re-burning \
         the original hashes."
        Term.(const array_rebuild $ image_arg $ arr_rebuild_slot $ arr_force);
    ]
  in
  let doc = "operate a simulated tamper-evident SERO device" in
  exit (Cmd.eval (Cmd.group (Cmd.info "serotool" ~version:"1.0" ~doc) cmds))
