(* figdata — emit the paper-figure series as CSV for external plotting
   (gnuplot, matplotlib, ...).  One file per series in the chosen
   directory:

     dune exec bin/figdata.exe -- /tmp/sero-data
     gnuplot> plot '/tmp/sero-data/fig7_copt.csv' using 1:2 with lines *)

let write_csv dir name header rows =
  let path = Filename.concat dir name in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "%s\n" header;
      List.iter (fun row -> Printf.fprintf oc "%s\n" row) rows);
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

let fig7 dir =
  let temps = List.init 29 (fun i -> float_of_int (25 * i)) in
  List.iter
    (fun (m, name) ->
      write_csv dir name "temp_c,k_kj_m3"
        (List.map
           (fun (t, k) -> Printf.sprintf "%.1f,%.3f" t k)
           (Physics.Anisotropy.figure7_sweep m ~temps_c:temps)))
    [
      (Physics.Constants.co_pt, "fig7_copt.csv");
      (Physics.Constants.co_pt_low_temp, "fig7_lowtemp.csv");
    ]

let xrd dir =
  List.iter
    (fun (name, scan) ->
      write_csv dir name "two_theta_deg,intensity"
        (List.map
           (fun p ->
             Printf.sprintf "%.3f,%.4f" p.Physics.Xrd.two_theta
               p.Physics.Xrd.intensity)
           scan))
    [
      ("fig8_as_grown.csv", Physics.Xrd.low_angle_scan Physics.Constants.co_pt ~anneal_temp_c:None);
      ("fig8_annealed.csv", Physics.Xrd.low_angle_scan Physics.Constants.co_pt ~anneal_temp_c:(Some 700.));
      ("fig9_as_grown.csv", Physics.Xrd.high_angle_scan Physics.Constants.co_pt ~anneal_temp_c:None);
      ("fig9_annealed.csv", Physics.Xrd.high_angle_scan Physics.Constants.co_pt ~anneal_temp_c:(Some 700.));
    ]

let fig1 dir =
  let rng = Sim.Prng.create 17 in
  let trace =
    Physics.Mfm.trace Physics.Mfm.default_channel Physics.Constants.dot_200nm
      ~rng
      ~dots:
        [| Physics.Mfm.Up; Physics.Mfm.Down; Physics.Mfm.Up; Physics.Mfm.Up;
           Physics.Mfm.Destroyed; Physics.Mfm.Up |]
      ~samples_per_dot:32
  in
  write_csv dir "fig1_readback.csv" "position_m,signal"
    (Array.to_list
       (Array.map (fun (x, y) -> Printf.sprintf "%.4e,%.5f" x y) trace))

let e8 dir =
  write_csv dir "e8_heatcost.csv" "n,line_blocks,heat_s,verify_s,overhead"
    (List.map
       (fun r ->
         Printf.sprintf "%d,%d,%.5f,%.5f,%.5f" r.Expt.Heatcost.n
           r.Expt.Heatcost.line_blocks r.Expt.Heatcost.heat_latency_s
           r.Expt.Heatcost.verify_latency_s r.Expt.Heatcost.space_overhead)
       (Expt.Heatcost.sweep ()))

let e16 dir =
  write_csv dir "e16_erb_miss.csv" "cycles,measured,theory"
    (List.map
       (fun r ->
         Printf.sprintf "%d,%.6f,%.6f" r.Expt.Erb_study.cycles
           r.Expt.Erb_study.measured_miss r.Expt.Erb_study.theory_miss)
       (Expt.Erb_study.miss_sweep ()))

let e17 dir =
  write_csv dir "e17_defects.csv" "defect_rate,sectors,readable,corrected"
    (List.map
       (fun r ->
         Printf.sprintf "%.4f,%d,%d,%.2f" r.Expt.Reliability.defect_rate
           r.Expt.Reliability.sectors r.Expt.Reliability.readable
           r.Expt.Reliability.mean_corrected)
       (Expt.Reliability.defect_sweep ()))

let e18 dir =
  write_csv dir "e18_fault.csv"
    "ber,dead_tips,ras,sectors,unrecoverable,retries,remapped,throughput_mbs"
    (List.map
       (fun r ->
         Printf.sprintf "%.6f,%d,%d,%d,%d,%d,%d,%.4f" r.Expt.Fault_study.ber
           r.Expt.Fault_study.dead_tips
           (if r.Expt.Fault_study.ras_on then 1 else 0)
           r.Expt.Fault_study.sectors r.Expt.Fault_study.unrecoverable
           r.Expt.Fault_study.retries r.Expt.Fault_study.remapped
           r.Expt.Fault_study.throughput_mbs)
       (Expt.Fault_study.sweep ()))

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sero-data" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  fig1 dir;
  fig7 dir;
  xrd dir;
  e8 dir;
  e16 dir;
  e17 dir;
  e18 dir;
  Printf.printf "done; plot with gnuplot or your tool of choice.\n"
