(* The sharded SERO array: address-map bijectivity, degraded reads
   byte-identical to healthy ones, quorum outvoting of tampered and
   substituted replicas, typed volume states, crash-ordered rebuild
   onto a spare that reproduces the pre-failure burned hashes, and
   replayable multi-device fault plans. *)

let qtest = QCheck_alcotest.to_alcotest

let payload_of vba =
  String.init 200 (fun i -> Char.chr ((vba + (7 * i)) land 0xff))

let mk_volume ?(slots = 4) ?(replication = 2) ?(spares = 1)
    ?(member_blocks = 128) ?(seed = 42) ?cache_capacity () =
  Sarray.Volume.create
    (Sarray.Volume.default_config ~slots ~replication ~spares ~member_blocks
       ~seed ?cache_capacity ())

(* Write every data block of [lines] and heat them. *)
let fill_and_heat v lines =
  let m = Sarray.Volume.map v in
  List.iter
    (fun line ->
      for o = 0 to Sarray.Amap.data_blocks_per_line m - 1 do
        let vba = Sarray.Amap.vba_of m ~line ~offset:o in
        match Sarray.Volume.write_block v ~vba (payload_of vba) with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "fill write refused"
      done;
      match Sarray.Volume.heat_line v ~line () with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "heat refused")
    lines;
  Sarray.Volume.flush v

(* ------------------------------------------------------------------ *)
(* Address map *)

let amap_cases =
  [
    Alcotest.test_case "geometry validation" `Quick (fun () ->
        Alcotest.check_raises "replication must divide slots"
          (Invalid_argument "Amap.create: replication must divide slots")
          (fun () ->
            ignore
              (Sarray.Amap.create ~slots:4 ~replication:3 ~member_lines:8
                 ~blocks_per_line:8)));
    Alcotest.test_case "replicas share one local line and pba" `Quick
      (fun () ->
        let m =
          Sarray.Amap.create ~slots:6 ~replication:3 ~member_lines:10
            ~blocks_per_line:8
        in
        for line = 0 to Sarray.Amap.logical_lines m - 1 do
          let slots = Sarray.Amap.slots_of_line m line in
          Alcotest.(check int) "replication" 3 (List.length slots);
          List.iter
            (fun s ->
              Alcotest.(check int) "inverse placement" line
                (Sarray.Amap.line_of_local m ~slot:s
                   ~local:(Sarray.Amap.local_line m line)))
            slots
        done);
  ]

let amap_bijective =
  QCheck.Test.make ~name:"vba <-> (line, offset) is a bijection" ~count:200
    QCheck.(
      quad (int_range 1 4) (int_range 1 4) (int_range 1 32) (int_range 1 5))
    (fun (groups, repl, member_lines, exp) ->
      let m =
        Sarray.Amap.create ~slots:(groups * repl) ~replication:repl
          ~member_lines ~blocks_per_line:(1 lsl exp + 1)
      in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      for vba = 0 to Sarray.Amap.n_blocks m - 1 do
        let line = Sarray.Amap.line_of_vba m vba in
        let offset = Sarray.Amap.offset_of_vba m vba in
        if Sarray.Amap.vba_of m ~line ~offset <> vba then ok := false;
        (* Per (slot, pba) uniqueness: no two vbas may collide on any
           replica's medium. *)
        let pba = Sarray.Amap.member_pba m ~vba in
        List.iter
          (fun s ->
            if Hashtbl.mem seen (s, pba) then ok := false;
            Hashtbl.add seen (s, pba) ())
          (Sarray.Amap.slots_of_line m line)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Twin-volume equivalence: reads after a member loss are byte-identical
   to the healthy twin's.  This is the degraded-mode contract: losing a
   replica degrades redundancy, never data. *)

let twin_equivalence =
  QCheck.Test.make ~name:"degraded reads byte-identical to healthy twin"
    ~count:12
    QCheck.(triple (int_range 0 3) (int_range 0 10000) small_nat)
    (fun (lost_slot, seed, heat_salt) ->
      let mk () = mk_volume ~slots:4 ~replication:2 ~seed () in
      let healthy = mk () and degraded = mk () in
      let m = Sarray.Volume.map healthy in
      let lines = List.init (Sarray.Amap.logical_lines m) Fun.id in
      let heated = List.filter (fun l -> (l + heat_salt) mod 3 = 0) lines in
      fill_and_heat healthy heated;
      fill_and_heat degraded heated;
      (* Unheated lines get sparse writes so blanks stay in play. *)
      List.iter
        (fun line ->
          if not (List.mem line heated) then
            let vba = Sarray.Amap.vba_of m ~line ~offset:0 in
            match Sarray.Volume.write_block degraded ~vba (payload_of vba) with
            | Ok () ->
                ignore (Sarray.Volume.write_block healthy ~vba (payload_of vba))
            | Error _ -> ())
        lines;
      Sarray.Volume.fail_slot degraded ~slot:lost_slot;
      Sarray.Volume.volume_state degraded = Sarray.Volume.Degraded
      && List.for_all
           (fun vba ->
             let a = Sarray.Volume.read_block healthy ~vba in
             let b = Sarray.Volume.read_block degraded ~vba in
             match (a, b) with
             | Ok x, Ok y -> String.equal x y
             | Error Sarray.Volume.Volume_blank, Error Sarray.Volume.Volume_blank
               ->
                 true
             | _ -> false)
           (List.init (Sarray.Amap.n_blocks m) Fun.id))

(* ------------------------------------------------------------------ *)
(* Quorum *)

(* Magnetic rewrite under a burned hash: the replica convicts itself;
   the quorum serves the twin's testimony and the trust ledger demotes
   the tampered member to Suspect. *)
let outvote_tampered () =
  let v = mk_volume ~slots:2 ~replication:2 () in
  let m = Sarray.Volume.map v in
  fill_and_heat v [ 0; 1; 2 ];
  let victim_slot = List.hd (Sarray.Amap.slots_of_line m 1) in
  let dev_ix = Sarray.Volume.dev_of_slot v ~slot:victim_slot in
  let d = Sarray.Volume.device v ~dev:dev_ix in
  let lay = Sero.Device.layout d in
  Sero.Device.unsafe_write_block d
    ~pba:(Sero.Layout.first_data_block lay (Sarray.Amap.local_line m 1))
    "evil payload";
  Sero.Device.refresh_heated_cache d;
  let report = Sarray.Quorum.verify_volume v in
  Alcotest.(check int) "all heated lines attested" 3 report.counts.attested;
  Alcotest.(check int) "one conviction" 1 report.counts.convicted_replicas;
  (match List.assoc 1 report.Sarray.Quorum.lines with
  | Sarray.Quorum.Attested { voters; against; _ } ->
      Alcotest.(check (list int)) "survivor votes" [ 1 ] voters;
      Alcotest.(check (list int)) "no divergence among voters" [] against
  | _ -> Alcotest.fail "line 1 should still attest from the survivor");
  Alcotest.check
    (Alcotest.of_pp Sarray.Trust.pp_entry)
    "tampered member is suspect"
    {
      Sarray.Trust.votes = 3;
      agreements = 2;
      divergences = 0;
      convictions = 1;
      unreadable = 0;
      status = Sarray.Trust.Suspect;
    }
    (Sarray.Trust.entry (Sarray.Volume.trust v) ~dev:dev_ix);
  (* Reads keep serving, and a full read of the tampered vba returns the
     survivor's bytes. *)
  let vba = Sarray.Amap.vba_of m ~line:1 ~offset:0 in
  match Sarray.Volume.read_block v ~vba with
  | Ok p ->
      Alcotest.(check string) "read falls to survivor" (payload_of vba)
        (String.sub p 0 (String.length (payload_of vba)))
  | Error _ -> Alcotest.fail "read should degrade, not fail"

(* Verify-on-first-read: tampered bytes are never served, even before
   any quorum has run and even when the tampered replica is the
   preferred one — and once the honest mirror is lost too, the read
   fails loudly instead of serving the tampered copy. *)
let read_verify_triage () =
  let v = mk_volume ~slots:2 ~replication:2 () in
  let m = Sarray.Volume.map v in
  fill_and_heat v [ 0; 1 ];
  (* Line 0's preferred slot is 0 (local 0 mod 2): tamper exactly that
     replica so the read order meets the tampered copy first. *)
  let dev_ix = Sarray.Volume.dev_of_slot v ~slot:0 in
  let d = Sarray.Volume.device v ~dev:dev_ix in
  let lay = Sero.Device.layout d in
  Sero.Device.unsafe_write_block d
    ~pba:(Sero.Layout.first_data_block lay (Sarray.Amap.local_line m 0))
    "evil payload";
  Sero.Device.refresh_heated_cache d;
  for o = 0 to Sarray.Amap.data_blocks_per_line m - 1 do
    let vba = Sarray.Amap.vba_of m ~line:0 ~offset:o in
    match Sarray.Volume.read_block v ~vba with
    | Ok p ->
        Alcotest.(check string) "honest bytes only" (payload_of vba)
          (String.sub p 0 (String.length (payload_of vba)))
    | Error _ -> Alcotest.fail "mirror should still serve"
  done;
  let s = Sarray.Volume.stats v in
  Alcotest.(check bool) "tampered replica was rejected at read time" true
    (s.Sarray.Volume.read_rejects >= 1);
  Alcotest.(check bool) "reads fell through to the mirror" true
    (s.Sarray.Volume.degraded_reads >= 1);
  (* Kill the honest mirror: the volume must fail the read loudly, not
     fall back to the tampered copy. *)
  Sarray.Volume.fail_slot v ~slot:1;
  let vba = Sarray.Amap.vba_of m ~line:0 ~offset:0 in
  match Sarray.Volume.read_block v ~vba with
  | Ok _ -> Alcotest.fail "tampered sole replica must not serve"
  | Error (Sarray.Volume.Replica_errors faults) ->
      Alcotest.(check bool) "flagged as a verify failure" true
        (List.exists
           (fun (_, f) -> f = Sarray.Volume.Failed_verify)
           faults)
  | Error _ -> Alcotest.fail "expected per-replica verify failure"

(* Substituted-media attack: a replica with internally consistent but
   different data+burn.  Locally Intact, only the cross-device hash
   vote catches it; with R=3 the majority outvotes it (Divergence), and
   its line is attested from the agreeing pair. *)
let heat_diverged ~v ~line ~rogue_slot =
  let m = Sarray.Volume.map v in
  let local = Sarray.Amap.local_line m line in
  (* Write honest data everywhere, then alter the rogue replica's copy
     before anything is burned. *)
  for o = 0 to Sarray.Amap.data_blocks_per_line m - 1 do
    let vba = Sarray.Amap.vba_of m ~line ~offset:o in
    match Sarray.Volume.write_block v ~vba (payload_of vba) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "write refused"
  done;
  Sarray.Volume.flush v;
  let rogue = Sarray.Volume.dev_of_slot v ~slot:rogue_slot in
  let d = Sarray.Volume.device v ~dev:rogue in
  let lay = Sero.Device.layout d in
  (match
     Sero.Device.write_block d
       ~pba:(Sero.Layout.first_data_block lay local)
       "substituted history"
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rogue write refused");
  (* Burn every replica directly with one timestamp: the rogue burn is
     valid over its own (different) data. *)
  List.iter
    (fun slot ->
      let dev = Sarray.Volume.dev_of_slot v ~slot in
      match
        Sero.Device.heat_line
          (Sarray.Volume.device v ~dev)
          ~line:local ~timestamp:1.0 ()
      with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "direct heat failed")
    (Sarray.Amap.slots_of_line m line)

let outvote_substituted () =
  let v = mk_volume ~slots:3 ~replication:3 ~member_blocks:64 () in
  heat_diverged ~v ~line:0 ~rogue_slot:1;
  let report = Sarray.Quorum.verify_volume v in
  Alcotest.(check int) "line attested by majority" 1 report.counts.attested;
  Alcotest.(check int) "rogue outvoted" 1 report.counts.outvoted_replicas;
  let rogue_dev = Sarray.Volume.dev_of_slot v ~slot:1 in
  Alcotest.(check bool) "rogue is suspect" true
    (Sarray.Trust.status (Sarray.Volume.trust v) ~dev:rogue_dev
    = Sarray.Trust.Suspect);
  match List.assoc 0 report.Sarray.Quorum.lines with
  | Sarray.Quorum.Attested { against; _ } ->
      Alcotest.(check (list int)) "slot 1 outvoted" [ 1 ] against
  | _ -> Alcotest.fail "line 0 should attest"

let tie_unattested () =
  let v = mk_volume ~slots:2 ~replication:2 ~member_blocks:64 () in
  heat_diverged ~v ~line:0 ~rogue_slot:1;
  let report = Sarray.Quorum.verify_volume v in
  Alcotest.(check int) "tie surfaces as unattested" 1 report.counts.unattested;
  match List.assoc 0 report.Sarray.Quorum.lines with
  | Sarray.Quorum.Tie_unattested vs ->
      Alcotest.(check int) "both voters listed" 2 (List.length vs)
  | _ -> Alcotest.fail "a 1-1 split must never be silently resolved"

let quorum_parallel_deterministic () =
  let run jobs =
    let v = mk_volume ~slots:4 ~replication:2 () in
    fill_and_heat v [ 0; 3; 5 ];
    let report = Sarray.Quorum.verify_volume ~jobs v in
    (report, Sarray.Volume.events v)
  in
  let r1, e1 = run 1 and r4, e4 = run 4 in
  Alcotest.(check bool) "reports identical for any jobs" true (r1 = r4);
  Alcotest.(check (list string)) "event logs identical" e1 e4

(* ------------------------------------------------------------------ *)
(* Volume states *)

let state_transitions () =
  let v = mk_volume ~slots:4 ~replication:2 ~spares:0 () in
  let check msg expect =
    Alcotest.check
      (Alcotest.of_pp Sarray.Volume.pp_volume_state)
      msg expect (Sarray.Volume.volume_state v)
  in
  check "fresh volume optimal" Sarray.Volume.Optimal;
  Sarray.Volume.fail_slot v ~slot:0;
  check "one loss degraded" Sarray.Volume.Degraded;
  Sarray.Volume.fail_slot v ~slot:2;
  check "losses in distinct groups still degraded" Sarray.Volume.Degraded;
  Sarray.Volume.fail_slot v ~slot:1;
  check "whole mirror group lost: critical" Sarray.Volume.Critical;
  (* Group 0 offline: its lines are unreadable, group 1's still serve. *)
  let m = Sarray.Volume.map v in
  let vba_g0 = Sarray.Amap.vba_of m ~line:0 ~offset:0 in
  (match Sarray.Volume.read_block v ~vba:vba_g0 with
  | Error Sarray.Volume.Volume_offline -> ()
  | _ -> Alcotest.fail "group 0 should be offline");
  Sarray.Volume.revive_dev v ~dev:(Sarray.Volume.dev_of_slot v ~slot:1);
  check "revival recovers to degraded" Sarray.Volume.Degraded

(* ------------------------------------------------------------------ *)
(* Rebuild *)

let burned_hashes dev n_lines =
  List.init n_lines (fun l ->
      match Sero.Device.read_hash_block dev ~line:l with
      | `Burned m -> Some m.Sero.Device.hash
      | _ -> None)

let rebuild_after_loss () =
  let v = mk_volume ~slots:2 ~replication:2 ~spares:1 () in
  let m = Sarray.Volume.map v in
  let heated = [ 0; 2; 4 ] in
  fill_and_heat v heated;
  let lost_dev = Sarray.Volume.dev_of_slot v ~slot:1 in
  let pre =
    burned_hashes (Sarray.Volume.device v ~dev:lost_dev) m.Sarray.Amap.member_lines
  in
  Sarray.Volume.fail_slot v ~slot:1;
  (match Sarray.Rebuild.rebuild_slot v ~slot:1 with
  | Error _ -> Alcotest.fail "rebuild should succeed"
  | Ok r ->
      Alcotest.(check int) "all lines scanned" m.Sarray.Amap.member_lines
        r.lines_scanned;
      Alcotest.(check int) "heated lines re-burned" (List.length heated)
        r.heated_rebuilt;
      Alcotest.(check (list (pair int string))) "no reattest failures" []
        r.reattest_failed);
  let new_dev = Sarray.Volume.dev_of_slot v ~slot:1 in
  Alcotest.(check bool) "slot served by the spare" true (new_dev <> lost_dev);
  let post =
    burned_hashes (Sarray.Volume.device v ~dev:new_dev) m.Sarray.Amap.member_lines
  in
  Alcotest.(check bool) "burned hashes identical to pre-failure" true
    (List.for_all2
       (fun a b ->
         match (a, b) with
         | Some x, Some y -> Hash.Sha256.equal x y
         | None, None -> true
         | _ -> false)
       pre post);
  Alcotest.check
    (Alcotest.of_pp Sarray.Volume.pp_volume_state)
    "volume optimal again" Sarray.Volume.Optimal
    (Sarray.Volume.volume_state v);
  let report = Sarray.Quorum.verify_volume v in
  Alcotest.(check int) "full verify: every heated line attested"
    (List.length heated) report.counts.attested;
  Alcotest.(check int) "full verify: nothing unattested" 0
    report.counts.unattested

let crash_mid_rebuild () =
  let v = mk_volume ~slots:2 ~replication:2 ~spares:1 ~cache_capacity:None () in
  let m = Sarray.Volume.map v in
  let heated = [ 0; 1; 2; 3 ] in
  fill_and_heat v heated;
  let lost_dev = Sarray.Volume.dev_of_slot v ~slot:0 in
  let survivor_dev = Sarray.Volume.dev_of_slot v ~slot:1 in
  let pre =
    burned_hashes (Sarray.Volume.device v ~dev:lost_dev) m.Sarray.Amap.member_lines
  in
  Sarray.Volume.fail_slot v ~slot:0;
  (* Arm a power cut on the spare so the crash lands mid-rebuild, after
     some lines are copied and burned but before the commit point. *)
  let spare = List.hd (Sarray.Volume.spare_pool v) in
  let spare_dev = Sarray.Volume.device v ~dev:spare in
  Sero.Device.install_fault spare_dev
    (Fault.Injector.create (Fault.Plan.make ~power_cut_after_ops:3000 ()));
  (match Sarray.Rebuild.rebuild_slot v ~slot:0 with
  | exception Fault.Injector.Power_cut -> ()
  | Ok _ -> Alcotest.fail "power cut should interrupt the rebuild"
  | Error _ -> Alcotest.fail "unexpected typed rebuild error");
  (* Crash ordering: the slot map is untouched, the volume is exactly as
     degraded as before. *)
  Alcotest.(check int) "no commit: slot still on the lost device" lost_dev
    (Sarray.Volume.dev_of_slot v ~slot:0);
  (* Reboot: fresh queues over the same media, same membership. *)
  Sero.Device.clear_fault spare_dev;
  let devices =
    Array.init (Sarray.Volume.n_devices v) (fun i ->
        Sarray.Volume.device v ~dev:i)
  in
  let v2 =
    Sarray.Volume.of_devices (Sarray.Volume.cfg v) ~devices
      ~slot_dev:[| lost_dev; survivor_dev |]
      ~spare_pool:[ spare ]
      ~states:(Sarray.Volume.member_states v)
  in
  (match Sarray.Rebuild.rebuild_slot v2 ~slot:0 with
  | Error _ -> Alcotest.fail "restarted rebuild should succeed"
  | Ok r ->
      Alcotest.(check (list (pair int string)))
        "idempotent restart: no reattest failures" [] r.reattest_failed);
  let new_dev = Sarray.Volume.dev_of_slot v2 ~slot:0 in
  let post =
    burned_hashes
      (Sarray.Volume.device v2 ~dev:new_dev)
      m.Sarray.Amap.member_lines
  in
  Alcotest.(check bool) "hashes survive the crashed rebuild" true
    (List.for_all2
       (fun a b ->
         match (a, b) with
         | Some x, Some y -> Hash.Sha256.equal x y
         | None, None -> true
         | _ -> false)
       pre post);
  let report = Sarray.Quorum.verify_volume v2 in
  Alcotest.(check int) "full verify after crash+rebuild: attested"
    (List.length heated) report.counts.attested;
  Alcotest.(check int) "nothing unattested" 0 report.counts.unattested;
  Alcotest.(check int) "nobody outvoted" 0 report.counts.outvoted_replicas

(* ------------------------------------------------------------------ *)
(* Array fault plans *)

let plan_replay () =
  let mk () =
    let v = mk_volume ~slots:2 ~replication:2 ~spares:1 () in
    fill_and_heat v [ 0; 1 ];
    let plan =
      Fault.Plan.array_make ~seed:7
        ~events:
          [
            { Fault.Plan.at_op = 30; event = Fault.Plan.Replica_tamper { member = 0; line = 1 } };
            { Fault.Plan.at_op = 40; event = Fault.Plan.Member_loss { member = 1 } };
          ]
        ()
    in
    Sarray.Volume.install_plan v plan;
    let m = Sarray.Volume.map v in
    for vba = 0 to 50 do
      ignore (Sarray.Volume.read_block v ~vba:(vba mod Sarray.Amap.n_blocks m))
    done;
    (v, Sarray.Volume.fault_ledger v)
  in
  let v, ledger = mk () in
  Alcotest.(check bool) "member loss fired" true
    ((Sarray.Volume.member_states v).(Sarray.Volume.dev_of_slot v ~slot:1)
    = Sarray.Volume.Lost);
  let report = Sarray.Quorum.verify_volume v in
  Alcotest.(check int) "tamper event detected" 1
    report.counts.convicted_replicas;
  (* With the mirror lost, the tampered line's only replica convicts
     itself: the loss is surfaced as unattested, never silently served. *)
  Alcotest.(check int) "healthy line still attested" 1 report.counts.attested;
  Alcotest.(check int) "tampered line surfaced unattested" 1
    report.counts.unattested;
  (* Replay: identical plan, identical op trace, identical ledger. *)
  let _, ledger' = mk () in
  Alcotest.(check string) "fault ledger replays byte-identically" ledger
    ledger';
  (* Per-member seeds differ. *)
  let p = Fault.Plan.array_make ~seed:7 () in
  Alcotest.(check bool) "member seeds are distinct" true
    (Fault.Plan.member_seed p ~member:0 <> Fault.Plan.member_seed p ~member:1)

(* ------------------------------------------------------------------ *)
(* Image round-trip *)

let image_roundtrip () =
  let dir = Filename.temp_file "sarray" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "vol.arr" in
  let v = mk_volume ~slots:2 ~replication:2 ~spares:1 () in
  fill_and_heat v [ 0; 2 ];
  (* Make the saved state interesting: a suspect member. *)
  let m = Sarray.Volume.map v in
  let d = Sarray.Volume.device v ~dev:(Sarray.Volume.dev_of_slot v ~slot:0) in
  Sero.Device.unsafe_write_block d
    ~pba:
      (Sero.Layout.first_data_block (Sero.Device.layout d)
         (Sarray.Amap.local_line m 0))
    "tamper before save";
  Sero.Device.refresh_heated_cache d;
  ignore (Sarray.Quorum.verify_volume v);
  Sarray.Aimage.save v path;
  match Sarray.Aimage.load path with
  | Error e -> Alcotest.fail e
  | Ok v2 ->
      Alcotest.(check bool) "trust ledger survives" true
        (Sarray.Trust.entry (Sarray.Volume.trust v)
           ~dev:(Sarray.Volume.dev_of_slot v ~slot:0)
        = Sarray.Trust.entry (Sarray.Volume.trust v2)
            ~dev:(Sarray.Volume.dev_of_slot v2 ~slot:0));
      let r = Sarray.Quorum.verify_volume v2 in
      Alcotest.(check int) "reloaded volume re-attests" 2 r.counts.attested;
      List.iter
        (fun vba ->
          match
            ( Sarray.Volume.read_block v ~vba,
              Sarray.Volume.read_block v2 ~vba )
          with
          | Ok a, Ok b -> Alcotest.(check string) "payload survives" a b
          | Error _, Error _ -> ()
          | _ -> Alcotest.fail "read disagreement after reload")
        (List.init (Sarray.Amap.n_blocks m) Fun.id)

let volume_cases =
  [
    Alcotest.test_case "quorum outvotes a tampered replica" `Quick
      outvote_tampered;
    Alcotest.test_case "tampered bytes never served (verify-on-read)" `Quick
      read_verify_triage;
    Alcotest.test_case "majority outvotes a substituted replica" `Quick
      outvote_substituted;
    Alcotest.test_case "a 1-1 split surfaces as Unattested" `Quick
      tie_unattested;
    Alcotest.test_case "verify_volume deterministic under -j" `Quick
      quorum_parallel_deterministic;
    Alcotest.test_case "volume state transitions" `Quick state_transitions;
    Alcotest.test_case "rebuild onto spare preserves burned hashes" `Quick
      rebuild_after_loss;
    Alcotest.test_case "crash mid-rebuild: restart is idempotent" `Quick
      crash_mid_rebuild;
    Alcotest.test_case "array fault plan fires and replays" `Quick plan_replay;
    Alcotest.test_case "array image round-trip" `Quick image_roundtrip;
  ]

let () =
  Alcotest.run "array"
    [
      ("amap", amap_cases @ [ qtest amap_bijective ]);
      ("volume", volume_cases @ [ qtest twin_equivalence ]);
    ]
