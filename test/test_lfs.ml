(* The log-structured file system: encodings, file IO against a model,
   directories, cleaner, heat strategies, remount, fsck. *)

let qtest = QCheck_alcotest.to_alcotest
let ok what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

let make_fs ?(n_blocks = 2048) ?(clustering = true) () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks ~line_exp:3 ())
  in
  let policy = { Lfs.State.default_policy with Lfs.State.clustering } in
  (dev, Lfs.Fs.format ~policy dev)

(* {1 Encodings} *)

let arb_inode =
  QCheck.make
    QCheck.Gen.(
      let* ino = int_range 1 100000 in
      let* kind = oneofl [ Lfs.Enc.Regular; Lfs.Enc.Directory ] in
      let* nlink = int_range 1 100 in
      let* heat_group = int_range 0 1000 in
      let* size = int_range 0 2_000_000 in
      let* generation = int_range 0 100000 in
      let* direct = array_size (return Lfs.Enc.n_direct) (int_range 0 100000) in
      let* single_ind = int_range 0 100000 in
      let* double_ind = int_range 0 100000 in
      return
        {
          Lfs.Enc.ino;
          kind;
          nlink;
          heat_group;
          size;
          mtime = 42.5;
          generation;
          direct;
          single_ind;
          double_ind;
        })

let inode_roundtrip =
  QCheck.Test.make ~name:"inode encode/decode roundtrip" ~count:200 arb_inode
    (fun i ->
      match Lfs.Enc.decode_inode (Lfs.Enc.encode_inode i) with
      | Some j -> i = j
      | None -> false)

let arb_dirents =
  QCheck.(
    small_list
      (map
         (fun (name, ino, dir) ->
           {
             Lfs.Enc.name = "f" ^ String.map (fun c -> Char.chr (97 + (Char.code c mod 26))) name;
             entry_ino = 1 + (ino mod 1000);
             entry_kind = (if dir then Lfs.Enc.Directory else Lfs.Enc.Regular);
           })
         (triple (string_of_size Gen.(0 -- 8)) small_nat bool)))

let dirents_roundtrip =
  QCheck.Test.make ~name:"dirent list roundtrip" ~count:200 arb_dirents
    (fun es ->
      let es = List.filteri (fun i _ -> i < 15) es in
      match Lfs.Enc.decode_dirents (Lfs.Enc.encode_dirents es) with
      | Some got -> got = es
      | None -> false)

let arb_owner =
  QCheck.make
    QCheck.Gen.(
      oneof
        [
          return Lfs.Enc.Unused;
          return Lfs.Enc.Summary_block;
          (let* o_ino = int_range 1 9999 in
           let* block_index = int_range 0 4000 in
           return (Lfs.Enc.Data_of { o_ino; block_index }));
          (let* ino = int_range 1 9999 in
           return (Lfs.Enc.Inode_of ino));
          (let* o_ino = int_range 1 9999 in
           let* slot = int_range (-2) 60 in
           return (Lfs.Enc.Indirect_of { o_ino; slot }));
        ])

let summary_roundtrip =
  QCheck.Test.make ~name:"segment summary roundtrip" ~count:200
    (QCheck.array_of_size (QCheck.Gen.return 28) arb_owner)
    (fun owners ->
      let s = { Lfs.Enc.seg_index = 17; owners } in
      match Lfs.Enc.decode_summary (Lfs.Enc.encode_summary s) with
      | Some got -> got.Lfs.Enc.seg_index = 17 && got.Lfs.Enc.owners = owners
      | None -> false)

let checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint roundtrip" ~count:100
    QCheck.(pair (small_list (pair (int_range 1 999) (int_range 1 99999))) small_nat)
    (fun (imap, seq) ->
      let imap = List.sort_uniq compare imap in
      let segments =
        Array.init 8 (fun i ->
            {
              Lfs.Enc.state =
                List.nth
                  [ Lfs.Enc.Seg_free; Lfs.Enc.Seg_open; Lfs.Enc.Seg_closed; Lfs.Enc.Seg_heated ]
                  (i mod 4);
              live_blocks = i * 3;
              seg_group = i;
              age = 100 - i;
            })
      in
      let c = { Lfs.Enc.seq; timestamp = 9.75; next_ino = 42; imap; segments } in
      match Lfs.Enc.decode_checkpoint (Lfs.Enc.encode_checkpoint c) with
      | Some got -> got = c
      | None -> false)

let pointer_roundtrip =
  QCheck.Test.make ~name:"pointer block roundtrip" ~count:200
    (QCheck.array_of_size (QCheck.Gen.return Lfs.Enc.pointers_per_indirect)
       (QCheck.int_range 0 1_000_000))
    (fun ptrs ->
      match Lfs.Enc.decode_pointer_block (Lfs.Enc.encode_pointer_block ptrs) with
      | Some got -> got = ptrs
      | None -> false)

let enc_cases =
  [
    Alcotest.test_case "garbage never decodes" `Quick (fun () ->
        Alcotest.(check bool) "inode" true (Lfs.Enc.decode_inode (String.make 512 'q') = None);
        Alcotest.(check bool) "dirents" true (Lfs.Enc.decode_dirents (String.make 512 'q') = None);
        Alcotest.(check bool) "summary" true (Lfs.Enc.decode_summary (String.make 512 'q') = None);
        Alcotest.(check bool) "checkpoint" true (Lfs.Enc.decode_checkpoint (String.make 512 'q') = None));
  ]

(* {1 File IO against a reference model} *)

(* Model: a growable byte buffer with the same write/read semantics. *)
module Model = struct
  type t = { mutable data : Bytes.t; mutable size : int }

  let create () = { data = Bytes.create 0; size = 0 }

  let ensure t n =
    if n > Bytes.length t.data then begin
      let bigger = Bytes.make (max n (2 * Bytes.length t.data)) '\x00' in
      Bytes.blit t.data 0 bigger 0 t.size;
      t.data <- bigger
    end

  let write t ~offset s =
    ensure t (offset + String.length s);
    Bytes.blit_string s 0 t.data offset (String.length s);
    t.size <- max t.size (offset + String.length s)

  let read t ~offset ~len =
    let len = max 0 (min len (t.size - offset)) in
    Bytes.sub_string t.data offset len
end

let file_io_model =
  QCheck.Test.make ~name:"random writes match a byte-buffer model" ~count:30
    QCheck.(
      small_list (pair (int_range 0 8000) (string_of_size Gen.(1 -- 900))))
    (fun ops ->
      let _, fs = make_fs () in
      (match Lfs.Fs.create fs "/f" with Ok () -> () | Error e -> failwith e);
      let model = Model.create () in
      List.for_all
        (fun (offset, data) ->
          match Lfs.Fs.write_file fs "/f" ~offset data with
          | Error _ -> false
          | Ok () ->
              Model.write model ~offset data;
              let got =
                match Lfs.Fs.read_file fs "/f" with
                | Ok s -> s
                | Error e -> failwith e
              in
              String.equal got (Model.read model ~offset:0 ~len:model.Model.size))
        ops)

let file_cases =
  [
    Alcotest.test_case "sparse file: holes read as zeros" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/sparse");
        ok "write" (Lfs.Fs.write_file fs "/sparse" ~offset:5000 "tail");
        let s = ok "read" (Lfs.Fs.read_file fs "/sparse") in
        Alcotest.(check int) "size" 5004 (String.length s);
        Alcotest.(check bool) "hole zeroed" true
          (String.for_all (fun c -> c = '\x00') (String.sub s 0 5000));
        Alcotest.(check string) "tail" "tail" (String.sub s 5000 4));
    Alcotest.test_case "double-indirect file (100 KB) roundtrips" `Quick
      (fun () ->
        let _, fs = make_fs ~n_blocks:4096 () in
        ok "create" (Lfs.Fs.create fs "/big");
        let data = String.init 102400 (fun i -> Char.chr (i mod 251)) in
        ok "write" (Lfs.Fs.write_file fs "/big" ~offset:0 data);
        Lfs.Fs.sync fs;
        let got = ok "read" (Lfs.Fs.read_file fs "/big") in
        Alcotest.(check bool) "equal" true (String.equal got data));
    Alcotest.test_case "read past EOF truncates" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/s");
        ok "write" (Lfs.Fs.write_file fs "/s" ~offset:0 "abc");
        Alcotest.(check string) "clipped" "bc"
          (ok "read" (Lfs.Fs.read_range fs "/s" ~offset:1 ~len:100)));
    Alcotest.test_case "append grows the file" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/log");
        ok "a1" (Lfs.Fs.append fs "/log" "one ");
        ok "a2" (Lfs.Fs.append fs "/log" "two");
        Alcotest.(check string) "contents" "one two" (ok "read" (Lfs.Fs.read_file fs "/log")));
  ]

(* {1 Namespace} *)

let namespace_cases =
  [
    Alcotest.test_case "mkdir / create / readdir / lookup" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "mkdir" (Lfs.Fs.mkdir fs "/a");
        ok "mkdir" (Lfs.Fs.mkdir fs "/a/b");
        ok "create" (Lfs.Fs.create fs "/a/b/f");
        Alcotest.(check bool) "exists" true (Lfs.Fs.exists fs "/a/b/f");
        Alcotest.(check bool) "missing" false (Lfs.Fs.exists fs "/a/b/g");
        let names =
          List.map (fun e -> e.Lfs.Enc.name) (ok "readdir" (Lfs.Fs.readdir fs "/a/b"))
        in
        Alcotest.(check (list string)) "entries" [ "f" ] names);
    Alcotest.test_case "duplicate names refused" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/x");
        match Lfs.Fs.create fs "/x" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "duplicate allowed");
    Alcotest.test_case "unlink frees and removes" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/t");
        ok "write" (Lfs.Fs.write_file fs "/t" ~offset:0 (String.make 4096 'x'));
        ok "unlink" (Lfs.Fs.unlink fs "/t");
        Alcotest.(check bool) "gone" false (Lfs.Fs.exists fs "/t"));
    Alcotest.test_case "non-empty directory cannot be removed" `Quick
      (fun () ->
        let _, fs = make_fs () in
        ok "mkdir" (Lfs.Fs.mkdir fs "/d");
        ok "create" (Lfs.Fs.create fs "/d/f");
        match Lfs.Fs.unlink fs "/d" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "removed non-empty dir");
    Alcotest.test_case "hard links share content; unlink decrements" `Quick
      (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/orig");
        ok "write" (Lfs.Fs.write_file fs "/orig" ~offset:0 "shared");
        ok "link" (Lfs.Fs.link fs "/orig" "/alias");
        Alcotest.(check string) "alias reads" "shared" (ok "read" (Lfs.Fs.read_file fs "/alias"));
        ok "unlink orig" (Lfs.Fs.unlink fs "/orig");
        Alcotest.(check string) "alias survives" "shared"
          (ok "read" (Lfs.Fs.read_file fs "/alias")));
    Alcotest.test_case "large directory spans blocks" `Quick (fun () ->
        let _, fs = make_fs () in
        for i = 0 to 120 do
          ok "create" (Lfs.Fs.create fs (Printf.sprintf "/file-%03d" i))
        done;
        Alcotest.(check int) "all listed" 121
          (List.length (ok "readdir" (Lfs.Fs.readdir fs "/"))));
    Alcotest.test_case "relative and dotted paths rejected" `Quick (fun () ->
        let _, fs = make_fs () in
        (match Lfs.Fs.create fs "relative" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "relative path accepted");
        match Lfs.Fs.create fs "/a/../b" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "dotted path accepted");
  ]

(* {1 Cleaner} *)

let cleaner_cases =
  [
    Alcotest.test_case "churn forces cleaning and space survives" `Quick
      (fun () ->
        let _, fs = make_fs ~n_blocks:512 () in
        (* Interleave long-lived blocks with churn in the same segments:
           no segment ever becomes fully dead (which would self-free
           without copying), so survival requires the cleaner to copy
           the keepers out. *)
        ok "create keep" (Lfs.Fs.create fs "/keep");
        ok "create churn" (Lfs.Fs.create fs "/churn");
        for round = 0 to 60 do
          ok "keep"
            (Lfs.Fs.write_file fs "/keep" ~offset:(512 * (round mod 24))
               (String.make 512 (Char.chr (97 + (round mod 26)))));
          ok "churn"
            (Lfs.Fs.write_file fs "/churn" ~offset:0
               (String.make 6144 (Char.chr (65 + (round mod 26)))))
        done;
        let s = Lfs.Fs.stats fs in
        Alcotest.(check bool) "cleaner ran" true
          (s.Lfs.Fs.metrics.Lfs.State.segments_cleaned > 0);
        Alcotest.(check bool) "cleaner copied live blocks" true
          (s.Lfs.Fs.metrics.Lfs.State.cleaner_copies > 0);
        Alcotest.(check string) "churn data intact"
          (String.make 10 (Char.chr (65 + (60 mod 26))))
          (String.sub (ok "read" (Lfs.Fs.read_file fs "/churn")) 0 10);
        (* Block 0 of /keep was last rewritten at round 48. *)
        Alcotest.(check string) "keeper data intact"
          (String.make 10 (Char.chr (97 + (48 mod 26))))
          (String.sub (ok "read" (Lfs.Fs.read_file fs "/keep")) 0 10));
    Alcotest.test_case "cleaner skips heated segments" `Quick (fun () ->
        let dev, fs = make_fs ~n_blocks:512 () in
        ok "create" (Lfs.Fs.create fs "/frozen");
        ok "write" (Lfs.Fs.write_file fs "/frozen" ~offset:0 (String.make 4096 'f'));
        let _ = ok "heat" (Lfs.Fs.heat fs "/frozen") in
        let st = Lfs.Fs.state fs in
        let heated_segs =
          List.sort_uniq compare
            (List.map
               (fun l -> l / st.Lfs.State.policy.Lfs.State.segment_lines)
               (Lfs.Heat.file_lines st
                  ~ino:
                    (match Lfs.Dirops.lookup st "/frozen" with
                    | Some (i, _) -> i
                    | None -> Alcotest.fail "lost")))
        in
        ok "create" (Lfs.Fs.create fs "/churn");
        for round = 0 to 60 do
          ok "write"
            (Lfs.Fs.write_file fs "/churn" ~offset:0
               (String.make 8192 (Char.chr (97 + (round mod 26)))))
        done;
        (* The heated file must be untouched and verified. *)
        List.iter
          (fun (_, v) ->
            Alcotest.(check bool) "intact" true
              (Sero.Tamper.equal_verdict v Sero.Tamper.Intact))
          (ok "verify" (Lfs.Fs.verify fs "/frozen"));
        List.iter
          (fun seg ->
            Alcotest.(check bool) "still heated state" true
              (Lfs.Enc.equal_seg_state st.Lfs.State.segs.(seg).Lfs.State.state
                 Lfs.Enc.Seg_heated))
          heated_segs;
        ignore dev);
    Alcotest.test_case "out of space reported, not crashed" `Quick (fun () ->
        let _, fs = make_fs ~n_blocks:256 () in
        ok "create" (Lfs.Fs.create fs "/fill");
        let rec fill i =
          if i > 400 then None
          else
            match
              Lfs.Fs.write_file fs "/fill" ~offset:(i * 512) (String.make 512 'z')
            with
            | Ok () -> fill (i + 1)
            | Error e -> Some e
        in
        match fill 0 with
        | Some e -> Alcotest.(check string) "message" "out of space" e
        | None -> Alcotest.fail "never filled up");
  ]

(* {1 Heat strategies} *)

let heat_cases =
  [
    Alcotest.test_case "clustered file heats in place (no copies)" `Quick
      (fun () ->
        let _, fs = make_fs ~clustering:true () in
        ok "create" (Lfs.Fs.create fs ~heat_group:5 "/solo");
        ok "write" (Lfs.Fs.write_file fs "/solo" ~offset:0 (String.make 8192 's'));
        let r = ok "heat" (Lfs.Fs.heat fs "/solo") in
        Alcotest.(check int) "no relocation" 0 r.Lfs.Heat.relocated_blocks;
        Alcotest.(check bool) "heated" true (ok "is" (Lfs.Fs.is_heated fs "/solo")));
    Alcotest.test_case "interleaved naive allocation forces relocation" `Quick
      (fun () ->
        let _, fs = make_fs ~clustering:false () in
        ok "c1" (Lfs.Fs.create fs ~heat_group:1 "/a");
        ok "c2" (Lfs.Fs.create fs ~heat_group:2 "/b");
        for i = 0 to 15 do
          ok "wa" (Lfs.Fs.write_file fs "/a" ~offset:(i * 512) (String.make 512 'a'));
          ok "wb" (Lfs.Fs.write_file fs "/b" ~offset:(i * 512) (String.make 512 'b'))
        done;
        Lfs.Fs.sync fs;
        let r = ok "heat" (Lfs.Fs.heat fs "/a") in
        Alcotest.(check bool) "relocated" true (r.Lfs.Heat.relocated_blocks > 0);
        Alcotest.(check bool) "file intact after relocation" true
          (String.equal
             (ok "read" (Lfs.Fs.read_file fs "/a"))
             (String.make 8192 'a'));
        List.iter
          (fun (_, v) ->
            Alcotest.(check bool) "intact" true
              (Sero.Tamper.equal_verdict v Sero.Tamper.Intact))
          (ok "verify" (Lfs.Fs.verify fs "/a")));
    Alcotest.test_case "Never_relocate freezes bystanders (collateral)" `Quick
      (fun () ->
        let _, fs = make_fs ~clustering:false () in
        ok "c1" (Lfs.Fs.create fs ~heat_group:1 "/a");
        ok "c2" (Lfs.Fs.create fs ~heat_group:2 "/b");
        for i = 0 to 7 do
          ok "wa" (Lfs.Fs.write_file fs "/a" ~offset:(i * 512) (String.make 512 'a'));
          ok "wb" (Lfs.Fs.write_file fs "/b" ~offset:(i * 512) (String.make 512 'b'))
        done;
        Lfs.Fs.sync fs;
        let r = ok "heat" (Lfs.Fs.heat fs ~strategy:Lfs.Heat.Never_relocate "/a") in
        Alcotest.(check bool) "collateral counted" true (r.Lfs.Heat.collateral_frozen > 0);
        (* The bystander is now read-only too. *)
        match Lfs.Fs.write_file fs "/b" ~offset:0 "x" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "bystander writable");
    Alcotest.test_case "heating an empty file fails" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/empty");
        match Lfs.Fs.heat fs "/empty" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "heated an empty file");
    Alcotest.test_case "double heat refused" `Quick (fun () ->
        let _, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/once");
        ok "write" (Lfs.Fs.write_file fs "/once" ~offset:0 "data");
        let _ = ok "heat" (Lfs.Fs.heat fs "/once") in
        match Lfs.Fs.heat fs "/once" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "double heat");
  ]

(* {1 Remount and fsck} *)

let persistence_cases =
  [
    Alcotest.test_case "remount preserves namespace and data" `Quick (fun () ->
        let dev, fs = make_fs () in
        ok "mkdir" (Lfs.Fs.mkdir fs "/dir");
        ok "create" (Lfs.Fs.create fs "/dir/file");
        ok "write" (Lfs.Fs.write_file fs "/dir/file" ~offset:0 "survives remount");
        Lfs.Fs.unmount fs;
        let fs2 = ok "mount" (Lfs.Fs.mount dev) in
        Alcotest.(check string) "data" "survives remount"
          (ok "read" (Lfs.Fs.read_file fs2 "/dir/file")));
    Alcotest.test_case "remount after heat keeps heated state" `Quick
      (fun () ->
        let dev, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs "/h");
        ok "write" (Lfs.Fs.write_file fs "/h" ~offset:0 "frozen");
        let _ = ok "heat" (Lfs.Fs.heat fs "/h") in
        Lfs.Fs.unmount fs;
        let fs2 = ok "mount" (Lfs.Fs.mount dev) in
        Alcotest.(check bool) "still heated" true (ok "is" (Lfs.Fs.is_heated fs2 "/h"));
        match Lfs.Fs.write_file fs2 "/h" ~offset:0 "y" with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "heated file writable after remount");
    Alcotest.test_case "mount without checkpoint fails cleanly" `Quick
      (fun () ->
        let dev =
          Sero.Device.create (Sero.Device.default_config ~n_blocks:256 ~line_exp:3 ())
        in
        match Lfs.Fs.mount dev with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "mounted an unformatted device");
    Alcotest.test_case "cleaner works after remount (summaries reload)" `Quick
      (fun () ->
        let dev, fs = make_fs ~n_blocks:512 () in
        ok "create" (Lfs.Fs.create fs "/churn");
        for i = 0 to 30 do
          ok "w" (Lfs.Fs.write_file fs "/churn" ~offset:0 (String.make 4096 (Char.chr (65 + (i mod 26)))))
        done;
        Lfs.Fs.unmount fs;
        let fs2 = ok "mount" (Lfs.Fs.mount dev) in
        for i = 0 to 30 do
          ok "w" (Lfs.Fs.write_file fs2 "/churn" ~offset:0 (String.make 4096 (Char.chr (97 + (i mod 26)))))
        done;
        Alcotest.(check bool) "alive" true
          (String.length (ok "read" (Lfs.Fs.read_file fs2 "/churn")) = 4096));
    Alcotest.test_case "fsck recovers heated files after total wipeout" `Quick
      (fun () ->
        let dev, fs = make_fs () in
        ok "create" (Lfs.Fs.create fs ~heat_group:1 "/precious");
        let body = String.init 3000 (fun i -> Char.chr (32 + (i mod 90))) in
        ok "write" (Lfs.Fs.write_file fs "/precious" ~offset:0 body);
        let _ = ok "heat" (Lfs.Fs.heat fs "/precious") in
        Lfs.Fs.sync fs;
        (* Destroy namespace AND checkpoints. *)
        let lay = Sero.Device.layout dev in
        for line = 0 to 7 do
          List.iter
            (fun pba -> Sero.Device.unsafe_write_block dev ~pba (String.make 512 '\x00'))
            (Sero.Layout.data_blocks_of_line lay line)
        done;
        let report = Lfs.Fsck.run dev in
        Alcotest.(check bool) "file recovered" true
          (List.exists
             (fun r ->
               r.Lfs.Fsck.r_complete
               && r.Lfs.Fsck.r_size = 3000
               &&
               match r.Lfs.Fsck.r_content_sha256 with
               | Some d -> Hash.Sha256.equal d (Hash.Sha256.digest_string body)
               | None -> false)
             report.Lfs.Fsck.recovered_files));
  ]

(* {1 Bounded metadata caches}

   The inode and pointer caches share the [Sim.Lru] core with the block
   buffer cache: a soft capacity that evicts clean entries LRU-first
   while dirty (pinned) ones survive until flushed. *)

let cache_bound_cases =
  [
    Alcotest.test_case "icache stays within its soft bound" `Quick (fun () ->
        let dev =
          Sero.Device.create
            (Sero.Device.default_config ~n_blocks:2048 ~line_exp:3 ())
        in
        let fs = Lfs.Fs.format ~icache_cap:8 ~pcache_cap:8 dev in
        for i = 0 to 39 do
          ok "create" (Lfs.Fs.create fs (Printf.sprintf "/f%d" i))
        done;
        Lfs.Fs.sync fs;
        (* All inodes are clean after sync; touching one more forces the
           shrink walk, after which the soft bound holds exactly. *)
        Alcotest.(check bool)
          "exists" true
          (Lfs.Fs.exists fs "/f0");
        let st = Lfs.Fs.state fs in
        Alcotest.(check bool)
          "icache bounded" true
          (Sim.Lru.length st.Lfs.State.icache <= 8);
        Alcotest.(check bool)
          "pcache bounded" true
          (Sim.Lru.length st.Lfs.State.pcache <= 8);
        (* Eviction is not loss: every file remains reachable, its
           inode reloaded from the medium on demand. *)
        for i = 0 to 39 do
          Alcotest.(check bool)
            "reachable after eviction" true
            (Lfs.Fs.exists fs (Printf.sprintf "/f%d" i))
        done);
    Alcotest.test_case "dirty inodes are pinned past the bound" `Quick
      (fun () ->
        let dev =
          Sero.Device.create
            (Sero.Device.default_config ~n_blocks:2048 ~line_exp:3 ())
        in
        let fs = Lfs.Fs.format ~icache_cap:4 dev in
        (* Without a sync, every created inode is dirty: the cache must
           hold all of them even though the capacity is 4. *)
        for i = 0 to 19 do
          ok "create" (Lfs.Fs.create fs (Printf.sprintf "/d%d" i))
        done;
        let st = Lfs.Fs.state fs in
        Alcotest.(check bool)
          "dirty entries exceed the soft bound" true
          (Sim.Lru.length st.Lfs.State.icache > 4);
        Lfs.Fs.sync fs;
        for i = 0 to 19 do
          Alcotest.(check bool)
            "intact after flush" true
            (Lfs.Fs.exists fs (Printf.sprintf "/d%d" i))
        done);
  ]

let () =
  Alcotest.run "lfs"
    [
      ("caches", cache_bound_cases);
      ( "encodings",
        enc_cases
        @ List.map qtest
            [ inode_roundtrip; dirents_roundtrip; summary_roundtrip;
              checkpoint_roundtrip; pointer_roundtrip ] );
      ("file-io", file_cases @ [ qtest file_io_model ]);
      ("namespace", namespace_cases);
      ("cleaner", cleaner_cases);
      ("heat", heat_cases);
      ("persistence", persistence_cases);
    ]
