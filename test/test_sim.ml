(* The simulation substrate: PRNG, statistics, heap, event kernel. *)

let qtest = QCheck_alcotest.to_alcotest

(* {1 PRNG} *)

let prng_cases =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Sim.Prng.create 99 and b = Sim.Prng.create 99 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Sim.Prng.bits64 a) (Sim.Prng.bits64 b)
        done);
    Alcotest.test_case "copy forks the stream" `Quick (fun () ->
        let a = Sim.Prng.create 7 in
        ignore (Sim.Prng.bits64 a);
        let b = Sim.Prng.copy a in
        Alcotest.(check int64) "same next" (Sim.Prng.bits64 a) (Sim.Prng.bits64 b));
    Alcotest.test_case "split diverges from parent" `Quick (fun () ->
        let a = Sim.Prng.create 7 in
        let b = Sim.Prng.split a in
        Alcotest.(check bool) "different" true
          (Sim.Prng.bits64 a <> Sim.Prng.bits64 b));
    Alcotest.test_case "uniform mean near 1/2" `Quick (fun () ->
        let rng = Sim.Prng.create 3 in
        let acc = ref 0. in
        for _ = 1 to 10000 do
          acc := !acc +. Sim.Prng.uniform rng
        done;
        Alcotest.(check bool) "0.48..0.52" true
          (!acc /. 10000. > 0.48 && !acc /. 10000. < 0.52));
    Alcotest.test_case "bernoulli respects p" `Quick (fun () ->
        let rng = Sim.Prng.create 4 in
        let hits = ref 0 in
        for _ = 1 to 10000 do
          if Sim.Prng.bernoulli rng 0.3 then incr hits
        done;
        Alcotest.(check bool) "±3%" true (!hits > 2700 && !hits < 3300));
    Alcotest.test_case "exponential mean" `Quick (fun () ->
        let rng = Sim.Prng.create 5 in
        let acc = ref 0. in
        for _ = 1 to 20000 do
          acc := !acc +. Sim.Prng.exponential rng 4.
        done;
        Alcotest.(check bool) "mean ≈ 4" true
          (!acc /. 20000. > 3.8 && !acc /. 20000. < 4.2));
    Alcotest.test_case "gaussian moments" `Quick (fun () ->
        let rng = Sim.Prng.create 6 in
        let st = Sim.Stats.create () in
        for _ = 1 to 20000 do
          Sim.Stats.add st (Sim.Prng.gaussian rng ~mu:10. ~sigma:2.)
        done;
        Alcotest.(check bool) "mean ≈ 10" true
          (Float.abs (Sim.Stats.mean st -. 10.) < 0.1);
        Alcotest.(check bool) "sd ≈ 2" true
          (Float.abs (Sim.Stats.stddev st -. 2.) < 0.1));
    Alcotest.test_case "shuffle permutes" `Quick (fun () ->
        let rng = Sim.Prng.create 8 in
        let a = Array.init 50 (fun i -> i) in
        Sim.Prng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Alcotest.(check bool) "same multiset" true
          (sorted = Array.init 50 (fun i -> i));
        Alcotest.(check bool) "actually moved" true (a <> Array.init 50 (fun i -> i)));
  ]

let int_in_range =
  QCheck.Test.make ~name:"int n is always in [0, n)" ~count:300
    QCheck.(pair (int_range 1 1000000) small_nat)
    (fun (n, seed) ->
      let rng = Sim.Prng.create seed in
      let v = Sim.Prng.int rng n in
      v >= 0 && v < n)

(* {1 Stats} *)

let stats_cases =
  [
    Alcotest.test_case "known sample moments" `Quick (fun () ->
        let st = Sim.Stats.create ~name:"t" () in
        List.iter (Sim.Stats.add st) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
        Alcotest.(check (float 1e-9)) "mean" 5. (Sim.Stats.mean st);
        Alcotest.(check (float 1e-6)) "sample sd" 2.13809 (Sim.Stats.stddev st);
        Alcotest.(check (float 1e-9)) "min" 2. (Sim.Stats.min_value st);
        Alcotest.(check (float 1e-9)) "max" 9. (Sim.Stats.max_value st);
        Alcotest.(check (float 1e-9)) "median" 4. (Sim.Stats.percentile st 0.5);
        Alcotest.(check int) "count" 8 (Sim.Stats.count st));
    Alcotest.test_case "empty stats are all zero" `Quick (fun () ->
        let st = Sim.Stats.create () in
        Alcotest.(check (float 0.)) "mean" 0. (Sim.Stats.mean st);
        Alcotest.(check (float 0.)) "sd" 0. (Sim.Stats.stddev st);
        Alcotest.(check (float 0.)) "p99" 0. (Sim.Stats.percentile st 0.99));
    Alcotest.test_case "merge equals combined stream" `Quick (fun () ->
        let a = Sim.Stats.create () and b = Sim.Stats.create () in
        let all = Sim.Stats.create () in
        List.iter
          (fun x ->
            Sim.Stats.add (if x < 5. then a else b) x;
            Sim.Stats.add all x)
          [ 1.; 2.; 3.; 6.; 7.; 8.; 9. ];
        let m = Sim.Stats.merge a b in
        Alcotest.(check (float 1e-9)) "mean" (Sim.Stats.mean all) (Sim.Stats.mean m);
        Alcotest.(check (float 1e-9)) "sd" (Sim.Stats.stddev all) (Sim.Stats.stddev m));
    Alcotest.test_case "SLO quantiles by nearest rank" `Quick (fun () ->
        (* 1..100: nearest-rank p is exactly the pth value. *)
        let st = Sim.Stats.create () in
        List.iter
          (fun i -> Sim.Stats.add st (float_of_int i))
          (List.init 100 (fun i -> i + 1));
        Alcotest.(check (float 1e-9)) "p50" 50. (Sim.Stats.p50 st);
        Alcotest.(check (float 1e-9)) "p95" 95. (Sim.Stats.p95 st);
        Alcotest.(check (float 1e-9)) "p99" 99. (Sim.Stats.p99 st);
        let q50, q95, q99 = Sim.Stats.quantiles st in
        Alcotest.(check (float 1e-9)) "quantiles p50" 50. q50;
        Alcotest.(check (float 1e-9)) "quantiles p95" 95. q95;
        Alcotest.(check (float 1e-9)) "quantiles p99" 99. q99);
    Alcotest.test_case "single sample is every percentile" `Quick (fun () ->
        let st = Sim.Stats.create () in
        Sim.Stats.add st 7.25;
        Alcotest.(check (float 0.)) "p50" 7.25 (Sim.Stats.p50 st);
        Alcotest.(check (float 0.)) "p99" 7.25 (Sim.Stats.p99 st));
    Alcotest.test_case "histogram bins and clamps" `Quick (fun () ->
        let h = Sim.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
        List.iter (Sim.Stats.Histogram.add h) [ -1.; 0.5; 5.5; 9.9; 42. ];
        let c = Sim.Stats.Histogram.counts h in
        Alcotest.(check int) "below clamps to first" 2 c.(0);
        Alcotest.(check int) "mid" 1 c.(5);
        Alcotest.(check int) "above clamps to last" 2 c.(9);
        Alcotest.(check int) "total" 5 (Sim.Stats.Histogram.total h));
  ]

let percentile_bounds =
  QCheck.Test.make ~name:"percentiles lie within [min, max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_range (-100.) 100.)) (float_range 0.01 1.))
    (fun (xs, p) ->
      let st = Sim.Stats.create () in
      List.iter (Sim.Stats.add st) xs;
      let v = Sim.Stats.percentile st p in
      v >= Sim.Stats.min_value st -. 1e-9 && v <= Sim.Stats.max_value st +. 1e-9)

let quantiles_match_percentile =
  QCheck.Test.make ~name:"quantiles = (p50, p95, p99)" ~count:200
    QCheck.(list_of_size Gen.(1 -- 80) (float_range (-100.) 100.))
    (fun xs ->
      let st = Sim.Stats.create () in
      List.iter (Sim.Stats.add st) xs;
      let q50, q95, q99 = Sim.Stats.quantiles st in
      q50 = Sim.Stats.p50 st && q95 = Sim.Stats.p95 st
      && q99 = Sim.Stats.p99 st)

(* {1 Heap} *)

let heap_sorts =
  QCheck.Test.make ~name:"heap pops in key order" ~count:200
    QCheck.(small_list (float_range (-1000.) 1000.))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iteri (fun i k -> Sim.Heap.push h k i) keys;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let popped = drain [] in
      popped = List.sort compare keys)

let heap_stable =
  (* Push (key, seq) pairs; among equal keys the pop order must be the
     push order — {!Sim.Des} relies on this for FIFO ties. *)
  QCheck.Test.make ~name:"equal keys pop in push order" ~count:300
    QCheck.(small_list (int_range 0 3))
    (fun keys ->
      let h = Sim.Heap.create () in
      List.iteri (fun i k -> Sim.Heap.push h (float_of_int k) (k, i)) keys;
      let rec drain acc =
        match Sim.Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      let stable =
        List.stable_sort
          (fun (a, _) (b, _) -> compare a b)
          (List.mapi (fun i k -> (k, i)) keys)
      in
      popped = stable)

let heap_cases =
  [
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Sim.Heap.create () in
        Sim.Heap.push h 2. "b";
        Sim.Heap.push h 1. "a";
        Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "a")) (Sim.Heap.peek h);
        Alcotest.(check int) "size" 2 (Sim.Heap.size h);
        Alcotest.(check (option (pair (float 0.) string))) "pop" (Some (1., "a")) (Sim.Heap.pop h);
        Alcotest.(check int) "size after" 1 (Sim.Heap.size h));
    Alcotest.test_case "clear empties" `Quick (fun () ->
        let h = Sim.Heap.create () in
        for i = 1 to 20 do
          Sim.Heap.push h (float_of_int i) i
        done;
        Sim.Heap.clear h;
        Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h));
    Alcotest.test_case "clear and trim shed capacity" `Quick (fun () ->
        let h = Sim.Heap.create () in
        for i = 1 to 1000 do
          Sim.Heap.push h (float_of_int i) i
        done;
        Alcotest.(check bool) "grew" true (Sim.Heap.capacity h >= 1000);
        for _ = 1 to 990 do
          Sim.Heap.drop_min h
        done;
        Sim.Heap.trim h;
        Alcotest.(check int) "snug" 16 (Sim.Heap.capacity h);
        Alcotest.(check int) "kept" 10 (Sim.Heap.size h);
        Alcotest.(check (float 0.)) "min survives trim" 991. (Sim.Heap.min_key h);
        Sim.Heap.clear h;
        Alcotest.(check int) "initial" 16 (Sim.Heap.capacity h));
    Alcotest.test_case "min_key/min_value/drop_min match pop" `Quick (fun () ->
        let h = Sim.Heap.create () in
        List.iteri (fun i k -> Sim.Heap.push h k i) [ 3.; 1.; 2.; 1. ];
        Alcotest.(check (float 0.)) "min key" 1. (Sim.Heap.min_key h);
        Alcotest.(check int) "min value" 1 (Sim.Heap.min_value h);
        Sim.Heap.drop_min h;
        Alcotest.(check int) "fifo tie next" 3 (Sim.Heap.min_value h);
        Alcotest.check_raises "empty min" (Invalid_argument "Heap.min_key: empty heap")
          (fun () ->
            Sim.Heap.clear h;
            ignore (Sim.Heap.min_key h)));
  ]

(* {1 Calendar queue (Wheel)} *)

let drain_wheel w =
  let rec go acc =
    match Sim.Wheel.pop w with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

let drain_heap h =
  let rec go acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some kv -> go (kv :: acc)
  in
  go []

(* Key generator with deliberate collisions: a handful of quantised
   magnitudes so FIFO ties and bucket crowding both happen. *)
let tie_keys =
  QCheck.(
    list_of_size Gen.(int_range 0 200)
      (map (fun k -> float_of_int k /. 4.) (int_range (-40) 40)))

let wheel_sorts =
  QCheck.Test.make ~name:"wheel pops in key order" ~count:200
    QCheck.(small_list (float_range (-1000.) 1000.))
    (fun keys ->
      let w = Sim.Wheel.create () in
      List.iteri (fun i k -> Sim.Wheel.push w k i) keys;
      List.map fst (drain_wheel w) = List.sort compare keys)

let wheel_matches_heap =
  QCheck.Test.make
    ~name:"wheel and heap drain identically (FIFO ties included)" ~count:300
    tie_keys
    (fun keys ->
      let w = Sim.Wheel.create () and h = Sim.Heap.create () in
      List.iteri
        (fun i k ->
          Sim.Wheel.push w k i;
          Sim.Heap.push h k i)
        keys;
      drain_wheel w = drain_heap h)

let wheel_matches_heap_interleaved =
  (* Random push/pop interleavings hit the cursor reset and halving
     paths that a pure push-then-drain run never sees. *)
  QCheck.Test.make ~name:"wheel == heap under push/pop interleavings"
    ~count:200
    QCheck.(list (option (pair (int_range (-40) 40) (int_range 1 3))))
    (fun script ->
      let w = Sim.Wheel.create () and h = Sim.Heap.create () in
      let i = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some (k, times) ->
              let key = float_of_int k /. 8. in
              for _ = 1 to times do
                incr i;
                Sim.Wheel.push w key !i;
                Sim.Heap.push h key !i
              done;
              true
          | None -> Sim.Wheel.pop w = Sim.Heap.pop h)
        script
      && drain_wheel w = drain_heap h)

let wheel_cases =
  [
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let w = Sim.Wheel.create () in
        Sim.Wheel.push w 2. "b";
        Sim.Wheel.push w 1. "a";
        Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "a"))
          (Sim.Wheel.peek w);
        Alcotest.(check int) "size" 2 (Sim.Wheel.size w);
        Alcotest.(check (option (pair (float 0.) string))) "pop" (Some (1., "a"))
          (Sim.Wheel.pop w);
        Alcotest.(check int) "size after" 1 (Sim.Wheel.size w));
    Alcotest.test_case "resize round trip stays sorted and stable" `Quick
      (fun () ->
        (* 10k pushes force several doublings, the drain forces the
           halvings on the way back down. *)
        let w = Sim.Wheel.create () in
        let rng = Sim.Prng.create 11 in
        for i = 0 to 9_999 do
          Sim.Wheel.push w (float_of_int (Sim.Prng.int rng 500)) i
        done;
        let popped = drain_wheel w in
        let sorted =
          List.stable_sort (fun (a, _) (b, _) -> compare a b) popped
        in
        Alcotest.(check int) "all back" 10_000 (List.length popped);
        Alcotest.(check bool) "sorted and FIFO-stable" true (popped = sorted));
    Alcotest.test_case "clock-like workload with huge key span" `Quick
      (fun () ->
        (* Sparse far-future keys next to dense near ones exercise the
           year-scan fallback and the width re-anchor. *)
        let w = Sim.Wheel.create () in
        Sim.Wheel.push w 1e12 `Far;
        Sim.Wheel.push w 0.5 `Near;
        Sim.Wheel.push w 3.5e6 `Mid;
        Alcotest.(check bool) "near first" true
          (Sim.Wheel.pop w = Some (0.5, `Near));
        Alcotest.(check bool) "mid next" true
          (Sim.Wheel.pop w = Some (3.5e6, `Mid));
        Alcotest.(check bool) "far last" true
          (Sim.Wheel.pop w = Some (1e12, `Far)));
    Alcotest.test_case "non-finite keys rejected" `Quick (fun () ->
        let w = Sim.Wheel.create () in
        Alcotest.check_raises "nan" (Invalid_argument "Wheel.push: non-finite key")
          (fun () -> Sim.Wheel.push w Float.nan ());
        Alcotest.check_raises "inf" (Invalid_argument "Wheel.push: non-finite key")
          (fun () -> Sim.Wheel.push w Float.infinity ()));
    Alcotest.test_case "clear empties and resets" `Quick (fun () ->
        let w = Sim.Wheel.create () in
        for i = 1 to 100 do
          Sim.Wheel.push w (float_of_int i) i
        done;
        Sim.Wheel.clear w;
        Alcotest.(check bool) "empty" true (Sim.Wheel.is_empty w);
        Sim.Wheel.push w 7. 7;
        Alcotest.(check (float 0.)) "usable after clear" 7. (Sim.Wheel.min_key w));
    Alcotest.test_case "wheel does less work than heap when dense" `Quick
      (fun () ->
        (* The headline O(1) claim on the hold model: 4k live timers
           (every key within an exponential horizon of now), pop-min /
           push-later churn; steady-state comparison counts must
           separate by at least the E26 acceptance factor of 3. *)
        let w = Sim.Wheel.create () and h = Sim.Heap.create () in
        let rng_w = Sim.Prng.create 13 and rng_h = Sim.Prng.create 13 in
        for i = 0 to 4_095 do
          Sim.Wheel.push w (Sim.Prng.exponential rng_w 1.0) i;
          Sim.Heap.push h (Sim.Prng.exponential rng_h 1.0) i
        done;
        let w0 = Sim.Wheel.work w and h0 = Sim.Heap.work h in
        for _ = 1 to 20_000 do
          let k = Sim.Wheel.min_key w and v = Sim.Wheel.min_value w in
          Sim.Wheel.drop_min w;
          Sim.Wheel.push w (k +. Sim.Prng.exponential rng_w 1.0) v;
          let k = Sim.Heap.min_key h and v = Sim.Heap.min_value h in
          Sim.Heap.drop_min h;
          Sim.Heap.push h (k +. Sim.Prng.exponential rng_h 1.0) v
        done;
        let ratio =
          float_of_int (Sim.Heap.work h - h0)
          /. float_of_int (Sim.Wheel.work w - w0)
        in
        Alcotest.(check bool)
          (Printf.sprintf "heap/wheel work ratio %.1f >= 3" ratio)
          true (ratio >= 3.));
  ]

(* {1 DES kernel} *)

let des_cases =
  [
    Alcotest.test_case "events fire in time order" `Quick (fun () ->
        let des = Sim.Des.create () in
        let log = ref [] in
        Sim.Des.schedule des ~delay:3. (fun t -> log := (3, Sim.Des.now t) :: !log);
        Sim.Des.schedule des ~delay:1. (fun t -> log := (1, Sim.Des.now t) :: !log);
        Sim.Des.schedule des ~delay:2. (fun t -> log := (2, Sim.Des.now t) :: !log);
        Sim.Des.run des;
        Alcotest.(check (list (pair int (float 0.)))) "order"
          [ (1, 1.); (2, 2.); (3, 3.) ]
          (List.rev !log));
    Alcotest.test_case "handlers can schedule more events" `Quick (fun () ->
        let des = Sim.Des.create () in
        let count = ref 0 in
        let rec tick t =
          incr count;
          if !count < 5 then Sim.Des.schedule t ~delay:1. tick
        in
        Sim.Des.schedule des ~delay:1. tick;
        Sim.Des.run des;
        Alcotest.(check int) "5 ticks" 5 !count;
        Alcotest.(check (float 0.)) "clock at 5" 5. (Sim.Des.now des));
    Alcotest.test_case "run ~until leaves later events queued" `Quick (fun () ->
        let des = Sim.Des.create () in
        let fired = ref [] in
        List.iter
          (fun d -> Sim.Des.schedule des ~delay:d (fun _ -> fired := d :: !fired))
          [ 1.; 2.; 10. ];
        Sim.Des.run ~until:5. des;
        Alcotest.(check (list (float 0.))) "only early" [ 2.; 1. ] !fired;
        Alcotest.(check int) "one pending" 1 (Sim.Des.pending des);
        Alcotest.(check (float 0.)) "clock clamped" 5. (Sim.Des.now des));
    Alcotest.test_case "equal timestamps fire FIFO" `Quick (fun () ->
        let des = Sim.Des.create () in
        let log = ref [] in
        (* Interleave two timestamps; within each, scheduling order must
           be firing order. *)
        List.iter
          (fun (at, tag) ->
            Sim.Des.schedule_at des ~at (fun _ -> log := tag :: !log))
          [ (2., "b0"); (1., "a0"); (2., "b1"); (1., "a1"); (2., "b2") ];
        Sim.Des.run des;
        Alcotest.(check (list string)) "fifo ties"
          [ "a0"; "a1"; "b0"; "b1"; "b2" ]
          (List.rev !log));
    Alcotest.test_case "scheduling in the past is rejected" `Quick (fun () ->
        let des = Sim.Des.create () in
        Sim.Des.schedule des ~delay:2. (fun t ->
            Alcotest.check_raises "past"
              (Invalid_argument "Des.schedule_at: event in the past") (fun () ->
                Sim.Des.schedule_at t ~at:1. (fun _ -> ())));
        Sim.Des.run des);
  ]

(* {1 Pool} *)

let pool_cases =
  [
    Alcotest.test_case "parallel_map preserves input order" `Quick (fun () ->
        let xs = List.init 100 (fun i -> i) in
        List.iter
          (fun jobs ->
            Alcotest.(check (list int))
              (Printf.sprintf "jobs=%d" jobs)
              (List.map (fun x -> x * x) xs)
              (Sim.Pool.parallel_map ~jobs (fun x -> x * x) xs))
          [ 1; 2; 4; 7 ]);
    Alcotest.test_case "uneven per-item work still lands in order" `Quick
      (fun () ->
        (* Early items are the slow ones, so a racing domain would
           finish late items first; slots must still come back sorted. *)
        let slow x =
          let rng = Sim.Prng.create x in
          let acc = ref 0 in
          for _ = 1 to (100 - x) * 200 do
            acc := !acc lxor Sim.Prng.int rng 1000
          done;
          ignore !acc;
          x
        in
        let xs = List.init 100 (fun i -> i) in
        Alcotest.(check (list int)) "identity map" xs
          (Sim.Pool.parallel_map ~jobs:4 slow xs));
    Alcotest.test_case "empty and singleton inputs" `Quick (fun () ->
        Alcotest.(check (list int)) "empty" []
          (Sim.Pool.parallel_map ~jobs:4 (fun x -> x) []);
        Alcotest.(check (list int)) "singleton" [ 9 ]
          (Sim.Pool.parallel_map ~jobs:4 (fun x -> x * 3) [ 3 ]));
    Alcotest.test_case "an exception in a worker propagates" `Quick (fun () ->
        List.iter
          (fun jobs ->
            Alcotest.check_raises
              (Printf.sprintf "failure surfaces (jobs=%d)" jobs)
              (Failure "item 13") (fun () ->
                ignore
                  (Sim.Pool.parallel_map ~jobs
                     (fun x ->
                       if x = 13 then failwith "item 13" else x)
                     (List.init 50 (fun i -> i)))))
          [ 1; 4 ]);
    Alcotest.test_case "jobs below 1 rejected" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Sim.Pool.parallel_map: jobs must be >= 1")
          (fun () -> ignore (Sim.Pool.parallel_map ~jobs:0 (fun x -> x) [ 1 ]));
        Alcotest.check_raises "set_jobs zero"
          (Invalid_argument "Sim.Pool.set_jobs: jobs must be >= 1") (fun () ->
            Sim.Pool.set_jobs 0));
    Alcotest.test_case "set_jobs overrides the default" `Quick (fun () ->
        Sim.Pool.set_jobs 3;
        Alcotest.(check int) "3" 3 (Sim.Pool.jobs ());
        Sim.Pool.set_jobs 1;
        Alcotest.(check int) "1" 1 (Sim.Pool.jobs ()));
  ]

(* {1 LRU} *)

let lru_cases =
  [
    Alcotest.test_case "find touches recency; add evicts the coldest" `Quick
      (fun () ->
        let l = Sim.Lru.create ~capacity:3 () in
        List.iter (fun k -> ignore (Sim.Lru.add l k (k * 10))) [ 1; 2; 3 ];
        Alcotest.(check (option int)) "hit" (Some 10) (Sim.Lru.find l 1);
        (* 2 is now the coldest: adding a fourth key evicts it. *)
        Alcotest.(check (list (pair int int)))
          "evicted" [ (2, 20) ] (Sim.Lru.add l 4 40);
        Alcotest.(check bool) "1 kept" true (Sim.Lru.mem l 1);
        Alcotest.(check int) "len" 3 (Sim.Lru.length l));
    Alcotest.test_case "pinned entries survive and soft-exceed capacity"
      `Quick (fun () ->
        (* Odd values are pinned. *)
        let l =
          Sim.Lru.create ~evictable:(fun _ v -> v mod 2 = 0) ~capacity:2 ()
        in
        ignore (Sim.Lru.add l 1 11);
        ignore (Sim.Lru.add l 2 21);
        Alcotest.(check (list (pair int int)))
          "nothing evictable" [] (Sim.Lru.add l 3 31);
        Alcotest.(check int) "soft-exceeded" 3 (Sim.Lru.length l);
        (* An evictable entry drains as soon as the walk reaches it —
           here the just-added one, since everything older is pinned. *)
        Alcotest.(check (list (pair int int)))
          "evictable entry sheds" [ (4, 40) ] (Sim.Lru.add l 4 40);
        (* Unpinning 2 lets the bound recover immediately. *)
        Alcotest.(check (list (pair int int)))
          "unpinned entry evicted" [ (2, 20) ] (Sim.Lru.add l 2 20);
        Alcotest.(check int) "back to capacity" 2 (Sim.Lru.length l));
    Alcotest.test_case "add_lru inserts cold and is evicted first" `Quick
      (fun () ->
        let l = Sim.Lru.create ~capacity:3 () in
        ignore (Sim.Lru.add l 1 10);
        ignore (Sim.Lru.add l 2 20);
        ignore (Sim.Lru.add_lru l 9 90);
        Alcotest.(check (list (pair int int)))
          "cold end last" [ (2, 20); (1, 10); (9, 90) ] (Sim.Lru.to_list_mru l);
        (* A find promotes it like any hit... *)
        Alcotest.(check (option int)) "promoted" (Some 90) (Sim.Lru.find l 9);
        Alcotest.(check (list (pair int int)))
          "now hottest" [ (9, 90); (2, 20); (1, 10) ] (Sim.Lru.to_list_mru l);
        (* ...and replacing an existing binding keeps earned recency. *)
        ignore (Sim.Lru.add_lru l 9 91);
        Alcotest.(check (list (pair int int)))
          "recency kept" [ (9, 91); (2, 20); (1, 10) ] (Sim.Lru.to_list_mru l));
    Alcotest.test_case "set_capacity sheds LRU-first" `Quick (fun () ->
        let l = Sim.Lru.create ~capacity:4 () in
        List.iter (fun k -> ignore (Sim.Lru.add l k k)) [ 1; 2; 3; 4 ];
        Alcotest.(check (list (pair int int)))
          "two evicted, coldest first" [ (1, 1); (2, 2) ]
          (Sim.Lru.set_capacity l 2);
        Alcotest.(check int) "resized" 2 (Sim.Lru.capacity l));
    Alcotest.test_case "trim sheds excess once pins release" `Quick (fun () ->
        let pinned = Hashtbl.create 8 in
        let l =
          Sim.Lru.create ~evictable:(fun k _ -> not (Hashtbl.mem pinned k))
            ~capacity:2 ()
        in
        List.iter
          (fun k ->
            Hashtbl.replace pinned k ();
            ignore (Sim.Lru.add l k (k * 10)))
          [ 1; 2; 3; 4 ];
        Alcotest.(check int) "pins hold it over capacity" 4 (Sim.Lru.length l);
        Hashtbl.reset pinned;
        Alcotest.(check (list (pair int int)))
          "trim evicts coldest first" [ (1, 10); (2, 20) ]
          (Sim.Lru.trim l);
        Alcotest.(check int) "back within bound" 2 (Sim.Lru.length l));
    Alcotest.test_case "remove and clear" `Quick (fun () ->
        let l = Sim.Lru.create ~capacity:4 () in
        List.iter (fun k -> ignore (Sim.Lru.add l k k)) [ 1; 2; 3 ];
        Sim.Lru.remove l 2;
        Alcotest.(check bool) "gone" false (Sim.Lru.mem l 2);
        Alcotest.(check int) "len" 2 (Sim.Lru.length l);
        Sim.Lru.clear l;
        Alcotest.(check int) "empty" 0 (Sim.Lru.length l);
        Alcotest.(check (list (pair int int)))
          "no stale list" [] (Sim.Lru.to_list_mru l));
  ]

(* Model-based check: the intrusive-list implementation against a naive
   MRU-first assoc list with the same soft-capacity eviction rule.
   Values [v] with [v mod 3 = 0] are pinned. *)
let lru_matches_model =
  let model_pinned v = v mod 3 = 0 in
  let model_shrink cap l =
    let n = List.length l in
    if n <= cap then l
    else
      (* Walk from the cold end evicting unpinned entries. *)
      let rec go excess = function
        | [] -> []
        | (k, v) :: hotter ->
            if excess > 0 && not (model_pinned v) then go (excess - 1) hotter
            else (k, v) :: go excess hotter
      in
      List.rev (go (n - cap) (List.rev l))
  in
  let apply_model cap l = function
    | `Add (k, v) ->
        let l = List.remove_assoc k l in
        model_shrink cap ((k, v) :: l)
    | `Add_lru (k, v) ->
        if List.mem_assoc k l then
          model_shrink cap (List.map (fun (k', v') -> (k', if k' = k then v else v')) l)
        else model_shrink cap (l @ [ (k, v) ])
    | `Find k -> (
        match List.assoc_opt k l with
        | None -> l
        | Some v -> (k, v) :: List.remove_assoc k l)
    | `Remove k -> List.remove_assoc k l
  in
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun k v -> `Add (k, v)) (int_range 0 9) (int_range 0 99);
          map2 (fun k v -> `Add_lru (k, v)) (int_range 0 9) (int_range 0 99);
          map (fun k -> `Find k) (int_range 0 9);
          map (fun k -> `Remove k) (int_range 0 9);
        ])
  in
  let print_op = function
    | `Add (k, v) -> Printf.sprintf "add %d %d" k v
    | `Add_lru (k, v) -> Printf.sprintf "add_lru %d %d" k v
    | `Find k -> Printf.sprintf "find %d" k
    | `Remove k -> Printf.sprintf "remove %d" k
  in
  QCheck.Test.make ~name:"lru matches the naive model (with pinning)"
    ~count:300
    QCheck.(
      pair (int_range 1 6)
        (make
           Gen.(list_size (1 -- 60) op_gen)
           ~print:(fun ops -> String.concat "; " (List.map print_op ops))))
    (fun (cap, ops) ->
      let l =
        Sim.Lru.create ~evictable:(fun _ v -> not (model_pinned v)) ~capacity:cap ()
      in
      let model = ref [] in
      List.for_all
        (fun op ->
          (match op with
          | `Add (k, v) -> ignore (Sim.Lru.add l k v)
          | `Add_lru (k, v) -> ignore (Sim.Lru.add_lru l k v)
          | `Find k -> ignore (Sim.Lru.find l k)
          | `Remove k -> Sim.Lru.remove l k);
          model := apply_model cap !model op;
          Sim.Lru.to_list_mru l = !model)
        ops)

let pool_matches_list_map =
  QCheck.Test.make ~name:"parallel_map == List.map for any jobs" ~count:100
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
      Sim.Pool.parallel_map ~jobs (fun x -> (x * 7) - 1) xs
      = List.map (fun x -> (x * 7) - 1) xs)

(* {1 Scheduler twins} *)

(* The same scheduling script must produce the same event log under both
   Des back-ends — the wheel is an equivalence twin of the heap, not an
   approximation of it. *)
let des_twins_agree =
  QCheck.Test.make ~name:"Des event logs identical under heap and wheel"
    ~count:200
    QCheck.(list (pair (int_range 0 20) (int_range 0 2)))
    (fun script ->
      let run sched =
        let des = Sim.Des.create ~sched () in
        let log = ref [] in
        List.iteri
          (fun tag (at, respawn) ->
            Sim.Des.schedule_at des ~at:(float_of_int at /. 2.) (fun t ->
                log := (tag, Sim.Des.now t) :: !log;
                (* Handlers reschedule themselves a little later, so
                   ties created at run time are compared too. *)
                for k = 1 to respawn do
                  Sim.Des.schedule t ~delay:(float_of_int k /. 4.) (fun t ->
                      log := (100 + tag, Sim.Des.now t) :: !log)
                done))
          script;
        Sim.Des.run des;
        List.rev !log
      in
      run Sim.Des.Binary_heap = run Sim.Des.Timing_wheel)

let sched_cases =
  [
    Alcotest.test_case "SERO_SCHED-independent default is settable" `Quick
      (fun () ->
        let saved = Sim.Des.default_sched () in
        Sim.Des.set_default_sched Sim.Des.Binary_heap;
        Alcotest.(check bool) "heap default" true
          (Sim.Des.sched (Sim.Des.create ()) = Sim.Des.Binary_heap);
        Sim.Des.set_default_sched Sim.Des.Timing_wheel;
        Alcotest.(check bool) "wheel default" true
          (Sim.Des.sched (Sim.Des.create ()) = Sim.Des.Timing_wheel);
        Sim.Des.set_default_sched saved);
    Alcotest.test_case "sched_work counts scheduler comparisons" `Quick
      (fun () ->
        let des = Sim.Des.create () in
        Alcotest.(check int) "idle" 0 (Sim.Des.sched_work des);
        for i = 1 to 100 do
          Sim.Des.schedule des ~delay:(float_of_int (i mod 7)) (fun _ -> ())
        done;
        Sim.Des.run des;
        Alcotest.(check bool) "counted" true (Sim.Des.sched_work des > 0));
  ]

(* {1 Keyed PRNG streams} *)

let stream_cases =
  [
    Alcotest.test_case "stream is a pure function of (seed, index)" `Quick
      (fun () ->
        let a = Sim.Prng.stream ~seed:42 7 and b = Sim.Prng.stream ~seed:42 7 in
        for _ = 1 to 50 do
          Alcotest.(check int64) "same" (Sim.Prng.bits64 a) (Sim.Prng.bits64 b)
        done);
    Alcotest.test_case "neighbour streams decorrelate" `Quick (fun () ->
        (* Adjacent indices and adjacent seeds must not produce aligned
           output — the double-mix breaks the lattice. *)
        let pairs =
          [
            (Sim.Prng.stream ~seed:1 0, Sim.Prng.stream ~seed:1 1);
            (Sim.Prng.stream ~seed:1 0, Sim.Prng.stream ~seed:2 0);
            (Sim.Prng.stream ~seed:0 3, Sim.Prng.stream ~seed:3 0);
          ]
        in
        List.iter
          (fun (a, b) ->
            let agree = ref 0 in
            for _ = 1 to 64 do
              if Sim.Prng.bool a = Sim.Prng.bool b then incr agree
            done;
            Alcotest.(check bool) "near half" true (!agree > 16 && !agree < 48))
          pairs);
  ]

(* {1 Stats merging} *)

let stats_merge_cases =
  [
    Alcotest.test_case "merge_many matches re-adding every sample" `Quick
      (fun () ->
        let rng = Sim.Prng.create 21 in
        let parts = List.init 5 (fun i -> Sim.Stats.create ~name:(string_of_int i) ()) in
        let whole = Sim.Stats.create () in
        List.iter
          (fun part ->
            for _ = 1 to 200 do
              let x = Sim.Prng.gaussian rng ~mu:10. ~sigma:3. in
              Sim.Stats.add part x;
              Sim.Stats.add whole x
            done)
          parts;
        let merged = Sim.Stats.merge_many ~name:"merged" parts in
        Alcotest.(check int) "count" (Sim.Stats.count whole) (Sim.Stats.count merged);
        Alcotest.(check (float 1e-9)) "mean" (Sim.Stats.mean whole) (Sim.Stats.mean merged);
        Alcotest.(check (float 1e-6)) "stddev" (Sim.Stats.stddev whole) (Sim.Stats.stddev merged);
        Alcotest.(check (float 0.)) "min" (Sim.Stats.min_value whole) (Sim.Stats.min_value merged);
        Alcotest.(check (float 0.)) "max" (Sim.Stats.max_value whole) (Sim.Stats.max_value merged);
        (* Reservoirs small enough to be lossless => identical quantiles. *)
        Alcotest.(check (float 0.)) "p99" (Sim.Stats.p99 whole) (Sim.Stats.p99 merged));
    Alcotest.test_case "merge_many of nothing is empty" `Quick (fun () ->
        let m = Sim.Stats.merge_many ~name:"none" [] in
        Alcotest.(check int) "count" 0 (Sim.Stats.count m));
    Alcotest.test_case "merge_many skips empty reservoirs" `Quick (fun () ->
        (* Empty shards are the norm in sparse fleet cells (e.g. a site
           whose attack never landed records no latency samples). *)
        let full = Sim.Stats.create ~name:"full" () in
        List.iter (Sim.Stats.add full) [ 3.; 1.; 2. ];
        let parts =
          [ Sim.Stats.create (); full; Sim.Stats.create (); Sim.Stats.create () ]
        in
        let m = Sim.Stats.merge_many ~name:"m" parts in
        Alcotest.(check int) "count" 3 (Sim.Stats.count m);
        Alcotest.(check (float 0.)) "min" 1. (Sim.Stats.min_value m);
        Alcotest.(check (float 0.)) "max" 3. (Sim.Stats.max_value m);
        Alcotest.(check (float 1e-9)) "mean" 2. (Sim.Stats.mean m);
        Alcotest.(check (float 0.)) "p99" 3. (Sim.Stats.p99 m);
        let all_empty =
          Sim.Stats.merge_many ~name:"e" [ Sim.Stats.create (); Sim.Stats.create () ]
        in
        Alcotest.(check int) "all-empty count" 0 (Sim.Stats.count all_empty);
        Alcotest.(check (float 0.)) "all-empty p50" 0. (Sim.Stats.p50 all_empty));
    Alcotest.test_case "single-sample quantiles collapse to the sample" `Quick
      (fun () ->
        let one = Sim.Stats.create ~name:"one" () in
        Sim.Stats.add one 42.5;
        let p50, p95, p99 = Sim.Stats.quantiles one in
        Alcotest.(check (float 0.)) "p50" 42.5 p50;
        Alcotest.(check (float 0.)) "p95" 42.5 p95;
        Alcotest.(check (float 0.)) "p99" 42.5 p99;
        Alcotest.(check (float 0.)) "stddev" 0. (Sim.Stats.stddev one);
        let m = Sim.Stats.merge_many ~name:"m" [ Sim.Stats.create (); one ] in
        Alcotest.(check (float 0.)) "merged p99" 42.5 (Sim.Stats.p99 m);
        Alcotest.(check (float 0.)) "merged min" 42.5 (Sim.Stats.min_value m));
  ]

(* merge_many must be insensitive to how shards are grouped: folding
   pairwise left, pairwise right, or flat over any split point gives the
   same moments and quantiles. *)
let stats_merge_associative =
  QCheck.Test.make ~name:"Stats.merge_many is associative over groupings"
    ~count:100
    QCheck.(pair (list_of_size Gen.(0 -- 40) (float_range (-50.) 50.)) (int_range 0 40))
    (fun (samples, cut) ->
      let cut = if samples = [] then 0 else cut mod (List.length samples + 1) in
      let fill name xs =
        let s = Sim.Stats.create ~name () in
        List.iter (Sim.Stats.add s) xs;
        s
      in
      let a = fill "a" (List.filteri (fun i _ -> i < cut) samples) in
      let b = fill "b" (List.filteri (fun i _ -> i >= cut) samples) in
      let flat = Sim.Stats.merge_many ~name:"m" [ a; b ] in
      let left = Sim.Stats.merge_many ~name:"m" [ Sim.Stats.merge_many ~name:"m" [ a ]; b ]
      and right = Sim.Stats.merge_many ~name:"m" [ a; Sim.Stats.merge_many ~name:"m" [ b ] ] in
      List.for_all
        (fun m ->
          Sim.Stats.count m = Sim.Stats.count flat
          && Float.abs (Sim.Stats.mean m -. Sim.Stats.mean flat) < 1e-9
          && Sim.Stats.quantiles m = Sim.Stats.quantiles flat
          && Sim.Stats.min_value m = Sim.Stats.min_value flat
          && Sim.Stats.max_value m = Sim.Stats.max_value flat)
        [ left; right ])

(* {1 Fleet fan-out} *)

let fleet_jobs_invariant =
  QCheck.Test.make ~name:"Fleet.map byte-identical for any jobs" ~count:60
    QCheck.(pair (int_range 0 70) (int_range 1 8))
    (fun (n, jobs) ->
      let f ~rng i = (i, Sim.Prng.int rng 1000, Sim.Prng.uniform rng) in
      Sim.Fleet.map ~jobs ~seed:5 n f = Sim.Fleet.map ~jobs:1 ~seed:5 n f)

let fleet_cases =
  [
    Alcotest.test_case "shard plan is pure in n and covers it" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let plan = Sim.Fleet.shards n in
            let covered =
              List.concat_map
                (fun { Sim.Fleet.first; count } ->
                  List.init count (fun k -> first + k))
                plan
            in
            Alcotest.(check (list int))
              (Printf.sprintf "n=%d" n)
              (List.init n Fun.id) covered;
            Alcotest.(check bool) "bounded" true
              (List.length plan <= Sim.Fleet.default_shards))
          [ 0; 1; 63; 64; 65; 1000 ]);
    Alcotest.test_case "map_merge equals merge of sequential parts" `Quick
      (fun () ->
        let f ~rng i = float_of_int i +. Sim.Prng.uniform rng in
        let merge xs = List.fold_left ( +. ) 0. xs in
        let direct =
          merge (List.init 100 (fun i -> f ~rng:(Sim.Fleet.device_rng ~seed:9 i) i))
        in
        List.iter
          (fun jobs ->
            (* Shard-grouped float addition differs from flat addition in
               general, but must not differ across jobs. *)
            Alcotest.(check (float 0.))
              (Printf.sprintf "jobs=%d" jobs)
              (Sim.Fleet.map_merge ~jobs:1 ~seed:9 100 ~f ~merge)
              (Sim.Fleet.map_merge ~jobs ~seed:9 100 ~f ~merge);
            Alcotest.(check (float 1e-9))
              "close to flat sum" direct
              (Sim.Fleet.map_merge ~jobs ~seed:9 100 ~f ~merge))
          [ 2; 3; 8 ]);
    Alcotest.test_case "stats merge across shards is deterministic" `Quick
      (fun () ->
        let f ~rng _ =
          let st = Sim.Stats.create ~name:"lat" () in
          for _ = 1 to 20 do
            Sim.Stats.add st (Sim.Prng.exponential rng 2.0)
          done;
          st
        in
        let merge = Sim.Stats.merge_many ~name:"lat" in
        let quantiles jobs =
          Sim.Stats.quantiles (Sim.Fleet.map_merge ~jobs ~seed:3 200 ~f ~merge)
        in
        let q1 = quantiles 1 in
        List.iter
          (fun jobs ->
            let a, b, c = q1 and x, y, z = quantiles jobs in
            Alcotest.(check (float 0.)) "p50" a x;
            Alcotest.(check (float 0.)) "p95" b y;
            Alcotest.(check (float 0.)) "p99" c z)
          [ 2; 5; 8 ]);
  ]

let () =
  Alcotest.run "sim"
    [
      ("prng", prng_cases @ stream_cases @ [ qtest int_in_range ]);
      ("stats",
       stats_cases @ stats_merge_cases
       @ [
           qtest percentile_bounds;
           qtest quantiles_match_percentile;
           qtest stats_merge_associative;
         ]);
      ("heap", heap_cases @ [ qtest heap_sorts; qtest heap_stable ]);
      ("wheel",
       wheel_cases
       @ [
           qtest wheel_sorts;
           qtest wheel_matches_heap;
           qtest wheel_matches_heap_interleaved;
         ]);
      ("des", des_cases @ sched_cases @ [ qtest des_twins_agree ]);
      ("lru", lru_cases @ [ qtest lru_matches_model ]);
      ("pool", pool_cases @ [ qtest pool_matches_list_map ]);
      ("fleet", fleet_cases @ [ qtest fleet_jobs_invariant ]);
    ]
