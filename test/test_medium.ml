(* The patterned medium: dot state machine (Figure 2), packed state
   matrix, and the four bit operations. *)

let qtest = QCheck_alcotest.to_alcotest

let dot_state =
  QCheck.make
    (QCheck.Gen.oneofl
       [ Pmedia.Dot.Magnetised Pmedia.Dot.Up;
         Pmedia.Dot.Magnetised Pmedia.Dot.Down; Pmedia.Dot.Heated ])
    ~print:(Format.asprintf "%a" Pmedia.Dot.pp)

(* {1 Figure 2: state machine} *)

let dot_cases =
  [
    Alcotest.test_case "exhaustive transition table matches Figure 2" `Quick
      (fun () ->
        let expect =
          [
            (Pmedia.Dot.Magnetised Pmedia.Dot.Up, "mwb 0", Pmedia.Dot.Magnetised Pmedia.Dot.Down);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Up, "mwb 1", Pmedia.Dot.Magnetised Pmedia.Dot.Up);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Up, "ewb", Pmedia.Dot.Heated);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Down, "mwb 0", Pmedia.Dot.Magnetised Pmedia.Dot.Down);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Down, "mwb 1", Pmedia.Dot.Magnetised Pmedia.Dot.Up);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Down, "ewb", Pmedia.Dot.Heated);
            (Pmedia.Dot.Heated, "mwb 0", Pmedia.Dot.Heated);
            (Pmedia.Dot.Heated, "mwb 1", Pmedia.Dot.Heated);
            (Pmedia.Dot.Heated, "ewb", Pmedia.Dot.Heated);
          ]
        in
        List.iter
          (fun (s, op, s') ->
            Alcotest.(check bool)
              (Format.asprintf "%a --%s--> %a" Pmedia.Dot.pp s op Pmedia.Dot.pp s')
              true
              (List.exists
                 (fun (a, b, c) ->
                   Pmedia.Dot.equal a s && String.equal b op && Pmedia.Dot.equal c s')
                 Pmedia.Dot.transition_table))
          expect;
        Alcotest.(check int) "exactly 9 edges" 9
          (List.length Pmedia.Dot.transition_table));
  ]

let heated_absorbing =
  QCheck.Test.make ~name:"Heated is absorbing" ~count:100 dot_state (fun s ->
      Pmedia.Dot.equal (Pmedia.Dot.transition_ewb s) Pmedia.Dot.Heated
      && Pmedia.Dot.equal
           (Pmedia.Dot.transition_mwb Pmedia.Dot.Heated Pmedia.Dot.Up)
           Pmedia.Dot.Heated)

let mwb_sets_direction =
  QCheck.Test.make ~name:"mwb sets direction on magnetised dots" ~count:100
    (QCheck.pair dot_state QCheck.bool) (fun (s, up) ->
      let d = Pmedia.Dot.of_bool up in
      match Pmedia.Dot.transition_mwb s d with
      | Pmedia.Dot.Magnetised d' -> Pmedia.Dot.equal_direction d d'
      | Pmedia.Dot.Heated -> Pmedia.Dot.is_heated s)

(* {1 Medium matrix} *)

let medium_cases =
  [
    Alcotest.test_case "virgin medium all Down, none heated" `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:8 ~cols:8) in
        for i = 0 to 63 do
          Alcotest.(check bool) "down" true
            (Pmedia.Dot.equal (Pmedia.Medium.get m i)
               (Pmedia.Dot.Magnetised Pmedia.Dot.Down))
        done;
        Alcotest.(check int) "heated" 0 (Pmedia.Medium.heated_count m));
    Alcotest.test_case "out-of-range access raises" `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:4 ~cols:4) in
        Alcotest.check_raises "get"
          (Invalid_argument "Medium: dot index out of range") (fun () ->
            ignore (Pmedia.Medium.get m 16)));
    Alcotest.test_case "neighbours of corner, edge, interior" `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:4 ~cols:4) in
        Alcotest.(check (list int)) "corner" [ 1; 4 ] (List.sort compare (Pmedia.Medium.neighbours m 0));
        Alcotest.(check (list int)) "interior" [ 1; 4; 6; 9 ]
          (List.sort compare (Pmedia.Medium.neighbours m 5));
        Alcotest.(check (list int)) "edge" [ 2; 7 ]
          (List.sort compare (Pmedia.Medium.neighbours m 3)));
    Alcotest.test_case "defect rate places defects deterministically" `Quick
      (fun () ->
        let cfg =
          { (Pmedia.Medium.default_config ~rows:100 ~cols:100) with
            Pmedia.Medium.defect_rate = 0.05 }
        in
        let m1 = Pmedia.Medium.create cfg and m2 = Pmedia.Medium.create cfg in
        let count m =
          let n = ref 0 in
          for i = 0 to Pmedia.Medium.size m - 1 do
            if Pmedia.Medium.is_defect m i then incr n
          done;
          !n
        in
        let c1 = count m1 in
        Alcotest.(check int) "same seed, same defects" c1 (count m2);
        Alcotest.(check bool) "rate roughly honoured" true (c1 > 300 && c1 < 700));
    Alcotest.test_case "capacity equals dot count at 1 bit/dot" `Quick
      (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:10 ~cols:10) in
        Alcotest.(check bool) "≈100 bits" true
          (Float.abs (Pmedia.Medium.capacity_bits m -. 100.) < 1.));
  ]

let set_get_roundtrip =
  QCheck.Test.make ~name:"set/get roundtrip at any index" ~count:300
    QCheck.(pair (int_range 0 255) dot_state)
    (fun (i, s) ->
      let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16) in
      Pmedia.Medium.set m i s;
      Pmedia.Dot.equal (Pmedia.Medium.get m i) s)

let heated_count_tracks =
  QCheck.Test.make ~name:"heated_count tracks set operations" ~count:100
    QCheck.(small_list (int_range 0 63))
    (fun idxs ->
      let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:8 ~cols:8) in
      List.iter (fun i -> Pmedia.Medium.set m i Pmedia.Dot.Heated) idxs;
      let distinct = List.sort_uniq compare idxs in
      Pmedia.Medium.heated_count m = List.length distinct)

(* {1 Bit operations} *)

let make_ctx () =
  Pmedia.Bitops.make
    (Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16))

let bitops_cases =
  [
    Alcotest.test_case "mwb then mrb reads back" `Quick (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.mwb ctx 3 Pmedia.Dot.Up;
        Alcotest.(check bool) "up" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 3) Pmedia.Dot.Up);
        Pmedia.Bitops.mwb ctx 3 Pmedia.Dot.Down;
        Alcotest.(check bool) "down" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 3) Pmedia.Dot.Down));
    Alcotest.test_case "ewb is irreversible; mwb has no effect after" `Quick
      (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.ewb ctx 7;
        Pmedia.Bitops.mwb ctx 7 Pmedia.Dot.Up;
        Alcotest.(check bool) "still heated" true
          (Pmedia.Dot.is_heated (Pmedia.Medium.get (Pmedia.Bitops.medium ctx) 7)));
    Alcotest.test_case "erb detects a heated dot (with enough cycles)" `Quick
      (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.ewb ctx 5;
        Alcotest.(check bool) "heated detected" true
          (Pmedia.Bitops.erb ~cycles:30 ctx 5));
    Alcotest.test_case "erb on healthy dot reports unheated and restores data"
      `Quick (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.mwb ctx 9 Pmedia.Dot.Up;
        Alcotest.(check bool) "not heated" false (Pmedia.Bitops.erb ~cycles:8 ctx 9);
        Alcotest.(check bool) "data intact" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 9) Pmedia.Dot.Up));
    Alcotest.test_case "erb sequence costs 5 primitive ops per cycle" `Quick
      (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.mwb ctx 2 Pmedia.Dot.Down;
        Pmedia.Bitops.reset_counters ctx;
        ignore (Pmedia.Bitops.erb ~cycles:1 ctx 2);
        let c = Pmedia.Bitops.counters ctx in
        Alcotest.(check int) "5 ops (3 reads + 2 writes)" 5
          (Pmedia.Bitops.primitive_ops c);
        Alcotest.(check int) "3 reads" 3 c.Pmedia.Bitops.mrb;
        Alcotest.(check int) "2 writes" 2 c.Pmedia.Bitops.mwb);
    Alcotest.test_case "mrb of heated dot is a coin flip" `Quick (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.ewb ctx 0;
        let ups = ref 0 in
        for _ = 1 to 400 do
          if Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 0) Pmedia.Dot.Up
          then incr ups
        done;
        Alcotest.(check bool) "roughly balanced" true (!ups > 120 && !ups < 280));
    Alcotest.test_case "defective dot reads inverted" `Quick (fun () ->
        let cfg =
          { (Pmedia.Medium.default_config ~rows:32 ~cols:32) with
            Pmedia.Medium.defect_rate = 0.2 }
        in
        let medium = Pmedia.Medium.create cfg in
        let ctx = Pmedia.Bitops.make medium in
        (* find a defect *)
        let defect = ref (-1) in
        for i = 0 to Pmedia.Medium.size medium - 1 do
          if !defect < 0 && Pmedia.Medium.is_defect medium i then defect := i
        done;
        Alcotest.(check bool) "found a defect" true (!defect >= 0);
        Pmedia.Bitops.mwb ctx !defect Pmedia.Dot.Up;
        Alcotest.(check bool) "reads inverted" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx !defect) Pmedia.Dot.Down));
    Alcotest.test_case "aggressive thermal profile causes collateral damage"
      `Quick (fun () ->
        (* A low-mixing-temperature material under an overdriven pulse
           with hardly any substrate heat-sinking: the neighbour reaches
           ~1000 C and its interfaces mix within the pulse. *)
        let cfg =
          { (Pmedia.Medium.default_config ~rows:32 ~cols:32) with
            Pmedia.Medium.material = Physics.Constants.co_pt_low_temp }
        in
        let medium = Pmedia.Medium.create cfg in
        let profile =
          {
            (Physics.Thermal.default_profile cfg.Pmedia.Medium.geometry) with
            Physics.Thermal.peak_temp_c = 5000.;
            decay_length = 50. *. cfg.Pmedia.Medium.geometry.Physics.Constants.pitch;
          }
        in
        let ctx = Pmedia.Bitops.make ~profile medium in
        for i = 100 to 140 do
          Pmedia.Bitops.ewb ctx i
        done;
        let c = Pmedia.Bitops.counters ctx in
        Alcotest.(check bool) "collateral > 0" true (c.Pmedia.Bitops.collateral > 0));
    Alcotest.test_case "read_ber flips healthy reads occasionally" `Quick
      (fun () ->
        let medium = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16) in
        let ctx = Pmedia.Bitops.make ~read_ber:0.2 medium in
        Pmedia.Bitops.mwb ctx 0 Pmedia.Dot.Up;
        let flips = ref 0 in
        for _ = 1 to 500 do
          if Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 0) Pmedia.Dot.Down
          then incr flips
        done;
        Alcotest.(check bool) "~20% flips" true (!flips > 50 && !flips < 160));
  ]

let erb_false_negative_rate =
  Alcotest.test_case "erb misses a heated dot ~25% per single cycle (paper flaw)"
    `Quick (fun () ->
      let ctx = make_ctx () in
      Pmedia.Bitops.ewb ctx 11;
      let missed = ref 0 in
      for _ = 1 to 1000 do
        if not (Pmedia.Bitops.erb ~cycles:1 ctx 11) then incr missed
      done;
      (* P(miss) = 1/4: both verification reads agree by luck. *)
      Alcotest.(check bool) "20%..31%" true (!missed > 200 && !missed < 310))

(* {1 Run kernels}

   The bulk mrb/mwb/erb kernels must be indistinguishable from the
   per-dot scalar ops: same medium state, same counter charges, same
   PRNG stream position afterwards.  Each property builds twin
   media/ctxs from the same config, scrambles both with the same op
   prefix, then runs the kernel on one and a hand-written scalar loop
   on the other. *)

let run_access_cases =
  [
    Alcotest.test_case "count_heated_run matches a naive count" `Quick
      (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16) in
        List.iter
          (fun i -> Pmedia.Medium.set m i Pmedia.Dot.Heated)
          [ 0; 1; 5; 63; 64; 100; 255 ];
        List.iter
          (fun (start, len) ->
            let naive = ref 0 in
            for i = start to start + len - 1 do
              if Pmedia.Dot.is_heated (Pmedia.Medium.get m i) then incr naive
            done;
            Alcotest.(check int)
              (Printf.sprintf "run [%d, %d)" start (start + len))
              !naive
              (Pmedia.Medium.count_heated_run m ~start ~len))
          [ (0, 256); (0, 1); (1, 7); (3, 99); (60, 8); (255, 1); (10, 0) ]);
    Alcotest.test_case "get_run/set_run roundtrip with heated bookkeeping"
      `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:8 ~cols:8) in
        let codes = Bytes.init 30 (fun i -> Char.chr (i mod 3)) in
        Pmedia.Medium.set_run m ~start:5 ~len:30 ~src:codes ~src_pos:0;
        let back = Bytes.create 30 in
        Pmedia.Medium.get_run m ~start:5 ~len:30 ~dst:back ~dst_pos:0;
        Alcotest.(check string) "codes back" (Bytes.to_string codes)
          (Bytes.to_string back);
        Alcotest.(check int) "heated count" 10 (Pmedia.Medium.heated_count m);
        Pmedia.Medium.set_run m ~start:5 ~len:30
          ~src:(Bytes.make 30 '\000') ~src_pos:0;
        Alcotest.(check int) "un-heated again" 0 (Pmedia.Medium.heated_count m));
    Alcotest.test_case "set_run rejects an invalid state code" `Quick
      (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:4 ~cols:4) in
        Alcotest.check_raises "code 3"
          (Invalid_argument "Medium.set_run: invalid state code") (fun () ->
            Pmedia.Medium.set_run m ~start:0 ~len:1 ~src:(Bytes.make 1 '\003')
              ~src_pos:0));
    Alcotest.test_case "run_defect_free never false-accepts" `Quick (fun () ->
        let cfg =
          { (Pmedia.Medium.default_config ~rows:32 ~cols:32) with
            Pmedia.Medium.defect_rate = 0.03 }
        in
        let m = Pmedia.Medium.create cfg in
        for start = 0 to 200 do
          let len = 1 + (start * 7 mod 64) in
          if Pmedia.Medium.run_defect_free m ~start ~len then
            for i = start to start + len - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "dot %d clean" i)
                false
                (Pmedia.Medium.is_defect m i)
            done
        done;
        let clean = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:32 ~cols:32) in
        Alcotest.(check bool) "defect-free medium accepts" true
          (Pmedia.Medium.run_defect_free clean ~start:0 ~len:1024));
    Alcotest.test_case "iter_neighbours visits neighbours in list order"
      `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:5 ~cols:7) in
        for i = 0 to Pmedia.Medium.size m - 1 do
          let seen = ref [] in
          Pmedia.Medium.iter_neighbours m i (fun j -> seen := j :: !seen);
          Alcotest.(check (list int))
            (Printf.sprintf "dot %d" i)
            (Pmedia.Medium.neighbours m i)
            (List.rev !seen)
        done);
  ]

(* Twin setups for the equivalence properties.  [fault_idx = 2] installs
   an empty-plan injector: behaviourally inert (no draws, no cuts) but
   it forces the kernels onto their scalar fallback, so the properties
   cover both paths. *)
let make_twin (seed, dr_idx) (ber_idx, fault_idx) ops =
  let defect_rate = [| 0.; 0.02; 0.1 |].(dr_idx) in
  let read_ber = [| 0.; 0.; 0.3 |].(ber_idx) in
  let cfg =
    { (Pmedia.Medium.default_config ~rows:16 ~cols:16) with
      Pmedia.Medium.defect_rate; seed }
  in
  let make () =
    let m = Pmedia.Medium.create cfg in
    let ctx = Pmedia.Bitops.make ~read_ber m in
    if fault_idx = 2 then
      Pmedia.Bitops.set_fault ctx
        (Some (Fault.Injector.create (Fault.Plan.make ())));
    (* Scramble: same deterministic prefix of scalar ops on both twins
       so runs cross heated, Up and Down dots. *)
    List.iter
      (fun (i, v) ->
        if v mod 5 = 0 then Pmedia.Bitops.ewb ctx i
        else Pmedia.Bitops.mwb ctx i (Pmedia.Dot.of_bool (v mod 2 = 0)))
      ops;
    (m, ctx)
  in
  (make (), make ())

let packed_string m =
  let len = Pmedia.Medium.packed_length m in
  let b = Bytes.create len in
  Pmedia.Medium.blit_packed m ~pos:0 ~dst:b ~dst_off:0 ~len;
  Bytes.unsafe_to_string b

(* Equality of everything the kernel could disturb: medium state bytes,
   heated count, op counters, and the PRNG stream position. *)
let twins_agree (m1, ctx1) (m2, ctx2) =
  let c1 = Pmedia.Bitops.counters ctx1 and c2 = Pmedia.Bitops.counters ctx2 in
  String.equal (packed_string m1) (packed_string m2)
  && Pmedia.Medium.heated_count m1 = Pmedia.Medium.heated_count m2
  && c1.Pmedia.Bitops.mrb = c2.Pmedia.Bitops.mrb
  && c1.Pmedia.Bitops.mwb = c2.Pmedia.Bitops.mwb
  && c1.Pmedia.Bitops.ewb = c2.Pmedia.Bitops.ewb
  && c1.Pmedia.Bitops.erb = c2.Pmedia.Bitops.erb
  && c1.Pmedia.Bitops.collateral = c2.Pmedia.Bitops.collateral
  && Sim.Prng.bits64 (Pmedia.Medium.rng m1)
     = Sim.Prng.bits64 (Pmedia.Medium.rng m2)

let equiv_arb =
  QCheck.(
    quad
      (pair (int_range 1 9999) (int_range 0 2))
      (pair (int_range 0 2) (int_range 0 2))
      (small_list (pair (int_range 0 255) (int_range 0 9)))
      (pair (pair (int_range 0 255) (int_range 0 255)) (int_range 1 3)))

let clamp_run start len_raw = (start, min len_raw (256 - start))

let mrb_run_equiv =
  QCheck.Test.make ~name:"mrb_run == per-dot mrb loop" ~count:300 equiv_arb
    (fun (seeds, modes, ops, ((start, len_raw), _cycles)) ->
      let start, len = clamp_run start len_raw in
      let ((_, ctx1) as t1), ((_, ctx2) as t2) = make_twin seeds modes ops in
      let d1 = Array.make (len + 1) false and d2 = Array.make (len + 1) false in
      Pmedia.Bitops.mrb_run ctx1 ~start ~len ~dst:d1 ~dst_pos:1;
      for k = 0 to len - 1 do
        d2.(k + 1) <- Pmedia.Dot.to_bool (Pmedia.Bitops.mrb ctx2 (start + k))
      done;
      d1 = d2 && twins_agree t1 t2)

let mwb_run_equiv =
  QCheck.Test.make ~name:"mwb_run == per-dot mwb loop" ~count:300 equiv_arb
    (fun (seeds, modes, ops, ((start, len_raw), _cycles)) ->
      let start, len = clamp_run start len_raw in
      let ((_, ctx1) as t1), ((_, ctx2) as t2) = make_twin seeds modes ops in
      let src = Array.init (len + 2) (fun i -> i land 1 = 0) in
      Pmedia.Bitops.mwb_run ctx1 ~start ~len ~src ~src_pos:2;
      for k = 0 to len - 1 do
        Pmedia.Bitops.mwb ctx2 (start + k) (Pmedia.Dot.of_bool src.(k + 2))
      done;
      twins_agree t1 t2)

let erb_run_equiv =
  QCheck.Test.make ~name:"erb_run == per-dot erb loop" ~count:200 equiv_arb
    (fun (seeds, modes, ops, ((start, len_raw), cycles)) ->
      let start, len = clamp_run start len_raw in
      let ((_, ctx1) as t1), ((_, ctx2) as t2) = make_twin seeds modes ops in
      let d1 = Array.make len false and d2 = Array.make len false in
      Pmedia.Bitops.erb_run ~cycles ctx1 ~start ~len ~dst:d1 ~dst_pos:0;
      for k = 0 to len - 1 do
        d2.(k) <- Pmedia.Bitops.erb ~cycles ctx2 (start + k)
      done;
      d1 = d2 && twins_agree t1 t2)

(* {1 CoW segments} *)

let cow_medium () =
  Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:8 ~cols:4832)

let dump m =
  let n = Pmedia.Medium.packed_length m in
  let b = Bytes.create n in
  Pmedia.Medium.blit_packed m ~pos:0 ~dst:b ~dst_off:0 ~len:n;
  Bytes.to_string b

let dot_write_script =
  QCheck.(
    small_list
      (pair (int_range 0 1_000_000) (int_range 0 2)))

let apply_dot_writes m script =
  let size = Pmedia.Medium.size m in
  List.iter
    (fun (i, s) ->
      let state =
        match s with
        | 0 -> Pmedia.Dot.Magnetised Pmedia.Dot.Up
        | 1 -> Pmedia.Dot.Magnetised Pmedia.Dot.Down
        | _ -> Pmedia.Dot.Heated
      in
      Pmedia.Medium.set m (i mod size) state)
    script

let cow_matches_deep_copy =
  (* A CoW clone must be indistinguishable from a full byte copy, and
     its writes must never leak into the parent (or vice versa). *)
  QCheck.Test.make ~name:"clone == deep copy under random writes" ~count:50
    QCheck.(pair dot_write_script dot_write_script)
    (fun (pre, post) ->
      let parent = cow_medium () in
      apply_dot_writes parent pre;
      let clone = Pmedia.Medium.clone parent in
      let deep = cow_medium () in
      let image = dump parent in
      Pmedia.Medium.load_packed deep ~pos:0
        ~src:(Bytes.of_string image)
        ~src_off:0 ~len:(String.length image);
      Pmedia.Medium.recount_heated deep;
      apply_dot_writes clone post;
      apply_dot_writes deep post;
      dump clone = dump deep
      && dump parent = image
      && Pmedia.Medium.count_heated_run clone ~start:0
           ~len:(Pmedia.Medium.size clone)
         = Pmedia.Medium.count_heated_run deep ~start:0
             ~len:(Pmedia.Medium.size deep))

let cow_cases =
  [
    Alcotest.test_case "a fresh clone owns no segments" `Quick (fun () ->
        let parent = cow_medium () in
        Pmedia.Medium.set parent 0 Pmedia.Dot.Heated;
        let clone = Pmedia.Medium.clone parent in
        Alcotest.(check int) "no private segments" 0
          (Pmedia.Medium.owned_segments clone);
        Alcotest.(check int) "no materialisations yet" 0
          (Pmedia.Medium.materialized_total clone);
        Alcotest.(check int) "same geometry" (Pmedia.Medium.total_segments parent)
          (Pmedia.Medium.total_segments clone));
    Alcotest.test_case "a write materialises exactly its segment" `Quick
      (fun () ->
        let parent = cow_medium () in
        let clone = Pmedia.Medium.clone parent in
        let seg_dots = 4 * Pmedia.Medium.segment_bytes in
        Pmedia.Medium.set clone (seg_dots + 1) Pmedia.Dot.Heated;
        Alcotest.(check int) "one private segment" 1
          (Pmedia.Medium.owned_segments clone);
        Alcotest.(check int) "parent untouched" 0
          (Pmedia.Medium.owned_segments parent);
        Alcotest.(check bool) "parent still virgin" true
          (Pmedia.Medium.get parent (seg_dots + 1)
          = Pmedia.Dot.Magnetised Pmedia.Dot.Down));
    Alcotest.test_case "reads never materialise" `Quick (fun () ->
        let parent = cow_medium () in
        apply_dot_writes parent [ (5, 2); (9000, 0) ];
        let clone = Pmedia.Medium.clone parent in
        ignore (dump clone);
        for i = 0 to Pmedia.Medium.size clone - 1 do
          ignore (Pmedia.Medium.get clone i)
        done;
        ignore
          (Pmedia.Medium.count_heated_run clone ~start:0
             ~len:(Pmedia.Medium.size clone));
        Alcotest.(check int) "still zero owned" 0
          (Pmedia.Medium.owned_segments clone));
  ]

let () =
  Alcotest.run "medium"
    [
      ("dot", dot_cases @ List.map qtest [ heated_absorbing; mwb_sets_direction ]);
      ("matrix", medium_cases @ List.map qtest [ set_get_roundtrip; heated_count_tracks ]);
      ("bitops", bitops_cases @ [ erb_false_negative_rate ]);
      ( "run kernels",
        run_access_cases
        @ List.map qtest [ mrb_run_equiv; mwb_run_equiv; erb_run_equiv ] );
      ("cow", cow_cases @ [ qtest cow_matches_deep_copy ]);
    ]
