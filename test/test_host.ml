(* Host front-end: protocol codec round-trips, admission control,
   tenant-arbiter fairness, golden-trace conformance, and the
   single-tenant host-vs-facade equivalence law.

   Run with [regen [DIR]] instead of alcotest arguments to regenerate
   the golden fixtures under DIR (default test/golden). *)

let qtest = QCheck_alcotest.to_alcotest

module P = Host.Proto

(* {1 Generators} *)

let gen_command =
  QCheck.Gen.(
    let pba = 0 -- 0xFFFFFF in
    let line = 0 -- 0xFFFF in
    let payload = string_size ~gen:printable (0 -- 64) in
    let ts = opt (map (fun i -> float_of_int i /. 16.) (0 -- 1_000_000)) in
    oneof
      [
        map (fun pba -> P.Read { pba }) pba;
        map2 (fun pba payload -> P.Write { pba; payload }) pba payload;
        map2 (fun line timestamp -> P.Heat { line; timestamp }) line ts;
        map (fun line -> P.Verify { line }) line;
        return P.Audit;
        map (fun vba -> P.Array_read { vba }) pba;
      ])

let gen_frame =
  QCheck.Gen.(
    map3
      (fun tenant seq cmd -> { P.tenant; seq; cmd })
      (0 -- 0xFFFF) (0 -- 0xFFFFFF) gen_command)

let arb_frame =
  QCheck.make ~print:(Format.asprintf "%a" P.pp_frame) gen_frame

let arb_frames =
  QCheck.make
    ~print:(fun fs ->
      String.concat "; " (List.map (Format.asprintf "%a" P.pp_frame) fs))
    QCheck.Gen.(list_size (1 -- 8) gen_frame)

let gen_response =
  QCheck.Gen.(
    let* r_tenant = 0 -- 0xFFFF in
    let* r_seq = 0 -- 0xFFFFFF in
    let* r_op = 1 -- 6 in
    let* r_phases = list_size (0 -- 3) (0 -- 255) in
    let* r_payload = string_size ~gen:char (0 -- 64) in
    return { P.r_tenant; r_seq; r_op; r_phases; r_payload })

let arb_response =
  QCheck.make ~print:(Format.asprintf "%a" P.pp_response) gen_response

(* {1 Codec round-trips} *)

let frame_roundtrip =
  QCheck.Test.make ~name:"frame encode/decode roundtrip" ~count:500 arb_frame
    (fun f ->
      let s = P.encode_frame f in
      let f', stop = P.decode_frame s in
      f = f' && stop = String.length s)

let frame_stream_roundtrip =
  QCheck.Test.make ~name:"concatenated frames decode in sequence" ~count:200
    arb_frames (fun fs ->
      let s = String.concat "" (List.map P.encode_frame fs) in
      let rec decode off acc =
        if off = String.length s then List.rev acc
        else
          let f, off = P.decode_frame ~off s in
          decode off (f :: acc)
      in
      decode 0 [] = fs)

let frame_truncation =
  QCheck.Test.make ~name:"any strict prefix raises Truncated" ~count:200
    arb_frame (fun f ->
      let s = P.encode_frame f in
      let prefix = String.sub s 0 (String.length s - 1) in
      match P.decode_frame prefix with
      | _ -> false
      | exception Codec.Binio.R.Truncated -> true)

let frame_bad_version =
  QCheck.Test.make ~name:"wrong version raises Proto_error" ~count:100
    arb_frame (fun f ->
      let s = Bytes.of_string (P.encode_frame f) in
      Bytes.set s 4 (Char.chr (P.version + 1));
      match P.decode_frame (Bytes.to_string s) with
      | _ -> false
      | exception P.Proto_error _ -> true)

let response_roundtrip =
  QCheck.Test.make ~name:"response encode/decode roundtrip" ~count:500
    arb_response (fun r ->
      let s = P.encode_response r in
      let r', stop = P.decode_response s in
      r = r' && stop = String.length s)

let trace_roundtrip =
  QCheck.Test.make ~name:"hex trace print/parse roundtrip" ~count:200
    arb_frames (fun fs -> P.parse_trace (P.print_trace fs) = fs)

(* {1 Test rig}

   The golden device geometry: 256 blocks in lines of 8 — what
   [serotool mkdev IMG --blocks 256] creates. *)

let mkdev () =
  Sero.Device.create (Sero.Device.default_config ~n_blocks:256 ~line_exp:3 ())

let data_pbas dev =
  let lay = Sero.Device.layout dev in
  List.init (Sero.Layout.n_lines lay) Fun.id
  |> List.concat_map (Sero.Layout.data_blocks_of_line lay)

let payload_of pba =
  String.init 96 (fun i -> Char.chr ((pba + (11 * i)) land 0xff))

let prefill dev =
  List.iter
    (fun pba ->
      match Sero.Device.write_block dev ~pba (payload_of pba) with
      | Ok () -> ()
      | Error _ -> assert false)
    (data_pbas dev)

let mkserver ?limits_of ?(prefilled = true) () =
  let dev = mkdev () in
  if prefilled then prefill dev;
  let des = Sim.Des.create () in
  let q = Sero.Queue.create des dev in
  let server = Host.Server.create ?limits_of (Host.Server.Device q) in
  (dev, q, server)

(* {1 Admission control} *)

let test_depth_limit () =
  let limits_of _ =
    { Host.Server.weight = 1.; max_depth = 1; rate = infinity; burst = infinity }
  in
  let _, _, server = mkserver ~limits_of () in
  let s = Host.Server.session server ~tenant:3 in
  ignore (Host.Server.submit s (P.Read { pba = 9 }));
  ignore (Host.Server.submit s (P.Read { pba = 10 }));
  (* The second submit must bounce immediately: depth 1 is occupied. *)
  (match Host.Server.responses server with
  | [ r ] ->
      Alcotest.(check (list int))
        "rejected phases" [ P.st_rejected_depth ] r.P.r_phases;
      Alcotest.(check int) "rejected seq" 1 r.P.r_seq
  | rs -> Alcotest.failf "expected 1 immediate response, got %d" (List.length rs));
  Host.Server.drain server;
  (match Host.Server.responses server with
  | [ _; ok ] ->
      Alcotest.(check (list int)) "served phases" [ P.st_ok; P.st_ok ] ok.P.r_phases
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  (* The slot freed at completion: a third command is admitted. *)
  let r = Host.Server.call s (P.Read { pba = 11 }) in
  Alcotest.(check (list int)) "readmitted" [ P.st_ok; P.st_ok ] r.P.r_phases;
  let slo = Host.Server.slo server ~tenant:3 in
  Alcotest.(check int) "rejected_depth counter" 1 (Host.Slo.rejected_depth slo);
  Alcotest.(check int) "completed counter" 2 (Host.Slo.completed slo)

let test_rate_limit () =
  let limits_of _ =
    { Host.Server.weight = 1.; max_depth = max_int; rate = 0.; burst = 2. }
  in
  let _, _, server = mkserver ~limits_of () in
  let s = Host.Server.session server ~tenant:1 in
  ignore (Host.Server.submit s (P.Read { pba = 9 }));
  ignore (Host.Server.submit s (P.Read { pba = 10 }));
  ignore (Host.Server.submit s (P.Read { pba = 11 }));
  Host.Server.drain server;
  let rejected =
    List.filter
      (fun r -> r.P.r_phases = [ P.st_rejected_rate ])
      (Host.Server.responses server)
  in
  Alcotest.(check int) "one rate rejection" 1 (List.length rejected);
  Alcotest.(check int) "rejected seq is the third" 2
    (List.hd rejected).P.r_seq;
  let slo = Host.Server.slo server ~tenant:1 in
  Alcotest.(check int) "rate counter" 1 (Host.Slo.rejected_rate slo);
  Alcotest.(check bool) "rejection_pct"
    true
    (abs_float (Host.Slo.rejection_pct slo -. 100. /. 3.) < 1e-9)

(* {1 Arbiter fairness}

   A heavy tenant floods 12 reads at t=0; the light tenant's one read
   arrives a hair later (distinct arrival time, well before the first
   service completes).  Under arrival order the light response comes
   last; under fair share the arbiter serves the light tenant as soon
   as the sled frees up. *)

let light_index policy =
  let _, q, server = mkserver () in
  Host.Server.set_policy server policy;
  let heavy = Host.Server.session server ~tenant:2 in
  let light = Host.Server.session server ~tenant:1 in
  let pbas = Array.of_list (data_pbas (Sero.Queue.device q)) in
  for i = 0 to 11 do
    ignore (Host.Server.submit heavy (P.Read { pba = pbas.(13 * i) }))
  done;
  Sim.Des.schedule (Sero.Queue.des q) ~delay:1e-9 (fun _ ->
      ignore (Host.Server.submit light (P.Read { pba = pbas.(1) })));
  Host.Server.drain server;
  let rs = Host.Server.responses server in
  Alcotest.(check int) "all served" 13 (List.length rs);
  let rec index i = function
    | [] -> Alcotest.fail "light tenant response missing"
    | r :: _ when r.P.r_tenant = 1 -> i
    | _ :: rest -> index (i + 1) rest
  in
  index 0 rs

let test_fairness () =
  let fifo = light_index Host.Arbiter.Arrival_order in
  let wfs = light_index (Host.Arbiter.Fair_share (fun _ -> 1.)) in
  Alcotest.(check int) "arrival order serves the light tenant last" 12 fifo;
  Alcotest.(check bool)
    (Printf.sprintf "fair share serves it early (index %d)" wfs)
    true (wfs <= 2)

let test_tenant_ledgers () =
  let _, q, server = mkserver () in
  Host.Server.set_policy server (Host.Arbiter.Fair_share (fun _ -> 1.));
  let a = Host.Server.session server ~tenant:1 in
  let b = Host.Server.session server ~tenant:2 in
  for i = 0 to 5 do
    ignore (Host.Server.submit a (P.Read { pba = 9 + i }));
    ignore (Host.Server.submit b (P.Read { pba = 17 + i }))
  done;
  Host.Server.drain server;
  Alcotest.(check (list int)) "tenants" [ 1; 2 ] (Sero.Queue.tenants q);
  Alcotest.(check int) "t1 completions" 6 (Sero.Queue.tenant_completed q 1);
  Alcotest.(check int) "t2 completions" 6 (Sero.Queue.tenant_completed q 2);
  Alcotest.(check bool) "service charged" true
    (Sero.Queue.tenant_service q 1 > 0. && Sero.Queue.tenant_service q 2 > 0.);
  let rep = Host.Server.report server ~tenant:1 in
  Alcotest.(check int) "report completions" 6 rep.Host.Slo.rep_completed;
  Alcotest.(check bool) "report p99 positive" true
    (rep.Host.Slo.rep_p99_ms > 0.)

(* {1 Audit_line}

   On a device target the frame rides the request queue (async, served
   at drain); on a volume target it is one synchronous quorum
   attestation. *)

let test_audit_line_device () =
  let dev, _, server = mkserver () in
  (match Sero.Device.heat_line dev ~line:1 () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "heat 1");
  (match Sero.Device.heat_line dev ~line:2 () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "heat 2");
  let lay = Sero.Device.layout dev in
  let victim = List.hd (Sero.Layout.data_blocks_of_line lay 2) in
  Sero.Device.unsafe_write_block dev ~pba:victim "forged";
  let seen = ref [] in
  Host.Server.set_on_response server (Some (fun r -> seen := r :: !seen));
  let s = Host.Server.session server ~tenant:7 in
  ignore (Host.Server.submit s (P.Audit_line { line = 1 }));
  ignore (Host.Server.submit s (P.Audit_line { line = 2 }));
  ignore (Host.Server.submit s (P.Audit_line { line = 3 }));
  Alcotest.(check int)
    "audit rides the queue: nothing served before drain" 0
    (List.length (Host.Server.responses server));
  Host.Server.drain server;
  (match Host.Server.responses server with
  | [ intact; tampered; unheated ] ->
      Alcotest.(check (list int))
        "intact" [ P.st_ok; P.st_ok ] intact.P.r_phases;
      Alcotest.(check (list int))
        "tampered" [ P.st_ok; P.st_tampered ] tampered.P.r_phases;
      Alcotest.(check (list int))
        "not heated" [ P.st_ok; P.st_not_heated ] unheated.P.r_phases
  | rs -> Alcotest.failf "expected 3 responses, got %d" (List.length rs));
  Alcotest.(check int) "hook saw every response" 3 (List.length !seen);
  Host.Server.set_on_response server None;
  let r = Host.Server.call s (P.Audit_line { line = 1 }) in
  Alcotest.(check (list int)) "hook detached" [ P.st_ok; P.st_ok ] r.P.r_phases;
  Alcotest.(check int) "no further hook calls" 3 (List.length !seen)

let test_audit_line_volume () =
  let v =
    Sarray.Volume.create
      (Sarray.Volume.default_config ~slots:2 ~replication:2 ~spares:0
         ~member_blocks:64 ~line_exp:3 ~cache_capacity:None ())
  in
  let m = Sarray.Volume.map v in
  let dpl =
    Sero.Layout.data_blocks_per_line
      (Sero.Device.layout (Sarray.Volume.device v ~dev:0))
  in
  for line = 0 to 1 do
    for offset = 0 to dpl - 1 do
      match
        Sarray.Volume.write_block v
          ~vba:(Sarray.Amap.vba_of m ~line ~offset)
          (payload_of offset)
      with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write"
    done
  done;
  (match Sarray.Volume.heat_line v ~line:0 () with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "heat");
  let server = Host.Server.create (Host.Server.Volume v) in
  let s = Host.Server.session server ~tenant:7 in
  let attested = Host.Server.call s (P.Audit_line { line = 0 }) in
  Alcotest.(check (list int)) "attested" [ P.st_ok; P.st_ok ] attested.P.r_phases;
  let unheated = Host.Server.call s (P.Audit_line { line = 1 }) in
  Alcotest.(check (list int))
    "not heated" [ P.st_ok; P.st_not_heated ] unheated.P.r_phases;
  (* Rewrite every replica of line 0's first data block: no divergence
     between mirrors, each replica self-convicts against its burn. *)
  List.iter
    (fun slot ->
      let dev = Sarray.Volume.dev_of_slot v ~slot in
      Sero.Device.unsafe_write_block
        (Sarray.Volume.device v ~dev)
        ~pba:(Sarray.Amap.member_pba m ~vba:(Sarray.Amap.vba_of m ~line:0 ~offset:0))
        "forged")
    (Sarray.Volume.serving_slots v ~line:0);
  let split = Host.Server.call s (P.Audit_line { line = 0 }) in
  Alcotest.(check (list int))
    "mirror split" [ P.st_ok; P.st_tampered ] split.P.r_phases

(* {1 Single-tenant equivalence}

   The law the host layer must not break: one tenant through
   [Server.call] observes byte-identical payloads, hashes, verdicts and
   completion order to the queue's own synchronous facade — and leaves
   a byte-identical device image behind. *)

type op = OpR of int | OpW of int * string | OpH of int * float | OpV of int

let gen_op =
  QCheck.Gen.(
    let pba = map (fun i -> 9 + (i mod 32)) (0 -- 1000) in
    let line = map (fun i -> 1 + (i mod 4)) (0 -- 1000) in
    oneof
      [
        map (fun pba -> OpR pba) pba;
        map2 (fun pba s -> OpW (pba, s)) pba (string_size ~gen:printable (1 -- 32));
        map2 (fun line i -> OpH (line, float_of_int i /. 8.)) line (1 -- 64);
        map (fun line -> OpV line) line;
      ])

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | OpR p -> Printf.sprintf "R%d" p
             | OpW (p, s) -> Printf.sprintf "W%d:%S" p s
             | OpH (l, t) -> Printf.sprintf "H%d@%g" l t
             | OpV l -> Printf.sprintf "V%d" l)
           ops))
    QCheck.Gen.(list_size (1 -- 16) gen_op)

let image_bytes dev =
  let path = Filename.temp_file "sero_equiv" ".img" in
  Sero.Image.save dev path;
  let s = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  s

let host_equivalence =
  QCheck.Test.make ~name:"single tenant == sync facade (byte-identical)"
    ~count:40 arb_ops (fun ops ->
      (* Host side. *)
      let dev_h, _, server = mkserver () in
      let s = Host.Server.session server ~tenant:7 in
      let host_results =
        List.map
          (fun op ->
            let cmd =
              match op with
              | OpR pba -> P.Read { pba }
              | OpW (pba, payload) -> P.Write { pba; payload }
              | OpH (line, ts) -> P.Heat { line; timestamp = Some ts }
              | OpV line -> P.Verify { line }
            in
            Host.Server.call s cmd)
          ops
      in
      (* Direct side: the queue sync facade on a twin device. *)
      let dev_d = mkdev () in
      prefill dev_d;
      let q_d = Sero.Queue.create (Sim.Des.create ()) dev_d in
      let ok =
        List.for_all2
          (fun op r ->
            match op with
            | OpR pba -> (
                match Sero.Queue.read_block q_d ~pba with
                | Ok payload ->
                    r.P.r_phases = [ P.st_ok; P.st_ok ]
                    && String.equal r.P.r_payload payload
                | Error _ -> r.P.r_phases = [ P.st_ok; P.st_read_error ])
            | OpW (pba, payload) -> (
                match Sero.Queue.write_block q_d ~pba payload with
                | Ok () -> r.P.r_phases = [ P.st_ok; P.st_ok ]
                | Error _ -> r.P.r_phases = [ P.st_ok; P.st_write_refused ])
            | OpH (line, timestamp) -> (
                match Sero.Queue.heat_line q_d ~line ~timestamp () with
                | Ok h ->
                    r.P.r_phases = [ P.st_ok; P.st_ok ]
                    && String.equal r.P.r_payload (Hash.Sha256.to_raw h)
                | Error _ -> r.P.r_phases = [ P.st_ok; P.st_heat_refused ])
            | OpV line -> (
                match Sero.Device.verify_line dev_d ~line with
                | Sero.Tamper.Intact -> r.P.r_phases = [ P.st_ok; P.st_ok ]
                | Sero.Tamper.Not_heated ->
                    r.P.r_phases = [ P.st_ok; P.st_not_heated ]
                | Sero.Tamper.Tampered _ ->
                    r.P.r_phases = [ P.st_ok; P.st_tampered ]))
          ops host_results
      in
      (* Completion order: responses arrive in submission order. *)
      let in_order =
        List.mapi (fun i r -> r.P.r_seq = i) host_results
        |> List.for_all Fun.id
      in
      ok && in_order
      && String.equal (image_bytes dev_h) (image_bytes dev_d))

(* {1 Golden fixtures}

   basic.ctrace exercises every status byte a single tenant can see on
   a device target; admission.ctrace interleaves two tenants under
   [--rate 0 --burst 2] so the third command of each bounces with
   REJECTED_RATE.  The conformance test replays them in-process over
   the fixture geometry and diffs [format_replay] output exactly;
   [serotool serve-replay --expect] does the same end-to-end in CI. *)

let basic_frames =
  let fs = ref [] and seq = ref 0 in
  let add cmd =
    fs := { P.tenant = 0; seq = !seq; cmd } :: !fs;
    incr seq
  in
  List.iter
    (fun pba ->
      add (P.Write { pba; payload = Printf.sprintf "golden record %d" pba }))
    [ 9; 10; 11; 12; 13; 14; 15 ];
  add (P.Read { pba = 9 });
  add (P.Read { pba = 100 });
  add (P.Heat { line = 1; timestamp = Some 1.5 });
  add (P.Verify { line = 1 });
  add (P.Verify { line = 2 });
  add (P.Write { pba = 9; payload = "too late" });
  (* Re-heat of an unchanged line is idempotent (OK, same hash); heating
     a blank line is refused (unreadable data blocks). *)
  add (P.Heat { line = 1; timestamp = Some 2.0 });
  add (P.Heat { line = 2; timestamp = Some 2.0 });
  add (P.Array_read { vba = 0 });
  add P.Audit;
  List.rev !fs

let admission_frames =
  let fs = ref [] in
  let add tenant seq cmd = fs := { P.tenant; seq; cmd } :: !fs in
  add 1 0 (P.Write { pba = 9; payload = "tenant 1 record 0" });
  add 2 0 (P.Write { pba = 17; payload = "tenant 2 record 0" });
  add 1 1 (P.Write { pba = 10; payload = "tenant 1 record 1" });
  add 2 1 (P.Write { pba = 18; payload = "tenant 2 record 1" });
  add 1 2 (P.Write { pba = 11; payload = "tenant 1 record 2" });
  add 2 2 (P.Write { pba = 19; payload = "tenant 2 record 2" });
  List.rev !fs

let admission_limits _ =
  { Host.Server.weight = 1.; max_depth = max_int; rate = 0.; burst = 2. }

let replay_fresh ?limits_of frames =
  let dev = mkdev () in
  let q = Sero.Queue.create (Sim.Des.create ()) dev in
  let server = Host.Server.create ?limits_of (Host.Server.Device q) in
  Host.Server.format_replay (Host.Server.replay server frames)

let read_fixture name =
  In_channel.with_open_bin (Filename.concat "golden" name)
    In_channel.input_all

let test_golden_basic () =
  let frames = P.parse_trace (read_fixture "basic.ctrace") in
  Alcotest.(check int) "frame count" (List.length basic_frames)
    (List.length frames);
  Alcotest.(check string) "status lines"
    (read_fixture "basic.expected")
    (replay_fresh frames)

let test_golden_admission () =
  let frames = P.parse_trace (read_fixture "admission.ctrace") in
  Alcotest.(check string) "status lines"
    (read_fixture "admission.expected")
    (replay_fresh ~limits_of:admission_limits frames)

(* {1 Fixture regeneration} *)

let trace_text header frames =
  let b = Buffer.create 1024 in
  List.iter (fun l -> Buffer.add_string b ("# " ^ l ^ "\n")) header;
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "# %s\n%s\n"
           (Format.asprintf "%a" P.pp_frame f)
           (P.to_hex (P.encode_frame f))))
    frames;
  Buffer.contents b

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let regen dir =
  write_file
    (Filename.concat dir "basic.ctrace")
    (trace_text
       [
         "Golden command trace: every single-tenant status byte on a";
         "device target (256 blocks, lines of 8 — serotool mkdev IMG";
         "--blocks 256).  Regenerate with: dune exec test/test_host.exe";
         "-- regen";
       ]
       basic_frames);
  write_file
    (Filename.concat dir "basic.expected")
    (replay_fresh basic_frames);
  write_file
    (Filename.concat dir "admission.ctrace")
    (trace_text
       [
         "Golden admission trace: two tenants, three writes each, under";
         "--rate 0 --burst 2 — the third command of each tenant bounces";
         "with REJECTED_RATE.  Regenerate with: dune exec";
         "test/test_host.exe -- regen";
       ]
       admission_frames);
  write_file
    (Filename.concat dir "admission.expected")
    (replay_fresh ~limits_of:admission_limits admission_frames);
  Printf.printf "regenerated golden fixtures under %s\n" dir

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "regen" then
    regen (if Array.length Sys.argv > 2 then Sys.argv.(2) else "test/golden")
  else
    Alcotest.run "host"
      [
        ( "proto",
          [
            qtest frame_roundtrip;
            qtest frame_stream_roundtrip;
            qtest frame_truncation;
            qtest frame_bad_version;
            qtest response_roundtrip;
            qtest trace_roundtrip;
          ] );
        ( "admission",
          [
            Alcotest.test_case "depth limit" `Quick test_depth_limit;
            Alcotest.test_case "rate limit" `Quick test_rate_limit;
          ] );
        ( "arbiter",
          [
            Alcotest.test_case "fairness" `Quick test_fairness;
            Alcotest.test_case "tenant ledgers" `Quick test_tenant_ledgers;
          ] );
        ( "audit-line",
          [
            Alcotest.test_case "device target is queue traffic" `Quick
              test_audit_line_device;
            Alcotest.test_case "volume target attests the quorum" `Quick
              test_audit_line_volume;
          ] );
        ("equivalence", [ qtest host_equivalence ]);
        ( "golden",
          [
            Alcotest.test_case "basic conformance" `Quick test_golden_basic;
            Alcotest.test_case "admission conformance" `Quick
              test_golden_admission;
          ] );
      ]
