(* The SERO device: layout arithmetic, sector ops, heat/verify, tamper
   verdicts, scanning, block classification and image persistence. *)

let qtest = QCheck_alcotest.to_alcotest

let make_dev ?(n_blocks = 128) ?(line_exp = 3) ?(seed = 42) ?(strict = true) () =
  let c = Sero.Device.default_config ~n_blocks ~line_exp () in
  Sero.Device.create { c with Sero.Device.seed; strict_hash_locations = strict }

let fill_line dev line =
  List.iteri
    (fun i pba ->
      match Sero.Device.write_block dev ~pba (Printf.sprintf "line %d block %d" line i) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fill: %a" Sero.Device.pp_write_error e)
    (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line)

let heat_ok dev line =
  match Sero.Device.heat_line dev ~line () with
  | Ok h -> h
  | Error e -> Alcotest.failf "heat: %a" Sero.Device.pp_heat_error e

(* {1 Layout} *)

let layout = Sero.Layout.create ~n_blocks:1024 ~line_exp:4 ()

let layout_props =
  [
    QCheck.Test.make ~name:"line_of_block consistent with data_blocks_of_line"
      ~count:300
      QCheck.(int_range 0 1023)
      (fun pba ->
        let line = Sero.Layout.line_of_block layout pba in
        if Sero.Layout.is_hash_block layout pba then
          Sero.Layout.hash_block_of_line layout line = pba
        else List.mem pba (Sero.Layout.data_blocks_of_line layout line));
    QCheck.Test.make ~name:"blocks partition into lines" ~count:100
      QCheck.(int_range 0 63)
      (fun line ->
        let blocks =
          Sero.Layout.hash_block_of_line layout line
          :: Sero.Layout.data_blocks_of_line layout line
        in
        List.length blocks = Sero.Layout.blocks_per_line layout
        && List.for_all (fun b -> Sero.Layout.line_of_block layout b = line) blocks);
    QCheck.Test.make ~name:"dot ranges of blocks do not overlap" ~count:100
      QCheck.(pair (int_range 0 1023) (int_range 0 1023))
      (fun (a, b) ->
        a = b
        || abs (Sero.Layout.block_first_dot layout a - Sero.Layout.block_first_dot layout b)
           >= Sero.Layout.block_dots);
  ]

let layout_cases =
  [
    Alcotest.test_case "constructor validation" `Quick (fun () ->
        Alcotest.check_raises "misaligned"
          (Invalid_argument "Layout.create: n_blocks must be a positive multiple of 2^N")
          (fun () -> ignore (Sero.Layout.create ~n_blocks:100 ~line_exp:3 ())));
    Alcotest.test_case "overhead = 1/2^N" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "1/16" (1. /. 16.) (Sero.Layout.space_overhead layout));
    Alcotest.test_case "wo area is 4096 dots / 256 bytes (Fig. 3)" `Quick
      (fun () ->
        Alcotest.(check int) "dots" 4096 Sero.Layout.wo_area_dots;
        Alcotest.(check int) "bytes" 256 Sero.Layout.wo_area_bytes);
  ]

(* {1 Sector ops} *)

let device_cases =
  [
    Alcotest.test_case "write/read roundtrip pads to 512" `Quick (fun () ->
        let dev = make_dev () in
        (match Sero.Device.write_block dev ~pba:9 "hello" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%a" Sero.Device.pp_write_error e);
        match Sero.Device.read_block dev ~pba:9 with
        | Ok p ->
            Alcotest.(check int) "padded" 512 (String.length p);
            Alcotest.(check string) "prefix" "hello" (String.sub p 0 5)
        | Error e -> Alcotest.failf "%a" Sero.Device.pp_read_error e);
    Alcotest.test_case "hash blocks are reserved" `Quick (fun () ->
        let dev = make_dev () in
        match Sero.Device.write_block dev ~pba:8 "x" with
        | Error Sero.Device.Reserved_hash_block -> ()
        | Ok () | Error _ -> Alcotest.fail "hash block writable");
    Alcotest.test_case "virgin block reads Blank" `Quick (fun () ->
        let dev = make_dev () in
        match Sero.Device.read_block dev ~pba:17 with
        | Error Sero.Device.Blank -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected Blank");
    Alcotest.test_case "frame written elsewhere reads Wrong_location" `Quick
      (fun () ->
        let dev = make_dev () in
        ignore (Sero.Device.write_block dev ~pba:9 "original");
        let image = Sero.Device.unsafe_read_raw dev ~pba:9 in
        Sero.Device.unsafe_write_raw dev ~pba:10 image;
        match Sero.Device.read_block dev ~pba:10 with
        | Error (Sero.Device.Wrong_location 9) -> ()
        | Ok _ | Error _ -> Alcotest.fail "copy not distinguished");
  ]

(* {1 Heat / verify lifecycle} *)

let lifecycle_cases =
  [
    Alcotest.test_case "heat then verify is Intact" `Quick (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        Alcotest.(check bool) "intact" true
          (Sero.Tamper.equal_verdict (Sero.Device.verify_line dev ~line:2) Sero.Tamper.Intact));
    Alcotest.test_case "unheated line verifies Not_heated" `Quick (fun () ->
        let dev = make_dev () in
        Alcotest.(check bool) "not heated" true
          (Sero.Tamper.equal_verdict (Sero.Device.verify_line dev ~line:3) Sero.Tamper.Not_heated));
    Alcotest.test_case "heat requires readable data blocks" `Quick (fun () ->
        let dev = make_dev () in
        match Sero.Device.heat_line dev ~line:4 () with
        | Error (Sero.Device.Unreadable_data pbas) ->
            Alcotest.(check int) "all 7 unwritten" 7 (List.length pbas)
        | Ok _ | Error _ -> Alcotest.fail "heated a blank line");
    Alcotest.test_case "re-heat with same content is idempotent" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        let h1 = heat_ok dev 2 in
        let h2 = heat_ok dev 2 in
        Alcotest.(check bool) "same hash" true (Hash.Sha256.equal h1 h2));
    Alcotest.test_case "re-heat after data change is refused" `Quick (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        Sero.Device.unsafe_write_block dev
          ~pba:(List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2))
          "changed";
        match Sero.Device.heat_line dev ~line:2 () with
        | Error Sero.Device.Already_heated -> ()
        | Ok _ | Error _ -> Alcotest.fail "re-heat allowed");
    Alcotest.test_case "burned metadata roundtrips" `Quick (fun () ->
        let dev = make_dev () in
        fill_line dev 5;
        (match Sero.Device.heat_line dev ~line:5 ~timestamp:123.25 () with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%a" Sero.Device.pp_heat_error e);
        match Sero.Device.read_hash_block dev ~line:5 with
        | `Burned meta ->
            Alcotest.(check int) "line" 5 meta.Sero.Device.line;
            Alcotest.(check int) "n_data" 7 meta.Sero.Device.n_data_blocks;
            Alcotest.(check (float 1e-9)) "timestamp" 123.25 meta.Sero.Device.timestamp
        | `Not_heated | `Torn _ | `Tampered _ -> Alcotest.fail "no burned meta");
    Alcotest.test_case "honest write into heated line refused" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        match
          Sero.Device.write_block dev
            ~pba:(List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2))
            "z"
        with
        | Error Sero.Device.In_heated_line -> ()
        | Ok () | Error _ -> Alcotest.fail "write allowed");
  ]

(* {1 Tamper evidence verdicts} *)

let tamper_cases =
  [
    Alcotest.test_case "magnetic rewrite of data -> Hash_mismatch" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        Sero.Device.unsafe_write_block dev
          ~pba:(List.nth (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2) 3)
          "forged";
        match Sero.Device.verify_line dev ~line:2 with
        | Sero.Tamper.Tampered [ Sero.Tamper.Hash_mismatch ] -> ()
        | v -> Alcotest.failf "unexpected: %a" Sero.Tamper.pp_verdict v);
    Alcotest.test_case "extra heat on the hash -> Invalid_cells" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        Sero.Device.unsafe_heat_dots dev
          ~dot:(Sero.Layout.wo_first_dot (Sero.Device.layout dev) ~line:2)
          ~n:32;
        match Sero.Device.verify_line dev ~line:2 with
        | Sero.Tamper.Tampered (Sero.Tamper.Invalid_cells n :: _) ->
            Alcotest.(check int) "16 cells" 16 n
        | v -> Alcotest.failf "unexpected: %a" Sero.Tamper.pp_verdict v);
    Alcotest.test_case "heating data dots -> Data_unreadable" `Quick (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        let victim =
          List.nth (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2) 1
        in
        Sero.Device.unsafe_heat_dots dev
          ~dot:(Sero.Layout.block_first_dot (Sero.Device.layout dev) victim)
          ~n:600;
        match Sero.Device.verify_line dev ~line:2 with
        | Sero.Tamper.Tampered evs ->
            Alcotest.(check bool) "mentions the victim" true
              (List.exists
                 (function
                   | Sero.Tamper.Data_unreadable pbas -> List.mem victim pbas
                   | _ -> false)
                 evs)
        | v -> Alcotest.failf "unexpected: %a" Sero.Tamper.pp_verdict v);
    Alcotest.test_case "relocated frame -> Address_mismatch" `Quick (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        let lay = Sero.Device.layout dev in
        let src = List.hd (Sero.Layout.data_blocks_of_line lay 3) in
        ignore (Sero.Device.write_block dev ~pba:src "elsewhere");
        let image = Sero.Device.unsafe_read_raw dev ~pba:src in
        let dst = List.nth (Sero.Layout.data_blocks_of_line lay 2) 2 in
        Sero.Device.unsafe_write_raw dev ~pba:dst image;
        match Sero.Device.verify_line dev ~line:2 with
        | Sero.Tamper.Tampered evs ->
            Alcotest.(check bool) "address mismatch" true
              (List.exists
                 (function Sero.Tamper.Address_mismatch _ -> true | _ -> false)
                 evs)
        | v -> Alcotest.failf "unexpected: %a" Sero.Tamper.pp_verdict v);
    Alcotest.test_case "bulk wipe leaves burned hash, kills data" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        Sero.Device.unsafe_magnetic_wipe dev;
        Sero.Device.refresh_heated_cache dev;
        (match Sero.Device.read_hash_block dev ~line:2 with
        | `Burned _ -> ()
        | `Not_heated | `Torn _ | `Tampered _ -> Alcotest.fail "burned hash lost");
        match Sero.Device.verify_line dev ~line:2 with
        | Sero.Tamper.Tampered evs ->
            Alcotest.(check bool) "data unreadable" true
              (List.exists
                 (function Sero.Tamper.Data_unreadable _ -> true | _ -> false)
                 evs)
        | v -> Alcotest.failf "unexpected: %a" Sero.Tamper.pp_verdict v);
  ]

(* {1 verify_region: the splice discipline} *)

let region_cases =
  [
    Alcotest.test_case "strict device rejects interior hash locations" `Quick
      (fun () ->
        let dev = make_dev ~strict:true () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        let lay = Sero.Device.layout dev in
        let blocks = Sero.Layout.data_blocks_of_line lay 2 in
        let dp = List.nth blocks 1 in
        let tail = List.filter (fun p -> p > dp) blocks in
        Sero.Device.unsafe_forge_burn dev ~hash_pba:dp ~data_pbas:tail ~claim_line:2;
        match Sero.Device.verify_region dev ~hash_pba:dp ~data_pbas:tail with
        | Sero.Tamper.Tampered (Sero.Tamper.Address_mismatch _ :: _) -> ()
        | v -> Alcotest.failf "splice not rejected: %a" Sero.Tamper.pp_verdict v);
    Alcotest.test_case "non-strict device is fooled by the splice (ablation)"
      `Quick (fun () ->
        let dev = make_dev ~strict:false () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        let lay = Sero.Device.layout dev in
        let blocks = Sero.Layout.data_blocks_of_line lay 2 in
        let dp = List.nth blocks 1 in
        let tail = List.filter (fun p -> p > dp) blocks in
        Sero.Device.unsafe_forge_burn dev ~hash_pba:dp ~data_pbas:tail ~claim_line:2;
        match Sero.Device.verify_region dev ~hash_pba:dp ~data_pbas:tail with
        | Sero.Tamper.Intact -> ()
        | v -> Alcotest.failf "expected fooled-Intact, got %a" Sero.Tamper.pp_verdict v);
    Alcotest.test_case "verify_region accepts a legitimate line" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        let lay = Sero.Device.layout dev in
        match
          Sero.Device.verify_region dev
            ~hash_pba:(Sero.Layout.hash_block_of_line lay 2)
            ~data_pbas:(Sero.Layout.data_blocks_of_line lay 2)
        with
        | Sero.Tamper.Intact -> ()
        | v -> Alcotest.failf "%a" Sero.Tamper.pp_verdict v);
  ]

(* {1 Scan, classification, stats, end of life} *)

let whole_device_cases =
  [
    Alcotest.test_case "scan finds exactly the heated lines" `Quick (fun () ->
        let dev = make_dev () in
        List.iter
          (fun l ->
            fill_line dev l;
            ignore (heat_ok dev l))
          [ 1; 4; 5 ];
        let entries = Sero.Device.scan dev in
        let heated =
          List.filter_map
            (fun e ->
              match e.Sero.Device.verdict with
              | Sero.Tamper.Not_heated -> None
              | _ -> Some e.Sero.Device.scanned_line)
            entries
        in
        Alcotest.(check (list int)) "lines" [ 1; 4; 5 ] heated);
    Alcotest.test_case "classify: healthy vs heated vs bad" `Quick (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        let lay = Sero.Device.layout dev in
        let healthy = List.hd (Sero.Layout.data_blocks_of_line lay 3) in
        Alcotest.(check bool) "healthy" true
          (Sero.Device.classify_block dev ~pba:healthy = Sero.Device.Healthy);
        (* Destroy a block by heating all its dots: heated class. *)
        let heated_pba = List.hd (Sero.Layout.data_blocks_of_line lay 6) in
        Sero.Device.unsafe_heat_dots dev
          ~dot:(Sero.Layout.block_first_dot lay heated_pba)
          ~n:Sero.Layout.block_dots;
        Alcotest.(check bool) "heated" true
          (Sero.Device.classify_block dev ~pba:heated_pba = Sero.Device.Heated_block);
        (* A magnetically corrupted (but not heated) block: bad. *)
        let bad_pba = List.nth (Sero.Layout.data_blocks_of_line lay 6) 1 in
        ignore (Sero.Device.write_block dev ~pba:bad_pba "ok");
        let medium = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
        let start = Sero.Layout.block_first_dot lay bad_pba in
        for d = start to start + 2000 do
          Pmedia.Medium.set medium d
            (Pmedia.Dot.Magnetised (if d mod 3 = 0 then Pmedia.Dot.Up else Pmedia.Dot.Down))
        done;
        Alcotest.(check bool) "bad" true
          (Sero.Device.classify_block dev ~pba:bad_pba = Sero.Device.Bad_block));
    Alcotest.test_case "stats track RO growth and runs" `Quick (fun () ->
        let dev = make_dev () in
        List.iter
          (fun l ->
            fill_line dev l;
            ignore (heat_ok dev l))
          [ 1; 2; 7 ];
        let s = Sero.Device.stats dev in
        Alcotest.(check int) "heated" 3 s.Sero.Device.heated_lines;
        Alcotest.(check int) "runs" 2 s.Sero.Device.heated_runs;
        Alcotest.(check bool) "not fully RO" false (Sero.Device.is_fully_ro dev));
    Alcotest.test_case "pp_stats covers the RAS counters" `Quick (fun () ->
        let c = Sero.Device.default_config ~n_blocks:128 ~line_exp:3 () in
        let dev =
          Sero.Device.create { c with Sero.Device.ras = Sero.Device.active_ras }
        in
        fill_line dev 2;
        let inj =
          Fault.Injector.create
            (Fault.Plan.make ~seed:5 ~read_ber:0.004
               ~tip_deaths:[ { Fault.Plan.tip = 3; after_ops = 0 } ]
               ())
        in
        Sero.Device.install_fault dev inj;
        List.iter
          (fun pba -> ignore (Sero.Device.read_block dev ~pba))
          (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2);
        Sero.Device.clear_fault dev;
        let rendered =
          Format.asprintf "%a" Sero.Device.pp_stats (Sero.Device.stats dev)
        in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i =
            i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
          in
          go 0
        in
        List.iter
          (fun label ->
            Alcotest.(check bool)
              (Printf.sprintf "mentions %S" label)
              true (contains rendered label))
          [ "retries"; "re-pulses"; "remapped tips"; "scrub rewrites"; "torn completions" ];
        let s = Sero.Device.stats dev in
        Alcotest.(check bool) "retry counter moved" true (s.Sero.Device.retries > 0);
        Alcotest.(check bool) "remap counter moved" true
          (s.Sero.Device.remapped_tips > 0));
    Alcotest.test_case "device end of life: all lines heated" `Quick (fun () ->
        let dev = make_dev ~n_blocks:32 () in
        for l = 0 to 3 do
          fill_line dev l;
          ignore (heat_ok dev l)
        done;
        Alcotest.(check bool) "fully RO" true (Sero.Device.is_fully_ro dev);
        Alcotest.(check int) "no WMRM left" 0
          (Sero.Device.stats dev).Sero.Device.wmrm_data_blocks_left);
  ]

(* {1 Image persistence} *)

let image_cases =
  [
    Alcotest.test_case "save/load roundtrips medium and heated state" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        ignore (Sero.Device.write_block dev ~pba:25 "persisted");
        let path = Filename.temp_file "sero" ".img" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sero.Image.save dev path;
            match Sero.Image.load path with
            | Error e -> Alcotest.failf "load: %s" e
            | Ok dev2 ->
                Alcotest.(check bool) "line 2 heated" true
                  (Sero.Device.is_line_heated dev2 ~line:2);
                Alcotest.(check bool) "verifies intact" true
                  (Sero.Tamper.equal_verdict
                     (Sero.Device.verify_line dev2 ~line:2)
                     Sero.Tamper.Intact);
                (match Sero.Device.read_block dev2 ~pba:25 with
                | Ok p -> Alcotest.(check string) "data" "persisted" (String.sub p 0 9)
                | Error e -> Alcotest.failf "read: %a" Sero.Device.pp_read_error e)));
    Alcotest.test_case "corrupted image rejected" `Quick (fun () ->
        let dev = make_dev ~n_blocks:32 () in
        let path = Filename.temp_file "sero" ".img" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sero.Image.save dev path;
            let data = In_channel.with_open_bin path In_channel.input_all in
            let b = Bytes.of_string data in
            Bytes.set b 100 (Char.chr (Char.code (Bytes.get b 100) lxor 1));
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_bytes oc b);
            match Sero.Image.load path with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "corrupt image accepted"));
    Alcotest.test_case "streamed save/load is dot-for-dot faithful" `Quick
      (fun () ->
        let dev = make_dev ~n_blocks:128 () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        ignore (Sero.Device.write_block dev ~pba:50 "stream me");
        let packed d =
          let m = Probe.Pdevice.medium (Sero.Device.pdevice d) in
          let len = Pmedia.Medium.packed_length m in
          let b = Bytes.create len in
          Pmedia.Medium.blit_packed m ~pos:0 ~dst:b ~dst_off:0 ~len;
          Bytes.unsafe_to_string b
        in
        let path = Filename.temp_file "sero" ".img" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sero.Image.save dev path;
            match Sero.Image.load path with
            | Error e -> Alcotest.failf "load: %s" e
            | Ok dev2 ->
                Alcotest.(check string) "medium bytes identical" (packed dev)
                  (packed dev2);
                Alcotest.(check bool) "heated line survives" true
                  (Sero.Device.is_line_heated dev2 ~line:2)));
    Alcotest.test_case "truncation and bad magic keep their verdicts" `Quick
      (fun () ->
        let dev = make_dev ~n_blocks:32 () in
        let path = Filename.temp_file "sero" ".img" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sero.Image.save dev path;
            let data = In_channel.with_open_bin path In_channel.input_all in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (String.sub data 0 8));
            (match Sero.Image.load path with
            | Error e -> Alcotest.(check string) "short" "image too short" e
            | Ok _ -> Alcotest.fail "8-byte image accepted");
            (* A wrong magic under a *valid* CRC must fail the parse,
               not the checksum. *)
            let b = Bytes.of_string data in
            Bytes.blit_string "XXROIMG9" 0 b 0 8;
            let body = Bytes.sub_string b 0 (Bytes.length b - 4) in
            let crc = Int32.to_int (Codec.Crc32.string body) land 0xFFFFFFFF in
            let tl = Bytes.length b - 4 in
            Bytes.set b tl (Char.chr ((crc lsr 24) land 0xFF));
            Bytes.set b (tl + 1) (Char.chr ((crc lsr 16) land 0xFF));
            Bytes.set b (tl + 2) (Char.chr ((crc lsr 8) land 0xFF));
            Bytes.set b (tl + 3) (Char.chr (crc land 0xFF));
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_bytes oc b);
            match Sero.Image.load path with
            | Error e -> Alcotest.(check string) "magic" "bad magic" e
            | Ok _ -> Alcotest.fail "bad magic accepted"));
  ]
  @
  (* A ≥64k-line geometry exercises the O(chunk) streaming paths at
     scale; opt-in (SERO_BIG=1) because the image file runs to ~150MB. *)
  match Sys.getenv_opt "SERO_BIG" with
  | Some "1" ->
      [
        Alcotest.test_case "64k-line image round-trip (streamed)" `Quick
          (fun () ->
            let dev = make_dev ~n_blocks:131072 ~line_exp:1 () in
            let lay = Sero.Device.layout dev in
            let pba = Sero.Layout.first_data_block lay 12345 in
            (match Sero.Device.write_block dev ~pba "big geometry" with
            | Ok () -> ()
            | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e);
            ignore (heat_ok dev 12345);
            let path = Filename.temp_file "sero" ".img" in
            Fun.protect
              ~finally:(fun () -> Sys.remove path)
              (fun () ->
                Sero.Image.save dev path;
                match Sero.Image.load path with
                | Error e -> Alcotest.failf "load: %s" e
                | Ok dev2 ->
                    Alcotest.(check bool) "line heated" true
                      (Sero.Device.is_line_heated dev2 ~line:12345);
                    (match Sero.Device.read_block dev2 ~pba with
                    | Ok p ->
                        Alcotest.(check string) "payload" "big geometry"
                          (String.sub p 0 12)
                    | Error e ->
                        Alcotest.failf "read: %a" Sero.Device.pp_read_error e)));
      ]
  | _ -> []

(* Noise below the RS budget is transparently absorbed (verdict stays
   Intact); gross corruption of a block surfaces as evidence.  This is
   the boundary between "media noise" and "tampering" that the 15%
   overhead buys. *)
let ecc_absorbs_noise =
  QCheck.Test.make ~name:"sub-budget dot noise never alarms verify" ~count:25
    QCheck.(int_range 0 8)
    (fun flips ->
      let dev = make_dev ~seed:(100 + flips) () in
      fill_line dev 2;
      ignore (heat_ok dev 2);
      (* Flip a few dots inside one data block (one dot = one bad byte
         symbol at worst; 8 < 12-symbol budget per codeword). *)
      let lay = Sero.Device.layout dev in
      let pba = List.nth (Sero.Layout.data_blocks_of_line lay 2) 3 in
      let medium = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
      let start = Sero.Layout.block_first_dot lay pba in
      let rng = Sim.Prng.create flips in
      for _ = 1 to flips do
        (* Restrict flips to one RS codeword's dot range (first 255
           bytes of the frame) so the per-codeword budget applies. *)
        let d = start + Sim.Prng.int rng (255 * 8) in
        match Pmedia.Medium.get medium d with
        | Pmedia.Dot.Magnetised dir ->
            Pmedia.Medium.set medium d (Pmedia.Dot.Magnetised (Pmedia.Dot.invert dir))
        | Pmedia.Dot.Heated -> ()
      done;
      Sero.Tamper.equal_verdict (Sero.Device.verify_line dev ~line:2) Sero.Tamper.Intact)

let gross_corruption_always_evident =
  QCheck.Test.make ~name:"gross block corruption is always evidence" ~count:25
    QCheck.(int_range 0 1000)
    (fun seed ->
      let dev = make_dev ~seed:(2000 + seed) () in
      fill_line dev 2;
      ignore (heat_ok dev 2);
      let lay = Sero.Device.layout dev in
      let pba = List.nth (Sero.Layout.data_blocks_of_line lay 2) 2 in
      let medium = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
      let start = Sero.Layout.block_first_dot lay pba in
      let rng = Sim.Prng.create seed in
      (* Flip ~600 random dots across the frame: far beyond the code. *)
      for _ = 1 to 600 do
        let d = start + Sim.Prng.int rng Sero.Layout.block_dots in
        match Pmedia.Medium.get medium d with
        | Pmedia.Dot.Magnetised dir ->
            Pmedia.Medium.set medium d (Pmedia.Dot.Magnetised (Pmedia.Dot.invert dir))
        | Pmedia.Dot.Heated -> ()
      done;
      Sero.Tamper.is_tampered (Sero.Device.verify_line dev ~line:2))

let roundtrip_any_line =
  QCheck.Test.make ~name:"heat+verify intact for random payloads" ~count:25
    QCheck.(small_list (string_of_size Gen.(0 -- 512)))
    (fun payloads ->
      let dev = make_dev () in
      let lay = Sero.Device.layout dev in
      List.iteri
        (fun i pba ->
          let payload =
            match List.nth_opt payloads i with Some p -> p | None -> "pad"
          in
          match Sero.Device.write_block dev ~pba payload with
          | Ok () -> ()
          | Error _ -> ())
        (Sero.Layout.data_blocks_of_line lay 3);
      match Sero.Device.heat_line dev ~line:3 () with
      | Ok _ ->
          Sero.Tamper.equal_verdict (Sero.Device.verify_line dev ~line:3) Sero.Tamper.Intact
      | Error _ -> false)

(* {1 Buffer cache}

   The block buffer cache over the request pipeline: hit/miss
   behaviour, read-ahead, write-behind, and the coherence rules that
   keep it from ever masking what is on the medium. *)

let make_cached ?(n_blocks = 128) ?(capacity = 32) ?(read_ahead = 0) () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks ~line_exp:3 ())
  in
  let q = Sero.Queue.create (Sim.Des.create ()) dev in
  (dev, q, Sero.Bcache.create ~capacity ~read_ahead q)

(* Device reads return full-block payloads padded with NULs; the cache
   hands back exactly what was written.  Strip the padding so the two
   can be compared as logical payloads. *)
let unpad s =
  match String.index_opt s '\000' with
  | Some i -> String.sub s 0 i
  | None -> s

let read_ok what r =
  match r with
  | Ok p -> unpad p
  | Error e -> Alcotest.failf "%s: %a" what Sero.Device.pp_read_error e

let bcache_cases =
  [
    Alcotest.test_case "read hit: zero simulated time, zero device ops" `Quick
      (fun () ->
        let dev, q, bc = make_cached () in
        fill_line dev 1;
        let pba = Sero.Layout.first_data_block (Sero.Device.layout dev) 1 in
        let first = read_ok "miss" (Sero.Bcache.read_block bc ~pba) in
        let reads0 = (Sero.Device.stats dev).Sero.Device.reads in
        let t0 = Sim.Des.now (Sero.Queue.des q) in
        let again = read_ok "hit" (Sero.Bcache.read_block bc ~pba) in
        Alcotest.(check string) "same payload" first again;
        Alcotest.(check int)
          "no mrs issued" reads0 (Sero.Device.stats dev).Sero.Device.reads;
        Alcotest.(check (float 0.))
          "no simulated time" t0
          (Sim.Des.now (Sero.Queue.des q));
        let s = Sero.Bcache.stats bc in
        Alcotest.(check int) "one hit" 1 s.Sero.Bcache.hits;
        Alcotest.(check int) "one miss" 1 s.Sero.Bcache.misses);
    Alcotest.test_case "read-ahead fills forward; joined reads are hits"
      `Quick (fun () ->
        let dev, q, bc = make_cached ~read_ahead:4 () in
        fill_line dev 1;
        fill_line dev 2;
        let pbas =
          Array.of_list
            (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 1)
        in
        ignore (read_ok "miss" (Sero.Bcache.read_block bc ~pba:pbas.(0)));
        Sero.Queue.drain q;
        (* The next three blocks arrived as Background prefetches. *)
        for i = 1 to 3 do
          ignore (read_ok "ra hit" (Sero.Bcache.read_block bc ~pba:pbas.(i)))
        done;
        let s = Sero.Bcache.stats bc in
        Alcotest.(check int) "prefetches issued" 4 s.Sero.Bcache.read_aheads;
        Alcotest.(check int) "served from prefetch" 3 s.Sero.Bcache.read_ahead_hits;
        Alcotest.(check int) "one miss only" 1 s.Sero.Bcache.misses);
    Alcotest.test_case "write-behind: buffered, absorbed, flushed as a span"
      `Quick (fun () ->
        let dev, _q, bc = make_cached () in
        fill_line dev 1;
        let pbas =
          Array.of_list
            (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 1)
        in
        let writes0 = (Sero.Device.stats dev).Sero.Device.writes in
        for i = 0 to 2 do
          match Sero.Bcache.write_block bc ~pba:pbas.(i) "buffered" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e
        done;
        (match Sero.Bcache.write_block bc ~pba:pbas.(0) "rewritten" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e);
        Alcotest.(check int)
          "nothing on the medium yet" writes0
          (Sero.Device.stats dev).Sero.Device.writes;
        Alcotest.(check string)
          "medium still has the old block" "line 1 block 0"
          (read_ok "direct" (Sero.Device.read_block dev ~pba:pbas.(0)));
        Sero.Bcache.sync bc;
        Alcotest.(check string)
          "flushed latest" "rewritten"
          (read_ok "direct" (Sero.Device.read_block dev ~pba:pbas.(0)));
        let s = Sero.Bcache.stats bc in
        Alcotest.(check int) "absorbed overwrite" 1 s.Sero.Bcache.write_absorbed;
        Alcotest.(check int) "one coalesced span" 1 s.Sero.Bcache.flushed_spans;
        Alcotest.(check int) "three blocks" 3 s.Sero.Bcache.flushed_blocks);
    Alcotest.test_case "heat flushes the line, then invalidates it" `Quick
      (fun () ->
        let dev, _q, bc = make_cached () in
        let pbas =
          Array.of_list
            (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2)
        in
        Array.iteri
          (fun i pba ->
            match Sero.Bcache.write_block bc ~pba (Printf.sprintf "cell %d" i) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e)
          pbas;
        (match Sero.Bcache.heat_line bc ~line:2 () with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "heat: %a" Sero.Device.pp_heat_error e);
        Alcotest.(check bool)
          "line heated" true
          (Sero.Device.is_line_heated dev ~line:2);
        Alcotest.(check bool)
          "verdict intact" true
          (Sero.Tamper.equal_verdict
             (Sero.Bcache.verify_line bc ~line:2)
             Sero.Tamper.Intact);
        (* The re-read comes from the medium, not a stale buffer. *)
        let s = Sero.Bcache.stats bc in
        Alcotest.(check bool)
          "line invalidated" true
          (s.Sero.Bcache.invalidations >= Array.length pbas);
        ignore (read_ok "reread" (Sero.Bcache.read_block bc ~pba:pbas.(0)));
        Alcotest.(check int)
          "miss after invalidation" 1 (Sero.Bcache.stats bc).Sero.Bcache.misses;
        (* Writes to the heated line refuse exactly like the device. *)
        match Sero.Bcache.write_block bc ~pba:pbas.(0) "tamper" with
        | Error Sero.Device.In_heated_line -> ()
        | Ok () | Error _ -> Alcotest.fail "heated write must refuse");
    Alcotest.test_case "foreign mutation invalidates the cached copy" `Quick
      (fun () ->
        let dev, _q, bc = make_cached () in
        fill_line dev 1;
        let pba = Sero.Layout.first_data_block (Sero.Device.layout dev) 1 in
        ignore (read_ok "prime" (Sero.Bcache.read_block bc ~pba));
        Sero.Device.unsafe_write_block dev ~pba "attacked";
        Alcotest.(check string)
          "reads what the medium holds" "attacked"
          (read_ok "after attack" (Sero.Bcache.read_block bc ~pba));
        (* The medium also wins over a buffered (dirty) write: the
           attack post-dates the acknowledged write, so flushing the
           stale buffer over it would repair evidence of tampering. *)
        (match Sero.Bcache.write_block bc ~pba "buffered then attacked" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e);
        Sero.Device.unsafe_write_block dev ~pba "attacked again";
        Sero.Bcache.sync bc;
        Alcotest.(check string)
          "dirty buffer dropped, not flushed over the attack"
          "attacked again"
          (read_ok "direct" (Sero.Device.read_block dev ~pba)));
    Alcotest.test_case "fault install: flush barrier, then bypass" `Quick
      (fun () ->
        let dev, _q, bc = make_cached () in
        fill_line dev 1;
        let pba = Sero.Layout.first_data_block (Sero.Device.layout dev) 1 in
        (match Sero.Bcache.write_block bc ~pba "durable before the plan" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e);
        Sero.Device.install_fault dev
          (Fault.Injector.create (Fault.Plan.make ()));
        (* The barrier pushed the buffered write through the healthy
           device before the plan armed. *)
        Alcotest.(check string)
          "flushed by the barrier" "durable before the plan"
          (read_ok "direct" (Sero.Device.read_block dev ~pba));
        ignore (read_ok "bypass" (Sero.Bcache.read_block bc ~pba));
        Alcotest.(check bool)
          "ops bypass while installed" true
          ((Sero.Bcache.stats bc).Sero.Bcache.bypasses >= 1);
        Sero.Device.clear_fault dev);
    Alcotest.test_case "hash blocks refuse buffered writes" `Quick (fun () ->
        let dev, _q, bc = make_cached () in
        let hash_pba = Sero.Layout.hash_block_of_line (Sero.Device.layout dev) 1 in
        match Sero.Bcache.write_block bc ~pba:hash_pba "no" with
        | Error Sero.Device.Reserved_hash_block -> ()
        | Ok () | Error _ -> Alcotest.fail "hash block write must refuse");
  ]

(* {2 The twin-device equivalence law}

   A cached device must be indistinguishable from an uncached one:
   same read payloads, same heat results, same tamper verdicts — under
   random interleavings of IO with scrub sweeps, raw-medium attacks and
   torn-burn recovery.  Two qualifications make the law exact.
   Payload-level equality is the right notion: write-behind
   legitimately collapses generation counters, so frames differ
   bit-wise while every observable result is identical.  And
   device-side events (attacks, scrub, power cuts) are compared at
   flush boundaries: write-behind genuinely reorders acknowledged
   writes against concurrent medium mutations, so the executor settles
   the cache before each one — mid-stream, the cache's "medium wins"
   rule is pinned by a unit test instead. *)

type twin_op =
  | T_read of int
  | T_write of int * int
  | T_heat of int
  | T_verify of int
  | T_corrupt of int * int
  | T_heat_dots of int
  | T_scrub of int
  | T_torn_burn of int * int

let twin_equivalence =
  let n_blocks = 64 and line_exp = 3 in
  let lay = Sero.Layout.create ~n_blocks ~line_exp () in
  let n_lines = Sero.Layout.n_lines lay in
  let data_pbas =
    Array.of_list
      (List.concat_map
         (Sero.Layout.data_blocks_of_line lay)
         (List.init n_lines Fun.id))
  in
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (6, map (fun i -> T_read i) (int_range 0 (Array.length data_pbas - 1)));
          ( 6,
            map2
              (fun i tag -> T_write (i, tag))
              (int_range 0 (Array.length data_pbas - 1))
              (int_range 0 999) );
          (2, map (fun l -> T_heat l) (int_range 0 (n_lines - 1)));
          (2, map (fun l -> T_verify l) (int_range 0 (n_lines - 1)));
          ( 1,
            map2
              (fun i tag -> T_corrupt (i, tag))
              (int_range 0 (Array.length data_pbas - 1))
              (int_range 0 999) );
          (1, map (fun l -> T_heat_dots l) (int_range 0 (n_lines - 1)));
          (1, map (fun l -> T_scrub l) (int_range 0 (n_lines - 1)));
          ( 1,
            map2
              (fun l k -> T_torn_burn (l, k))
              (int_range 0 (n_lines - 1))
              (int_range 50 1500) );
        ])
  in
  let print_op = function
    | T_read i -> Printf.sprintf "read %d" i
    | T_write (i, t) -> Printf.sprintf "write %d #%d" i t
    | T_heat l -> Printf.sprintf "heat %d" l
    | T_verify l -> Printf.sprintf "verify %d" l
    | T_corrupt (i, t) -> Printf.sprintf "corrupt %d #%d" i t
    | T_heat_dots l -> Printf.sprintf "heat_dots %d" l
    | T_scrub l -> Printf.sprintf "scrub %d" l
    | T_torn_burn (l, k) -> Printf.sprintf "torn_burn %d @%d" l k
  in
  let equal_read r1 r2 =
    match (r1, r2) with
    | Ok a, Ok b -> String.equal (unpad a) (unpad b)
    | Error _, Error _ -> true
    | Ok _, Error _ | Error _, Ok _ -> false
  in
  let equal_heat r1 r2 =
    match (r1, r2) with
    | Ok a, Ok b -> Hash.Sha256.equal a b
    | Error _, Error _ -> true
    | Ok _, Error _ | Error _, Ok _ -> false
  in
  let payload_of tag pba = Printf.sprintf "twin %d @%d" tag pba in
  QCheck.Test.make ~name:"cached == uncached for every observable result"
    ~count:60
    QCheck.(
      make
        Gen.(
          triple (int_range 4 32) (int_range 0 8) (list_size (5 -- 40) op_gen))
        ~print:(fun (cap, ra, ops) ->
          Printf.sprintf "cap=%d ra=%d: %s" cap ra
            (String.concat "; " (List.map print_op ops))))
    (fun (capacity, read_ahead, ops) ->
      let mk () =
        Sero.Device.create (Sero.Device.default_config ~n_blocks ~line_exp ())
      in
      let dev_a = mk () and dev_b = mk () in
      let q_a = Sero.Queue.create (Sim.Des.create ()) dev_a in
      let q_b = Sero.Queue.create (Sim.Des.create ()) dev_b in
      let bc = Sero.Bcache.create ~capacity ~read_ahead q_b in
      let settle () =
        Sero.Bcache.flush bc;
        Sero.Queue.drain q_b
      in
      let torn_burn dev line k =
        let inj =
          Fault.Injector.create (Fault.Plan.make ~power_cut_after_ewb:k ())
        in
        Sero.Device.install_fault dev inj;
        (match Sero.Device.heat_line dev ~line () with
        | exception Fault.Injector.Power_cut -> ()
        | Ok _ | Error _ -> ());
        Sero.Device.clear_fault dev;
        (* Recovery: re-heating completes the torn burn idempotently. *)
        Sero.Device.heat_line dev ~line ()
      in
      let step op =
        match op with
        | T_read i ->
            let pba = data_pbas.(i) in
            equal_read
              (Sero.Queue.read_block q_a ~pba)
              (Sero.Bcache.read_block bc ~pba)
        | T_write (i, tag) ->
            let pba = data_pbas.(i) in
            let p = payload_of tag pba in
            let r_a = Sero.Queue.write_block q_a ~pba p
            and r_b = Sero.Bcache.write_block bc ~pba p in
            (match (r_a, r_b) with
            | Ok (), Ok () | Error _, Error _ -> true
            | Ok (), Error _ | Error _, Ok () -> false)
        | T_heat l ->
            equal_heat
              (Sero.Queue.heat_line q_a ~line:l ())
              (Sero.Bcache.heat_line bc ~line:l ())
        | T_verify l ->
            Sero.Tamper.equal_verdict
              (Sero.Device.verify_line dev_a ~line:l)
              (Sero.Bcache.verify_line bc ~line:l)
        | T_corrupt (i, tag) ->
            (* Raw-medium attacks are compared at flush boundaries: a
               write-behind cache genuinely reorders acknowledged
               writes against concurrent medium mutations (the write
               may still be buffered when the attack lands), so no
               invalidation policy can reproduce the uncached
               interleaving mid-stream.  Settling the cache first
               makes the law exact; mid-stream the cache's own
               "medium wins" rule is pinned by a unit test. *)
            settle ();
            let pba = data_pbas.(i) in
            let p = "corrupt " ^ payload_of tag pba in
            Sero.Device.unsafe_write_block dev_a ~pba p;
            Sero.Device.unsafe_write_block dev_b ~pba p;
            true
        | T_heat_dots l ->
            (* 24 dots: past the scrub threshold but comfortably inside
               the RS budget, so reads of the wounded sector decode
               deterministically on both twins.  A larger wound sits at
               the decode boundary, where transient read noise — drawn
               from each device's own RNG stream — legitimately makes
               the outcome stochastic and the twins incomparable. *)
            settle ();
            let dot =
              Sero.Layout.block_first_dot lay
                (Sero.Layout.first_data_block lay l)
            in
            Sero.Device.unsafe_heat_dots dev_a ~dot ~n:24;
            Sero.Device.unsafe_heat_dots dev_b ~dot ~n:24;
            true
        | T_scrub l ->
            (* Scrub is device-side maintenance: it coordinates with
               the cache by flushing the line it is about to sweep
               (exactly as Fs.sync does before a checkpoint). *)
            settle ();
            let sweep dev =
              let progress = Sero.Scrub.progress_create () in
              Sero.Scrub.sweep_line dev progress ~line:l
            in
            sweep dev_a;
            sweep dev_b;
            true
        | T_torn_burn (l, k) ->
            (* The power-cut plan and recovery drive the device
               directly (a fault escaping mid-pump would wedge the
               queue), so this too is a flush-boundary comparison. *)
            settle ();
            equal_heat (torn_burn dev_a l k) (torn_burn dev_b l k)
      in
      let ok = List.for_all step ops in
      (* Final settle: everything buffered lands; the two media must
         then agree payload-for-payload and verdict-for-verdict. *)
      Sero.Bcache.sync bc;
      Sero.Queue.drain q_a;
      let media_equal =
        List.for_all
          (fun pba ->
            Sero.Layout.is_hash_block lay pba
            || equal_read
                 (Sero.Device.read_block dev_a ~pba)
                 (Sero.Device.read_block dev_b ~pba))
          (List.init n_blocks Fun.id)
        && List.for_all
             (fun l ->
               Sero.Tamper.equal_verdict
                 (Sero.Device.verify_line dev_a ~line:l)
                 (Sero.Device.verify_line dev_b ~line:l))
             (List.init n_lines Fun.id)
      in
      ok && media_equal)

(* {1 Endurance lifecycle}

   The health ledger, grown-defect remapping and evacuate-and-re-attest
   migration.  Unit cases drive the ledger directly (note_decode is the
   same call the read path makes); the qcheck law pins the twin-device
   property: with no wear, the lifecycle is an exact no-op. *)

let make_edev ?(n_blocks = 128) ?(line_exp = 3) ?(spare_lines = 4)
    ?(health_enabled = true) ?(retire_margin = 0.5) () =
  let base = Sero.Device.default_config ~n_blocks ~line_exp () in
  Sero.Device.create
    {
      base with
      Sero.Device.endurance =
        {
          Sero.Device.health_enabled;
          spare_lines;
          ewma_alpha = 0.4;
          retire_margin;
        };
    }

(* Push a line's EWMA past the retirement threshold the way the read
   path would: repeated high corrected-symbol observations. *)
let wound dev ~line ~corrected =
  let h = Sero.Device.health dev in
  for _ = 1 to 6 do
    Sero.Health.note_decode h ~line ~corrected
  done

let read_all_data dev line =
  List.map
    (fun pba ->
      match Sero.Device.read_block dev ~pba with
      | Ok p -> (pba, Some p)
      | Error _ -> (pba, None))
    (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line)

let endurance_cases =
  [
    Alcotest.test_case "retirement remaps the line onto a spare" `Quick
      (fun () ->
        let dev = make_edev () in
        let usable = Sero.Layout.usable_lines (Sero.Device.layout dev) in
        fill_line dev 1;
        let before = read_all_data dev 1 in
        wound dev ~line:1 ~corrected:30;
        Alcotest.(check bool) "due" true (Sero.Device.line_due dev ~line:1);
        Alcotest.(check (option int)) "next_due" (Some 1)
          (Sero.Device.next_due dev);
        (match Sero.Device.maintenance dev () with
        | [ m ] ->
            Alcotest.(check int) "logical line" 1 m.Sero.Device.m_line;
            Alcotest.(check bool) "cold line" false m.Sero.Device.m_heated
        | ms -> Alcotest.failf "expected 1 migration, got %d" (List.length ms));
        Alcotest.(check bool) "rehomed in the spare region" true
          (Sero.Device.phys_of_line dev ~line:1 >= usable);
        Alcotest.(check int) "one spare consumed" 3
          (Sero.Device.spares_left dev);
        Alcotest.(check (float 1e-9)) "ledger reset at the new home" 1.
          (Sero.Device.line_margin dev ~line:1);
        Alcotest.(check bool) "no longer due" false
          (Sero.Device.line_due dev ~line:1);
        (* The logical address space is untouched: same PBAs, same
           payloads. *)
        List.iter2
          (fun (pba, p0) (pba', p1) ->
            Alcotest.(check int) "pba" pba pba';
            match (p0, p1) with
            | Some a, Some b -> Alcotest.(check string) "payload" a b
            | _ -> Alcotest.failf "pba %d lost in migration" pba)
          before (read_all_data dev 1));
    Alcotest.test_case "heated line re-attests to the identical hash" `Quick
      (fun () ->
        let dev = make_edev () in
        fill_line dev 2;
        let h0 = heat_ok dev 2 in
        wound dev ~line:2 ~corrected:30;
        (match Sero.Device.evacuate_line dev ~line:2 ~timestamp:9. () with
        | Ok m ->
            Alcotest.(check bool) "heated" true m.Sero.Device.m_heated;
            (match m.Sero.Device.m_hash with
            | Some h -> Alcotest.(check bool) "same hash" true (Hash.Sha256.equal h h0)
            | None -> Alcotest.fail "heated migration lost its hash")
        | Error e -> Alcotest.failf "evacuate: %a" Sero.Device.pp_migrate_error e);
        Alcotest.(check bool) "intact at the new home" true
          (Sero.Tamper.equal_verdict
             (Sero.Device.verify_line dev ~line:2)
             Sero.Tamper.Intact));
    Alcotest.test_case "tampered line refuses to migrate" `Quick (fun () ->
        let dev = make_edev () in
        fill_line dev 3;
        ignore (heat_ok dev 3);
        let pba =
          Sero.Layout.first_data_block (Sero.Device.layout dev) 3
        in
        Sero.Device.unsafe_write_block dev ~pba "evidence must not move";
        wound dev ~line:3 ~corrected:30;
        (match Sero.Device.evacuate_line dev ~line:3 () with
        | Error Sero.Device.Reattest_failed -> ()
        | Ok _ -> Alcotest.fail "tamper evidence laundered onto a spare"
        | Error e -> Alcotest.failf "unexpected: %a" Sero.Device.pp_migrate_error e);
        Alcotest.(check int) "no spare consumed" 4
          (Sero.Device.spares_left dev);
        Alcotest.(check int) "refusal counted" 1
          (Sero.Device.stats dev).Sero.Device.reattest_failures);
    Alcotest.test_case "carcass classifies Retired_block, scrub skips it"
      `Quick (fun () ->
        let dev = make_edev () in
        let lay = Sero.Device.layout dev in
        let usable = Sero.Layout.usable_lines lay in
        fill_line dev 1;
        wound dev ~line:1 ~corrected:30;
        (match Sero.Device.maintenance dev () with
        | [ _ ] -> ()
        | ms -> Alcotest.failf "expected 1 migration, got %d" (List.length ms));
        let carcass =
          List.find
            (fun l -> Sero.Device.quarantined dev ~line:l)
            (List.init
               (Sero.Layout.n_lines lay - usable)
               (fun i -> usable + i))
        in
        (match
           Sero.Device.classify_block dev
             ~pba:(Sero.Layout.first_data_block lay carcass)
         with
        | Sero.Device.Retired_block -> ()
        | c ->
            Alcotest.failf "carcass classified %a" Sero.Device.pp_block_class
              c);
        let progress = Sero.Scrub.progress_create () in
        Sero.Scrub.sweep_line dev progress ~line:carcass;
        Sero.Scrub.sweep_line dev progress ~line:0;
        let r = Sero.Scrub.report_of_progress progress in
        Alcotest.(check int) "spare region skipped" 1 r.Sero.Scrub.retired_skipped;
        Alcotest.(check int) "only the usable line swept" 1
          r.Sero.Scrub.lines_swept);
    Alcotest.test_case "spare exhaustion degrades; critical line -> read-only"
      `Quick (fun () ->
        let dev = make_edev ~spare_lines:1 () in
        fill_line dev 0;
        wound dev ~line:0 ~corrected:30;
        ignore (Sero.Device.maintenance dev ());
        Alcotest.(check int) "spares gone" 0 (Sero.Device.spares_left dev);
        Alcotest.(check bool) "degraded" true
          (Sero.Device.device_state dev = Sero.Device.Degraded);
        (* A second line goes critical (margin <= 0) with nowhere to
           go: the device stops taking writes. *)
        wound dev ~line:2 ~corrected:100;
        ignore (Sero.Device.maintenance dev ());
        Alcotest.(check bool) "read-only" true
          (Sero.Device.device_state dev = Sero.Device.Read_only);
        (match Sero.Device.write_block dev ~pba:17 "refused" with
        | Error Sero.Device.Read_only_device -> ()
        | Ok () -> Alcotest.fail "read-only device accepted a write"
        | Error e -> Alcotest.failf "unexpected: %a" Sero.Device.pp_write_error e);
        match Sero.Device.read_block dev ~pba:(Sero.Layout.first_data_block (Sero.Device.layout dev) 0) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "read-only device must read: %a" Sero.Device.pp_read_error e);
    Alcotest.test_case "crash mid-migration: torn re-burn recovers" `Quick
      (fun () ->
        let dev = make_edev () in
        fill_line dev 2;
        let h0 =
          match Sero.Device.heat_line dev ~line:2 ~timestamp:7. () with
          | Ok h -> h
          | Error e -> Alcotest.failf "heat: %a" Sero.Device.pp_heat_error e
        in
        let before = read_all_data dev 2 in
        wound dev ~line:2 ~corrected:30;
        (* Power cut mid re-burn: the remap committed (pre-imaged data
           serves from the spare) but the new write-once area is torn. *)
        let inj =
          Fault.Injector.create (Fault.Plan.make ~power_cut_after_ewb:500 ())
        in
        Sero.Device.install_fault dev inj;
        (match Sero.Device.evacuate_line dev ~line:2 ~timestamp:8. () with
        | exception Fault.Injector.Power_cut -> ()
        | Ok _ -> Alcotest.fail "power cut never fired"
        | Error e -> Alcotest.failf "evacuate: %a" Sero.Device.pp_migrate_error e);
        Sero.Device.clear_fault dev;
        Alcotest.(check int) "remap committed before the cut" 1
          (List.length (Sero.Device.migrations dev));
        (* Recovery is the ordinary torn-burn completion: re-heating
           fills the missing cells to the identical hash. *)
        (match Sero.Device.heat_line dev ~line:2 ~timestamp:7. () with
        | Ok h -> Alcotest.(check bool) "same hash" true (Hash.Sha256.equal h h0)
        | Error e -> Alcotest.failf "recover: %a" Sero.Device.pp_heat_error e);
        Alcotest.(check bool) "intact after recovery" true
          (Sero.Tamper.equal_verdict
             (Sero.Device.verify_line dev ~line:2)
             Sero.Tamper.Intact);
        List.iter2
          (fun (pba, p0) (pba', p1) ->
            Alcotest.(check int) "pba" pba pba';
            match (p0, p1) with
            | Some a, Some b -> Alcotest.(check string) "payload" a b
            | _ -> Alcotest.failf "pba %d lost across the cut" pba)
          before (read_all_data dev 2));
    Alcotest.test_case "queue retries with backoff, then abandons" `Quick
      (fun () ->
        let dev = make_dev () in
        let des = Sim.Des.create () in
        let q =
          Sero.Queue.create ~read_retry_limit:3 ~retry_backoff:1e-4
            ~watchdog_age:1e-12 des dev
        in
        let got = ref None in
        (* A blank PBA fails deterministically on every attempt. *)
        Sero.Queue.submit_read q ~pba:17 (fun r -> got := Some r);
        Sero.Queue.drain q;
        (match !got with
        | Some (Error _) -> ()
        | Some (Ok _) -> Alcotest.fail "blank read succeeded"
        | None -> Alcotest.fail "callback never fired");
        Alcotest.(check int) "re-served twice" 2 (Sero.Queue.retried_reads q);
        Alcotest.(check int) "abandoned once" 1 (Sero.Queue.abandoned_reads q);
        Alcotest.(check bool) "watchdog saw the ordeal" true
          (Sero.Queue.watchdog_trips q > 0);
        (* A good read is untouched by the retry machinery. *)
        ignore (Sero.Device.write_block dev ~pba:9 "fine");
        let ok = ref false in
        Sero.Queue.submit_read q ~pba:9 (fun r -> ok := Result.is_ok r);
        Sero.Queue.drain q;
        Alcotest.(check bool) "good read ok" true !ok;
        Alcotest.(check int) "no extra retries" 2 (Sero.Queue.retried_reads q));
    Alcotest.test_case "image v4 roundtrips endurance state" `Quick (fun () ->
        let dev = make_edev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        wound dev ~line:2 ~corrected:30;
        (match Sero.Device.maintenance dev () with
        | [ _ ] -> ()
        | ms -> Alcotest.failf "expected 1 migration, got %d" (List.length ms));
        wound dev ~line:5 ~corrected:4;
        let path = Filename.temp_file "sero" ".img" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sero.Image.save dev path;
            match Sero.Image.load path with
            | Error e -> Alcotest.failf "load: %s" e
            | Ok dev2 ->
                Alcotest.(check int) "spares" (Sero.Device.spares_left dev)
                  (Sero.Device.spares_left dev2);
                Alcotest.(check int) "remap"
                  (Sero.Device.phys_of_line dev ~line:2)
                  (Sero.Device.phys_of_line dev2 ~line:2);
                Alcotest.(check (float 1e-9)) "ledger ewma survives"
                  (Sero.Device.line_margin dev ~line:5)
                  (Sero.Device.line_margin dev2 ~line:5);
                (match Sero.Device.migrations dev2 with
                | [ m ] ->
                    Alcotest.(check int) "m_line" 2 m.Sero.Device.m_line;
                    Alcotest.(check bool) "m_heated" true m.Sero.Device.m_heated
                | ms ->
                    Alcotest.failf "expected 1 migration, got %d"
                      (List.length ms));
                Alcotest.(check bool) "still intact" true
                  (Sero.Tamper.equal_verdict
                     (Sero.Device.verify_line dev2 ~line:2)
                     Sero.Tamper.Intact)));
    Alcotest.test_case "v3 images still load (endurance defaults off)" `Quick
      (fun () ->
        let dev = make_dev () in
        fill_line dev 2;
        ignore (heat_ok dev 2);
        let path = Filename.temp_file "sero" ".img" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Sero.Image.save ~format:`V3 dev path;
            match Sero.Image.load path with
            | Error e -> Alcotest.failf "load v3: %s" e
            | Ok dev2 ->
                Alcotest.(check int) "no spares" 0 (Sero.Device.spares_left dev2);
                Alcotest.(check bool) "lifecycle off" true
                  (Sero.Device.device_state dev2 = Sero.Device.Healthy);
                Alcotest.(check bool) "intact" true
                  (Sero.Tamper.equal_verdict
                     (Sero.Device.verify_line dev2 ~line:2)
                     Sero.Tamper.Intact)));
  ]

(* The twin-device law: under a wear-free workload the lifecycle arm
   (health on) and the baseline arm (health off, same spare reserve, so
   identical usable geometry) agree on every observable result, and the
   lifecycle never migrates anything. *)
type end_op = E_read of int | E_write of int * int | E_heat of int | E_verify of int

let endurance_twin =
  let n_blocks = 64 and line_exp = 3 and spare_lines = 2 in
  let lay = Sero.Layout.create ~spare_lines ~n_blocks ~line_exp () in
  let usable = Sero.Layout.usable_lines lay in
  let data_pbas =
    Array.of_list
      (List.concat_map
         (Sero.Layout.data_blocks_of_line lay)
         (List.init usable Fun.id))
  in
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (4, map (fun i -> E_read i) (int_range 0 (Array.length data_pbas - 1)));
          ( 4,
            map2
              (fun i tag -> E_write (i, tag))
              (int_range 0 (Array.length data_pbas - 1))
              (int_range 0 999) );
          (2, map (fun l -> E_heat l) (int_range 0 (usable - 1)));
          (2, map (fun l -> E_verify l) (int_range 0 (usable - 1)));
        ])
  in
  let print_op = function
    | E_read i -> Printf.sprintf "read %d" i
    | E_write (i, t) -> Printf.sprintf "write %d #%d" i t
    | E_heat l -> Printf.sprintf "heat %d" l
    | E_verify l -> Printf.sprintf "verify %d" l
  in
  QCheck.Test.make ~name:"lifecycle on == lifecycle off without wear" ~count:60
    QCheck.(
      make
        Gen.(list_size (5 -- 40) op_gen)
        ~print:(fun ops -> String.concat "; " (List.map print_op ops)))
    (fun ops ->
      let mk health_enabled =
        let base = Sero.Device.default_config ~n_blocks ~line_exp () in
        Sero.Device.create
          {
            base with
            Sero.Device.endurance =
              {
                Sero.Device.health_enabled;
                spare_lines;
                ewma_alpha = 0.4;
                retire_margin = 0.5;
              };
          }
      in
      let dev_on = mk true and dev_off = mk false in
      let step op =
        match op with
        | E_read i ->
            let pba = data_pbas.(i) in
            (match
               (Sero.Device.read_block dev_on ~pba,
                Sero.Device.read_block dev_off ~pba)
             with
            | Ok a, Ok b -> String.equal a b
            | Error _, Error _ -> true
            | Ok _, Error _ | Error _, Ok _ -> false)
        | E_write (i, tag) ->
            let pba = data_pbas.(i) in
            let p = Printf.sprintf "twin %d @%d" tag pba in
            (match
               (Sero.Device.write_block dev_on ~pba p,
                Sero.Device.write_block dev_off ~pba p)
             with
            | Ok (), Ok () | Error _, Error _ -> true
            | Ok (), Error _ | Error _, Ok () -> false)
        | E_heat l ->
            (match
               (Sero.Device.heat_line dev_on ~line:l (),
                Sero.Device.heat_line dev_off ~line:l ())
             with
            | Ok a, Ok b -> Hash.Sha256.equal a b
            | Error _, Error _ -> true
            | Ok _, Error _ | Error _, Ok _ -> false)
        | E_verify l ->
            Sero.Tamper.equal_verdict
              (Sero.Device.verify_line dev_on ~line:l)
              (Sero.Device.verify_line dev_off ~line:l)
      in
      let ok = List.for_all step ops in
      ignore (Sero.Device.maintenance dev_on ());
      ok
      && Sero.Device.migrations dev_on = []
      && Sero.Device.spares_left dev_on = spare_lines
      && Sero.Device.device_state dev_on = Sero.Device.Healthy
      && List.for_all
           (fun l ->
             Sero.Device.phys_of_line dev_on ~line:l
             = Sero.Device.phys_of_line dev_off ~line:l)
           (List.init (Sero.Layout.n_lines lay) Fun.id))

(* {1 CoW device clones} *)

(* Read every data block and verify every line — the clone-observable
   face of a device, used to compare clones byte-for-byte. *)
let device_face dev =
  let lay = Sero.Device.layout dev in
  let reads =
    List.concat_map
      (fun line ->
        List.map
          (fun pba ->
            match Sero.Device.read_block dev ~pba with
            | Ok s -> s
            | Error _ -> "<error>")
          (Sero.Layout.data_blocks_of_line lay line))
      (List.init (Sero.Layout.n_lines lay) Fun.id)
  in
  let verdicts =
    List.init (Sero.Layout.n_lines lay) (fun line ->
        Format.asprintf "%a" Sero.Tamper.pp_verdict
          (Sero.Device.verify_line dev ~line))
  in
  (reads, verdicts)

let clone_parent_churn =
  (* Whatever happens to the parent after the snapshot — writes, heats,
     scrub passes, even injected faults — two clones taken at the same
     instant stay identical to each other and to the pre-churn state. *)
  QCheck.Test.make ~name:"clones are frozen against parent churn" ~count:15
    QCheck.(small_list (pair (int_range 0 3) (int_range 0 1_000)))
    (fun script ->
      let dev = make_dev ~n_blocks:64 () in
      let lay = Sero.Device.layout dev in
      let n_lines = Sero.Layout.n_lines lay in
      fill_line dev 0;
      fill_line dev 1;
      ignore (heat_ok dev 0);
      let c1 = Sero.Device.clone dev and c2 = Sero.Device.clone dev in
      let before = device_face c1 in
      List.iter
        (fun (op, x) ->
          match op with
          | 0 ->
              let line = x mod n_lines in
              let pba = List.hd (Sero.Layout.data_blocks_of_line lay line) in
              ignore (Sero.Device.write_block dev ~pba (Printf.sprintf "churn %d" x))
          | 1 -> ignore (Sero.Device.heat_line dev ~line:(x mod n_lines) ())
          | 2 -> ignore (Sero.Scrub.pass dev)
          | _ ->
              Sero.Device.unsafe_heat_dots dev
                ~dot:(Sero.Layout.block_first_dot lay (x mod 64))
                ~n:8)
        script;
      device_face c1 = before && device_face c2 = before)

let clone_rearm_isolation =
  (* Re-arming a clone with its own fault plan must not let any parent
     state cross the boundary: whatever evidence the armed parent
     accumulates (tampers, injected flips), a clone taken afterwards —
     with or without its own plan — starts with a clean face and an
     empty (or fresh) ledger. *)
  QCheck.Test.make ~name:"clone ?plan re-arm keeps parent evidence out"
    ~count:15
    QCheck.(triple (int_range 0 1_000) (int_range 0 63) bool)
    (fun (seed, victim_blk, rearm) ->
      let dev = make_dev ~n_blocks:64 () in
      let lay = Sero.Device.layout dev in
      fill_line dev 0;
      ignore (heat_ok dev 0);
      let face = device_face dev in
      Sero.Device.install_fault dev
        (Fault.Injector.create (Fault.Plan.make ~seed ~read_ber:0.3 ()));
      (* Churn the parent through its noisy channel before snapshotting,
         so its injector has position state a naive fork would share. *)
      List.iter
        (fun pba -> ignore (Sero.Device.read_block dev ~pba))
        (Sero.Layout.data_blocks_of_line lay 0);
      let plan =
        if rearm then Some (Fault.Plan.make ~seed:(seed + 1) ()) else None
      in
      let clone = Sero.Device.clone ?plan dev in
      (* Attack the parent after the snapshot: none of it may show. *)
      Sero.Device.unsafe_heat_dots dev
        ~dot:(Sero.Layout.block_first_dot lay (victim_blk mod 64))
        ~n:600;
      let clone_inj_fresh =
        match Probe.Pdevice.fault (Sero.Device.pdevice clone) with
        | None -> not rearm
        | Some inj -> rearm && Fault.Injector.n_events inj = 0
      in
      if rearm then Sero.Device.clear_fault clone;
      clone_inj_fresh && device_face clone = face)

let clone_cases =
  [
    Alcotest.test_case "clone reads the parent's bytes, CoW-lazily" `Quick
      (fun () ->
        let dev = make_dev ~n_blocks:64 () in
        fill_line dev 1;
        ignore (heat_ok dev 1);
        let clone = Sero.Device.clone dev in
        let med =
          Probe.Pdevice.medium (Sero.Device.pdevice clone)
        in
        Alcotest.(check int) "no private segments at rest" 0
          (Pmedia.Medium.owned_segments med);
        Alcotest.(check (pair (list string) (list string)))
          "same face" (device_face dev) (device_face clone);
        Alcotest.(check int) "reading materialised nothing" 0
          (Pmedia.Medium.materialized_total med));
    Alcotest.test_case "clone writes never reach the parent" `Quick (fun () ->
        let dev = make_dev ~n_blocks:64 () in
        fill_line dev 1;
        let face = device_face dev in
        let clone = Sero.Device.clone dev in
        let pba =
          List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout clone) 2)
        in
        (match Sero.Device.write_block clone ~pba "private to the clone" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e);
        ignore (heat_ok clone 1);
        Alcotest.(check (pair (list string) (list string)))
          "parent unchanged" face (device_face dev);
        Alcotest.(check bool) "parent line 1 still WMRM" false
          (Sero.Device.is_line_heated dev ~line:1));
    Alcotest.test_case "tamper evidence never crosses the clone boundary"
      `Quick (fun () ->
        let dev = make_dev ~n_blocks:64 () in
        fill_line dev 0;
        ignore (heat_ok dev 0);
        let lay = Sero.Device.layout dev in
        let victim = List.nth (Sero.Layout.data_blocks_of_line lay 0) 1 in
        let clean = Sero.Device.clone dev and evil = Sero.Device.clone dev in
        (* Attack the parent: its evidence must not appear in clones. *)
        Sero.Device.unsafe_heat_dots dev
          ~dot:(Sero.Layout.block_first_dot lay victim)
          ~n:600;
        Alcotest.(check bool) "parent tampered" true
          (Sero.Tamper.is_tampered (Sero.Device.verify_line dev ~line:0));
        Alcotest.(check bool) "clean clone intact" false
          (Sero.Tamper.is_tampered (Sero.Device.verify_line clean ~line:0));
        (* Attack a sibling: evidence must not launder into the other. *)
        Sero.Device.unsafe_heat_dots evil
          ~dot:(Sero.Layout.block_first_dot lay victim)
          ~n:600;
        Alcotest.(check bool) "evil clone tampered" true
          (Sero.Tamper.is_tampered (Sero.Device.verify_line evil ~line:0));
        Alcotest.(check bool) "sibling still intact" false
          (Sero.Tamper.is_tampered (Sero.Device.verify_line clean ~line:0)));
    Alcotest.test_case "listeners are not inherited" `Quick (fun () ->
        let dev = make_dev ~n_blocks:64 () in
        let hits = ref 0 in
        Sero.Device.add_mutation_listener dev (fun ~pba:_ ~n:_ -> incr hits);
        Sero.Device.on_fault_install dev (fun () -> incr hits);
        let clone = Sero.Device.clone dev in
        let pba =
          List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout clone) 1)
        in
        (match Sero.Device.write_block clone ~pba "quiet" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %a" Sero.Device.pp_write_error e);
        Sero.Device.install_fault clone
          (Fault.Injector.create (Fault.Plan.make ()));
        Alcotest.(check int) "parent listeners silent" 0 !hits);
    Alcotest.test_case "a parent's live injector is never inherited" `Quick
      (fun () ->
        let dev = make_dev ~n_blocks:64 () in
        Sero.Device.install_fault dev
          (Fault.Injector.create (Fault.Plan.make ~seed:7 ~read_ber:0.5 ()));
        let clone = Sero.Device.clone dev in
        Alcotest.(check bool) "clone starts fault-free" false
          (Sero.Device.fault_installed clone);
        Alcotest.(check bool) "parent still armed" true
          (Sero.Device.fault_installed dev));
    Alcotest.test_case "clone ?plan arms a fresh injector on the clone"
      `Quick (fun () ->
        let dev = make_dev ~n_blocks:64 () in
        fill_line dev 1;
        let face = device_face dev in
        let plan = Fault.Plan.make ~seed:11 ~read_ber:0.2 () in
        let faulty = Sero.Device.clone ~plan dev in
        Alcotest.(check bool) "clone armed" true
          (Sero.Device.fault_installed faulty);
        Alcotest.(check bool) "parent untouched" false
          (Sero.Device.fault_installed dev);
        (* Drive reads through the clone's noisy channel; the injector's
           ledger lives on the clone and the parent reads stay clean. *)
        let lay = Sero.Device.layout faulty in
        List.iter
          (fun pba -> ignore (Sero.Device.read_block faulty ~pba))
          (Sero.Layout.data_blocks_of_line lay 1);
        let inj =
          match Probe.Pdevice.fault (Sero.Device.pdevice faulty) with
          | Some inj -> inj
          | None -> Alcotest.fail "clone injector vanished"
        in
        Alcotest.(check bool) "clone injector drew events" true
          (Fault.Injector.n_events inj > 0);
        Alcotest.(check (pair (list string) (list string)))
          "parent face clean" face (device_face dev));
    Alcotest.test_case "park drops the scratch; the device still works"
      `Quick (fun () ->
        let dev = make_dev ~n_blocks:64 () in
        fill_line dev 1;
        let face = device_face dev in
        Sero.Device.park dev;
        Alcotest.(check (pair (list string) (list string)))
          "same face after park" face (device_face dev);
        Sero.Device.park dev;
        Sero.Device.park dev;
        Alcotest.(check (pair (list string) (list string)))
          "double park harmless" face (device_face dev));
  ]

let () =
  Alcotest.run "sero"
    [
      ("layout", layout_cases @ List.map qtest layout_props);
      ("sector-ops", device_cases);
      ("heat-verify",
        lifecycle_cases
        @ List.map qtest
            [ roundtrip_any_line; ecc_absorbs_noise;
              gross_corruption_always_evident ]);
      ("tamper", tamper_cases);
      ("verify-region", region_cases);
      ("whole-device", whole_device_cases);
      ("image", image_cases);
      ("bcache", bcache_cases @ [ qtest twin_equivalence ]);
      ("endurance", endurance_cases @ [ qtest endurance_twin ]);
      ("clone",
        clone_cases @ [ qtest clone_parent_churn; qtest clone_rearm_isolation ]);
    ]
