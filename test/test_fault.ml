(* Fault injection and the RAS layer: ledger determinism, torn-burn
   detection and completion, tip sparing, read retry, scrubbing, and
   the invariant that recovery never changes a tamper verdict. *)

let qtest = QCheck_alcotest.to_alcotest

let make_dev ?(n_blocks = 128) ?(ras = false) () =
  let c = Sero.Device.default_config ~n_blocks ~line_exp:3 () in
  Sero.Device.create
    {
      c with
      Sero.Device.ras =
        (if ras then Sero.Device.active_ras else Sero.Device.default_ras);
    }

let fill_line dev line =
  List.iteri
    (fun i pba ->
      match
        Sero.Device.write_block dev ~pba (Printf.sprintf "line %d block %d" line i)
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "fill: %a" Sero.Device.pp_write_error e)
    (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line)

let heat_ok dev line =
  match Sero.Device.heat_line dev ~line () with
  | Ok h -> h
  | Error e -> Alcotest.failf "heat: %a" Sero.Device.pp_heat_error e

let tear_line dev ~line ~cells =
  let inj =
    Fault.Injector.create (Fault.Plan.make ~power_cut_after_ewb:cells ())
  in
  Sero.Device.install_fault dev inj;
  (match Sero.Device.heat_line dev ~line () with
  | exception Fault.Injector.Power_cut -> ()
  | Ok _ -> Alcotest.fail "expected the power cut to interrupt the burn"
  | Error e -> Alcotest.failf "heat: %a" Sero.Device.pp_heat_error e);
  Sero.Device.clear_fault dev

let verdict = Alcotest.testable Sero.Tamper.pp_verdict Sero.Tamper.equal_verdict

(* {1 Plans and determinism} *)

let plan_cases =
  [
    Alcotest.test_case "plan validation" `Quick (fun () ->
        Alcotest.check_raises "ber > 1"
          (Invalid_argument "Fault.Plan.make: read_ber must be in [0, 1]")
          (fun () -> ignore (Fault.Plan.make ~read_ber:1.5 ()));
        Alcotest.check_raises "negative cut"
          (Invalid_argument "Fault.Plan.make: power_cut_after_ops < 0")
          (fun () -> ignore (Fault.Plan.make ~power_cut_after_ops:(-1) ())));
    Alcotest.test_case "identical runs produce identical ledgers" `Quick
      (fun () ->
        let run () =
          let dev = make_dev ~ras:true () in
          fill_line dev 2;
          let plan =
            Fault.Plan.make ~seed:99 ~read_ber:0.002 ~stuck_rate:0.001
              ~tip_deaths:[ { Fault.Plan.tip = 5; after_ops = 100 } ]
              ()
          in
          let inj = Fault.Injector.create plan in
          Sero.Device.install_fault dev inj;
          List.iter
            (fun pba -> ignore (Sero.Device.read_block dev ~pba))
            (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2);
          Fault.Injector.ledger_to_string inj
        in
        let a = run () and b = run () in
        Alcotest.(check bool) "ledger has events" true (String.length a > 0);
        Alcotest.(check string) "bit-identical ledgers" a b);
    Alcotest.test_case "power cut fires once then disarms" `Quick (fun () ->
        let dev = make_dev () in
        let inj =
          Fault.Injector.create (Fault.Plan.make ~power_cut_after_ops:5 ())
        in
        Sero.Device.install_fault dev inj;
        let cut =
          try
            for line = 0 to 3 do
              fill_line dev line
            done;
            false
          with Fault.Injector.Power_cut -> true
        in
        Alcotest.(check bool) "cut fired" true cut;
        Alcotest.(check bool) "recorded" true (Fault.Injector.cut_fired inj);
        (* The reboot: the same device keeps working, no second cut. *)
        fill_line dev 1);
  ]

(* {1 Torn burns} *)

let torn_cases =
  [
    Alcotest.test_case "power cut mid-burn leaves a recoverable torn line"
      `Quick (fun () ->
        let dev = make_dev ~ras:true () in
        let lay = Sero.Device.layout dev in
        fill_line dev 1;
        tear_line dev ~line:1 ~cells:700;
        (match Sero.Device.read_hash_block dev ~line:1 with
        | `Torn torn ->
            Alcotest.(check bool)
              "some cells burned" true
              (torn.Sero.Device.burned_cells > 0
              && torn.Sero.Device.burned_cells < 2048)
        | `Not_heated -> Alcotest.fail "torn area read as not heated"
        | `Burned _ -> Alcotest.fail "torn area read as fully burned"
        | `Tampered _ -> Alcotest.fail "torn area read as tampered");
        Alcotest.check
          (Alcotest.testable Sero.Device.pp_block_class ( = ))
          "classifies as torn" Sero.Device.Torn_block
          (Sero.Device.classify_block dev
             ~pba:(Sero.Layout.hash_block_of_line lay 1));
        (* Until completed, the verdict is tampered: a torn burn is
           indistinguishable from a sabotaged one without finishing it. *)
        Alcotest.check verdict "tampered before completion"
          (Sero.Tamper.Tampered [ Sero.Tamper.Partially_burned ])
          (Sero.Device.verify_line dev ~line:1);
        ignore (heat_ok dev 1);
        Alcotest.check verdict "intact after completion" Sero.Tamper.Intact
          (Sero.Device.verify_line dev ~line:1));
    Alcotest.test_case "completion after data tampering stays evidence" `Quick
      (fun () ->
        let dev = make_dev ~ras:true () in
        let lay = Sero.Device.layout dev in
        fill_line dev 1;
        tear_line dev ~line:1 ~cells:700;
        (* The adversary rewrites a data block while the burn is torn. *)
        Sero.Device.unsafe_write_block dev
          ~pba:(List.hd (Sero.Layout.data_blocks_of_line lay 1))
          "history, rewritten";
        (match Sero.Device.heat_line dev ~line:1 () with
        | Ok _ -> ()
        | Error _ -> ());
        Alcotest.(check bool)
          "verify still reports tampering" true
          (Sero.Tamper.is_tampered (Sero.Device.verify_line dev ~line:1)));
    Alcotest.test_case "weak pulses are re-pulsed under RAS" `Quick (fun () ->
        let dev = make_dev ~ras:true () in
        fill_line dev 1;
        let inj =
          Fault.Injector.create (Fault.Plan.make ~seed:3 ~weak_ewb_p:0.02 ())
        in
        Sero.Device.install_fault dev inj;
        ignore (heat_ok dev 1);
        Sero.Device.clear_fault dev;
        let s = Sero.Device.stats dev in
        Alcotest.(check bool)
          "re-pulses recorded" true
          (s.Sero.Device.repulses > 0);
        Alcotest.check verdict "line intact despite weak pulses"
          Sero.Tamper.Intact
          (Sero.Device.verify_line dev ~line:1));
  ]

(* {1 Tip sparing and read retry} *)

let ras_cases =
  [
    Alcotest.test_case "dead tip: fatal without sparing, spared with RAS"
      `Quick (fun () ->
        let read_all dev line =
          List.for_all
            (fun pba -> Result.is_ok (Sero.Device.read_block dev ~pba))
            (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line)
        in
        let kill dev =
          let inj =
            Fault.Injector.create
              (Fault.Plan.make
                 ~tip_deaths:[ { Fault.Plan.tip = 7; after_ops = 0 } ]
                 ())
          in
          Sero.Device.install_fault dev inj
        in
        let plain = make_dev () in
        fill_line plain 2;
        kill plain;
        Alcotest.(check bool) "no RAS: reads fail" false (read_all plain 2);
        let ras = make_dev ~ras:true () in
        fill_line ras 2;
        kill ras;
        Alcotest.(check bool) "RAS: reads recover" true (read_all ras 2);
        let s = Sero.Device.stats ras in
        Alcotest.(check bool)
          "remap recorded" true
          (s.Sero.Device.remapped_tips >= 1));
    Alcotest.test_case "read retry rides out transient flips" `Quick (fun () ->
        let dev = make_dev ~ras:true () in
        fill_line dev 2;
        let inj =
          Fault.Injector.create (Fault.Plan.make ~seed:17 ~read_ber:0.004 ())
        in
        Sero.Device.install_fault dev inj;
        let failures = ref 0 in
        for _ = 1 to 5 do
          List.iter
            (fun pba ->
              if Result.is_error (Sero.Device.read_block dev ~pba) then
                incr failures)
            (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2)
        done;
        let s = Sero.Device.stats dev in
        Alcotest.(check bool)
          "retries happened and won" true
          (s.Sero.Device.retries > 0 && s.Sero.Device.retry_successes > 0);
        Alcotest.(check int) "every read recovered" 0 !failures);
    Alcotest.test_case "tips rounding: E17 boundary sizes still classify"
      `Quick (fun () ->
        (* A non-multiple dot count must not raise since the rounding
           rule replaced the Invalid_argument. *)
        let medium =
          Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:30 ~cols:35)
        in
        let tips = Probe.Tips.create ~n_tips:16 medium in
        Alcotest.(check int)
          "field size rounds up" 1056 (16 * Probe.Tips.field_size tips));
  ]

(* {1 Scrub} *)

let scrub_cases =
  [
    Alcotest.test_case "scrub completes torn burns and reports them" `Quick
      (fun () ->
        let dev = make_dev ~ras:true () in
        fill_line dev 1;
        fill_line dev 3;
        tear_line dev ~line:1 ~cells:600;
        tear_line dev ~line:3 ~cells:1100;
        let r = Sero.Scrub.pass dev in
        Alcotest.(check (list int))
          "both torn lines completed" [ 1; 3 ]
          (List.sort compare r.Sero.Scrub.torn_completed);
        Alcotest.check verdict "line 1 intact" Sero.Tamper.Intact
          (Sero.Device.verify_line dev ~line:1);
        Alcotest.check verdict "line 3 intact" Sero.Tamper.Intact
          (Sero.Device.verify_line dev ~line:3));
    Alcotest.test_case "scrub rewrites sectors past the correction threshold"
      `Quick (fun () ->
        let dev = make_dev ~ras:true () in
        let lay = Sero.Device.layout dev in
        fill_line dev 2;
        (* Age one sector: flip enough dots to push RS corrections past
           the scrub threshold but stay within its 12-symbol budget. *)
        let pba = List.hd (Sero.Layout.data_blocks_of_line lay 2) in
        let med = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
        let first = Sero.Layout.block_first_dot lay pba in
        for i = 0 to 7 do
          let dot = first + (i * 8) in
          match Pmedia.Medium.get med dot with
          | Pmedia.Dot.Magnetised d ->
              Pmedia.Medium.set med dot
                (Pmedia.Dot.Magnetised
                   (match d with
                   | Pmedia.Dot.Up -> Pmedia.Dot.Down
                   | Pmedia.Dot.Down -> Pmedia.Dot.Up))
          | Pmedia.Dot.Heated -> ()
        done;
        let r =
          Sero.Scrub.pass
            ~config:
              {
                Sero.Scrub.default_config with
                Sero.Scrub.correction_threshold = 2;
              }
            dev
        in
        Alcotest.(check bool) "rewrote the aged sector" true (r.Sero.Scrub.rewritten >= 1);
        let s = Sero.Device.stats dev in
        Alcotest.(check bool)
          "counter tracks rewrites" true
          (s.Sero.Device.scrub_rewrites >= 1);
        (* The refreshed sector decodes cleanly now. *)
        match Sero.Device.read_block dev ~pba with
        | Ok payload ->
            Alcotest.(check bool)
              "payload preserved" true
              (String.length payload > 0)
        | Error e -> Alcotest.failf "read: %a" Sero.Device.pp_read_error e);
    Alcotest.test_case "scheduled scrub runs on the DES clock" `Quick
      (fun () ->
        let dev = make_dev ~ras:true () in
        fill_line dev 1;
        tear_line dev ~line:1 ~cells:800;
        let des = Sim.Des.create () in
        let passes = ref [] in
        Sero.Scrub.schedule
          ~config:{ Sero.Scrub.default_config with Sero.Scrub.period = 10. }
          des dev ~on_pass:(fun r -> passes := r :: !passes);
        Sim.Des.run ~until:35. des;
        Alcotest.(check int) "three periods, three passes" 3 (List.length !passes);
        Alcotest.(check (list int))
          "first pass completed the torn line" [ 1 ]
          (List.rev !passes |> List.hd |> fun r -> r.Sero.Scrub.torn_completed));
  ]

(* {1 Recovery never weakens tamper evidence} *)

let verdict_invariance =
  QCheck.Test.make ~name:"retry+scrub never change a heated line's verdict"
    ~count:15
    QCheck.(pair (int_range 1 9) (int_bound 1000))
    (fun (line, seed) ->
      let dev = make_dev ~ras:true () in
      fill_line dev line;
      ignore (heat_ok dev line);
      (* Half the cases get real tampering before the recovery storm. *)
      let tampered = seed mod 2 = 0 in
      if tampered then
        Sero.Device.unsafe_write_block dev
          ~pba:
            (List.hd
               (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line))
          "rewritten history";
      let before = Sero.Device.verify_line dev ~line in
      let inj =
        Fault.Injector.create (Fault.Plan.make ~seed ~read_ber:0.002 ())
      in
      Sero.Device.install_fault dev inj;
      List.iter
        (fun pba -> ignore (Sero.Device.read_block dev ~pba))
        (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line);
      ignore (Sero.Scrub.pass dev);
      Sero.Device.clear_fault dev;
      let after = Sero.Device.verify_line dev ~line in
      Sero.Tamper.equal_verdict before after
      && Sero.Tamper.is_tampered before = tampered)

(* {1 LFS power-cut recovery} *)

let lfs_cases =
  [
    Alcotest.test_case "mount recovery completes a torn heat" `Quick (fun () ->
        let dev = make_dev ~n_blocks:256 ~ras:true () in
        let fs = Lfs.Fs.format dev in
        (match Lfs.Fs.create fs "/ledger" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "create: %s" e);
        (match
           Lfs.Fs.write_file fs "/ledger" ~offset:0
             (String.concat "\n"
                (List.init 80 (fun i -> Printf.sprintf "entry %04d" i)))
         with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %s" e);
        Lfs.Fs.sync fs;
        (* Power dies mid-burn: the heat's ewb stream is interrupted. *)
        let inj =
          Fault.Injector.create (Fault.Plan.make ~power_cut_after_ewb:900 ())
        in
        Sero.Device.install_fault dev inj;
        (match Lfs.Fs.heat fs "/ledger" with
        | exception Fault.Injector.Power_cut -> ()
        | Ok _ -> Alcotest.fail "expected a power cut during heat"
        | Error e -> Alcotest.failf "heat: %s" e);
        Sero.Device.clear_fault dev;
        (* Reboot: recover replays the checkpoint, completes torn burns
           and re-runs fsck before handing the FS back. *)
        match Lfs.Fs.recover dev with
        | Error e -> Alcotest.failf "recover: %s" e
        | Ok r ->
            Alcotest.(check bool)
              "a torn line was completed" true
              (r.Lfs.Fs.torn_completed <> []);
            List.iter
              (fun line ->
                Alcotest.check verdict "completed line intact"
                  Sero.Tamper.Intact
                  (Sero.Device.verify_line dev ~line))
              r.Lfs.Fs.torn_completed;
            match Lfs.Fs.read_file r.Lfs.Fs.fs "/ledger" with
            | Ok data ->
                Alcotest.(check bool)
                  "file data survives the crash" true
                  (String.length data > 0)
            | Error e -> Alcotest.failf "read after recover: %s" e);
    Alcotest.test_case "no stale cache survives a crash and recover" `Quick
      (fun () ->
        let dev = make_dev ~n_blocks:256 ~ras:true () in
        let q = Sero.Queue.create (Sim.Des.create ()) dev in
        let bc = Sero.Bcache.create ~capacity:64 ~read_ahead:8 q in
        let fs = Lfs.Fs.format dev in
        Lfs.Fs.attach_queue fs q;
        Lfs.Fs.attach_cache fs bc;
        let durable =
          String.concat "\n"
            (List.init 60 (fun i -> Printf.sprintf "entry %04d" i))
        in
        (match Lfs.Fs.create fs "/ledger" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "create: %s" e);
        (match Lfs.Fs.write_file fs "/ledger" ~offset:0 durable with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %s" e);
        Lfs.Fs.sync fs;
        (* Prime the block cache, then stage an update that only lives
           in the volatile caches (inode + buffered blocks). *)
        (match Lfs.Fs.read_file fs "/ledger" with
        | Ok d -> Alcotest.(check string) "primed read" durable d
        | Error e -> Alcotest.failf "read: %s" e);
        (match Lfs.Fs.append fs "/ledger" "\nVOLATILE TAIL" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "append: %s" e);
        (* Power dies while the next sync is mid-flight: some blocks
           land, the checkpoint does not. *)
        let inj =
          Fault.Injector.create (Fault.Plan.make ~power_cut_after_ops:10 ())
        in
        Sero.Device.install_fault dev inj;
        (match Lfs.Fs.sync fs with
        | exception Fault.Injector.Power_cut -> ()
        | () -> Alcotest.fail "expected the power cut to interrupt the sync");
        Sero.Device.clear_fault dev;
        (* Reboot: fs, queue and cache above are dead with the power.
           Recovery sees only the medium. *)
        match Lfs.Fs.recover dev with
        | Error e -> Alcotest.failf "recover: %s" e
        | Ok r ->
            let read_via fs =
              match Lfs.Fs.read_file fs "/ledger" with
              | Ok d -> d
              | Error e -> Alcotest.failf "read after recover: %s" e
            in
            let direct = read_via r.Lfs.Fs.fs in
            Alcotest.(check string)
              "recovered content is the durable state, not the cached tail"
              durable direct;
            (* A fresh cache over the recovered FS must agree with the
               uncached view — twice, so the second read is a pure
               cache hit. *)
            let q2 = Sero.Queue.create (Sim.Des.create ()) dev in
            let bc2 = Sero.Bcache.create ~capacity:64 ~read_ahead:8 q2 in
            Lfs.Fs.attach_queue r.Lfs.Fs.fs q2;
            Lfs.Fs.attach_cache r.Lfs.Fs.fs bc2;
            Alcotest.(check string)
              "cached read agrees" durable
              (read_via r.Lfs.Fs.fs);
            Alcotest.(check string)
              "cache-hit read agrees" durable
              (read_via r.Lfs.Fs.fs);
            (* And so must an independent uncached mount. *)
            (match Lfs.Fs.mount dev with
            | Error e -> Alcotest.failf "second mount: %s" e
            | Ok m2 ->
                Alcotest.(check string)
                  "independent mount agrees" durable (read_via m2));
            Sero.Bcache.sync bc2;
            Sero.Queue.drain q2);
  ]

let () =
  Alcotest.run "fault"
    [
      ("plan & determinism", plan_cases);
      ("torn burns", torn_cases);
      ("tip sparing & retry", ras_cases);
      ("scrub", scrub_cases);
      ("verdict invariance", [ qtest verdict_invariance ]);
      ("lfs recovery", lfs_cases);
    ]
