(* Probe device: tip striping, actuator, timing ledger, run operations. *)

let qtest = QCheck_alcotest.to_alcotest

let make_medium ?(rows = 32) ?(cols = 32) () =
  Pmedia.Medium.create (Pmedia.Medium.default_config ~rows ~cols)

let make_pdev ?(n_tips = 16) () =
  Probe.Pdevice.create
    ~config:{ Probe.Pdevice.default_config with Probe.Pdevice.n_tips }
    (make_medium ())

(* {1 Tips} *)

let tips_bijection =
  QCheck.Test.make ~name:"locate/dot_of bijection" ~count:300
    QCheck.(int_range 0 1023)
    (fun dot ->
      let tips = Probe.Tips.create ~n_tips:16 (make_medium ()) in
      let tip, offset = Probe.Tips.locate tips dot in
      Probe.Tips.dot_of tips ~tip ~offset = dot)

let tips_striping =
  QCheck.Test.make ~name:"consecutive dots land on consecutive tips" ~count:100
    QCheck.(int_range 0 1000)
    (fun dot ->
      let tips = Probe.Tips.create ~n_tips:16 (make_medium ()) in
      let t1, o1 = Probe.Tips.locate tips dot in
      let t2, o2 = Probe.Tips.locate tips (dot + 1) in
      if t1 < 15 then t2 = t1 + 1 && o2 = o1 else t2 = 0 && o2 = o1 + 1)

let tips_cases =
  [
    Alcotest.test_case "non-multiple medium rounds the field size up" `Quick
      (fun () ->
        (* 1024 dots over 7 tips: fields of ceil(1024/7) = 147 offsets;
           the last scan row is partial. *)
        let tips = Probe.Tips.create ~n_tips:7 (make_medium ()) in
        Alcotest.(check int) "field size" 147 (Probe.Tips.field_size tips);
        Alcotest.(check (pair int int)) "last dot" (1023 mod 7, 1023 / 7)
          (Probe.Tips.locate tips 1023);
        Alcotest.(check int) "roundtrip" 1023
          (Probe.Tips.dot_of tips ~tip:(1023 mod 7) ~offset:(1023 / 7));
        (* Dots past the medium end do not exist, on either mapping. *)
        Alcotest.check_raises "locate rejects phantom"
          (Invalid_argument "Tips.locate: dot address out of range") (fun () ->
            ignore (Probe.Tips.locate tips 1024));
        Alcotest.check_raises "dot_of rejects phantom"
          (Invalid_argument "Tips.dot_of: out of range") (fun () ->
            ignore (Probe.Tips.dot_of tips ~tip:5 ~offset:146)));
    Alcotest.test_case "spare tips remap a failed field" `Quick (fun () ->
        let tips = Probe.Tips.create ~spares:2 ~n_tips:16 (make_medium ()) in
        Alcotest.(check int) "spares" 2 (Probe.Tips.spares tips);
        Alcotest.(check bool) "no-op on healthy tip" false
          (Probe.Tips.remap_tip tips 3);
        Probe.Tips.fail_tip tips 3;
        Alcotest.(check bool) "failed" true (Probe.Tips.tip_failed tips 3);
        Alcotest.(check bool) "remapped" true (Probe.Tips.remap_tip tips 3);
        Alcotest.(check bool) "serving again" false
          (Probe.Tips.tip_failed tips 3);
        Alcotest.(check bool) "still broken raw" true
          (Probe.Tips.tip_broken tips 3);
        Alcotest.(check int) "one remap" 1 (Probe.Tips.remapped_count tips);
        Alcotest.(check int) "one spare left" 1 (Probe.Tips.spares_free tips);
        (* Wear accrues on the serving spare, not the corpse. *)
        let before = Probe.Tips.uses tips ~tip:16 in
        Probe.Tips.record_use tips ~tip:3;
        Alcotest.(check int) "spare wears" (before + 1)
          (Probe.Tips.uses tips ~tip:16));
    Alcotest.test_case "failed tips tracked" `Quick (fun () ->
        let tips = Probe.Tips.create ~n_tips:16 (make_medium ()) in
        Alcotest.(check int) "none" 0 (Probe.Tips.failed_count tips);
        Probe.Tips.fail_tip tips 3;
        Probe.Tips.fail_tip tips 9;
        Alcotest.(check int) "two" 2 (Probe.Tips.failed_count tips);
        Alcotest.(check bool) "tip 3" true (Probe.Tips.tip_failed tips 3);
        Alcotest.(check bool) "tip 4" false (Probe.Tips.tip_failed tips 4));
    Alcotest.test_case "usage counters" `Quick (fun () ->
        let tips = Probe.Tips.create ~n_tips:16 (make_medium ()) in
        Probe.Tips.record_use tips ~tip:2;
        Probe.Tips.record_use tips ~tip:2;
        Alcotest.(check int) "2 uses" 2 (Probe.Tips.uses tips ~tip:2));
  ]

(* {1 Actuator} *)

let actuator_cases =
  [
    Alcotest.test_case "seek to current position is free" `Quick (fun () ->
        let timing = Probe.Timing.create () in
        let act = Probe.Actuator.create timing ~pitch:100e-9 ~field_cols:8 in
        Probe.Actuator.seek act 0;
        Alcotest.(check (float 0.)) "no time" 0. (Probe.Timing.elapsed timing));
    Alcotest.test_case "scan step accrues wear but no settle" `Quick (fun () ->
        let timing = Probe.Timing.create () in
        let act = Probe.Actuator.create timing ~pitch:100e-9 ~field_cols:8 in
        Probe.Actuator.seek act 1;
        Alcotest.(check (float 0.)) "no settle" 0. (Probe.Timing.elapsed timing);
        Alcotest.(check (float 1e-12)) "one pitch" 100e-9 (Probe.Actuator.travel act));
    Alcotest.test_case "random seek pays settle + travel" `Quick (fun () ->
        let timing = Probe.Timing.create () in
        let act = Probe.Actuator.create timing ~pitch:100e-9 ~field_cols:8 in
        Probe.Actuator.seek act 40;
        Alcotest.(check bool) "settle charged" true
          (Probe.Timing.elapsed timing >= (Probe.Timing.default_costs).Probe.Timing.seek_settle));
    Alcotest.test_case "serpentine keeps adjacent offsets adjacent" `Quick
      (fun () ->
        let timing = Probe.Timing.create () in
        let act = Probe.Actuator.create timing ~pitch:100e-9 ~field_cols:4 in
        (* Offsets 3 and 4: end of row 0 and start of row 1; serpentine
           places them in the same column. *)
        let x3, y3 = Probe.Actuator.xy_of_offset act 3 in
        let x4, y4 = Probe.Actuator.xy_of_offset act 4 in
        Alcotest.(check int) "same column" x3 x4;
        Alcotest.(check int) "next row" (y3 + 1) y4);
  ]

(* {1 Timing ledger} *)

let timing_cases =
  [
    Alcotest.test_case "charges accumulate" `Quick (fun () ->
        let t = Probe.Timing.create () in
        Probe.Timing.charge_bits t ~read:10 ~written:5;
        Probe.Timing.charge_ewb t 2;
        let c = Probe.Timing.costs t in
        let expect =
          (15. *. c.Probe.Timing.bit_time) +. (2. *. c.Probe.Timing.ewb_time)
        in
        Alcotest.(check (float 1e-12)) "elapsed" expect (Probe.Timing.elapsed t);
        Alcotest.(check bool) "energy > 0" true (Probe.Timing.energy t > 0.);
        Probe.Timing.reset t;
        Alcotest.(check (float 0.)) "reset" 0. (Probe.Timing.elapsed t));
  ]

(* {1 Pdevice runs} *)

let bools = QCheck.array_of_size (QCheck.Gen.int_range 1 200) QCheck.bool

let write_read_roundtrip =
  QCheck.Test.make ~name:"write_run/read_run roundtrip" ~count:100
    QCheck.(pair bools (int_range 0 200))
    (fun (bits, start) ->
      let p = make_pdev () in
      let start = min start (Probe.Pdevice.size p - Array.length bits) in
      Probe.Pdevice.write_run p ~start bits;
      let got = Probe.Pdevice.read_run p ~start ~len:(Array.length bits) in
      got = bits)

let heat_then_erb =
  QCheck.Test.make ~name:"heat_run pattern detected by erb_run" ~count:50
    bools
    (fun pattern ->
      let p = make_pdev () in
      Probe.Pdevice.heat_run p ~start:0 pattern;
      let got = Probe.Pdevice.erb_run ~cycles:30 p ~start:0 ~len:(Array.length pattern) in
      got = pattern)

let pdevice_cases =
  [
    Alcotest.test_case "failed tip turns its dots to noise" `Quick (fun () ->
        let p = make_pdev ~n_tips:16 () in
        let bits = Array.make 64 true in
        Probe.Pdevice.write_run p ~start:0 bits;
        Probe.Tips.fail_tip (Probe.Pdevice.tips p) 5;
        (* Dots 5, 21, 37, 53 belong to tip 5: reads become random; over
           several trials at least one disagrees. *)
        let diffs = ref 0 in
        for _ = 1 to 20 do
          let got = Probe.Pdevice.read_run p ~start:0 ~len:64 in
          for k = 0 to 3 do
            if not got.((16 * k) + 5) then incr diffs
          done
        done;
        Alcotest.(check bool) "noise observed" true (!diffs > 0));
    Alcotest.test_case "failed tip reports heated on erb (bad-block overlap)"
      `Quick (fun () ->
        let p = make_pdev ~n_tips:16 () in
        Probe.Tips.fail_tip (Probe.Pdevice.tips p) 0;
        let got = Probe.Pdevice.erb_run p ~start:0 ~len:16 in
        Alcotest.(check bool) "dot 0 heated-looking" true got.(0));
    Alcotest.test_case "parallelism: run cost scales with offsets not bits"
      `Quick (fun () ->
        let p = make_pdev ~n_tips:16 () in
        Probe.Pdevice.reset_ledger p;
        Probe.Pdevice.write_run p ~start:0 (Array.make 16 true);
        let one_row = Probe.Pdevice.elapsed p in
        Probe.Pdevice.reset_ledger p;
        Probe.Pdevice.write_run p ~start:0 (Array.make 160 true);
        let ten_rows = Probe.Pdevice.elapsed p in
        Alcotest.(check bool) "10x not 160x" true
          (ten_rows < 12. *. one_row && ten_rows > 8. *. one_row));
    Alcotest.test_case "out-of-range run rejected" `Quick (fun () ->
        let p = make_pdev () in
        Alcotest.check_raises "range" (Invalid_argument "Pdevice: run out of range")
          (fun () -> ignore (Probe.Pdevice.read_run p ~start:0 ~len:(Probe.Pdevice.size p + 1))));
    Alcotest.test_case "energy grows with electrical writes" `Quick (fun () ->
        let p = make_pdev () in
        let e0 = Probe.Pdevice.energy p in
        Probe.Pdevice.heat_run p ~start:0 (Array.make 32 true);
        Alcotest.(check bool) "more energy" true (Probe.Pdevice.energy p > e0));
  ]

(* {1 Sled scheduling} *)

let sched_permutation =
  QCheck.Test.make ~name:"every policy returns a permutation" ~count:200
    QCheck.(pair (small_list (int_range 0 500)) (int_range 0 500))
    (fun (offsets, current) ->
      List.for_all
        (fun policy ->
          List.sort compare (Probe.Sched.order policy ~current offsets)
          = List.sort compare offsets)
        Probe.Sched.all_policies)

let sched_permutation_dups =
  (* A narrow offset range forces duplicates: a policy must keep every
     occurrence, not just every distinct offset. *)
  QCheck.Test.make ~name:"permutation holds with duplicate offsets" ~count:300
    QCheck.(pair (small_list (int_range 0 4)) (int_range 0 4))
    (fun (offsets, current) ->
      List.for_all
        (fun policy ->
          List.sort compare (Probe.Sched.order policy ~current offsets)
          = List.sort compare offsets)
        Probe.Sched.all_policies)

let elevator_wrap =
  (* The elevator is a C-SCAN: everything at or ahead of the sled in
     ascending order, then the wrap — the offsets behind it, ascending. *)
  QCheck.Test.make ~name:"elevator = sorted ahead, then sorted behind"
    ~count:300
    QCheck.(pair (small_list (int_range 0 100)) (int_range 0 100))
    (fun (offsets, current) ->
      let ahead, behind = List.partition (fun o -> o >= current) offsets in
      Probe.Sched.order Probe.Sched.Elevator ~current offsets
      = List.sort compare ahead @ List.sort compare behind)

let sched_cases =
  [
    Alcotest.test_case "elevator sweeps up then wraps" `Quick (fun () ->
        Alcotest.(check (list int)) "order" [ 12; 30; 3; 7 ]
          (Probe.Sched.order Probe.Sched.Elevator ~current:10 [ 3; 30; 12; 7 ]));
    Alcotest.test_case "sstf picks nearest first" `Quick (fun () ->
        Alcotest.(check (list int)) "order" [ 12; 7; 3; 30 ]
          (Probe.Sched.order Probe.Sched.Sstf ~current:10 [ 3; 30; 12; 7 ]));
    Alcotest.test_case "ordered service travels no further than fifo" `Quick
      (fun () ->
        let timing = Probe.Timing.create () in
        let act = Probe.Actuator.create timing ~pitch:100e-9 ~field_cols:32 in
        let rng = Sim.Prng.create 9 in
        let offsets = List.init 64 (fun _ -> Sim.Prng.int rng 1024) in
        let cost p =
          Probe.Sched.travel_cost act ~current:0
            (Probe.Sched.order p ~current:0 offsets)
        in
        Alcotest.(check bool) "elevator <= fifo" true
          (cost Probe.Sched.Elevator <= cost Probe.Sched.Fifo);
        Alcotest.(check bool) "sstf <= fifo" true
          (cost Probe.Sched.Sstf <= cost Probe.Sched.Fifo));
  ]

(* {1 Run dispatch equivalence}

   The per-scan-row bulk dispatch must be invisible: a device whose
   kernels run the fast path and a twin forced onto the scalar fallback
   (by installing an empty-plan fault injector — inert, but its
   presence disables the fast path) must produce the same outputs,
   medium state, timing ledger and tip wear. *)

let twin_pdevs (seed, ops) =
  let make ~forced_scalar =
    let cfg =
      { (Pmedia.Medium.default_config ~rows:32 ~cols:32) with
        Pmedia.Medium.seed }
    in
    let p =
      Probe.Pdevice.create
        ~config:{ Probe.Pdevice.default_config with Probe.Pdevice.n_tips = 16 }
        (Pmedia.Medium.create cfg)
    in
    if forced_scalar then
      Probe.Pdevice.install_fault p
        (Fault.Injector.create (Fault.Plan.make ()));
    (* Same scramble on both devices: writes and a few heats. *)
    List.iter
      (fun (i, v) ->
        if v mod 7 = 0 then
          Probe.Pdevice.heat_run p ~start:i [| true; true; false |]
        else
          Probe.Pdevice.write_run p ~start:i
            [| v land 1 = 0; v land 2 = 0; v land 4 = 0 |])
      ops;
    p
  in
  (make ~forced_scalar:false, make ~forced_scalar:true)

let packed_string m =
  let len = Pmedia.Medium.packed_length m in
  let b = Bytes.create len in
  Pmedia.Medium.blit_packed m ~pos:0 ~dst:b ~dst_off:0 ~len;
  Bytes.unsafe_to_string b

let pdev_state p =
  let m = Probe.Pdevice.medium p in
  let tips = Probe.Pdevice.tips p in
  ( packed_string m,
    Pmedia.Medium.heated_count m,
    Probe.Pdevice.elapsed p,
    Probe.Pdevice.energy p,
    List.init (Probe.Tips.n_tips tips) (fun tip -> Probe.Tips.uses tips ~tip) )

let scramble_arb =
  QCheck.(
    pair (int_range 1 9999)
      (small_list (pair (int_range 0 1000) (int_range 0 99))))

let run_arb =
  QCheck.(pair scramble_arb (pair (int_range 0 1000) (int_range 0 23)))

let dispatch_read_equiv =
  QCheck.Test.make ~name:"bulk vs forced-scalar dispatch: read_run" ~count:100
    run_arb
    (fun (scramble, (start, len)) ->
      let fast, scalar = twin_pdevs scramble in
      let a = Probe.Pdevice.read_run fast ~start ~len in
      let b = Probe.Pdevice.read_run scalar ~start ~len in
      a = b && pdev_state fast = pdev_state scalar)

(* The packed read must be byte- and ledger-identical to reading the
   same run as bools and packing by hand — and on the forced-scalar
   twin it must decline without touching anything. *)
let dispatch_packed_read_equiv =
  QCheck.Test.make ~name:"packed vs bool read_run: bytes and ledger"
    ~count:100 run_arb
    (fun (scramble, (start8, len8)) ->
      let start = 8 * (start8 mod 120) in
      let len = 8 * min len8 ((1024 - start) lsr 3) in
      let fast, scalar = twin_pdevs scramble in
      let dst = Bytes.create (len lsr 3) in
      let taken = Probe.Pdevice.read_run_packed fast ~start ~len ~dst in
      let before = pdev_state scalar in
      let declined =
        not (Probe.Pdevice.read_run_packed scalar ~start ~len ~dst:(Bytes.create (len lsr 3)))
      in
      let untouched = pdev_state scalar = before in
      let bits = Probe.Pdevice.read_run scalar ~start ~len in
      let packed_by_hand =
        String.init (len lsr 3) (fun b ->
            let v = ref 0 in
            for j = 0 to 7 do
              if bits.((8 * b) + j) then v := !v lor (1 lsl (7 - j))
            done;
            Char.chr !v)
      in
      (len = 0 || taken)
      && declined && untouched
      && Bytes.to_string dst = packed_by_hand
      && pdev_state fast = pdev_state scalar)

let dispatch_erb_equiv =
  QCheck.Test.make ~name:"bulk vs forced-scalar dispatch: erb_run" ~count:60
    run_arb
    (fun (scramble, (start, len)) ->
      let fast, scalar = twin_pdevs scramble in
      let a = Probe.Pdevice.erb_run ~cycles:2 fast ~start ~len in
      let b = Probe.Pdevice.erb_run ~cycles:2 scalar ~start ~len in
      a = b && pdev_state fast = pdev_state scalar)

(* The packed write must leave the medium, ledger and wear exactly as
   writing the same bits through the scalar path — including skipping
   heated dots — and decline without touching anything on the
   forced-scalar twin. *)
let dispatch_packed_write_equiv =
  QCheck.Test.make ~name:"packed vs bool write_run: medium and ledger"
    ~count:100 run_arb
    (fun (scramble, (start8, len8)) ->
      let start = 8 * (start8 mod 120) in
      let len = 8 * min len8 ((1024 - start) lsr 3) in
      let fast, scalar = twin_pdevs scramble in
      let src =
        Bytes.init (max 1 (len lsr 3)) (fun i ->
            Char.chr (((i * 37) + 11) land 0xFF))
      in
      let taken = Probe.Pdevice.write_run_packed fast ~start ~len ~src in
      let before = pdev_state scalar in
      let declined =
        not (Probe.Pdevice.write_run_packed scalar ~start ~len ~src)
      in
      let untouched = pdev_state scalar = before in
      let bits =
        Array.init len (fun i ->
            (Char.code (Bytes.get src (i lsr 3)) lsr (7 - (i land 7))) land 1
            = 1)
      in
      if len > 0 then Probe.Pdevice.write_run scalar ~start bits;
      (len = 0 || taken)
      && declined && untouched
      && pdev_state fast = pdev_state scalar)

let dispatch_write_equiv =
  QCheck.Test.make ~name:"bulk vs forced-scalar dispatch: write_run" ~count:100
    run_arb
    (fun (scramble, (start, len)) ->
      let fast, scalar = twin_pdevs scramble in
      let bits = Array.init len (fun i -> (start + i) land 1 = 0) in
      Probe.Pdevice.write_run fast ~start bits;
      Probe.Pdevice.write_run scalar ~start bits;
      pdev_state fast = pdev_state scalar)

let () =
  Alcotest.run "probe"
    [
      ("tips", tips_cases @ List.map qtest [ tips_bijection; tips_striping ]);
      ("actuator", actuator_cases);
      ("timing", timing_cases);
      ("pdevice", pdevice_cases @ List.map qtest [ write_read_roundtrip; heat_then_erb ]);
      ( "run dispatch",
        List.map qtest
          [
            dispatch_read_equiv;
            dispatch_packed_read_equiv;
            dispatch_erb_equiv;
            dispatch_packed_write_equiv;
            dispatch_write_equiv;
          ] );
      ( "sched",
        sched_cases
        @ [
            qtest sched_permutation;
            qtest sched_permutation_dups;
            qtest elevator_wrap;
          ] );
    ]
