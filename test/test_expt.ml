(* The experiment modules: each must produce its series and the series
   must show the paper's shape (who wins, where the cliffs are). *)

let render f =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let smoke =
  (* Every figure/experiment renders non-trivially and mentions its
     anchor content. *)
  List.map
    (fun (name, f, marker) ->
      Alcotest.test_case name `Slow (fun () ->
          let out = render f in
          Alcotest.(check bool) "non-trivial output" true (String.length out > 200);
          Alcotest.(check bool)
            (Printf.sprintf "mentions %S" marker)
            true (contains out marker)))
    [
      ("fig1", Expt.Figures.fig1, "peak");
      ("fig2", Expt.Figures.fig2, "ewb");
      ("fig3", Expt.Figures.fig3, "UH");
      ("fig7", Expt.Figures.fig7, "500");
      ("fig8", Expt.Figures.fig8, "peak height");
      ("fig9", Expt.Figures.fig9, "41.7");
      ("ops", Expt.Ops.print, "erb");
      ("heat", Expt.Heatcost.print, "overhead");
      ("security", Expt.Security_matrix.print, "DETECTED");
      ("worm", Expt.Worm_compare.print, "SERO");
      ("archive", Expt.Archive.print, "Fossilised");
      ("thermal", Expt.Thermal_study.print, "Manchester");
      ("coding", Expt.Coding.print, "Rivest");
      ("aging", Expt.Aging.print, "end of life");
      ("erb", Expt.Erb_study.print, "adaptive");
      ("media", Expt.Reliability.print, "tip sparing");
      ("queue", Expt.Queue_study.print, "contention");
    ]

let ops_shape =
  [
    Alcotest.test_case "erb at least 5x mrb (paper, Section 3)" `Quick
      (fun () ->
        let rows = Expt.Ops.bit_ops () in
        let find op = List.find (fun r -> r.Expt.Ops.op = op) rows in
        Alcotest.(check bool) "erb >= 5x" true ((find "erb (1 cycle)").Expt.Ops.vs_mrb >= 5.);
        Alcotest.(check bool) "ewb > mwb" true
          ((find "ewb").Expt.Ops.sim_latency_s > (find "mwb").Expt.Ops.sim_latency_s));
    Alcotest.test_case "hash read dominates sector ops" `Quick (fun () ->
        let rows = Expt.Ops.sector_ops () in
        let find op = List.find (fun r -> r.Expt.Ops.op = op) rows in
        Alcotest.(check bool) "ers slowest read" true
          ((find "ers (read hash blk)").Expt.Ops.sim_latency_s
          > 5. *. (find "mrs (read sector)").Expt.Ops.sim_latency_s));
  ]

let heat_shape =
  [
    Alcotest.test_case "overhead halves as N grows; heat cost grows" `Quick
      (fun () ->
        let rows = Expt.Heatcost.sweep ~ns:[ 2; 3; 4; 5 ] () in
        let rec pairwise = function
          | a :: (b :: _ as rest) ->
              Alcotest.(check bool) "overhead falls" true
                (b.Expt.Heatcost.space_overhead < a.Expt.Heatcost.space_overhead);
              Alcotest.(check bool) "heat latency grows" true
                (b.Expt.Heatcost.heat_latency_s > a.Expt.Heatcost.heat_latency_s);
              pairwise rest
          | _ -> ()
        in
        pairwise rows);
  ]

let lfs_shape =
  [
    Alcotest.test_case
      "clustering eliminates relocation copies (Section 4.1)" `Slow
      (fun () ->
        let c = Expt.Lfs_study.run_point ~clustering:true ~snapshots:4 () in
        let n = Expt.Lfs_study.run_point ~clustering:false ~snapshots:4 () in
        Alcotest.(check int) "clustered: no copies" 0 c.Expt.Lfs_study.relocated_blocks;
        Alcotest.(check bool) "naive: many copies" true
          (n.Expt.Lfs_study.relocated_blocks > 50);
        Alcotest.(check bool) "naive writes more blocks" true
          (n.Expt.Lfs_study.fs_block_writes > c.Expt.Lfs_study.fs_block_writes);
        Alcotest.(check int) "clustered freezes no foreign blocks" 0
          c.Expt.Lfs_study.collateral_frozen;
        Alcotest.(check bool)
          "clustered: only boundary segments partially heated" true
          (c.Expt.Lfs_study.partially_heated <= 4));
    Alcotest.test_case
      "in-place heating without clustering breaks bimodality (Section 4.1)"
      `Slow (fun () ->
        let q =
          Expt.Lfs_study.run_point ~strategy:Lfs.Heat.Never_relocate
            ~clustering:false ~snapshots:4 ()
        in
        Alcotest.(check bool) "foreign live blocks frozen" true
          (q.Expt.Lfs_study.collateral_frozen > 0);
        Alcotest.(check bool) "live updates blocked by frozen pages" true
          (q.Expt.Lfs_study.updates_blocked > 0);
        Alcotest.(check int) "no copies were paid" 0
          q.Expt.Lfs_study.relocated_blocks);
  ]

let archive_shape =
  [
    Alcotest.test_case "venti rows verify and restore" `Quick (fun () ->
        List.iter
          (fun eager ->
            let r = Expt.Archive.venti_run ~eager_heat:eager in
            Alcotest.(check bool) "restore" true r.Expt.Archive.restore_ok;
            Alcotest.(check bool) "verify" true r.Expt.Archive.verify_ok)
          [ true; false ]);
    Alcotest.test_case "eager heats more lines than lazy" `Quick (fun () ->
        let eager = Expt.Archive.venti_run ~eager_heat:true in
        let lazy_ = Expt.Archive.venti_run ~eager_heat:false in
        Alcotest.(check bool) "more lines" true
          (eager.Expt.Archive.lines_heated > lazy_.Expt.Archive.lines_heated));
    Alcotest.test_case "fossil scales: more inserts, more sealed nodes"
      `Quick (fun () ->
        let small = Expt.Archive.fossil_run ~inserts:50 in
        let large = Expt.Archive.fossil_run ~inserts:600 in
        Alcotest.(check bool) "all found (small)" true small.Expt.Archive.found_all;
        Alcotest.(check bool) "all found (large)" true large.Expt.Archive.found_all;
        Alcotest.(check bool) "seals grow" true
          (large.Expt.Archive.sealed > small.Expt.Archive.sealed);
        Alcotest.(check bool) "sealed verify" true large.Expt.Archive.sealed_verify_ok);
  ]

let thermal_shape =
  [
    Alcotest.test_case "nominal profile: target dies, neighbour lives" `Quick
      (fun () ->
        let rows = Expt.Thermal_study.damage_sweep () in
        (* At 1650 C, lambda = pitch/2 on Co/Pt the target is destroyed
           with negligible neighbour risk. *)
        let nominal =
          List.find
            (fun r ->
              r.Expt.Thermal_study.peak_c = 1650.
              && r.Expt.Thermal_study.decay_over_pitch = 0.5
              && contains r.Expt.Thermal_study.material "Fig. 7")
            rows
        in
        Alcotest.(check bool) "destroyed" true nominal.Expt.Thermal_study.target_destroyed;
        Alcotest.(check bool) "neighbour safe" true
          (nominal.Expt.Thermal_study.neighbour_damage_p < 1e-6));
    Alcotest.test_case "overdriven pulse on poor substrate endangers" `Quick
      (fun () ->
        let rows = Expt.Thermal_study.damage_sweep () in
        let hostile =
          List.find
            (fun r ->
              r.Expt.Thermal_study.peak_c = 4000.
              && r.Expt.Thermal_study.decay_over_pitch = 8.
              && not (contains r.Expt.Thermal_study.material "Fig. 7"))
            rows
        in
        Alcotest.(check bool) "neighbour at risk" true
          (hostile.Expt.Thermal_study.neighbour_damage_p > 1e-3));
    Alcotest.test_case
      "spreading bounds runs, but not surviving-dot risk (finding)" `Quick
      (fun () ->
        match Expt.Thermal_study.spreading () with
        | [ manchester; dense ] ->
            Alcotest.(check bool) "manchester max run <= 2" true
              (manchester.Expt.Thermal_study.max_run <= 2);
            Alcotest.(check bool) "dense runs longer" true
              (dense.Expt.Thermal_study.max_run > 2);
            (* The reproduction finding: under independent per-pulse
               damage, the worst SURVIVING dot is equally exposed under
               both encodings (both contain an H-U-H), and Manchester's
               2x pulse count costs MORE total collateral.  The paper's
               "spreading is good for reliability" claim protects only
               already-destroyed dots. *)
            Alcotest.(check bool) "worst-dot risk no better" true
              (manchester.Expt.Thermal_study.worst_dot_risk
              >= dense.Expt.Thermal_study.worst_dot_risk *. 0.9);
            Alcotest.(check bool) "manchester pays more total collateral" true
              (manchester.Expt.Thermal_study.expected_collateral
              >= dense.Expt.Thermal_study.expected_collateral)
        | _ -> Alcotest.fail "expected two rows");
  ]

let erb_shape =
  [
    Alcotest.test_case "measured miss rate tracks 4^-k" `Quick (fun () ->
        List.iter
          (fun r ->
            Alcotest.(check bool)
              (Printf.sprintf "cycles=%d" r.Expt.Erb_study.cycles)
              true
              (Float.abs (r.Expt.Erb_study.measured_miss -. r.Expt.Erb_study.theory_miss)
              < 0.02 +. (0.3 *. r.Expt.Erb_study.theory_miss)))
          (Expt.Erb_study.miss_sweep ~trials:5000 ()));
    Alcotest.test_case "adaptive read: no false alarms, bounded cost" `Quick
      (fun () ->
        match Expt.Erb_study.area_comparison ~areas:20 () with
        | [ naive1; naive8; adaptive ] ->
            Alcotest.(check bool) "1-cycle read false-alarms a lot" true
              (naive1.Expt.Erb_study.false_blank_areas > 10);
            Alcotest.(check int) "adaptive never false-alarms" 0
              adaptive.Expt.Erb_study.false_blank_areas;
            Alcotest.(check bool) "adaptive cheaper than 2x the 8-cycle read" true
              (adaptive.Expt.Erb_study.mean_bitops
              < 2. *. naive8.Expt.Erb_study.mean_bitops)
        | _ -> Alcotest.fail "expected three strategies");
  ]

let reliability_shape =
  [
    Alcotest.test_case "defect cliff sits between 0.2% and 3.2%" `Quick
      (fun () ->
        let rows = Expt.Reliability.defect_sweep () in
        let at rate =
          List.find (fun r -> r.Expt.Reliability.defect_rate = rate) rows
        in
        Alcotest.(check int) "pristine medium fully readable"
          (at 0.).Expt.Reliability.sectors (at 0.).Expt.Reliability.readable;
        Alcotest.(check bool) "0.2% mostly readable, with corrections" true
          (let r = at 0.002 in
           r.Expt.Reliability.readable > (r.Expt.Reliability.sectors * 9 / 10)
           && r.Expt.Reliability.mean_corrected > 0.);
        Alcotest.(check bool) "3.2% mostly lost" true
          (let r = at 0.032 in
           r.Expt.Reliability.readable < r.Expt.Reliability.sectors / 2));
    Alcotest.test_case "one dead tip defeats the sector code" `Quick
      (fun () ->
        let rows = Expt.Reliability.tip_sweep ~max_failed:1 () in
        match rows with
        | [ healthy; one ] ->
            Alcotest.(check int) "all readable with no failures"
              healthy.Expt.Reliability.sectors healthy.Expt.Reliability.readable;
            Alcotest.(check bool) "mostly unreadable with one failure" true
              (one.Expt.Reliability.readable < one.Expt.Reliability.sectors / 4);
            Alcotest.(check int) "never misclassified as heated" 0
              one.Expt.Reliability.classified_heated
        | _ -> Alcotest.fail "expected two rows");
  ]

let aging_shape =
  [
    Alcotest.test_case "device life: monotone RO growth to end of life" `Slow
      (fun () ->
        let life = Expt.Aging.run ~n_blocks:1024 () in
        Alcotest.(check bool) "reached end of life" true
          (life.Expt.Aging.end_of_life_at <> None);
        Alcotest.(check bool) "audits intact" true life.Expt.Aging.all_audits_intact;
        Alcotest.(check bool) "records written" true
          (life.Expt.Aging.records_written > 100);
        let rec monotone = function
          | a :: (b :: _ as rest) ->
              a.Expt.Aging.ro_fraction <= b.Expt.Aging.ro_fraction +. 1e-9
              && monotone rest
          | _ -> true
        in
        Alcotest.(check bool) "RO fraction monotone" true
          (monotone life.Expt.Aging.samples);
        let final = List.nth life.Expt.Aging.samples
            (List.length life.Expt.Aging.samples - 1) in
        Alcotest.(check bool) "most of the device is RO at death" true
          (final.Expt.Aging.ro_fraction > 0.5));
    Alcotest.test_case "clustering keeps the RO area less fragmented" `Slow
      (fun () ->
        let frag life =
          let final = List.nth life.Expt.Aging.samples
              (List.length life.Expt.Aging.samples - 1) in
          float_of_int final.Expt.Aging.heated_runs
          /. float_of_int (max 1 final.Expt.Aging.heated_lines)
        in
        let c = Expt.Aging.run ~n_blocks:1024 ~clustering:true () in
        let n = Expt.Aging.run ~n_blocks:1024 ~clustering:false () in
        Alcotest.(check bool) "fewer runs per heated line" true
          (frag c <= frag n +. 1e-9));
  ]

let queue_shape =
  [
    Alcotest.test_case "reordering beats fifo once the queue is deep" `Slow
      (fun () ->
        let cell policy =
          Expt.Queue_study.run_cell ~ops:120 ~policy ~depth:16
            ~scrub_period:None ()
        in
        let fifo = cell Probe.Sched.Fifo
        and sstf = cell Probe.Sched.Sstf
        and elev = cell Probe.Sched.Elevator in
        Alcotest.(check bool) "sstf < fifo" true
          (sstf.Expt.Queue_study.mean_service_ms
          < fifo.Expt.Queue_study.mean_service_ms);
        Alcotest.(check bool) "elevator < fifo" true
          (elev.Expt.Queue_study.mean_service_ms
          < fifo.Expt.Queue_study.mean_service_ms));
    Alcotest.test_case "background scrub inflates depth-1 latency" `Slow
      (fun () ->
        let cell scrub_period =
          Expt.Queue_study.run_cell ~ops:120 ~policy:Probe.Sched.Elevator
            ~depth:1 ~scrub_period ()
        in
        let quiet = cell None and busy = cell (Some 0.04) in
        Alcotest.(check bool) "scrubber got work done" true
          (busy.Expt.Queue_study.bg_lines > 0);
        Alcotest.(check bool) "p95 rises under contention" true
          (busy.Expt.Queue_study.p95_ms > quiet.Expt.Queue_study.p95_ms));
  ]

let () =
  Alcotest.run "expt"
    [
      ("smoke", smoke);
      ("erb-shape", erb_shape);
      ("reliability-shape", reliability_shape);
      ("aging-shape", aging_shape);
      ("ops-shape", ops_shape);
      ("heat-shape", heat_shape);
      ("queue-shape", queue_shape);
      ("lfs-shape", lfs_shape);
      ("archive-shape", archive_shape);
      ("thermal-shape", thermal_shape);
    ]
