(* The asynchronous request pipeline: service order conforms to the
   scheduling policy, coalescing is invisible to the caller, the
   synchronous facade is bit-identical to direct device calls, and
   foreground traffic strictly precedes background. *)

let qtest = QCheck_alcotest.to_alcotest

let mk_dev () =
  Sero.Device.create (Sero.Device.default_config ~n_blocks:512 ~line_exp:3 ())

let data_pbas dev =
  let lay = Sero.Device.layout dev in
  List.init (Sero.Layout.n_lines lay) Fun.id
  |> List.concat_map (Sero.Layout.data_blocks_of_line lay)
  |> Array.of_list

let payload_of pba =
  String.init 256 (fun i -> Char.chr ((pba + (11 * i)) land 0xff))

let prefill dev =
  Array.iter
    (fun pba ->
      match Sero.Device.write_block dev ~pba (payload_of pba) with
      | Ok () -> ()
      | Error _ -> assert false)
    (data_pbas dev)

let mk_queue ?policy ?coalesce dev =
  Sero.Queue.create ?policy ?coalesce (Sim.Des.create ()) dev

let media_equal a b =
  let ma = Probe.Pdevice.medium (Sero.Device.pdevice a)
  and mb = Probe.Pdevice.medium (Sero.Device.pdevice b) in
  let n = Pmedia.Medium.size ma in
  n = Pmedia.Medium.size mb
  &&
  let rec go i =
    i >= n || (Pmedia.Medium.get ma i = Pmedia.Medium.get mb i && go (i + 1))
  in
  go 0

(* {1 Service order conforms to the policy}

   Submit a settled batch (no arrivals during service), run the clock
   out, and the served-offset log must equal one [Sched.order] call
   over the batch — dispatching head-by-head from the moving sled
   position reproduces the full-batch order for every policy. *)

let conformance_cases =
  List.map
    (fun policy ->
      let name =
        Format.asprintf "served offsets follow %a" Probe.Sched.pp_policy policy
      in
      Alcotest.test_case name `Quick (fun () ->
          let dev = mk_dev () in
          prefill dev;
          let pbas = data_pbas dev in
          let rng = Sim.Prng.create 41 in
          let picks =
            List.init 24 (fun _ -> pbas.(Sim.Prng.int rng (Array.length pbas)))
          in
          let q = mk_queue ~policy ~coalesce:false dev in
          List.iter
            (fun pba ->
              Sero.Queue.submit_read q ~pba (fun r ->
                  Alcotest.(check bool) "read ok" true (Result.is_ok r)))
            picks;
          Sim.Des.run (Sero.Queue.des q);
          let offset_of pba =
            snd
              (Probe.Tips.locate
                 (Probe.Pdevice.tips (Sero.Device.pdevice dev))
                 (Sero.Layout.block_first_dot (Sero.Device.layout dev) pba))
          in
          let expected =
            Probe.Sched.order policy ~current:0 (List.map offset_of picks)
          in
          Alcotest.(check (list int)) "service order" expected
            (Sero.Queue.served_offsets q)))
    Probe.Sched.all_policies

(* {1 Priority} *)

let priority_cases =
  [
    Alcotest.test_case "foreground overtakes queued background" `Quick
      (fun () ->
        let dev = mk_dev () in
        prefill dev;
        let pbas = data_pbas dev in
        let q = mk_queue ~coalesce:false dev in
        let log = ref [] in
        (* Background submitted FIRST; the foreground request must still
           be served first — only a request already on the sled wins. *)
        Sero.Queue.submit_read q ~prio:Sero.Queue.Background ~pba:pbas.(40)
          (fun _ -> log := "bg" :: !log);
        Sero.Queue.submit_read q ~prio:Sero.Queue.Foreground ~pba:pbas.(3)
          (fun _ -> log := "fg" :: !log);
        Sim.Des.run (Sero.Queue.des q);
        Alcotest.(check (list string)) "fg first" [ "fg"; "bg" ] (List.rev !log);
        Alcotest.(check int) "one fg done" 1
          (Sero.Queue.completed q Sero.Queue.Foreground);
        Alcotest.(check int) "one bg done" 1
          (Sero.Queue.completed q Sero.Queue.Background));
    Alcotest.test_case "background fills idle time only" `Quick (fun () ->
        let dev = mk_dev () in
        prefill dev;
        let pbas = data_pbas dev in
        let q = mk_queue dev in
        let order = ref [] in
        for i = 0 to 5 do
          Sero.Queue.submit_read q ~prio:Sero.Queue.Foreground ~pba:pbas.(i)
            (fun _ -> order := `Fg :: !order)
        done;
        Sero.Queue.submit_read q ~prio:Sero.Queue.Background ~pba:pbas.(60)
          (fun _ -> order := `Bg :: !order);
        Sim.Des.run (Sero.Queue.des q);
        (* All six foreground completions precede the background one. *)
        Alcotest.(check bool) "bg last" true (List.hd !order = `Bg);
        Alcotest.(check int) "all fg before" 6
          (List.length (List.filter (( = ) `Fg) (List.tl !order))));
  ]

(* {1 Coalescing} *)

let coalescing_cases =
  [
    Alcotest.test_case "bulk spans are invisible to the caller" `Quick
      (fun () ->
        (* Same consecutive-read batch through a coalescing queue and a
           scalar one on twin devices: same results, same device
           counters and ledger; only the span counter differs. *)
        let run coalesce =
          let dev = mk_dev () in
          prefill dev;
          let pbas = data_pbas dev in
          let q = mk_queue ~coalesce dev in
          let results = ref [] in
          (* Two runs of consecutive PBAs (a line's data blocks are
             consecutive) plus a stray, submitted interleaved. *)
          let batch =
            [ pbas.(8); pbas.(9); pbas.(10); pbas.(11); pbas.(200);
              pbas.(12); pbas.(13) ]
          in
          List.iter
            (fun pba ->
              Sero.Queue.submit_read q ~pba (fun r ->
                  results := (pba, r) :: !results))
            batch;
          Sim.Des.run (Sero.Queue.des q);
          (dev, q, List.rev !results)
        in
        let dev_c, q_c, res_c = run true in
        let dev_s, q_s, res_s = run false in
        Alcotest.(check bool) "spans formed" true
          (Sero.Queue.coalesced_requests q_c > 0);
        Alcotest.(check int) "scalar path never coalesces" 0
          (Sero.Queue.coalesced_requests q_s);
        List.iter2
          (fun (pba, r) (pba', r') ->
            Alcotest.(check int) "same pba" pba pba';
            match (r, r') with
            | Ok a, Ok b ->
                Alcotest.(check string) "same payload" a b;
                (* The device pads the payload out to the sector size. *)
                Alcotest.(check string) "honest payload" (payload_of pba)
                  (String.sub a 0 (String.length (payload_of pba)))
            | _ -> Alcotest.fail "read failed")
          res_c res_s;
        Alcotest.(check bool) "same device stats" true
          (Sero.Device.stats dev_c = Sero.Device.stats dev_s);
        Alcotest.(check bool) "same media" true (media_equal dev_c dev_s));
    Alcotest.test_case "span respects max_span" `Quick (fun () ->
        let dev = mk_dev () in
        prefill dev;
        let pbas = data_pbas dev in
        let q =
          Sero.Queue.create ~coalesce:true ~max_span:2 (Sim.Des.create ()) dev
        in
        for i = 0 to 5 do
          Sero.Queue.submit_read q ~pba:pbas.(i) (fun _ -> ())
        done;
        Sim.Des.run (Sero.Queue.des q);
        (* Six consecutive reads, spans of at most 2: at most one
           absorption per span. *)
        Alcotest.(check int) "three absorptions" 3
          (Sero.Queue.coalesced_requests q));
  ]

(* {1 Synchronous facade = direct device}

   Random op soup (reads, writes, heats — including ones the device
   refuses) applied through the facade on one device and directly on a
   twin: every result, both media and the whole stats record must
   match. *)

let facade_equiv =
  QCheck.Test.make ~name:"sync facade is bit-identical to Device calls"
    ~count:30
    QCheck.(small_list (pair (int_range 0 2) (int_range 0 1000)))
    (fun ops ->
      let dev_q = mk_dev () and dev_d = mk_dev () in
      prefill dev_q;
      prefill dev_d;
      let pbas = data_pbas dev_q in
      let n_lines = Sero.Layout.n_lines (Sero.Device.layout dev_q) in
      let q = mk_queue dev_q in
      let same =
        List.for_all
          (fun (what, n) ->
            match what with
            | 0 ->
                let pba = pbas.(n mod Array.length pbas) in
                Sero.Queue.read_block q ~pba
                = Sero.Device.read_block dev_d ~pba
            | 1 ->
                let pba = pbas.(n mod Array.length pbas) in
                let payload = payload_of (n * 3) in
                Sero.Queue.write_block q ~pba payload
                = Sero.Device.write_block dev_d ~pba payload
            | _ ->
                let line = n mod n_lines in
                Sero.Queue.heat_line q ~line ~timestamp:1. ()
                = Sero.Device.heat_line dev_d ~line ~timestamp:1. ())
          ops
      in
      same
      && Sero.Device.stats dev_q = Sero.Device.stats dev_d
      && media_equal dev_q dev_d)

(* {1 Background scrubbing through the queue} *)

let scrub_cases =
  [
    Alcotest.test_case "scheduled scrub sweeps lines as bg traffic" `Quick
      (fun () ->
        let dev = mk_dev () in
        prefill dev;
        let pbas = data_pbas dev in
        let q = mk_queue dev in
        let des = Sero.Queue.des q in
        let done_fg = ref 0 in
        (* A slow trickle of foreground reads keeps the clock moving. *)
        let rng = Sim.Prng.create 17 in
        let rec spawn () =
          if !done_fg < 40 then
            Sero.Queue.submit_read q
              ~pba:pbas.(Sim.Prng.int rng (Array.length pbas))
              (fun _ ->
                incr done_fg;
                Sim.Des.schedule des ~delay:0.01 (fun _ -> spawn ()))
        in
        spawn ();
        let prog =
          Sero.Queue.schedule_scrub q ~period:0.02 ~stop:(fun () ->
              !done_fg >= 40)
        in
        Sim.Des.run des;
        let report = Sero.Scrub.report_of_progress prog in
        Alcotest.(check bool) "lines swept" true
          (report.Sero.Scrub.lines_swept > 0);
        Alcotest.(check int) "sweeps completed as background"
          report.Sero.Scrub.lines_swept
          (Sero.Queue.completed q Sero.Queue.Background);
        Alcotest.(check int) "all foreground done" 40 !done_fg);
  ]

(* {1 The LFS rides the queue transparently} *)

let fs_cases =
  [
    Alcotest.test_case "fs over the queue equals fs over the device" `Quick
      (fun () ->
        let story fs =
          let w path data =
            (match Lfs.Fs.create fs ~heat_group:0 path with
            | Ok () -> ()
            | Error e -> Alcotest.fail e);
            match Lfs.Fs.write_file fs path ~offset:0 data with
            | Ok () -> ()
            | Error e -> Alcotest.fail e
          in
          w "/ledger" (String.concat "," (List.init 300 string_of_int));
          w "/audit" "tamper-evident";
          (match Lfs.Fs.heat fs "/ledger" with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e);
          Lfs.Fs.sync fs;
          match (Lfs.Fs.read_file fs "/ledger", Lfs.Fs.read_file fs "/audit") with
          | Ok a, Ok b -> (a, b)
          | _ -> Alcotest.fail "read back failed"
        in
        let dev_q = mk_dev () and dev_d = mk_dev () in
        let fs_q = Lfs.Fs.format dev_q and fs_d = Lfs.Fs.format dev_d in
        let q = mk_queue dev_q in
        Lfs.Fs.attach_queue fs_q q;
        let out_q = story fs_q and out_d = story fs_d in
        Sero.Queue.drain q;
        Alcotest.(check (pair string string)) "same file contents" out_d out_q;
        Alcotest.(check bool) "same media" true (media_equal dev_q dev_d);
        Alcotest.(check bool) "same stats" true
          (Sero.Device.stats dev_q = Sero.Device.stats dev_d);
        Alcotest.(check bool) "fs traffic went through the queue" true
          (Sero.Queue.completed q Sero.Queue.Foreground > 0));
    Alcotest.test_case "attach_queue rejects a foreign device" `Quick
      (fun () ->
        let dev_a = mk_dev () and dev_b = mk_dev () in
        let fs = Lfs.Fs.format dev_a in
        let q = mk_queue dev_b in
        Alcotest.check_raises "foreign queue"
          (Lfs.State.Fs_error "attach_queue: queue serves a different device")
          (fun () -> Lfs.Fs.attach_queue fs q));
  ]

(* {1 Measurement sanity} *)

let measurement_cases =
  [
    Alcotest.test_case "latency >= wait, clock advances, energy flows" `Quick
      (fun () ->
        let dev = mk_dev () in
        prefill dev;
        let pbas = data_pbas dev in
        let q = mk_queue dev in
        for i = 0 to 15 do
          Sero.Queue.submit_read q ~pba:pbas.(i * 7) (fun _ -> ())
        done;
        Sim.Des.run (Sero.Queue.des q);
        let fg = Sero.Queue.Foreground in
        Alcotest.(check int) "all done" 16 (Sero.Queue.completed q fg);
        Alcotest.(check bool) "clock advanced" true
          (Sero.Queue.last_completion q fg > 0.);
        Alcotest.(check bool) "latency dominates wait" true
          (Sim.Stats.mean (Sero.Queue.latency q fg)
          >= Sim.Stats.mean (Sero.Queue.wait q fg));
        Alcotest.(check bool) "service time measured" true
          (Sim.Stats.mean (Sero.Queue.service q) > 0.);
        Alcotest.(check bool) "energy attributed" true
          (Sero.Queue.energy_spent q fg > 0.);
        Alcotest.(check int) "depth histogram sampled every submit" 16
          (Sim.Stats.Histogram.total (Sero.Queue.depth_histogram q)));
  ]

let () =
  Alcotest.run "queue"
    [
      ("conformance", conformance_cases);
      ("priority", priority_cases);
      ("coalescing", coalescing_cases);
      ("facade", [ qtest facade_equiv ]);
      ("scrub", scrub_cases);
      ("fs", fs_cases);
      ("measurement", measurement_cases);
    ]
