(* The Section 5 security analysis, attack by attack. *)

let outcome_class = function
  | Security.Attacks.Refused _ -> `Refused
  | Security.Attacks.Ineffective _ -> `Ineffective
  | Security.Attacks.Detected _ -> `Detected
  | Security.Attacks.Undetected _ -> `Undetected

let class_name = function
  | `Refused -> "refused"
  | `Ineffective -> "ineffective"
  | `Detected -> "detected"
  | `Undetected -> "undetected"

let per_attack =
  List.map
    (fun a ->
      Alcotest.test_case (Security.Attacks.label a) `Quick (fun () ->
          let outcome = Security.Attacks.run a in
          Alcotest.(check string)
            (Security.Attacks.paper_ref a)
            (class_name (Security.Attacks.expected a))
            (class_name (outcome_class outcome))))
    Security.Attacks.all

let matrix_cases =
  [
    Alcotest.test_case "full matrix matches the paper" `Quick (fun () ->
        Alcotest.(check bool) "matches" true
          (Security.Attacks.matrix_matches_paper (Security.Attacks.matrix ())));
    Alcotest.test_case "matrix is deterministic for a fixed seed" `Quick
      (fun () ->
        let c1 = List.map (fun (_, o) -> outcome_class o) (Security.Attacks.matrix ~seed:5 ()) in
        let c2 = List.map (fun (_, o) -> outcome_class o) (Security.Attacks.matrix ~seed:5 ()) in
        Alcotest.(check bool) "same" true (c1 = c2));
    Alcotest.test_case "matrix robust across seeds" `Quick (fun () ->
        List.iter
          (fun seed ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d" seed)
              true
              (Security.Attacks.matrix_matches_paper (Security.Attacks.matrix ~seed ())))
          [ 1; 2; 3 ]);
  ]

let splice_cases =
  [
    Alcotest.test_case "strict addressing defeats the splice" `Quick (fun () ->
        match Security.Attacks.run_splice ~strict:true () with
        | Security.Attacks.Detected _ -> ()
        | o -> Alcotest.failf "%a" Security.Attacks.pp_outcome o);
    Alcotest.test_case "floating hashes fall to the splice (ablation)" `Quick
      (fun () ->
        match Security.Attacks.run_splice ~strict:false () with
        | Security.Attacks.Undetected _ -> ()
        | o -> Alcotest.failf "%a" Security.Attacks.pp_outcome o);
  ]

let threat_cases =
  [
    Alcotest.test_case "attacker model covers all four capabilities" `Quick
      (fun () ->
        Alcotest.(check int) "4" 4 (List.length Security.Threat.attacker_capabilities));
    Alcotest.test_case "every attack has a paper reference" `Quick (fun () ->
        List.iter
          (fun a ->
            Alcotest.(check bool)
              (Security.Attacks.label a)
              true
              (String.length (Security.Attacks.paper_ref a) > 0))
          Security.Attacks.all);
  ]

(* {1 Insider campaigns (Security.Campaign)} *)

module C = Security.Campaign

(* Small cells keep these quick; 2 sites is enough to exercise the
   fan-out, merge and bookkeeping paths of every attack class. *)
let campaign_run ?(sites = 2) ?(defender = C.reference_defender) attack =
  C.run ~sites ~attack ~adversary:C.default_adversary ~defender ()

let campaign_cases =
  [
    Alcotest.test_case "attack names round-trip" `Quick (fun () ->
        List.iter
          (fun a ->
            Alcotest.(check bool) (C.attack_name a) true
              (C.attack_of_string (C.attack_name a) = Some a))
          C.all_attacks;
        Alcotest.(check bool) "unknown rejected" true
          (C.attack_of_string "phlogiston" = None));
    Alcotest.test_case "reference budget detects every class" `Slow (fun () ->
        List.iter
          (fun attack ->
            let r = campaign_run attack in
            let name = C.attack_name attack in
            Alcotest.(check bool) (name ^ " landed") true (r.C.r_landed > 0);
            Alcotest.(check int) (name ^ " undetected") 0 r.C.r_undetected;
            Alcotest.(check int)
              (name ^ " latency samples")
              r.C.r_detected
              (Sim.Stats.count r.C.r_det_latency_ms))
          C.all_attacks);
    Alcotest.test_case "starved budget leaks tampers" `Slow (fun () ->
        let r = campaign_run ~defender:C.starved_defender C.Selective_tamper in
        Alcotest.(check bool) "landed" true (r.C.r_landed > 0);
        Alcotest.(check int) "all undetected" r.C.r_landed r.C.r_undetected;
        Alcotest.(check int) "no audit frames" 0 r.C.r_audit_frames);
    Alcotest.test_case "wear ramp burns spares" `Slow (fun () ->
        let r = campaign_run C.Spare_exhaustion in
        Alcotest.(check bool) "spares burned" true (r.C.r_spares_burned > 0));
    Alcotest.test_case "sampled planner defeats the scrubber race" `Slow
      (fun () ->
        let reference = campaign_run C.Scrubber_race in
        Alcotest.(check int) "no wins vs sampled" 0 reference.C.r_race_wins;
        let starved =
          campaign_run ~defender:C.starved_defender C.Scrubber_race
        in
        Alcotest.(check int)
          "every race won vs starved sequential" starved.C.r_races
          starved.C.r_race_wins);
    Alcotest.test_case "campaign is byte-identical for any jobs" `Slow
      (fun () ->
        let show r = Format.asprintf "%a" C.pp_result r in
        List.iter
          (fun attack ->
            let runs =
              List.map
                (fun jobs ->
                  Sim.Pool.set_jobs jobs;
                  show (campaign_run ~sites:3 attack))
                [ 1; 4 ]
            in
            match runs with
            | [ a; b ] -> Alcotest.(check string) (C.attack_name attack) a b
            | _ -> assert false)
          [ C.Selective_tamper; C.Mirror_split ]);
    Alcotest.test_case "merge sums fleets" `Slow (fun () ->
        let a = campaign_run C.Selective_tamper in
        let b = campaign_run C.Carcass_replay in
        let m = C.merge [ a; b ] in
        Alcotest.(check int) "sites" (a.C.r_sites + b.C.r_sites) m.C.r_sites;
        Alcotest.(check int) "landed" (a.C.r_landed + b.C.r_landed) m.C.r_landed;
        Alcotest.(check int)
          "spend"
          (C.audit_spend a + C.audit_spend b)
          (C.audit_spend m);
        Alcotest.(check int)
          "latency samples"
          (Sim.Stats.count a.C.r_det_latency_ms
          + Sim.Stats.count b.C.r_det_latency_ms)
          (Sim.Stats.count m.C.r_det_latency_ms));
  ]

let () =
  Alcotest.run "security"
    [
      ("per-attack", per_attack);
      ("matrix", matrix_cases);
      ("splice-ablation", splice_cases);
      ("threat-model", threat_cases);
      ("campaign", campaign_cases);
    ]
