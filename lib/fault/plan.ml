type tip_death = { tip : int; after_ops : int }

type t = {
  seed : int;
  read_ber : float;
  stuck_rate : float;
  tip_deaths : tip_death list;
  weak_ewb_p : float;
  power_cut_after_ops : int option;
  power_cut_after_ewb : int option;
}

let none =
  {
    seed = 0;
    read_ber = 0.;
    stuck_rate = 0.;
    tip_deaths = [];
    weak_ewb_p = 0.;
    power_cut_after_ops = None;
    power_cut_after_ewb = None;
  }

let check_p name p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.Plan.make: %s must be in [0, 1]" name)

let make ?(seed = 0) ?(read_ber = 0.) ?(stuck_rate = 0.) ?(tip_deaths = [])
    ?(weak_ewb_p = 0.) ?power_cut_after_ops ?power_cut_after_ewb () =
  check_p "read_ber" read_ber;
  check_p "stuck_rate" stuck_rate;
  check_p "weak_ewb_p" weak_ewb_p;
  List.iter
    (fun d ->
      if d.tip < 0 || d.after_ops < 0 then
        invalid_arg "Fault.Plan.make: tip_deaths entries must be non-negative")
    tip_deaths;
  Option.iter
    (fun n ->
      if n < 0 then invalid_arg "Fault.Plan.make: power_cut_after_ops < 0")
    power_cut_after_ops;
  Option.iter
    (fun n ->
      if n < 0 then invalid_arg "Fault.Plan.make: power_cut_after_ewb < 0")
    power_cut_after_ewb;
  {
    seed;
    read_ber;
    stuck_rate;
    tip_deaths;
    weak_ewb_p;
    power_cut_after_ops;
    power_cut_after_ewb;
  }

let pp ppf t =
  Format.fprintf ppf
    "plan{seed=%d ber=%g stuck=%g deaths=[%a] weak-ewb=%g cut-ops=%s \
     cut-ewb=%s}"
    t.seed t.read_ber t.stuck_rate
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf d -> Format.fprintf ppf "tip %d@%d" d.tip d.after_ops))
    t.tip_deaths t.weak_ewb_p
    (match t.power_cut_after_ops with
    | None -> "-"
    | Some n -> string_of_int n)
    (match t.power_cut_after_ewb with
    | None -> "-"
    | Some n -> string_of_int n)
