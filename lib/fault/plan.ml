type tip_death = { tip : int; after_ops : int }
type region = { first_dot : int; n_dots : int; ber : float }

type t = {
  seed : int;
  read_ber : float;
  targeted : region list;
  stuck_rate : float;
  tip_deaths : tip_death list;
  weak_ewb_p : float;
  power_cut_after_ops : int option;
  power_cut_after_ewb : int option;
}

let none =
  {
    seed = 0;
    read_ber = 0.;
    targeted = [];
    stuck_rate = 0.;
    tip_deaths = [];
    weak_ewb_p = 0.;
    power_cut_after_ops = None;
    power_cut_after_ewb = None;
  }

let check_p name p =
  if p < 0. || p > 1. then
    invalid_arg (Printf.sprintf "Fault.Plan.make: %s must be in [0, 1]" name)

let make ?(seed = 0) ?(read_ber = 0.) ?(targeted = []) ?(stuck_rate = 0.)
    ?(tip_deaths = []) ?(weak_ewb_p = 0.) ?power_cut_after_ops
    ?power_cut_after_ewb () =
  check_p "read_ber" read_ber;
  check_p "stuck_rate" stuck_rate;
  check_p "weak_ewb_p" weak_ewb_p;
  List.iter
    (fun r ->
      check_p "targeted ber" r.ber;
      if r.first_dot < 0 || r.n_dots < 0 then
        invalid_arg "Fault.Plan.make: targeted regions must be non-negative")
    targeted;
  List.iter
    (fun d ->
      if d.tip < 0 || d.after_ops < 0 then
        invalid_arg "Fault.Plan.make: tip_deaths entries must be non-negative")
    tip_deaths;
  Option.iter
    (fun n ->
      if n < 0 then invalid_arg "Fault.Plan.make: power_cut_after_ops < 0")
    power_cut_after_ops;
  Option.iter
    (fun n ->
      if n < 0 then invalid_arg "Fault.Plan.make: power_cut_after_ewb < 0")
    power_cut_after_ewb;
  {
    seed;
    read_ber;
    targeted;
    stuck_rate;
    tip_deaths;
    weak_ewb_p;
    power_cut_after_ops;
    power_cut_after_ewb;
  }

let region_ber t ~dot =
  let rec find = function
    | [] -> t.read_ber
    | r :: rest ->
        if r.ber > 0. && dot >= r.first_dot && dot < r.first_dot + r.n_dots
        then r.ber
        else find rest
  in
  find t.targeted

let quiet t =
  t.read_ber = 0.
  && List.for_all (fun r -> r.ber = 0. || r.n_dots = 0) t.targeted
  && t.stuck_rate = 0. && t.tip_deaths = []
  && t.weak_ewb_p = 0.
  && t.power_cut_after_ops = None
  && t.power_cut_after_ewb = None

let pp ppf t =
  Format.fprintf ppf
    "plan{seed=%d ber=%g targeted=[%a] stuck=%g deaths=[%a] weak-ewb=%g \
     cut-ops=%s cut-ewb=%s}"
    t.seed t.read_ber
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf r ->
         Format.fprintf ppf "%d+%d@%g" r.first_dot r.n_dots r.ber))
    t.targeted t.stuck_rate
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf d -> Format.fprintf ppf "tip %d@%d" d.tip d.after_ops))
    t.tip_deaths t.weak_ewb_p
    (match t.power_cut_after_ops with
    | None -> "-"
    | Some n -> string_of_int n)
    (match t.power_cut_after_ewb with
    | None -> "-"
    | Some n -> string_of_int n)

(* ------------------------------------------------------------------ *)
(* Array plans                                                         *)

type array_event =
  | Member_loss of { member : int }
  | Replica_tamper of { member : int; line : int }

type timed_event = { at_op : int; event : array_event }

type array_plan = {
  array_seed : int;
  member_plans : (int * t) list;
  events : timed_event list;
}

let array_none = { array_seed = 0; member_plans = []; events = [] }

let array_make ?(seed = 0) ?(member_plans = []) ?(events = []) () =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (m, _) ->
      if m < 0 then invalid_arg "Fault.Plan.array_make: negative member index";
      if Hashtbl.mem seen m then
        invalid_arg
          (Printf.sprintf "Fault.Plan.array_make: duplicate member %d" m);
      Hashtbl.add seen m ())
    member_plans;
  List.iter
    (fun { at_op; event } ->
      if at_op < 0 then invalid_arg "Fault.Plan.array_make: at_op < 0";
      match event with
      | Member_loss { member } ->
          if member < 0 then
            invalid_arg "Fault.Plan.array_make: negative member index"
      | Replica_tamper { member; line } ->
          if member < 0 || line < 0 then
            invalid_arg "Fault.Plan.array_make: negative member index or line")
    events;
  let events = List.stable_sort (fun a b -> compare a.at_op b.at_op) events in
  { array_seed = seed; member_plans; events }

let member_seed p ~member =
  (* One splitmix64 draw keyed on (array_seed, member): member streams
     are mutually independent and stable no matter which members the
     plan happens to list explicitly. *)
  let r = Sim.Prng.create (p.array_seed lxor ((member + 1) * 0x9E3779B9)) in
  Int64.to_int (Int64.shift_right_logical (Sim.Prng.bits64 r) 2)

let member_plan p ~member =
  let base =
    match List.assoc_opt member p.member_plans with
    | Some pl -> pl
    | None -> none
  in
  if base.seed = 0 then { base with seed = member_seed p ~member } else base

let pp_array_event ppf = function
  | Member_loss { member } -> Format.fprintf ppf "member-loss %d" member
  | Replica_tamper { member; line } ->
      Format.fprintf ppf "replica-tamper replica %d line %d" member line

let pp_array ppf p =
  Format.fprintf ppf "array-plan{seed=%d members=[%a] events=[%a]}"
    p.array_seed
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf (m, pl) -> Format.fprintf ppf "%d:%a" m pp pl))
    p.member_plans
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       (fun ppf e -> Format.fprintf ppf "@%d %a" e.at_op pp_array_event e.event))
    p.events
