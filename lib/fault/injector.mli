(** The runtime half of fault injection: a {!Plan.t} plus the mutable
    state needed to make per-operation decisions and remember every
    event in a replayable ledger.

    Determinism contract: decisions use a private PRNG seeded only from
    the plan, never the medium's own stream, so installing an injector
    does not perturb the simulation's existing randomness.  Identical
    plans driven by identical operation traces produce bit-identical
    ledgers ({!ledger_to_string}).

    The hook points live in [Pmedia.Bitops] ({!tick}/{!flip_read}/
    {!stuck}/{!tick_ewb}/{!weak_pulse}) and [Probe.Pdevice]
    ({!newly_dead_tips}); user code normally only builds a plan and
    installs it with [Sero.Device.install_fault]. *)

exception Power_cut
(** Raised at an operation boundary when the plan's cut triggers.  The
    interrupted operation has {e not} touched the medium; everything
    before it has.  The cut disarms itself after firing, so the caller
    can treat the catch as the reboot and keep using the device. *)

type event =
  | Read_flip of { op : int; dot : int }
  | Stuck_read of { op : int; dot : int }
  | Tip_death of { op : int; tip : int }
  | Weak_pulse of { op : int; dot : int }
  | Cut of { op : int }

type t

val create : Plan.t -> t
val plan : t -> Plan.t

val ops : t -> int
(** Primitive operations ticked so far. *)

val cut_fired : t -> bool

(** {1 Hook points} *)

val tick : t -> unit
(** Count one primitive operation; fires {!Power_cut} at the boundary
    configured by [power_cut_after_ops]. *)

val tick_ewb : t -> unit
(** Count one ewb pulse; fires {!Power_cut} at the boundary configured
    by [power_cut_after_ewb].  Call before the pulse takes effect. *)

val flip_read : t -> dot:int -> bool
(** Decide (and log) whether this magnetic read flips, at the plan's
    effective probability for [dot] ({!Plan.region_ber}): targeted
    regions raise the rate locally, the baseline applies elsewhere. *)

val stuck : t -> dot:int -> bool
(** Whether [dot] is stuck at Down — a pure function of the plan seed
    and the dot address, logged on every read that hits it. *)

val weak_pulse : t -> dot:int -> bool
(** Decide (and log) whether this ewb pulse is underpowered. *)

val newly_dead_tips : t -> int list
(** Tips whose scheduled death has passed and has not been reported yet;
    each is reported (and logged) exactly once. *)

(** {1 The ledger} *)

val events : t -> event list
(** All injected events, oldest first. *)

val n_events : t -> int
val pp_event : Format.formatter -> event -> unit

val ledger_to_string : t -> string
(** One event per line — the replayable record.  Two runs with the same
    plan and the same operation trace compare byte-equal. *)

val pp_ledger : Format.formatter -> t -> unit
