exception Power_cut

type event =
  | Read_flip of { op : int; dot : int }
  | Stuck_read of { op : int; dot : int }
  | Tip_death of { op : int; tip : int }
  | Weak_pulse of { op : int; dot : int }
  | Cut of { op : int }

type t = {
  plan : Plan.t;
  rng : Sim.Prng.t;
  stuck_memo : (int, bool) Hashtbl.t;
  mutable ops : int;
  mutable ewbs : int;
  mutable cut_fired : bool;
  mutable pending_deaths : Plan.tip_death list;
  mutable events_rev : event list;
  mutable n_events : int;
}

let create (plan : Plan.t) =
  {
    plan;
    rng = Sim.Prng.create plan.Plan.seed;
    stuck_memo = Hashtbl.create 64;
    ops = 0;
    ewbs = 0;
    cut_fired = false;
    pending_deaths = plan.Plan.tip_deaths;
    events_rev = [];
    n_events = 0;
  }

let plan t = t.plan
let ops t = t.ops
let cut_fired t = t.cut_fired

let record t ev =
  t.events_rev <- ev :: t.events_rev;
  t.n_events <- t.n_events + 1

let fire_cut t =
  t.cut_fired <- true;
  record t (Cut { op = t.ops });
  raise Power_cut

let tick t =
  (match t.plan.Plan.power_cut_after_ops with
  | Some n when (not t.cut_fired) && t.ops >= n -> fire_cut t
  | _ -> ());
  t.ops <- t.ops + 1

let tick_ewb t =
  (match t.plan.Plan.power_cut_after_ewb with
  | Some n when (not t.cut_fired) && t.ewbs >= n -> fire_cut t
  | _ -> ());
  t.ewbs <- t.ewbs + 1

let flip_read t ~dot =
  let ber =
    if t.plan.Plan.targeted = [] then t.plan.Plan.read_ber
    else Plan.region_ber t.plan ~dot
  in
  ber > 0.
  && Sim.Prng.bernoulli t.rng ber
  &&
  (record t (Read_flip { op = t.ops; dot });
   true)

(* Stuck membership hashes the dot address into its own single-use
   stream: order-independent, so the stuck set is a property of the
   plan, not of which reads happened first. *)
let stuck t ~dot =
  t.plan.Plan.stuck_rate > 0.
  &&
  let is_stuck =
    match Hashtbl.find_opt t.stuck_memo dot with
    | Some v -> v
    | None ->
        let h = Sim.Prng.create (t.plan.Plan.seed lxor ((dot + 1) * 0x2545F491)) in
        let v = Sim.Prng.bernoulli h t.plan.Plan.stuck_rate in
        Hashtbl.add t.stuck_memo dot v;
        v
  in
  if is_stuck then record t (Stuck_read { op = t.ops; dot });
  is_stuck

let weak_pulse t ~dot =
  t.plan.Plan.weak_ewb_p > 0.
  && Sim.Prng.bernoulli t.rng t.plan.Plan.weak_ewb_p
  &&
  (record t (Weak_pulse { op = t.ops; dot });
   true)

let newly_dead_tips t =
  match t.pending_deaths with
  | [] -> []
  | pending ->
      let dead, alive =
        List.partition (fun d -> t.ops >= d.Plan.after_ops) pending
      in
      t.pending_deaths <- alive;
      List.map
        (fun d ->
          record t (Tip_death { op = t.ops; tip = d.Plan.tip });
          d.Plan.tip)
        dead

let events t = List.rev t.events_rev
let n_events t = t.n_events

let pp_event ppf = function
  | Read_flip { op; dot } -> Format.fprintf ppf "op=%d read-flip dot=%d" op dot
  | Stuck_read { op; dot } -> Format.fprintf ppf "op=%d stuck-read dot=%d" op dot
  | Tip_death { op; tip } -> Format.fprintf ppf "op=%d tip-death tip=%d" op tip
  | Weak_pulse { op; dot } -> Format.fprintf ppf "op=%d weak-pulse dot=%d" op dot
  | Cut { op } -> Format.fprintf ppf "op=%d power-cut" op

let ledger_to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Format.asprintf "%a" pp_event ev);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let pp_ledger ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list pp_event)
    (events t)
