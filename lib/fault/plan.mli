(** A declarative, seeded fault plan.

    A plan describes {e what can go wrong} during a run: transient
    magnetic-read bit flips, dots stuck at Down, probe tips dying after
    a given operation count, underpowered ewb pulses that fail to heat
    their dot (the mechanism behind {e torn} burns), and a power cut at
    an operation boundary.  The plan itself is pure data; {!Injector}
    turns it into per-operation decisions driven by a splitmix64 stream
    ({!Sim.Prng}) so that the same plan always produces the same fault
    sequence for the same operation trace. *)

type tip_death = {
  tip : int;  (** Logical tip index. *)
  after_ops : int;  (** The tip dies once this many primitive ops ran. *)
}

type region = {
  first_dot : int;  (** First dot of the elevated-BER window. *)
  n_dots : int;  (** Window length in dots. *)
  ber : float;  (** Per-mrb flip probability inside the window. *)
}
(** A contiguous dot range whose raw read-BER differs from the plan's
    baseline — the declarative form of a localized wear ramp or thermal
    hot spot (Evans-style thermally-induced errors land on specific
    tracks, not uniformly).  An adversary-driven plan layers these over
    the injector so that targeted noise is replayable data, not code. *)

type t = {
  seed : int;  (** Root of the injector's private PRNG stream. *)
  read_ber : float;  (** Per-mrb probability of flipping the result. *)
  targeted : region list;
      (** Dot ranges with their own flip probability; the first matching
          region (with [ber > 0]) overrides [read_ber] for dots inside
          it.  Decisions still consume exactly one PRNG draw whenever
          the effective probability is positive, so adding a region does
          not shift the fault stream seen by dots outside it beyond the
          draws the region itself makes. *)
  stuck_rate : float;
      (** Fraction of dots stuck at Down; membership is a pure function
          of [(seed, dot)], so it is stable across runs and independent
          of operation order. *)
  tip_deaths : tip_death list;
  weak_ewb_p : float;
      (** Per-ewb probability that the pulse is underpowered and fails
          to heat the dot — torn burns when it strikes mid-heat. *)
  power_cut_after_ops : int option;
      (** Cut power at the boundary after this many primitive ops. *)
  power_cut_after_ewb : int option;
      (** Cut power after this many ewb pulses — lands the cut inside a
          specific burn with cell precision. *)
}

val none : t
(** The empty plan: nothing ever goes wrong (seed 0). *)

val make :
  ?seed:int ->
  ?read_ber:float ->
  ?targeted:region list ->
  ?stuck_rate:float ->
  ?tip_deaths:tip_death list ->
  ?weak_ewb_p:float ->
  ?power_cut_after_ops:int ->
  ?power_cut_after_ewb:int ->
  unit ->
  t
(** All faults default to off; [seed] defaults to 0.
    @raise Invalid_argument on negative counts or probabilities outside
    [0, 1]. *)

val pp : Format.formatter -> t -> unit

val region_ber : t -> dot:int -> float
(** Effective flip probability for [dot]: the first matching targeted
    region's [ber] when one covers the dot, else [read_ber]. *)

val quiet : t -> bool
(** Whether the plan can never inject anything (all rates zero, no tip
    deaths, no power cut) — its seed aside, it is {!none}.  Quiet plans
    need no injector: installing one anyway would still change device
    behaviour (caches bypass while a fault plan is armed), so array
    members skip them. *)

(** {1 Array plans}

    One replayable plan for a whole array of devices.  Each member gets
    its own fault plan and its own seed (derived from the array seed
    when not given explicitly), so per-member injector ledgers replay
    independently; on top of that the plan scripts {e array-level}
    events — whole-device loss and targeted replica tamper — at volume
    operation boundaries, so a multi-device failure scenario is one
    declarative, replayable object. *)

type array_event =
  | Member_loss of { member : int }
      (** The device serving array slot [member] stops answering —
          whole-device loss. *)
  | Replica_tamper of { member : int; line : int }
      (** An attacker magnetically rewrites one replica of volume line
          [line] (the first data block), leaving its burned hash
          testifying against the alteration.  [member] is the replica
          ordinal within the line's mirror group (0-based), not an
          absolute slot — every line has a [member]-th replica whatever
          group it lives in. *)

type timed_event = { at_op : int; event : array_event }
(** [event] fires at the boundary after [at_op] volume operations. *)

type array_plan = {
  array_seed : int;
  member_plans : (int * t) list;
      (** Explicit per-member device plans; members not listed get
          {!none} under their derived seed. *)
  events : timed_event list;  (** Sorted by [at_op], stable. *)
}

val array_none : array_plan

val array_make :
  ?seed:int ->
  ?member_plans:(int * t) list ->
  ?events:timed_event list ->
  unit ->
  array_plan
(** @raise Invalid_argument on a negative member index, [at_op] or
    tamper line, or a duplicate member entry. *)

val member_seed : array_plan -> member:int -> int
(** The member's private seed: a splitmix64 derivation of
    [(array_seed, member)], stable across runs and independent of how
    many members the plan names. *)

val member_plan : array_plan -> member:int -> t
(** The member's device plan: its explicit entry if listed, otherwise
    {!none}; either way the plan's seed 0 is replaced by
    {!member_seed} so that every member draws from its own stream. *)

val pp_array_event : Format.formatter -> array_event -> unit
val pp_array : Format.formatter -> array_plan -> unit
