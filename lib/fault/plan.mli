(** A declarative, seeded fault plan.

    A plan describes {e what can go wrong} during a run: transient
    magnetic-read bit flips, dots stuck at Down, probe tips dying after
    a given operation count, underpowered ewb pulses that fail to heat
    their dot (the mechanism behind {e torn} burns), and a power cut at
    an operation boundary.  The plan itself is pure data; {!Injector}
    turns it into per-operation decisions driven by a splitmix64 stream
    ({!Sim.Prng}) so that the same plan always produces the same fault
    sequence for the same operation trace. *)

type tip_death = {
  tip : int;  (** Logical tip index. *)
  after_ops : int;  (** The tip dies once this many primitive ops ran. *)
}

type t = {
  seed : int;  (** Root of the injector's private PRNG stream. *)
  read_ber : float;  (** Per-mrb probability of flipping the result. *)
  stuck_rate : float;
      (** Fraction of dots stuck at Down; membership is a pure function
          of [(seed, dot)], so it is stable across runs and independent
          of operation order. *)
  tip_deaths : tip_death list;
  weak_ewb_p : float;
      (** Per-ewb probability that the pulse is underpowered and fails
          to heat the dot — torn burns when it strikes mid-heat. *)
  power_cut_after_ops : int option;
      (** Cut power at the boundary after this many primitive ops. *)
  power_cut_after_ewb : int option;
      (** Cut power after this many ewb pulses — lands the cut inside a
          specific burn with cell precision. *)
}

val none : t
(** The empty plan: nothing ever goes wrong (seed 0). *)

val make :
  ?seed:int ->
  ?read_ber:float ->
  ?stuck_rate:float ->
  ?tip_deaths:tip_death list ->
  ?weak_ewb_p:float ->
  ?power_cut_after_ops:int ->
  ?power_cut_after_ewb:int ->
  unit ->
  t
(** All faults default to off; [seed] defaults to 0.
    @raise Invalid_argument on negative counts or probabilities outside
    [0, 1]. *)

val pp : Format.formatter -> t -> unit
