type member_state = Active | Lost | Quarantined_member

type config = {
  slots : int;
  replication : int;
  spares : int;
  member_blocks : int;
  line_exp : int;
  seed : int;
  ras : Sero.Device.ras;
  endurance : Sero.Device.endurance;
  policy : Probe.Sched.policy;
  read_retry_limit : int;
  retry_backoff : float;
  cache_capacity : int option;
}

let default_config ?(slots = 4) ?(replication = 2) ?(spares = 1)
    ?(member_blocks = 128) ?(line_exp = 3) ?(seed = 42)
    ?(ras = Sero.Device.active_ras) ?(endurance = Sero.Device.active_endurance)
    ?(policy = Probe.Sched.Elevator) ?(read_retry_limit = 2)
    ?(retry_backoff = 1e-4) ?(cache_capacity = Some 32) () =
  {
    slots;
    replication;
    spares;
    member_blocks;
    line_exp;
    seed;
    ras;
    endurance;
    policy;
    read_retry_limit;
    retry_backoff;
    cache_capacity;
  }

type entry = {
  e_dev : Sero.Device.t;
  e_q : Sero.Queue.t;
  e_bc : Sero.Bcache.t option;
  mutable e_inj : Fault.Injector.t option;
}

type t = {
  cfg : config;
  map : Amap.t;
  members : entry array;  (** Indexed by device; slots + spares. *)
  slot_dev : int array;
  mutable spare_pool : int list;
  states : member_state array;
  trust : Trust.t;
  verified : (int * int, bool) Hashtbl.t;
      (** Read-time verification verdicts per (device, local line);
          invalidated by the device's own mutation listeners. *)
  mutable ops : int;
  mutable pending : Fault.Plan.timed_event list;
  mutable event_log : string list;  (** Newest first. *)
  mutable reads : int;
  mutable writes : int;
  mutable heats : int;
  mutable degraded_reads : int;
  mutable read_rejects : int;
  mutable rebuilds : int;
}

let cfg v = v.cfg
let map v = v.map
let trust v = v.trust
let n_devices v = Array.length v.members

let check_dev v dev =
  if dev < 0 || dev >= n_devices v then
    invalid_arg (Printf.sprintf "Volume: device %d out of range" dev)

let device v ~dev =
  check_dev v dev;
  v.members.(dev).e_dev

let queue v ~dev =
  check_dev v dev;
  v.members.(dev).e_q

let dev_of_slot v ~slot =
  if slot < 0 || slot >= v.cfg.slots then
    invalid_arg (Printf.sprintf "Volume: slot %d out of range" slot);
  v.slot_dev.(slot)

let slot_of_dev v ~dev =
  check_dev v dev;
  let found = ref None in
  Array.iteri (fun s d -> if d = dev && !found = None then found := Some s)
    v.slot_dev;
  !found

let spare_pool v = v.spare_pool
let member_states v = Array.copy v.states

let log_event v msg = v.event_log <- msg :: v.event_log
let events v = List.rev v.event_log

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let wrap_device cfg dev =
  let des = Sim.Des.create () in
  let q =
    Sero.Queue.create ~policy:cfg.policy
      ~read_retry_limit:cfg.read_retry_limit ~retry_backoff:cfg.retry_backoff
      des dev
  in
  let bc =
    Option.map (fun capacity -> Sero.Bcache.create ~capacity q)
      cfg.cache_capacity
  in
  { e_dev = dev; e_q = q; e_bc = bc; e_inj = None }

let make_map cfg lay =
  Amap.create ~slots:cfg.slots ~replication:cfg.replication
    ~member_lines:(Sero.Layout.usable_lines lay)
    ~blocks_per_line:(Sero.Layout.blocks_per_line lay)

let member_config cfg i =
  let base =
    Sero.Device.default_config ~n_blocks:cfg.member_blocks
      ~line_exp:cfg.line_exp ()
  in
  {
    base with
    Sero.Device.seed = cfg.seed + i;
    ras = cfg.ras;
    endurance = cfg.endurance;
  }

(* Any medium mutation (writes, burns, torn completions, the attacker
   surface) drops the affected lines' cached read-time verdicts, so the
   next read through the volume re-verifies exactly what changed. *)
let arm_verify_invalidation v =
  let bpl = v.map.Amap.blocks_per_line in
  Array.iteri
    (fun dev e ->
      Sero.Device.add_mutation_listener e.e_dev (fun ~pba ~n ->
          for local = pba / bpl to (pba + n - 1) / bpl do
            Hashtbl.remove v.verified (dev, local)
          done))
    v.members;
  v

let create cfg =
  if cfg.spares < 0 then invalid_arg "Volume.create: spares < 0";
  let n = cfg.slots + cfg.spares in
  let members =
    Array.init n (fun i ->
        wrap_device cfg (Sero.Device.create (member_config cfg i)))
  in
  let map = make_map cfg (Sero.Device.layout members.(0).e_dev) in
  arm_verify_invalidation
    {
      cfg;
      map;
      members;
      slot_dev = Array.init cfg.slots (fun s -> s);
      spare_pool = List.init cfg.spares (fun i -> cfg.slots + i);
      states = Array.make n Active;
      trust = Trust.create ~devices:n;
      verified = Hashtbl.create 64;
      ops = 0;
      pending = [];
      event_log = [];
      reads = 0;
      writes = 0;
      heats = 0;
      degraded_reads = 0;
      read_rejects = 0;
      rebuilds = 0;
    }

let of_devices cfg ~devices ~slot_dev ~spare_pool ~states =
  let n = Array.length devices in
  if n < cfg.slots then invalid_arg "Volume.of_devices: too few devices";
  if Array.length slot_dev <> cfg.slots then
    invalid_arg "Volume.of_devices: slot_dev length <> slots";
  if Array.length states <> n then
    invalid_arg "Volume.of_devices: states length <> devices";
  Array.iter
    (fun d ->
      if d < 0 || d >= n then invalid_arg "Volume.of_devices: slot_dev range")
    slot_dev;
  List.iter
    (fun d ->
      if d < 0 || d >= n then invalid_arg "Volume.of_devices: spare range")
    spare_pool;
  let lay0 = Sero.Device.layout devices.(0) in
  Array.iter
    (fun d ->
      let lay = Sero.Device.layout d in
      if
        Sero.Layout.usable_lines lay <> Sero.Layout.usable_lines lay0
        || Sero.Layout.blocks_per_line lay <> Sero.Layout.blocks_per_line lay0
      then invalid_arg "Volume.of_devices: member geometry mismatch")
    devices;
  let members = Array.map (wrap_device cfg) devices in
  arm_verify_invalidation
    {
      cfg;
      map = make_map cfg lay0;
      members;
      slot_dev = Array.copy slot_dev;
      spare_pool;
      states = Array.copy states;
      trust = Trust.create ~devices:n;
      verified = Hashtbl.create 64;
      ops = 0;
      pending = [];
      event_log = [];
      reads = 0;
      writes = 0;
      heats = 0;
      degraded_reads = 0;
      read_rejects = 0;
      rebuilds = 0;
    }

(* ------------------------------------------------------------------ *)
(* Member state                                                        *)

let serving_dev v dev =
  v.states.(dev) = Active && Trust.status v.trust ~dev <> Trust.Quarantined

let serving v slot = serving_dev v v.slot_dev.(slot)

let writable v slot =
  serving v slot
  && Sero.Device.device_state v.members.(v.slot_dev.(slot)).e_dev
     <> Sero.Device.Read_only

let serving_slots v ~line =
  let order = List.filter (serving v) (Amap.read_order v.map line) in
  (* Trusted replicas answer first; Suspect ones are the fallback. *)
  let trusted, suspect =
    List.partition
      (fun s -> Trust.status v.trust ~dev:v.slot_dev.(s) = Trust.Trusted)
      order
  in
  trusted @ suspect

type volume_state = Optimal | Degraded | Critical

let volume_state v =
  let all = ref true and dead_group = ref false in
  for g = 0 to Amap.groups v.map - 1 do
    let n =
      List.length
        (List.filter (serving v)
           (List.init v.cfg.replication (fun i -> (g * v.cfg.replication) + i)))
    in
    if n = 0 then dead_group := true;
    if n < v.cfg.replication then all := false
  done;
  if !dead_group then Critical else if !all then Optimal else Degraded

let pp_volume_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Optimal -> "optimal"
    | Degraded -> "degraded"
    | Critical -> "critical")

let pp_member_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Active -> "active"
    | Lost -> "lost"
    | Quarantined_member -> "quarantined")

let fail_slot v ~slot =
  let dev = dev_of_slot v ~slot in
  if v.states.(dev) = Active then begin
    v.states.(dev) <- Lost;
    log_event v (Printf.sprintf "member loss: slot %d (device %d)" slot dev)
  end

let quarantine_dev v ~dev =
  check_dev v dev;
  if v.states.(dev) <> Quarantined_member then begin
    v.states.(dev) <- Quarantined_member;
    Trust.quarantine v.trust ~dev;
    log_event v (Printf.sprintf "device %d quarantined" dev)
  end

let revive_dev v ~dev =
  check_dev v dev;
  if v.states.(dev) = Lost then begin
    v.states.(dev) <- Active;
    log_event v (Printf.sprintf "device %d revived" dev)
  end

(* ------------------------------------------------------------------ *)
(* Fault plan clock                                                    *)

let ops v = v.ops

let injector v ~dev =
  check_dev v dev;
  v.members.(dev).e_inj

let apply_event v (e : Fault.Plan.array_event) =
  match e with
  | Fault.Plan.Member_loss { member } ->
      log_event v
        (Format.asprintf "plan event @%d: %a" v.ops Fault.Plan.pp_array_event e);
      fail_slot v ~slot:member
  | Fault.Plan.Replica_tamper { member; line } ->
      log_event v
        (Format.asprintf "plan event @%d: %a" v.ops Fault.Plan.pp_array_event e);
      (* [member] is a replica ordinal within the line's mirror group,
         so the attack always lands on a device that actually holds a
         replica of [line]. *)
      let slot = List.nth (Amap.slots_of_line v.map line) member in
      let dev = dev_of_slot v ~slot in
      let d = v.members.(dev).e_dev in
      let lay = Sero.Device.layout d in
      let pba = Sero.Layout.first_data_block lay (Amap.local_line v.map line) in
      (* The attacker's mws: rewrite one replica's data block under its
         burned hash.  Mutation listeners fire, so the member's cache
         cannot mask the verdict. *)
      Sero.Device.unsafe_write_block d ~pba
        (Printf.sprintf "tampered replica: slot %d line %d" slot line);
      Sero.Device.refresh_heated_cache d

let tick v =
  let rec fire = function
    | ({ Fault.Plan.at_op; event } : Fault.Plan.timed_event) :: rest
      when at_op <= v.ops ->
        apply_event v event;
        fire rest
    | rest -> v.pending <- rest
  in
  fire v.pending;
  v.ops <- v.ops + 1

let install_plan v (ap : Fault.Plan.array_plan) =
  List.iter
    (fun ({ Fault.Plan.event; _ } : Fault.Plan.timed_event) ->
      match event with
      | Fault.Plan.Member_loss { member } ->
          if member < 0 || member >= v.cfg.slots then
            invalid_arg "Volume.install_plan: event member out of range"
      | Fault.Plan.Replica_tamper { member; line } ->
          if line < 0 || line >= Amap.logical_lines v.map then
            invalid_arg "Volume.install_plan: tamper line out of range";
          if member < 0 || member >= v.cfg.replication then
            invalid_arg "Volume.install_plan: tamper replica out of range")
    ap.Fault.Plan.events;
  Array.iteri
    (fun i e ->
      let plan = Fault.Plan.member_plan ap ~member:i in
      if not (Fault.Plan.quiet plan) then begin
        let inj = Fault.Injector.create plan in
        e.e_inj <- Some inj;
        Sero.Device.install_fault e.e_dev inj
      end)
    v.members;
  v.pending <- ap.Fault.Plan.events;
  log_event v (Format.asprintf "installed %a" Fault.Plan.pp_array ap)

let fault_ledger v =
  let b = Buffer.create 256 in
  List.iter (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') (events v);
  Array.iteri
    (fun i e ->
      match e.e_inj with
      | None -> ()
      | Some inj ->
          Buffer.add_string b (Printf.sprintf "member %d injector:\n" i);
          Buffer.add_string b (Fault.Injector.ledger_to_string inj))
    v.members;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Member IO plumbing                                                  *)

let entry_read ?(tenant = 0) v ~dev ~prio ~pba =
  check_dev v dev;
  let e = v.members.(dev) in
  match e.e_bc with
  | Some bc -> Sero.Bcache.read_block ~prio ~tenant bc ~pba
  | None -> Sero.Queue.read_block ~prio ~tenant e.e_q ~pba

let entry_write ?(tenant = 0) v ~dev ~prio ~pba payload =
  let e = v.members.(dev) in
  match e.e_bc with
  | Some bc -> Sero.Bcache.write_block ~prio ~tenant bc ~pba payload
  | None -> Sero.Queue.write_block ~prio ~tenant e.e_q ~pba payload

let entry_verify v ~dev ~line =
  check_dev v dev;
  let e = v.members.(dev) in
  match e.e_bc with
  | Some bc -> Sero.Bcache.verify_line bc ~line
  | None -> Sero.Device.verify_line e.e_dev ~line

let entry_write_span ?(tenant = 0) v ~dev ~prio ~pba payloads =
  check_dev v dev;
  Sero.Queue.write_span ~prio ~tenant v.members.(dev).e_q ~pba payloads

let entry_heat ?(tenant = 0) v ~dev ~line ~timestamp =
  let e = v.members.(dev) in
  match e.e_bc with
  | Some bc -> Sero.Bcache.heat_line ~tenant bc ~line ~timestamp ()
  | None -> Sero.Queue.heat_line ~tenant e.e_q ~line ~timestamp ()

(* ------------------------------------------------------------------ *)
(* Volume IO                                                           *)

type replica_fault =
  | Device_error of Sero.Device.read_error
  | Failed_verify

type read_error =
  | Volume_blank
  | Volume_offline
  | Replica_errors of (int * replica_fault) list

type write_error =
  | No_writable_replica
  | Rejected of Sero.Device.write_error

type heat_error =
  | Heat_offline
  | Replica_heat_errors of (int * Sero.Device.heat_error) list
  | Heat_diverged of (int * Hash.Sha256.t) list

(* Verify-on-first-read: a replica of a heated line must pass local
   verification before the volume serves its data, so a tampered
   replica never leaks wrong bytes — even if its mirrors (and their
   audit evidence) die later.  Verdicts are cached per (device, local
   line) and dropped by mutation listeners, so a line re-verifies
   exactly when its medium changed.  No trust charge here: read-time
   rejection is triage; convictions stay the quorum's job. *)
let replica_cleared v ~dev ~local =
  match Hashtbl.find_opt v.verified (dev, local) with
  | Some ok -> ok
  | None ->
      let ok =
        match
          Sero.Device.read_hash_block v.members.(dev).e_dev ~line:local
        with
        | `Not_heated -> true
        | `Burned _ -> entry_verify v ~dev ~line:local = Sero.Tamper.Intact
        | `Torn _ | `Tampered _ -> false
      in
      Hashtbl.replace v.verified (dev, local) ok;
      if not ok then
        log_event v
          (Printf.sprintf "read verify: device %d fails on local line %d" dev
             local);
      ok

let read_block ?(prio = Sero.Queue.Foreground) ?(tenant = 0) v ~vba =
  tick v;
  v.reads <- v.reads + 1;
  let line = Amap.line_of_vba v.map vba in
  let local = Amap.local_line v.map line in
  let pba = Amap.member_pba v.map ~vba in
  let preferred = Amap.preferred_slot v.map line in
  match serving_slots v ~line with
  | [] -> Error Volume_offline
  | order ->
      let rec go errs = function
        | [] ->
            let errs = List.rev errs in
            if
              List.for_all
                (fun (_, e) -> e = Device_error Sero.Device.Blank)
                errs
            then Error Volume_blank
            else Error (Replica_errors errs)
        | slot :: rest ->
            let dev = v.slot_dev.(slot) in
            if not (replica_cleared v ~dev ~local) then begin
              v.read_rejects <- v.read_rejects + 1;
              go ((slot, Failed_verify) :: errs) rest
            end
            else (
              match entry_read ~tenant v ~dev ~prio ~pba with
              | Ok payload ->
                  if slot <> preferred then
                    v.degraded_reads <- v.degraded_reads + 1;
                  Ok payload
              | Error e -> go ((slot, Device_error e) :: errs) rest)
      in
      go [] order

let write_block ?(prio = Sero.Queue.Foreground) ?(tenant = 0) v ~vba payload =
  tick v;
  v.writes <- v.writes + 1;
  let line = Amap.line_of_vba v.map vba in
  let pba = Amap.member_pba v.map ~vba in
  let targets = List.filter (writable v) (Amap.slots_of_line v.map line) in
  let wrote = ref 0 and refusal = ref None in
  List.iter
    (fun slot ->
      match
        entry_write ~tenant v ~dev:v.slot_dev.(slot) ~prio ~pba payload
      with
      | Ok () -> incr wrote
      | Error Sero.Device.Read_only_device -> ()
      | Error e -> if !refusal = None then refusal := Some e)
    targets;
  if !wrote > 0 then Ok ()
  else
    match !refusal with
    | Some e -> Error (Rejected e)
    | None -> Error No_writable_replica

let heat_line ?(tenant = 0) v ~line ?timestamp () =
  tick v;
  v.heats <- v.heats + 1;
  let local = Amap.local_line v.map line in
  match List.filter (serving v) (Amap.slots_of_line v.map line) with
  | [] -> Error Heat_offline
  | targets ->
      (* One shared timestamp: the burned areas must be byte-comparable
         across the mirror group, and the timestamp is part of the
         burned metadata. *)
      let ts =
        match timestamp with
        | Some t -> t
        | None ->
            Probe.Pdevice.elapsed
              (Sero.Device.pdevice
                 v.members.(v.slot_dev.(List.hd targets)).e_dev)
      in
      let results =
        List.map
          (fun slot ->
            let dev = v.slot_dev.(slot) in
            let r =
              match entry_heat ~tenant v ~dev ~line:local ~timestamp:ts with
              | Ok h -> Ok h
              | Error Sero.Device.Already_heated -> (
                  (* A crash between replicas leaves some already burned;
                     idempotent restart is fine iff the old burn matches. *)
                  match
                    Sero.Device.read_hash_block v.members.(dev).e_dev
                      ~line:local
                  with
                  | `Burned m -> Ok m.Sero.Device.hash
                  | _ -> Error Sero.Device.Already_heated)
              | Error e -> Error e
            in
            (slot, r))
          targets
      in
      let errs =
        List.filter_map
          (fun (s, r) -> match r with Error e -> Some (s, e) | Ok _ -> None)
          results
      in
      if errs <> [] then Error (Replica_heat_errors errs)
      else
        let hashes =
          List.filter_map
            (fun (s, r) -> match r with Ok h -> Some (s, h) | _ -> None)
            results
        in
        let _, h0 = List.hd hashes in
        if List.for_all (fun (_, h) -> Hash.Sha256.equal h h0) hashes then
          Ok h0
        else Error (Heat_diverged hashes)

let is_line_heated v ~line =
  let local = Amap.local_line v.map line in
  List.exists
    (fun slot ->
      Sero.Device.is_line_heated v.members.(v.slot_dev.(slot)).e_dev
        ~line:local)
    (List.filter (serving v) (Amap.slots_of_line v.map line))

let flush v =
  Array.iter
    (fun e ->
      (match e.e_bc with Some bc -> Sero.Bcache.sync bc | None -> ());
      Sero.Queue.drain e.e_q)
    v.members

(* ------------------------------------------------------------------ *)
(* Rebuild bookkeeping                                                 *)

let swap_in_spare v ~slot ~spare =
  check_dev v spare;
  if not (List.mem spare v.spare_pool) then
    invalid_arg "Volume.swap_in_spare: device is not a pooled spare";
  let old = dev_of_slot v ~slot in
  v.spare_pool <- List.filter (fun d -> d <> spare) v.spare_pool;
  v.slot_dev.(slot) <- spare;
  v.states.(spare) <- Active;
  Trust.reset v.trust ~dev:spare;
  log_event v
    (Printf.sprintf "slot %d rebuilt onto device %d (was device %d)" slot
       spare old)

let set_spare_pool v pool =
  List.iter (fun d -> check_dev v d) pool;
  v.spare_pool <- pool

let note_rebuilt v = v.rebuilds <- v.rebuilds + 1

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

type stats = {
  v_state : volume_state;
  devices : int;
  active_members : int;
  spares_left : int;
  logical_lines : int;
  data_blocks : int;
  heated_lines : int;
  reads : int;
  writes : int;
  heats : int;
  degraded_reads : int;
  read_rejects : int;
  rebuilds : int;
}

let stats v =
  let heated = ref 0 in
  for line = 0 to Amap.logical_lines v.map - 1 do
    if is_line_heated v ~line then incr heated
  done;
  {
    v_state = volume_state v;
    devices = n_devices v;
    active_members =
      Array.fold_left
        (fun acc s -> if s = Active then acc + 1 else acc)
        0 v.states;
    spares_left = List.length v.spare_pool;
    logical_lines = Amap.logical_lines v.map;
    data_blocks = Amap.n_blocks v.map;
    heated_lines = !heated;
    reads = v.reads;
    writes = v.writes;
    heats = v.heats;
    degraded_reads = v.degraded_reads;
    read_rejects = v.read_rejects;
    rebuilds = v.rebuilds;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "volume %a: %d devices (%d active, %d spare), %d lines (%d heated), %d \
     data blocks@ io: %d reads (%d degraded, %d verify-rejected), %d \
     writes, %d heats, %d rebuilds"
    pp_volume_state s.v_state s.devices s.active_members s.spares_left
    s.logical_lines s.heated_lines s.data_blocks s.reads s.degraded_reads
    s.read_rejects s.writes s.heats s.rebuilds
