let magic = "SEROARR1"

let policy_string = function
  | Probe.Sched.Fifo -> "fifo"
  | Probe.Sched.Sstf -> "sstf"
  | Probe.Sched.Elevator -> "elevator"

let policy_of_string = function
  | "fifo" -> Probe.Sched.Fifo
  | "sstf" -> Probe.Sched.Sstf
  | "elevator" -> Probe.Sched.Elevator
  | s -> failwith (Printf.sprintf "unknown policy %S" s)

let state_string = function
  | Volume.Active -> "active"
  | Volume.Lost -> "lost"
  | Volume.Quarantined_member -> "quarantined"

let state_of_string = function
  | "active" -> Volume.Active
  | "lost" -> Volume.Lost
  | "quarantined" -> Volume.Quarantined_member
  | s -> failwith (Printf.sprintf "unknown member state %S" s)

let trust_status_string = function
  | Trust.Trusted -> "trusted"
  | Trust.Suspect -> "suspect"
  | Trust.Quarantined -> "quarantined"

let trust_status_of_string = function
  | "trusted" -> Trust.Trusted
  | "suspect" -> Trust.Suspect
  | "quarantined" -> Trust.Quarantined
  | s -> failwith (Printf.sprintf "unknown trust status %S" s)

let member_file path i = Printf.sprintf "%s.d%d" path i

let save v path =
  let cfg = Volume.cfg v in
  let n = Volume.n_devices v in
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "%s\n" magic;
  pr "slots %d\n" cfg.Volume.slots;
  pr "replication %d\n" cfg.Volume.replication;
  pr "spares %d\n" cfg.Volume.spares;
  pr "member_blocks %d\n" cfg.Volume.member_blocks;
  pr "line_exp %d\n" cfg.Volume.line_exp;
  pr "seed %d\n" cfg.Volume.seed;
  pr "policy %s\n" (policy_string cfg.Volume.policy);
  pr "retry %d %h\n" cfg.Volume.read_retry_limit cfg.Volume.retry_backoff;
  (match cfg.Volume.cache_capacity with
  | Some c -> pr "cache %d\n" c
  | None -> pr "cache none\n");
  pr "devices %d\n" n;
  pr "slot_dev";
  Array.iter (fun d -> pr " %d" d)
    (Array.init cfg.Volume.slots (fun s -> Volume.dev_of_slot v ~slot:s));
  pr "\n";
  pr "spare_pool";
  List.iter (fun d -> pr " %d" d) (Volume.spare_pool v);
  pr "\n";
  Array.iteri (fun i s -> pr "state %d %s\n" i (state_string s))
    (Volume.member_states v);
  for i = 0 to n - 1 do
    let e = Trust.entry (Volume.trust v) ~dev:i in
    pr "trust %d %s %d %d %d %d %d\n" i
      (trust_status_string e.Trust.status)
      e.Trust.votes e.Trust.agreements e.Trust.divergences e.Trust.convictions
      e.Trust.unreadable
  done;
  close_out oc;
  for i = 0 to n - 1 do
    Sero.Image.save (Volume.device v ~dev:i) (member_file path i)
  done

let load path =
  try
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    (match lines with
    | m :: _ when m = magic -> ()
    | _ -> failwith "not a SEROARR1 manifest");
    let fields = Hashtbl.create 16 in
    let slot_dev = ref [||] and spare_pool = ref [] in
    let states = Hashtbl.create 8 and trust = Hashtbl.create 8 in
    List.iteri
      (fun i line ->
        if i > 0 && line <> "" then
          match String.split_on_char ' ' line with
          | "slot_dev" :: ds ->
              slot_dev := Array.of_list (List.map int_of_string ds)
          | "spare_pool" :: ds -> spare_pool := List.map int_of_string ds
          | [ "state"; i; s ] ->
              Hashtbl.replace states (int_of_string i) (state_of_string s)
          | [ "trust"; i; st; v; a; d; c; u ] ->
              Hashtbl.replace trust (int_of_string i)
                {
                  Trust.status = trust_status_of_string st;
                  votes = int_of_string v;
                  agreements = int_of_string a;
                  divergences = int_of_string d;
                  convictions = int_of_string c;
                  unreadable = int_of_string u;
                }
          | [ "retry"; l; b ] ->
              Hashtbl.replace fields "retry_limit" l;
              Hashtbl.replace fields "retry_backoff" b
          | [ k; v ] -> Hashtbl.replace fields k v
          | _ -> failwith (Printf.sprintf "bad manifest line %S" line))
      lines;
    let geti k = int_of_string (Hashtbl.find fields k) in
    let n = geti "devices" in
    let cfg =
      {
        Volume.slots = geti "slots";
        replication = geti "replication";
        spares = geti "spares";
        member_blocks = geti "member_blocks";
        line_exp = geti "line_exp";
        seed = geti "seed";
        (* RAS/endurance live inside each member image's device config;
           the manifest only carries the volume-level knobs. *)
        ras = Sero.Device.active_ras;
        endurance = Sero.Device.active_endurance;
        policy = policy_of_string (Hashtbl.find fields "policy");
        read_retry_limit = geti "retry_limit";
        retry_backoff = float_of_string (Hashtbl.find fields "retry_backoff");
        cache_capacity =
          (match Hashtbl.find fields "cache" with
          | "none" -> None
          | c -> Some (int_of_string c));
      }
    in
    let devices =
      Array.init n (fun i ->
          match Sero.Image.load (member_file path i) with
          | Ok d -> d
          | Error e ->
              failwith (Printf.sprintf "member %d: %s" i e))
    in
    let states =
      Array.init n (fun i ->
          match Hashtbl.find_opt states i with
          | Some s -> s
          | None -> failwith (Printf.sprintf "missing state for device %d" i))
    in
    let v =
      Volume.of_devices cfg ~devices ~slot_dev:!slot_dev
        ~spare_pool:!spare_pool ~states
    in
    Hashtbl.iter (fun dev e -> Trust.restore (Volume.trust v) ~dev e) trust;
    Ok v
  with
  | Failure e -> Error e
  | Sys_error e -> Error e
  | Invalid_argument e -> Error e
  | Not_found -> Error "manifest missing a required field"
