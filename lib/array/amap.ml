type t = {
  slots : int;
  replication : int;
  member_lines : int;
  blocks_per_line : int;
}

let create ~slots ~replication ~member_lines ~blocks_per_line =
  if slots < 1 then invalid_arg "Amap.create: slots < 1";
  if replication < 1 || replication > slots then
    invalid_arg "Amap.create: replication must be in [1, slots]";
  if slots mod replication <> 0 then
    invalid_arg "Amap.create: replication must divide slots";
  if member_lines < 1 then invalid_arg "Amap.create: member_lines < 1";
  if blocks_per_line < 2 then invalid_arg "Amap.create: blocks_per_line < 2";
  { slots; replication; member_lines; blocks_per_line }

let groups t = t.slots / t.replication
let logical_lines t = groups t * t.member_lines
let data_blocks_per_line t = t.blocks_per_line - 1
let n_blocks t = logical_lines t * data_blocks_per_line t

let check_line t v =
  if v < 0 || v >= logical_lines t then
    invalid_arg (Printf.sprintf "Amap: volume line %d out of range" v)

let group_of_line t v =
  check_line t v;
  v mod groups t

let local_line t v =
  check_line t v;
  v / groups t

let slots_of_line t v =
  let g = group_of_line t v in
  List.init t.replication (fun i -> (g * t.replication) + i)

let preferred_slot t v =
  let g = group_of_line t v in
  (g * t.replication) + (local_line t v mod t.replication)

let read_order t v =
  let g = group_of_line t v in
  let rot = local_line t v mod t.replication in
  List.init t.replication (fun i ->
      (g * t.replication) + ((rot + i) mod t.replication))

let line_of_local t ~slot ~local =
  if slot < 0 || slot >= t.slots then invalid_arg "Amap.line_of_local: slot";
  if local < 0 || local >= t.member_lines then
    invalid_arg "Amap.line_of_local: local";
  (local * groups t) + (slot / t.replication)

let check_vba t vba =
  if vba < 0 || vba >= n_blocks t then
    invalid_arg (Printf.sprintf "Amap: vba %d out of range" vba)

let line_of_vba t vba =
  check_vba t vba;
  vba / data_blocks_per_line t

let offset_of_vba t vba =
  check_vba t vba;
  vba mod data_blocks_per_line t

let vba_of t ~line ~offset =
  check_line t line;
  if offset < 0 || offset >= data_blocks_per_line t then
    invalid_arg "Amap.vba_of: offset";
  (line * data_blocks_per_line t) + offset

let member_pba t ~vba =
  (* Slot 0 of every line is the burned hash block. *)
  (local_line t (line_of_vba t vba) * t.blocks_per_line)
  + 1
  + offset_of_vba t vba

let pp ppf t =
  Format.fprintf ppf
    "amap{slots=%d x%d mirror, %d groups, %d lines (%d blocks/line), %d \
     logical lines, %d data blocks}"
    t.slots t.replication (groups t) t.member_lines t.blocks_per_line
    (logical_lines t) (n_blocks t)
