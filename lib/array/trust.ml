type status = Trusted | Suspect | Quarantined

type entry = {
  votes : int;
  agreements : int;
  divergences : int;
  convictions : int;
  unreadable : int;
  status : status;
}

let fresh =
  {
    votes = 0;
    agreements = 0;
    divergences = 0;
    convictions = 0;
    unreadable = 0;
    status = Trusted;
  }

type t = entry array

let create ~devices =
  if devices < 1 then invalid_arg "Trust.create: devices < 1";
  Array.make devices fresh

let devices = Array.length

let check t dev =
  if dev < 0 || dev >= Array.length t then
    invalid_arg (Printf.sprintf "Trust: device %d out of range" dev)

let entry t ~dev =
  check t dev;
  t.(dev)

let status t ~dev = (entry t ~dev).status

type charge = Agreement | Divergence | Conviction | Unreadable

let quarantine_threshold = 3

(* Status is derived from the counters, never stored ad hoc, so a
   replayed charge sequence reproduces the ledger exactly.  Quarantine
   is sticky: once quarantined (by counts or by fiat) a device never
   climbs back without an explicit [reset]. *)
let settle e =
  let strikes = e.divergences + e.convictions in
  let status =
    if e.status = Quarantined || strikes >= quarantine_threshold then
      Quarantined
    else if strikes > 0 then Suspect
    else e.status
  in
  { e with status }

let charge t ~dev c =
  check t dev;
  let e = t.(dev) in
  let e = { e with votes = e.votes + 1 } in
  let e =
    match c with
    | Agreement -> { e with agreements = e.agreements + 1 }
    | Divergence -> { e with divergences = e.divergences + 1 }
    | Conviction -> { e with convictions = e.convictions + 1 }
    | Unreadable -> { e with unreadable = e.unreadable + 1 }
  in
  t.(dev) <- settle e

let quarantine t ~dev =
  check t dev;
  t.(dev) <- { (t.(dev)) with status = Quarantined }

let reset t ~dev =
  check t dev;
  t.(dev) <- fresh

let restore t ~dev e =
  check t dev;
  t.(dev) <- e

let status_string = function
  | Trusted -> "trusted"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"

let pp_entry ppf e =
  Format.fprintf ppf
    "%s (votes %d, agree %d, diverge %d, convict %d, unreadable %d)"
    (status_string e.status) e.votes e.agreements e.divergences e.convictions
    e.unreadable

let pp ppf t =
  Array.iteri
    (fun i e -> Format.fprintf ppf "dev %d: %a@ " i pp_entry e)
    t
