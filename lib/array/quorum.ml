type line_attestation =
  | Attested of { hash : Hash.Sha256.t; voters : int list; against : int list }
  | Tie_unattested of (int * Hash.Sha256.t) list
  | All_convicted of int list
  | Line_not_heated
  | Line_offline

type verdict_counts = {
  attested : int;
  unattested : int;
  not_heated : int;
  offline : int;
  outvoted_replicas : int;
  convicted_replicas : int;
}

type report = {
  lines : (int * line_attestation) list;
  counts : verdict_counts;
  hash_reads : int;
  data_verifies : int;
}

type charge = { c_dev : int; c_charge : Trust.charge }

(* One replica's testimony: its burned meta (if clean) plus whether its
   own medium convicts it.  A replica with a valid burn over altered
   data (the magnetic-rewrite attack) is caught here by the local
   verify; a replica with internally consistent but substituted
   data+burn (the swapped-media attack) passes and is only caught by
   the cross-device hash vote. *)
type testimony =
  | Clean of Hash.Sha256.t
  | Convicted
  | Unheated

let examine v ~dev ~local =
  let d = Volume.device v ~dev in
  match Sero.Device.read_hash_block d ~line:local with
  | `Not_heated -> (Unheated, 1, 0)
  | `Torn _ | `Tampered _ -> (Convicted, 1, 0)
  | `Burned m -> (
      match Volume.entry_verify v ~dev ~line:local with
      | Sero.Tamper.Intact -> (Clean m.Sero.Device.hash, 1, 1)
      | Sero.Tamper.Not_heated | Sero.Tamper.Tampered _ -> (Convicted, 1, 1))

let attest_line_raw v ~line =
  let m = Volume.map v in
  let local = Amap.local_line m line in
  let slots =
    List.sort compare (Volume.serving_slots v ~line)
  in
  match slots with
  | [] -> (Line_offline, [], 0, 0)
  | _ ->
      let hash_reads = ref 0 and data_verifies = ref 0 in
      let testimonies =
        List.map
          (fun slot ->
            let dev = Volume.dev_of_slot v ~slot in
            let t, hr, dv = examine v ~dev ~local in
            hash_reads := !hash_reads + hr;
            data_verifies := !data_verifies + dv;
            (slot, dev, t))
          slots
      in
      let voters =
        List.filter_map
          (function s, d, Clean h -> Some (s, d, h) | _ -> None)
          testimonies
      in
      let convicted =
        List.filter_map
          (function s, d, Convicted -> Some (s, d) | _ -> None)
          testimonies
      in
      let conviction_charges =
        List.map (fun (_, d) -> { c_dev = d; c_charge = Trust.Conviction })
          convicted
      in
      let att, vote_charges =
        match voters with
        | [] ->
            if convicted <> [] then (All_convicted (List.map fst convicted), [])
            else (Line_not_heated, [])
        | _ ->
            (* Tally by burned hash. *)
            let tally = ref [] in
            List.iter
              (fun (_, _, h) ->
                match
                  List.find_opt (fun (h', _) -> Hash.Sha256.equal h h') !tally
                with
                | Some (h', n) ->
                    tally :=
                      (h', n + 1)
                      :: List.filter
                           (fun (h'', _) -> not (Hash.Sha256.equal h'' h'))
                           !tally
                | None -> tally := (h, 1) :: !tally)
              voters;
            let majority =
              List.find_opt (fun (_, n) -> 2 * n > List.length voters) !tally
            in
            (match majority with
            | Some (win, _) ->
                let yes, no =
                  List.partition (fun (_, _, h) -> Hash.Sha256.equal h win)
                    voters
                in
                ( Attested
                    {
                      hash = win;
                      voters = List.map (fun (s, _, _) -> s) yes;
                      against = List.map (fun (s, _, _) -> s) no;
                    },
                  List.map (fun (_, d, _) -> { c_dev = d; c_charge = Trust.Agreement })
                    yes
                  @ List.map
                      (fun (_, d, _) -> { c_dev = d; c_charge = Trust.Divergence })
                      no )
            | None ->
                ( Tie_unattested (List.map (fun (s, _, h) -> (s, h)) voters),
                  [] ))
      in
      (att, vote_charges @ conviction_charges, !hash_reads, !data_verifies)

let apply_charges v ~line charges =
  List.iter
    (fun { c_dev; c_charge } ->
      (match c_charge with
      | Trust.Divergence ->
          Volume.log_event v
            (Printf.sprintf "quorum: device %d outvoted on line %d" c_dev line)
      | Trust.Conviction ->
          Volume.log_event v
            (Printf.sprintf "quorum: device %d convicted by line %d" c_dev
               line)
      | Trust.Agreement | Trust.Unreadable -> ());
      Trust.charge (Volume.trust v) ~dev:c_dev c_charge;
      if Trust.status (Volume.trust v) ~dev:c_dev = Trust.Quarantined then
        Volume.quarantine_dev v ~dev:c_dev)
    charges

let attest_line v ~line =
  let att, charges, _, _ = attest_line_raw v ~line in
  apply_charges v ~line charges;
  att

let count_report lines =
  let z =
    {
      attested = 0;
      unattested = 0;
      not_heated = 0;
      offline = 0;
      outvoted_replicas = 0;
      convicted_replicas = 0;
    }
  in
  List.fold_left
    (fun c (_, att) ->
      match att with
      | Attested { against; _ } ->
          {
            c with
            attested = c.attested + 1;
            outvoted_replicas = c.outvoted_replicas + List.length against;
          }
      | Tie_unattested _ -> { c with unattested = c.unattested + 1 }
      | All_convicted convicted ->
          {
            c with
            unattested = c.unattested + 1;
            convicted_replicas = c.convicted_replicas + List.length convicted;
          }
      | Line_not_heated -> { c with not_heated = c.not_heated + 1 }
      | Line_offline -> { c with offline = c.offline + 1 })
    z lines

(* Fold raw per-line attestations (ascending line order) into a report,
   applying trust charges in that same order — the shared tail of the
   full verify and the sampled audit, so both leave byte-identical
   ledgers for the lines they cover. *)
let report_of_raw v all =
  let hash_reads = ref 0 and data_verifies = ref 0 in
  let lines =
    List.map
      (fun (line, (att, charges, hr, dv)) ->
        hash_reads := !hash_reads + hr;
        data_verifies := !data_verifies + dv;
        apply_charges v ~line charges;
        (line, att))
      all
  in
  (* A conviction count in the report must include convictions that
     rode along with attested lines, not only all-convicted ones. *)
  let convicted_total =
    List.fold_left
      (fun acc (_, (_, charges, _, _)) ->
        acc
        + List.length
            (List.filter (fun c -> c.c_charge = Trust.Conviction) charges))
      0 all
  in
  let counts =
    { (count_report lines) with convicted_replicas = convicted_total }
  in
  {
    lines;
    counts;
    hash_reads = !hash_reads;
    data_verifies = !data_verifies;
  }

let verify_volume ?(jobs = 1) v =
  let m = Volume.map v in
  let groups = Amap.groups m in
  let lines_of_group g =
    List.init (Amap.logical_lines m / groups) (fun l -> (l * groups) + g)
  in
  (* Mirror groups are disjoint device sets, so fanning groups out over
     domains touches disjoint mutable state; charges are computed pure
     and applied afterwards in ascending line order, making report and
     ledger byte-identical for any [jobs]. *)
  let per_group =
    Sim.Pool.parallel_map ~jobs
      (fun g ->
        List.map (fun line -> (line, attest_line_raw v ~line))
          (lines_of_group g))
      (List.init groups (fun g -> g))
  in
  let all =
    List.sort (fun (a, _) (b, _) -> compare a b) (List.concat per_group)
  in
  report_of_raw v all

let verify_lines v ~lines =
  let lines = List.sort_uniq compare lines in
  let ll = Amap.logical_lines (Volume.map v) in
  List.iter
    (fun line ->
      if line < 0 || line >= ll then
        invalid_arg "Quorum.verify_lines: line out of range")
    lines;
  report_of_raw v
    (List.map (fun line -> (line, attest_line_raw v ~line)) lines)

let source_meta v ~line ~exclude_slot =
  let m = Volume.map v in
  let local = Amap.local_line m line in
  let slots =
    List.sort compare
      (List.filter (fun s -> s <> exclude_slot) (Volume.serving_slots v ~line))
  in
  match slots with
  | [] -> `No_source
  | _ -> (
      let metas =
        List.filter_map
          (fun slot ->
            let dev = Volume.dev_of_slot v ~slot in
            match
              Sero.Device.read_hash_block (Volume.device v ~dev) ~line:local
            with
            | `Burned meta -> (
                match Volume.entry_verify v ~dev ~line:local with
                | Sero.Tamper.Intact -> Some (slot, meta)
                | Sero.Tamper.Not_heated | Sero.Tamper.Tampered _ -> None)
            | `Not_heated | `Torn _ | `Tampered _ -> None)
          slots
      in
      match metas with
      | [] ->
          (* No clean burned source.  If every source is simply unheated
             this line is ordinary WMRM data; any conviction among them
             makes it a dispute the rebuild must not adjudicate. *)
          let any_burn_evidence =
            List.exists
              (fun slot ->
                let dev = Volume.dev_of_slot v ~slot in
                match
                  Sero.Device.read_hash_block (Volume.device v ~dev)
                    ~line:local
                with
                | `Not_heated -> false
                | `Burned _ | `Torn _ | `Tampered _ -> true)
              slots
          in
          if any_burn_evidence then `Unattested slots else `Not_heated slots
      | (_, m0) :: _ ->
          let count h =
            List.length
              (List.filter
                 (fun (_, m) -> Hash.Sha256.equal m.Sero.Device.hash h)
                 metas)
          in
          let winner =
            List.find_opt
              (fun (_, m) -> 2 * count m.Sero.Device.hash > List.length metas)
              metas
          in
          (match winner with
          | Some (_, wm) ->
              `Majority
                ( wm,
                  List.filter_map
                    (fun (s, m) ->
                      if
                        Hash.Sha256.equal m.Sero.Device.hash
                          wm.Sero.Device.hash
                      then Some s
                      else None)
                    metas )
          | None ->
              ignore m0;
              `Unattested (List.map fst metas)))

let pp_attestation ppf = function
  | Attested { hash; voters; against } ->
      Format.fprintf ppf "attested %s (%d for%s)"
        (String.sub (Hash.Sha256.to_hex hash) 0 12)
        (List.length voters)
        (match against with
        | [] -> ""
        | l -> Printf.sprintf ", outvoted slots %s"
                 (String.concat "," (List.map string_of_int l)))
  | Tie_unattested vs ->
      Format.fprintf ppf "UNATTESTED: %d-way tie" (List.length vs)
  | All_convicted slots ->
      Format.fprintf ppf "UNATTESTED: all replicas convicted (slots %s)"
        (String.concat "," (List.map string_of_int slots))
  | Line_not_heated -> Format.pp_print_string ppf "not heated"
  | Line_offline -> Format.pp_print_string ppf "OFFLINE"

let pp_report ppf r =
  Format.fprintf ppf
    "quorum: %d attested, %d unattested, %d not heated, %d offline; %d \
     outvoted, %d convicted replicas; cost %d hash reads + %d data verifies"
    r.counts.attested r.counts.unattested r.counts.not_heated
    r.counts.offline r.counts.outvoted_replicas r.counts.convicted_replicas
    r.hash_reads r.data_verifies
