(** Volume address map: mirrored striping of heat lines over array
    slots.

    The array is RAID-10-shaped: [slots] devices are partitioned into
    [groups = slots / replication] mirror groups of [replication]
    devices each; logical (volume) line [v] lives in group
    [v mod groups] at local line [v / groups] on {e every} device of
    that group.

    Placing all replicas of a line at the {e same} local line is what
    makes cross-device attestation possible at all: a SERO burned hash
    covers the line's data blocks {e and their physical addresses}, so
    replicas burn byte-identical hashes only if their local geometry
    agrees.  A rotating (RAID-5 style) placement would make every
    replica's hash legitimately different and reduce the quorum to
    comparing recomputed data hashes — exactly the self-reported
    evidence the quorum must not trust. *)

type t = {
  slots : int;  (** Data-bearing array slots (excludes spares). *)
  replication : int;  (** Replicas per logical line; divides [slots]. *)
  member_lines : int;  (** Usable lines on each member device. *)
  blocks_per_line : int;  (** 2{^line_exp}; slot 0 of a line = hash block. *)
}

val create :
  slots:int -> replication:int -> member_lines:int -> blocks_per_line:int -> t
(** @raise Invalid_argument unless [1 <= replication <= slots],
    [replication] divides [slots], and the geometry is positive. *)

val groups : t -> int
(** Mirror groups, [slots / replication]. *)

val logical_lines : t -> int
(** Volume capacity in lines: [groups * member_lines]. *)

val data_blocks_per_line : t -> int
(** [blocks_per_line - 1] (the hash block is not addressable). *)

val n_blocks : t -> int
(** Volume capacity in data blocks. *)

(** {1 Line placement} *)

val group_of_line : t -> int -> int
val local_line : t -> int -> int
(** Local line index of a volume line on each of its replicas. *)

val slots_of_line : t -> int -> int list
(** The [replication] slots holding a volume line's replicas, in
    ascending slot order. *)

val preferred_slot : t -> int -> int
(** The replica a healthy read tries first — rotates with the local
    line so mirror members share the read load. *)

val read_order : t -> int -> int list
(** [slots_of_line] rotated so {!preferred_slot} comes first. *)

val line_of_local : t -> slot:int -> local:int -> int
(** Inverse placement: the volume line stored at [local] on [slot]. *)

(** {1 Block addressing}

    A volume block address ([vba]) ranges over data blocks only; the
    per-line hash blocks are owned by the attestation machinery and
    never surfaced. *)

val line_of_vba : t -> int -> int
val offset_of_vba : t -> int -> int
(** Data offset within the line, in [0, data_blocks_per_line). *)

val vba_of : t -> line:int -> offset:int -> int

val member_pba : t -> vba:int -> int
(** The physical block address of [vba] on {e each} of its replicas
    (identical across the mirror group by construction). *)

val pp : Format.formatter -> t -> unit
