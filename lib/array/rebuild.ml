type error = No_spare | Slot_healthy | No_source of int

type report = {
  r_slot : int;
  r_old_dev : int;
  r_new_dev : int;
  lines_scanned : int;
  heated_rebuilt : int;
  data_blocks_copied : int;
  blanks_skipped : int;
  unattested_skipped : int list;
  reattest_failed : (int * string) list;
}

exception Abort of error

let bg = Sero.Queue.Background

(* First Ok wins across the agreeing sources; queue-level retry/backoff
   already absorbed transients before an Error surfaces here. *)
let read_from_sources v ~sources ~pba =
  let rec go all_blank = function
    | [] -> if all_blank then `Blank else `Unreadable
    | slot :: rest -> (
        let dev = Volume.dev_of_slot v ~slot in
        match Volume.entry_read v ~dev ~prio:bg ~pba with
        | Ok payload -> `Data payload
        | Error Sero.Device.Blank -> go all_blank rest
        | Error _ -> go false rest)
  in
  go true sources

let heat_spare v ~spare ~line ~timestamp =
  let q = Volume.queue v ~dev:spare in
  let result = ref None in
  Sero.Queue.submit_heat_line q ~prio:bg ~line ~timestamp (fun r ->
      result := Some r);
  Sero.Queue.drain q;
  Option.get !result

(* Copy one local line onto the spare and, when the sources' mini-quorum
   yields a majority burn, re-burn the original hash + timestamp. *)
let rebuild_line v ~slot ~spare ~local acc =
  let m = Volume.map v in
  let vline = Amap.line_of_local m ~slot ~local in
  let lay = Sero.Device.layout (Volume.device v ~dev:spare) in
  let data_pbas = Sero.Layout.data_blocks_of_line lay local in
  let copied = ref 0 and blanks = ref 0 in
  let failed = ref [] and unattested = ref [] and heated = ref 0 in
  let copy_from sources =
    let payloads =
      List.map (fun pba -> (pba, read_from_sources v ~sources ~pba)) data_pbas
    in
    let unreadable =
      List.filter_map
        (fun (pba, r) -> if r = `Unreadable then Some pba else None)
        payloads
    in
    (* Contiguous runs of real data go out as single span requests. *)
    let flush_run start run =
      if run <> [] then
        let arr = Array.of_list (List.rev run) in
        Array.iter
          (function
            | Ok () -> incr copied
            | Error e ->
                failed :=
                  ( vline,
                    Format.asprintf "spare refused write: %a"
                      Sero.Device.pp_write_error e )
                  :: !failed)
          (Volume.entry_write_span v ~dev:spare ~prio:bg ~pba:start arr)
    in
    let rec walk start run = function
      | [] -> flush_run start run
      | (pba, `Data payload) :: rest ->
          if run = [] then walk pba [ payload ] rest
          else walk start (payload :: run) rest
      | (pba, (`Blank | `Unreadable)) :: rest ->
          flush_run start run;
          incr blanks;
          ignore pba;
          walk 0 [] rest
    in
    walk 0 [] payloads;
    unreadable
  in
  (match Quorum.source_meta v ~line:vline ~exclude_slot:slot with
  | `No_source -> raise (Abort (No_source vline))
  | `Majority (meta, agreeing) -> (
      (* Idempotent restart: a spare line already burned from an earlier
         interrupted rebuild is accepted iff it reproduces the majority
         hash; anything else is surfaced, never overwritten. *)
      match Sero.Device.read_hash_block (Volume.device v ~dev:spare) ~line:local with
      | `Burned b ->
          if Hash.Sha256.equal b.Sero.Device.hash meta.Sero.Device.hash then
            incr heated
          else
            failed :=
              (vline, "spare already burned with a different hash") :: !failed
      | `Tampered _ ->
          failed := (vline, "spare line is tamper-evident") :: !failed
      | `Not_heated | `Torn _ -> (
          let unreadable = copy_from agreeing in
          if unreadable <> [] then
            failed :=
              ( vline,
                Printf.sprintf "source data unreadable at %d block(s)"
                  (List.length unreadable) )
              :: !failed
          else
            match
              heat_spare v ~spare ~line:local
                ~timestamp:meta.Sero.Device.timestamp
            with
            | Ok h ->
                if Hash.Sha256.equal h meta.Sero.Device.hash then incr heated
                else
                  failed :=
                    (vline, "re-burn produced a different hash") :: !failed
            | Error e ->
                failed :=
                  ( vline,
                    Format.asprintf "re-burn failed: %a"
                      Sero.Device.pp_heat_error e )
                  :: !failed))
  | `Not_heated sources -> ignore (copy_from sources)
  | `Unattested sources ->
      (* Disputed line: carry the bytes of whoever still answers, but
         burn nothing — re-attesting one side of a tie would forge the
         very evidence the quorum refused to settle. *)
      ignore (copy_from sources);
      unattested := vline :: !unattested);
  {
    acc with
    lines_scanned = acc.lines_scanned + 1;
    heated_rebuilt = acc.heated_rebuilt + !heated;
    data_blocks_copied = acc.data_blocks_copied + !copied;
    blanks_skipped = acc.blanks_skipped + !blanks;
    unattested_skipped = acc.unattested_skipped @ List.rev !unattested;
    reattest_failed = acc.reattest_failed @ List.rev !failed;
  }

let rebuild_slot ?(force = false) v ~slot =
  let old_dev = Volume.dev_of_slot v ~slot in
  let states = Volume.member_states v in
  let healthy =
    states.(old_dev) = Volume.Active
    && Trust.status (Volume.trust v) ~dev:old_dev = Trust.Trusted
  in
  match Volume.spare_pool v with
  | [] -> Error No_spare
  | spare :: _ -> (
      if healthy && not force then Error Slot_healthy
      else begin
        (* An Active-but-suspect source must not vote for its own
           replacement's contents. *)
        if states.(old_dev) = Volume.Active then
          Volume.quarantine_dev v ~dev:old_dev;
        let zero =
          {
            r_slot = slot;
            r_old_dev = old_dev;
            r_new_dev = spare;
            lines_scanned = 0;
            heated_rebuilt = 0;
            data_blocks_copied = 0;
            blanks_skipped = 0;
            unattested_skipped = [];
            reattest_failed = [];
          }
        in
        match
          List.fold_left
            (fun acc local -> rebuild_line v ~slot ~spare ~local acc)
            zero
            (List.init (Volume.map v).Amap.member_lines (fun l -> l))
        with
        | report ->
            Sero.Device.refresh_heated_cache (Volume.device v ~dev:spare);
            Volume.swap_in_spare v ~slot ~spare;
            Volume.note_rebuilt v;
            Volume.log_event v
              (Printf.sprintf
                 "rebuild: slot %d done (%d lines, %d re-burned, %d blocks \
                  copied, %d unattested, %d failed)"
                 slot report.lines_scanned report.heated_rebuilt
                 report.data_blocks_copied
                 (List.length report.unattested_skipped)
                 (List.length report.reattest_failed));
            Ok report
        | exception Abort e -> Error e
      end)

let pp_report ppf r =
  Format.fprintf ppf
    "rebuild slot %d: device %d -> %d, %d lines scanned, %d re-burned, %d \
     blocks copied, %d blanks, %d unattested%s"
    r.r_slot r.r_old_dev r.r_new_dev r.lines_scanned r.heated_rebuilt
    r.data_blocks_copied r.blanks_skipped
    (List.length r.unattested_skipped)
    (match r.reattest_failed with
    | [] -> ""
    | l ->
        Printf.sprintf ", %d REATTEST FAILURES (%s)" (List.length l)
          (String.concat "; "
             (List.map (fun (ln, why) -> Printf.sprintf "line %d: %s" ln why) l)))
