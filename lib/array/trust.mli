(** Per-device trust ledger.

    The health ledger ({!Sero.Health}) tracks a device's {e physical}
    margins; the trust ledger tracks its {e testimonial} record: how
    often its burned hashes agreed with the mirror-group majority.  A
    device whose replica diverges from a clean majority is charged with
    a divergence and becomes [Suspect] — it keeps serving reads (its
    data may still be good block-by-block) but drops to the back of
    every read order and its vote carries a flag.  A device caught with
    a locally self-evident tampered line (its own burned hash refutes
    its data) is charged with a conviction.  Enough strikes and the
    device is [Quarantined]: dropped from quorums and read orders
    entirely, awaiting rebuild onto a spare. *)

type status = Trusted | Suspect | Quarantined

type entry = {
  votes : int;  (** Quorum rounds this device participated in. *)
  agreements : int;  (** Votes that matched the winning hash. *)
  divergences : int;  (** Clean burned hash, outvoted by the majority. *)
  convictions : int;  (** Locally self-evident tampered/torn lines. *)
  unreadable : int;  (** Hash block unreadable during a quorum. *)
  status : status;
}

type t

val create : devices:int -> t
(** All devices start [Trusted] with empty ledgers. *)

val devices : t -> int
val entry : t -> dev:int -> entry
val status : t -> dev:int -> status

(** {1 Charges}

    Each mutator is one ledger line; status transitions are a pure
    function of the accumulated counts so replaying the same charges
    always yields the same ledger. *)

type charge =
  | Agreement
  | Divergence
  | Conviction
  | Unreadable

val charge : t -> dev:int -> charge -> unit
(** Record one charge.  First [Divergence] or [Conviction] demotes
    [Trusted] to [Suspect]; accumulating {!quarantine_threshold}
    divergences + convictions demotes to [Quarantined].  [Agreement]
    never promotes — rehabilitation requires an explicit {!reset}
    (i.e. a rebuild onto fresh media). *)

val quarantine_threshold : int

val quarantine : t -> dev:int -> unit
(** Force [Quarantined] (operator decision or rebuild source). *)

val reset : t -> dev:int -> unit
(** Fresh [Trusted] entry — used when a spare takes over a slot. *)

val restore : t -> dev:int -> entry -> unit
(** Install a persisted entry verbatim (array image load). *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
