(** Cross-device attestation quorum.

    A single device's {!Sero.Device.verify_line} answers "does this
    replica's data match this replica's burned hash?" — self-reported
    testimony.  The quorum compares the {e burned hashes themselves}
    across a mirror group (replicas share local geometry, so honest
    burns are byte-identical): a replica whose burn diverges from the
    majority is outvoted and charged in the {!Trust} ledger, however
    internally consistent its own story is.

    Voting rules:
    - A replica whose own verdict is [Tampered]/[Partially_burned] is
      {e convicted} by its own medium (write-once burns cannot be
      re-burned to cover new data) — it is charged a conviction and
      excluded from the electorate rather than letting a self-evident
      forgery dilute the vote.
    - The remaining clean burned replicas vote by hash; strict
      majority wins, diverging voters are charged.
    - A tie (possible once losses shrink the electorate) is surfaced
      as [Tie_unattested] — never silently resolved.
    - Unreadable hash blocks are charged as such but don't vote. *)

type line_attestation =
  | Attested of { hash : Hash.Sha256.t; voters : int list; against : int list }
      (** Majority hash; [voters]/[against] are slot lists. *)
  | Tie_unattested of (int * Hash.Sha256.t) list
      (** Clean burns split with no strict majority. *)
  | All_convicted of int list
      (** Every serving replica is self-evidently tampered/torn. *)
  | Line_not_heated
      (** No serving replica has a burn (and none is tampered). *)
  | Line_offline  (** The mirror group has no serving member. *)

type verdict_counts = {
  attested : int;
  unattested : int;  (** Ties + all-convicted. *)
  not_heated : int;
  offline : int;
  outvoted_replicas : int;  (** Divergence charges applied. *)
  convicted_replicas : int;  (** Conviction charges applied. *)
}

type report = {
  lines : (int * line_attestation) list;  (** Ascending volume line. *)
  counts : verdict_counts;
  hash_reads : int;  (** Electrical hash-block reads spent. *)
  data_verifies : int;  (** Full data verifies spent. *)
}

type charge = { c_dev : int; c_charge : Trust.charge }

val attest_line_raw :
  Volume.t -> line:int -> line_attestation * charge list * int * int
(** Compute a line's attestation {e without} touching the trust ledger;
    returns the pending charges and the (hash_reads, data_verifies)
    cost.  Pure with respect to volume state, so calls over distinct
    mirror groups commute — the parallel-verify primitive. *)

val attest_line : Volume.t -> line:int -> line_attestation
(** {!attest_line_raw} + apply charges to the trust ledger (crossing
    the quarantine threshold quarantines the device in the volume). *)

val verify_volume : ?jobs:int -> Volume.t -> report
(** Attest every logical line.  [jobs] (default 1) fans mirror groups
    out via {!Sim.Pool.parallel_map}; charges are applied sequentially
    in ascending line order afterwards, so the report and the ledger
    are byte-identical for any [jobs]. *)

val verify_lines : Volume.t -> lines:int list -> report
(** Budget-limited sampled audit: attest only the given lines (sorted,
    deduplicated), applying trust charges exactly as {!verify_volume}
    would for those lines.  This is the defender's unit of array audit
    spend — a campaign that can afford k attestations per window calls
    this with its k sampled lines and pays [hash_reads]/[data_verifies]
    for precisely those.  A coordinated mirror-split tamper (every
    replica of a line rewritten) still surfaces the moment its line is
    sampled: write-once burns cannot be re-burned, so each replica
    self-convicts and the line reports [All_convicted], never a clean
    majority.
    @raise Invalid_argument if a line is out of range. *)

val source_meta :
  Volume.t ->
  line:int ->
  exclude_slot:int ->
  [ `Majority of Sero.Device.burned_meta * int list
    (** Winning burned meta + the agreeing source slots. *)
  | `Unattested of int list  (** Clean sources tied / all convicted. *)
  | `Not_heated of int list  (** Readable sources, none burned. *)
  | `No_source ]
(** The mini-quorum a rebuild runs over a line's surviving replicas
    (excluding the slot being rebuilt).  Same voting rules as
    {!attest_line_raw}; no trust charges. *)

val pp_attestation : Format.formatter -> line_attestation -> unit
val pp_report : Format.formatter -> report -> unit
