(** Array image persistence.

    A saved array is a text manifest ([SEROARR1]) next to one
    {!Sero.Image} file per member device ([<path>.d<i>]).  The
    manifest carries the volume geometry, the slot map, the spare
    pool, per-device member states and the trust ledger; the member
    images carry the media themselves — including every burned hash,
    so a reloaded array re-attests exactly as the saved one did.

    Runtime state (queues, caches, op counter, armed fault plans) is
    deliberately not persisted: a load is a power-on, and anything that
    matters across power-ons must be on the media. *)

val save : Volume.t -> string -> unit
(** Write [path] (manifest) and [path.d<i>] member images. *)

val load : string -> (Volume.t, string) result
(** Rebuild a volume from a manifest written by {!save}. *)
