(** Rebuild-onto-spare: evacuate-and-re-attest at array scale.

    A failed or outvoted member's slot is reconstructed onto a pooled
    spare device from the surviving replicas: for every local line a
    mini-quorum over the sources picks the majority burned hash, the
    data blocks are copied from agreeing sources, and the spare's line
    is re-burned with the {e original} hash and timestamp — so the
    rebuilt replica's burned area is byte-identical to the pre-failure
    one and tamper evidence survives the move (the same contract as
    {!Sero.Device.evacuate_line}, one level up).

    Crash ordering: all copying and burning happens on the pooled
    spare, which serves no reads; the volume's slot map is swapped only
    after every line is done ({!Volume.swap_in_spare} is the commit
    point).  A crash mid-rebuild leaves the volume exactly as degraded
    as before, and re-running the rebuild is idempotent — already
    burned spare lines are accepted iff their hash matches the
    majority, so an interrupted rebuild can never launder evidence.

    All rebuild IO is [Background] traffic through the members'
    request pipelines, with the queues' retry/backoff absorbing
    transient read errors on the surviving sources. *)

type error =
  | No_spare  (** The pool is empty. *)
  | Slot_healthy
      (** The slot's member is Active and Trusted; pass [~force:true]
          to rebuild anyway (e.g. preventive migration). *)
  | No_source of int
      (** Volume line with no serving replica besides the slot being
          rebuilt — its stripe would be lost, so nothing is committed. *)

type report = {
  r_slot : int;
  r_old_dev : int;
  r_new_dev : int;
  lines_scanned : int;
  heated_rebuilt : int;  (** Lines re-burned with their original hash. *)
  data_blocks_copied : int;
  blanks_skipped : int;
  unattested_skipped : int list;
      (** Lines whose sources tied or were all convicted: data is
          copied from the first readable source but {e no} hash is
          burned — burning one side of a dispute would manufacture
          evidence. *)
  reattest_failed : (int * string) list;
      (** Lines whose re-burn failed or reproduced the wrong hash;
          surfaced, never papered over. *)
}

val rebuild_slot : ?force:bool -> Volume.t -> slot:int -> (report, error) result
(** Rebuild [slot] onto the first pooled spare.  On [Ok], the spare
    serves the slot, the old device is quarantined as a carcass, and
    the spare's trust entry is fresh. *)

val pp_report : Format.formatter -> report -> unit
