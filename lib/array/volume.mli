(** A sharded SERO volume: N member devices behind one {!Amap}.

    Each member is a full per-device stack — its own {!Sero.Device}
    (with RAS and endurance lifecycle), its own DES clock and
    {!Sero.Queue} request pipeline, optionally its own {!Sero.Bcache} —
    so a volume is a fleet in miniature, not one device with N platters.
    The volume adds what no single device can give:

    - {b Replication}: every write fans out to all serving replicas of
      the line's mirror group; every read walks the group's
      deterministic read order and falls through device errors, so a
      lost, read-only, quarantined or locally-corrupt member degrades
      service instead of ending it.
    - {b A trust boundary}: the per-device {!Trust} ledger (fed by
      {!Quorum}) decides which replicas are asked first and which are
      dropped from quorums entirely.
    - {b Scripted multi-device failure}: an installed
      {!Fault.Plan.array_plan} arms per-member injectors under derived
      per-member seeds and fires whole-device loss / replica tamper
      events at volume-operation boundaries — every disaster is
      replayable.

    Determinism: members are independent DES worlds, so any fan-out
    over distinct mirror groups commutes; {!Quorum.verify_volume}
    exploits this with {!Sim.Pool}. *)

type member_state =
  | Active
  | Lost  (** Whole-device loss: the member stops answering. *)
  | Quarantined_member
      (** Dropped by the trust ledger or retired as a rebuilt-over
          carcass; kept attached as evidence, never served. *)

type config = {
  slots : int;
  replication : int;
  spares : int;
  member_blocks : int;  (** Blocks per member device. *)
  line_exp : int;
  seed : int;  (** Base seed; member [i] gets [seed + i]. *)
  ras : Sero.Device.ras;
  endurance : Sero.Device.endurance;
  policy : Probe.Sched.policy;
  read_retry_limit : int;
  retry_backoff : float;
  cache_capacity : int option;  (** Per-member bcache; [None] = uncached. *)
}

val default_config :
  ?slots:int ->
  ?replication:int ->
  ?spares:int ->
  ?member_blocks:int ->
  ?line_exp:int ->
  ?seed:int ->
  ?ras:Sero.Device.ras ->
  ?endurance:Sero.Device.endurance ->
  ?policy:Probe.Sched.policy ->
  ?read_retry_limit:int ->
  ?retry_backoff:float ->
  ?cache_capacity:int option ->
  unit ->
  config
(** 4 slots mirrored in pairs, 1 spare, 128-block members in lines of
    8, seed 42, active RAS and endurance, elevator scheduling, 2 read
    retries, per-member 32-block caches. *)

type t

val create : config -> t
(** Fresh volume: [slots + spares] new devices, all Active, spares
    pooled.  @raise Invalid_argument on bad geometry (see {!Amap}). *)

val of_devices :
  config ->
  devices:Sero.Device.t array ->
  slot_dev:int array ->
  spare_pool:int list ->
  states:member_state array ->
  t
(** Re-assemble a volume around existing devices (array image load,
    crash-remount tests).  Fresh queues/caches are built per member;
    trust starts clean — restore it via {!trust} + {!Trust.restore}.
    @raise Invalid_argument on inconsistent geometry or indices. *)

(** {1 Introspection} *)

val cfg : t -> config
val map : t -> Amap.t
val trust : t -> Trust.t
val n_devices : t -> int
val device : t -> dev:int -> Sero.Device.t
val queue : t -> dev:int -> Sero.Queue.t
val dev_of_slot : t -> slot:int -> int
val slot_of_dev : t -> dev:int -> int option
val spare_pool : t -> int list
val member_states : t -> member_state array
(** A copy; indexed by device. *)

val serving_slots : t -> line:int -> int list
(** The line's replicas that are Active, in trust-then-rotation read
    order (Trusted before Suspect; Quarantined excluded). *)

type volume_state = Optimal | Degraded | Critical

val volume_state : t -> volume_state
(** [Optimal]: every slot Active.  [Critical]: some mirror group has
    {e no} Active member (that stripe of lines is offline).
    [Degraded]: anything between. *)

val pp_volume_state : Format.formatter -> volume_state -> unit
val pp_member_state : Format.formatter -> member_state -> unit

(** {1 Member state transitions} *)

val fail_slot : t -> slot:int -> unit
(** Whole-device loss of the member serving [slot]. *)

val quarantine_dev : t -> dev:int -> unit
(** Drop a device from service (trust crossing, operator, rebuild).
    Also marks its trust entry Quarantined. *)

val revive_dev : t -> dev:int -> unit
(** Re-admit a Lost device (power restored) — trust is unchanged. *)

(** {1 Block and line IO}

    All addresses are volume addresses ({!Amap}).  Every call ticks the
    volume operation counter, which is the clock for installed
    array-plan events. *)

type replica_fault =
  | Device_error of Sero.Device.read_error
  | Failed_verify
      (** The replica flunked read-time verification (see
          {!read_block}); its data was never served. *)

type read_error =
  | Volume_blank  (** No serving replica holds a frame. *)
  | Volume_offline  (** The line's mirror group has no serving member. *)
  | Replica_errors of (int * replica_fault) list
      (** Every serving replica failed; per-slot detail in read order. *)

type write_error =
  | No_writable_replica
      (** No serving member of the group accepts writes (lost,
          quarantined or endurance read-only). *)
  | Rejected of Sero.Device.write_error
      (** Semantic refusal (heated line, reserved block) — mirrors
          agree, the write is wrong. *)

type heat_error =
  | Heat_offline
  | Replica_heat_errors of (int * Sero.Device.heat_error) list
  | Heat_diverged of (int * Hash.Sha256.t) list
      (** Replicas burned unequal hashes: their data diverged before
          the heat.  The burns are already on the media — the quorum
          will adjudicate. *)

val read_block :
  ?prio:Sero.Queue.prio ->
  ?tenant:int ->
  t ->
  vba:int ->
  (string, read_error) result
(** Walks the line's serving replicas in read order and returns the
    first that answers.  {b Verify-on-first-read}: before a replica of
    a heated line first serves data, the member verifies the whole
    line against its burned hash; a failing replica is skipped
    ([Failed_verify]) so tampered bytes are never served — even if the
    honest mirrors (and their audit evidence) are lost later.
    Verdicts are cached per (device, line) and invalidated by medium
    mutations, so the check costs one line verify per epoch, not per
    read.  Rejection here does not charge trust — convictions are the
    {!Quorum}'s job. *)

val write_block :
  ?prio:Sero.Queue.prio ->
  ?tenant:int ->
  t ->
  vba:int ->
  string ->
  (unit, write_error) result

val heat_line :
  ?tenant:int ->
  t ->
  line:int ->
  ?timestamp:float ->
  unit ->
  (Hash.Sha256.t, heat_error) result
(** Heat the line on every serving replica with one shared timestamp
    (default: the first serving member's clock), so the burned areas
    are byte-comparable.  [Already_heated] on a subset (e.g. after a
    crash between replicas) is not an error if the re-read hashes
    agree with the fresh burns. *)

val is_line_heated : t -> line:int -> bool
(** True if any serving replica has the line heated. *)

val flush : t -> unit
(** Flush every member's cache (if any) and drain every member queue. *)

(** {1 Fault plans} *)

val install_plan : t -> Fault.Plan.array_plan -> unit
(** Arm per-member injectors (skipping {!Fault.Plan.quiet} member
    plans) and schedule the plan's array events against the volume op
    counter.  Events with [at_op <= ops] already passed fire on the
    next operation. *)

val ops : t -> int
(** Volume operations since creation (the array-event clock). *)

val injector : t -> dev:int -> Fault.Injector.t option

val fault_ledger : t -> string
(** Replayable merged ledger: array events in firing order, then each
    member's injector ledger. *)

val log_event : t -> string -> unit
(** Append a line to the volume event log (quorum and rebuild use
    this). *)

val events : t -> string list
(** Volume event log, oldest first. *)

(** {1 Statistics} *)

type stats = {
  v_state : volume_state;
  devices : int;
  active_members : int;
  spares_left : int;
  logical_lines : int;
  data_blocks : int;
  heated_lines : int;
  reads : int;
  writes : int;
  heats : int;
  degraded_reads : int;  (** Reads served by a non-preferred replica. *)
  read_rejects : int;
      (** Replica read attempts refused by read-time verification. *)
  rebuilds : int;
}

val stats : t -> stats
val note_rebuilt : t -> unit
val pp_stats : Format.formatter -> stats -> unit

(** {1 Internal surface (quorum/rebuild/image)} *)

val entry_read :
  ?tenant:int ->
  t ->
  dev:int ->
  prio:Sero.Queue.prio ->
  pba:int ->
  (string, Sero.Device.read_error) result
(** Read through the member's cache/queue stack without ticking the
    volume op counter (rebuild source traffic).  [tenant] (default [0])
    tags the member-queue request for fair-share accounting. *)

val entry_verify : t -> dev:int -> line:int -> Sero.Tamper.verdict
(** {!Sero.Device.verify_line} on a member's {e local} line, flushing
    its cache first so the verdict judges the durable medium. *)

val entry_write_span :
  ?tenant:int ->
  t ->
  dev:int ->
  prio:Sero.Queue.prio ->
  pba:int ->
  string array ->
  (unit, Sero.Device.write_error) result array

val swap_in_spare : t -> slot:int -> spare:int -> unit
(** Commit point of a rebuild: [slot] is now served by device [spare]
    (removed from the pool); the old device keeps its state as a
    carcass.  Resets the spare's trust entry. *)

val set_spare_pool : t -> int list -> unit
(** Image restore only. *)
