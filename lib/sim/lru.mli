(** A small polymorphic LRU map: hash table plus intrusive recency
    list, O(1) find/add/remove/evict.

    Shared by the device-level block cache ([Sero.Bcache]) and the LFS
    inode/pointer caches ([Lfs.State]) so every bounded cache in the
    tree evicts with the same, tested policy.

    Capacity is a {e soft} bound: entries the [evictable] predicate
    rejects (e.g. dirty inodes that exist nowhere else yet) are skipped
    during eviction, so the map can temporarily exceed [capacity] when
    everything old is pinned.  It shrinks back as soon as unpinned
    entries return. *)

type ('k, 'v) t

val create :
  ?evictable:('k -> 'v -> bool) -> capacity:int -> unit -> ('k, 'v) t
(** [capacity] must be positive.  [evictable] (default: everything)
    guards entries against eviction; pinned entries still count against
    the capacity. *)

val capacity : ('k, 'v) t -> int
val set_capacity : ('k, 'v) t -> int -> ('k * 'v) list
(** Resize; returns the entries evicted to fit the new bound (LRU
    first). *)

val trim : ('k, 'v) t -> ('k * 'v) list
(** Run the eviction walk now.  Eviction otherwise happens only on
    insertion, so a map whose excess entries were all pinned stays over
    capacity even after the pins release; call this at quiescent points
    (e.g. after a flush) to shed them.  Returns the evicted bindings,
    LRU first. *)

val length : ('k, 'v) t -> int
val mem : ('k, 'v) t -> 'k -> bool

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup that marks the entry most-recently used. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency. *)

val is_head : ('k, 'v) t -> 'k -> bool
(** Whether [k] is the most-recently-used entry — O(1), no hashing, no
    recency change.  For [k] at the head, {!find} is a no-op on the
    recency list, which lets callers keep a last-hit shortcut that is
    observationally identical to calling {!find}. *)

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) list
(** Insert or replace (either way the entry becomes most-recently
    used), then evict least-recently-used evictable entries until
    within capacity.  Returns the evicted bindings, LRU first. *)

val add_lru : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) list
(** Insert at the {e least}-recently-used end — for speculative entries
    (prefetches) that have not earned recency yet: they are first in
    line for eviction until a {!find} promotes them.  Replacing an
    existing binding keeps its current recency. *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iteration order is unspecified. *)

val fold : ('k -> 'v -> 'a -> 'a) -> ('k, 'v) t -> 'a -> 'a

val to_list_mru : ('k, 'v) t -> ('k * 'v) list
(** Bindings most-recently-used first (for tests and debugging). *)
