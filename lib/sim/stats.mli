(** Streaming measurement counters used by the experiment harness:
    mean/variance via Welford's algorithm plus an exact reservoir of all
    samples for percentiles (experiments are small enough to keep them). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Sample standard deviation; 0 for fewer than 2 samples. *)

val min_value : t -> float
val max_value : t -> float
(** Both 0 when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank on the recorded samples.
    0 when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float
(** The SLO quantiles ({!percentile} at 0.50 / 0.95 / 0.99) — the
    ledgers and experiment tables all report the same three, so they
    get names. *)

val quantiles : t -> float * float * float
(** [(p50, p95, p99)] from {e one} sort of the sample reservoir —
    cheaper than three {!percentile} calls on large samples.  The sort
    is memoised until the next {!add}, so repeated quantile reports on
    the same counter (the SLO ledgers, the fleet summaries) sort at
    most once per batch. *)

val merge : t -> t -> t
(** Combined statistics of two counters (name taken from the first). *)

val merge_many : ?name:string -> t list -> t
(** Deterministic fleet-wide merge: moments combine pairwise (Chan et
    al.) in list order and sample reservoirs merge sorted-to-sorted, so
    the result is a pure function of the shard sequence — byte-identical
    for any worker count — and its quantile cache is already warm.
    [name] defaults to the first counter's name ("" when empty). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: n, mean, sd, min, p50, p99, max. *)

(** Simple fixed-width histogram for utilisation plots. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> bins:int -> h
  val add : h -> float -> unit
  val counts : h -> int array
  val bin_label : h -> int -> float
  (** Midpoint of bin [i]. *)

  val total : h -> int
  val pp : Format.formatter -> h -> unit
end
