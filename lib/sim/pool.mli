(** Domain-parallel map for the embarrassingly parallel experiment
    sweeps.

    Every sweep cell builds its own seeded medium/device/PRNG, so cells
    are independent and the only requirement on the pool is that the
    output order equals the input order — which makes parallel runs
    bit-identical to sequential ones.  Built on raw [Domain.spawn] with
    an atomic chunk cursor (OCaml 5 stdlib only). *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] computed on [jobs] domains
    (including the calling one).  Results are returned in input order.
    If any application raises, the first exception in input order is
    re-raised after all domains join; with [jobs = 1] (or a singleton
    pool) the work runs entirely in the caller.  [jobs] defaults to
    {!set_jobs}'s value, else the [SERO_JOBS] environment variable,
    else [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [jobs < 1]. *)

val set_jobs : int -> unit
(** Set the process-wide default worker count (overrides [SERO_JOBS]).
    @raise Invalid_argument if below 1. *)

val jobs : unit -> int
(** The default worker count currently in effect. *)
