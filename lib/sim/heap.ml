type 'a t = {
  mutable keys : float array;
  mutable stamps : int array;
  mutable vals : 'a option array;
  mutable size : int;
  mutable next_stamp : int;
  mutable work : int;
}

let initial_cap = 16

let create () =
  {
    keys = Array.make initial_cap 0.;
    stamps = Array.make initial_cap 0;
    vals = Array.make initial_cap None;
    size = 0;
    next_stamp = 0;
    work = 0;
  }

let is_empty t = t.size = 0
let size t = t.size
let capacity t = Array.length t.keys
let work t = t.work

let resize_to t cap =
  let keys = Array.make cap 0.
  and stamps = Array.make cap 0
  and vals = Array.make cap None in
  Array.blit t.keys 0 keys 0 t.size;
  Array.blit t.stamps 0 stamps 0 t.size;
  Array.blit t.vals 0 vals 0 t.size;
  t.keys <- keys;
  t.stamps <- stamps;
  t.vals <- vals

let grow t = resize_to t (2 * Array.length t.keys)

(* Smallest power-of-two capacity (>= initial_cap) holding [size]. *)
let snug_cap size =
  let cap = ref initial_cap in
  while !cap < size do
    cap := 2 * !cap
  done;
  !cap

let trim t =
  let want = snug_cap t.size in
  if want < Array.length t.keys then resize_to t want

let swap t i j =
  let k = t.keys.(i) and s = t.stamps.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.stamps.(i) <- t.stamps.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.stamps.(j) <- s;
  t.vals.(j) <- v

(* Lexicographic (key, insertion stamp): equal keys pop in push order,
   which is what makes the heap — and everything above it — stable.
   Every comparison bumps [work], the deterministic effort counter the
   scheduler benches ratio against {!Wheel.work}. *)
let less t i j =
  t.work <- t.work + 1;
  t.keys.(i) < t.keys.(j)
  || (t.keys.(i) = t.keys.(j) && t.stamps.(i) < t.stamps.(j))

let push t key v =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.stamps.(t.size) <- t.next_stamp;
  t.next_stamp <- t.next_stamp + 1;
  t.vals.(t.size) <- Some v;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && less t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek t =
  if t.size = 0 then None
  else
    match t.vals.(0) with Some v -> Some (t.keys.(0), v) | None -> None

let min_key t =
  if t.size = 0 then invalid_arg "Heap.min_key: empty heap";
  t.keys.(0)

let min_value t =
  if t.size = 0 then invalid_arg "Heap.min_value: empty heap";
  match t.vals.(0) with Some v -> v | None -> assert false

(* Remove the root and restore the heap invariant — the shared
   allocation-free removal under {!pop} and {!drop_min}. *)
let remove_min t =
  t.size <- t.size - 1;
  t.keys.(0) <- t.keys.(t.size);
  t.stamps.(0) <- t.stamps.(t.size);
  t.vals.(0) <- t.vals.(t.size);
  t.vals.(t.size) <- None;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t l !smallest then smallest := l;
    if r < t.size && less t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let drop_min t =
  if t.size = 0 then invalid_arg "Heap.drop_min: empty heap";
  remove_min t

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    let v = match t.vals.(0) with Some v -> v | None -> assert false in
    remove_min t;
    Some (key, v)
  end

(* A burst leaves peak-size arrays behind; clear hands them back so a
   drained queue costs its initial footprint, not its high-water mark. *)
let clear t =
  if Array.length t.keys > initial_cap then begin
    t.keys <- Array.make initial_cap 0.;
    t.stamps <- Array.make initial_cap 0;
    t.vals <- Array.make initial_cap None
  end
  else Array.fill t.vals 0 (Array.length t.vals) None;
  t.size <- 0;
  t.next_stamp <- 0
