type 'a t = {
  mutable keys : float array;
  mutable stamps : int array;
  mutable vals : 'a option array;
  mutable size : int;
  mutable next_stamp : int;
}

let create () =
  {
    keys = Array.make 16 0.;
    stamps = Array.make 16 0;
    vals = Array.make 16 None;
    size = 0;
    next_stamp = 0;
  }

let is_empty t = t.size = 0
let size t = t.size

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) 0.
  and stamps = Array.make (2 * n) 0
  and vals = Array.make (2 * n) None in
  Array.blit t.keys 0 keys 0 n;
  Array.blit t.stamps 0 stamps 0 n;
  Array.blit t.vals 0 vals 0 n;
  t.keys <- keys;
  t.stamps <- stamps;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and s = t.stamps.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.stamps.(i) <- t.stamps.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.stamps.(j) <- s;
  t.vals.(j) <- v

(* Lexicographic (key, insertion stamp): equal keys pop in push order,
   which is what makes the heap — and everything above it — stable. *)
let less t i j =
  t.keys.(i) < t.keys.(j)
  || (t.keys.(i) = t.keys.(j) && t.stamps.(i) < t.stamps.(j))

let push t key v =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.stamps.(t.size) <- t.next_stamp;
  t.next_stamp <- t.next_stamp + 1;
  t.vals.(t.size) <- Some v;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && less t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek t =
  if t.size = 0 then None
  else
    match t.vals.(0) with Some v -> Some (t.keys.(0), v) | None -> None

let pop t =
  match peek t with
  | None -> None
  | Some _ as result ->
      t.size <- t.size - 1;
      t.keys.(0) <- t.keys.(t.size);
      t.stamps.(0) <- t.stamps.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      t.vals.(t.size) <- None;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t l !smallest then smallest := l;
        if r < t.size && less t r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      result

let clear t =
  Array.fill t.vals 0 (Array.length t.vals) None;
  t.size <- 0;
  t.next_stamp <- 0
