(* A calendar queue (Brown 1988): the O(1)-amortised scheduler twin of
   {!Heap} for the dense-event regime.  Buckets partition the key axis
   into windows of [width]; an event lands in bucket
   [floor (key / width) mod nbuckets], and a cursor sweeps the buckets
   in "calendar year" order, so in the steady state (about one pending
   event per bucket) both enqueue and dequeue touch O(1) entries where
   a binary heap pays O(log n) comparisons.

   Stability contract: entries carry the same monotonic insertion stamp
   as {!Heap} and every bucket list is kept sorted by the lexicographic
   [(key, stamp)] order.  Equal keys always hash to the same bucket, so
   the pop sequence realises exactly the same total order as the heap —
   the two structures are bit-identical twins, which is what lets
   {!Des} switch between them behind a knob. *)

type 'a entry = { ekey : float; estamp : int; eval : 'a }

type 'a t = {
  mutable buckets : 'a entry list array;
  mutable nbuckets : int; (* always a power of two *)
  mutable width : float;
  mutable size : int;
  mutable next_stamp : int;
  mutable cur : int; (* cursor bucket *)
  mutable cur_q : float; (* virtual window index of the cursor: floor (key / width) *)
  mutable cache_valid : bool; (* cursor is known to sit on the min *)
  mutable work : int;
  mutable rewidth_gate : int; (* next_stamp before the next skew check *)
}

let initial_buckets = 16
let initial_width = 1.0

let create () =
  {
    buckets = Array.make initial_buckets [];
    nbuckets = initial_buckets;
    width = initial_width;
    size = 0;
    next_stamp = 0;
    cur = 0;
    cur_q = 0.;
    cache_valid = false;
    work = 0;
    rewidth_gate = 0;
  }

let is_empty t = t.size = 0
let size t = t.size
let work t = t.work

let clear t =
  t.buckets <- Array.make initial_buckets [];
  t.nbuckets <- initial_buckets;
  t.width <- initial_width;
  t.size <- 0;
  t.next_stamp <- 0;
  t.cur <- 0;
  t.cur_q <- 0.;
  t.cache_valid <- false;
  t.rewidth_gate <- 0

(* Point the cursor at the window containing [key] (so a subsequent
   scan starts at or before the minimum).  The window is identified by
   its virtual index [floor (key / width)] — the same quantity bucket
   placement uses — never by a key-axis boundary, so cursor tests stay
   drift-free however the scan got here. *)
let set_cursor t key =
  let q = Float.floor (key /. t.width) in
  let b = int_of_float q land (t.nbuckets - 1) in
  let b = if q < 0. then ((b mod t.nbuckets) + t.nbuckets) mod t.nbuckets else b in
  t.cur <- b;
  t.cur_q <- q;
  t.cache_valid <- false

let bucket_of t key =
  let q = Float.floor (key /. t.width) in
  let i = int_of_float q in
  ((i mod t.nbuckets) + t.nbuckets) mod t.nbuckets

let entry_less a b =
  a.ekey < b.ekey || (a.ekey = b.ekey && a.estamp < b.estamp)

(* Sorted insert by (key, stamp); walked nodes count as work. *)
let rec insert_sorted t e = function
  | [] -> [ e ]
  | x :: rest when entry_less x e ->
      t.work <- t.work + 1;
      x :: insert_sorted t e rest
  | l ->
      t.work <- t.work + 1;
      e :: l

(* Returns the nodes walked, the skew signal for [push]. *)
let insert t e =
  let b = bucket_of t e.ekey in
  let before = t.work in
  t.buckets.(b) <- insert_sorted t e t.buckets.(b);
  t.work - before

(* Rebuild with [nb'] buckets and a width matched to the current key
   spread (~2 events per bucket window on average), so the cursor scan
   stays O(1) amortised in the dense regime.  Deterministic: the width
   comes from the min/max keys, not from sampling randomness. *)
let resize t nb' =
  let entries = ref [] in
  Array.iter
    (fun l -> List.iter (fun e -> entries := e :: !entries) l)
    t.buckets;
  let lo = ref infinity and hi = ref neg_infinity in
  List.iter
    (fun e ->
      if e.ekey < !lo then lo := e.ekey;
      if e.ekey > !hi then hi := e.ekey)
    !entries;
  let spread = !hi -. !lo in
  let magnitude = Float.max (Float.abs !lo) (Float.abs !hi) in
  (* Keep [key / width] far inside int range, and never collapse to a
     zero or denormal width when every key coincides. *)
  let floor_w = Float.max 1e-9 (magnitude *. 1e-12) in
  let width =
    if t.size > 0 && spread > 0. then
      Float.max floor_w (2. *. spread /. float_of_int t.size)
    else Float.max floor_w t.width
  in
  t.width <- width;
  t.nbuckets <- nb';
  t.buckets <- Array.make nb' [];
  t.cache_valid <- false;
  if Float.is_finite !lo then set_cursor t !lo;
  List.iter (fun e -> ignore (insert t e)) !entries

(* A long sorted-insert walk means the population bunched into few
   buckets: the key spread shrank while the size did not — a regime the
   size-triggered resizes never revisit (the classic calendar-queue
   skew failure, e.g. a steady hold-model workload whose span contracts
   to a few widths).  Re-derive the width from the live spread when
   that would actually change the calendar; when the bunching is ties
   or an incompressible distribution, leave it alone.  The gate spaces
   the O(n) spread scans at least [size] stamps apart, so skew checks
   stay amortised O(1), and every trigger is a pure function of the
   queue's content — the twin contract with {!Heap} is untouched. *)
let skew_limit = 24

let rewidth t =
  t.rewidth_gate <- t.next_stamp + t.size;
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (List.iter (fun e ->
         if e.ekey < !lo then lo := e.ekey;
         if e.ekey > !hi then hi := e.ekey))
    t.buckets;
  let spread = !hi -. !lo in
  if spread > 0. then begin
    let fair = 2. *. spread /. float_of_int t.size in
    if fair < t.width /. 2. || fair > t.width *. 2. then resize t t.nbuckets
  end

let push t key v =
  if not (Float.is_finite key) then invalid_arg "Wheel.push: non-finite key";
  (* A key too far from zero for the current width would overflow the
     virtual bucket index: re-anchor the width to its magnitude. *)
  if Float.abs key /. t.width >= 1e15 then begin
    t.width <- Float.max t.width (Float.abs key *. 1e-12);
    resize t t.nbuckets
  end;
  let e = { ekey = key; estamp = t.next_stamp; eval = v } in
  t.next_stamp <- t.next_stamp + 1;
  if t.size = 0 || Float.floor (key /. t.width) < t.cur_q then set_cursor t key;
  let hops = insert t e in
  t.cache_valid <- false;
  t.size <- t.size + 1;
  if t.size > 2 * t.nbuckets then resize t (2 * t.nbuckets)
  else if hops > skew_limit && t.next_stamp >= t.rewidth_gate then rewidth t

(* Advance the cursor to the bucket holding the global minimum.
   Within one calendar year the first bucket head falling inside its
   window is the minimum (earlier buckets were empty-in-window, later
   windows start higher); if a whole year turns up nothing the pending
   events are sparse and far away, so jump straight to the smallest
   bucket head.  "Inside its window" is decided by comparing virtual
   window indices, [floor (ekey / width) <= q] — comparing against an
   accumulated key-axis boundary instead would drift away from the
   floor-division grid that placed the entries and can reject the true
   minimum when a key sits exactly on a window edge. *)
let find_min t =
  if t.cache_valid then t.cur
  else begin
    let found = ref (-1) in
    let i = ref t.cur and q = ref t.cur_q and steps = ref 0 in
    while !found < 0 && !steps < t.nbuckets do
      (match t.buckets.(!i) with
      | e :: _ when Float.floor (e.ekey /. t.width) <= !q ->
          found := !i;
          t.cur <- !i;
          t.cur_q <- !q
      | _ -> ());
      if !found < 0 then begin
        incr steps;
        i := (!i + 1) land (t.nbuckets - 1);
        q := !q +. 1.
      end
    done;
    t.work <- t.work + !steps + 1;
    if !found < 0 then begin
      (* Direct search over the bucket heads. *)
      let best = ref (-1) in
      for b = 0 to t.nbuckets - 1 do
        t.work <- t.work + 1;
        match t.buckets.(b) with
        | [] -> ()
        | e :: _ -> (
            match !best with
            | -1 -> best := b
            | bb ->
                let be = List.hd t.buckets.(bb) in
                if entry_less e be then best := b)
      done;
      let b = !best in
      (match t.buckets.(b) with
      | e :: _ -> set_cursor t e.ekey
      | [] -> assert false);
      t.cur <- b;
      found := b
    end;
    t.cache_valid <- true;
    !found
  end

let min_key t =
  if t.size = 0 then invalid_arg "Wheel.min_key: empty wheel";
  match t.buckets.(find_min t) with
  | e :: _ -> e.ekey
  | [] -> assert false

let min_value t =
  if t.size = 0 then invalid_arg "Wheel.min_value: empty wheel";
  match t.buckets.(find_min t) with
  | e :: _ -> e.eval
  | [] -> assert false

let drop_min t =
  if t.size = 0 then invalid_arg "Wheel.drop_min: empty wheel";
  let b = find_min t in
  (match t.buckets.(b) with
  | _ :: rest -> t.buckets.(b) <- rest
  | [] -> assert false);
  t.size <- t.size - 1;
  t.cache_valid <- false;
  if t.size < t.nbuckets / 2 && t.nbuckets > initial_buckets then
    resize t (t.nbuckets / 2)

let peek t =
  if t.size = 0 then None
  else
    match t.buckets.(find_min t) with
    | e :: _ -> Some (e.ekey, e.eval)
    | [] -> assert false

let pop t =
  if t.size = 0 then None
  else begin
    let b = find_min t in
    match t.buckets.(b) with
    | e :: rest ->
        t.buckets.(b) <- rest;
        t.size <- t.size - 1;
        t.cache_valid <- false;
        if t.size < t.nbuckets / 2 && t.nbuckets > initial_buckets then
          resize t (t.nbuckets / 2);
        Some (e.ekey, e.eval)
    | [] -> assert false
  end
