(* Deterministic fleet fan-out.

   The fleet campaigns simulate thousands of devices per design point.
   Device [i]'s behaviour must be a pure function of [(seed, i)] — never
   of the worker count — so shards are contiguous index ranges whose
   {e number} depends only on [n]: shard results merge in shard order,
   worker scheduling only changes which domain computes a shard, and the
   merged output is byte-identical for any [-j]. *)

type shard = { first : int; count : int }

let default_shards = 64

let shards ?(shards = default_shards) n =
  if n < 0 then invalid_arg "Fleet.shards: negative count";
  if shards < 1 then invalid_arg "Fleet.shards: shards must be positive";
  let k = min shards (max 1 n) in
  if n = 0 then []
  else
    (* Same split for any worker count: shard s gets the ceiling share
       of the remainder, so sizes differ by at most one. *)
    List.init k (fun s ->
        let first = s * n / k and next = (s + 1) * n / k in
        { first; count = next - first })

let device_rng ~seed i = Prng.stream ~seed i

let map ?jobs ?shards:ns ~seed n f =
  let plan = shards ?shards:ns n in
  let per_shard =
    Pool.parallel_map ?jobs
      (fun { first; count } ->
        List.init count (fun k ->
            let i = first + k in
            f ~rng:(Prng.stream ~seed i) i))
      plan
  in
  List.concat per_shard

let map_merge ?jobs ?shards:ns ~seed n ~f ~merge =
  let plan = shards ?shards:ns n in
  let per_shard =
    Pool.parallel_map ?jobs
      (fun { first; count } ->
        List.init count (fun k ->
            let i = first + k in
            f ~rng:(Prng.stream ~seed i) i)
        |> merge)
      plan
  in
  merge per_shard
