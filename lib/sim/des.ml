type sched = Binary_heap | Timing_wheel

(* Process-wide default, overridable per-queue at [create] and globally
   via the SERO_SCHED environment variable ("heap" / "wheel").  Both
   schedulers realise the same (timestamp, schedule-order) total order,
   so flipping the default cannot change any trace — only the cost of
   producing it. *)
let env_default () =
  match Sys.getenv_opt "SERO_SCHED" with
  | Some "heap" -> Some Binary_heap
  | Some "wheel" -> Some Timing_wheel
  | _ -> None

let global_default =
  ref (match env_default () with Some s -> s | None -> Timing_wheel)

let set_default_sched s = global_default := s
let default_sched () = !global_default

type queue = H of (t -> unit) Heap.t | W of (t -> unit) Wheel.t
and t = { mutable clock : float; queue : queue }

let create ?sched () =
  let sched = match sched with Some s -> s | None -> !global_default in
  let queue =
    match sched with
    | Binary_heap -> H (Heap.create ())
    | Timing_wheel -> W (Wheel.create ())
  in
  { clock = 0.; queue }

let sched t = match t.queue with H _ -> Binary_heap | W _ -> Timing_wheel
let now t = t.clock

let schedule_at t ~at f =
  if at < t.clock then invalid_arg "Des.schedule_at: event in the past";
  (* Both queues are stable, so equal-timestamp events fire in the
     order they were scheduled — no extra sequencing needed here. *)
  match t.queue with
  | H q -> Heap.push q at f
  | W q -> Wheel.push q at f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Des.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) f

let q_empty t =
  match t.queue with H q -> Heap.is_empty q | W q -> Wheel.is_empty q

let q_min_key t =
  match t.queue with H q -> Heap.min_key q | W q -> Wheel.min_key q

(* Fire the next event without allocating an option pair. *)
let fire_min t =
  match t.queue with
  | H q ->
      let at = Heap.min_key q and f = Heap.min_value q in
      Heap.drop_min q;
      t.clock <- at;
      f t
  | W q ->
      let at = Wheel.min_key q and f = Wheel.min_value q in
      Wheel.drop_min q;
      t.clock <- at;
      f t

let step t =
  if q_empty t then false
  else begin
    fire_min t;
    true
  end

let run ?until t =
  match until with
  | None -> while not (q_empty t) do fire_min t done
  | Some limit ->
      let continue = ref true in
      while !continue do
        if q_empty t then continue := false
        else if q_min_key t > limit then begin
          t.clock <- limit;
          continue := false
        end
        else fire_min t
      done

let pending t = match t.queue with H q -> Heap.size q | W q -> Wheel.size q

let sched_work t =
  match t.queue with H q -> Heap.work q | W q -> Wheel.work q
