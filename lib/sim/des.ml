type t = { mutable clock : float; queue : (t -> unit) Heap.t }

let create () = { clock = 0.; queue = Heap.create () }
let now t = t.clock

let schedule_at t ~at f =
  if at < t.clock then invalid_arg "Des.schedule_at: event in the past";
  (* The heap is stable, so equal-timestamp events fire in the order
     they were scheduled — no extra sequencing needed here. *)
  Heap.push t.queue at f

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Des.schedule: negative delay";
  schedule_at t ~at:(t.clock +. delay) f

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      f t;
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match (Heap.peek t.queue, until) with
    | None, _ -> continue := false
    | Some (at, _), Some limit when at > limit ->
        t.clock <- limit;
        continue := false
    | Some _, _ -> ignore (step t)
  done

let pending t = Heap.size t.queue
