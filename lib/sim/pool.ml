(* A minimal fork/join pool over raw [Domain.spawn] (OCaml 5 stdlib
   only — no domainslib in the build environment).  Work is handed out
   in chunks through an [Atomic] cursor; results land in per-index
   slots, so the output order is the input order no matter which domain
   computed what.  Exceptions are captured per item and the first one
   (in input order) is re-raised after every domain has joined, which is
   the closest parallel analogue of [List.map]'s failure behaviour. *)

let default_jobs : int option ref = ref None

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | Some _ | None -> None

let jobs () =
  match !default_jobs with
  | Some n -> n
  | None -> (
      match Option.bind (Sys.getenv_opt "SERO_JOBS") parse_jobs with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_jobs n =
  if n < 1 then invalid_arg "Sim.Pool.set_jobs: jobs must be >= 1";
  default_jobs := Some n

let parallel_map ?jobs:requested f xs =
  let jobs =
    match requested with
    | Some n when n < 1 -> invalid_arg "Sim.Pool.parallel_map: jobs must be >= 1"
    | Some n -> n
    | None -> jobs ()
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let chunk = max 1 (n / (jobs * 8)) in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n then continue := false
        else
          for i = lo to min n (lo + chunk) - 1 do
            results.(i) <-
              Some
                (match f items.(i) with
                | v -> Ok v
                | exception e -> Error (e, Printexc.get_raw_backtrace ()))
          done
      done
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end
