type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* The splitmix64 output finalizer, used as a mixing function. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Decorrelated per-index stream: double-mixing (seed, index) places the
   streams far apart in splitmix64's state space, unlike seeding with
   [seed + index] (which would make stream [i] a one-step shift of
   stream [i+1]).  A pure function of (seed, index), so fleet shards can
   derive device streams independently of worker count or order. *)
let stream ~seed index =
  { state = mix (Int64.logxor (Int64.of_int seed) (mix (Int64.of_int index))) }

let bits64 t =
  let z = Int64.add t.state golden in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let uniform t =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.

let float t x = uniform t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else uniform t < p

let exponential t mean =
  let u = 1. -. uniform t in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1. -. uniform t and u2 = uniform t in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
