(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulation (read noise on heated
    dots, defect placement, workload generation, thermal crosstalk draws)
    takes an explicit generator so that experiments are reproducible from
    a seed, independently of the OCaml stdlib [Random] state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val copy : t -> t
val split : t -> t
(** A statistically independent generator derived from [t] (advances [t]). *)

val stream : seed:int -> int -> t
(** [stream ~seed i] is the [i]th decorrelated generator of a keyed
    family — a pure function of [(seed, i)], independent of any other
    generator's draw history.  The fleet harness gives device [i] stream
    [i] so results are identical however devices are sharded. *)

val bits64 : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val uniform : t -> float
(** Uniform in [0, 1). *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal draw. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
