(** Deterministic fleet fan-out over {!Pool}.

    Shards a population of [n] independent simulations (devices, cells)
    into contiguous index ranges whose count is a pure function of [n]
    — never of the worker count — and gives simulation [i] the keyed
    PRNG {!Prng.stream}[ ~seed i].  Results return in index order and
    per-shard reductions fold in shard order, so fleet output is
    byte-identical for any [-j]. *)

type shard = { first : int; count : int }

val default_shards : int
(** Target shard count (64): enough slack for dynamic load balance at
    any plausible core count, few enough that per-shard state stays
    cheap. *)

val shards : ?shards:int -> int -> shard list
(** [shards n] splits [0..n-1] into at most [shards] (default
    {!default_shards}) contiguous ranges of near-equal size, in index
    order.  Pure in [n] — the same plan whatever runs it.
    @raise Invalid_argument if [n < 0] or [shards < 1]. *)

val device_rng : seed:int -> int -> Prng.t
(** The canonical per-device generator, {!Prng.stream}[ ~seed i]. *)

val map :
  ?jobs:int -> ?shards:int -> seed:int -> int -> (rng:Prng.t -> int -> 'a) -> 'a list
(** [map ~seed n f] is [[f ~rng:(stream ~seed 0) 0; ...; f ~rng:... (n-1)]]
    computed shard-parallel; [f] must not touch state shared across
    indices.  Byte-identical to the sequential map for any [jobs]. *)

val map_merge :
  ?jobs:int ->
  ?shards:int ->
  seed:int ->
  int ->
  f:(rng:Prng.t -> int -> 'a) ->
  merge:('a list -> 'a) ->
  'a
(** Like {!map}, but each shard reduces its results with [merge] before
    returning and the shard summaries reduce once more in shard order —
    the fleet-statistics shape ({!Stats.merge_many} is the canonical
    [merge]).  The merge {e grouping} is fixed by the shard plan, which
    is pure in [n], so the result is byte-identical for any [jobs] even
    when [merge] is only approximately associative (floating-point
    moment combination). *)
