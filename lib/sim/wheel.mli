(** Calendar-queue event scheduler — the O(1)-amortised twin of {!Heap}.

    Buckets partition the key axis into fixed-width windows and a cursor
    sweeps them in calendar order, so in the dense steady state both
    push and pop touch O(1) entries.  The structure realises exactly the
    same lexicographic [(key, insertion stamp)] total order as {!Heap}
    (equal keys pop in push order), so {!Des} can switch between the two
    behind a knob with bit-identical event traces. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** @raise Invalid_argument on a non-finite key. *)

val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option

val min_key : 'a t -> float
(** Key of the minimum entry, without allocating.
    @raise Invalid_argument on an empty wheel. *)

val min_value : 'a t -> 'a
(** Value of the minimum entry, without allocating a pair.
    @raise Invalid_argument on an empty wheel. *)

val drop_min : 'a t -> unit
(** Remove the minimum entry — with {!min_key}/{!min_value} this is the
    allocation-free hot-path equivalent of {!pop}.
    @raise Invalid_argument on an empty wheel. *)

val clear : 'a t -> unit
(** Empty the wheel and shed capacity back to the initial footprint. *)

val work : 'a t -> int
(** Deterministic effort counter: bucket-scan steps plus sorted-insert
    hops since creation.  Comparable against {!Heap.work} to gate the
    wheel-vs-heap win byte-stably (wall clock is only informational). *)
