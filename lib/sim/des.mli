(** Minimal discrete-event simulation kernel.

    The device timing model is mostly a ledger of per-operation costs,
    but the file-system experiments (cleaner running concurrently with
    foreground writes, snapshot scheduling) and the request pipeline
    ({!Sero.Queue}) need ordered future events.  Events are thunks
    fired in timestamp order; events with {e equal} timestamps fire in
    the order they were scheduled (FIFO), so traces are reproducible
    even when submissions and completions coincide on the clock.

    Two interchangeable schedulers implement that contract: the stable
    binary {!Heap} (O(log n) per op) and the calendar-queue {!Wheel}
    (O(1) amortised in the dense-event regime).  They realise the same
    [(timestamp, schedule order)] total order, so every trace is
    bit-identical under either — the knob only changes cost, never
    behaviour.  The wheel is the default; select per-queue with
    [create ~sched] or process-wide with {!set_default_sched} / the
    [SERO_SCHED] environment variable ("heap" or "wheel"). *)

type t

type sched = Binary_heap | Timing_wheel

val set_default_sched : sched -> unit
val default_sched : unit -> sched
(** Process-wide default used when [create] is not given [~sched].
    Initialised from [SERO_SCHED] if set, else {!Timing_wheel}. *)

val create : ?sched:sched -> unit -> t

val sched : t -> sched
(** Which scheduler backs this queue. *)

val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument if [delay < 0]. *)

val schedule_at : t -> at:float -> (t -> unit) -> unit
(** @raise Invalid_argument if [at < now t]. *)

val run : ?until:float -> t -> unit
(** Drain the event queue, optionally stopping once simulated time would
    exceed [until] (remaining events stay queued).  The drain loop is
    allocation-free per event. *)

val step : t -> bool
(** Fire the single next event; [false] if the queue was empty. *)

val pending : t -> int

val sched_work : t -> int
(** Deterministic effort counter of the backing scheduler (comparisons
    for the heap, scan/insert hops for the wheel) — the byte-stable
    basis for the wheel-vs-heap bench gate. *)
