(** Minimal discrete-event simulation kernel.

    The device timing model is mostly a ledger of per-operation costs,
    but the file-system experiments (cleaner running concurrently with
    foreground writes, snapshot scheduling) and the request pipeline
    ({!Sero.Queue}) need ordered future events.  Events are thunks
    fired in timestamp order; events with {e equal} timestamps fire in
    the order they were scheduled (FIFO — the underlying {!Heap} is
    stable), so traces are reproducible even when submissions and
    completions coincide on the clock. *)

type t

val create : unit -> t
val now : t -> float
(** Current simulated time in seconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    @raise Invalid_argument if [delay < 0]. *)

val schedule_at : t -> at:float -> (t -> unit) -> unit
(** @raise Invalid_argument if [at < now t]. *)

val run : ?until:float -> t -> unit
(** Drain the event queue, optionally stopping once simulated time would
    exceed [until] (remaining events stay queued). *)

val step : t -> bool
(** Fire the single next event; [false] if the queue was empty. *)

val pending : t -> int
