type t = {
  name : string;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable total : float;
  mutable samples : float list; (* kept for percentiles; reversed order *)
}

let create ?(name = "") () =
  {
    name;
    n = 0;
    mean = 0.;
    m2 = 0.;
    minv = infinity;
    maxv = neg_infinity;
    total = 0.;
    samples = [];
  }

let name t = t.name

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.samples <- x :: t.samples

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0. else t.mean
let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
let min_value t = if t.n = 0 then 0. else t.minv
let max_value t = if t.n = 0 then 0. else t.maxv

(* Nearest-rank quantile over a sorted sample array. *)
let rank_of sorted n p =
  let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let percentile t p =
  if t.n = 0 then 0.
  else begin
    let a = Array.of_list t.samples in
    Array.sort compare a;
    rank_of a t.n p
  end

let p50 t = percentile t 0.50
let p95 t = percentile t 0.95
let p99 t = percentile t 0.99

let quantiles t =
  if t.n = 0 then (0., 0., 0.)
  else begin
    let a = Array.of_list t.samples in
    Array.sort compare a;
    (rank_of a t.n 0.50, rank_of a t.n 0.95, rank_of a t.n 0.99)
  end

let merge a b =
  let t = create ~name:a.name () in
  List.iter (add t) (List.rev_append a.samples []);
  List.iter (add t) (List.rev_append b.samples []);
  t

let pp ppf t =
  Format.fprintf ppf
    "%s: n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g" t.name
    t.n (mean t) (stddev t) (min_value t) (percentile t 0.5)
    (percentile t 0.99) (max_value t)

module Histogram = struct
  type h = { lo : float; hi : float; bins : int array }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; bins = Array.make bins 0 }

  let add h x =
    let n = Array.length h.bins in
    let i =
      int_of_float (float_of_int n *. (x -. h.lo) /. (h.hi -. h.lo))
    in
    let i = max 0 (min (n - 1) i) in
    h.bins.(i) <- h.bins.(i) + 1

  let counts h = Array.copy h.bins

  let bin_label h i =
    let n = float_of_int (Array.length h.bins) in
    h.lo +. ((float_of_int i +. 0.5) *. (h.hi -. h.lo) /. n)

  let total h = Array.fold_left ( + ) 0 h.bins

  let pp ppf h =
    let tot = max 1 (total h) in
    Array.iteri
      (fun i c ->
        let bar = String.make (60 * c / tot) '#' in
        Format.fprintf ppf "%8.3f | %5d %s@." (bin_label h i) c bar)
      h.bins
end
