type t = {
  name : string;
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable total : float;
  mutable samples : float list; (* kept for percentiles; reversed order *)
  mutable sorted : float array option; (* memoised sort of [samples] *)
}

let create ?(name = "") () =
  {
    name;
    n = 0;
    mean = 0.;
    m2 = 0.;
    minv = infinity;
    maxv = neg_infinity;
    total = 0.;
    samples = [];
    sorted = None;
  }

let name t = t.name

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x;
  t.samples <- x :: t.samples;
  t.sorted <- None

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0. else t.mean
let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
let min_value t = if t.n = 0 then 0. else t.minv
let max_value t = if t.n = 0 then 0. else t.maxv

(* The sorted reservoir, computed at most once per batch of adds: the
   SLO ledgers call p50/p95/p99 on the same counter per report, and the
   fleet reports ask again after merging — re-sorting each time was the
   dominant report cost. *)
let sorted_samples t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.of_list t.samples in
      Array.sort compare a;
      t.sorted <- Some a;
      a

(* Nearest-rank quantile over a sorted sample array. *)
let rank_of sorted n p =
  let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let percentile t p =
  if t.n = 0 then 0. else rank_of (sorted_samples t) t.n p

let p50 t = percentile t 0.50
let p95 t = percentile t 0.95
let p99 t = percentile t 0.99

let quantiles t =
  if t.n = 0 then (0., 0., 0.)
  else begin
    let a = sorted_samples t in
    (rank_of a t.n 0.50, rank_of a t.n 0.95, rank_of a t.n 0.99)
  end

(* Merge two sorted arrays, preserving order. *)
let merge_sorted a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) 0. in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !i < na && (!j >= nb || a.(!i) <= b.(!j)) then begin
        out.(k) <- a.(!i);
        incr i
      end
      else begin
        out.(k) <- b.(!j);
        incr j
      end
    done;
    out
  end

(* Chan et al.'s pairwise moment combination: exact counts/totals and
   numerically stable mean/m2 without replaying the sample streams. *)
let combine_moments (na, ma, m2a) (nb, mb, m2b) =
  if nb = 0 then (na, ma, m2a)
  else if na = 0 then (nb, mb, m2b)
  else begin
    let fa = float_of_int na and fb = float_of_int nb in
    let n = na + nb in
    let fn = fa +. fb in
    let delta = mb -. ma in
    let mean = ma +. (delta *. fb /. fn) in
    let m2 = m2a +. m2b +. (delta *. delta *. fa *. fb /. fn) in
    (n, mean, m2)
  end

(* Deterministic fleet-wide merge: per-shard counters fold left in list
   order, so the result is a pure function of the shard sequence — the
   same bytes for any [-j].  Sample reservoirs merge sorted-to-sorted
   (each shard sorts once, reusing its memoised cache) and the merged
   counter is born with its own cache warm, so a quantile report on the
   merge costs no further sort. *)
let merge_many ?name ts =
  let name =
    match (name, ts) with
    | Some n, _ -> n
    | None, t :: _ -> t.name
    | None, [] -> ""
  in
  let out = create ~name () in
  let n, mean, m2 =
    List.fold_left
      (fun acc t -> combine_moments acc (t.n, t.mean, t.m2))
      (0, 0., 0.) ts
  in
  out.n <- n;
  out.mean <- mean;
  out.m2 <- m2;
  List.iter
    (fun t ->
      out.total <- out.total +. t.total;
      if t.minv < out.minv then out.minv <- t.minv;
      if t.maxv > out.maxv then out.maxv <- t.maxv)
    ts;
  let sorted =
    List.fold_left (fun acc t -> merge_sorted acc (sorted_samples t)) [||] ts
  in
  out.samples <- Array.fold_left (fun acc x -> x :: acc) [] sorted;
  out.sorted <- Some sorted;
  out

let merge a b = merge_many ~name:a.name [ a; b ]

let pp ppf t =
  Format.fprintf ppf
    "%s: n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g" t.name
    t.n (mean t) (stddev t) (min_value t) (percentile t 0.5)
    (percentile t 0.99) (max_value t)

module Histogram = struct
  type h = { lo : float; hi : float; bins : int array }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; bins = Array.make bins 0 }

  let add h x =
    let n = Array.length h.bins in
    let i =
      int_of_float (float_of_int n *. (x -. h.lo) /. (h.hi -. h.lo))
    in
    let i = max 0 (min (n - 1) i) in
    h.bins.(i) <- h.bins.(i) + 1

  let counts h = Array.copy h.bins

  let bin_label h i =
    let n = float_of_int (Array.length h.bins) in
    h.lo +. ((float_of_int i +. 0.5) *. (h.hi -. h.lo) /. n)

  let total h = Array.fold_left ( + ) 0 h.bins

  let pp ppf h =
    let tot = max 1 (total h) in
    Array.iteri
      (fun i c ->
        let bar = String.make (60 * c / tot) '#' in
        Format.fprintf ppf "%8.3f | %5d %s@." (bin_label h i) c bar)
      h.bins
end
