(* Hash table over intrusive doubly-linked recency list.  [head] is the
   most-recently-used end, [tail] the eviction end. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  evictable : 'k -> 'v -> bool;
  mutable capacity : int;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
}

let create ?(evictable = fun _ _ -> true) ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be positive";
  { tbl = Hashtbl.create 64; evictable; capacity; head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let mem t k = Hashtbl.mem t.tbl k

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let is_head t k = match t.head with Some n -> n.key = k | None -> false

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      touch t n;
      Some n.value

let peek t k =
  match Hashtbl.find_opt t.tbl k with None -> None | Some n -> Some n.value

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k

(* Walk from the LRU end collecting evictable entries until [length]
   fits the capacity; pinned entries are stepped over and survive. *)
let shrink t =
  let evicted = ref [] in
  let excess = ref (length t - t.capacity) in
  let cur = ref t.tail in
  while !excess > 0 && !cur <> None do
    let n = Option.get !cur in
    cur := n.prev;
    if t.evictable n.key n.value then begin
      unlink t n;
      Hashtbl.remove t.tbl n.key;
      evicted := (n.key, n.value) :: !evicted;
      decr excess
    end
  done;
  List.rev !evicted

let add t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      touch t n
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n);
  shrink t

let push_back t n =
  n.next <- None;
  n.prev <- t.tail;
  (match t.tail with Some l -> l.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n

let add_lru t k v =
  (match Hashtbl.find_opt t.tbl k with
  | Some n -> n.value <- v (* known entry: keep its earned recency *)
  | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_back t n);
  shrink t

let trim t = shrink t

let set_capacity t capacity =
  if capacity < 1 then invalid_arg "Lru.set_capacity: capacity must be positive";
  t.capacity <- capacity;
  shrink t

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let iter f t = Hashtbl.iter (fun k n -> f k n.value) t.tbl
let fold f t init = Hashtbl.fold (fun k n acc -> f k n.value acc) t.tbl init

let to_list_mru t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head
