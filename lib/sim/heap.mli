(** Binary min-heap keyed by float, used by the event queue ({!Des}) and
    by the LFS cleaner's cost-benefit segment selection.

    The heap is {e stable}: entries pushed with equal keys pop in push
    order (each push takes a monotonic insertion stamp and ordering is
    lexicographic on [(key, stamp)]).  {!Des} relies on this to make
    equal-timestamp events fire FIFO. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val capacity : 'a t -> int
(** Current backing-array capacity (doubles on growth; see {!trim} and
    {!clear} for giving a burst's high-water mark back). *)

val push : 'a t -> float -> 'a -> unit
val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option

val min_key : 'a t -> float
(** Key of the minimum entry, without allocating.
    @raise Invalid_argument on an empty heap. *)

val min_value : 'a t -> 'a
(** Value of the minimum entry, without allocating a pair.
    @raise Invalid_argument on an empty heap. *)

val drop_min : 'a t -> unit
(** Remove the minimum entry — with {!min_key}/{!min_value} this is the
    allocation-free hot-path equivalent of {!pop}.
    @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit
(** Empty the heap {e and} shed capacity back to the initial footprint,
    so a drained queue does not pin its burst high-water mark. *)

val trim : 'a t -> unit
(** Shrink capacity to the smallest power of two holding the current
    entries (never below the initial footprint). *)

val work : 'a t -> int
(** Deterministic effort counter: total key comparisons since creation.
    The scheduler equivalence bench gates the wheel-vs-heap win on this
    rather than on wall-clock, so the figure is byte-stable. *)
