(** Binary min-heap keyed by float, used by the event queue ({!Des}) and
    by the LFS cleaner's cost-benefit segment selection.

    The heap is {e stable}: entries pushed with equal keys pop in push
    order (each push takes a monotonic insertion stamp and ordering is
    lexicographic on [(key, stamp)]).  {!Des} relies on this to make
    equal-timestamp events fire FIFO. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option
val clear : 'a t -> unit
