type row = {
  ber : float;
  dead_tips : int;
  ras_on : bool;
  sectors : int;
  unrecoverable : int;
  retries : int;
  repulses : int;
  remapped : int;
  throughput_mbs : float;
  deterministic : bool;
}

let data_pbas dev n =
  let lay = Sero.Device.layout dev in
  let rec take acc line =
    if List.length acc >= n || line >= Sero.Layout.n_lines lay then
      List.filteri (fun i _ -> i < n) acc
    else take (acc @ Sero.Layout.data_blocks_of_line lay line) (line + 1)
  in
  take [] 0

let write_all dev pbas =
  List.iteri
    (fun i pba ->
      match Sero.Device.write_block dev ~pba (Printf.sprintf "fault %d" i) with
      | Ok () -> ()
      | Error _ -> ())
    pbas

let make_dev ~n_blocks ~ras_on =
  let base = Sero.Device.default_config ~n_blocks ~line_exp:3 () in
  Sero.Device.create
    {
      base with
      Sero.Device.ras =
        (if ras_on then Sero.Device.active_ras else Sero.Device.default_ras);
    }

(* One full cell: build, write clean, install the plan, sweep-read.
   Returns the row ingredients plus the injection ledger so the caller
   can check run-to-run determinism. *)
let cell_once ~n_blocks ~sectors ~ber ~dead_tips ~ras_on ~plan_seed =
  let dev = make_dev ~n_blocks ~ras_on in
  let n_tips = (Sero.Device.config dev).Sero.Device.n_tips in
  let pbas = data_pbas dev sectors in
  write_all dev pbas;
  let plan =
    Fault.Plan.make ~seed:plan_seed ~read_ber:ber
      ~tip_deaths:
        (List.init dead_tips (fun t ->
             { Fault.Plan.tip = 7 * (t + 1) mod n_tips; after_ops = 0 }))
      ()
  in
  let inj = Fault.Injector.create plan in
  Sero.Device.install_fault dev inj;
  let pdev = Sero.Device.pdevice dev in
  Probe.Pdevice.reset_ledger pdev;
  let unrecoverable =
    List.fold_left
      (fun acc pba ->
        match Sero.Device.read_block dev ~pba with
        | Ok _ -> acc
        | Error _ -> acc + 1)
      0 pbas
  in
  let elapsed = Probe.Pdevice.elapsed pdev in
  let s = Sero.Device.stats dev in
  let throughput_mbs =
    if elapsed <= 0. then 0.
    else float_of_int (List.length pbas * 512) /. elapsed /. 1e6
  in
  ( {
      ber;
      dead_tips;
      ras_on;
      sectors = List.length pbas;
      unrecoverable;
      retries = s.Sero.Device.retries;
      repulses = s.Sero.Device.repulses;
      remapped = s.Sero.Device.remapped_tips;
      throughput_mbs;
      deterministic = true;
    },
    Fault.Injector.ledger_to_string inj )

let run_cell ?(n_blocks = 64) ?(sectors = 56) ~ber ~dead_tips ~ras_on
    ~plan_seed () =
  let row1, ledger1 =
    cell_once ~n_blocks ~sectors ~ber ~dead_tips ~ras_on ~plan_seed
  in
  let _, ledger2 =
    cell_once ~n_blocks ~sectors ~ber ~dead_tips ~ras_on ~plan_seed
  in
  { row1 with deterministic = String.equal ledger1 ledger2 }

let sweep ?(bers = [ 0.; 1e-4; 2e-3; 5e-3 ]) ?(dead = [ 0; 1; 2 ]) () =
  (* Each cell builds its own devices and injector from (ber, dead,
     ras, seed) alone, so the flattened grid fans out on the pool with
     sequential-identical output. *)
  let grid =
    List.concat_map
      (fun ber ->
        List.concat_map
          (fun dead_tips ->
            (* Same plan seed for both arms: identical fault plans. *)
            let plan_seed =
              1 + (1000 * dead_tips) + int_of_float (1e6 *. ber)
            in
            List.map
              (fun ras_on -> (ber, dead_tips, ras_on, plan_seed))
              [ false; true ])
          dead)
      bers
  in
  Sim.Pool.parallel_map
    (fun (ber, dead_tips, ras_on, plan_seed) ->
      run_cell ~ber ~dead_tips ~ras_on ~plan_seed ())
    grid

(* {1 Torn-burn recovery} *)

type torn_demo = {
  cut_after_cells : int;
  verdict_before : Sero.Tamper.verdict;
  classified : Sero.Device.block_class;
  completion_ok : bool;
  verdict_after : Sero.Tamper.verdict;
}

let fill_line dev line =
  let lay = Sero.Device.layout dev in
  List.iteri
    (fun i pba ->
      match Sero.Device.write_block dev ~pba (Printf.sprintf "line data %d" i) with
      | Ok () -> ()
      | Error _ -> ())
    (Sero.Layout.data_blocks_of_line lay line)

(* Burn line [line] but cut the power after [cells] ewb pulses (a full
   burn is one pulse per Manchester cell = 2048). *)
let tear_line dev ~line ~cells =
  let inj =
    Fault.Injector.create (Fault.Plan.make ~power_cut_after_ewb:cells ())
  in
  Sero.Device.install_fault dev inj;
  (match Sero.Device.heat_line dev ~line () with
  | exception Fault.Injector.Power_cut -> ()
  | Ok _ | Error _ -> ());
  Sero.Device.clear_fault dev

let torn_recovery ?(cut_after_cells = 700) () =
  let dev = make_dev ~n_blocks:64 ~ras_on:true in
  let lay = Sero.Device.layout dev in
  fill_line dev 1;
  tear_line dev ~line:1 ~cells:cut_after_cells;
  let verdict_before = Sero.Device.verify_line dev ~line:1 in
  let classified =
    Sero.Device.classify_block dev ~pba:(Sero.Layout.hash_block_of_line lay 1)
  in
  let completion_ok =
    match Sero.Device.heat_line dev ~line:1 () with
    | Ok _ -> true
    | Error _ -> false
  in
  let verdict_after = Sero.Device.verify_line dev ~line:1 in
  { cut_after_cells; verdict_before; classified; completion_ok; verdict_after }

(* {1 Power-cut rate} *)

type powercut_row = {
  lines_cut : int;
  tampered_without_ras : int;
  recovered_with_scrub : int;
}

let torn_device ~lines_cut ~ras_on =
  let dev = make_dev ~n_blocks:64 ~ras_on in
  for line = 0 to lines_cut - 1 do
    fill_line dev line;
    tear_line dev ~line ~cells:(600 + (97 * line))
  done;
  dev

let powercut_series ?(cuts = [ 1; 2; 4 ]) () =
  Sim.Pool.parallel_map
    (fun lines_cut ->
      let dev_off = torn_device ~lines_cut ~ras_on:false in
      let tampered_without_ras =
        List.length
          (List.filter
             (fun line -> Sero.Tamper.is_tampered (Sero.Device.verify_line dev_off ~line))
             (List.init lines_cut Fun.id))
      in
      let dev_on = torn_device ~lines_cut ~ras_on:true in
      let report = Sero.Scrub.pass dev_on in
      {
        lines_cut;
        tampered_without_ras;
        recovered_with_scrub = List.length report.Sero.Scrub.torn_completed;
      })
    cuts

let print ppf =
  Format.fprintf ppf "E18 — fault injection and RAS recovery@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf
    "read sweep under identical fault plans (56 sectors, same seed per \
     pair):@.";
  Format.fprintf ppf "  %-9s %-5s %-4s %-7s %-8s %-8s %-7s %-10s %-5s@." "BER"
    "dead" "ras" "unrec" "retries" "remaps" "repulse" "MB/s" "det";
  let rows = sweep () in
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-9g %-5d %-4s %-7d %-8d %-8d %-7d %-10.3f %-5s@."
        r.ber r.dead_tips
        (if r.ras_on then "on" else "off")
        r.unrecoverable r.retries r.remapped r.repulses r.throughput_mbs
        (if r.deterministic then "yes" else "NO"))
    rows;
  let torn = torn_recovery () in
  Format.fprintf ppf
    "torn burn (power cut after %d of 2048 cells): before=%a class=%a@.  \
     completion=%s after=%a@."
    torn.cut_after_cells Sero.Tamper.pp_verdict torn.verdict_before
    Sero.Device.pp_block_class torn.classified
    (if torn.completion_ok then "ok" else "FAILED")
    Sero.Tamper.pp_verdict torn.verdict_after;
  Format.fprintf ppf "power cuts mid-burn, with and without a scrub pass:@.";
  Format.fprintf ppf "  %-10s %-22s %-22s@." "lines cut" "tampered (ras off)"
    "recovered (ras+scrub)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-10d %-22d %-22d@." r.lines_cut
        r.tampered_without_ras r.recovered_with_scrub)
    (powercut_series ());
  let all_det = List.for_all (fun r -> r.deterministic) rows in
  Format.fprintf ppf
    "finding: a dead tip is fatal without sparing and free with it (minus \
     a@.settle-time tax per scan row); retries absorb BER the RS budget \
     alone@.cannot; torn burns are recoverable, and every injection ledger \
     replayed@.bit-identically (%s).@."
    (if all_det then "deterministic" else "NON-DETERMINISTIC!")
