(* E27 — insider-attack campaigns vs. a bounded audit budget: the
   detection-latency / audit-cost frontier.

   Three audit-spend levels (starved, scrub-only, reference) are run
   against all five attack classes of Security.Campaign, then attacker
   budget and fleet size are swept at the reference spend.  Every cell
   is a pure function of (seed, sites, attack, adversary, defender) via
   Sim.Fleet.map_merge — byte-identical for any SERO_JOBS. *)

module C = Security.Campaign

let frontier_sites = 6
let headline_sites = 4
let scaling_budgets = [ 3; 12 ]
let scaling_fleets = [ 6; 18 ]
let scaling_compromised = 0.5

let defenders =
  [
    ("starved", C.starved_defender);
    ("scrub-only", C.scrub_only_defender);
    ("reference", C.reference_defender);
  ]

type cell = { c_defender : string; c_attack : C.attack; c_res : C.result }

let frontier ?(sites = frontier_sites) () =
  List.concat_map
    (fun (c_defender, d) ->
      List.map
        (fun c_attack ->
          {
            c_defender;
            c_attack;
            c_res =
              C.run ~sites ~attack:c_attack ~adversary:C.default_adversary
                ~defender:d ();
          })
        C.all_attacks)
    defenders

type scaling_cell = {
  s_budget : int;
  s_fleet : int;
  s_res : C.result;
}

let scaling ?(attack = C.Selective_tamper) () =
  List.concat_map
    (fun s_budget ->
      List.map
        (fun s_fleet ->
          {
            s_budget;
            s_fleet;
            s_res =
              C.run ~sites:s_fleet ~attack
                ~adversary:
                  {
                    C.default_adversary with
                    ops_budget = s_budget;
                    compromised = scaling_compromised;
                  }
                ~defender:C.reference_defender ();
          })
        scaling_fleets)
    scaling_budgets

type headline = {
  h_ref_landed : int;
  h_ref_undetected : int;  (** Acceptance: 0. *)
  h_ref_det_p50_ms : float;
  h_ref_det_p99_ms : float;
  h_ref_audit_spend : int;
  h_race_wins : int;  (** Insider races won vs the sequential sweep. *)
  h_races : int;
  h_starved_undetected : int;  (** Acceptance: nonzero. *)
  h_spares_burned : int;
}

let quantiles_or_zero s =
  if Sim.Stats.count s > 0 then Sim.Stats.quantiles s else (0., 0., 0.)

let headline ?(sites = headline_sites) () =
  let reference =
    C.merge
      (List.map
         (fun attack ->
           C.run ~sites ~attack ~adversary:C.default_adversary
             ~defender:C.reference_defender ())
         C.all_attacks)
  in
  let race =
    C.run ~sites ~attack:C.Scrubber_race ~adversary:C.default_adversary
      ~defender:C.scrub_only_defender ()
  in
  let starved =
    C.merge
      (List.map
         (fun attack ->
           C.run ~sites ~attack ~adversary:C.default_adversary
             ~defender:C.starved_defender ())
         [ C.Selective_tamper; C.Spare_exhaustion ])
  in
  let p50, _, p99 = quantiles_or_zero reference.C.r_det_latency_ms in
  {
    h_ref_landed = reference.C.r_landed;
    h_ref_undetected = reference.C.r_undetected;
    h_ref_det_p50_ms = p50;
    h_ref_det_p99_ms = p99;
    h_ref_audit_spend = C.audit_spend reference;
    h_race_wins = race.C.r_race_wins;
    h_races = race.C.r_races;
    h_starved_undetected = starved.C.r_undetected;
    h_spares_burned = reference.C.r_spares_burned + starved.C.r_spares_burned;
  }

let print ppf =
  Format.fprintf ppf
    "E27 — insider campaigns vs. a bounded audit budget@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf
    "  %-10s %-16s %6s %6s %4s %6s %9s %9s %5s %6s@." "defender" "attack"
    "spend" "landed" "det" "undet" "p50(ms)" "p99(ms)" "race" "spares";
  List.iter
    (fun { c_defender; c_attack; c_res = r } ->
      let p50, _, p99 = quantiles_or_zero r.C.r_det_latency_ms in
      Format.fprintf ppf
        "  %-10s %-16s %6d %6d %4d %6d %9.1f %9.1f %2d/%-2d %6d@."
        c_defender (C.attack_name c_attack) (C.audit_spend r) r.C.r_landed
        r.C.r_detected r.C.r_undetected p50 p99 r.C.r_race_wins r.C.r_races
        r.C.r_spares_burned)
    (frontier ());
  Format.fprintf ppf
    "@.attacker budget x fleet size at the reference spend \
     (selective-tamper, %.0f%% of@."
    (scaling_compromised *. 100.);
  Format.fprintf ppf "the fleet compromised):@.";
  Format.fprintf ppf "  %6s %6s %6s %6s %4s %6s %9s@." "budget" "fleet"
    "owned" "landed" "det" "undet" "p99(ms)";
  List.iter
    (fun { s_budget; s_fleet; s_res = r } ->
      let _, _, p99 = quantiles_or_zero r.C.r_det_latency_ms in
      Format.fprintf ppf "  %6d %6d %6d %6d %4d %6d %9.1f@." s_budget s_fleet
        r.C.r_compromised r.C.r_landed r.C.r_detected r.C.r_undetected p99)
    (scaling ());
  let h = headline () in
  Format.fprintf ppf
    "@.reference spend: %d tampers landed across 5 attack classes, %d \
     undetected@."
    h.h_ref_landed h.h_ref_undetected;
  Format.fprintf ppf
    "(0 expected) — detection p50 %.0f ms, p99 %.0f ms for %d units of audit@."
    h.h_ref_det_p50_ms h.h_ref_det_p99_ms h.h_ref_audit_spend;
  Format.fprintf ppf
    "spend; starving the audit leaves %d of the same tampers unseen (> 0@."
    h.h_starved_undetected;
  Format.fprintf ppf
    "expected).  An insider racing the sequential sweep wins %d/%d races;@."
    h.h_race_wins h.h_races;
  Format.fprintf ppf
    "the sampled planner erases that knowledge.  The wear-ramp campaign@.";
  Format.fprintf ppf
    "drains %d spare lines before its tamper lands.  Detection is bought,@."
    h.h_spares_burned;
  Format.fprintf ppf
    "not assumed: the frontier prices tamper-evidence in audit traffic.@."
