type row = {
  policy : string;
  depth : int;
  scrub_hz : float;
  ops : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_service_ms : float;
  iops : float;
  bg_lines : int;
  depth_counts : int array;
}

(* Closed-loop client think time: long enough that background work can
   slip into the gaps (as on a real system), short enough to keep the
   queue loaded at depth 16. *)
let think_s = 0.005

let run_cell ?(ops = 240) ~policy ~depth ~scrub_period () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:512 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  let data_pbas =
    List.init (Sero.Layout.n_lines lay) Fun.id
    |> List.concat_map (Sero.Layout.data_blocks_of_line lay)
    |> Array.of_list
  in
  let payload_of pba =
    String.init 256 (fun i -> Char.chr ((pba + (7 * i)) land 0xff))
  in
  (* Prefill every data block so reads are honest (done synchronously,
     before the clock starts: the queue measures deltas only). *)
  Array.iter
    (fun pba ->
      match Sero.Device.write_block dev ~pba (payload_of pba) with
      | Ok () -> ()
      | Error _ -> assert false)
    data_pbas;
  let des = Sim.Des.create () in
  let q = Sero.Queue.create ~policy des dev in
  let rng = Sim.Prng.create 0xE20 in
  let zipf = Workload.Zipf.create ~n:(Array.length data_pbas) ~theta:0.9 in
  let issued = ref 0 and done_fg = ref 0 in
  let rec spawn () =
    if !issued < ops then begin
      incr issued;
      let pba = data_pbas.(Workload.Zipf.sample zipf rng) in
      let finish () =
        incr done_fg;
        Sim.Des.schedule des ~delay:think_s (fun _ -> spawn ())
      in
      if Sim.Prng.bernoulli rng 0.67 then
        Sero.Queue.submit_read q ~pba (fun _ -> finish ())
      else
        Sero.Queue.submit_write q ~pba (payload_of pba) (fun _ -> finish ())
    end
  in
  (match scrub_period with
  | None -> ()
  | Some period ->
      ignore
        (Sero.Queue.schedule_scrub q ~period ~stop:(fun () -> !done_fg >= ops)));
  for _ = 1 to depth do
    spawn ()
  done;
  Sim.Des.run des;
  let fg = Sero.Queue.Foreground and bg = Sero.Queue.Background in
  let lat = Sero.Queue.latency q fg in
  let p50, p95, p99 = Sim.Stats.quantiles lat in
  let completed = Sero.Queue.completed q fg in
  let t_end = Sero.Queue.last_completion q fg in
  {
    policy = Format.asprintf "%a" Probe.Sched.pp_policy policy;
    depth;
    scrub_hz = (match scrub_period with None -> 0. | Some p -> 1. /. p);
    ops = completed;
    p50_ms = 1e3 *. p50;
    p95_ms = 1e3 *. p95;
    p99_ms = 1e3 *. p99;
    mean_service_ms = 1e3 *. Sim.Stats.mean (Sero.Queue.service q);
    iops =
      (if t_end > 0. then float_of_int completed /. t_end else 0.);
    bg_lines = Sero.Queue.completed q bg;
    depth_counts = Sim.Stats.Histogram.counts (Sero.Queue.depth_histogram q);
  }

let depths = [ 1; 4; 16 ]
let scrub_periods = [ None; Some 0.2; Some 0.04 ]

let sweep ?(ops = 240) () =
  let cells =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun depth ->
            List.map (fun sp -> (policy, depth, sp)) scrub_periods)
          depths)
      Probe.Sched.all_policies
  in
  Sim.Pool.parallel_map
    (fun (policy, depth, scrub_period) ->
      run_cell ~ops ~policy ~depth ~scrub_period ())
    cells

let pp_hist ppf counts =
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i) counts;
  Format.pp_print_string ppf "[";
  for i = 0 to !last do
    Format.fprintf ppf "%s%d" (if i > 0 then " " else "") counts.(i)
  done;
  Format.pp_print_string ppf "]"

let print ppf =
  let rows = sweep () in
  Format.fprintf ppf "E20 — request queueing: depth x policy x scrub@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "  %-9s %5s %8s %6s %8s %8s %8s %9s %6s %3s  %s@."
    "policy" "depth" "scrub/s" "ops" "p50(ms)" "p95(ms)" "p99(ms)"
    "svc(ms)" "iops" "bg" "depth hist (bin=4)";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-9s %5d %8.0f %6d %8.2f %8.2f %8.2f %9.2f %6.0f %3d  %a@."
        r.policy r.depth r.scrub_hz r.ops r.p50_ms r.p95_ms r.p99_ms
        r.mean_service_ms r.iops r.bg_lines pp_hist r.depth_counts)
    rows;
  (* Headline comparisons the acceptance criteria care about. *)
  let find policy depth hz =
    List.find
      (fun r -> r.policy = policy && r.depth = depth && r.scrub_hz = hz)
      rows
  in
  let fifo = find "fifo" 16 0.
  and sstf = find "sstf" 16 0.
  and elev = find "elevator" 16 0. in
  Format.fprintf ppf
    "at depth 16 (no scrub): mean service fifo=%.2f ms, sstf=%.2f ms \
     (%.2fx), elevator=%.2f ms (%.2fx)@."
    fifo.mean_service_ms sstf.mean_service_ms
    (fifo.mean_service_ms /. sstf.mean_service_ms)
    elev.mean_service_ms
    (fifo.mean_service_ms /. elev.mean_service_ms);
  let quiet = find "elevator" 1 0. and busy = find "elevator" 1 25. in
  Format.fprintf ppf
    "background scrub contention (depth 1): p50 %.2f -> %.2f ms, p95 %.2f \
     -> %.2f ms at 25 sweeps/s (%d lines swept); at higher depths strict \
     foreground priority starves the scrubber instead (bg column).@."
    quiet.p50_ms busy.p50_ms quiet.p95_ms busy.p95_ms busy.bg_lines;
  Format.fprintf ppf
    "queueing makes the policies real: E19 estimated travel, E20 measures@.";
  Format.fprintf ppf
    "waiting — depth drives the reordering window a single sled can exploit.@."
