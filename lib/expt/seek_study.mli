(** E19 — sled scheduling: random IO service time vs. request ordering.

    Section 3 expects the SERO device to offer disk-class random WMRM
    access; like a disk, the shared sled rewards elevator scheduling.
    The experiment serves random block batches under FIFO, SSTF and
    elevator ordering and reports simulated service time per batch —
    who wins and by what factor. *)

type row = {
  policy : string;
  batch : int;
  mean_service_s : float;  (** Simulated time to serve one batch. *)
  vs_fifo : float;  (** Speed-up factor over FIFO. *)
}

val sweep : ?batches:int -> ?batch_size:int -> unit -> row list
val print : Format.formatter -> unit
