(** E25 — multi-tenant QoS: tenant count × arbiter policy under
    closed-loop Zipf traffic through the host front-end
    ({!Host.Server} over {!Sero.Queue}).

    Tenant 1 is the {e light} tenant (one client stream); every other
    tenant is {e heavy} (8 streams at the same think time — 8× the
    offered load).  The sweep contrasts {!Host.Arbiter.Fair_share}
    against {!Host.Arbiter.Arrival_order} on the light tenant's read
    p99, plus a solo baseline and a rate-limited overload cell whose
    rejection counters exercise admission control deterministically.
    Cells are self-seeded and fan out over {!Sim.Pool.parallel_map} —
    output is byte-identical for any [SERO_JOBS]. *)

type row = {
  cell : string;  (** ["solo"], ["wfs x2"], ["fifo x8"], ["overload"]. *)
  policy : string;
  n_tenants : int;
  tenant : int;
  streams : int;  (** Closed-loop client streams of this tenant. *)
  completed : int;
  rejected : int;
  read_p50_ms : float;
  read_p95_ms : float;
  read_p99_ms : float;
  p99_ms : float;  (** All-command p99 (reads + writes). *)
  energy_j : float;
  service_s : float;  (** Sled-busy seconds charged to the tenant. *)
}

val default_ops : int
(** Operations per client stream (40). *)

val sweep : ?ops:int -> unit -> row list
(** One row per (cell, tenant). *)

type headline = {
  solo_p99_ms : float;  (** Light tenant alone. *)
  fifo_p99_ms : float;  (** Light tenant vs one heavy, arrival order. *)
  wfs_p99_ms : float;  (** Light tenant vs one heavy, fair share. *)
  fifo_ratio : float;
  wfs_ratio : float;  (** Acceptance: within 2× of solo. *)
  overload_rejected : int;
  overload_rejection_pct : float;
}

val headline_of : row list -> headline
val headline : ?ops:int -> unit -> headline
val print : Format.formatter -> unit
