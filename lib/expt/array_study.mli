(** E23 — the sharded array at fleet scale: durability, detection
    latency and audit cost under replica tamper and whole-device loss.

    A grid of (array size × replication factor) × (tamper count ×
    loss count) cells.  Each cell builds a fresh volume, fills and
    heats it, scripts its disaster as a replayable
    {!Fault.Plan.array_plan}, then measures:

    - {b durability}: records whose bytes are wrong or missing {e
      without} the quorum flagging the line — the undetected-loss
      count the acceptance criterion requires to be zero whenever
      replication ≥ 2;
    - {b detection latency}: audited lines (in audit order) before the
      first tampered or diverging replica is charged;
    - {b audit cost}: electrical hash reads + data verifies spent by a
      full volume attestation;
    - {b rebuild}: the failed/outvoted member is rebuilt onto the
      spare and every re-burned line must reproduce the pre-failure
      burned hash.

    Cells are pure functions of their parameters and fan out on
    {!Sim.Pool}; output is byte-identical for any [SERO_JOBS]/[-j]. *)

type cell = {
  slots : int;
  replication : int;
  tampers : int;  (** Tampered replicas (distinct heated lines). *)
  losses : int;  (** Whole-device member losses. *)
}

type row = {
  c : cell;
  records : int;
  heated_lines : int;
  undetected_loss : int;
  unreadable_records : int;  (** Reads that failed outright (flagged). *)
  detected_replicas : int;  (** Convictions + divergences charged. *)
  detection_latency : int;
      (** Lines audited before the first charge; [-1] when the cell
          injects nothing to detect. *)
  audit_hash_reads : int;
  audit_data_verifies : int;
  degraded_reads : int;
  rebuild_hash_ok : bool;
      (** Every line re-burned on the spare reproduces the pre-failure
          hash and no re-attestation failed. *)
  post_rebuild_attested : int;
      (** Heated lines attested by a full verify after the rebuild. *)
}

val default_grid : cell list

val run_cell : cell -> row
val sweep : ?grid:cell list -> unit -> row list

type headline = {
  h_undetected : float;  (** Total undetected record loss (must be 0). *)
  h_detected : float;  (** Total replicas charged across the grid. *)
  h_rebuild_pct : float;  (** Cells whose rebuild reproduced hashes. *)
  h_attested_pct : float;  (** Post-rebuild heated lines attested. *)
  h_audit_per_line : float;  (** Audit ops per logical line. *)
}

val headline : ?grid:cell list -> unit -> headline
val print : Format.formatter -> unit
