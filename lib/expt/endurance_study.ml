(* E22 — the endurance lifecycle: does health-led retirement save data?

   Two devices with identical geometry (both reserve the same spare
   region, so the usable address space matches block for block) live
   through the same ramping wear schedule; only [health_enabled]
   differs.  Wear is persistent magnetic damage: each epoch flips a
   growing number of dots on a fixed set of {e physical} weak lines,
   chosen by a seeded PRNG so both arms are hit at the same dot
   addresses.  The lifecycle arm watches its RS correction margins and
   evacuates weakening lines onto spares; the baseline arm rides the
   RS budget until sectors die. *)

type arm_result = {
  lost : int;  (** Records unreadable at the end of the run. *)
  migrated : int;
  audit_ok : int;
      (** Migrated heated lines that still verify [Intact] at their new
          home. *)
  audit_total : int;
  reattest_failures : int;
  state : Sero.Device.device_state;
}

type row = { trial : int; records : int; off : arm_result; on_ : arm_result }

let spare_lines = 4
let n_weak = 3
let epochs = 8

(* Per data block, per epoch step: epoch e adds [flips_step * e] flips
   to every sector of a weak line.  Calibrated against the retirement
   threshold below: margins cross 0.7 around epoch 3 (cumulative ~12
   corrected symbols per sector), while the RS budget dies around
   epoch 5 — the lifecycle gets a two-epoch window to act. *)
let flips_step = 2
let retire_margin = 0.7

let make_dev ~health_on =
  let base = Sero.Device.default_config ~n_blocks:128 ~line_exp:3 () in
  Sero.Device.create
    {
      base with
      Sero.Device.endurance =
        {
          Sero.Device.health_enabled = health_on;
          spare_lines;
          ewma_alpha = 0.4;
          retire_margin;
        };
    }

(* Flip [per_block] random magnetised dots in every data block of a
   {e physical} line (the write-once area is left alone: wear here
   models decaying data retention, not hash vandalism).  Damage is
   dealt per block so each sector's corrected-symbol count tracks the
   cumulative dose — the signal the ledger actually smooths. *)
let damage_line lay medium rng ~phys per_block =
  let bpl = Sero.Layout.blocks_per_line lay in
  for blk = 1 to bpl - 1 do
    let pba = (phys * bpl) + blk in
    for _ = 1 to per_block do
      let dot =
        Sero.Layout.block_first_dot lay pba
        + Sim.Prng.int rng Sero.Layout.block_dots
      in
      match Pmedia.Medium.get medium dot with
      | Pmedia.Dot.Magnetised Pmedia.Dot.Up ->
          Pmedia.Medium.set medium dot (Pmedia.Dot.Magnetised Pmedia.Dot.Down)
      | Pmedia.Dot.Magnetised Pmedia.Dot.Down ->
          Pmedia.Medium.set medium dot (Pmedia.Dot.Magnetised Pmedia.Dot.Up)
      | Pmedia.Dot.Heated -> ()
    done
  done

(* The fixed weak set of a trial: distinct physical lines in the usable
   region, the same for both arms. *)
let weak_lines ~trial ~usable =
  let rng = Sim.Prng.create (1009 * (trial + 1)) in
  let rec pick acc =
    if List.length acc >= n_weak then List.rev acc
    else
      let l = Sim.Prng.int rng usable in
      if List.mem l acc then pick acc else pick (l :: acc)
  in
  pick []

let run_arm ~trial ~health_on =
  let dev = make_dev ~health_on in
  let lay = Sero.Device.layout dev in
  let medium = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
  let usable = Sero.Layout.usable_lines lay in
  let data_pbas =
    List.concat_map
      (fun line -> Sero.Layout.data_blocks_of_line lay line)
      (List.init usable Fun.id)
  in
  List.iteri
    (fun i pba ->
      match
        Sero.Device.write_block dev ~pba (Printf.sprintf "endure r%04d" i)
      with
      | Ok () -> ()
      | Error _ -> ())
    data_pbas;
  (* Heat every even line: those records are read-only and attested, so
     without migration their loss is permanent and with migration the
     evidence chain must survive the move. *)
  for line = 0 to usable - 1 do
    if line mod 2 = 0 then
      match Sero.Device.heat_line dev ~line ~timestamp:(float_of_int line) () with
      | Ok _ | Error _ -> ()
  done;
  let weak = weak_lines ~trial ~usable in
  let lost = ref 0 in
  for epoch = 1 to epochs do
    (* Ramping wear, seeded by (trial, epoch) only, so the off and on
       arms replay identical damage at identical dot addresses. *)
    let rng = Sim.Prng.create ((7919 * (trial + 1)) + (131 * epoch)) in
    List.iter
      (fun phys -> damage_line lay medium rng ~phys (flips_step * epoch))
      weak;
    (* The read sweep is the workload: it is also what feeds the health
       ledger its corrected-symbol samples. *)
    lost := 0;
    List.iter
      (fun pba ->
        match Sero.Device.read_block dev ~pba with
        | Ok _ -> ()
        | Error _ -> incr lost)
      data_pbas;
    ignore
      (Sero.Device.maintenance dev ~timestamp:(1000. +. float_of_int epoch) ())
  done;
  (* Final account: what is still readable, and does every migrated
     heated line still verify at its new home? *)
  lost := 0;
  List.iter
    (fun pba ->
      match Sero.Device.read_block dev ~pba with
      | Ok _ -> ()
      | Error _ -> incr lost)
    data_pbas;
  let migrations = Sero.Device.migrations dev in
  let heated_migs =
    List.filter (fun m -> m.Sero.Device.m_heated) migrations
  in
  let audit_ok =
    List.length
      (List.filter
         (fun m ->
           Sero.Device.verify_line dev ~line:m.Sero.Device.m_line
           = Sero.Tamper.Intact)
         heated_migs)
  in
  let s = Sero.Device.stats dev in
  ( {
      lost = !lost;
      migrated = List.length migrations;
      audit_ok;
      audit_total = List.length heated_migs;
      reattest_failures = s.Sero.Device.reattest_failures;
      state = Sero.Device.device_state dev;
    },
    List.length data_pbas )

let run_trial trial =
  let off, records = run_arm ~trial ~health_on:false in
  let on_, _ = run_arm ~trial ~health_on:true in
  { trial; records; off; on_ }

let sweep ?(trials = 4) () =
  (* Each trial is a pure function of its index, so the fan-out is
     byte-identical for any worker count. *)
  Sim.Pool.parallel_map run_trial (List.init trials Fun.id)

type headline = {
  lost_off : float;
  lost_on : float;
  saved_pct : float;
  audit_pct : float;
}

let headline ?(trials = 2) () =
  let rows = sweep ~trials () in
  let sum f = float_of_int (List.fold_left (fun a r -> a + f r) 0 rows) in
  let lost_off = sum (fun r -> r.off.lost) in
  let lost_on = sum (fun r -> r.on_.lost) in
  let audit_total = sum (fun r -> r.on_.audit_total) in
  let audit_ok = sum (fun r -> r.on_.audit_ok) in
  {
    lost_off;
    lost_on;
    saved_pct =
      (if lost_off <= 0. then 0.
       else 100. *. (lost_off -. lost_on) /. lost_off);
    audit_pct =
      (if audit_total <= 0. then 100. else 100. *. audit_ok /. audit_total);
  }

let pp_state ppf = Sero.Device.pp_device_state ppf

let print ppf =
  Format.fprintf ppf "E22 — media endurance lifecycle@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf
    "%d weak lines per device, %d epochs of ramping dot decay (+%d \
     flips/sector@.per epoch step), lifecycle off vs on under identical \
     damage:@."
    n_weak epochs flips_step;
  Format.fprintf ppf "  %-6s %-8s %-14s %-26s %-10s@." "trial" "records"
    "lost off/on" "migrated (audit ok/total)" "state on";
  let rows = sweep () in
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-6d %-8d %3d / %-8d %d (%d/%d, %d refused)%10s%a@."
        r.trial r.records r.off.lost r.on_.lost r.on_.migrated r.on_.audit_ok
        r.on_.audit_total r.on_.reattest_failures " " pp_state r.on_.state)
    rows;
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  let lost_off = tot (fun r -> r.off.lost)
  and lost_on = tot (fun r -> r.on_.lost)
  and audit_ok = tot (fun r -> r.on_.audit_ok)
  and audit_total = tot (fun r -> r.on_.audit_total) in
  Format.fprintf ppf
    "finding: the ledger retires weak lines while their sectors are still@.\
     correctable, so records survive (%d lost with the lifecycle on vs %d@.\
     without) and every migrated heated line re-verifies at its new home@.\
     (%d/%d) — the burned hash moves with the data, not with the medium.@."
    lost_on lost_off audit_ok audit_total
