type damage_row = {
  material : string;
  pitch_nm : float;
  decay_over_pitch : float;
  peak_c : float;
  neighbour_c : float;
  target_destroyed : bool;
  neighbour_damage_p : float;
}

let materials =
  [ Physics.Constants.co_pt; Physics.Constants.co_pt_low_temp ]

let damage_sweep () =
  (* Flatten the design grid first (cheap), then evaluate the cells on
     the pool; each cell is pure, so the flattened order makes parallel
     output identical to sequential. *)
  let grid =
    List.concat_map
      (fun m ->
        List.concat_map
          (fun geometry ->
            List.concat_map
              (fun decay_over_pitch ->
                List.map
                  (fun peak_c -> (m, geometry, decay_over_pitch, peak_c))
                  [ 1200.; 1650.; 2500.; 4000. ])
              [ 0.5; 2.; 8. ])
          [ Physics.Constants.dot_100nm ])
      materials
  in
  Sim.Pool.parallel_map
    (fun (m, geometry, decay_over_pitch, peak_c) ->
      let profile =
        {
          (Physics.Thermal.default_profile geometry) with
          Physics.Thermal.peak_temp_c = peak_c;
          decay_length = decay_over_pitch *. geometry.Physics.Constants.pitch;
        }
      in
      {
        material = m.Physics.Constants.label;
        pitch_nm = geometry.Physics.Constants.pitch *. 1e9;
        decay_over_pitch;
        peak_c;
        neighbour_c =
          Physics.Thermal.neighbour_temperature profile
            ~pitch:geometry.Physics.Constants.pitch;
        target_destroyed = Physics.Thermal.target_destroyed m profile;
        neighbour_damage_p =
          Physics.Thermal.neighbour_damage_probability m profile
            ~pitch:geometry.Physics.Constants.pitch;
      })
    grid

type spreading_row = {
  encoding : string;
  heated_dots : int;
  max_run : int;
  worst_dot_risk : float;
  expected_collateral : float;
}

(* Dense encoding strawman: the 256 hash bits burned directly, one dot
   per bit — roughly half the dots heated in contiguous clumps. *)
let dense_pattern payload =
  let bits = Codec.Manchester.encode payload in
  (* Take the logical bits only: dot 2k+1 of each cell is the bit value. *)
  Array.init
    (Array.length bits / 2)
    (fun cell -> bits.((2 * cell) + 1))

(* Thermal superposition: every write pulse within the decay length
   contributes an independent destruction chance to a surviving dot, so
   clustered heat makes hot spots that isolated pairs never do. *)
let dot_risks m profile ~pitch pattern =
  let n = Array.length pattern in
  let horizon = 16 in
  Array.init n (fun i ->
      if pattern.(i) then 0.
      else begin
        let survive = ref 1. in
        for j = max 0 (i - horizon) to min (n - 1) (i + horizon) do
          if pattern.(j) && j <> i then begin
            let r = float_of_int (abs (j - i)) *. pitch in
            survive := !survive *. (1. -. Physics.Thermal.damage_probability m profile ~r)
          end
        done;
        1. -. !survive
      end)

let worst_dot_risk risks = Array.fold_left Float.max 0. risks
let expected_collateral risks = Array.fold_left ( +. ) 0. risks

let spreading ?(aggressive = true) () =
  let m = Physics.Constants.co_pt_low_temp in
  let g = Physics.Constants.dot_100nm in
  let profile =
    if aggressive then
      {
        (Physics.Thermal.default_profile g) with
        Physics.Thermal.peak_temp_c = 2500.;
        decay_length = 8. *. g.Physics.Constants.pitch;
      }
    else Physics.Thermal.default_profile g
  in
  let payload = String.init 32 (fun i -> Char.chr ((i * 37) mod 256)) in
  let manchester = Codec.Manchester.encode payload in
  let dense = dense_pattern payload in
  let row encoding pattern =
    let risks = dot_risks m profile ~pitch:g.Physics.Constants.pitch pattern in
    {
      encoding;
      heated_dots =
        Array.fold_left (fun a h -> if h then a + 1 else a) 0 pattern;
      max_run = Codec.Manchester.max_adjacent_heated pattern;
      worst_dot_risk = worst_dot_risk risks;
      expected_collateral = expected_collateral risks;
    }
  in
  [ row "Manchester (2 dots/bit)" manchester; row "dense (1 dot/bit)" dense ]

let print ppf =
  Format.fprintf ppf "E13 — neighbour thermal damage (Section 7)@.";
  Format.fprintf ppf "%s@." (String.make 90 '-');
  Format.fprintf ppf
    "  %-34s %-7s %-8s %-7s %-9s %-7s %-10s@." "material" "pitch" "lambda/p"
    "peak C" "neighb C" "dest?" "P(damage)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-34s %-7.0f %-8.1f %-7.0f %-9.0f %-7b %-10.3g@."
        r.material r.pitch_nm r.decay_over_pitch r.peak_c r.neighbour_c
        r.target_destroyed r.neighbour_damage_p)
    (damage_sweep ());
  Format.fprintf ppf "Manchester spreading vs dense encoding (hostile profile):@.";
  Format.fprintf ppf "  %-26s %-12s %-9s %-16s %-18s@." "encoding"
    "heated dots" "max run" "worst-dot risk" "expected collateral";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-26s %-12d %-9d %-16.4g %-18.4f@." r.encoding
        r.heated_dots r.max_run r.worst_dot_risk r.expected_collateral)
    (spreading ());
  Format.fprintf ppf
    "paper: spreading out heated bits is good for reliability; substrate \
     heat-sinking confines damage.@.";
  Format.fprintf ppf
    "finding: spreading bounds heated runs at 2 (the HH-code invariant) but \
     does NOT@.reduce the worst surviving dot's exposure, and the doubled \
     pulse count costs@.more total collateral -- Manchester's real virtue \
     is tamper evidence, not@.thermal reliability.@."
