(** E20 — request queueing: latency and throughput of the asynchronous
    pipeline under queue depth × scheduling policy × background scrub.

    A closed-loop Zipf workload ([depth] clients, each thinking briefly
    between requests) drives {!Sero.Queue} while a background scrubber
    submits line sweeps at a configurable rate.  Per cell the
    experiment reports foreground latency percentiles, throughput, mean
    sled service time, the queue-depth histogram, and how much
    background work got in — the numbers E19 could only estimate from
    travel costs. *)

type row = {
  policy : string;
  depth : int;  (** Closed-loop clients. *)
  scrub_hz : float;  (** Requested background line sweeps per second; 0 = off. *)
  ops : int;  (** Foreground requests completed. *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;  (** Foreground latency percentiles (milliseconds). *)
  mean_service_ms : float;  (** Mean sled occupancy per request group. *)
  iops : float;  (** Foreground completions per simulated second. *)
  bg_lines : int;  (** Scrub line sweeps completed. *)
  depth_counts : int array;  (** Queue-depth histogram (bin width 4). *)
}

val run_cell :
  ?ops:int -> policy:Probe.Sched.policy -> depth:int -> scrub_period:float option ->
  unit -> row
(** One self-seeded cell (own device, DES clock, queue and PRNG —
    deterministic in isolation, so the sweep can fan out). *)

val sweep : ?ops:int -> unit -> row list
(** The full policy × depth × scrub grid, fanned out over
    {!Sim.Pool.parallel_map}; output is identical for any job count. *)

val print : Format.formatter -> unit
