(** E26 — fleet-scale simulation substrate: CoW device cloning
    ({!Sero.Device.clone}), keyed per-device PRNG streams
    ({!Sim.Prng.stream}) and deterministic fan-out ({!Sim.Fleet}),
    with the calendar-queue scheduler ({!Sim.Des}) under the event
    load.

    Three cells:
    {ul
    {- {e fleet curve}: 64 → 4096 devices, each a CoW clone of a golden
       image running open-loop reads/writes/verifies plus background
       scrub on its own DES clock, parked afterwards; latency quantiles
       merge with {!Sim.Stats.merge_many} in shard order.}
    {- {e scheduler}: an identical dense self-rescheduling event
       population run under both {!Sim.Des.sched} twins; the headline
       is the comparison-work ratio (acceptance: ≥ 3×).}
    {- {e clones}: OCaml-heap words retained per idle parked clone
       (acceptance: ≤ 64 KiB) and private CoW segments (0 until
       written).}}

    Output is byte-identical for any [SERO_JOBS]; wall-clock
    throughput lines appear only when [SERO_E26_WALL] is set. *)

val default_ops : int
(** Open-loop operations per device (6). *)

val curve : int list
(** Fleet sizes swept by {!print} ([64; 256; 1024; 4096]). *)

type fleet = {
  f_devices : int;
  f_ops : int;  (** Operations completed across the fleet. *)
  f_events : int;  (** DES events fired across the fleet. *)
  f_sched_work : int;  (** Scheduler comparisons across the fleet. *)
  f_tampers : int;  (** Tamper verdicts (0 expected). *)
  f_fails : int;  (** Failed reads/writes/verifies (0 expected). *)
  f_scrub_rewrites : int;
  f_cow_segments : int;  (** Privately materialised medium segments. *)
  f_lat : Sim.Stats.t;  (** Per-operation device latency, ms. *)
}

val run_fleet : ?seed:int -> ?ops:int -> int -> fleet
(** [run_fleet n] simulates [n] cloned devices, fanned out over
    {!Sim.Fleet.map_merge}.  Pure in [(seed, ops, n)]. *)

type sched_cell = {
  s_population : int;
  s_fired : int;
  s_heap_work : int;
  s_wheel_work : int;
  s_speedup : float;  (** Heap work / wheel work; acceptance ≥ 3. *)
}

val sched_bench : ?population:int -> unit -> sched_cell
(** Dense-event comparison of the two scheduler twins (default
    population 8192, each event rescheduling itself 3 times). *)

type clone_cell = {
  c_clones : int;
  c_heap_kib : float;  (** OCaml heap per idle clone; acceptance ≤ 64. *)
  c_segments : float;  (** Private segments per idle clone (0.). *)
}

val measure_clones : ?clones:int -> unit -> clone_cell
(** Gc-measured footprint of [clones] (default 256) parked clones.
    Call before any {!Sim.Pool} fan-out for [SERO_JOBS]-independent
    numbers ({!print} and {!headline} do). *)

type headline = {
  h_devices : int;  (** Largest fleet in the curve. *)
  h_ops : int;
  h_tampers : int;
  h_fails : int;
  h_lat_p99_ms : float;
  h_wheel_speedup : float;
  h_clone_heap_kib : float;
  h_clone_segments : float;
  h_cow_kib_per_device : float;
}

val headline : ?devices:int -> ?ops:int -> unit -> headline
(** All three cells at bench scale (default 512 devices). *)

val print : Format.formatter -> unit
