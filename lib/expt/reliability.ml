type defect_row = {
  defect_rate : float;
  sectors : int;
  readable : int;
  mean_corrected : float;
}

(* Read every written sector back and report readability.  Corrected-
   symbol counts come from the frame decoder directly. *)
let survey dev pbas =
  let readable = ref 0 and corrected = ref 0 in
  List.iter
    (fun pba ->
      match Codec.Sector.decode (Sero.Device.unsafe_read_raw dev ~pba) with
      | Ok d ->
          incr readable;
          corrected := !corrected + d.Codec.Sector.corrected_symbols
      | Error _ -> ())
    pbas;
  ( !readable,
    if !readable = 0 then 0.
    else float_of_int !corrected /. float_of_int !readable )

let write_all dev pbas =
  List.iteri
    (fun i pba ->
      match
        Sero.Device.write_block dev ~pba (Printf.sprintf "reliability %d" i)
      with
      | Ok () -> ()
      | Error _ -> ())
    pbas

let data_pbas dev n =
  let lay = Sero.Device.layout dev in
  let rec take acc line =
    if List.length acc >= n || line >= Sero.Layout.n_lines lay then
      List.filteri (fun i _ -> i < n) acc
    else take (acc @ Sero.Layout.data_blocks_of_line lay line) (line + 1)
  in
  take [] 0

let defect_sweep ?(rates = [ 0.; 0.001; 0.002; 0.004; 0.008; 0.016; 0.032 ])
    ?(sectors = 56) () =
  (* Every cell builds its own seeded device, so the sweep fans out on
     the pool with output identical to a sequential map. *)
  Sim.Pool.parallel_map
    (fun defect_rate ->
      let config =
        {
          (Sero.Device.default_config ~n_blocks:128 ~line_exp:3 ()) with
          Sero.Device.defect_rate;
        }
      in
      let dev = Sero.Device.create config in
      let pbas = data_pbas dev sectors in
      write_all dev pbas;
      let readable, mean_corrected = survey dev pbas in
      { defect_rate; sectors = List.length pbas; readable; mean_corrected })
    rates

type tip_row = {
  failed_tips : int;
  sectors : int;
  readable : int;
  classified_bad : int;
  classified_heated : int;
}

let tip_sweep ?(max_failed = 3) ?(sectors = 28) () =
  Sim.Pool.parallel_map
    (fun failed_tips ->
      let dev =
        Sero.Device.create (Sero.Device.default_config ~n_blocks:64 ~line_exp:3 ())
      in
      let pbas = data_pbas dev sectors in
      write_all dev pbas;
      let tips = Probe.Pdevice.tips (Sero.Device.pdevice dev) in
      for t = 0 to failed_tips - 1 do
        Probe.Tips.fail_tip tips (7 * (t + 1) mod Probe.Tips.n_tips tips)
      done;
      let readable = ref 0 and bad = ref 0 and heated = ref 0 in
      List.iter
        (fun pba ->
          match Sero.Device.read_block dev ~pba with
          | Ok _ -> incr readable
          | Error _ -> (
              match Sero.Device.classify_block dev ~pba with
              | Sero.Device.Bad_block -> incr bad
              | Sero.Device.Heated_block -> incr heated
              | Sero.Device.Torn_block | Sero.Device.Healthy
              | Sero.Device.Retired_block -> ()))
        pbas;
      {
        failed_tips;
        sectors = List.length pbas;
        readable = !readable;
        classified_bad = !bad;
        classified_heated = !heated;
      })
    (List.init (max_failed + 1) (fun i -> i))

let print ppf =
  Format.fprintf ppf
    "E17 — media reliability vs the 15%% sector ECC budget@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "dot manufacturing defects (read-inverted dots):@.";
  Format.fprintf ppf "  %-12s %-9s %-10s %-18s@." "defect rate" "sectors"
    "readable" "corrected/sector";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %10.2f%% %-9d %-10d %-18.1f@."
        (100. *. r.defect_rate) r.sectors r.readable r.mean_corrected)
    (defect_sweep ());
  Format.fprintf ppf "failed probe tips (every 32nd dot becomes noise):@.";
  Format.fprintf ppf "  %-12s %-9s %-10s %-12s %-14s@." "failed tips"
    "sectors" "readable" "bad-class" "heated-class";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-12d %-9d %-10d %-12d %-14d@." r.failed_tips
        r.sectors r.readable r.classified_bad r.classified_heated)
    (tip_sweep ());
  Format.fprintf ppf
    "finding: the RS budget rides out ~0.5%% dot defects but a single dead \
     tip@.exceeds any per-sector code — probe devices need tip sparing, \
     which the paper@.does not discuss.  Dead-tip blocks classify as bad, \
     never as heated.@.Spare-tip remapping now exists (Probe.Tips.remap_tip \
     / Sero.Device ras config);@.E18 quantifies the recovery it buys.@."
