(* E23 — sharded-array robustness at fleet scale.

   Every cell is one scripted disaster on a fresh volume: seeded tamper
   and loss events land through a replayable array plan, a full read
   sweep measures what still serves (and counts degraded fall-through
   reads), a full quorum audit measures what gets flagged and what it
   costs, and a rebuild-onto-spare must reproduce the pre-failure
   burned hashes.  The acceptance criterion rides on [undetected_loss]:
   with replication >= 2 a record may die loudly (flagged line) but
   never silently. *)

type cell = { slots : int; replication : int; tampers : int; losses : int }

type row = {
  c : cell;
  records : int;
  heated_lines : int;
  undetected_loss : int;
  unreadable_records : int;
  detected_replicas : int;
  detection_latency : int;
  audit_hash_reads : int;
  audit_data_verifies : int;
  degraded_reads : int;
  rebuild_hash_ok : bool;
  post_rebuild_attested : int;
}

let default_grid =
  List.concat_map
    (fun (slots, replication) ->
      List.map
        (fun (tampers, losses) -> { slots; replication; tampers; losses })
        [ (1, 0); (0, 1); (2, 1) ])
    [ (2, 2); (4, 2); (3, 3) ]

let payload_of vba =
  String.init 220 (fun i -> Char.chr ((vba + (13 * i)) land 0xff))

let mk_volume c =
  Sarray.Volume.create
    (Sarray.Volume.default_config ~slots:c.slots ~replication:c.replication
       ~spares:1 ~member_blocks:128
       ~seed:(1000 + (17 * c.slots) + c.replication)
       ())

(* The scripted disaster: [tampers] replica rewrites on distinct heated
   lines plus [losses] member losses, all seeded by the cell, all fired
   from the op counter during the read sweep so detection happens under
   live traffic. *)
let make_plan c ~heated ~base =
  let rng =
    Sim.Prng.create (4242 + (31 * c.slots) + (7 * c.tampers) + c.losses)
  in
  let heated = Array.of_list heated in
  let used = Hashtbl.create 8 in
  let tamper_events =
    List.init c.tampers (fun i ->
        let rec pick () =
          let line = heated.(Sim.Prng.int rng (Array.length heated)) in
          if Hashtbl.mem used line then pick () else line
        in
        let line = pick () in
        Hashtbl.add used line ();
        {
          Fault.Plan.at_op = base + 5 + (3 * i);
          event =
            Fault.Plan.Replica_tamper
              { member = Sim.Prng.int rng c.replication; line };
        })
  in
  let loss_events =
    List.init c.losses (fun i ->
        {
          Fault.Plan.at_op = base + 20 + (5 * i);
          event = Fault.Plan.Member_loss { member = Sim.Prng.int rng c.slots };
        })
  in
  Fault.Plan.array_make ~seed:(1 + c.slots + c.tampers)
    ~events:(tamper_events @ loss_events) ()

let run_cell c =
  let v = mk_volume c in
  let m = Sarray.Volume.map v in
  let lines = List.init (Sarray.Amap.logical_lines m) Fun.id in
  let heated = List.filter (fun l -> l mod 2 = 0) lines in
  (* Fill every data block, heat every other line. *)
  List.iter
    (fun line ->
      for o = 0 to Sarray.Amap.data_blocks_per_line m - 1 do
        let vba = Sarray.Amap.vba_of m ~line ~offset:o in
        ignore (Sarray.Volume.write_block v ~vba (payload_of vba))
      done;
      if List.mem line heated then
        ignore (Sarray.Volume.heat_line v ~line ()))
    lines;
  Sarray.Volume.flush v;
  (* Remember every member's burned hashes: the rebuild target's must be
     reproduced on the spare. *)
  let pre_hashes =
    Array.init (Sarray.Volume.n_devices v) (fun dev ->
        Array.init m.Sarray.Amap.member_lines (fun local ->
            match
              Sero.Device.read_hash_block
                (Sarray.Volume.device v ~dev)
                ~line:local
            with
            | `Burned b -> Some b.Sero.Device.hash
            | _ -> None))
  in
  Sarray.Volume.install_plan v
    (make_plan c ~heated ~base:(Sarray.Volume.ops v));
  (* Read sweep under live traffic: plan events fire mid-sweep, so late
     reads already exercise degraded fall-through. *)
  let n_blocks = Sarray.Amap.n_blocks m in
  let unreadable = ref 0 and undetected = ref 0 in
  let wrong = ref [] in
  for vba = 0 to n_blocks - 1 do
    match Sarray.Volume.read_block v ~vba with
    | Ok p ->
        if
          not
            (String.equal (payload_of vba)
               (String.sub p 0 (String.length (payload_of vba))))
        then wrong := vba :: !wrong
    | Error _ -> incr unreadable
  done;
  (* Detection latency: audit lines in order, count lines until the
     first conviction/divergence charge (computed raw — the real ledger
     run below replays the same verdicts). *)
  let latency = ref (-1) and audited = ref 0 in
  List.iter
    (fun line ->
      if !latency < 0 then begin
        let _, charges, _, _ = Sarray.Quorum.attest_line_raw v ~line in
        incr audited;
        if
          List.exists
            (fun ch ->
              ch.Sarray.Quorum.c_charge = Sarray.Trust.Conviction
              || ch.Sarray.Quorum.c_charge = Sarray.Trust.Divergence)
            charges
        then latency := !audited - 1
      end)
    lines;
  (* The audited full attestation. *)
  let report = Sarray.Quorum.verify_volume v in
  let detected =
    report.Sarray.Quorum.counts.outvoted_replicas
    + report.Sarray.Quorum.counts.convicted_replicas
  in
  (* A wrong read is undetected loss only if its line attested cleanly
     with every serving replica agreeing — i.e. nothing was flagged. *)
  List.iter
    (fun vba ->
      let line = Sarray.Amap.line_of_vba m vba in
      match List.assoc line report.Sarray.Quorum.lines with
      | Sarray.Quorum.Attested { against = []; voters; _ }
        when List.length voters
             = List.length (Sarray.Volume.serving_slots v ~line) ->
          incr undetected
      | _ -> ())
    !wrong;
  (* Rebuild the loudest casualty: a lost slot if any, else a tampered
     (now Suspect/Quarantined) one, onto the spare. *)
  let rebuild_slot =
    let states = Sarray.Volume.member_states v in
    let bad s =
      let dev = Sarray.Volume.dev_of_slot v ~slot:s in
      states.(dev) <> Sarray.Volume.Active
      || Sarray.Trust.status (Sarray.Volume.trust v) ~dev
         <> Sarray.Trust.Trusted
    in
    List.find_opt bad (List.init c.slots Fun.id)
  in
  let rebuild_hash_ok, post_attested =
    match rebuild_slot with
    | None ->
        (* Nothing went wrong in this cell; the audit already attested
           every heated line. *)
        (true, report.Sarray.Quorum.counts.attested)
    | Some slot -> (
        let old_dev = Sarray.Volume.dev_of_slot v ~slot in
        match Sarray.Rebuild.rebuild_slot v ~slot with
        | Error _ -> (false, 0)
        | Ok r ->
            let new_dev = Sarray.Volume.dev_of_slot v ~slot in
            let ok = ref (r.Sarray.Rebuild.reattest_failed = []) in
            for local = 0 to m.Sarray.Amap.member_lines - 1 do
              match
                Sero.Device.read_hash_block
                  (Sarray.Volume.device v ~dev:new_dev)
                  ~line:local
              with
              | `Burned b -> (
                  match pre_hashes.(old_dev).(local) with
                  | Some h ->
                      if not (Hash.Sha256.equal h b.Sero.Device.hash) then
                        ok := false
                  | None -> ok := false)
              | _ -> ()
            done;
            let post = Sarray.Quorum.verify_volume v in
            (!ok, post.Sarray.Quorum.counts.attested))
  in
  let stats = Sarray.Volume.stats v in
  {
    c;
    records = n_blocks;
    heated_lines = List.length heated;
    undetected_loss = !undetected;
    unreadable_records = !unreadable;
    detected_replicas = detected;
    detection_latency = !latency;
    audit_hash_reads = report.Sarray.Quorum.hash_reads;
    audit_data_verifies = report.Sarray.Quorum.data_verifies;
    degraded_reads = stats.Sarray.Volume.degraded_reads;
    rebuild_hash_ok;
    post_rebuild_attested = post_attested;
  }

let sweep ?(grid = default_grid) () =
  (* Cells are pure functions of their parameters: byte-identical
     output for any worker count. *)
  Sim.Pool.parallel_map run_cell grid

type headline = {
  h_undetected : float;
  h_detected : float;
  h_rebuild_pct : float;
  h_attested_pct : float;
  h_audit_per_line : float;
}

let headline ?(grid = default_grid) () =
  let rows = sweep ~grid () in
  let sumi f = float_of_int (List.fold_left (fun a r -> a + f r) 0 rows) in
  let cells = float_of_int (List.length rows) in
  let rebuilds_ok =
    float_of_int
      (List.length (List.filter (fun r -> r.rebuild_hash_ok) rows))
  in
  let heated = sumi (fun r -> r.heated_lines) in
  {
    h_undetected = sumi (fun r -> r.undetected_loss);
    h_detected = sumi (fun r -> r.detected_replicas);
    h_rebuild_pct = (if cells <= 0. then 100. else 100. *. rebuilds_ok /. cells);
    h_attested_pct =
      (if heated <= 0. then 100.
       else 100. *. sumi (fun r -> r.post_rebuild_attested) /. heated);
    h_audit_per_line =
      (* Heated lines are every other line, so logical = 2 * heated. *)
      (let logical = 2. *. heated in
       if logical <= 0. then 0.
       else
         (sumi (fun r -> r.audit_hash_reads)
         +. sumi (fun r -> r.audit_data_verifies))
         /. logical);
  }

let print ppf =
  Format.fprintf ppf "E23 — sharded array: quorum, degraded mode, rebuild@.";
  Format.fprintf ppf "%s@." (String.make 76 '-');
  Format.fprintf ppf
    "grid: (slots x replication) x (tampers, losses); every cell fills and@.\
     heats a volume, scripts its disaster as a replayable array plan, reads@.\
     through the damage, audits with the cross-device quorum, then rebuilds@.\
     the casualty onto a spare:@.";
  Format.fprintf ppf "  %-9s %-7s %-8s %-9s %-8s %-10s %-9s %-8s@." "array"
    "t/l" "records" "undetect" "detect" "latency" "audit" "rebuild";
  let rows = sweep () in
  List.iter
    (fun r ->
      Format.fprintf ppf "  %dx%-7d %d/%-5d %-8d %-9d %-8d %-10s %-9d %-8s@."
        r.c.slots r.c.replication r.c.tampers r.c.losses r.records
        r.undetected_loss r.detected_replicas
        (if r.detection_latency < 0 then "-"
         else string_of_int r.detection_latency)
        (r.audit_hash_reads + r.audit_data_verifies)
        (if r.rebuild_hash_ok then "ok" else "FAILED"))
    rows;
  let tot f = List.fold_left (fun a r -> a + f r) 0 rows in
  Format.fprintf ppf
    "finding: every tampered or substituted replica is charged by the \
     quorum@.(%d replicas across the grid) while undetected record loss \
     stays at %d —@.a record may die loudly behind a flagged line, never \
     silently; every@.rebuild re-burned the original hashes on the spare \
     (%d/%d cells), so the@.evidence chain survives whole-device failure.@."
    (tot (fun r -> r.detected_replicas))
    (tot (fun r -> r.undetected_loss))
    (List.length (List.filter (fun r -> r.rebuild_hash_ok) rows))
    (List.length rows)
