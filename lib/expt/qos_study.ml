(* E25 — multi-tenant QoS: tenant count x arbiter policy under Zipf
   traffic through the host front-end.

   Tenant 1 is the light tenant (one closed-loop client stream);
   every other tenant is heavy (8 streams each, same think time, so 8x
   the offered load).  Each cell is fully self-seeded — own device,
   DES clock, queue, host server and PRNGs — so the sweep fans out
   over Sim.Pool with byte-identical output for any -j. *)

let think_s = 0.005
let heavy_streams = 8
let zipf_theta = 0.9

type row = {
  cell : string;
  policy : string;
  n_tenants : int;
  tenant : int;
  streams : int;
  completed : int;
  rejected : int;
  read_p50_ms : float;
  read_p95_ms : float;
  read_p99_ms : float;
  p99_ms : float;
  energy_j : float;
  service_s : float;
}

let make_device () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:512 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  let data_pbas =
    List.init (Sero.Layout.n_lines lay) Fun.id
    |> List.concat_map (Sero.Layout.data_blocks_of_line lay)
    |> Array.of_list
  in
  let payload_of pba =
    String.init 256 (fun i -> Char.chr ((pba + (7 * i)) land 0xff))
  in
  Array.iter
    (fun pba ->
      match Sero.Device.write_block dev ~pba (payload_of pba) with
      | Ok () -> ()
      | Error _ -> assert false)
    data_pbas;
  (dev, data_pbas, payload_of)

(* One cell: [streams_of] maps each tenant to its client stream count,
   [limits_of] to its admission limits; every stream performs [ops]
   closed-loop Zipf operations (2/3 reads) with [think_s] between
   completion and the next submit. *)
let run_streams ~cell ~ops ~policy ~limits_of ~tenants_streams () =
  let dev, data_pbas, payload_of = make_device () in
  let des = Sim.Des.create () in
  let q = Sero.Queue.create des dev in
  let server = Host.Server.create ~limits_of (Host.Server.Device q) in
  Host.Server.set_policy server policy;
  let conts : (int * int, unit -> unit) Hashtbl.t = Hashtbl.create 64 in
  Host.Server.set_on_response server
    (Some
       (fun r ->
         let key = (r.Host.Proto.r_tenant, r.Host.Proto.r_seq) in
         match Hashtbl.find_opt conts key with
         | None -> ()
         | Some k ->
             Hashtbl.remove conts key;
             Sim.Des.schedule des ~delay:think_s (fun _ -> k ())));
  List.iter
    (fun (tenant, streams) ->
      let session = Host.Server.session server ~tenant in
      for stream = 0 to streams - 1 do
        let rng = Sim.Prng.create (0xE25 + (257 * tenant) + stream) in
        let zipf = Workload.Zipf.create ~n:(Array.length data_pbas) ~theta:zipf_theta in
        let issued = ref 0 in
        let rec spawn () =
          if !issued < ops then begin
            incr issued;
            let pba = data_pbas.(Workload.Zipf.sample zipf rng) in
            let cmd =
              if Sim.Prng.bernoulli rng 0.67 then Host.Proto.Read { pba }
              else Host.Proto.Write { pba; payload = payload_of pba }
            in
            (* Register before submitting: a rejection responds
               synchronously inside [submit]. *)
            Hashtbl.replace conts (tenant, Host.Server.next_seq session) spawn;
            ignore (Host.Server.submit session cmd)
          end
        in
        spawn ()
      done)
    tenants_streams;
  Sim.Des.run des;
  Sero.Queue.drain q;
  List.map
    (fun (tenant, streams) ->
      let rep = Host.Server.report server ~tenant in
      {
        cell;
        policy = Host.Arbiter.policy_name policy;
        n_tenants = List.length tenants_streams;
        tenant;
        streams;
        completed = rep.Host.Slo.rep_completed;
        rejected = rep.Host.Slo.rep_rejected_depth + rep.Host.Slo.rep_rejected_rate;
        read_p50_ms = rep.Host.Slo.rep_read_p50_ms;
        read_p95_ms = rep.Host.Slo.rep_read_p95_ms;
        read_p99_ms = rep.Host.Slo.rep_read_p99_ms;
        p99_ms = rep.Host.Slo.rep_p99_ms;
        energy_j = rep.Host.Slo.rep_energy_j;
        service_s = rep.Host.Slo.rep_service_s;
      })
    tenants_streams

let open_limits = Host.Server.default_limits

let run_cell ~ops ~policy ~heavy () =
  let tenants_streams =
    (1, 1) :: List.init heavy (fun i -> (i + 2, heavy_streams))
  in
  let cell =
    if heavy = 0 then "solo"
    else
      Printf.sprintf "%s x%d" (Host.Arbiter.policy_name policy) (heavy + 1)
  in
  run_streams ~cell ~ops ~policy ~limits_of:(fun _ -> open_limits)
    ~tenants_streams ()

(* The admission-control cell: one rate-limited tenant offered far more
   than its token bucket refills, so a deterministic share of its
   submissions bounce with REJECTED_RATE. *)
let run_overload ~ops () =
  let limits_of _ =
    { Host.Server.weight = 1.; max_depth = 8; rate = 10.; burst = 2. }
  in
  run_streams ~cell:"overload" ~ops ~policy:Host.Arbiter.Tenant_blind
    ~limits_of
    ~tenants_streams:[ (1, 2) ]
    ()

type cell_spec =
  | Solo
  | Contended of Host.Arbiter.policy * int
  | Overload

let specs =
  [
    Solo;
    Contended (Host.Arbiter.Arrival_order, 1);
    Contended (Host.Arbiter.Fair_share (fun _ -> 1.), 1);
    Contended (Host.Arbiter.Arrival_order, 3);
    Contended (Host.Arbiter.Fair_share (fun _ -> 1.), 3);
    Contended (Host.Arbiter.Arrival_order, 7);
    Contended (Host.Arbiter.Fair_share (fun _ -> 1.), 7);
    Overload;
  ]

let default_ops = 40

let sweep ?(ops = default_ops) () =
  Sim.Pool.parallel_map
    (fun spec ->
      match spec with
      | Solo -> run_cell ~ops ~policy:Host.Arbiter.Tenant_blind ~heavy:0 ()
      | Contended (policy, heavy) -> run_cell ~ops ~policy ~heavy ()
      | Overload -> run_overload ~ops ())
    specs
  |> List.concat

type headline = {
  solo_p99_ms : float;
  fifo_p99_ms : float;
  wfs_p99_ms : float;
  fifo_ratio : float;
  wfs_ratio : float;
  overload_rejected : int;
  overload_rejection_pct : float;
}

let light_row rows cell =
  List.find (fun r -> r.cell = cell && r.tenant = 1) rows

let headline_of rows =
  let solo = light_row rows "solo" in
  let fifo = light_row rows "fifo x2" in
  let wfs = light_row rows "wfs x2" in
  let over = light_row rows "overload" in
  let offered = over.completed + over.rejected in
  {
    solo_p99_ms = solo.read_p99_ms;
    fifo_p99_ms = fifo.read_p99_ms;
    wfs_p99_ms = wfs.read_p99_ms;
    fifo_ratio = fifo.read_p99_ms /. solo.read_p99_ms;
    wfs_ratio = wfs.read_p99_ms /. solo.read_p99_ms;
    overload_rejected = over.rejected;
    overload_rejection_pct =
      (if offered = 0 then 0.
       else 100. *. float_of_int over.rejected /. float_of_int offered);
  }

let headline ?ops () = headline_of (sweep ?ops ())

let print ppf =
  let rows = sweep () in
  Format.fprintf ppf "E25 — multi-tenant QoS: tenants x arbiter under Zipf@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "  %-9s %-6s %7s %8s %5s %4s %9s %9s %9s %9s@." "cell"
    "policy" "tenant" "streams" "done" "rej" "rp50(ms)" "rp95(ms)" "rp99(ms)"
    "svc(s)";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-9s %-6s %7d %8d %5d %4d %9.2f %9.2f %9.2f %9.4f@." r.cell
        r.policy r.tenant r.streams r.completed r.rejected r.read_p50_ms
        r.read_p95_ms r.read_p99_ms r.service_s)
    rows;
  let h = headline_of rows in
  Format.fprintf ppf
    "light tenant read p99: solo %.2f ms; vs one 8x-heavy tenant: fair-share \
     %.2f ms (%.2fx), arrival-order %.2f ms (%.2fx)@."
    h.solo_p99_ms h.wfs_p99_ms h.wfs_ratio h.fifo_p99_ms h.fifo_ratio;
  Format.fprintf ppf
    "admission control: rate-limited tenant saw %d rejections (%.1f%% of \
     offered) — typed REJECTED_RATE, not silent queueing@."
    h.overload_rejected h.overload_rejection_pct;
  Format.fprintf ppf
    "the sled's service rate is fixed by the physics; fair share at the host@.";
  Format.fprintf ppf
    "is what keeps a light tenant's tail latency from following a heavy@.";
  Format.fprintf ppf "neighbour's backlog.@."
