(* E26 — fleet-scale simulation substrate: CoW device cloning,
   keyed per-device PRNG streams and deterministic fan-out over
   Sim.Fleet, with the calendar-queue scheduler carrying the event
   load.

   One golden device is formatted per worker domain (cheap, and a pure
   function of the constants below); every fleet member is a CoW clone
   of it.  Device [i]'s traffic is driven by Sim.Prng.stream ~seed i,
   so the fleet result is a pure function of (seed, n) — byte-identical
   for any SERO_JOBS.  Wall-clock throughput lines are printed only
   when SERO_E26_WALL is set, keeping the default output deterministic. *)

let golden_blocks = 64
let golden_line_exp = 3
let heated_lines = [ 0; 1 ]
let arrival_mean_s = 0.0005
let scrub_lines_per_device = 2
let default_ops = 6
let curve = [ 64; 256; 1024; 4096 ]

let payload_of pba =
  String.init 256 (fun i -> Char.chr ((pba + (11 * i)) land 0xff))

type golden = {
  g_dev : Sero.Device.t;
  g_read : int array;  (* every data block *)
  g_write : int array;  (* data blocks of unheated (WMRM) lines *)
  g_heated : int array;
  g_n_lines : int;
}

let make_golden () =
  let dev =
    Sero.Device.create
      (Sero.Device.default_config ~n_blocks:golden_blocks
         ~line_exp:golden_line_exp ())
  in
  let lay = Sero.Device.layout dev in
  let n_lines = Sero.Layout.n_lines lay in
  let lines = List.init n_lines Fun.id in
  List.iter
    (fun line ->
      List.iter
        (fun pba ->
          match Sero.Device.write_block dev ~pba (payload_of pba) with
          | Ok () -> ()
          | Error _ -> assert false)
        (Sero.Layout.data_blocks_of_line lay line))
    lines;
  List.iter
    (fun line ->
      match Sero.Device.heat_line dev ~line () with
      | Ok _ -> ()
      | Error _ -> assert false)
    heated_lines;
  let data_of l = Sero.Layout.data_blocks_of_line lay l in
  {
    g_dev = dev;
    g_read = Array.of_list (List.concat_map data_of lines);
    g_write =
      Array.of_list
        (List.concat_map data_of
           (List.filter (fun l -> not (List.mem l heated_lines)) lines));
    g_heated = Array.of_list heated_lines;
    g_n_lines = n_lines;
  }

(* One golden per worker domain: built on first use, reused across
   shards scheduled onto that domain.  Clones never write the golden,
   so every clone starts from the same bytes whichever domain makes
   it. *)
let golden_key : golden Domain.DLS.key = Domain.DLS.new_key make_golden

type fleet = {
  f_devices : int;
  f_ops : int;
  f_events : int;
  f_sched_work : int;
  f_tampers : int;
  f_fails : int;
  f_scrub_rewrites : int;
  f_cow_segments : int;  (* privately materialised segments, fleet-wide *)
  f_lat : Sim.Stats.t;  (* per-op device latency, ms *)
}

let lat_name = "op-latency-ms"

let empty_fleet () =
  {
    f_devices = 0;
    f_ops = 0;
    f_events = 0;
    f_sched_work = 0;
    f_tampers = 0;
    f_fails = 0;
    f_scrub_rewrites = 0;
    f_cow_segments = 0;
    f_lat = Sim.Stats.create ~name:lat_name ();
  }

let merge_fleet = function
  | [] -> empty_fleet ()
  | accs ->
      let sum f = List.fold_left (fun a x -> a + f x) 0 accs in
      {
        f_devices = sum (fun a -> a.f_devices);
        f_ops = sum (fun a -> a.f_ops);
        f_events = sum (fun a -> a.f_events);
        f_sched_work = sum (fun a -> a.f_sched_work);
        f_tampers = sum (fun a -> a.f_tampers);
        f_fails = sum (fun a -> a.f_fails);
        f_scrub_rewrites = sum (fun a -> a.f_scrub_rewrites);
        f_cow_segments = sum (fun a -> a.f_cow_segments);
        f_lat =
          Sim.Stats.merge_many ~name:lat_name
            (List.map (fun a -> a.f_lat) accs);
      }

(* One fleet member: clone, open-loop traffic (62% reads, 30% writes,
   8% verifies of a heated line) with exponential arrivals on the
   device's own DES clock, plus two background scrub sweeps, then
   park.  Everything below is a function of (golden bytes, rng, i). *)
let run_device ~ops ~rng i =
  let g = Domain.DLS.get golden_key in
  let dev = Sero.Device.clone g.g_dev in
  let pdev = Sero.Device.pdevice dev in
  let des = Sim.Des.create () in
  let lat = Sim.Stats.create ~name:lat_name () in
  let events = ref 0 and tampers = ref 0 and fails = ref 0 in
  let completed = ref 0 in
  let rec arm issued =
    if issued < ops then
      Sim.Des.schedule des
        ~delay:(Sim.Prng.exponential rng arrival_mean_s)
        (fun _ ->
          incr events;
          let t0 = Probe.Pdevice.elapsed pdev in
          let u = Sim.Prng.uniform rng in
          (if u < 0.62 then
             let pba = g.g_read.(Sim.Prng.int rng (Array.length g.g_read)) in
             match Sero.Device.read_block dev ~pba with
             | Ok _ -> ()
             | Error _ -> incr fails
           else if u < 0.92 then
             let pba = g.g_write.(Sim.Prng.int rng (Array.length g.g_write)) in
             match Sero.Device.write_block dev ~pba (payload_of pba) with
             | Ok () -> ()
             | Error _ -> incr fails
           else
             let line =
               g.g_heated.(Sim.Prng.int rng (Array.length g.g_heated))
             in
             match Sero.Device.verify_line dev ~line with
             | Sero.Tamper.Intact -> ()
             | Sero.Tamper.Not_heated -> incr fails
             | Sero.Tamper.Tampered _ -> incr tampers);
          Sim.Stats.add lat ((Probe.Pdevice.elapsed pdev -. t0) *. 1000.);
          incr completed;
          arm (issued + 1))
  in
  arm 0;
  let progress = Sero.Scrub.progress_create () in
  for k = 0 to scrub_lines_per_device - 1 do
    Sim.Des.schedule_at des
      ~at:(0.0012 *. float_of_int (k + 1))
      (fun _ ->
        incr events;
        Sero.Scrub.sweep_line dev progress ~line:((i + k) mod g.g_n_lines))
  done;
  Sim.Des.run des;
  let rewritten =
    (Sero.Scrub.report_of_progress progress).Sero.Scrub.rewritten
  in
  let segs = Pmedia.Medium.owned_segments (Probe.Pdevice.medium pdev) in
  let work = Sim.Des.sched_work des in
  Sero.Device.park dev;
  {
    f_devices = 1;
    f_ops = !completed;
    f_events = !events;
    f_sched_work = work;
    f_tampers = !tampers;
    f_fails = !fails;
    f_scrub_rewrites = rewritten;
    f_cow_segments = segs;
    f_lat = lat;
  }

let run_fleet ?(seed = 0xE26) ?(ops = default_ops) n =
  Sim.Fleet.map_merge ~seed n
    ~f:(fun ~rng i -> run_device ~ops ~rng i)
    ~merge:merge_fleet

(* Dense-event scheduler cell: the same self-rescheduling population is
   run under both Des schedulers.  The twins fire events in the same
   order, so the shared PRNG makes identical draws and the two runs
   schedule identical event sets — only the comparison work differs. *)

type sched_cell = {
  s_population : int;
  s_fired : int;
  s_heap_work : int;
  s_wheel_work : int;
  s_speedup : float;  (* heap work / wheel work; acceptance: >= 3 *)
}

let default_sched_population = 8192
let sched_rounds = 3

let run_sched_once ~population sched =
  let des = Sim.Des.create ~sched () in
  let rng = Sim.Prng.create 0x5EED in
  let fired = ref 0 in
  let rec arm ~round ~at =
    Sim.Des.schedule_at des ~at (fun _ ->
        incr fired;
        if round < sched_rounds then
          arm ~round:(round + 1) ~at:(at +. Sim.Prng.exponential rng 1.0))
  in
  for _ = 1 to population do
    arm ~round:0 ~at:(Sim.Prng.uniform rng)
  done;
  Sim.Des.run des;
  (!fired, Sim.Des.sched_work des)

let sched_bench ?(population = default_sched_population) () =
  let fired_h, heap = run_sched_once ~population Sim.Des.Binary_heap in
  let fired_w, wheel = run_sched_once ~population Sim.Des.Timing_wheel in
  assert (fired_h = fired_w);
  {
    s_population = population;
    s_fired = fired_w;
    s_heap_work = heap;
    s_wheel_work = wheel;
    s_speedup = float_of_int heap /. float_of_int wheel;
  }

(* Idle-clone footprint cell: OCaml-heap words retained per parked
   clone (the packed medium payload lives off-heap in Bigarrays and is
   shared until written).  Runs on the main domain before any Pool
   fan-out so the GC numbers are independent of SERO_JOBS. *)

type clone_cell = {
  c_clones : int;
  c_heap_kib : float;  (* OCaml heap per idle clone; acceptance: <= 64 *)
  c_segments : float;  (* private segments per idle clone (0.) *)
}

let default_clones = 256

let measure_clones ?(clones = default_clones) () =
  let g = make_golden () in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.live_words in
  let fleet = Array.init clones (fun _ -> Sero.Device.clone g.g_dev) in
  Gc.full_major ();
  let after = (Gc.stat ()).Gc.live_words in
  let segs =
    Array.fold_left
      (fun acc d ->
        acc
        + Pmedia.Medium.owned_segments
            (Probe.Pdevice.medium (Sero.Device.pdevice d)))
      0 fleet
  in
  ignore (Sys.opaque_identity fleet);
  let words_per_clone = float_of_int (after - before) /. float_of_int clones in
  {
    c_clones = clones;
    c_heap_kib = words_per_clone *. float_of_int (Sys.word_size / 8) /. 1024.;
    c_segments = float_of_int segs /. float_of_int clones;
  }

type headline = {
  h_devices : int;  (** Largest fleet in the curve. *)
  h_ops : int;
  h_tampers : int;
  h_fails : int;
  h_lat_p99_ms : float;
  h_wheel_speedup : float;
  h_clone_heap_kib : float;
  h_clone_segments : float;
  h_cow_kib_per_device : float;
}

let headline_of ~fleet ~sched ~clone =
  let _, _, p99 = Sim.Stats.quantiles fleet.f_lat in
  {
    h_devices = fleet.f_devices;
    h_ops = fleet.f_ops;
    h_tampers = fleet.f_tampers;
    h_fails = fleet.f_fails;
    h_lat_p99_ms = p99;
    h_wheel_speedup = sched.s_speedup;
    h_clone_heap_kib = clone.c_heap_kib;
    h_clone_segments = clone.c_segments;
    h_cow_kib_per_device =
      float_of_int (fleet.f_cow_segments * Pmedia.Medium.segment_bytes)
      /. 1024.
      /. float_of_int (max 1 fleet.f_devices);
  }

let headline ?(devices = 512) ?ops () =
  let clone = measure_clones () in
  let sched = sched_bench () in
  let fleet = run_fleet ?ops devices in
  headline_of ~fleet ~sched ~clone

let print ppf =
  let clone = measure_clones () in
  let sched = sched_bench () in
  let t0 = Sys.time () in
  let rows = List.map (fun n -> run_fleet n) curve in
  let wall = Sys.time () -. t0 in
  Format.fprintf ppf
    "E26 — fleet fan-out: CoW clones x keyed PRNG streams x calendar queue@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "  %7s %6s %7s %9s %7s %5s %5s %8s %8s %8s@." "devices"
    "ops" "events" "schedwork" "rewrite" "tamp" "fail" "p50(ms)" "p95(ms)"
    "p99(ms)";
  List.iter
    (fun f ->
      let p50, p95, p99 = Sim.Stats.quantiles f.f_lat in
      Format.fprintf ppf "  %7d %6d %7d %9d %7d %5d %5d %8.3f %8.3f %8.3f@."
        f.f_devices f.f_ops f.f_events f.f_sched_work f.f_scrub_rewrites
        f.f_tampers f.f_fails p50 p95 p99)
    rows;
  let last = List.nth rows (List.length rows - 1) in
  let h = headline_of ~fleet:last ~sched ~clone in
  Format.fprintf ppf
    "scheduler: %d dense events — heap %d comparisons, wheel %d (%.1fx less \
     work)@."
    sched.s_fired sched.s_heap_work sched.s_wheel_work h.h_wheel_speedup;
  Format.fprintf ppf
    "clones: %.1f KiB OCaml heap and %.2f private segments per idle clone; \
     %.1f KiB@."
    h.h_clone_heap_kib h.h_clone_segments h.h_cow_kib_per_device;
  Format.fprintf ppf
    "of CoW medium materialised per device after %d ops + scrub@."
    default_ops;
  Format.fprintf ppf
    "fleet of %d: %d tamper verdicts, %d op failures (0 expected of both)@."
    h.h_devices h.h_tampers h.h_fails;
  if Sys.getenv_opt "SERO_E26_WALL" <> None then begin
    let devices = List.fold_left (fun a f -> a + f.f_devices) 0 rows in
    let events = List.fold_left (fun a f -> a + f.f_events) 0 rows in
    Format.fprintf ppf
      "wall (non-deterministic, SERO_E26_WALL): %d devices and %d events in \
       %.2f s — %.0f devices/s, %.0f events/s@."
      devices events wall
      (float_of_int devices /. wall)
      (float_of_int events /. wall)
  end;
  Format.fprintf ppf
    "every device is a pure function of (seed, index): the same fleet@.";
  Format.fprintf ppf "bytes fall out of any -j.@."
