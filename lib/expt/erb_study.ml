type miss_row = { cycles : int; measured_miss : float; theory_miss : float }

let miss_sweep ?(trials = 20000) ?(cycles_list = [ 1; 2; 3; 4; 6; 8 ]) () =
  (* Each cell gets its own freshly seeded medium (rather than all cells
     sharing one RNG stream), so cells are independent and the sweep
     parallelises with bit-identical output in any execution order. *)
  Sim.Pool.parallel_map
    (fun cycles ->
      let medium =
        Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16)
      in
      let ctx = Pmedia.Bitops.make medium in
      Pmedia.Bitops.ewb ctx 0;
      let missed = ref 0 in
      for _ = 1 to trials do
        if not (Pmedia.Bitops.erb ~cycles ctx 0) then incr missed
      done;
      {
        cycles;
        measured_miss = float_of_int !missed /. float_of_int trials;
        theory_miss = 0.25 ** float_of_int cycles;
      })
    cycles_list

type area_row = {
  strategy : string;
  false_blank_areas : int;
  areas : int;
  mean_bitops : float;
}

(* One burned hash area read with a fixed uniform cycle count, judged
   blank-free or not, with the primitive ops it took. *)
let naive_read pdev ~start ~cycles =
  let before =
    Pmedia.Bitops.primitive_ops
      (Pmedia.Bitops.counters (Probe.Pdevice.bitops pdev))
  in
  let heated = Probe.Pdevice.erb_run ~cycles pdev ~start ~len:Sero.Layout.wo_area_dots in
  let decoded =
    Codec.Manchester.decode
      ~heated:(fun i -> heated.(i))
      ~n_bytes:Sero.Layout.wo_area_bytes
  in
  let after =
    Pmedia.Bitops.primitive_ops
      (Pmedia.Bitops.counters (Probe.Pdevice.bitops pdev))
  in
  (decoded.Codec.Manchester.blank_cells <> [], after - before)

(* The device's adaptive strategy, measured through read_hash_block. *)
let adaptive_read dev ~line =
  let pdev = Sero.Device.pdevice dev in
  let before =
    Pmedia.Bitops.primitive_ops (Pmedia.Bitops.counters (Probe.Pdevice.bitops pdev))
  in
  let outcome = Sero.Device.read_hash_block dev ~line in
  let after =
    Pmedia.Bitops.primitive_ops (Pmedia.Bitops.counters (Probe.Pdevice.bitops pdev))
  in
  let false_alarm =
    match outcome with
    | `Burned _ -> false
    | `Not_heated | `Torn _ | `Tampered _ -> true
  in
  (false_alarm, after - before)

let area_comparison ?(areas = 40) () =
  (* A device with [areas] burned lines. *)
  let n_blocks = 8 * (areas + 1) in
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  for line = 0 to areas - 1 do
    List.iter
      (fun pba ->
        match Sero.Device.write_block dev ~pba "erb study" with
        | Ok () -> ()
        | Error _ -> ())
      (Sero.Layout.data_blocks_of_line lay line);
    match Sero.Device.heat_line dev ~line () with
    | Ok _ -> ()
    | Error e ->
        failwith (Format.asprintf "erb study: %a" Sero.Device.pp_heat_error e)
  done;
  let pdev = Sero.Device.pdevice dev in
  let run strategy f =
    let alarms = ref 0 and ops = ref 0 in
    for line = 0 to areas - 1 do
      let alarm, cost = f line in
      if alarm then incr alarms;
      ops := !ops + cost
    done;
    {
      strategy;
      false_blank_areas = !alarms;
      areas;
      mean_bitops = float_of_int !ops /. float_of_int areas;
    }
  in
  [
    run "naive, 1 cycle (the paper's sequence)" (fun line ->
        naive_read pdev ~start:(Sero.Layout.wo_first_dot lay ~line) ~cycles:1);
    run "naive, 8 cycles" (fun line ->
        naive_read pdev ~start:(Sero.Layout.wo_first_dot lay ~line) ~cycles:8);
    run "adaptive (8 + 24 on blanks)" (fun line -> adaptive_read dev ~line);
  ]

let print ppf =
  Format.fprintf ppf
    "E16 — erb protocol reliability (reproduction finding, not in the paper)@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  Format.fprintf ppf "per-dot miss rate of a heated dot:@.";
  Format.fprintf ppf "  %-8s %-12s %-12s@." "cycles" "measured" "theory 4^-k";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-8d %-12.5f %-12.5f@." r.cycles r.measured_miss
        r.theory_miss)
    (miss_sweep ());
  Format.fprintf ppf
    "reading %d legitimately burned 4096-dot hash areas:@." 40;
  Format.fprintf ppf "  %-40s %-14s %-14s@." "strategy" "false alarms"
    "bitops/area";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-40s %6d /%4d %14.0f@." r.strategy
        r.false_blank_areas r.areas r.mean_bitops)
    (area_comparison ());
  Format.fprintf ppf
    "the paper's single-round sequence false-alarms on essentially every \
     burned area;@.the device's adaptive read eliminates false alarms at \
     ~1.3x the 8-cycle cost.@."
