type row = {
  cache_lines : int;
  read_ahead : int;
  theta : float;
  ops : int;
  hit_pct : float;
  ra_hits : int;
  read_mean_ms : float;
  read_p95_ms : float;
  write_mean_ms : float;
  flush_spans : int;
}

(* Closed-loop client think time, as in E20: long enough for a
   background prefetch span (~one coalesced read pass) to land in the
   gap before the next request arrives. *)
let think_s = 0.02

(* Read fraction of the op mix; the rest are write-behind buffered
   overwrites of existing blocks. *)
let read_frac = 0.75

(* Fraction of op events that are sequential scans (a Zipf-drawn start
   block read through [scan_len] consecutive blocks) — the file-read
   pattern sequential read-ahead exists for.  The rest are point ops. *)
let scan_frac = 0.1

let scan_len = 8

(* Background scrub sweeps per second, running in every cell: the
   buffer cache is for a busy device — hits skip the queue entirely
   while the bare pipeline waits behind scrub spans (cf. E20's
   contention study). *)
let scrub_period = 0.04

(* The first fraction of ops warms the cache; their latencies are not
   recorded (the frontier of interest is steady state, and the bare
   pipeline has no warmup to exclude — excluding it for both sides is
   conservative). *)
let warmup_frac = 0.25

let run_cell ?(ops = 400) ~cache_lines ~read_ahead ~theta () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:256 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  (* Zipf rank maps to log order: the hottest blocks are the most
     recently written region of the log, so the hot set is physically
     clustered — the LFS access pattern the ISSUE motivation describes,
     and the one sequential read-ahead can actually exploit. *)
  let data_pbas =
    List.init (Sero.Layout.n_lines lay) Fun.id
    |> List.concat_map (Sero.Layout.data_blocks_of_line lay)
    |> Array.of_list
  in
  let payload_of pba =
    String.init 256 (fun i -> Char.chr ((pba + (11 * i)) land 0xff))
  in
  Array.iter
    (fun pba ->
      match Sero.Device.write_block dev ~pba (payload_of pba) with
      | Ok () -> ()
      | Error _ -> assert false)
    data_pbas;
  let des = Sim.Des.create () in
  let q = Sero.Queue.create des dev in
  let bc =
    if cache_lines = 0 then None
    else
      Some
        (Sero.Bcache.create
           ~capacity:(cache_lines * Sero.Layout.blocks_per_line lay)
           ~read_ahead
           (* Keep the dirty watermark low so write-behind pinning does
              not crowd reads out of a small cache. *)
           ~dirty_high:(max 1 (cache_lines * Sero.Layout.blocks_per_line lay / 8))
           q)
  in
  let rng = Sim.Prng.create 0xE21 in
  let zipf = Workload.Zipf.create ~n:(Array.length data_pbas) ~theta in
  let read_lat = Sim.Stats.create ~name:"read" ()
  and write_lat = Sim.Stats.create ~name:"write" () in
  let warmup = int_of_float (warmup_frac *. float_of_int ops) in
  (* Let the DES clock tick [dt] forward, firing whatever comes due —
     this is where background prefetch spans get served. *)
  let advance dt =
    let woke = ref false in
    Sim.Des.schedule des ~delay:dt (fun _ -> woke := true);
    while not !woke do
      ignore (Sim.Des.step des)
    done
  in
  let client_done = ref false in
  ignore
    (Sero.Queue.schedule_scrub q ~period:scrub_period
       ~stop:(fun () -> !client_done));
  let read_one ~record pba =
    let t0 = Sim.Des.now des in
    let r =
      match bc with
      | Some c -> Sero.Bcache.read_block c ~pba
      | None -> Sero.Queue.read_block q ~pba
    in
    (match r with Ok _ -> () | Error _ -> assert false);
    if record then Sim.Stats.add read_lat (Sim.Des.now des -. t0)
  in
  for op = 1 to ops do
    let record = op > warmup in
    let start = Workload.Zipf.sample zipf rng in
    if Sim.Prng.bernoulli rng scan_frac then begin
      (* Sequential scan: consume [scan_len] consecutive blocks with a
         short per-block think gap, as a client streaming a file would. *)
      let last = min (Array.length data_pbas - 1) (start + scan_len - 1) in
      for i = start to last do
        read_one ~record data_pbas.(i);
        advance (think_s /. 4.)
      done
    end
    else if Sim.Prng.bernoulli rng read_frac then
      read_one ~record data_pbas.(start)
    else begin
      let pba = data_pbas.(start) in
      let t0 = Sim.Des.now des in
      let r =
        match bc with
        | Some c -> Sero.Bcache.write_block c ~pba (payload_of pba)
        | None -> Sero.Queue.write_block q ~pba (payload_of pba)
      in
      (match r with Ok () -> () | Error _ -> assert false);
      if record then Sim.Stats.add write_lat (Sim.Des.now des -. t0)
    end;
    advance think_s
  done;
  client_done := true;
  (match bc with Some c -> Sero.Bcache.sync c | None -> Sero.Queue.drain q);
  let stats =
    match bc with Some c -> Some (Sero.Bcache.stats c) | None -> None
  in
  {
    cache_lines;
    read_ahead;
    theta;
    ops;
    hit_pct =
      (match bc with
      | Some c -> 100. *. Sero.Bcache.hit_rate c
      | None -> 0.);
    ra_hits = (match stats with Some s -> s.Sero.Bcache.read_ahead_hits | None -> 0);
    read_mean_ms = 1e3 *. Sim.Stats.mean read_lat;
    read_p95_ms = 1e3 *. Sim.Stats.p95 read_lat;
    write_mean_ms = 1e3 *. Sim.Stats.mean write_lat;
    flush_spans = (match stats with Some s -> s.Sero.Bcache.flushed_spans | None -> 0);
  }

let cache_sizes = [ 0; 1; 4; 16 ]
let read_aheads = [ 0; 8 ]
let thetas = [ 0.0; 0.9; 0.99 ]

let sweep ?(ops = 400) () =
  let cells =
    List.concat_map
      (fun cache_lines ->
        List.concat_map
          (fun read_ahead ->
            List.map (fun theta -> (cache_lines, read_ahead, theta)) thetas)
          (* The bare pipeline has no prefetcher: one baseline per skew. *)
          (if cache_lines = 0 then [ 0 ] else read_aheads))
      cache_sizes
  in
  Sim.Pool.parallel_map
    (fun (cache_lines, read_ahead, theta) ->
      run_cell ~ops ~cache_lines ~read_ahead ~theta ())
    cells

type headline = {
  nocache_read_ms : float;
  cached_read_ms : float;
  speedup : float;
  headline_hit_pct : float;
}

let headline ?(ops = 400) () =
  let cells =
    Sim.Pool.parallel_map
      (fun (cache_lines, read_ahead) ->
        run_cell ~ops ~cache_lines ~read_ahead ~theta:0.99 ())
      [ (0, 0); (4, 8) ]
  in
  match cells with
  | [ base; cached ] ->
      {
        nocache_read_ms = base.read_mean_ms;
        cached_read_ms = cached.read_mean_ms;
        speedup = base.read_mean_ms /. cached.read_mean_ms;
        headline_hit_pct = cached.hit_pct;
      }
  | _ -> assert false

let print ppf =
  let rows = sweep () in
  Format.fprintf ppf "E21 — buffer cache: size x read-ahead x Zipf skew@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "  %5s %3s %6s %5s %6s %8s %9s %9s %9s %6s@." "cache"
    "ra" "theta" "ops" "hit%" "ra-hits" "read(ms)" "p95(ms)" "write(ms)"
    "spans";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %5d %3d %6.2f %5d %6.1f %8d %9.3f %9.3f %9.3f %6d@." r.cache_lines
        r.read_ahead r.theta r.ops r.hit_pct r.ra_hits r.read_mean_ms
        r.read_p95_ms r.write_mean_ms r.flush_spans)
    rows;
  let find cl ra th =
    List.find
      (fun r -> r.cache_lines = cl && r.read_ahead = ra && r.theta = th)
      rows
  in
  let base99 = find 0 0 0.99 and hot99 = find 4 8 0.99 in
  let base90 = find 0 0 0.9 and hot90 = find 4 8 0.9 in
  let uni = find 0 0 0.0 and hotuni = find 4 8 0.0 in
  Format.fprintf ppf
    "headline (4 lines, ra 8): zipf 0.99 mean read %.3f -> %.3f ms (%.2fx, \
     %.1f%% hits); zipf 0.9 %.3f -> %.3f ms (%.2fx); uniform %.3f -> %.3f \
     ms (%.2fx)@."
    base99.read_mean_ms hot99.read_mean_ms
    (base99.read_mean_ms /. hot99.read_mean_ms)
    hot99.hit_pct base90.read_mean_ms hot90.read_mean_ms
    (base90.read_mean_ms /. hot90.read_mean_ms)
    uni.read_mean_ms hotuni.read_mean_ms
    (uni.read_mean_ms /. hotuni.read_mean_ms);
  Format.fprintf ppf
    "read-ahead earns its keep on sequential scans: at zipf 0.99 the 4-line \
     cache serves@.";
  Format.fprintf ppf
    "%d reads straight from prefetched blocks (vs %d with ra off), and \
     write-behind@."
    hot99.ra_hits (find 4 0 0.99).ra_hits;
  Format.fprintf ppf
    "retires the dirty set in %d coalesced flush spans.  Skew is the \
     frontier: LRU@."
    hot99.flush_spans;
  Format.fprintf ppf
    "value collapses at uniform access while the scan benefit survives.@."
