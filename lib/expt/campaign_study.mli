(** E27 — fleet-scale insider campaigns vs. a bounded audit budget
    ({!Security.Campaign}): the detection-latency / audit-cost
    frontier.

    Three audit-spend levels (starved, scrub-only, reference) run
    against all five attack classes, then attacker budget and fleet
    size are swept at the reference spend.  Acceptance: 0 undetected
    losses at the reference budget across every class; nonzero
    undetected losses in the starved cells.  Output is byte-identical
    for any [SERO_JOBS]. *)

type cell = {
  c_defender : string;
  c_attack : Security.Campaign.attack;
  c_res : Security.Campaign.result;
}

val frontier : ?sites:int -> unit -> cell list
(** Every (defender level, attack class) pair at [sites] (default 6)
    sites per cell. *)

type scaling_cell = {
  s_budget : int;
  s_fleet : int;
  s_res : Security.Campaign.result;
}

val scaling : ?attack:Security.Campaign.attack -> unit -> scaling_cell list
(** Attacker budget {m \times} fleet size at the reference spend with
    half the fleet compromised. *)

type headline = {
  h_ref_landed : int;
  h_ref_undetected : int;  (** Acceptance: 0. *)
  h_ref_det_p50_ms : float;
  h_ref_det_p99_ms : float;
  h_ref_audit_spend : int;
  h_race_wins : int;  (** Insider races won vs the sequential sweep. *)
  h_races : int;
  h_starved_undetected : int;  (** Acceptance: nonzero. *)
  h_spares_burned : int;
}

val headline : ?sites:int -> unit -> headline
(** The bench-gated summary at [sites] (default 4) sites per cell. *)

val print : Format.formatter -> unit
