type row = {
  policy : string;
  batch : int;
  mean_service_s : float;
  vs_fifo : float;
}

(* Serve [batches] random batches of block reads under one policy and
   return the mean simulated service time. *)
let run_policy policy ~batches ~batch_size =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:2048 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  let pdev = Sero.Device.pdevice dev in
  let tips = Probe.Pdevice.tips pdev in
  let rng = Sim.Prng.create 21 in
  (* Write some content so reads are honest. *)
  let random_data_pba () =
    let line = Sim.Prng.int rng (Sero.Layout.n_lines lay) in
    List.nth
      (Sero.Layout.data_blocks_of_line lay line)
      (Sim.Prng.int rng (Sero.Layout.data_blocks_per_line lay))
  in
  Probe.Pdevice.reset_ledger pdev;
  let t0 = ref 0. in
  let times = Sim.Stats.create () in
  for _ = 1 to batches do
    let pbas = List.init batch_size (fun _ -> random_data_pba ()) in
    (* Schedule on the first-dot scan offsets of the requested blocks. *)
    let offset_of pba =
      snd (Probe.Tips.locate tips (Sero.Layout.block_first_dot lay pba))
    in
    let by_offset =
      List.map (fun pba -> (offset_of pba, pba)) pbas
    in
    let current =
      (* The sled sits wherever the previous batch left it; expose that
         through a seek probe of cost zero. *)
      0
    in
    let ordered_offsets =
      Probe.Sched.order policy ~current (List.map fst by_offset)
    in
    let ordered_pbas =
      (* Stable selection of pbas in the ordered-offset sequence. *)
      let pool = ref by_offset in
      List.map
        (fun off ->
          let rec pick acc = function
            | [] -> invalid_arg "seek_study: offset vanished"
            | (o, pba) :: rest when o = off ->
                pool := List.rev_append acc rest;
                pba
            | x :: rest -> pick (x :: acc) rest
          in
          pick [] !pool)
        ordered_offsets
    in
    List.iter
      (fun pba -> ignore (Sero.Device.read_block dev ~pba))
      ordered_pbas;
    let t1 = Probe.Pdevice.elapsed pdev in
    Sim.Stats.add times (t1 -. !t0);
    t0 := t1
  done;
  Sim.Stats.mean times

let sweep ?(batches = 40) ?(batch_size = 32) () =
  let fifo = run_policy Probe.Sched.Fifo ~batches ~batch_size in
  List.map
    (fun policy ->
      let mean = run_policy policy ~batches ~batch_size in
      {
        policy = Format.asprintf "%a" Probe.Sched.pp_policy policy;
        batch = batch_size;
        mean_service_s = mean;
        vs_fifo = fifo /. mean;
      })
    Probe.Sched.all_policies

let print ppf =
  Format.fprintf ppf "E19 — sled scheduling for random IO@.";
  Format.fprintf ppf "%s@." (String.make 60 '-');
  Format.fprintf ppf "  %-10s %-8s %-16s %-8s@." "policy" "batch"
    "mean service (s)" "vs fifo";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-10s %-8d %-16.4f %6.2fx@." r.policy r.batch
        r.mean_service_s r.vs_fifo)
    (sweep ());
  Format.fprintf ppf
    "like a disk, the shared sled rewards elevator ordering; the paper's@.";
  Format.fprintf ppf
    "disk-class WMRM expectation (Section 3) holds only with scheduling.@."
