(** E21 — buffer cache frontier: cache size x read-ahead depth x Zipf
    skew over the request pipeline.

    Each cell runs a closed-loop client against a freshly built, seeded
    device: point reads (and a write-behind fraction) drawn Zipf-skewed
    over the data blocks, plus occasional sequential scans — the
    streaming-read pattern read-ahead exists for — served through
    {!Sero.Bcache} over {!Sero.Queue}, per-op latency measured on the
    DES clock.  Cache size 0 is the bare pipeline baseline.  Cells fan out over {!Sim.Pool}; every
    cell builds its own device and PRNG, so output is byte-identical
    for any [-j]. *)

type row = {
  cache_lines : int;  (** Cache capacity in heat lines (0 = no cache). *)
  read_ahead : int;
  theta : float;
  ops : int;
  hit_pct : float;
  ra_hits : int;  (** Hits whose block arrived by prefetch. *)
  read_mean_ms : float;
  read_p95_ms : float;
  write_mean_ms : float;
  flush_spans : int;  (** Coalesced write-behind groups flushed. *)
}

val run_cell :
  ?ops:int -> cache_lines:int -> read_ahead:int -> theta:float -> unit -> row

val sweep : ?ops:int -> unit -> row list

type headline = {
  nocache_read_ms : float;
  cached_read_ms : float;
  speedup : float;
  headline_hit_pct : float;
}

val headline : ?ops:int -> unit -> headline
(** The acceptance-criterion cell pair: Zipf 0.99, 4-line cache with
    read-ahead 8, against the bare pipeline at the same skew. *)

val print : Format.formatter -> unit
