(** E22 — the media endurance lifecycle: health-led retirement vs.
    riding the RS budget until sectors die.

    Two devices with identical geometry (the baseline reserves the same
    spare region so the usable address space matches block for block)
    live through the same ramping wear schedule — a seeded PRNG flips a
    growing number of dots each epoch on a fixed set of {e physical}
    weak lines, identically in both arms.  Only [health_enabled]
    differs: the lifecycle arm watches the corrected-symbol margins its
    reads already produce and evacuates weakening lines onto spares
    ({!Sero.Device.maintenance}), the baseline arm does nothing.

    Measured per trial: records lost at the end of the run in each arm,
    migrations performed, and the re-attestation audit — every migrated
    {e heated} line must still verify [Intact] at its new physical home
    (the burned hash moves with the data).  Trials fan out on
    {!Sim.Pool}; output is byte-identical for any worker count. *)

type arm_result = {
  lost : int;  (** Records unreadable at the end of the run. *)
  migrated : int;
  audit_ok : int;
      (** Migrated heated lines that still verify [Intact] at their new
          home. *)
  audit_total : int;
  reattest_failures : int;
  state : Sero.Device.device_state;
}

type row = { trial : int; records : int; off : arm_result; on_ : arm_result }

val run_trial : int -> row
(** Both arms under the trial's damage schedule. *)

val sweep : ?trials:int -> unit -> row list

type headline = {
  lost_off : float;
  lost_on : float;
  saved_pct : float;  (** Records saved by the lifecycle, percent. *)
  audit_pct : float;  (** Migrated heated lines verifying [Intact]. *)
}

val headline : ?trials:int -> unit -> headline
(** The acceptance-criterion aggregate over a small trial set — the
    bench gate's deterministic E22 metrics. *)

val print : Format.formatter -> unit
