(** E18 — fault injection and the RAS layer: what recovery buys.

    Three questions, all under {e identical} fault plans (same seed →
    same injected event ledger) so RAS-off and RAS-on cells differ only
    in the recovery machinery:

    + {b Unrecoverable sectors and throughput} vs. transient read BER
      and dead probe tips.  E17 showed one dead tip defeats per-sector
      RS; here the spare-tip remap brings those sectors back, bounded
      read retry rides out marginal BER, and the timing ledger shows
      what the remap detour costs.
    + {b Torn burns}: a power cut mid-[heat_line] leaves a half-burned
      write-once area.  It must classify as recoverable-torn (not
      heated, not bad), verify as [Partially_burned] until completed,
      and reach [Intact] after the idempotent completion.
    + {b Power-cut rate}: lines torn per run vs. what a scrub pass
      recovers with RAS on, against the evidence left behind with RAS
      off.

    Determinism is part of the experiment: every cell is run twice and
    the two injection ledgers are compared byte-for-byte. *)

type row = {
  ber : float;
  dead_tips : int;
  ras_on : bool;
  sectors : int;
  unrecoverable : int;
  retries : int;
  repulses : int;
  remapped : int;
  throughput_mbs : float;  (** Payload MB/s over the read sweep. *)
  deterministic : bool;  (** Two runs produced identical ledgers. *)
}

val run_cell :
  ?n_blocks:int ->
  ?sectors:int ->
  ber:float ->
  dead_tips:int ->
  ras_on:bool ->
  plan_seed:int ->
  unit ->
  row

val sweep : ?bers:float list -> ?dead:int list -> unit -> row list
(** The full grid, each (ber, dead) cell with RAS off then on, same
    plan seed per pair. *)

type torn_demo = {
  cut_after_cells : int;  (** ewb pulses delivered before the cut. *)
  verdict_before : Sero.Tamper.verdict;
  classified : Sero.Device.block_class;
  completion_ok : bool;
  verdict_after : Sero.Tamper.verdict;
}

val torn_recovery : ?cut_after_cells:int -> unit -> torn_demo
(** Inject a power cut mid-burn, then classify, complete and
    re-verify the line. *)

type powercut_row = {
  lines_cut : int;
  tampered_without_ras : int;  (** Torn lines left as evidence. *)
  recovered_with_scrub : int;  (** Torn burns a scrub pass completed. *)
}

val powercut_series : ?cuts:int list -> unit -> powercut_row list

val print : Format.formatter -> unit
