(** Fleet-scale insider-attack campaigns against a bounded audit
    budget.

    An insider with a {e budget} — a number of attack operations, a
    wall-clock window on the DES, and a fraction of the fleet it has
    compromised — adaptively schedules attacks across a fleet of
    {!Sero.Device.clone}s, while the defender spends a bounded audit
    budget: a scrub sweep policy ({!Sero.Scrub.policy}), optional deep
    data verification, and background-class [Audit_line] traffic
    submitted through the host front-end, where it contends with the
    foreground under the arbiter.  The campaign measures what the paper
    can only argue qualitatively: the {e detection-latency versus audit
    cost} frontier of tamper-evident storage at fleet scale.

    Every campaign is a pure function of [(seed, sites, attack,
    adversary, defender)]: sites fan out via {!Sim.Fleet.map_merge}
    with keyed per-site PRNG streams, so the merged result is
    byte-identical for any [SERO_JOBS]. *)

(** {1 Attack classes} *)

type attack =
  | Selective_tamper
      (** Rewrite data blocks of cold heated lines — record lines the
          foreground rarely touches, so only audit spend can notice. *)
  | Scrubber_race
      (** Observe the scrub planner's sweep position
          ({!Sero.Scrub.planner_position}) and tamper the heated line
          the sweep will reach {e last} — racing a full rotation ahead
          of the cursor. *)
  | Carcass_replay
      (** Replay raw frames from an evacuated, quarantined carcass
          (the endurance-migration log's old home) over a live heated
          line: stale-but-authentic bytes substituted for current
          data. *)
  | Spare_exhaustion
      (** Ride a localized wear ramp: targeted read-BER regions
          ({!Fault.Plan.region}) over decoy lines collapse their health
          margins, the maintenance scheduler burns spare lines
          evacuating them, and the final tamper lands on a device
          drained of spares. *)
  | Mirror_split
      (** Against a mirrored {!Sarray.Volume}: rewrite {e every}
          replica of a line's data so no cross-replica divergence
          exists — only a sampled {!Sarray.Quorum.verify_lines}
          attestation (each replica self-convicts) can notice. *)

val all_attacks : attack list
val attack_name : attack -> string

val attack_of_string : string -> attack option
(** Inverse of {!attack_name}. *)

(** {1 Budgets} *)

type adversary = {
  ops_budget : int;  (** Attack operations per compromised site. *)
  window : float;  (** Simulated seconds the campaign may span. *)
  compromised : float;  (** Fraction of the fleet the insider owns. *)
}

type defender = {
  scrub_policy : Sero.Scrub.policy;
  scrub_period : float;  (** Seconds between scrub-line submissions. *)
  deep_verify : bool;  (** Scrub re-verifies heated lines' data. *)
  audit_period : float;
      (** Seconds between [Audit_line] frames ([infinity] = none). *)
  array_sample : int;  (** Quorum attestations per array audit window. *)
}

val default_adversary : adversary
(** 6 ops in a 2 s window, the whole fleet compromised. *)

val reference_defender : defender
(** The budget the acceptance bar holds: sampled scrub planner with
    deep verify plus round-robin line audits — every attack class is
    detected within the campaign horizon. *)

val scrub_only_defender : defender
(** Deep-verifying scrub sweeps but no audit traffic: detection rides
    the sweep rotation alone. *)

val starved_defender : defender
(** Sequential shallow scrub, no audit spend: data-only tampers on
    burned lines go unseen — the nonzero undetected-loss end of the
    frontier. *)

(** {1 Results} *)

type result = {
  r_sites : int;
  r_compromised : int;  (** Sites the insider actually owned. *)
  r_attack_ops : int;  (** Attack operations actually spent. *)
  r_landed : int;  (** Distinct lines tampered, fleet-wide. *)
  r_detected : int;
  r_undetected : int;  (** Landed tampers never detected by horizon. *)
  r_det_latency_ms : Sim.Stats.t;
      (** Land-to-detection latency of detected tampers, ms. *)
  r_races : int;  (** Scrubber-race tampers landed. *)
  r_race_wins : int;
      (** Races the insider won: undetected, or detected only after
          3/4 of a full sweep rotation. *)
  r_spares_burned : int;  (** Spare lines drained fleet-wide. *)
  r_audit_frames : int;  (** [Audit_line] frames submitted. *)
  r_audit_rejected : int;  (** Audit frames bounced by admission. *)
  r_scrub_sweeps : int;  (** Scrub lines swept (incl. retired skips). *)
  r_fg_completed : int;  (** Foreground responses delivered. *)
}

val audit_spend : result -> int
(** The defender's spend in audit currency: [Audit_line] frames plus
    scrub sweep submissions. *)

val merge : result list -> result
(** Integer sums plus {!Sim.Stats.merge_many} — the [map_merge]
    reducer. *)

val run :
  ?seed:int ->
  ?sites:int ->
  attack:attack ->
  adversary:adversary ->
  defender:defender ->
  unit ->
  result
(** Run one campaign cell: [sites] independent sites (default 8, seed
    0xE27 mixed with the attack class), each a CoW clone of a golden
    device — or a fresh mirrored volume for [Mirror_split] — fanned out
    deterministically via {!Sim.Fleet.map_merge}. *)

val pp_result : Format.formatter -> result -> unit
