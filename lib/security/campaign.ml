(* Budgeted insider campaigns vs. a bounded audit budget.

   One golden device is formatted per worker domain (a pure function of
   the constants below): all usable lines written, four lines heated,
   one heated line evacuated so a quarantined carcass exists for the
   replay class.  Every site is a CoW clone driven by its keyed PRNG
   stream, so a campaign cell is a pure function of (seed, sites,
   attack, adversary, defender) — byte-identical for any SERO_JOBS.

   The defender's audit spend is real traffic: Audit_line frames enter
   through Host.Server as a background tenant and contend with the
   foreground under the arbiter; scrub sweeps ride the queue's
   background class off the chosen planner.  The adversary acts on the
   device's unsafe surface (it is an insider), but observes the scrub
   planner only through Scrub.planner_position — exactly the
   schedule-knowledge the threat model grants. *)

let golden_blocks = 128
let golden_line_exp = 3
let heated_lines = [ 0; 1; 2; 3 ]
let evacuated_line = 2
let decoy_lines = [| 5; 6; 7 |]

(* Per-dot flip probability of the targeted wear ramp: high enough
   that a decoy-line read corrects ~tens of RS symbols (collapsing the
   health EWMA under active_endurance's 0.5 retire margin within one
   batch), low enough that decodes — and thus the spare-burning
   evacuations — still succeed. *)
let wear_ramp_ber = 0.005

let fg_tenant = 1
let audit_tenant = 7
let fg_ops = 32

(* Periods are scaled to the device's measured service times (a block
   read ~5 ms, a line verify ~67 ms, a deep sweep ~130 ms simulated),
   so audit spend genuinely contends with the foreground instead of
   saturating the queue into fiction. *)
let arrival_mean_s = 0.02
let migration_period = 0.1
let lat_name = "det-latency-ms"

(* Array (Mirror_split) sites: a small mirrored pair per site. *)
let array_member_blocks = 64
let array_heated = [ 0; 1; 2; 3 ]
let array_fg_ops = 8

type attack =
  | Selective_tamper
  | Scrubber_race
  | Carcass_replay
  | Spare_exhaustion
  | Mirror_split

let all_attacks =
  [
    Selective_tamper;
    Scrubber_race;
    Carcass_replay;
    Spare_exhaustion;
    Mirror_split;
  ]

let attack_name = function
  | Selective_tamper -> "selective-tamper"
  | Scrubber_race -> "scrubber-race"
  | Carcass_replay -> "carcass-replay"
  | Spare_exhaustion -> "spare-exhaustion"
  | Mirror_split -> "mirror-split"

let attack_of_string s =
  List.find_opt (fun a -> attack_name a = s) all_attacks

type adversary = { ops_budget : int; window : float; compromised : float }

type defender = {
  scrub_policy : Sero.Scrub.policy;
  scrub_period : float;
  deep_verify : bool;
  audit_period : float;
  array_sample : int;
}

let default_adversary = { ops_budget = 6; window = 2.0; compromised = 1.0 }

let reference_defender =
  {
    scrub_policy = Sero.Scrub.Sampled 0xA5EED;
    scrub_period = 0.15;
    deep_verify = true;
    audit_period = 0.25;
    array_sample = 2;
  }

let scrub_only_defender =
  { reference_defender with
    scrub_policy = Sero.Scrub.Sequential;
    audit_period = infinity }

let starved_defender =
  {
    scrub_policy = Sero.Scrub.Sequential;
    scrub_period = 0.15;
    deep_verify = false;
    audit_period = infinity;
    array_sample = 0;
  }

type result = {
  r_sites : int;
  r_compromised : int;
  r_attack_ops : int;
  r_landed : int;
  r_detected : int;
  r_undetected : int;
  r_det_latency_ms : Sim.Stats.t;
  r_races : int;
  r_race_wins : int;
  r_spares_burned : int;
  r_audit_frames : int;
  r_audit_rejected : int;
  r_scrub_sweeps : int;
  r_fg_completed : int;
}

let audit_spend r = r.r_audit_frames + r.r_scrub_sweeps

let empty () =
  {
    r_sites = 0;
    r_compromised = 0;
    r_attack_ops = 0;
    r_landed = 0;
    r_detected = 0;
    r_undetected = 0;
    r_det_latency_ms = Sim.Stats.create ~name:lat_name ();
    r_races = 0;
    r_race_wins = 0;
    r_spares_burned = 0;
    r_audit_frames = 0;
    r_audit_rejected = 0;
    r_scrub_sweeps = 0;
    r_fg_completed = 0;
  }

let merge = function
  | [] -> empty ()
  | rs ->
      let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
      {
        r_sites = sum (fun r -> r.r_sites);
        r_compromised = sum (fun r -> r.r_compromised);
        r_attack_ops = sum (fun r -> r.r_attack_ops);
        r_landed = sum (fun r -> r.r_landed);
        r_detected = sum (fun r -> r.r_detected);
        r_undetected = sum (fun r -> r.r_undetected);
        r_det_latency_ms =
          Sim.Stats.merge_many ~name:lat_name
            (List.map (fun r -> r.r_det_latency_ms) rs);
        r_races = sum (fun r -> r.r_races);
        r_race_wins = sum (fun r -> r.r_race_wins);
        r_spares_burned = sum (fun r -> r.r_spares_burned);
        r_audit_frames = sum (fun r -> r.r_audit_frames);
        r_audit_rejected = sum (fun r -> r.r_audit_rejected);
        r_scrub_sweeps = sum (fun r -> r.r_scrub_sweeps);
        r_fg_completed = sum (fun r -> r.r_fg_completed);
      }

(* {1 The golden device} *)

let payload_of pba =
  String.init 256 (fun i -> Char.chr ((pba + (17 * i)) land 0xff))

type golden = {
  g_dev : Sero.Device.t;
  g_n_lines : int;
  g_read : int array;  (* every written data block, audit-safe *)
  g_data : int array array;  (* usable line -> its data pbas *)
  g_victims : int array;  (* heated tamper victims, cycle order *)
  g_replay_victims : int array;  (* heated victims != evacuated line *)
  g_carcass : int array;  (* data pbas of the quarantined carcass *)
  g_audit : int array;  (* lines the audit tenant cycles over *)
  g_regions : Fault.Plan.region list;  (* wear ramp over the decoys *)
}

let make_golden () =
  let cfg =
    {
      (Sero.Device.default_config ~n_blocks:golden_blocks
         ~line_exp:golden_line_exp ())
      with
      ras = Sero.Device.active_ras;
      endurance = Sero.Device.active_endurance;
    }
  in
  let dev = Sero.Device.create cfg in
  let lay = Sero.Device.layout dev in
  let n_lines = Sero.Layout.n_lines lay in
  let usable = Sero.Layout.usable_lines lay in
  let data_of l = Sero.Layout.data_blocks_of_line lay l in
  for line = 0 to usable - 1 do
    List.iter
      (fun pba ->
        match Sero.Device.write_block dev ~pba (payload_of pba) with
        | Ok () -> ()
        | Error _ -> assert false)
      (data_of line)
  done;
  List.iter
    (fun line ->
      match Sero.Device.heat_line dev ~line () with
      | Ok _ -> ()
      | Error _ -> assert false)
    heated_lines;
  (match Sero.Device.evacuate_line dev ~line:evacuated_line () with
  | Ok _ -> ()
  | Error _ -> assert false);
  (* The carcass is addressed by the spare-region logical line whose
     remap entry now points at the vacated physical line. *)
  let carcass_line =
    match
      List.find_opt
        (fun l -> Sero.Device.quarantined dev ~line:l)
        (List.init (n_lines - usable) (fun k -> usable + k))
    with
    | Some l -> l
    | None -> assert false
  in
  let region_of_line l =
    let pbas = data_of l in
    let first =
      List.fold_left
        (fun a p -> min a (Sero.Layout.block_first_dot lay p))
        max_int pbas
    in
    let last =
      List.fold_left
        (fun a p ->
          max a (Sero.Layout.block_first_dot lay p + Sero.Layout.block_dots))
        0 pbas
    in
    { Fault.Plan.first_dot = first; n_dots = last - first; ber = wear_ramp_ber }
  in
  {
    g_dev = dev;
    g_n_lines = n_lines;
    g_read =
      Array.of_list (List.concat_map data_of (List.init usable Fun.id));
    g_data = Array.init usable (fun l -> Array.of_list (data_of l));
    g_victims = [| 0; 1; 3; 2 |];
    (* Replaying the carcass over its own evacuated line restores the
       identical payloads — not a tamper — so line 2 is excluded. *)
    g_replay_victims = [| 0; 1; 3 |];
    g_carcass = Array.of_list (data_of carcass_line);
    g_audit = Array.of_list heated_lines;
    g_regions = Array.to_list (Array.map region_of_line decoy_lines);
  }

let golden_key : golden Domain.DLS.key = Domain.DLS.new_key make_golden

(* {1 Shared bookkeeping}

   Landed tampers are keyed by line; only the first land and the first
   detection of a line count, so re-tampering or re-detecting is
   idempotent. *)

type book = {
  landed : (int, float) Hashtbl.t;
  found : (int, float) Hashtbl.t;  (* line -> detection latency, s *)
}

let book () = { landed = Hashtbl.create 8; found = Hashtbl.create 8 }

let note_land b ~line ~at =
  if not (Hashtbl.mem b.landed line) then Hashtbl.add b.landed line at

let note_detect b ~line ~at =
  match Hashtbl.find_opt b.landed line with
  | Some t0 when not (Hashtbl.mem b.found line) ->
      Hashtbl.add b.found line (at -. t0)
  | _ -> ()

let grace_of def n_lines =
  (2. *. float_of_int n_lines *. def.scrub_period)
  +. if def.audit_period < infinity then 8. *. def.audit_period else 0.

let rec draw_times rng ~window k acc =
  if k = 0 then List.sort compare acc
  else draw_times rng ~window (k - 1) (Sim.Prng.float rng window :: acc)

let is_rejection s =
  s = Host.Proto.st_rejected_depth || s = Host.Proto.st_rejected_rate

(* {1 Device sites} *)

let run_device_site ~attack ~adv ~def ~rng _i =
  let g = Domain.DLS.get golden_key in
  let compromised = Sim.Prng.uniform rng < adv.compromised in
  let plan =
    match attack with
    | Spare_exhaustion when compromised ->
        Some
          (Fault.Plan.make
             ~seed:(Sim.Prng.int rng 0x3FFFFFFF)
             ~targeted:g.g_regions ())
    | _ -> None
  in
  let dev = Sero.Device.clone ?plan g.g_dev in
  let spares0 = Sero.Device.spares_left dev in
  let des = Sim.Des.create () in
  let q = Sero.Queue.create des dev in
  let server = Host.Server.create (Host.Server.Device q) in
  Host.Server.set_policy server (Host.Arbiter.Fair_share (fun _ -> 1.));
  let fg = Host.Server.session server ~tenant:fg_tenant in
  let audit = Host.Server.session server ~tenant:audit_tenant in
  let b = book () in
  let audit_seq = Hashtbl.create 32 in
  let audit_frames = ref 0 and audit_rejected = ref 0 in
  let fg_completed = ref 0 in
  let attack_ops = ref 0 in
  let horizon = adv.window +. grace_of def g.g_n_lines in
  Host.Server.set_on_response server
    (Some
       (fun r ->
         if r.Host.Proto.r_tenant = audit_tenant then begin
           if List.exists is_rejection r.Host.Proto.r_phases then
             incr audit_rejected
           else if List.mem Host.Proto.st_tampered r.Host.Proto.r_phases then
             match Hashtbl.find_opt audit_seq r.Host.Proto.r_seq with
             | Some line -> note_detect b ~line ~at:(Sim.Des.now des)
             | None -> ()
         end
         else if r.Host.Proto.r_tenant = fg_tenant then incr fg_completed));
  (* Defender: scrub sweeps off the chosen planner, plus endurance
     maintenance — both background queue traffic. *)
  let planner = Sero.Scrub.planner ~policy:def.scrub_policy dev in
  let scfg =
    {
      Sero.Scrub.default_config with
      deep_verify = def.deep_verify;
      period = def.scrub_period;
    }
  in
  let stop () = Sim.Des.now des >= horizon in
  let prog =
    Sero.Queue.schedule_scrub ~config:scfg ~planner q ~period:def.scrub_period
      ~stop
  in
  ignore (Sero.Queue.schedule_migration q ~period:migration_period ~stop);
  let poll_scrub () =
    List.iter
      (fun (line, _) -> note_detect b ~line ~at:(Sim.Des.now des))
      (Sero.Scrub.report_of_progress prog).Sero.Scrub.tamper_found
  in
  let rec arm_poll () =
    Sim.Des.schedule des ~delay:def.scrub_period (fun _ ->
        poll_scrub ();
        if Sim.Des.now des < horizon then arm_poll ())
  in
  arm_poll ();
  (* Defender: round-robin Audit_line frames over the record lines. *)
  if def.audit_period < infinity then begin
    let cursor = ref 0 in
    let rec arm_audit () =
      Sim.Des.schedule des ~delay:def.audit_period (fun _ ->
          if Sim.Des.now des < horizon then begin
            let line = g.g_audit.(!cursor mod Array.length g.g_audit) in
            incr cursor;
            let seq =
              Host.Server.submit audit (Host.Proto.Audit_line { line })
            in
            Hashtbl.replace audit_seq seq line;
            incr audit_frames;
            arm_audit ()
          end)
    in
    arm_audit ()
  end;
  (* Foreground tenant: open-loop reads through the front-end. *)
  let rec arm_fg issued =
    if issued < fg_ops then
      Sim.Des.schedule des
        ~delay:(Sim.Prng.exponential rng arrival_mean_s)
        (fun _ ->
          let pba = g.g_read.(Sim.Prng.int rng (Array.length g.g_read)) in
          ignore (Host.Server.submit fg (Host.Proto.Read { pba }));
          arm_fg (issued + 1))
  in
  arm_fg 0;
  (* The adversary: ops_budget actions at times drawn over the window. *)
  let tamper line =
    let pba = g.g_data.(line).(0) in
    Sero.Device.unsafe_write_block dev ~pba
      (Printf.sprintf "forged line %d" line);
    note_land b ~line ~at:(Sim.Des.now des)
  in
  let act j =
    incr attack_ops;
    match attack with
    | Selective_tamper ->
        tamper g.g_victims.(j mod Array.length g.g_victims)
    | Scrubber_race ->
        (* Insider knowledge: the planner's next sweep target.  Tamper
           the heated line the sweep will reach last. *)
        let pos = Sero.Scrub.planner_position planner in
        let dist l = (l - pos + g.g_n_lines) mod g.g_n_lines in
        tamper
          (Array.fold_left
             (fun best l -> if dist l > dist best then l else best)
             g.g_victims.(0) g.g_victims)
    | Carcass_replay ->
        let off = j mod Array.length g.g_carcass in
        let victim =
          g.g_replay_victims.(j mod Array.length g.g_replay_victims)
        in
        let raw = Sero.Device.unsafe_read_raw dev ~pba:g.g_carcass.(off) in
        Sero.Device.unsafe_write_raw dev ~pba:g.g_data.(victim).(off) raw;
        note_land b ~line:victim ~at:(Sim.Des.now des)
    | Spare_exhaustion ->
        if j < adv.ops_budget - 1 then
          (* Read a decoy line through its wear ramp: the corrected
             symbols feed the health EWMA and the maintenance scheduler
             burns a spare evacuating it. *)
          Array.iter
            (fun pba -> ignore (Sero.Device.read_block dev ~pba))
            g.g_data.(decoy_lines.(j mod Array.length decoy_lines))
        else tamper g.g_victims.(0)
    | Mirror_split -> assert false (* array sites only *)
  in
  if compromised then
    List.iteri
      (fun j t -> Sim.Des.schedule_at des ~at:t (fun _ -> act j))
      (draw_times rng ~window:adv.window adv.ops_budget []);
  Sim.Des.run des;
  poll_scrub ();
  let landed = Hashtbl.length b.landed in
  let detected = Hashtbl.length b.found in
  let lat = Sim.Stats.create ~name:lat_name () in
  Hashtbl.iter (fun _ l -> Sim.Stats.add lat (l *. 1000.)) b.found;
  let races, race_wins =
    match attack with
    | Scrubber_race ->
        let span = float_of_int g.g_n_lines *. def.scrub_period in
        ( landed,
          Hashtbl.fold
            (fun line _ acc ->
              match Hashtbl.find_opt b.found line with
              | None -> acc + 1
              | Some l -> if l > 0.75 *. span then acc + 1 else acc)
            b.landed 0 )
    | _ -> (0, 0)
  in
  let sr = Sero.Scrub.report_of_progress prog in
  let sweeps = sr.Sero.Scrub.lines_swept + sr.Sero.Scrub.retired_skipped in
  let spares_burned = spares0 - Sero.Device.spares_left dev in
  Sero.Device.park dev;
  {
    r_sites = 1;
    r_compromised = (if compromised then 1 else 0);
    r_attack_ops = !attack_ops;
    r_landed = landed;
    r_detected = detected;
    r_undetected = landed - detected;
    r_det_latency_ms = lat;
    r_races = races;
    r_race_wins = race_wins;
    r_spares_burned = spares_burned;
    r_audit_frames = !audit_frames;
    r_audit_rejected = !audit_rejected;
    r_scrub_sweeps = sweeps;
    r_fg_completed = !fg_completed;
  }

(* {1 Array sites (Mirror_split)}

   Each site is a fresh two-member mirror.  The insider rewrites every
   replica of a victim line's data — no cross-replica divergence — so
   only sampled quorum attestations (each replica self-convicting
   against its own burn) can notice.  Array audit is window-based: every
   audit_period the defender buys array_sample attestations, cycling
   the line space. *)

let run_array_site ~adv ~def ~rng _i =
  let compromised = Sim.Prng.uniform rng < adv.compromised in
  let cfg =
    Sarray.Volume.default_config ~slots:2 ~replication:2 ~spares:0
      ~member_blocks:array_member_blocks ~line_exp:golden_line_exp
      ~seed:(Sim.Prng.int rng 0x3FFFFFFF)
      ~endurance:Sero.Device.default_endurance ~cache_capacity:None ()
  in
  let v = Sarray.Volume.create cfg in
  let m = Sarray.Volume.map v in
  let n_lines = Sarray.Amap.logical_lines m in
  let dpl =
    Sero.Layout.data_blocks_per_line
      (Sero.Device.layout (Sarray.Volume.device v ~dev:0))
  in
  for line = 0 to n_lines - 1 do
    for offset = 0 to dpl - 1 do
      let vba = Sarray.Amap.vba_of m ~line ~offset in
      match Sarray.Volume.write_block v ~vba (payload_of vba) with
      | Ok () -> ()
      | Error _ -> assert false
    done
  done;
  List.iter
    (fun line ->
      match Sarray.Volume.heat_line v ~line () with
      | Ok _ -> ()
      | Error _ -> assert false)
    array_heated;
  let server = Host.Server.create (Host.Server.Volume v) in
  let fg = Host.Server.session server ~tenant:fg_tenant in
  let audit = Host.Server.session server ~tenant:audit_tenant in
  let fg_completed = ref 0 in
  for k = 0 to array_fg_ops - 1 do
    let vba = Sarray.Amap.vba_of m ~line:(k mod n_lines) ~offset:0 in
    let r = Host.Server.call fg (Host.Proto.Read { pba = vba }) in
    if not (Host.Proto.response_failed r) then incr fg_completed
  done;
  let b = book () in
  let attack_ops = ref 0 in
  let victims = Array.of_list array_heated in
  let tamper j ~at =
    incr attack_ops;
    let line = victims.(j mod Array.length victims) in
    List.iter
      (fun slot ->
        let dev = Sarray.Volume.dev_of_slot v ~slot in
        let pba =
          Sarray.Amap.member_pba m ~vba:(Sarray.Amap.vba_of m ~line ~offset:0)
        in
        Sero.Device.unsafe_write_block
          (Sarray.Volume.device v ~dev)
          ~pba
          (Printf.sprintf "forged line %d" line))
      (Sarray.Volume.serving_slots v ~line);
    note_land b ~line ~at
  in
  let horizon = adv.window +. grace_of def n_lines in
  let times =
    if compromised then draw_times rng ~window:adv.window adv.ops_budget []
    else []
  in
  let audit_frames = ref 0 and audit_rejected = ref 0 in
  let pending = ref (List.mapi (fun j t -> (j, t)) times) in
  let land_until tw =
    let due, later = List.partition (fun (_, t) -> t <= tw) !pending in
    List.iter (fun (j, t) -> tamper j ~at:t) due;
    pending := later
  in
  if def.audit_period < infinity then begin
    let n_windows = int_of_float (horizon /. def.audit_period) in
    let cursor = ref 0 in
    for w = 1 to n_windows do
      let tw = float_of_int w *. def.audit_period in
      land_until tw;
      for _ = 1 to def.array_sample do
        let line = !cursor mod n_lines in
        incr cursor;
        incr audit_frames;
        let r = Host.Server.call audit (Host.Proto.Audit_line { line }) in
        if List.exists is_rejection r.Host.Proto.r_phases then
          incr audit_rejected
        else if List.mem Host.Proto.st_tampered r.Host.Proto.r_phases then
          note_detect b ~line ~at:tw
      done;
      (* A conviction that crosses the trust threshold quarantines the
         member — conclusive, device-level detection.  Every landed
         tamper on a condemned mirror is thereby caught, even lines the
         sampler never reaches before the group drops offline. *)
      if
        Array.exists
          (fun s -> s = Sarray.Volume.Quarantined_member)
          (Sarray.Volume.member_states v)
      then Hashtbl.iter (fun line _ -> note_detect b ~line ~at:tw) b.landed
    done
  end;
  (* Attacks after the last window (or under a starved defender) land
     with no audit left to see them. *)
  land_until infinity;
  let landed = Hashtbl.length b.landed in
  let detected = Hashtbl.length b.found in
  let lat = Sim.Stats.create ~name:lat_name () in
  Hashtbl.iter (fun _ l -> Sim.Stats.add lat (l *. 1000.)) b.found;
  {
    r_sites = 1;
    r_compromised = (if compromised then 1 else 0);
    r_attack_ops = !attack_ops;
    r_landed = landed;
    r_detected = detected;
    r_undetected = landed - detected;
    r_det_latency_ms = lat;
    r_races = 0;
    r_race_wins = 0;
    r_spares_burned = 0;
    r_audit_frames = !audit_frames;
    r_audit_rejected = !audit_rejected;
    r_scrub_sweeps = 0;
    r_fg_completed = !fg_completed;
  }

(* {1 Campaign driver} *)

let attack_tag = function
  | Selective_tamper -> 1
  | Scrubber_race -> 2
  | Carcass_replay -> 3
  | Spare_exhaustion -> 4
  | Mirror_split -> 5

let run ?(seed = 0xE27) ?(sites = 8) ~attack ~adversary ~defender () =
  let seed = seed lxor (attack_tag attack * 0x9E3779B1) in
  let f ~rng i =
    match attack with
    | Mirror_split -> run_array_site ~adv:adversary ~def:defender ~rng i
    | _ -> run_device_site ~attack ~adv:adversary ~def:defender ~rng i
  in
  Sim.Fleet.map_merge ~seed sites ~f ~merge

let pp_result ppf r =
  let p50, _, p99 =
    if Sim.Stats.count r.r_det_latency_ms > 0 then
      Sim.Stats.quantiles r.r_det_latency_ms
    else (0., 0., 0.)
  in
  Format.fprintf ppf
    "sites=%d compromised=%d ops=%d landed=%d detected=%d undetected=%d \
     det-p50=%.2fms det-p99=%.2fms races=%d/%d spares=%d audit=%d(+%d rej) \
     sweeps=%d fg=%d"
    r.r_sites r.r_compromised r.r_attack_ops r.r_landed r.r_detected
    r.r_undetected p50 p99 r.r_race_wins r.r_races r.r_spares_burned
    r.r_audit_frames r.r_audit_rejected r.r_scrub_sweeps r.r_fg_completed
