type t = {
  n_tips : int;
  n_spares : int;
  n_dots : int;
  field_size : int;
  field_cols : int;
  failed : bool array; (* length n_tips + n_spares; raw health *)
  remap : int array; (* length n_tips; spare unit serving the tip, or -1 *)
  uses : int array; (* length n_tips + n_spares *)
  mutable next_spare : int;
  mutable serving_broken : int; (* logical tips whose serving unit is broken *)
  mutable n_remapped : int;
  mutable full_uses : int; (* banked whole-row wear, one per logical tip *)
}

let create ?(spares = 0) ~n_tips medium =
  let n = Pmedia.Medium.size medium in
  if n_tips <= 0 then invalid_arg "Tips.create: n_tips must be positive";
  if spares < 0 then invalid_arg "Tips.create: spares must be non-negative";
  (* Rounding rule: fields are ceil(n / n_tips) dots; when n_tips does
     not divide the medium size, the trailing scan row is partial and
     tips with index >= n mod n_tips simply have one dot fewer.  locate
     and dot_of still range-check against the true dot count. *)
  let field_size = (n + n_tips - 1) / n_tips in
  (* Tip fields tile the medium column-wise: each tip's field is a
     vertical stripe [cols / n_tips] dots wide (when that divides) or a
     row-major slice otherwise; only the width matters for seek cost. *)
  let cols = Pmedia.Medium.cols medium in
  let field_cols = if cols mod n_tips = 0 then cols / n_tips else cols in
  let field_cols = max 1 (min field_cols field_size) in
  {
    n_tips;
    n_spares = spares;
    n_dots = n;
    field_size;
    field_cols;
    failed = Array.make (n_tips + spares) false;
    remap = Array.make n_tips (-1);
    uses = Array.make (n_tips + spares) 0;
    next_spare = 0;
    serving_broken = 0;
    n_remapped = 0;
    full_uses = 0;
  }

let copy t =
  {
    t with
    failed = Array.copy t.failed;
    remap = Array.copy t.remap;
    uses = Array.copy t.uses;
  }

let n_tips t = t.n_tips
let spares t = t.n_spares
let field_size t = t.field_size
let field_cols t = t.field_cols

let locate t dot =
  if dot < 0 || dot >= t.n_dots then
    invalid_arg "Tips.locate: dot address out of range";
  (dot mod t.n_tips, dot / t.n_tips)

let dot_of t ~tip ~offset =
  if tip < 0 || tip >= t.n_tips || offset < 0 || offset >= t.field_size then
    invalid_arg "Tips.dot_of: out of range";
  let dot = (offset * t.n_tips) + tip in
  if dot >= t.n_dots then invalid_arg "Tips.dot_of: out of range";
  dot

(* The physical unit currently serving a logical tip. *)
let serving t i = if i < t.n_tips && t.remap.(i) >= 0 then t.remap.(i) else i

(* Whole-row wear (the hot case: every scan row of a bulk run touches
   every logical tip once) is banked in a single counter and
   materialised into [uses] only when the serving map is about to
   change or a count is read. *)
let flush_full_uses t =
  if t.full_uses > 0 then begin
    for i = 0 to t.n_tips - 1 do
      let u = serving t i in
      t.uses.(u) <- t.uses.(u) + t.full_uses
    done;
    t.full_uses <- 0
  end

(* Health transitions (fail, remap) are rare; recounting keeps the
   cached summaries trivially consistent with the arrays. *)
let recount t =
  let broken = ref 0 in
  for i = 0 to t.n_tips - 1 do
    if t.failed.(serving t i) then incr broken
  done;
  t.serving_broken <- !broken;
  let remapped = ref 0 in
  Array.iter (fun s -> if s >= 0 then incr remapped) t.remap;
  t.n_remapped <- !remapped

let fail_tip t i =
  flush_full_uses t;
  t.failed.(i) <- true;
  recount t

let tip_broken t i = t.failed.(i)
let tip_failed t i = t.failed.(serving t i)
let all_serving_healthy t = t.serving_broken = 0

let failed_count t =
  let n = ref 0 in
  for i = 0 to t.n_tips - 1 do
    if t.failed.(i) then incr n
  done;
  !n

let is_remapped t i = i < t.n_tips && t.remap.(i) >= 0

let remapped_count t = t.n_remapped

let spares_used t = t.next_spare

let spares_free t =
  let free = ref 0 in
  for s = t.next_spare to t.n_spares - 1 do
    if not t.failed.(t.n_tips + s) then incr free
  done;
  !free

let remap_tip t i =
  if i < 0 || i >= t.n_tips then invalid_arg "Tips.remap_tip: bad tip";
  flush_full_uses t;
  if not (tip_failed t i) then false
  else begin
    (* Scan forward for the next healthy, unassigned spare. *)
    let rec pick () =
      if t.next_spare >= t.n_spares then false
      else begin
        let unit = t.n_tips + t.next_spare in
        t.next_spare <- t.next_spare + 1;
        if t.failed.(unit) then pick ()
        else begin
          t.remap.(i) <- unit;
          recount t;
          true
        end
      end
    in
    pick ()
  end

let record_use t ~tip =
  let u = serving t tip in
  t.uses.(u) <- t.uses.(u) + 1

let record_use_range t ~lo ~hi =
  if lo < 0 || hi >= t.n_tips then
    invalid_arg "Tips.record_use_range: tip range out of range";
  if t.n_remapped = 0 then begin
    if lo = 0 && hi = t.n_tips - 1 then t.full_uses <- t.full_uses + 1
    else
      for i = lo to hi do
        t.uses.(i) <- t.uses.(i) + 1
      done
  end
  else
    for i = lo to hi do
      let u = serving t i in
      t.uses.(u) <- t.uses.(u) + 1
    done

(* [count] whole rows of wear at once — only valid when no tip is
   remapped (the caller's lean-path guard), where a full row is exactly
   one banked increment.  Bit-identical to [count] record_use_range
   calls with lo=0, hi=n_tips-1. *)
let record_full_rows t ~count =
  if count > 0 then begin
    assert (t.n_remapped = 0);
    t.full_uses <- t.full_uses + count
  end

let uses t ~tip =
  flush_full_uses t;
  t.uses.(tip)
