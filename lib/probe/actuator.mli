(** Electrostatic stepper actuator (µWalker / Harmonica class, Section 6).

    One actuator moves the whole medium sled; all probe tips therefore
    always sit over the {e same} (x, y) offset within their own dot
    field.  Position is tracked in dot-pitch units of the tip field;
    seeks charge the shared {!Timing} ledger with distance/velocity plus
    a settle time, and a wear counter tracks total travel. *)

type t

val create : Timing.t -> pitch:float -> field_cols:int -> t
(** [pitch] in metres; [field_cols] is the width of one tip's field in
    dots — used to convert a scan-order offset to (x, y). *)

val copy : t -> Timing.t -> t
(** Same geometry and kinematic state, charging the given (normally
    freshly copied) timing ledger. *)

val position : t -> int
(** Current scan-order offset under the tips (serpentine row-major). *)

val travel : t -> float
(** Total distance travelled, m (wear figure). *)

val seek : t -> int -> unit
(** [seek t offset] moves the sled so the tips sit over scan offset
    [offset].  Moving to the current position is free.  Moving to the
    {e next} offset in scan order is a continuous scan step and charges
    one pitch of travel without settle. *)

val scan_run : t -> first:int -> last:int -> unit
(** [seek t first] followed by continuous scan steps through [last]
    (inclusive).  The pitch additions accumulate in an unboxed local in
    the same order a per-offset {!seek} loop would make them, so
    {!travel} is bit-identical — only the per-step boxing is gone. *)

val xy_of_offset : t -> int -> int * int
(** Column/row of a scan offset within the tip field (serpentine:
    odd rows run right-to-left, so adjacent offsets are always
    physically adjacent). *)
