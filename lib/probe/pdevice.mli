(** The assembled probe-storage device (µSPAM, Figure 4): patterned
    medium + tip array + shared actuator + time/energy ledger.

    Operations work on {e runs} of logical dot addresses.  A run is
    striped across the tips ({!Tips}), so each scan-offset step moves
    all tips one dot and transfers [n_tips] bits in one bit time; the
    ledger is charged per offset step, not per bit — tip parallelism is
    what makes the device competitive with a disk (Section 3 expects
    hard-disk-class WMRM performance).

    Failed tips surface exactly the way the paper's addressing
    discussion worries about: their dots read as noise, fail the erb
    verification, and are indistinguishable from heated dots at this
    level — disambiguation happens in the SERO layer via framing and
    known hash locations. *)

type t

type config = {
  n_tips : int;
  spare_tips : int;
      (** Physical tips reserved for {!Tips.remap_tip}; they serve no
          dots until a failed tip's field is remapped onto one. *)
  costs : Timing.costs;
  profile : Physics.Thermal.profile option;
      (** Electrical-write thermal profile; [None] = default for the
          medium geometry. *)
  erb_cycles : int;
      (** Invert/verify rounds per electrical bit read (see
          {!Pmedia.Bitops.erb}); the default 8 pushes the probability of
          mistaking a heated dot for unheated below 2e-5. *)
}

val default_config : config
(** 256 tips, no spares, default costs, default profile, 8 erb
    cycles. *)

val create : ?config:config -> Pmedia.Medium.t -> t

val clone : t -> t
(** Copy-on-write device snapshot: the medium is {!Pmedia.Medium.clone}d
    (unmutated segments shared), the tip array, ledgers, sled state and
    op counters are deep-copied, and the clone's PRNG continues from the
    parent's current state independently.  A live fault injector on the
    parent is {e never} inherited — its PRNG position and event ledger
    belong to the parent's history — so the clone starts fault-free;
    install a fresh injector on the clone to re-arm faults. *)

val medium : t -> Pmedia.Medium.t
val tips : t -> Tips.t
val timing : t -> Timing.t
val bitops : t -> Pmedia.Bitops.ctx
val config : t -> config

val size : t -> int
(** Logical dot addresses, = medium size. *)

val read_run : t -> start:int -> len:int -> bool array
(** Magnetic read; [true] = up = logical 1.  Heated or failed-tip dots
    yield random values, as the physics dictates. *)

val read_run_into : t -> start:int -> len:int -> dst:bool array -> unit
(** {!read_run} into a caller-owned buffer (filling [dst.(0..len-1)]) —
    the allocation-free form for hot paths that reuse a scratch array.
    @raise Invalid_argument if [dst] holds fewer than [len] cells. *)

val read_run_packed : t -> start:int -> len:int -> dst:Bytes.t -> bool
(** Magnetic read of an 8-dot-aligned run straight into packed
    MSB-first bytes (dot [start + 8b + j] → bit [7 - j] of
    [dst.(b)]), skipping the bool-array representation.  Only taken
    when both the healthy-tips dispatch and the defect-free read kernel
    are available; returns [false] with the device completely untouched
    otherwise, and the caller falls back to {!read_run_into} plus
    packing.  When taken, ledgers, wear, counters and PRNG draws are
    identical to the fallback.
    @raise Invalid_argument if [dst] holds fewer than [len/8] bytes. *)

val write_run : t -> start:int -> bool array -> unit
(** Magnetic write of consecutive dots. *)

val write_run_packed : t -> start:int -> len:int -> src:Bytes.t -> bool
(** Magnetic write of an 8-dot-aligned run straight from packed
    MSB-first bytes (bit [7 - j] of [src.(b)] → dot [start + 8b + j]),
    the mirror of {!read_run_packed}.  Only taken on the healthy-tips
    dispatch with no fault injector; returns [false] with the device
    completely untouched otherwise, and the caller falls back to
    {!write_run}.  When taken, ledgers, wear, counters and medium state
    are identical to the fallback (mwb draws no randomness and skips
    heated dots on both paths).
    @raise Invalid_argument if [src] holds fewer than [len/8] bytes. *)

val heat_run : t -> start:int -> bool array -> unit
(** Electrical write: heats dot [start + i] wherever the pattern is
    [true].  Dots under failed tips receive no pulse. *)

val erb_run : ?cycles:int -> t -> start:int -> len:int -> bool array
(** Electrical read: [true] = detected heated.  [cycles] overrides the
    config's [erb_cycles].  One cycle misses a heated dot with
    probability 1/4 (the two verification reads of the paper's sequence
    both agree by luck), so callers that must not miss escalate the
    cycle count on suspicious dots. *)

val erb_run_into :
  ?cycles:int -> t -> start:int -> len:int -> dst:bool array -> unit
(** {!erb_run} into a caller-owned buffer, like {!read_run_into}. *)

val seek_to_dot : t -> int -> unit
(** Pre-position the sled (exposes seek cost to scheduling studies). *)

val elapsed : t -> float
val energy : t -> float
val reset_ledger : t -> unit

(** {1 Fault injection} *)

val install_fault : t -> Fault.Injector.t -> unit
(** Route every bit operation through the injector (see
    {!Pmedia.Bitops.set_fault}).  Scheduled tip deaths are drained at
    scan-row boundaries and marked in {!tips}; once any field is
    remapped to a spare, every scan row pays one extra settle time. *)

val clear_fault : t -> unit
val fault : t -> Fault.Injector.t option
