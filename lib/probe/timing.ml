type costs = {
  bit_time : float;
  ewb_time : float;
  seek_velocity : float;
  seek_settle : float;
  read_bit_energy : float;
  write_bit_energy : float;
  ewb_energy : float;
}

let default_costs =
  let profile =
    Physics.Thermal.default_profile Physics.Constants.dot_100nm
  in
  {
    bit_time = 10e-6;
    ewb_time = 150e-6;
    seek_velocity = 1e-3;
    seek_settle = 1e-3;
    read_bit_energy = 1e-12;
    write_bit_energy = 5e-12;
    ewb_energy = Physics.Thermal.pulse_energy profile;
  }

type t = {
  costs : costs;
  mutable elapsed : float;
  mutable energy : float;
}

let create ?(costs = default_costs) () = { costs; elapsed = 0.; energy = 0. }
let copy t = { costs = t.costs; elapsed = t.elapsed; energy = t.energy }
let costs t = t.costs
let elapsed t = t.elapsed
let energy t = t.energy

let reset t =
  t.elapsed <- 0.;
  t.energy <- 0.

let charge_bits t ~read ~written =
  let n = read + written in
  t.elapsed <- t.elapsed +. (float_of_int n *. t.costs.bit_time);
  t.energy <-
    t.energy
    +. (float_of_int read *. t.costs.read_bit_energy)
    +. (float_of_int written *. t.costs.write_bit_energy)

(* [times] identical charge_bits calls, accumulated in unboxed locals
   and stored once.  The per-call increments are constants (the same
   products a lone charge_bits computes), so the float additions land
   in the same order with the same operands and the ledger is
   bit-identical to [times] separate calls — the contract the lean
   whole-run dispatch in {!Pdevice} relies on. *)
let charge_bits_times t ~read ~written ~times =
  if times > 0 then begin
    let n = read + written in
    let dt = float_of_int n *. t.costs.bit_time in
    let de_r = float_of_int read *. t.costs.read_bit_energy in
    let de_w = float_of_int written *. t.costs.write_bit_energy in
    let el = ref t.elapsed and en = ref t.energy in
    for _ = 1 to times do
      el := !el +. dt;
      en := !en +. de_r +. de_w
    done;
    t.elapsed <- !el;
    t.energy <- !en
  end

let charge_ewb t n =
  t.elapsed <- t.elapsed +. (float_of_int n *. t.costs.ewb_time);
  t.energy <- t.energy +. (float_of_int n *. t.costs.ewb_energy)

(* Batched {!charge_ewb}, same bit-identical contract as
   {!charge_bits_times}. *)
let charge_ewb_times t n ~times =
  if times > 0 then begin
    let dt = float_of_int n *. t.costs.ewb_time in
    let de = float_of_int n *. t.costs.ewb_energy in
    let el = ref t.elapsed and en = ref t.energy in
    for _ = 1 to times do
      el := !el +. dt;
      en := !en +. de
    done;
    t.elapsed <- !el;
    t.energy <- !en
  end

let charge_seek t ~distance =
  t.elapsed <-
    t.elapsed +. t.costs.seek_settle +. (Float.abs distance /. t.costs.seek_velocity)

let charge_time t dt = t.elapsed <- t.elapsed +. dt
