type t = {
  timing : Timing.t;
  pitch : float;
  field_cols : int;
  mutable position : int;
  mutable travel : float;
}

let create timing ~pitch ~field_cols =
  if field_cols <= 0 then invalid_arg "Actuator.create: field_cols";
  { timing; pitch; field_cols; position = 0; travel = 0. }

(* Same geometry and kinematic state, charging into [timing] (the
   clone's private ledger). *)
let copy t timing = { t with timing }

let position t = t.position
let travel t = t.travel

let xy_of_offset t off =
  let row = off / t.field_cols and i = off mod t.field_cols in
  let col = if row land 1 = 0 then i else t.field_cols - 1 - i in
  (col, row)

let seek t offset =
  if offset < 0 then invalid_arg "Actuator.seek: negative offset";
  if offset = t.position then ()
  else if offset = t.position + 1 then begin
    (* Continuous scan: the next dot in the serpentine path is reached
       within the bit time the caller charges; only wear accrues. *)
    t.travel <- t.travel +. t.pitch;
    t.position <- offset
  end
  else begin
    let x0, y0 = xy_of_offset t t.position and x1, y1 = xy_of_offset t offset in
    let dx = float_of_int (x1 - x0) *. t.pitch
    and dy = float_of_int (y1 - y0) *. t.pitch in
    let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
    Timing.charge_seek t.timing ~distance:dist;
    t.travel <- t.travel +. dist;
    t.position <- offset
  end

(* [seek first] then the remaining consecutive offsets up to [last],
   each a continuous scan step (travel +. pitch).  The pitch additions
   accumulate in an unboxed local and store once, in the same order a
   per-offset seek loop would make them, so the travel figure is
   bit-identical — only the per-step boxing of the mutable float field
   is gone. *)
let scan_run t ~first ~last =
  seek t first;
  if last > first then begin
    let tr = ref t.travel in
    for _ = first + 1 to last do
      tr := !tr +. t.pitch
    done;
    t.travel <- !tr;
    t.position <- last
  end
