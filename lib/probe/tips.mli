(** The probe (tip) array and the dot address mapping.

    The device stripes consecutive logical dot addresses across the
    tips: logical dot [a] lives under tip [a mod n_tips] at scan offset
    [a / n_tips] of that tip's private field.  Because one actuator
    moves all tips together (Section 6, Figure 4), a run of [n_tips]
    consecutive logical dots is transferred in a single bit time —
    that is the parallelism that lets a 10 µs/bit tip deliver a usable
    device data rate.

    Tips wear and can fail outright; dots under a failed tip read as
    noise and ignore writes, which the sector-level Reed–Solomon code
    must absorb (this is how bad-block handling is exercised).  A device
    built with [spares > 0] carries extra tips parked outside the data
    fields; {!remap_tip} reassigns a failed tip's whole field to a
    spare, after which the field is readable again at an extra
    settle-time cost per scan row (the spare rides the same sled but
    sits off-pitch, see {!Pdevice}). *)

type t

val create : ?spares:int -> n_tips:int -> Pmedia.Medium.t -> t
(** Partitions the medium's dots among [n_tips] tips.

    Rounding rule: when the medium size is not a multiple of [n_tips],
    fields are [ceil (size / n_tips)] dots and the trailing scan row is
    partial — tips whose index is at least [size mod n_tips] serve one
    dot fewer.  {!locate} and {!dot_of} range-check against the true
    medium size, so no phantom addresses appear.

    [spares] (default 0) reserves additional physical tips for
    {!remap_tip}.

    @raise Invalid_argument if [n_tips <= 0] or [spares < 0]. *)

val copy : t -> t
(** Independent tip array with the same health, remap and wear state. *)

val n_tips : t -> int
val spares : t -> int
(** Spare tips the array was built with. *)

val field_size : t -> int
(** Dots per tip field ([ceil (size / n_tips)]). *)

val field_cols : t -> int
(** Width in dots of one tip field (the medium's column count divided
    by the tip-grid width; used by the actuator for 2-D seek cost). *)

val locate : t -> int -> int * int
(** [locate t dot] is [(tip, offset)] for a logical dot address. *)

val dot_of : t -> tip:int -> offset:int -> int
(** Inverse of {!locate}.
    @raise Invalid_argument for the phantom addresses of a partial
    trailing row. *)

val fail_tip : t -> int -> unit
(** Mark a physical unit broken (manufacturing fallout or wear-out).
    Indices [0 .. n_tips-1] are the logical tips, [n_tips ..
    n_tips+spares-1] the spares. *)

val tip_failed : t -> int -> bool
(** Whether the unit {e currently serving} logical tip [i] is broken —
    false again once the tip is remapped to a healthy spare. *)

val tip_broken : t -> int -> bool
(** Raw health of physical unit [i], ignoring remapping. *)

val all_serving_healthy : t -> bool
(** O(1): no logical tip is currently served by a broken unit — the
    whole-row guard for the device's bulk transfer path. *)

val failed_count : t -> int
(** Broken logical tips (raw, ignoring remaps). *)

(** {1 Spare-tip remapping} *)

val remap_tip : t -> int -> bool
(** [remap_tip t i] points logical tip [i]'s field at the next healthy
    spare.  Returns [false] (and does nothing) when the tip is serving
    fine already or no healthy spare remains. *)

val is_remapped : t -> int -> bool
val remapped_count : t -> int
val spares_used : t -> int
val spares_free : t -> int

val record_use : t -> tip:int -> unit
(** Wear accrues on the physical unit serving the tip. *)

val record_use_range : t -> lo:int -> hi:int -> unit
(** [record_use_range t ~lo ~hi] is {!record_use} for every logical tip
    in [lo..hi] (one scan row's worth of wear in one call). *)

val record_full_rows : t -> count:int -> unit
(** [count] whole rows of wear ({!record_use_range} with the full tip
    range) banked in one call.  Only valid while no tip is remapped —
    the same guard the device's lean bulk path already holds. *)

val uses : t -> tip:int -> int
(** Operation count per physical unit — tip wear figure. *)
