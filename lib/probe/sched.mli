(** Request scheduling for the shared sled (Section 6).

    One actuator serves every tip, so a batch of block requests is
    served fastest when their scan offsets are visited in sweep order —
    the probe-storage equivalent of the disk elevator.  The paper
    expects the device to behave like a disk for random WMRM IO; this
    module provides the ordering policies and a cost estimator that the
    E19 experiment compares. *)

type policy =
  | Fifo  (** Serve in arrival order. *)
  | Sstf  (** Shortest seek first (greedy nearest offset). *)
  | Elevator  (** Sweep ascending from the current position, then wrap. *)

val pp_policy : Format.formatter -> policy -> unit
val all_policies : policy list

val order : policy -> current:int -> int list -> int list
(** [order p ~current offsets] returns the service order for a batch of
    scan offsets starting from sled position [current].  The result is
    a permutation of the input. *)

val travel_cost :
  Actuator.t -> current:int -> int list -> float
(** Total travel distance (metres) of serving the offsets in the given
    order from [current], using the actuator's serpentine geometry
    (pure estimate; does not move the actuator). *)
