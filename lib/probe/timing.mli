(** Cost model and simulated time/energy ledger for the probe device.

    The paper gives no measured device timings (the hardware never
    existed); the defaults follow the probe-storage literature it cites
    (Pozidis et al.): per-tip data rates in the 100 kbit/s range with
    massive tip parallelism, millisecond-scale sled seeks, and a slow
    electrical write dominated by the heating pulse.  Every figure-of-
    merit experiment reports {e ratios} between operations, which are
    robust to the absolute scale — and every number here is a config
    field. *)

type costs = {
  bit_time : float;  (** One magnetic bit read or write under a tip, s. *)
  ewb_time : float;  (** One electrical write pulse incl. settle, s. *)
  seek_velocity : float;  (** Sled velocity, m/s. *)
  seek_settle : float;  (** Per-seek settle time, s. *)
  read_bit_energy : float;  (** J per magnetic bit read. *)
  write_bit_energy : float;  (** J per magnetic bit write. *)
  ewb_energy : float;  (** J per heating pulse. *)
}

val default_costs : costs
(** 10 µs/bit, 150 µs/ewb, 1 mm/s sled with 1 ms settle, and pulse
    energy from {!Physics.Thermal.pulse_energy} of the default profile. *)

type t
(** Mutable ledger of elapsed simulated time and dissipated energy. *)

val create : ?costs:costs -> unit -> t

val copy : t -> t
(** Independent ledger with the same costs and accumulated figures. *)

val costs : t -> costs
val elapsed : t -> float
(** Simulated seconds so far. *)

val energy : t -> float
(** Joules so far. *)

val reset : t -> unit

val charge_bits : t -> read:int -> written:int -> unit
(** Account for a batch of magnetic bit operations that happen in
    {e sequence} under one tip (parallel tips are accounted once by the
    caller charging only its longest stripe). *)

val charge_bits_times : t -> read:int -> written:int -> times:int -> unit
(** [times] identical {!charge_bits} calls, accumulated in unboxed
    locals and stored once — the float additions happen in the same
    order with the same operands, so the ledger is bit-identical to the
    per-call loop (the contract {!Pdevice}'s lean dispatch relies on)
    without the per-call boxing. *)

val charge_ewb : t -> int -> unit

val charge_ewb_times : t -> int -> times:int -> unit
(** Batched {!charge_ewb}; same bit-identical contract as
    {!charge_bits_times}. *)

val charge_seek : t -> distance:float -> unit
val charge_time : t -> float -> unit
(** Arbitrary extra delay (controller overhead etc.). *)
