type config = {
  n_tips : int;
  spare_tips : int;
  costs : Timing.costs;
  profile : Physics.Thermal.profile option;
  erb_cycles : int;
}

let default_config =
  {
    n_tips = 256;
    spare_tips = 0;
    costs = Timing.default_costs;
    profile = None;
    erb_cycles = 8;
  }

type t = {
  medium : Pmedia.Medium.t;
  bitops : Pmedia.Bitops.ctx;
  tips : Tips.t;
  actuator : Actuator.t;
  timing : Timing.t;
  config : config;
  mutable fault : Fault.Injector.t option;
}

let create ?(config = default_config) medium =
  let timing = Timing.create ~costs:config.costs () in
  let tips = Tips.create ~spares:config.spare_tips ~n_tips:config.n_tips medium in
  let bitops = Pmedia.Bitops.make ?profile:config.profile medium in
  let actuator =
    Actuator.create timing
      ~pitch:(Pmedia.Medium.config medium).Pmedia.Medium.geometry.pitch
      ~field_cols:(Tips.field_cols tips)
  in
  { medium; bitops; tips; actuator; timing; config; fault = None }

let medium t = t.medium
let tips t = t.tips
let timing t = t.timing
let bitops t = t.bitops
let config t = t.config
let size t = Pmedia.Medium.size t.medium
let elapsed t = Timing.elapsed t.timing
let energy t = Timing.energy t.timing
let reset_ledger t = Timing.reset t.timing
let fault t = t.fault

let install_fault t inj =
  t.fault <- Some inj;
  Pmedia.Bitops.set_fault t.bitops (Some inj)

let clear_fault t =
  t.fault <- None;
  Pmedia.Bitops.set_fault t.bitops None

let check_run t start len =
  if start < 0 || len < 0 || start + len > size t then
    invalid_arg "Pdevice: run out of range"

let seek_to_dot t dot =
  let _, offset = Tips.locate t.tips dot in
  Actuator.seek t.actuator offset

(* Iterate a run offset-step by offset-step, calling [f dot tip] for
   every dot in the run, and charging [per_offset] once per step. *)
let run_offsets t ~start ~len ~per_offset f =
  if len > 0 then begin
    let n = Tips.n_tips t.tips in
    let first_off = start / n and last_off = (start + len - 1) / n in
    for off = first_off to last_off do
      Actuator.seek t.actuator off;
      per_offset ();
      (* Scheduled tip deaths land at scan-row boundaries. *)
      (match t.fault with
      | None -> ()
      | Some inj ->
          List.iter (Tips.fail_tip t.tips) (Fault.Injector.newly_dead_tips inj));
      (* A remapped field is served by a spare parked off-pitch on the
         same sled: each scan row pays one extra settle to line it up. *)
      if Tips.remapped_count t.tips > 0 then
        Timing.charge_time t.timing (Timing.costs t.timing).Timing.seek_settle;
      let lo = max start (off * n) and hi = min (start + len - 1) ((off * n) + n - 1) in
      for dot = lo to hi do
        let tip, _ = Tips.locate t.tips dot in
        Tips.record_use t.tips ~tip;
        f dot tip
      done
    done
  end

let random_bit t = Sim.Prng.bool (Pmedia.Medium.rng t.medium)

let read_run t ~start ~len =
  check_run t start len;
  let out = Array.make len false in
  run_offsets t ~start ~len
    ~per_offset:(fun () -> Timing.charge_bits t.timing ~read:1 ~written:0)
    (fun dot tip ->
      let v =
        if Tips.tip_failed t.tips tip then random_bit t
        else Pmedia.Dot.to_bool (Pmedia.Bitops.mrb t.bitops dot)
      in
      out.(dot - start) <- v);
  out

let write_run t ~start bits =
  let len = Array.length bits in
  check_run t start len;
  run_offsets t ~start ~len
    ~per_offset:(fun () -> Timing.charge_bits t.timing ~read:0 ~written:1)
    (fun dot tip ->
      if not (Tips.tip_failed t.tips tip) then
        Pmedia.Bitops.mwb t.bitops dot (Pmedia.Dot.of_bool bits.(dot - start)))

let heat_run t ~start pattern =
  let len = Array.length pattern in
  check_run t start len;
  run_offsets t ~start ~len
    ~per_offset:(fun () -> Timing.charge_ewb t.timing 1)
    (fun dot tip ->
      if pattern.(dot - start) && not (Tips.tip_failed t.tips tip) then
        Pmedia.Bitops.ewb t.bitops dot)

let erb_run ?cycles t ~start ~len =
  check_run t start len;
  let cycles = Option.value cycles ~default:t.config.erb_cycles in
  let out = Array.make len false in
  run_offsets t ~start ~len
    ~per_offset:(fun () ->
      (* Each cycle is read, write, read, write, read = 3 reads + 2
         writes of the whole tip row. *)
      Timing.charge_bits t.timing ~read:(3 * cycles) ~written:(2 * cycles))
    (fun dot tip ->
      let heated =
        if Tips.tip_failed t.tips tip then
          (* A dead tip cannot run the protocol; its verification reads
             are noise, which reports as heated. *)
          true
        else Pmedia.Bitops.erb ~cycles t.bitops dot
      in
      out.(dot - start) <- heated);
  out
