type config = {
  n_tips : int;
  spare_tips : int;
  costs : Timing.costs;
  profile : Physics.Thermal.profile option;
  erb_cycles : int;
}

let default_config =
  {
    n_tips = 256;
    spare_tips = 0;
    costs = Timing.default_costs;
    profile = None;
    erb_cycles = 8;
  }

type t = {
  medium : Pmedia.Medium.t;
  bitops : Pmedia.Bitops.ctx;
  tips : Tips.t;
  actuator : Actuator.t;
  timing : Timing.t;
  config : config;
  mutable fault : Fault.Injector.t option;
}

let create ?(config = default_config) medium =
  let timing = Timing.create ~costs:config.costs () in
  let tips = Tips.create ~spares:config.spare_tips ~n_tips:config.n_tips medium in
  let bitops = Pmedia.Bitops.make ?profile:config.profile medium in
  let actuator =
    Actuator.create timing
      ~pitch:(Pmedia.Medium.config medium).Pmedia.Medium.geometry.pitch
      ~field_cols:(Tips.field_cols tips)
  in
  { medium; bitops; tips; actuator; timing; config; fault = None }

let medium t = t.medium
let tips t = t.tips
let timing t = t.timing
let bitops t = t.bitops
let config t = t.config
let size t = Pmedia.Medium.size t.medium
let elapsed t = Timing.elapsed t.timing
let energy t = Timing.energy t.timing
let reset_ledger t = Timing.reset t.timing
let fault t = t.fault

let install_fault t inj =
  t.fault <- Some inj;
  Pmedia.Bitops.set_fault t.bitops (Some inj)

let clear_fault t =
  t.fault <- None;
  Pmedia.Bitops.set_fault t.bitops None

let check_run t start len =
  if start < 0 || len < 0 || start + len > size t then
    invalid_arg "Pdevice: run out of range"

let seek_to_dot t dot =
  let _, offset = Tips.locate t.tips dot in
  Actuator.seek t.actuator offset

(* Iterate a run scan-row by scan-row, charging [per_offset] once per
   step.  When every logical tip is served by a healthy unit the whole
   row goes through [bulk] in one call (tip index is [dot - off * n],
   no per-dot [Tips.locate]); a row with any broken serving tip falls
   back to per-dot [f dot tip], which keeps the dead-tip noise
   semantics.  Wear is recorded per row either way, and timing was
   always charged per offset, so the ledgers are identical on both
   paths. *)
let run_offsets t ~start ~len ~per_offset ~bulk f =
  if len > 0 then begin
    let n = Tips.n_tips t.tips in
    let first_off = start / n and last_off = (start + len - 1) / n in
    if
      t.fault = None
      && Tips.remapped_count t.tips = 0
      && Tips.all_serving_healthy t.tips
    then begin
      (* Lean dispatch: with no injector and no broken or remapped tip,
         none of those states can change mid-run, so the per-offset
         checks hoist out and the kernel takes the whole run in one
         call.  The seek/charge/wear sequence below replays the general
         path's float operations in the same order, and the kernels
         visit dots in address order either way, so ledgers, counters
         and the PRNG stream are bit-identical to the general path. *)
      for off = first_off to last_off do
        Actuator.seek t.actuator off;
        per_offset ();
        let row_base = off * n in
        let lo = max start row_base
        and hi = min (start + len - 1) (row_base + n - 1) in
        Tips.record_use_range t.tips ~lo:(lo - row_base) ~hi:(hi - row_base)
      done;
      bulk ~lo:start ~hi:(start + len - 1)
    end
    else
      for off = first_off to last_off do
        Actuator.seek t.actuator off;
        per_offset ();
        (* Scheduled tip deaths land at scan-row boundaries. *)
        (match t.fault with
        | None -> ()
        | Some inj ->
            List.iter (Tips.fail_tip t.tips) (Fault.Injector.newly_dead_tips inj));
        (* A remapped field is served by a spare parked off-pitch on the
           same sled: each scan row pays one extra settle to line it up. *)
        if Tips.remapped_count t.tips > 0 then
          Timing.charge_time t.timing (Timing.costs t.timing).Timing.seek_settle;
        let row_base = off * n in
        let lo = max start row_base
        and hi = min (start + len - 1) (row_base + n - 1) in
        Tips.record_use_range t.tips ~lo:(lo - row_base) ~hi:(hi - row_base);
        if Tips.all_serving_healthy t.tips then bulk ~lo ~hi
        else
          for dot = lo to hi do
            f dot (dot - row_base)
          done
      done
  end

let random_bit t = Sim.Prng.bool (Pmedia.Medium.rng t.medium)

let read_run_into t ~start ~len ~dst =
  check_run t start len;
  if Array.length dst < len then
    invalid_arg "Pdevice.read_run_into: dst too short";
  run_offsets t ~start ~len
    ~per_offset:(fun () -> Timing.charge_bits t.timing ~read:1 ~written:0)
    ~bulk:(fun ~lo ~hi ->
      Pmedia.Bitops.mrb_run t.bitops ~start:lo ~len:(hi - lo + 1) ~dst
        ~dst_pos:(lo - start))
    (fun dot tip ->
      let v =
        if Tips.tip_failed t.tips tip then random_bit t
        else Pmedia.Dot.to_bool (Pmedia.Bitops.mrb t.bitops dot)
      in
      dst.(dot - start) <- v)

let read_run t ~start ~len =
  let out = Array.make len false in
  read_run_into t ~start ~len ~dst:out;
  out

(* Whole-run packed read: only when the lean dispatch AND the packed
   kernel are both available, so the decision is made before any charge
   or draw and a [false] return leaves the device untouched.  The
   charge/wear sequence is the same as [read_run_into]'s lean branch,
   and the kernel draws match the bool-array kernel's, so taking this
   path is invisible to ledgers, counters and the PRNG stream. *)
let read_run_packed t ~start ~len ~dst =
  check_run t start len;
  if Bytes.length dst < len lsr 3 then
    invalid_arg "Pdevice.read_run_packed: dst too short";
  len > 0 && start land 7 = 0 && len land 7 = 0
  && t.fault = None
  && Tips.remapped_count t.tips = 0
  && Tips.all_serving_healthy t.tips
  && Pmedia.Bitops.read_fast_available t.bitops ~start ~len
  && begin
       let n = Tips.n_tips t.tips in
       let first_off = start / n and last_off = (start + len - 1) / n in
       for off = first_off to last_off do
         Actuator.seek t.actuator off;
         Timing.charge_bits t.timing ~read:1 ~written:0;
         let row_base = off * n in
         let lo = max start row_base
         and hi = min (start + len - 1) (row_base + n - 1) in
         Tips.record_use_range t.tips ~lo:(lo - row_base) ~hi:(hi - row_base)
       done;
       Pmedia.Bitops.mrb_run_packed t.bitops ~start ~len ~dst ~dst_pos:0
     end

let write_run t ~start bits =
  let len = Array.length bits in
  check_run t start len;
  run_offsets t ~start ~len
    ~per_offset:(fun () -> Timing.charge_bits t.timing ~read:0 ~written:1)
    ~bulk:(fun ~lo ~hi ->
      Pmedia.Bitops.mwb_run t.bitops ~start:lo ~len:(hi - lo + 1) ~src:bits
        ~src_pos:(lo - start))
    (fun dot tip ->
      if not (Tips.tip_failed t.tips tip) then
        Pmedia.Bitops.mwb t.bitops dot (Pmedia.Dot.of_bool bits.(dot - start)))

let heat_run t ~start pattern =
  let len = Array.length pattern in
  check_run t start len;
  run_offsets t ~start ~len
    ~per_offset:(fun () -> Timing.charge_ewb t.timing 1)
    ~bulk:(fun ~lo ~hi ->
      for dot = lo to hi do
        if pattern.(dot - start) then Pmedia.Bitops.ewb t.bitops dot
      done)
    (fun dot tip ->
      if pattern.(dot - start) && not (Tips.tip_failed t.tips tip) then
        Pmedia.Bitops.ewb t.bitops dot)

let erb_run_into ?cycles t ~start ~len ~dst =
  check_run t start len;
  if Array.length dst < len then
    invalid_arg "Pdevice.erb_run_into: dst too short";
  let cycles = Option.value cycles ~default:t.config.erb_cycles in
  run_offsets t ~start ~len
    ~per_offset:(fun () ->
      (* Each cycle is read, write, read, write, read = 3 reads + 2
         writes of the whole tip row. *)
      Timing.charge_bits t.timing ~read:(3 * cycles) ~written:(2 * cycles))
    ~bulk:(fun ~lo ~hi ->
      Pmedia.Bitops.erb_run ~cycles t.bitops ~start:lo ~len:(hi - lo + 1)
        ~dst ~dst_pos:(lo - start))
    (fun dot tip ->
      let heated =
        if Tips.tip_failed t.tips tip then
          (* A dead tip cannot run the protocol; its verification reads
             are noise, which reports as heated. *)
          true
        else Pmedia.Bitops.erb ~cycles t.bitops dot
      in
      dst.(dot - start) <- heated)

let erb_run ?cycles t ~start ~len =
  let out = Array.make len false in
  erb_run_into ?cycles t ~start ~len ~dst:out;
  out
