type config = {
  n_tips : int;
  spare_tips : int;
  costs : Timing.costs;
  profile : Physics.Thermal.profile option;
  erb_cycles : int;
}

let default_config =
  {
    n_tips = 256;
    spare_tips = 0;
    costs = Timing.default_costs;
    profile = None;
    erb_cycles = 8;
  }

type t = {
  medium : Pmedia.Medium.t;
  bitops : Pmedia.Bitops.ctx;
  tips : Tips.t;
  actuator : Actuator.t;
  timing : Timing.t;
  config : config;
  mutable fault : Fault.Injector.t option;
}

let create ?(config = default_config) medium =
  let timing = Timing.create ~costs:config.costs () in
  let tips = Tips.create ~spares:config.spare_tips ~n_tips:config.n_tips medium in
  let bitops = Pmedia.Bitops.make ?profile:config.profile medium in
  let actuator =
    Actuator.create timing
      ~pitch:(Pmedia.Medium.config medium).Pmedia.Medium.geometry.pitch
      ~field_cols:(Tips.field_cols tips)
  in
  { medium; bitops; tips; actuator; timing; config; fault = None }

(* CoW device snapshot: the medium clones copy-on-write, everything
   else (ledgers, tips, sled position, op counters) deep-copies so the
   two devices evolve fully independently afterwards.  A live fault
   injector on the parent is simply not inherited — its PRNG position
   and ledger belong to the parent's history, so the clone starts
   fault-free and callers re-arm it with a fresh plan if they want
   faults on the copy. *)
let clone t =
  let medium = Pmedia.Medium.clone t.medium in
  let bitops = Pmedia.Bitops.clone t.bitops medium in
  let timing = Timing.copy t.timing in
  {
    medium;
    bitops;
    tips = Tips.copy t.tips;
    actuator = Actuator.copy t.actuator timing;
    timing;
    config = t.config;
    fault = None;
  }

let medium t = t.medium
let tips t = t.tips
let timing t = t.timing
let bitops t = t.bitops
let config t = t.config
let size t = Pmedia.Medium.size t.medium
let elapsed t = Timing.elapsed t.timing
let energy t = Timing.energy t.timing
let reset_ledger t = Timing.reset t.timing
let fault t = t.fault

let install_fault t inj =
  t.fault <- Some inj;
  Pmedia.Bitops.set_fault t.bitops (Some inj)

let clear_fault t =
  t.fault <- None;
  Pmedia.Bitops.set_fault t.bitops None

let check_run t start len =
  if start < 0 || len < 0 || start + len > size t then
    invalid_arg "Pdevice: run out of range"

let seek_to_dot t dot =
  let _, offset = Tips.locate t.tips dot in
  Actuator.seek t.actuator offset

(* How the ledger is charged per scan-offset step of a run. *)
type charge = Cbits of { read : int; written : int } | Cewb of int

let charge_one t = function
  | Cbits { read; written } -> Timing.charge_bits t.timing ~read ~written
  | Cewb n -> Timing.charge_ewb t.timing n

let charge_many t c ~times =
  match c with
  | Cbits { read; written } ->
      Timing.charge_bits_times t.timing ~read ~written ~times
  | Cewb n -> Timing.charge_ewb_times t.timing n ~times

(* Wear for every scan row a run touches.  Interior rows are always
   full rows; only the first and last can be partial.  Wear is integer
   addition, so banking the full rows in a single call leaves exactly
   the per-row totals.  Lean path only (record_full_rows requires no
   remap, which the caller guarantees). *)
let record_run_wear t ~start ~len =
  let n = Tips.n_tips t.tips in
  let first_off = start / n and last_off = (start + len - 1) / n in
  let lo0 = start - (first_off * n)
  and hi1 = start + len - 1 - (last_off * n) in
  if first_off = last_off then Tips.record_use_range t.tips ~lo:lo0 ~hi:hi1
  else begin
    let full = ref (last_off - first_off - 1) in
    if lo0 = 0 then incr full
    else Tips.record_use_range t.tips ~lo:lo0 ~hi:(n - 1);
    if hi1 = n - 1 then incr full
    else Tips.record_use_range t.tips ~lo:0 ~hi:hi1;
    Tips.record_full_rows t.tips ~count:!full
  end

(* Iterate a run scan-row by scan-row, charging [charge] once per step.
   When every logical tip is served by a healthy unit the whole row
   goes through [bulk] in one call (tip index is [dot - off * n], no
   per-dot [Tips.locate]); a row with any broken serving tip falls back
   to per-dot [f dot tip], which keeps the dead-tip noise semantics.
   Wear is recorded per row either way, and timing is charged per
   offset either way, so the ledgers are identical on both paths. *)
let run_offsets t ~start ~len ~charge ~bulk f =
  if len > 0 then begin
    let n = Tips.n_tips t.tips in
    let first_off = start / n and last_off = (start + len - 1) / n in
    if
      t.fault = None
      && Tips.remapped_count t.tips = 0
      && Tips.all_serving_healthy t.tips
    then begin
      (* Lean dispatch: with no injector and no broken or remapped tip,
         none of those states can change mid-run, so the per-offset
         checks hoist out, the seek/charge/wear loops batch (each
         replays the per-offset float additions in the same order from
         unboxed locals — see {!Actuator.scan_run} and
         {!Timing.charge_bits_times} — so the ledgers are bit-identical
         to the per-offset loop without its boxing), and the kernel
         takes the whole run in one call, visiting dots in address
         order exactly as the scalar path would. *)
      Actuator.scan_run t.actuator ~first:first_off ~last:last_off;
      charge_many t charge ~times:(last_off - first_off + 1);
      record_run_wear t ~start ~len;
      bulk ~lo:start ~hi:(start + len - 1)
    end
    else
      for off = first_off to last_off do
        Actuator.seek t.actuator off;
        charge_one t charge;
        (* Scheduled tip deaths land at scan-row boundaries. *)
        (match t.fault with
        | None -> ()
        | Some inj ->
            List.iter (Tips.fail_tip t.tips) (Fault.Injector.newly_dead_tips inj));
        (* A remapped field is served by a spare parked off-pitch on the
           same sled: each scan row pays one extra settle to line it up. *)
        if Tips.remapped_count t.tips > 0 then
          Timing.charge_time t.timing (Timing.costs t.timing).Timing.seek_settle;
        let row_base = off * n in
        let lo = max start row_base
        and hi = min (start + len - 1) (row_base + n - 1) in
        Tips.record_use_range t.tips ~lo:(lo - row_base) ~hi:(hi - row_base);
        if Tips.all_serving_healthy t.tips then bulk ~lo ~hi
        else
          for dot = lo to hi do
            f dot (dot - row_base)
          done
      done
  end

let random_bit t = Sim.Prng.bool (Pmedia.Medium.rng t.medium)

let read_run_into t ~start ~len ~dst =
  check_run t start len;
  if Array.length dst < len then
    invalid_arg "Pdevice.read_run_into: dst too short";
  run_offsets t ~start ~len
    ~charge:(Cbits { read = 1; written = 0 })
    ~bulk:(fun ~lo ~hi ->
      Pmedia.Bitops.mrb_run t.bitops ~start:lo ~len:(hi - lo + 1) ~dst
        ~dst_pos:(lo - start))
    (fun dot tip ->
      let v =
        if Tips.tip_failed t.tips tip then random_bit t
        else Pmedia.Dot.to_bool (Pmedia.Bitops.mrb t.bitops dot)
      in
      dst.(dot - start) <- v)

let read_run t ~start ~len =
  let out = Array.make len false in
  read_run_into t ~start ~len ~dst:out;
  out

(* Whole-run packed read: only when the lean dispatch AND the packed
   kernel are both available, so the decision is made before any charge
   or draw and a [false] return leaves the device untouched.  The
   charge/wear sequence is the same as [read_run_into]'s lean branch,
   and the kernel draws match the bool-array kernel's, so taking this
   path is invisible to ledgers, counters and the PRNG stream. *)
let read_run_packed t ~start ~len ~dst =
  check_run t start len;
  if Bytes.length dst < len lsr 3 then
    invalid_arg "Pdevice.read_run_packed: dst too short";
  len > 0 && start land 7 = 0 && len land 7 = 0
  && t.fault = None
  && Tips.remapped_count t.tips = 0
  && Tips.all_serving_healthy t.tips
  && Pmedia.Bitops.read_fast_available t.bitops ~start ~len
  && begin
       let n = Tips.n_tips t.tips in
       let first_off = start / n and last_off = (start + len - 1) / n in
       Actuator.scan_run t.actuator ~first:first_off ~last:last_off;
       Timing.charge_bits_times t.timing ~read:1 ~written:0
         ~times:(last_off - first_off + 1);
       record_run_wear t ~start ~len;
       Pmedia.Bitops.mrb_run_packed t.bitops ~start ~len ~dst ~dst_pos:0
     end

(* Whole-run packed write, the mirror of [read_run_packed]: all guards
   are checked before any seek, charge or wear, so a [false] return
   leaves the device untouched and the caller falls back to
   [write_run].  mwb draws no randomness and ignores defects, so the
   only kernel guard is the absence of a fault injector. *)
let write_run_packed t ~start ~len ~src =
  check_run t start len;
  if Bytes.length src < len lsr 3 then
    invalid_arg "Pdevice.write_run_packed: src too short";
  len > 0 && start land 7 = 0 && len land 7 = 0
  && t.fault = None
  && Tips.remapped_count t.tips = 0
  && Tips.all_serving_healthy t.tips
  && begin
       let n = Tips.n_tips t.tips in
       let first_off = start / n and last_off = (start + len - 1) / n in
       Actuator.scan_run t.actuator ~first:first_off ~last:last_off;
       Timing.charge_bits_times t.timing ~read:0 ~written:1
         ~times:(last_off - first_off + 1);
       record_run_wear t ~start ~len;
       Pmedia.Bitops.mwb_run_packed t.bitops ~start ~len ~src ~src_pos:0
     end

let write_run t ~start bits =
  let len = Array.length bits in
  check_run t start len;
  run_offsets t ~start ~len
    ~charge:(Cbits { read = 0; written = 1 })
    ~bulk:(fun ~lo ~hi ->
      Pmedia.Bitops.mwb_run t.bitops ~start:lo ~len:(hi - lo + 1) ~src:bits
        ~src_pos:(lo - start))
    (fun dot tip ->
      if not (Tips.tip_failed t.tips tip) then
        Pmedia.Bitops.mwb t.bitops dot (Pmedia.Dot.of_bool bits.(dot - start)))

let heat_run t ~start pattern =
  let len = Array.length pattern in
  check_run t start len;
  run_offsets t ~start ~len ~charge:(Cewb 1)
    ~bulk:(fun ~lo ~hi ->
      for dot = lo to hi do
        if pattern.(dot - start) then Pmedia.Bitops.ewb t.bitops dot
      done)
    (fun dot tip ->
      if pattern.(dot - start) && not (Tips.tip_failed t.tips tip) then
        Pmedia.Bitops.ewb t.bitops dot)

let erb_run_into ?cycles t ~start ~len ~dst =
  check_run t start len;
  if Array.length dst < len then
    invalid_arg "Pdevice.erb_run_into: dst too short";
  let cycles = Option.value cycles ~default:t.config.erb_cycles in
  (* Each cycle is read, write, read, write, read = 3 reads + 2 writes
     of the whole tip row. *)
  run_offsets t ~start ~len
    ~charge:(Cbits { read = 3 * cycles; written = 2 * cycles })
    ~bulk:(fun ~lo ~hi ->
      Pmedia.Bitops.erb_run ~cycles t.bitops ~start:lo ~len:(hi - lo + 1)
        ~dst ~dst_pos:(lo - start))
    (fun dot tip ->
      let heated =
        if Tips.tip_failed t.tips tip then
          (* A dead tip cannot run the protocol; its verification reads
             are noise, which reports as heated. *)
          true
        else Pmedia.Bitops.erb ~cycles t.bitops dot
      in
      dst.(dot - start) <- heated)

let erb_run ?cycles t ~start ~len =
  let out = Array.make len false in
  erb_run_into ?cycles t ~start ~len ~dst:out;
  out
