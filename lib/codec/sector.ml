let payload_bytes = 512
let header_bytes = 16
let crc_bytes = 4
let framed_bytes = header_bytes + payload_bytes + crc_bytes (* 532 *)
let rs_code = Rs.make ~nparity:24
let physical_bytes = Rs.encoded_length rs_code framed_bytes (* 604 *)
let physical_bits = 8 * physical_bytes
let overhead_fraction = 1. -. (float_of_int payload_bytes /. float_of_int physical_bytes)
let magic = 0x5E20 (* "SERO" sector magic *)

type kind = Data | Inode | Summary | Checkpoint | Hash_meta

let kind_to_int = function
  | Data -> 0
  | Inode -> 1
  | Summary -> 2
  | Checkpoint -> 3
  | Hash_meta -> 4

let kind_of_int = function
  | 0 -> Some Data
  | 1 -> Some Inode
  | 2 -> Some Summary
  | 3 -> Some Checkpoint
  | 4 -> Some Hash_meta
  | _ -> None

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Data -> "data"
    | Inode -> "inode"
    | Summary -> "summary"
    | Checkpoint -> "checkpoint"
    | Hash_meta -> "hash-meta")

let encode ~pba ~kind ~generation payload =
  if String.length payload > payload_bytes then
    invalid_arg "Sector.encode: payload longer than 512 bytes";
  let w = Binio.W.create ~capacity:framed_bytes () in
  Binio.W.u16 w magic;
  Binio.W.u8 w (kind_to_int kind);
  Binio.W.u8 w 0 (* reserved *);
  Binio.W.u64 w pba;
  Binio.W.u32 w generation;
  Binio.W.raw w payload;
  if String.length payload < payload_bytes then
    Binio.W.raw w (String.make (payload_bytes - String.length payload) '\x00');
  let framed_no_crc = Binio.W.contents w in
  let crc = Crc32.string framed_no_crc in
  Binio.W.u32 w (Int32.to_int crc land 0xFFFFFFFF);
  Rs.encode_blocks rs_code (Binio.W.contents w)

type decoded = {
  pba : int;
  kind : kind;
  generation : int;
  payload : string;
  corrected_symbols : int;
}

type error = Uncorrectable | Bad_crc | Bad_header

let pp_error ppf e =
  Format.pp_print_string ppf
    (match e with
    | Uncorrectable -> "uncorrectable"
    | Bad_crc -> "bad-crc"
    | Bad_header -> "bad-header")

(* Fast accept for the overwhelmingly common healthy sector: every RS
   slice passes the cheap {!Rs.probably_clean} test, so the framed bytes
   are assembled without running the full decoder, then validated by
   header parse + CRC.  Any disagreement at any stage returns [None] and
   the caller falls through to the full slice-by-slice decode, so every
   error path (and the ~2^-32 residual of a corruption that fools the
   quick syndromes) keeps the slow path's exact semantics; a wrong
   accept additionally needs a CRC32 collision. *)
let decode_fast_sub coded base =
  let m = Rs.max_data rs_code and npar = Rs.nparity rs_code in
  let clean = ref true in
  let off = ref base and remaining = ref framed_bytes in
  while !remaining > 0 && !clean do
    let take = min m !remaining in
    if not (Rs.probably_clean rs_code coded ~off:!off ~len:(take + npar)) then
      clean := false
    else begin
      off := !off + take + npar;
      remaining := !remaining - take
    end
  done;
  if not !clean then None
  else begin
    let framed = Bytes.create framed_bytes in
    let off = ref base and pos = ref 0 and remaining = ref framed_bytes in
    while !remaining > 0 do
      let take = min m !remaining in
      Bytes.blit coded !off framed !pos take;
      off := !off + take + npar;
      pos := !pos + take;
      remaining := !remaining - take
    done;
    let framed = Bytes.unsafe_to_string framed in
    let r = Binio.R.of_string framed in
    match
      let m = Binio.R.u16 r in
      let kind_code = Binio.R.u8 r in
      let _reserved = Binio.R.u8 r in
      let pba = Binio.R.u64 r in
      let generation = Binio.R.u32 r in
      let payload = Binio.R.raw r payload_bytes in
      let crc = Binio.R.u32 r in
      (m, kind_code, pba, generation, payload, crc)
    with
    | exception Binio.R.Truncated -> None
    | m, kind_code, pba, generation, payload, crc -> (
        if m <> magic then None
        else
          match kind_of_int kind_code with
          | None -> None
          | Some kind ->
              let body =
                Bytes.unsafe_of_string framed
              in
              let expect =
                Int32.to_int (Crc32.bytes body 0 (framed_bytes - crc_bytes))
                land 0xFFFFFFFF
              in
              if crc <> expect then None
              else
                Some { pba; kind; generation; payload; corrected_symbols = 0 })
  end

(* Count corrections by decoding slice-by-slice ourselves.  Each slice
   is copied out before {!Rs.decode} corrects it in place, so [coded]
   itself — possibly a caller's shared span buffer — is never
   mutated. *)
let decode_slow_sub coded base =
  begin
    let m = Rs.max_data rs_code and npar = Rs.nparity rs_code in
    let out = Buffer.create framed_bytes in
    let corrected = ref 0 and failed = ref false in
    let off = ref base and remaining = ref framed_bytes in
    while !remaining > 0 && not !failed do
      let take = min m !remaining in
      let cw = Bytes.sub coded !off (take + npar) in
      (match Rs.decode rs_code cw with
      | Rs.Ok_clean -> ()
      | Rs.Corrected n -> corrected := !corrected + n
      | Rs.Uncorrectable -> failed := true);
      Buffer.add_subbytes out cw 0 take;
      off := !off + take + npar;
      remaining := !remaining - take
    done;
    if !failed then Error Uncorrectable
    else begin
      let framed = Buffer.contents out in
      let body = String.sub framed 0 (framed_bytes - crc_bytes) in
      let r = Binio.R.of_string framed in
      match
        let m = Binio.R.u16 r in
        let kind_code = Binio.R.u8 r in
        let _reserved = Binio.R.u8 r in
        let pba = Binio.R.u64 r in
        let generation = Binio.R.u32 r in
        let payload = Binio.R.raw r payload_bytes in
        let crc = Binio.R.u32 r in
        (m, kind_code, pba, generation, payload, crc)
      with
      | exception Binio.R.Truncated -> Error Bad_header
      | m, kind_code, pba, generation, payload, crc ->
          if m <> magic then Error Bad_header
          else
            match kind_of_int kind_code with
            | None -> Error Bad_header
            | Some kind ->
                let expect = Int32.to_int (Crc32.string body) land 0xFFFFFFFF in
                if crc <> expect then Error Bad_crc
                else
                  Ok { pba; kind; generation; payload; corrected_symbols = !corrected }
    end
  end

let decode_sub buf ~off =
  if off < 0 || off + physical_bytes > Bytes.length buf then Error Bad_header
  else
    match decode_fast_sub buf off with
    | Some d -> Ok d
    | None -> decode_slow_sub buf off

let decode image =
  if String.length image <> physical_bytes then Error Bad_header
  else decode_sub (Bytes.unsafe_of_string image) ~off:0
