(** Sector framing: 512-byte payload plus ~15% overhead.

    The paper assumes, following Pozidis et al., "a standard size of 512
    bytes and about 15% sector overhead for the sector header, error
    correction, and cyclic redundancy check" (Section 3).  The frame is:

    {v
      header (16 B) | payload (512 B) | CRC-32 (4 B)   = 532 B
      interleaved with Reed-Solomon parity (24 symbols per 231-byte
      slice, 3 slices)                                 = 604 B physical
    v}

    which gives an overhead of 92/604 ≈ 15.2%, and corrects up to 12
    erroneous bytes per 255-byte codeword — matching the per-sector error
    budget of probe media.

    The header carries the {e physical} block address: the paper's
    addressing discussion requires that "a SERO device and the SERO file
    system should use physical block addresses ... so that we know
    exactly at which PBA to look for heated hashes", and including the
    address in the frame is what lets the verify operation detect a
    sector that was copied to a different location. *)

val payload_bytes : int
(** 512. *)

val physical_bytes : int
(** Framed size of one sector on the medium (604). *)

val physical_bits : int
(** [8 * physical_bytes]. *)

val overhead_fraction : float
(** [1 - payload/physical], about 0.152. *)

type kind = Data | Inode | Summary | Checkpoint | Hash_meta
(** Block-kind tag stored in the header; the device itself treats all
    kinds alike, the tag exists so that a raw medium scan (fsck) can
    classify what it finds. *)

val kind_to_int : kind -> int
val kind_of_int : int -> kind option
val pp_kind : Format.formatter -> kind -> unit

val encode : pba:int -> kind:kind -> generation:int -> string -> string
(** [encode ~pba ~kind ~generation payload] frames a payload of at most
    {!payload_bytes} bytes (shorter payloads are zero-padded) into a
    {!physical_bytes}-byte medium image.
    @raise Invalid_argument if the payload is over-long. *)

type decoded = {
  pba : int;  (** Physical address recorded inside the frame. *)
  kind : kind;
  generation : int;  (** Incremented by the device on every rewrite. *)
  payload : string;  (** Exactly {!payload_bytes} bytes. *)
  corrected_symbols : int;  (** Byte errors repaired by the RS decoder. *)
}

type error =
  | Uncorrectable  (** RS decoding failed: too many bad symbols. *)
  | Bad_crc  (** RS passed but the checksum disagrees. *)
  | Bad_header  (** Frame structure invalid (magic / kind byte). *)

val decode : string -> (decoded, error) result
(** [decode image] checks and unframes a {!physical_bytes}-byte image. *)

val decode_sub : Bytes.t -> off:int -> (decoded, error) result
(** {!decode} of the {!physical_bytes}-byte image starting at [off] of a
    caller-owned buffer — the zero-copy form for span reads that hold
    many consecutive images in one scratch buffer.  [buf] is never
    mutated.  An out-of-range window is [Error Bad_header], like any
    other malformed frame. *)

val pp_error : Format.formatter -> error -> unit
