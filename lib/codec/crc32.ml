(* The polynomial arithmetic runs on native ints (every intermediate
   fits in 32 bits, masked where a shift could carry past them) so the
   inner loop stays allocation-free; boxed [Int32] appears only at the
   interface. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let bytes ?(crc = 0l) b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.bytes: out of bounds";
  let tbl = Lazy.force table in
  let c = ref (Int32.to_int (Int32.lognot crc) land 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    let idx = (!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF in
    c := Array.unsafe_get tbl idx lxor (!c lsr 8)
  done;
  Int32.lognot (Int32.of_int !c)

let string ?crc s = bytes ?crc (Bytes.unsafe_of_string s) 0 (String.length s)
