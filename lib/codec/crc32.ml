(* The polynomial arithmetic runs on native ints (every intermediate
   fits in 32 bits, masked where a shift could carry past them) so the
   inner loop stays allocation-free; boxed [Int32] appears only at the
   interface. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

(* Slicing-by-8: tables.(k).(n) is the CRC of byte [n] followed by [k]
   zero bytes, so eight input bytes fold into eight independent lookups
   per iteration instead of eight dependent ones.  Pure table algebra
   over the same polynomial — the result is bit-identical to the
   byte-at-a-time loop, which still handles the head and tail. *)
let tables =
  lazy
    (let t0 = Lazy.force table in
     let ts = Array.make 8 t0 in
     for k = 1 to 7 do
       ts.(k) <-
         Array.map
           (fun c -> Array.unsafe_get t0 (c land 0xFF) lxor (c lsr 8))
           ts.(k - 1)
     done;
     ts)

let bytes ?(crc = 0l) b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.bytes: out of bounds";
  let tbl = Lazy.force table in
  let ts = Lazy.force tables in
  let t7 = ts.(7) and t6 = ts.(6) and t5 = ts.(5) and t4 = ts.(4) in
  let t3 = ts.(3) and t2 = ts.(2) and t1 = ts.(1) in
  let c = ref (Int32.to_int (Int32.lognot crc) land 0xFFFFFFFF) in
  let i = ref off in
  let stop = off + len in
  while stop - !i >= 8 do
    let p = !i in
    let x =
      !c
      lxor (Char.code (Bytes.unsafe_get b p)
           lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 8)
           lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 16)
           lor (Char.code (Bytes.unsafe_get b (p + 3)) lsl 24))
    in
    c :=
      Array.unsafe_get t7 (x land 0xFF)
      lxor Array.unsafe_get t6 ((x lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((x lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((x lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (Char.code (Bytes.unsafe_get b (p + 4)))
      lxor Array.unsafe_get t2 (Char.code (Bytes.unsafe_get b (p + 5)))
      lxor Array.unsafe_get t1 (Char.code (Bytes.unsafe_get b (p + 6)))
      lxor Array.unsafe_get tbl (Char.code (Bytes.unsafe_get b (p + 7)));
    i := p + 8
  done;
  while !i < stop do
    let idx = (!c lxor Char.code (Bytes.unsafe_get b !i)) land 0xFF in
    c := Array.unsafe_get tbl idx lxor (!c lsr 8);
    incr i
  done;
  Int32.lognot (Int32.of_int !c)

let string ?crc s = bytes ?crc (Bytes.unsafe_of_string s) 0 (String.length s)
