type code = {
  npar : int;
  gen : int array; (* generator, highest degree first *)
  lanes : int; (* ceil(npar / 6): 48-bit lanes holding the remainder *)
  gpack : int array;
      (* 256 x lanes: row f is the npar bytes f * gen.(j+1), packed
         big-endian and left-justified into 48-bit integer lanes, so
         [parity] can shift and xor whole lanes instead of walking an
         npar-element byte array per input byte. *)
  stab : int array; (* npar x 256: stab.(i*256 + s) = s * alpha^i *)
}

let lane_bytes = 6
let mask48 = 0xFFFFFFFFFFFF

let make ~nparity =
  if nparity <= 0 || nparity >= 255 then
    invalid_arg "Rs.make: nparity must be in 1..254";
  (* g(x) = prod_{i=0}^{npar-1} (x - alpha^i) *)
  let gen = ref [| 1 |] in
  for i = 0 to nparity - 1 do
    gen := Gf256.poly_mul !gen [| 1; Gf256.exp i |]
  done;
  let gen = !gen in
  (* One GF multiply per table cell here buys multiply-free inner loops
     in [parity] and [syndromes] below. *)
  let lanes = (nparity + lane_bytes - 1) / lane_bytes in
  let gpack = Array.make (256 * lanes) 0 in
  for f = 0 to 255 do
    for j = 0 to nparity - 1 do
      let v = Gf256.mul f gen.(j + 1) in
      let lane = j / lane_bytes and byte = j mod lane_bytes in
      gpack.((f * lanes) + lane) <-
        gpack.((f * lanes) + lane) lor (v lsl (40 - (8 * byte)))
    done
  done;
  let stab = Array.make (nparity * 256) 0 in
  for i = 0 to nparity - 1 do
    let x = Gf256.exp i in
    for s = 0 to 255 do
      stab.((i * 256) + s) <- Gf256.mul s x
    done
  done;
  { npar = nparity; gen; lanes; gpack; stab }

let nparity c = c.npar
let max_data c = 255 - c.npar

(* Polynomial long division of data * x^npar by the generator; the
   remainder is the parity.

   The remainder lives in 48-bit integer lanes (6 bytes each,
   big-endian, left-justified; low pad bytes of the last lane stay
   zero), so the per-input-byte "shift remainder left one symbol and
   xor in factor * (gen minus lead)" step costs a few integer ops per
   lane instead of an npar-element byte-array walk. *)
let parity c data =
  let len = String.length data in
  if len > max_data c then invalid_arg "Rs.parity: data too long";
  let npar = c.npar in
  let gpack = c.gpack in
  let byte_of lanes i =
    (lanes.(i / lane_bytes) lsr (40 - (8 * (i mod lane_bytes)))) land 0xFF
  in
  if c.lanes = 4 then begin
    (* The hot shape (the sector code's npar = 24): four lanes kept in
       locals, fully unrolled. *)
    let r0 = ref 0 and r1 = ref 0 and r2 = ref 0 and r3 = ref 0 in
    for i = 0 to len - 1 do
      let factor = Char.code (String.unsafe_get data i) lxor (!r0 lsr 40) in
      let base = factor lsl 2 in
      let t0 =
        (((!r0 lsl 8) land mask48) lor (!r1 lsr 40))
        lxor Array.unsafe_get gpack base
      and t1 =
        (((!r1 lsl 8) land mask48) lor (!r2 lsr 40))
        lxor Array.unsafe_get gpack (base + 1)
      and t2 =
        (((!r2 lsl 8) land mask48) lor (!r3 lsr 40))
        lxor Array.unsafe_get gpack (base + 2)
      and t3 = ((!r3 lsl 8) land mask48) lxor Array.unsafe_get gpack (base + 3) in
      r0 := t0;
      r1 := t1;
      r2 := t2;
      r3 := t3
    done;
    let lanes = [| !r0; !r1; !r2; !r3 |] in
    String.init npar (fun i -> Char.chr (byte_of lanes i))
  end
  else begin
    let n_lanes = c.lanes in
    let rem = Array.make n_lanes 0 in
    for i = 0 to len - 1 do
      let factor =
        Char.code (String.unsafe_get data i) lxor (Array.unsafe_get rem 0 lsr 40)
      in
      let base = factor * n_lanes in
      for j = 0 to n_lanes - 2 do
        Array.unsafe_set rem j
          ((((Array.unsafe_get rem j lsl 8) land mask48)
           lor (Array.unsafe_get rem (j + 1) lsr 40))
          lxor Array.unsafe_get gpack (base + j))
      done;
      Array.unsafe_set rem (n_lanes - 1)
        (((Array.unsafe_get rem (n_lanes - 1) lsl 8) land mask48)
        lxor Array.unsafe_get gpack (base + n_lanes - 1))
    done;
    String.init npar (fun i -> Char.chr (byte_of rem i))
  end

type decode_outcome = Ok_clean | Corrected of int | Uncorrectable

let syndromes c cw =
  let n = Bytes.length cw in
  let npar = c.npar in
  let stab = c.stab in
  let synd = Array.make npar 0 in
  (* Horner per syndrome, bytes outermost so each input byte is loaded
     once for all npar accumulators. *)
  for j = 0 to n - 1 do
    let b = Char.code (Bytes.unsafe_get cw j) in
    for i = 0 to npar - 1 do
      Array.unsafe_set synd i
        (Array.unsafe_get stab ((i lsl 8) + Array.unsafe_get synd i) lxor b)
    done
  done;
  let all_zero = ref true in
  for i = 0 to npar - 1 do
    if synd.(i) <> 0 then all_zero := false
  done;
  (synd, !all_zero)

(* How many leading syndromes [probably_clean] evaluates. *)
let quick_syndromes = 4

let probably_clean c cw ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length cw then
    invalid_arg "Rs.probably_clean: out of bounds";
  if c.npar < quick_syndromes then
    let (_ : int array), clean = syndromes c (Bytes.sub cw off len) in
    clean
  else begin
    let stab = c.stab in
    (* alpha^0 = 1, so syndrome 0 is a plain running XOR. *)
    let s0 = ref 0 and s1 = ref 0 and s2 = ref 0 and s3 = ref 0 in
    for j = off to off + len - 1 do
      let b = Char.code (Bytes.unsafe_get cw j) in
      s0 := !s0 lxor b;
      s1 := Array.unsafe_get stab (256 + !s1) lxor b;
      s2 := Array.unsafe_get stab (512 + !s2) lxor b;
      s3 := Array.unsafe_get stab (768 + !s3) lxor b
    done;
    !s0 lor !s1 lor !s2 lor !s3 = 0
  end

(* Berlekamp–Massey: error-locator polynomial from the syndromes.
   Returns the locator with lowest degree first. *)
let berlekamp_massey synd =
  let n = Array.length synd in
  let c = Array.make (n + 1) 0 and b = Array.make (n + 1) 0 in
  c.(0) <- 1;
  b.(0) <- 1;
  let l = ref 0 and m = ref 1 and bb = ref 1 in
  for i = 0 to n - 1 do
    let d = ref synd.(i) in
    for j = 1 to !l do
      d := Gf256.add !d (Gf256.mul c.(j) synd.(i - j))
    done;
    if !d = 0 then incr m
    else if 2 * !l <= i then begin
      let t = Array.copy c in
      let coef = Gf256.div !d !bb in
      for j = 0 to n - !m do
        c.(j + !m) <- Gf256.add c.(j + !m) (Gf256.mul coef b.(j))
      done;
      l := i + 1 - !l;
      Array.blit t 0 b 0 (n + 1);
      bb := !d;
      m := 1
    end
    else begin
      let coef = Gf256.div !d !bb in
      for j = 0 to n - !m do
        c.(j + !m) <- Gf256.add c.(j + !m) (Gf256.mul coef b.(j))
      done;
      incr m
    end
  done;
  (Array.sub c 0 (!l + 1), !l)

let decode c cw =
  let n = Bytes.length cw in
  if n > 255 then invalid_arg "Rs.decode: codeword too long";
  let synd, clean = syndromes c cw in
  if clean then Ok_clean
  else begin
    let locator, nerrors = berlekamp_massey synd in
    if 2 * nerrors > c.npar then Uncorrectable
    else begin
      (* Chien search: roots of the locator give error positions. *)
      let positions = ref [] in
      for pos = 0 to n - 1 do
        (* Position [pos] (from the left) corresponds to x = alpha^(n-1-pos);
           it is an error location iff locator(alpha^{-(n-1-pos)}) = 0. *)
        let xinv = Gf256.exp (255 - ((n - 1 - pos) mod 255)) in
        let v = ref 0 and xp = ref 1 in
        Array.iter
          (fun coef ->
            v := Gf256.add !v (Gf256.mul coef !xp);
            xp := Gf256.mul !xp xinv)
          locator;
        if !v = 0 then positions := pos :: !positions
      done;
      let positions = !positions in
      if List.length positions <> nerrors then Uncorrectable
      else begin
        (* Forney: error magnitudes.  Omega = (S(x) * locator(x)) mod x^npar,
           with S(x) = sum synd_i x^i (lowest degree first). *)
        let omega = Array.make c.npar 0 in
        for i = 0 to c.npar - 1 do
          let s = ref 0 in
          for j = 0 to min i (Array.length locator - 1) do
            s := Gf256.add !s (Gf256.mul locator.(j) synd.(i - j))
          done;
          omega.(i) <- !s
        done;
        (* Formal derivative of the locator (lowest degree first):
           odd-degree terms survive. *)
        let deriv =
          Array.init
            (max 0 (Array.length locator - 1))
            (fun i -> if i land 1 = 0 then locator.(i + 1) else 0)
        in
        let eval_low p x =
          let v = ref 0 and xp = ref 1 in
          Array.iter
            (fun coef ->
              v := Gf256.add !v (Gf256.mul coef !xp);
              xp := Gf256.mul !xp x)
            p;
          !v
        in
        let ok = ref true in
        List.iter
          (fun pos ->
            let xinv = Gf256.exp (255 - ((n - 1 - pos) mod 255)) in
            let num = eval_low omega xinv in
            let den = eval_low deriv xinv in
            if den = 0 then ok := false
            else begin
              let magnitude = Gf256.mul (Gf256.exp ((n - 1 - pos) mod 255)) (Gf256.div num den) in
              Bytes.set cw pos
                (Char.chr (Gf256.add (Char.code (Bytes.get cw pos)) magnitude))
            end)
          positions;
        if not !ok then Uncorrectable
        else
          let _, clean_now = syndromes c cw in
          if clean_now then Corrected nerrors else Uncorrectable
      end
    end
  end

(* Erasure-and-error decoding: build the erasure-locator polynomial,
   compute the modified (Forney) syndromes, run Berlekamp-Massey on
   those for the unknown errors, then correct at the union of both
   location sets with Forney's formula over the combined locator. *)
let decode_with_erasures c cw ~erasures =
  let n = Bytes.length cw in
  if n > 255 then invalid_arg "Rs.decode_with_erasures: codeword too long";
  List.iter
    (fun p ->
      if p < 0 || p >= n then
        invalid_arg "Rs.decode_with_erasures: erasure position out of range")
    erasures;
  let erasures = List.sort_uniq compare erasures in
  if List.length erasures > c.npar then Uncorrectable
  else begin
    let synd, clean = syndromes c cw in
    if clean then Ok_clean
    else begin
      (* Work lowest-degree-first throughout. *)
      let mul_low a b =
        let la = Array.length a and lb = Array.length b in
        let out = Array.make (la + lb - 1) 0 in
        for i = 0 to la - 1 do
          for j = 0 to lb - 1 do
            out.(i + j) <- Gf256.add out.(i + j) (Gf256.mul a.(i) b.(j))
          done
        done;
        out
      in
      (* Erasure locator: prod (1 + x * alpha^{n-1-pos}), lowest first. *)
      let gamma =
        List.fold_left
          (fun acc pos -> mul_low acc [| 1; Gf256.exp ((n - 1 - pos) mod 255) |])
          [| 1 |] erasures
      in
      (* Modified syndromes T(x) = S(x) * gamma(x) mod x^npar. *)
      let t = Array.make c.npar 0 in
      for i = 0 to c.npar - 1 do
        let s = ref 0 in
        for j = 0 to min i (Array.length gamma - 1) do
          s := Gf256.add !s (Gf256.mul gamma.(j) synd.(i - j))
        done;
        t.(i) <- !s
      done;
      let e = List.length erasures in
      (* BM on the modified syndromes, skipping the first e of them. *)
      let usable = c.npar - e in
      let t' = Array.sub t e usable in
      let sigma, nerrors = berlekamp_massey t' in
      if (2 * nerrors) + e > c.npar then Uncorrectable
      else begin
        (* Combined locator psi = sigma * gamma (lowest first). *)
        let psi = mul_low sigma gamma in
        let positions = ref [] in
        for pos = 0 to n - 1 do
          let xinv = Gf256.exp (255 - ((n - 1 - pos) mod 255)) in
          let v = ref 0 and xp = ref 1 in
          Array.iter
            (fun coef ->
              v := Gf256.add !v (Gf256.mul coef !xp);
              xp := Gf256.mul !xp xinv)
            psi;
          if !v = 0 then positions := pos :: !positions
        done;
        let positions = !positions in
        if List.length positions <> Array.length psi - 1 then Uncorrectable
        else begin
          let omega = Array.make c.npar 0 in
          for i = 0 to c.npar - 1 do
            let s = ref 0 in
            for j = 0 to min i (Array.length psi - 1) do
              s := Gf256.add !s (Gf256.mul psi.(j) synd.(i - j))
            done;
            omega.(i) <- !s
          done;
          let deriv =
            Array.init
              (max 0 (Array.length psi - 1))
              (fun i -> if i land 1 = 0 then psi.(i + 1) else 0)
          in
          let eval_low p x =
            let v = ref 0 and xp = ref 1 in
            Array.iter
              (fun coef ->
                v := Gf256.add !v (Gf256.mul coef !xp);
                xp := Gf256.mul !xp x)
              p;
            !v
          in
          let ok = ref true in
          List.iter
            (fun pos ->
              let xinv = Gf256.exp (255 - ((n - 1 - pos) mod 255)) in
              let num = eval_low omega xinv in
              let den = eval_low deriv xinv in
              if den = 0 then ok := false
              else begin
                let magnitude =
                  Gf256.mul (Gf256.exp ((n - 1 - pos) mod 255)) (Gf256.div num den)
                in
                Bytes.set cw pos
                  (Char.chr (Gf256.add (Char.code (Bytes.get cw pos)) magnitude))
              end)
            positions;
          if not !ok then Uncorrectable
          else
            let _, clean_now = syndromes c cw in
            if clean_now then Corrected (List.length positions)
            else Uncorrectable
        end
      end
    end
  end

let nslices c data_len =
  let m = max_data c in
  (data_len + m - 1) / m

let encoded_length c data_len =
  if data_len = 0 then 0 else data_len + (nslices c data_len * c.npar)

let encode_blocks c data =
  let m = max_data c in
  let len = String.length data in
  let buf = Buffer.create (encoded_length c len) in
  let off = ref 0 in
  while !off < len do
    let take = min m (len - !off) in
    let slice = String.sub data !off take in
    Buffer.add_string buf slice;
    Buffer.add_string buf (parity c slice);
    off := !off + take
  done;
  Buffer.contents buf

let decode_blocks c coded ~data_len =
  let m = max_data c in
  let out = Buffer.create data_len in
  let bad = ref 0 in
  let off = ref 0 and remaining = ref data_len in
  (try
     while !remaining > 0 do
       let take = min m !remaining in
       let cw_len = take + c.npar in
       if !off + cw_len > Bytes.length coded then raise Exit;
       let cw = Bytes.sub coded !off cw_len in
       (match decode c cw with
       | Ok_clean | Corrected _ -> ()
       | Uncorrectable -> incr bad);
       Buffer.add_subbytes out cw 0 take;
       off := !off + cw_len;
       remaining := !remaining - take
     done
   with Exit -> incr bad);
  if !bad = 0 then Ok (Buffer.contents out) else Error !bad
