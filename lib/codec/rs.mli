(** Systematic Reed–Solomon code over GF(256).

    Provides the error-correction part of the ~15% sector overhead the
    paper assumes (Section 3, "Sector operations").  A code with
    [nparity] check symbols corrects up to [nparity / 2] unknown symbol
    errors per codeword; decoding uses Berlekamp–Massey, a Chien search
    and Forney's formula. *)

type code
(** A code parameterised by its number of parity symbols. *)

val make : nparity:int -> code
(** [make ~nparity] builds the generator polynomial for [nparity] check
    symbols.  @raise Invalid_argument unless [0 < nparity < 255]. *)

val nparity : code -> int

val max_data : code -> int
(** Longest data slice one codeword can carry: [255 - nparity]. *)

val parity : code -> string -> string
(** [parity c data] is the [nparity c]-byte checksum of [data].
    @raise Invalid_argument if [data] is longer than [max_data c]. *)

type decode_outcome =
  | Ok_clean  (** Codeword already consistent. *)
  | Corrected of int  (** Errors were found and fixed (count given). *)
  | Uncorrectable  (** Too many errors; data not modified reliably. *)

val decode : code -> bytes -> decode_outcome
(** [decode c codeword] checks and repairs a systematic codeword
    (data followed by parity, total length at most 255) in place. *)

val probably_clean : code -> bytes -> off:int -> len:int -> bool
(** Cheap probabilistic cleanliness test for the codeword at
    [off, off+len) — evaluates only the first four syndromes instead of
    all [nparity].  [false] is definitive (the codeword has errors);
    [true] can be wrong with probability ~2^-32 for a random corruption,
    so callers must back a fast-path accept with an independent
    integrity check (e.g. the sector CRC) and fall back to {!decode}
    whenever anything downstream disagrees.
    @raise Invalid_argument if the range is out of bounds. *)

val decode_with_erasures : code -> bytes -> erasures:int list -> decode_outcome
(** Like {!decode}, but [erasures] lists byte positions known to be
    unreliable (e.g. symbols served by a failed probe tip).  Known
    locations cost one parity symbol instead of two, so the code
    corrects [e] erasures plus [t] unknown errors whenever
    [e + 2t <= nparity].  Positions out of range raise
    [Invalid_argument]; duplicates are ignored. *)

val encode_blocks : code -> string -> string
(** [encode_blocks c data] splits [data] into [max_data c]-byte slices
    and appends each slice's parity, producing
    [data_len + nslices * nparity] bytes laid out slice-by-slice. *)

val decode_blocks : code -> bytes -> data_len:int -> (string, int) result
(** Inverse of {!encode_blocks} for a known original [data_len]:
    [Ok data] (errors silently corrected) or [Error n] with [n] the
    number of uncorrectable slices. *)

val encoded_length : code -> int -> int
(** [encoded_length c data_len] is the size {!encode_blocks} produces. *)
