(** The wire-ish host command protocol: length-prefixed, versioned
    frames over {!Codec.Binio}, one status byte per execution phase in
    the response — the command/status-register discipline of a disk
    controller, kept byte-deterministic so golden traces can be diffed
    exactly.

    A command frame is [u32 length] wrapping
    [u8 version; u8 opcode; u16 tenant; u32 seq; args...]; a response
    echoes the opcode and carries [u8 nphases] status bytes (phase 0 is
    admission, phase 1 execution — a rejected command has only phase 0)
    and a length-prefixed payload. *)

exception Proto_error of string
(** Malformed frame, bad hex, unknown opcode, version mismatch.
    (Truncated input raises {!Codec.Binio.R.Truncated}.) *)

val version : int

(** {1 Status bytes}

    [0x00] is success; the high bit marks admission-control rejections
    (the typed [Rejected] statuses), [0x4x] execution failures. *)

val st_ok : int
val st_read_error : int
val st_write_refused : int
val st_heat_refused : int
val st_tampered : int
val st_not_heated : int

val st_unsupported : int
(** Command not valid for this target. *)

val st_rejected_depth : int
(** Per-tenant queue depth limit hit. *)

val st_rejected_rate : int
(** Token bucket empty. *)

val status_name : int -> string
val status_failed : int -> bool

(** {1 Commands} *)

type command =
  | Read of { pba : int }
  | Write of { pba : int; payload : string }
  | Heat of { line : int; timestamp : float option }
      (** [timestamp] [None] = stamp with the DES clock at service. *)
  | Verify of { line : int }
  | Audit  (** Full-device tamper scan; payload is the summary line. *)
  | Array_read of { vba : int }  (** Volume targets only. *)
  | Audit_line of { line : int }
      (** One line of audit spend.  On a device target it rides the
          request queue as background traffic ({!Sero.Queue.submit_verify_line}),
          contending under the arbiter like any tenant work; on a volume
          target it runs one quorum attestation of the logical line.
          Status: OK / NOT_HEATED / TAMPERED. *)

type frame = { tenant : int; seq : int; cmd : command }

val opcode_of_command : command -> int
val command_name : command -> string
val encode_frame : frame -> string

val decode_frame : ?off:int -> string -> frame * int
(** [(frame, next_off)]. *)

(** {1 Responses} *)

type response = {
  r_tenant : int;
  r_seq : int;
  r_op : int;  (** Echo of the command opcode. *)
  r_phases : int list;  (** One status byte per phase, in phase order. *)
  r_payload : string;
}

val response_failed : response -> bool
(** Any phase status other than [st_ok]. *)

val encode_response : response -> string
val decode_response : ?off:int -> string -> response * int

(** {1 Hex trace format}

    Golden fixtures: one hex-encoded frame per line, ['#'] comments,
    blank lines ignored. *)

val to_hex : string -> string
val of_hex : string -> string
val parse_trace : string -> frame list
val print_trace : frame list -> string

(** {1 Pretty-printing} *)

val payload_descr : string -> string
(** ["-"] when empty, else [<len>B:<8 hex of sha256>] — deterministic
    and diffable without dumping raw bytes. *)

val pp_command : Format.formatter -> command -> unit
val pp_frame : Format.formatter -> frame -> unit

val pp_response : Format.formatter -> response -> unit
(** The golden-trace output format — one deterministic line. *)
