type target = Device of Sero.Queue.t | Volume of Sarray.Volume.t

type limits = { weight : float; max_depth : int; rate : float; burst : float }

let default_limits =
  { weight = 1.; max_depth = max_int; rate = infinity; burst = infinity }

type tstate = {
  limits : limits;
  slo : Slo.t;
  mutable tokens : float;
  mutable refilled : float;
  mutable in_flight : int;
}

type t = {
  target : target;
  limits_of : int -> limits;
  tstates : (int, tstate) Hashtbl.t;
  mutable responses : Proto.response list; (* newest first *)
  mutable submitted : int;
  mutable on_response : (Proto.response -> unit) option;
}

let des_of = function
  | Device q -> Sero.Queue.des q
  | Volume v -> Sero.Queue.des (Sarray.Volume.queue v ~dev:0)

let queues_of = function
  | Device q -> [ q ]
  | Volume v ->
      List.init (Sarray.Volume.n_devices v) (fun dev ->
          Sarray.Volume.queue v ~dev)

let create ?(limits_of = fun _ -> default_limits) target =
  {
    target;
    limits_of;
    tstates = Hashtbl.create 8;
    responses = [];
    submitted = 0;
    on_response = None;
  }

let target t = t.target
let now t = Sim.Des.now (des_of t.target)

let set_policy t policy =
  List.iter (fun q -> Arbiter.install q policy) (queues_of t.target)

let tstate t tenant =
  match Hashtbl.find_opt t.tstates tenant with
  | Some ts -> ts
  | None ->
      let limits = t.limits_of tenant in
      let ts =
        {
          limits;
          slo = Slo.create ();
          tokens = limits.burst;
          refilled = now t;
          in_flight = 0;
        }
      in
      Hashtbl.add t.tstates tenant ts;
      ts

let slo t ~tenant = (tstate t tenant).slo
let weight_of t tenant = (tstate t tenant).limits.weight

(* Token-bucket refill on the DES clock; [infinity] rate/burst means
   admission never rejects on rate. *)
let admit ts ~now =
  if ts.limits.rate < infinity then begin
    let dt = now -. ts.refilled in
    ts.tokens <- Float.min ts.limits.burst (ts.tokens +. (ts.limits.rate *. dt));
    ts.refilled <- now
  end;
  if ts.in_flight >= ts.limits.max_depth then Error `Depth
  else if ts.limits.rate < infinity && ts.tokens < 1. then Error `Rate
  else begin
    if ts.limits.rate < infinity then ts.tokens <- ts.tokens -. 1.;
    ts.in_flight <- ts.in_flight + 1;
    Ok ()
  end

let push t r =
  t.responses <- r :: t.responses;
  match t.on_response with None -> () | Some k -> k r

let set_on_response t k = t.on_response <- k

let finish t ts (f : Proto.frame) ~t0 ~read ~status ~payload =
  ts.in_flight <- ts.in_flight - 1;
  Slo.note_completion ts.slo ~read
    ~ok:(not (Proto.status_failed status))
    ~latency:(now t -. t0);
  push t
    {
      Proto.r_tenant = f.Proto.tenant;
      r_seq = f.Proto.seq;
      r_op = Proto.opcode_of_command f.Proto.cmd;
      r_phases = [ Proto.st_ok; status ];
      r_payload = payload;
    }

let audit_summary entries =
  let intact = ref 0 and blank = ref 0 and tampered = ref 0 in
  List.iter
    (fun e ->
      match e.Sero.Device.verdict with
      | Sero.Tamper.Intact -> incr intact
      | Sero.Tamper.Not_heated -> incr blank
      | Sero.Tamper.Tampered _ -> incr tampered)
    entries;
  ( Printf.sprintf "lines=%d intact=%d not_heated=%d tampered=%d"
      (List.length entries) !intact !blank !tampered,
    !tampered )

(* Execute an admitted command.  Queue-path commands (read/write/heat on
   a device target) are asynchronous: the response is pushed when the
   queued request completes.  Electrical-path commands (verify, audit)
   and every volume command run synchronously at submit time. *)
let execute t ts (f : Proto.frame) =
  let t0 = now t in
  let tenant = f.Proto.tenant in
  let sync ~read ~status ~payload =
    finish t ts f ~t0 ~read ~status ~payload
  in
  let unsupported () =
    sync ~read:false ~status:Proto.st_unsupported ~payload:""
  in
  match (t.target, f.Proto.cmd) with
  | Device q, Proto.Read { pba } ->
      Sero.Queue.submit_read q ~tenant ~pba (function
        | Ok payload -> finish t ts f ~t0 ~read:true ~status:Proto.st_ok ~payload
        | Error _ ->
            finish t ts f ~t0 ~read:true ~status:Proto.st_read_error ~payload:"")
  | Device q, Proto.Write { pba; payload } ->
      Sero.Queue.submit_write q ~tenant ~pba payload (function
        | Ok () -> finish t ts f ~t0 ~read:false ~status:Proto.st_ok ~payload:""
        | Error _ ->
            finish t ts f ~t0 ~read:false ~status:Proto.st_write_refused
              ~payload:"")
  | Device q, Proto.Heat { line; timestamp } ->
      let k = function
        | Ok h ->
            finish t ts f ~t0 ~read:false ~status:Proto.st_ok
              ~payload:(Hash.Sha256.to_raw h)
        | Error _ ->
            finish t ts f ~t0 ~read:false ~status:Proto.st_heat_refused
              ~payload:""
      in
      (match timestamp with
      | None -> Sero.Queue.submit_heat_line q ~tenant ~line k
      | Some timestamp ->
          Sero.Queue.submit_heat_line q ~tenant ~line ~timestamp k)
  | Device q, Proto.Verify { line } ->
      let status =
        match Sero.Device.verify_line (Sero.Queue.device q) ~line with
        | Sero.Tamper.Intact -> Proto.st_ok
        | Sero.Tamper.Not_heated -> Proto.st_not_heated
        | Sero.Tamper.Tampered _ -> Proto.st_tampered
      in
      sync ~read:false ~status ~payload:""
  | Device q, Proto.Audit ->
      let payload, tampered =
        audit_summary (Sero.Device.scan (Sero.Queue.device q))
      in
      sync ~read:false
        ~status:(if tampered > 0 then Proto.st_tampered else Proto.st_ok)
        ~payload
  | Device q, Proto.Audit_line { line } ->
      (* Audit spend is queue traffic: a background-class verify that
         contends under the arbiter like any tenant's work, so the
         defender's budget is charged in the same currency as the
         foreground it displaces. *)
      Sero.Queue.submit_verify_line q ~tenant ~line (fun v ->
          let status =
            match v with
            | Sero.Tamper.Intact -> Proto.st_ok
            | Sero.Tamper.Not_heated -> Proto.st_not_heated
            | Sero.Tamper.Tampered _ -> Proto.st_tampered
          in
          finish t ts f ~t0 ~read:false ~status ~payload:"")
  | Device _, Proto.Array_read _ -> unsupported ()
  | Volume v, (Proto.Read { pba = vba } | Proto.Array_read { vba }) -> (
      match Sarray.Volume.read_block ~tenant v ~vba with
      | Ok payload -> sync ~read:true ~status:Proto.st_ok ~payload
      | Error _ -> sync ~read:true ~status:Proto.st_read_error ~payload:"")
  | Volume v, Proto.Write { pba = vba; payload } -> (
      match Sarray.Volume.write_block ~tenant v ~vba payload with
      | Ok () -> sync ~read:false ~status:Proto.st_ok ~payload:""
      | Error _ -> sync ~read:false ~status:Proto.st_write_refused ~payload:"")
  | Volume v, Proto.Heat { line; timestamp } -> (
      match Sarray.Volume.heat_line ~tenant v ~line ?timestamp () with
      | Ok h ->
          sync ~read:false ~status:Proto.st_ok
            ~payload:(Hash.Sha256.to_raw h)
      | Error _ -> sync ~read:false ~status:Proto.st_heat_refused ~payload:"")
  | Volume v, Proto.Audit_line { line } ->
      let status =
        match Sarray.Quorum.attest_line v ~line with
        | Sarray.Quorum.Attested _ -> Proto.st_ok
        | Sarray.Quorum.Line_not_heated -> Proto.st_not_heated
        | Sarray.Quorum.Tie_unattested _ | Sarray.Quorum.All_convicted _ ->
            Proto.st_tampered
        | Sarray.Quorum.Line_offline -> Proto.st_read_error
      in
      sync ~read:false ~status ~payload:""
  | Volume _, (Proto.Verify _ | Proto.Audit) -> unsupported ()

let submit_frame t (f : Proto.frame) =
  t.submitted <- t.submitted + 1;
  let ts = tstate t f.Proto.tenant in
  match admit ts ~now:(now t) with
  | Error kind ->
      Slo.note_rejection ts.slo kind;
      push t
        {
          Proto.r_tenant = f.Proto.tenant;
          r_seq = f.Proto.seq;
          r_op = Proto.opcode_of_command f.Proto.cmd;
          r_phases =
            [
              (match kind with
              | `Depth -> Proto.st_rejected_depth
              | `Rate -> Proto.st_rejected_rate);
            ];
          r_payload = "";
        }
  | Ok () -> execute t ts f

let drain t =
  match t.target with
  | Device q -> Sero.Queue.drain q
  | Volume v -> Sarray.Volume.flush v

let responses t = List.rev t.responses
let submitted t = t.submitted

let tenants t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tstates [] |> List.sort compare

let report t ~tenant =
  let ts = tstate t tenant in
  let qs = queues_of t.target in
  let energy =
    List.fold_left (fun a q -> a +. Sero.Queue.tenant_energy q tenant) 0. qs
  in
  let service =
    List.fold_left (fun a q -> a +. Sero.Queue.tenant_service q tenant) 0. qs
  in
  Slo.report ~energy ~service ts.slo

(* {1 Sessions} *)

type session = { server : t; tenant : int; mutable next_seq : int }

let session ?(first_seq = 0) t ~tenant =
  ignore (tstate t tenant);
  { server = t; tenant; next_seq = first_seq }

let next_seq s = s.next_seq

let submit s cmd =
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  submit_frame s.server { Proto.tenant = s.tenant; seq; cmd };
  seq

let call s cmd =
  let seq = submit s cmd in
  drain s.server;
  match
    List.find_opt
      (fun r -> r.Proto.r_tenant = s.tenant && r.Proto.r_seq = seq)
      s.server.responses
  with
  | Some r -> r
  | None -> assert false (* drained: the response must have been pushed *)

(* {1 Replay} *)

let replay t frames =
  let before = List.length t.responses in
  List.iter
    (fun f ->
      submit_frame t f;
      drain t)
    frames;
  let rec take n acc l =
    if n = 0 then acc
    else match l with [] -> acc | r :: rest -> take (n - 1) (r :: acc) rest
  in
  take (List.length t.responses - before) [] t.responses

let format_replay rs =
  String.concat ""
    (List.map (fun r -> Format.asprintf "%a@." Proto.pp_response r) rs)
