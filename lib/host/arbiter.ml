type policy =
  | Tenant_blind
  | Arrival_order
  | Fair_share of (int -> float)

let policy_name = function
  | Tenant_blind -> "blind"
  | Arrival_order -> "fifo"
  | Fair_share _ -> "wfs"

let arrival_order views =
  match views with
  | [] -> invalid_arg "Arbiter.arrival_order: no views"
  | v :: vs ->
      let best =
        List.fold_left
          (fun best v ->
            if v.Sero.Queue.av_oldest < best.Sero.Queue.av_oldest then v
            else best)
          v vs
      in
      best.Sero.Queue.av_tenant

let fair_share q ~weight views =
  match views with
  | [] -> invalid_arg "Arbiter.fair_share: no views"
  | v :: vs ->
      let score v =
        let w = weight v.Sero.Queue.av_tenant in
        if w <= 0. then invalid_arg "Arbiter.fair_share: weight <= 0";
        Sero.Queue.tenant_service q v.Sero.Queue.av_tenant /. w
      in
      let best =
        List.fold_left
          (fun (bs, bv) v ->
            let s = score v in
            if s < bs then (s, v) else (bs, bv))
          (score v, v) vs
      in
      (snd best).Sero.Queue.av_tenant

let install q = function
  | Tenant_blind -> Sero.Queue.set_arbiter q None
  | Arrival_order -> Sero.Queue.set_arbiter q (Some arrival_order)
  | Fair_share weight ->
      Sero.Queue.set_arbiter q (Some (fair_share q ~weight))
