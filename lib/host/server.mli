(** The host front-end: concurrent tenant sessions submitting
    {!Proto.command}s against a device queue or an array volume, with
    admission control (per-tenant depth + token-bucket rate limits),
    the tenant arbiter installed via {!Arbiter}, and per-tenant
    {!Slo} ledgers on the DES clock.

    Queue-path commands on a [Device] target (read/write/heat) are
    {e asynchronous}: [submit] returns immediately and the response is
    recorded when the queued request completes, so many tenants'
    commands genuinely contend under the installed arbiter.
    Electrical-path commands (verify, audit — they read the write-once
    areas, not the sled) and every command on a [Volume] target execute
    synchronously at submit time; QoS for volumes is admission control
    and per-tenant accounting only, because the volume facade is
    synchronous.

    The single-tenant sync facade ({!call}) is bit-identical — payloads,
    hashes, verdicts, completion order — to calling the underlying
    {!Sero.Queue} facade directly (the equivalence qcheck suite holds
    the layer to that). *)

type target = Device of Sero.Queue.t | Volume of Sarray.Volume.t

type limits = {
  weight : float;  (** Fair-share weight (used by {!Arbiter.Fair_share}). *)
  max_depth : int;  (** Max in-flight commands before [REJECTED_DEPTH]. *)
  rate : float;  (** Token refill per simulated second ([infinity] = off). *)
  burst : float;  (** Bucket capacity. *)
}

val default_limits : limits
(** Weight 1, unlimited depth and rate. *)

type t

val create : ?limits_of:(int -> limits) -> target -> t
(** [limits_of tenant] fixes a tenant's limits at first contact
    (default: {!default_limits} for everyone). *)

val target : t -> target
val now : t -> float

val set_policy : t -> Arbiter.policy -> unit
(** Install the tenant arbiter on the target's queue (every member
    queue for a volume). *)

val submit_frame : t -> Proto.frame -> unit
(** Admit and execute one command.  Rejected commands get a one-phase
    response immediately; accepted queue-path commands respond at
    completion (pump with {!drain}). *)

val drain : t -> unit
(** Pump the DES until the target is idle; all outstanding responses
    arrive. *)

val responses : t -> Proto.response list
(** Every response so far, in completion order. *)

val set_on_response : t -> (Proto.response -> unit) option -> unit
(** Hook fired as each response is recorded (rejections fire inside
    {!submit_frame}; queue-path completions fire while pumping) —
    closed-loop clients use it to schedule their next command. *)

val submitted : t -> int

val tenants : t -> int list
val slo : t -> tenant:int -> Slo.t
val weight_of : t -> int -> float

val report : t -> tenant:int -> Slo.report
(** The tenant's SLO report with the queue's per-tenant energy and
    service charges folded in (summed over member queues for a
    volume). *)

(** {1 Sessions} *)

type session

val session : ?first_seq:int -> t -> tenant:int -> session
(** A tenant's command stream; sequence numbers auto-increment from
    [first_seq] (default 0). *)

val next_seq : session -> int
(** The sequence number {!submit} will use next — register completion
    bookkeeping under it {e before} submitting: rejections respond
    synchronously inside {!submit}. *)

val submit : session -> Proto.command -> int
(** Asynchronous submit; returns the command's sequence number. *)

val call : session -> Proto.command -> Proto.response
(** Synchronous facade: submit, {!drain}, return this command's
    response (earlier-queued work may be served on the way, exactly as
    the queue's own sync facade behaves). *)

(** {1 Replay} *)

val replay : t -> Proto.frame list -> Proto.response list
(** The golden-trace testbench discipline: each frame is submitted and
    {e fully drained} before the next (command, wait for status,
    next command — the u765 register-file style).  Returns the replies
    to exactly these frames, in order. *)

val format_replay : Proto.response list -> string
(** One {!Proto.pp_response} line per response — the golden expected
    output format. *)
