(** Per-tenant SLO ledger: completion latency percentiles
    ({!Sim.Stats.quantiles} — p50/p95/p99), failure and rejection
    counters.  All times come off the DES clock; the server owns one
    ledger per tenant and folds in the queue's per-tenant energy and
    service charges when reporting. *)

type t

val create : unit -> t

val note_completion : t -> read:bool -> ok:bool -> latency:float -> unit
(** Record a completed command ([latency] in simulated seconds;
    [read] additionally feeds the read-only percentile track; [ok]
    false counts an execution-phase failure). *)

val note_rejection : t -> [ `Depth | `Rate ] -> unit
(** Record an admission-control rejection. *)

val completed : t -> int
val failed : t -> int
val rejected_depth : t -> int
val rejected_rate : t -> int
val rejected : t -> int

val rejection_pct : t -> float
(** Rejections as a percentage of offered (completed + rejected). *)

val latency : t -> Sim.Stats.t
val read_latency : t -> Sim.Stats.t

type report = {
  rep_completed : int;
  rep_failed : int;
  rep_rejected_depth : int;
  rep_rejected_rate : int;
  rep_rejection_pct : float;
  rep_p50_ms : float;
  rep_p95_ms : float;
  rep_p99_ms : float;
  rep_read_p50_ms : float;
  rep_read_p95_ms : float;
  rep_read_p99_ms : float;
  rep_energy_j : float;  (** Sled energy charged to the tenant. *)
  rep_service_s : float;  (** Sled-busy seconds charged to the tenant. *)
}

val report : ?energy:float -> ?service:float -> t -> report
val pp_report : Format.formatter -> report -> unit
