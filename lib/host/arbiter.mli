(** Tenant arbiters for {!Sero.Queue}: the host-layer policies that
    decide {e which tenant} the sled serves next (the queue's own
    scheduling policy still orders that tenant's requests).

    All three policies are deterministic — ties break toward the lowest
    tenant id because the queue hands views sorted by tenant. *)

type policy =
  | Tenant_blind
      (** No arbiter installed: dispatch ignores tenant tags entirely
          (bit-identical to the pre-tenant pipeline). *)
  | Arrival_order
      (** Serve the tenant holding the oldest pending request — global
          FIFO at tenant granularity.  A heavy tenant's backlog starves
          light tenants; E25's contrast arm. *)
  | Fair_share of (int -> float)
      (** Weighted fair share: serve the backlogged tenant with the
          least consumed sled service normalised by its weight
          ([Sero.Queue.tenant_service / weight]).  Service is charged
          when a pass runs, so each dispatch sees up-to-date ledgers.
          Weights must be positive. *)

val policy_name : policy -> string
(** ["blind"], ["fifo"], ["wfs"] — table labels. *)

val arrival_order : Sero.Queue.arbiter_view list -> int

val fair_share :
  Sero.Queue.t -> weight:(int -> float) -> Sero.Queue.arbiter_view list -> int

val install : Sero.Queue.t -> policy -> unit
(** Install the policy's arbiter on the queue (or remove it for
    [Tenant_blind]). *)
