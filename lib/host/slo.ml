type t = {
  latency : Sim.Stats.t;
  read_latency : Sim.Stats.t;
  mutable completed : int;
  mutable failed : int;
  mutable rejected_depth : int;
  mutable rejected_rate : int;
}

let create () =
  {
    latency = Sim.Stats.create ~name:"latency" ();
    read_latency = Sim.Stats.create ~name:"read latency" ();
    completed = 0;
    failed = 0;
    rejected_depth = 0;
    rejected_rate = 0;
  }

let note_completion t ~read ~ok ~latency =
  t.completed <- t.completed + 1;
  if not ok then t.failed <- t.failed + 1;
  Sim.Stats.add t.latency latency;
  if read then Sim.Stats.add t.read_latency latency

let note_rejection t = function
  | `Depth -> t.rejected_depth <- t.rejected_depth + 1
  | `Rate -> t.rejected_rate <- t.rejected_rate + 1

let completed t = t.completed
let failed t = t.failed
let rejected_depth t = t.rejected_depth
let rejected_rate t = t.rejected_rate
let rejected t = t.rejected_depth + t.rejected_rate

let rejection_pct t =
  let offered = t.completed + rejected t in
  if offered = 0 then 0. else 100. *. float_of_int (rejected t) /. float_of_int offered

let latency t = t.latency
let read_latency t = t.read_latency

type report = {
  rep_completed : int;
  rep_failed : int;
  rep_rejected_depth : int;
  rep_rejected_rate : int;
  rep_rejection_pct : float;
  rep_p50_ms : float;
  rep_p95_ms : float;
  rep_p99_ms : float;
  rep_read_p50_ms : float;
  rep_read_p95_ms : float;
  rep_read_p99_ms : float;
  rep_energy_j : float;
  rep_service_s : float;
}

let report ?(energy = 0.) ?(service = 0.) t =
  let p50, p95, p99 = Sim.Stats.quantiles t.latency in
  let r50, r95, r99 = Sim.Stats.quantiles t.read_latency in
  {
    rep_completed = t.completed;
    rep_failed = t.failed;
    rep_rejected_depth = t.rejected_depth;
    rep_rejected_rate = t.rejected_rate;
    rep_rejection_pct = rejection_pct t;
    rep_p50_ms = 1e3 *. p50;
    rep_p95_ms = 1e3 *. p95;
    rep_p99_ms = 1e3 *. p99;
    rep_read_p50_ms = 1e3 *. r50;
    rep_read_p95_ms = 1e3 *. r95;
    rep_read_p99_ms = 1e3 *. r99;
    rep_energy_j = energy;
    rep_service_s = service;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "done=%d failed=%d rej=%d+%d (%.1f%%) p50=%.2fms p95=%.2fms p99=%.2fms \
     read p99=%.2fms energy=%.3gJ svc=%.4gs"
    r.rep_completed r.rep_failed r.rep_rejected_depth r.rep_rejected_rate
    r.rep_rejection_pct r.rep_p50_ms r.rep_p95_ms r.rep_p99_ms
    r.rep_read_p99_ms r.rep_energy_j r.rep_service_s
