exception Proto_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Proto_error s)) fmt
let version = 1

(* {1 Status bytes} *)

let st_ok = 0x00
let st_read_error = 0x41
let st_write_refused = 0x42
let st_heat_refused = 0x43
let st_tampered = 0x44
let st_not_heated = 0x46
let st_unsupported = 0x4F
let st_rejected_depth = 0x81
let st_rejected_rate = 0x82

let status_name = function
  | 0x00 -> "OK"
  | 0x41 -> "READ_ERROR"
  | 0x42 -> "WRITE_REFUSED"
  | 0x43 -> "HEAT_REFUSED"
  | 0x44 -> "TAMPERED"
  | 0x46 -> "NOT_HEATED"
  | 0x4F -> "UNSUPPORTED"
  | 0x81 -> "REJECTED_DEPTH"
  | 0x82 -> "REJECTED_RATE"
  | s -> Printf.sprintf "STATUS_%02X" s

let status_failed s = s <> st_ok

(* {1 Commands} *)

type command =
  | Read of { pba : int }
  | Write of { pba : int; payload : string }
  | Heat of { line : int; timestamp : float option }
  | Verify of { line : int }
  | Audit
  | Array_read of { vba : int }
  | Audit_line of { line : int }

type frame = { tenant : int; seq : int; cmd : command }

let opcode_of_command = function
  | Read _ -> 0x01
  | Write _ -> 0x02
  | Heat _ -> 0x03
  | Verify _ -> 0x04
  | Audit -> 0x05
  | Array_read _ -> 0x06
  | Audit_line _ -> 0x07

let command_name = function
  | Read _ -> "read"
  | Write _ -> "write"
  | Heat _ -> "heat"
  | Verify _ -> "verify"
  | Audit -> "audit"
  | Array_read _ -> "array-read"
  | Audit_line _ -> "audit-line"

let write_body w { tenant; seq; cmd } =
  let module W = Codec.Binio.W in
  W.u8 w version;
  W.u8 w (opcode_of_command cmd);
  W.u16 w tenant;
  W.u32 w seq;
  match cmd with
  | Read { pba } -> W.u32 w pba
  | Write { pba; payload } ->
      W.u32 w pba;
      W.str w payload
  | Heat { line; timestamp } -> (
      W.u32 w line;
      match timestamp with
      | None -> W.u8 w 0
      | Some ts ->
          W.u8 w 1;
          W.f64 w ts)
  | Verify { line } -> W.u32 w line
  | Audit -> ()
  | Array_read { vba } -> W.u32 w vba
  | Audit_line { line } -> W.u32 w line

let encode_frame f =
  let module W = Codec.Binio.W in
  let body = W.create () in
  write_body body f;
  let w = W.create () in
  W.u32 w (W.length body);
  W.raw w (W.contents body);
  W.contents w

let decode_frame ?(off = 0) s =
  let module R = Codec.Binio.R in
  let r = R.of_string ~off s in
  let len = R.u32 r in
  if R.remaining r < len then raise R.Truncated;
  let stop = off + 4 + len in
  let v = R.u8 r in
  if v <> version then fail "frame version %d (expected %d)" v version;
  let op = R.u8 r in
  let tenant = R.u16 r in
  let seq = R.u32 r in
  let cmd =
    match op with
    | 0x01 -> Read { pba = R.u32 r }
    | 0x02 ->
        let pba = R.u32 r in
        Write { pba; payload = R.str r }
    | 0x03 ->
        let line = R.u32 r in
        let timestamp =
          match R.u8 r with
          | 0 -> None
          | 1 -> Some (R.f64 r)
          | f -> fail "heat timestamp flag %d" f
        in
        Heat { line; timestamp }
    | 0x04 -> Verify { line = R.u32 r }
    | 0x05 -> Audit
    | 0x06 -> Array_read { vba = R.u32 r }
    | 0x07 -> Audit_line { line = R.u32 r }
    | op -> fail "unknown opcode 0x%02X" op
  in
  if R.pos r <> stop then
    fail "frame length %d does not match body (%d trailing)" len
      (stop - R.pos r);
  ({ tenant; seq; cmd }, stop)

(* {1 Responses} *)

type response = {
  r_tenant : int;
  r_seq : int;
  r_op : int;  (** Echo of the command opcode. *)
  r_phases : int list;  (** One status byte per phase, in phase order. *)
  r_payload : string;
}

let response_failed r = List.exists status_failed r.r_phases

let encode_response r =
  let module W = Codec.Binio.W in
  let body = W.create () in
  W.u8 body version;
  W.u8 body r.r_op;
  W.u16 body r.r_tenant;
  W.u32 body r.r_seq;
  W.u8 body (List.length r.r_phases);
  List.iter (W.u8 body) r.r_phases;
  W.str body r.r_payload;
  let w = W.create () in
  W.u32 w (W.length body);
  W.raw w (W.contents body);
  W.contents w

let decode_response ?(off = 0) s =
  let module R = Codec.Binio.R in
  let r = R.of_string ~off s in
  let len = R.u32 r in
  if R.remaining r < len then raise R.Truncated;
  let stop = off + 4 + len in
  let v = R.u8 r in
  if v <> version then fail "response version %d (expected %d)" v version;
  let r_op = R.u8 r in
  let r_tenant = R.u16 r in
  let r_seq = R.u32 r in
  let n = R.u8 r in
  let r_phases = List.init n (fun _ -> R.u8 r) in
  let r_payload = R.str r in
  if R.pos r <> stop then fail "response length mismatch";
  ({ r_tenant; r_seq; r_op; r_phases; r_payload }, stop)

(* {1 Hex trace format}

   One frame per line, lowercase hex, '#' to end of line is comment,
   blank lines ignored — diff-friendly golden fixtures. *)

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i ->
      Printf.sprintf "%02x" (Char.code s.[i])))

let of_hex line =
  let n = String.length line in
  if n mod 2 <> 0 then fail "odd-length hex line";
  String.init (n / 2) (fun i ->
      let d c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | c -> fail "bad hex char %C" c
      in
      Char.chr ((d line.[2 * i] lsl 4) lor d line.[(2 * i) + 1]))

let parse_trace text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then None
         else
           let raw = of_hex line in
           let f, stop = decode_frame raw in
           if stop <> String.length raw then fail "trailing bytes on line";
           Some f)

let print_trace frames =
  String.concat ""
    (List.map (fun f -> to_hex (encode_frame f) ^ "\n") frames)

(* {1 Pretty-printing}

   [pp_response] is the golden-trace output format: one fully
   deterministic line per response (payloads appear as length plus an
   8-hex-digit digest prefix, never raw bytes). *)

let payload_descr = function
  | "" -> "-"
  | p ->
      Printf.sprintf "%dB:%s" (String.length p)
        (String.sub (Hash.Sha256.to_hex (Hash.Sha256.digest_string p)) 0 8)

let op_name = function
  | 0x01 -> "read"
  | 0x02 -> "write"
  | 0x03 -> "heat"
  | 0x04 -> "verify"
  | 0x05 -> "audit"
  | 0x06 -> "array-read"
  | 0x07 -> "audit-line"
  | op -> Printf.sprintf "op%02X" op

let pp_command ppf = function
  | Read { pba } -> Format.fprintf ppf "read pba=%d" pba
  | Write { pba; payload } ->
      Format.fprintf ppf "write pba=%d %s" pba (payload_descr payload)
  | Heat { line; timestamp } ->
      Format.fprintf ppf "heat line=%d%s" line
        (match timestamp with
        | None -> ""
        | Some ts -> Printf.sprintf " ts=%.6f" ts)
  | Verify { line } -> Format.fprintf ppf "verify line=%d" line
  | Audit -> Format.fprintf ppf "audit"
  | Array_read { vba } -> Format.fprintf ppf "array-read vba=%d" vba
  | Audit_line { line } -> Format.fprintf ppf "audit-line line=%d" line

let pp_frame ppf f =
  Format.fprintf ppf "tenant=%d seq=%d %a" f.tenant f.seq pp_command f.cmd

let pp_response ppf r =
  Format.fprintf ppf "tenant=%d seq=%d %-10s [%s] %s" r.r_tenant r.r_seq
    (op_name r.r_op)
    (String.concat ";" (List.map status_name r.r_phases))
    (payload_descr r.r_payload)
