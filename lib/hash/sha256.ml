(* SHA-256 per FIPS 180-4.  The implementation keeps the eight working
   variables and the message schedule in int arrays, masking to 32 bits
   after every operation (OCaml ints are 63-bit on every platform we
   target, so this is both portable and faster than boxed Int32). *)

type t = string (* 32 raw bytes, big-endian word order *)

let size = 32
let mask32 = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* 8 chained words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* 64-entry message schedule, reused across blocks *)
  mutable finalized : bool;
}

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
    finalized = false;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

(* [off + 64 <= Bytes.length block] is guaranteed by both callers
   (feed_bytes checks its arguments; finalize builds the padding), so
   the block and schedule accesses below are in bounds by construction
   and the loops run unchecked. *)
let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let base = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block base) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (base + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (base + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (base + 3)))
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) and w2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask32)
  done;
  let h = ctx.h in
  let a = ref h.(0)
  and b = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4)
  and f = ref h.(5)
  and g = ref h.(6)
  and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) in
    let t1 =
      (!hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask32
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let feed_bytes ctx b off len =
  if ctx.finalized then invalid_arg "Sha256.feed_bytes: finalized context";
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed_bytes: out of bounds";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled block buffer first. *)
  if ctx.buf_len > 0 then begin
    let need = 64 - ctx.buf_len in
    let take = min need !remaining in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let feed_string ctx s =
  feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: finalized context";
  let bit_len = ctx.total * 8 in
  (* Padding: 0x80, zeros, then the 64-bit big-endian message length. *)
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 + 8 else 1 + 8 + (64 - rem)
  in
  let pad = Bytes.make pad_len '\x00' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len - 1 - i)
      (Char.chr ((bit_len lsr (8 * i)) land 0xFF))
  done;
  (* feed_bytes updates [total], which no longer matters. *)
  feed_bytes ctx pad 0 pad_len;
  assert (ctx.buf_len = 0);
  ctx.finalized <- true;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xFF));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xFF))
  done;
  Bytes.unsafe_to_string out

let digest_bytes b =
  let ctx = init () in
  feed_bytes ctx b 0 (Bytes.length b);
  finalize ctx

let digest_string s = digest_bytes (Bytes.unsafe_of_string s)

let digest_concat parts =
  let ctx = init () in
  List.iter (feed_string ctx) parts;
  finalize ctx

let to_raw t = t

let of_raw s =
  if String.length s <> 32 then invalid_arg "Sha256.of_raw: need 32 bytes";
  s

let hex_digit n = "0123456789abcdef".[n land 0xF]

let to_hex t =
  String.init 64 (fun i ->
      let byte = Char.code t.[i / 2] in
      if i mod 2 = 0 then hex_digit (byte lsr 4) else hex_digit byte)

let of_hex s =
  if String.length s <> 64 then invalid_arg "Sha256.of_hex: need 64 chars";
  let nibble c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Sha256.of_hex: bad digit"
  in
  String.init 32 (fun i ->
      Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let equal = String.equal
let compare = String.compare
let pp ppf t = Format.fprintf ppf "%s…" (String.sub (to_hex t) 0 8)
let pp_full ppf t = Format.pp_print_string ppf (to_hex t)
let zero = String.make 32 '\x00'
