type strategy = Auto | Always_relocate | Never_relocate

type result_ok = {
  lines : int list;
  relocated_blocks : int;
  collateral_frozen : int;
}

let sort_uniq = List.sort_uniq compare

let line_of st pba = Sero.Layout.line_of_block st.State.lay pba

let file_lines st ~ino =
  sort_uniq (List.map (line_of st) (File.all_block_pbas st ino))

let is_file_heated st ~ino =
  match file_lines st ~ino with
  | [] -> false
  | lines -> List.for_all (fun l -> Sero.Device.is_line_heated st.State.dev ~line:l) lines

let verify_file st ~ino =
  List.map
    (fun line -> (line, Sero.Device.verify_line st.State.dev ~line))
    (file_lines st ~ino)

let seg_of_line (st : State.t) line = line / st.State.policy.State.segment_lines
let dpl st = Sero.Layout.data_blocks_per_line st.State.lay

(* Slot range of a line within its segment's owner table. *)
let slots_of_line st line =
  let base = line mod st.State.policy.State.segment_lines * dpl st in
  List.init (dpl st) (fun i -> base + i)

let owner_ino = function
  | Enc.Data_of { o_ino; _ } | Enc.Indirect_of { o_ino; _ } -> Some o_ino
  | Enc.Inode_of ino -> Some ino
  | Enc.Summary_block | Enc.Unused -> None

(* Live blocks inside [lines] belonging to inos other than [ino].
   Summary blocks are infrastructure and not counted. *)
let foreign_live_blocks st ~ino lines =
  List.concat_map
    (fun line ->
      let seg = seg_of_line st line in
      let owners = State.segment_owners st seg in
      List.filter_map
        (fun slot ->
          let owner = owners.(slot) in
          match owner_ino owner with
          | Some o when o <> ino ->
              let pba = State.pba_of_slot st ~seg ~slot in
              if Cleaner.is_live st ~pba owner then Some pba else None
          | Some _ | None -> None)
        (slots_of_line st line))
    lines

(* Make every block of [line] magnetically readable: blank slots get a
   zero payload so the device can hash the line. *)
let pad_line st line =
  let seg = seg_of_line st line in
  List.iter
    (fun slot ->
      let pba = State.pba_of_slot st ~seg ~slot in
      match State.read_payload_opt st ~pba with
      | Some _ -> ()
      | None ->
          State.write_existing st ~pba
            (String.make Codec.Sector.payload_bytes '\x00'))
    (slots_of_line st line)

(* Close (summary) any open segment among [segs], then return unit;
   heated segments can never be allocated again. *)
let close_segments_for_heat st segs =
  List.iter
    (fun seg ->
      let s = st.State.segs.(seg) in
      if Enc.equal_seg_state s.State.state Enc.Seg_open then begin
        State.close_segment st seg;
        (* Drop any group-head reference to it. *)
        let stale =
          Hashtbl.fold
            (fun key v acc -> if v = seg then key :: acc else acc)
            st.State.open_segs []
        in
        List.iter (Hashtbl.remove st.State.open_segs) stale
      end)
    segs

let burn_lines st lines =
  List.iter
    (fun line ->
      pad_line st line;
      match State.heat_line_dev st ~line with
      | Ok _ -> st.State.metrics.State.heats <- st.State.metrics.State.heats + 1
      | Error e ->
          raise
            (State.Fs_error
               (Format.asprintf "heat of line %d failed: %a" line
                  Sero.Device.pp_heat_error e)))
    lines;
  List.iter
    (fun seg -> State.mark_segment_heated st seg)
    (sort_uniq (List.map (seg_of_line st) lines))

let heat_in_place st ~ino ~collateral =
  File.flush_inode st ino;
  let lines = file_lines st ~ino in
  close_segments_for_heat st (sort_uniq (List.map (seg_of_line st) lines));
  burn_lines st lines;
  st.State.metrics.State.collateral_frozen <-
    st.State.metrics.State.collateral_frozen + collateral;
  { lines; relocated_blocks = 0; collateral_frozen = collateral }

let heat_with_relocation st ~ino =
  let inode = State.load_inode st ino in
  let group = inode.Enc.heat_group in
  (* Relocation claims whole private segments up front; make sure the
     cleaner keeps its own working reserve or it can never copy anything
     out later (the classic LFS bootstrap deadlock). *)
  let needed =
    let blocks = List.length (File.all_block_pbas st ino) + 3 in
    (blocks * 6 / 5 / (st.State.usable_per_seg - 1))
    + 1 + st.State.policy.State.cleaner_low
  in
  let continue = ref true and budget = ref 16 in
  while !continue && !budget > 0 && State.free_segments st < needed do
    decr budget;
    match Cleaner.select_victim st with
    | None -> continue := false
    | Some seg -> ignore (Cleaner.clean_segment st seg)
  done;
  (* Private segments, claimed on demand; every allocated PBA is
     recorded so the heated line set falls out at the end. *)
  let current_seg = ref (State.alloc_private_segment st ~group) in
  let used_segs = ref [ !current_seg ] in
  let allocated = ref [] in
  let copies = ref 0 in
  let rec alloc ~owner payload =
    match State.alloc_block_in st ~seg:!current_seg ~owner payload with
    | pba ->
        allocated := pba :: !allocated;
        incr copies;
        pba
    | exception State.Out_of_space ->
        current_seg := State.alloc_private_segment st ~group;
        used_segs := !current_seg :: !used_segs;
        alloc ~owner payload
  in
  (* Data blocks first, in file order, so the layout matches Figure 3:
     a run of whole lines of related data. *)
  let ptrs = File.pointers st ino in
  Array.iteri
    (fun bi old_pba ->
      if old_pba <> 0 then begin
        let payload = State.read_payload st ~pba:old_pba in
        let pba = alloc ~owner:(Enc.Data_of { o_ino = ino; block_index = bi }) payload in
        File.set_pointer st ino bi pba;
        State.free_block st ~pba:old_pba
      end)
    ptrs;
  (* Metadata into the same private run. *)
  File.flush_inode_with st ino ~alloc;
  (* Pad the final line so heating covers only written blocks. *)
  let seg = !current_seg in
  let line_slots = dpl st in
  while State.seg_cursor st seg mod line_slots <> 0 do
    State.skip_pad_block st ~seg
  done;
  let lines = sort_uniq (List.map (line_of st) !allocated) in
  close_segments_for_heat st (sort_uniq !used_segs);
  burn_lines st lines;
  st.State.metrics.State.heat_relocations <-
    st.State.metrics.State.heat_relocations + !copies;
  { lines; relocated_blocks = !copies; collateral_frozen = 0 }

let heat_file st ~ino ~strategy =
  (match file_lines st ~ino with
  | [] -> raise (State.Fs_error "cannot heat an empty file")
  | lines ->
      if
        List.exists
          (fun l -> Sero.Device.is_line_heated st.State.dev ~line:l)
          lines
      then raise (State.Fs_error "file already lies in heated lines"));
  (* Flush first so metadata blocks exist and the line set is final. *)
  File.flush_inode st ino;
  let lines = file_lines st ~ino in
  let foreign = foreign_live_blocks st ~ino lines in
  match strategy with
  | Never_relocate -> heat_in_place st ~ino ~collateral:(List.length foreign)
  | Always_relocate -> heat_with_relocation st ~ino
  | Auto ->
      if foreign = [] then heat_in_place st ~ino ~collateral:0
      else heat_with_relocation st ~ino
