let block_size = Codec.Sector.payload_bytes

let n_direct = Enc.n_direct
let per_ind = Enc.pointers_per_indirect

let block_count (i : Enc.inode) =
  (i.Enc.size + block_size - 1) / block_size

let create_inode (st : State.t) ~kind ~heat_group =
  let ino = st.State.next_ino in
  st.State.next_ino <- ino + 1;
  let inode = Enc.fresh_inode ~ino ~kind ~heat_group in
  let inode = { inode with Enc.mtime = State.now st } in
  (* Dirty before cached: insertion can trigger eviction, and only the
     dirty mark pins the new inode (it exists nowhere on the medium). *)
  State.mark_dirty st ino;
  State.cache_inode st inode;
  ignore (Sim.Lru.add st.State.pcache ino [||]);
  inode

(* Rebuild the flat pointer array of [inode] from the medium. *)
let load_pointers st (inode : Enc.inode) =
  let n = block_count inode in
  let ptrs = Array.make n 0 in
  let upto = min n n_direct in
  Array.blit inode.Enc.direct 0 ptrs 0 upto;
  let read_ind pba =
    if pba = 0 then Array.make per_ind 0
    else
      match Enc.decode_pointer_block (State.read_payload st ~pba) with
      | Some a -> a
      | None -> raise (State.Fs_error "indirect block does not parse")
  in
  if n > n_direct then begin
    let single = read_ind inode.Enc.single_ind in
    let upto = min (n - n_direct) per_ind in
    Array.blit single 0 ptrs n_direct upto
  end;
  if n > n_direct + per_ind then begin
    let root = read_ind inode.Enc.double_ind in
    let remaining = n - n_direct - per_ind in
    let n_children = (remaining + per_ind - 1) / per_ind in
    for c = 0 to n_children - 1 do
      let child = read_ind root.(c) in
      let base = n_direct + per_ind + (c * per_ind) in
      let upto = min (n - base) per_ind in
      Array.blit child 0 ptrs base upto
    done
  end;
  ptrs

let pointers st ino =
  match Sim.Lru.find st.State.pcache ino with
  | Some p -> p
  | None ->
      let p = load_pointers st (State.load_inode st ino) in
      ignore (Sim.Lru.add st.State.pcache ino p);
      p

let set_pointer st ino index pba =
  let p = pointers st ino in
  let p =
    if index < Array.length p then p
    else begin
      if index >= Enc.max_file_blocks then
        raise (State.Fs_error "file exceeds the maximum size");
      let bigger = Array.make (index + 1) 0 in
      Array.blit p 0 bigger 0 (Array.length p);
      ignore (Sim.Lru.add st.State.pcache ino bigger);
      bigger
    end
  in
  p.(index) <- pba

let read st ino ~offset ~len =
  if offset < 0 || len < 0 then raise (State.Fs_error "negative read range");
  let inode = State.load_inode st ino in
  let len = max 0 (min len (inode.Enc.size - offset)) in
  if len = 0 then ""
  else begin
    let ptrs = pointers st ino in
    let buf = Bytes.create len in
    let pos = ref 0 in
    while !pos < len do
      let abs = offset + !pos in
      let bi = abs / block_size and within = abs mod block_size in
      let take = min (block_size - within) (len - !pos) in
      let chunk =
        if bi >= Array.length ptrs || ptrs.(bi) = 0 then
          String.make take '\x00'
        else
          let payload = State.read_payload st ~pba:ptrs.(bi) in
          String.sub payload within take
      in
      Bytes.blit_string chunk 0 buf !pos take;
      pos := !pos + take
    done;
    Bytes.unsafe_to_string buf
  end

let write st ino ~offset data =
  if offset < 0 then raise (State.Fs_error "negative write offset");
  let len = String.length data in
  if len > 0 then begin
    let inode = State.load_inode st ino in
    let group = inode.Enc.heat_group in
    (* Dirty up front: the pointer updates below live only in the
       caches, so the ino must be pinned before the first insertion. *)
    State.mark_dirty st ino;
    ignore (pointers st ino);
    let pos = ref 0 in
    while !pos < len do
      let abs = offset + !pos in
      let bi = abs / block_size and within = abs mod block_size in
      let take = min (block_size - within) (len - !pos) in
      let old_pba =
        (* Re-fetch: set_pointer may have replaced the cached array. *)
        let ptrs = pointers st ino in
        if bi < Array.length ptrs then ptrs.(bi) else 0
      in
      let payload =
        if take = block_size then String.sub data !pos take
        else begin
          (* Partial block: read-modify-write over the old contents. *)
          let base =
            if old_pba = 0 then String.make block_size '\x00'
            else State.read_payload st ~pba:old_pba
          in
          let b = Bytes.of_string base in
          Bytes.blit_string data !pos b within take;
          Bytes.unsafe_to_string b
        end
      in
      let pba =
        State.alloc_block st ~group
          ~owner:(Enc.Data_of { o_ino = ino; block_index = bi })
          payload
      in
      if old_pba <> 0 then State.free_block st ~pba:old_pba;
      set_pointer st ino bi pba;
      pos := !pos + take
    done;
    let inode = State.load_inode st ino in
    State.cache_inode st
      {
        inode with
        Enc.size = max inode.Enc.size (offset + len);
        mtime = State.now st;
        generation = inode.Enc.generation + 1;
      };
    st.State.metrics.State.user_bytes_written <-
      st.State.metrics.State.user_bytes_written + len
  end

let truncate st ino ~size =
  if size < 0 then raise (State.Fs_error "negative truncate size");
  let inode = State.load_inode st ino in
  if size < inode.Enc.size then begin
    State.mark_dirty st ino;
    let keep = (size + block_size - 1) / block_size in
    let ptrs = pointers st ino in
    let n = Array.length ptrs in
    for bi = keep to n - 1 do
      if ptrs.(bi) <> 0 then State.free_block st ~pba:ptrs.(bi)
    done;
    ignore (Sim.Lru.add st.State.pcache ino (Array.sub ptrs 0 (min keep n)));
    State.cache_inode st
      { inode with Enc.size; mtime = State.now st;
        generation = inode.Enc.generation + 1 }
  end

(* Write the indirect tree for the current pointer array; returns the
   inode updated with the tree's PBAs.  The [alloc] callback decides
   placement (group log head normally, a private relocation segment
   during heating).  An indirect block whose contents are unchanged is
   {e reused in place} unless [must_move] claims it — rewriting clean
   indirect blocks on every flush would seed fresh dead blocks across
   other segments and set the cleaner chasing its own tail. *)
let write_indirects st ~alloc ~must_move (inode : Enc.inode) ptrs =
  let ino = inode.Enc.ino in
  let n = Array.length ptrs in
  let slice base =
    Array.init per_ind (fun i -> if base + i < n then ptrs.(base + i) else 0)
  in
  let direct = Array.make n_direct 0 in
  Array.blit ptrs 0 direct 0 (min n n_direct);
  (* Reuse [old_pba] when it already holds exactly [contents]. *)
  let place ~old_pba ~owner contents =
    let reusable =
      old_pba <> 0
      && (not (must_move old_pba))
      &&
      match State.read_payload_opt st ~pba:old_pba with
      | Some payload -> (
          match Enc.decode_pointer_block payload with
          | Some old -> old = contents
          | None -> false)
      | None -> false
    in
    if reusable then old_pba
    else begin
      let pba = alloc ~owner (Enc.encode_pointer_block contents) in
      if old_pba <> 0 then State.free_block st ~pba:old_pba;
      pba
    end
  in
  let old_root_children =
    if inode.Enc.double_ind = 0 then [||]
    else
      match
        Enc.decode_pointer_block (State.read_payload st ~pba:inode.Enc.double_ind)
      with
      | Some root -> root
      | None -> [||]
  in
  let single_ind =
    if n <= n_direct then begin
      if inode.Enc.single_ind <> 0 then
        State.free_block st ~pba:inode.Enc.single_ind;
      0
    end
    else
      place ~old_pba:inode.Enc.single_ind
        ~owner:(Enc.Indirect_of { o_ino = ino; slot = -1 })
        (slice n_direct)
  in
  let double_ind =
    if n <= n_direct + per_ind then begin
      Array.iter
        (fun p -> if p <> 0 then State.free_block st ~pba:p)
        old_root_children;
      if inode.Enc.double_ind <> 0 then
        State.free_block st ~pba:inode.Enc.double_ind;
      0
    end
    else begin
      let remaining = n - n_direct - per_ind in
      let n_children = (remaining + per_ind - 1) / per_ind in
      let children =
        Array.init n_children (fun c ->
            place
              ~old_pba:
                (if c < Array.length old_root_children then
                   old_root_children.(c)
                 else 0)
              ~owner:(Enc.Indirect_of { o_ino = ino; slot = c })
              (slice (n_direct + per_ind + (c * per_ind))))
      in
      (* Children past the new count are dead. *)
      Array.iteri
        (fun c p -> if c >= n_children && p <> 0 then State.free_block st ~pba:p)
        old_root_children;
      let root = Array.make per_ind 0 in
      Array.blit children 0 root 0 n_children;
      place ~old_pba:inode.Enc.double_ind
        ~owner:(Enc.Indirect_of { o_ino = ino; slot = -2 })
        root
    end
  in
  { inode with Enc.direct; single_ind; double_ind }

let flush_inode_with ?(must_move = fun _ -> false) st ino ~alloc =
  let inode = State.load_inode st ino in
  let ptrs = pointers st ino in
  let inode = write_indirects st ~alloc ~must_move inode ptrs in
  let old_pba = State.inode_pba st ino in
  let pba = alloc ~owner:(Enc.Inode_of ino) (Enc.encode_inode inode) in
  (match old_pba with
  | Some p when p <> 0 -> State.free_block st ~pba:p
  | Some _ | None -> ());
  Hashtbl.replace st.State.imap ino pba;
  State.cache_inode st inode;
  Hashtbl.remove st.State.dirty ino

let flush_inode st ino =
  if Hashtbl.mem st.State.dirty ino then begin
    let group = (State.load_inode st ino).Enc.heat_group in
    flush_inode_with st ino ~alloc:(fun ~owner payload ->
        State.alloc_block st ~group ~owner payload)
  end

let flush_all st =
  let inos = Hashtbl.fold (fun ino () acc -> ino :: acc) st.State.dirty [] in
  List.iter (flush_inode st) (List.sort compare inos);
  (* Flushing released the dirty pins; shed any excess the pins were
     holding past the soft capacity. *)
  ignore (Sim.Lru.trim st.State.icache);
  ignore (Sim.Lru.trim st.State.pcache)

let all_block_pbas st ino =
  let inode = State.load_inode st ino in
  let ptrs = pointers st ino in
  let data = Array.to_list ptrs |> List.filter (fun p -> p <> 0) in
  let inds =
    List.filter (fun p -> p <> 0) [ inode.Enc.single_ind; inode.Enc.double_ind ]
  in
  let children =
    if inode.Enc.double_ind = 0 then []
    else
      match
        Enc.decode_pointer_block
          (State.read_payload st ~pba:inode.Enc.double_ind)
      with
      | Some root -> Array.to_list root |> List.filter (fun p -> p <> 0)
      | None -> []
  in
  let self = match State.inode_pba st ino with Some p -> [ p ] | None -> [] in
  data @ inds @ children @ self

let line_is_heated st pba =
  Sero.Device.is_line_heated st.State.dev
    ~line:(Sero.Layout.line_of_block st.State.lay pba)

let delete st ino =
  let pbas = all_block_pbas st ino in
  if List.exists (line_is_heated st) pbas then
    raise (State.Fs_error "file lies in heated (read-only) lines");
  List.iter (fun pba -> State.free_block st ~pba) pbas;
  Hashtbl.remove st.State.imap ino;
  Sim.Lru.remove st.State.icache ino;
  Sim.Lru.remove st.State.pcache ino;
  Hashtbl.remove st.State.dirty ino
