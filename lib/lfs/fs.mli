(** The SERO log-structured file system — public API.

    A classic LFS (Rosenblum–Ousterhout style: log segments, inode map,
    cost-benefit cleaner, checkpoints) extended for a SERO device per
    Section 4 of the paper:

    - files carry a {e heat group}; the allocator clusters groups into
      their own segments so that lines heated together sit together;
    - {!heat} turns a file read-only by burning per-line hashes;
    - the cleaner skips heated segments;
    - writes, [rm] and [ln] on heated files are refused — an attacker
      bypassing the refusal is exactly what {!verify} detects;
    - {!Fsck} recovers every heated file from the raw medium even after
      the directory tree and checkpoints are destroyed.

    All operations return [(_, string) result] rather than raising;
    programmatic callers needing typed errors use the lower layers. *)

type t

val format :
  ?policy:State.policy ->
  ?icache_cap:int ->
  ?pcache_cap:int ->
  Sero.Device.t ->
  t
(** Initialise an empty file system (root directory + first checkpoint)
    on a fresh device.  [icache_cap] / [pcache_cap] bound the in-memory
    inode and pointer caches (see {!State.create}). *)

val mount :
  ?policy:State.policy ->
  ?icache_cap:int ->
  ?pcache_cap:int ->
  Sero.Device.t ->
  (t, string) result
(** Load the latest checkpoint. *)

type recovery = {
  fs : t;
  torn_completed : int list;
      (** Lines whose interrupted burn was finished during recovery. *)
  fsck : Fsck.report;
}

val recover : ?policy:State.policy -> Sero.Device.t -> (recovery, string) result
(** Mount after an unclean shutdown (e.g. an injected power cut):
    complete any torn burns found on the medium ({!Sero.Device.heat_line}
    is idempotent over the burned prefix), run {!Fsck} to inventory the
    heated files, then replay the latest checkpoint as {!mount} does. *)

val unmount : t -> unit
(** Flush everything and write a final checkpoint. *)

val sync : t -> unit
(** Flush dirty inodes and checkpoint (keeps mounted). *)

val device : t -> Sero.Device.t
val state : t -> State.t
(** Escape hatch for experiments and tests. *)

val attach_queue : t -> Sero.Queue.t -> unit
(** Route the file system's block IO through a request pipeline: every
    foreground operation becomes [Foreground] queued traffic and the
    cleaner's copies become [Background] traffic, all served under the
    queue's scheduling policy.  Semantically transparent — results are
    the ones the direct calls would produce — but latency now includes
    queueing behind whatever else the device is serving.
    @raise State.Fs_error if the queue serves a different device. *)

val queue : t -> Sero.Queue.t option

val attach_cache : t -> Sero.Bcache.t -> unit
(** Route the file system's block IO through a {!Sero.Bcache} buffer
    cache layered over its queue: repeat reads hit with zero sled
    service, sequential reads prefetch, writes are write-behind
    buffered until {!sync}, {!heat}, or cache pressure flushes them.
    [sync] (and [unmount]) remain durable: they flush the cache
    through to the medium before returning.
    @raise State.Fs_error if the cache serves a different device. *)

val cache : t -> Sero.Bcache.t option

(** {1 Namespace} *)

val mkdir : t -> string -> (unit, string) result
val create : t -> ?heat_group:int -> string -> (unit, string) result
val exists : t -> string -> bool
val readdir : t -> string -> (Enc.dirent list, string) result
val unlink : t -> string -> (unit, string) result
(** Removes the entry and decrements the link count; the file's blocks
    are freed when the count reaches zero.  Refused on heated files —
    "it will not be possible to use the rm command on a heated file"
    (Section 5.2). *)

val link : t -> string -> string -> (unit, string) result
(** [link t existing fresh] — hard link; rewrites the inode, hence
    refused on heated files (the paper's [ln] observation). *)

(** {1 File IO} *)

val write_file : t -> string -> offset:int -> string -> (unit, string) result
val append : t -> string -> string -> (unit, string) result
val read_file : t -> string -> (string, string) result
val read_range : t -> string -> offset:int -> len:int -> (string, string) result
val file_size : t -> string -> (int, string) result

(** {1 Tamper evidence} *)

val heat : t -> ?strategy:Heat.strategy -> string -> (Heat.result_ok, string) result
(** Make a file read-only with burned per-line hashes.  [Auto] (default)
    heats in place when the file owns its lines and relocates it into
    fresh line-aligned segments otherwise. *)

val verify : t -> string -> ((int * Sero.Tamper.verdict) list, string) result
val is_heated : t -> string -> (bool, string) result

(** {1 Maintenance and statistics} *)

val clean_now : t -> int
(** Force one cost-benefit cleaner sweep; returns blocks copied. *)

type stats = {
  free_segments : int;
  heated_segments : int;
  closed_segments : int;
  partially_heated_segments : int;
      (** Segments with some but not all lines heated — the paper's
          bimodality claim is that a good clustering policy keeps this
          at zero ("only mostly heated segments and mostly unheated
          segments", Section 4.1). *)
  live_utilisation : float list;
      (** Per closed segment: live blocks / usable blocks — the
          distribution whose bimodality Section 4.1 predicts. *)
  metrics : State.metrics;
  device : Sero.Device.stats;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
