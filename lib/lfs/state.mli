(** Mutable file-system state and the log allocator.

    The LFS views the SERO device as a sequence of {e segments} of
    [segment_lines] consecutive heat lines (Section 4.1: segments must
    be line-aligned so that heating converts whole segments and the
    cleaner can skip them).  Within a segment, only the lines' data
    blocks are usable; slot 0 holds the segment summary.

    The allocator embodies the paper's clustering policy: with
    [clustering = true] every heat group gets its own open segment, so
    blocks that will be heated together end up physically together and
    the heated/live block populations stay {e bimodal}; with
    [clustering = false] (the ablation) all writes share one log head. *)

exception Out_of_space
exception Fs_error of string

exception Read_only_device
(** The device's endurance state machine has gone read-only (spares
    exhausted over a critically weak line): every write is refused so
    the data that is still readable stays readable.  Surfaced as a
    typed error so callers can distinguish graceful degradation from a
    bug. *)

type policy = {
  clustering : bool;
  segment_lines : int;  (** Lines per segment (default 4). *)
  checkpoint_segments : int;  (** Reserved at the device start (2). *)
  cleaner_low : int;  (** Clean when free segments drop below this. *)
  cleaner_high : int;  (** Clean until this many segments are free. *)
}

val default_policy : policy

type metrics = {
  mutable user_bytes_written : int;
  mutable fs_block_writes : int;  (** Data + metadata block writes. *)
  mutable cleaner_copies : int;  (** Blocks moved by the cleaner. *)
  mutable heat_relocations : int;  (** Blocks copied to line-align a file before heating. *)
  mutable collateral_frozen : int;
      (** Live blocks of {e other} files frozen because they shared a
          line that was heated in place. *)
  mutable segments_cleaned : int;
  mutable heats : int;  (** heat_line operations issued. *)
}

type seg = {
  mutable state : Enc.seg_state;
  mutable live : int;
  mutable group : int;
  mutable age : int;
  mutable cursor : int;  (** Next usable slot (1-based; slot 0 = summary). *)
  mutable owners_valid : bool;
      (** In-memory owners reflect reality; false after a remount until
          the on-medium summary is reloaded. *)
  owners : Enc.owner array;
}

type t = {
  dev : Sero.Device.t;
  lay : Sero.Layout.t;
  policy : policy;
  usable_per_seg : int;
  n_segs : int;
  segs : seg array;
  open_segs : (int, int) Hashtbl.t;  (** group -> open segment. *)
  imap : (int, int) Hashtbl.t;  (** ino -> inode PBA. *)
  icache : (int, Enc.inode) Sim.Lru.t;
      (** Bounded inode cache; dirty inodes are pinned until flushed
          (their latest state exists nowhere else). *)
  pcache : (int, int array) Sim.Lru.t;
      (** Fully resolved block-pointer arrays (direct + indirect),
          rebuilt lazily from the medium; see {!File}.  Bounded like
          {!icache}, with dirty inos pinned (their array can be newer
          than the on-medium inode). *)
  dirty : (int, unit) Hashtbl.t;
  mutable next_ino : int;
  mutable seq : int;
  metrics : metrics;
  mutable ioq : Sero.Queue.t option;
      (** Attached request pipeline; [None] = direct device calls. *)
  mutable io_prio : Sero.Queue.prio;
      (** Priority class tagged onto queued block IO ([Foreground]
          except while the cleaner runs). *)
  mutable io_tenant : int;
      (** Tenant tag on queued block IO (default [0]) — the hook the
          host layer's sessions use to make the file system a
          session-aware entry point; see {!Sero.Queue}. *)
  mutable bcache : Sero.Bcache.t option;
      (** Attached block buffer cache; takes precedence over [ioq] for
          block IO (the cache itself fetches through its queue). *)
}

val create :
  ?policy:policy -> ?icache_cap:int -> ?pcache_cap:int -> Sero.Device.t -> t
(** Fresh in-memory state over a device (no on-medium initialisation —
    see {!format_checkpoint} / [Lfs.format]).  [icache_cap] and
    [pcache_cap] (default 256 each) bound the inode and pointer caches;
    see {!Sim.Lru}. *)

val now : t -> float
(** The device's simulated clock — used for mtimes and heat stamps. *)

(** {1 Geometry} *)

val first_data_segment : t -> int
val seg_of_pba : t -> int -> int
val pba_of_slot : t -> seg:int -> slot:int -> int
val slot_of_pba : t -> int -> int * int
(** [(seg, slot)]. *)

val lines_of_seg : t -> int -> int list
val free_segments : t -> int

(** {1 Block IO}

    All file-system block traffic (foreground ops, cleaner copies, heat
    relocations) funnels through {!read_payload}/{!read_payload_opt}/
    {!write_block_exn}.  With a queue attached, each becomes a queued
    request at the state's current {!io_prio} served under the queue's
    scheduling policy (the call still blocks, pumping the DES until its
    own completion — earlier-queued background work may be served on
    the way). *)

val attach_queue : t -> Sero.Queue.t -> unit
(** Route subsequent block IO through a request pipeline.
    @raise Fs_error if the queue serves a different device. *)

val attach_cache : t -> Sero.Bcache.t -> unit
(** Route subsequent block IO through a buffer cache (reads may hit
    with zero sled service, writes are write-behind buffered); also
    records the cache's queue as the attached pipeline.
    @raise Fs_error if the cache serves a different device. *)

val queue : t -> Sero.Queue.t option
val cache : t -> Sero.Bcache.t option

val flush_block_cache : t -> unit
(** {!Sero.Bcache.sync} on the attached cache, if any: write-behind
    data reaches the medium and the pipeline drains.  No-op without a
    cache. *)

val set_io_prio : t -> Sero.Queue.prio -> unit
val io_prio : t -> Sero.Queue.prio

val set_io_tenant : t -> int -> unit
(** Tenant tag for subsequent queued block IO (default [0]).  Set by a
    host session around each command so per-tenant fair-share and SLO
    ledgers see file-system traffic under the right account. *)

val io_tenant : t -> int

val heat_line_dev :
  t -> line:int -> (Hash.Sha256.t, Sero.Device.heat_error) result
(** {!Sero.Device.heat_line} stamped with {!now}, routed through the
    attached queue when there is one. *)

val read_payload : t -> pba:int -> string
(** @raise Fs_error on unreadable or relocated frames. *)

val read_payload_opt : t -> pba:int -> string option

val write_existing : t -> pba:int -> string -> unit
(** Rewrite a block in place (checkpoint area only — the log never
    overwrites). *)

(** {1 Log allocation} *)

val alloc_block : t -> group:int -> owner:Enc.owner -> string -> int
(** Allocate the next slot of [group]'s open segment (opening or
    reusing a free segment as needed), write the payload, record the
    owner, and return the PBA.  @raise Out_of_space when no free
    segment exists — callers must run the cleaner first. *)

val alloc_private_segment : t -> group:int -> int
(** Claim a whole free segment for relocation before heating; the
    caller fills it with {!alloc_block_in} / {!skip_pad_block}. *)

val alloc_block_in : t -> seg:int -> owner:Enc.owner -> string -> int
(** Allocate the next slot of a specific (private) segment.
    @raise Out_of_space when the segment is full. *)

val skip_pad_block : t -> seg:int -> unit
(** Write a dead zero block at the next slot — line padding so that a
    heat line has no unreadable blocks. *)

val seg_cursor : t -> int -> int

val free_block : t -> pba:int -> unit
(** Mark a previously live block dead (live count and owner slot). *)

val close_segment : t -> int -> unit
(** Write the summary block and mark the segment [Seg_closed]. *)

val segment_owners : t -> int -> Enc.owner array
(** Owner table of a segment, reloading the on-medium summary after a
    remount.  Note that freed slots since the summary was written are
    only reflected once reloaded owners are cross-checked against the
    imap (the cleaner does this). *)

val close_open_segments : t -> unit

val mark_segment_heated : t -> int -> unit

(** {1 Inode cache} *)

val load_inode : t -> int -> Enc.inode
(** From cache or medium.  @raise Fs_error if unknown or unreadable. *)

val cache_inode : t -> Enc.inode -> unit
val mark_dirty : t -> int -> unit
val inode_pba : t -> int -> int option

(** {1 Checkpoint} *)

val write_checkpoint : t -> unit
(** Close every open segment (their summaries must be on the medium —
    a remount reloads owner tables from summary blocks, so a
    checkpoint may only describe closed segments), then serialise
    imap + segment table into the alternating checkpoint half
    (A = checkpoint segment 0, B = segment 1).
    @raise Fs_error if the blob exceeds the half's capacity. *)

val read_latest_checkpoint : Sero.Device.t -> policy -> Enc.checkpoint option
(** Probe both halves, return the valid checkpoint with the highest
    sequence number. *)

val restore_from_checkpoint : t -> Enc.checkpoint -> unit
