exception Out_of_space
exception Fs_error of string

exception Read_only_device
(* The device's endurance state machine refuses all writes. *)

type policy = {
  clustering : bool;
  segment_lines : int;
  checkpoint_segments : int;
  cleaner_low : int;
  cleaner_high : int;
}

let default_policy =
  {
    clustering = true;
    segment_lines = 4;
    checkpoint_segments = 2;
    cleaner_low = 3;
    cleaner_high = 6;
  }

type metrics = {
  mutable user_bytes_written : int;
  mutable fs_block_writes : int;
  mutable cleaner_copies : int;
  mutable heat_relocations : int;
  mutable collateral_frozen : int;
  mutable segments_cleaned : int;
  mutable heats : int;
}

type seg = {
  mutable state : Enc.seg_state;
  mutable live : int;
  mutable group : int;
  mutable age : int;
  mutable cursor : int;
  mutable owners_valid : bool;
  owners : Enc.owner array;
}

type t = {
  dev : Sero.Device.t;
  lay : Sero.Layout.t;
  policy : policy;
  usable_per_seg : int;
  n_segs : int;
  segs : seg array;
  open_segs : (int, int) Hashtbl.t;
  imap : (int, int) Hashtbl.t;
  icache : (int, Enc.inode) Sim.Lru.t;
  pcache : (int, int array) Sim.Lru.t;
  dirty : (int, unit) Hashtbl.t;
  mutable next_ino : int;
  mutable seq : int;
  metrics : metrics;
  mutable ioq : Sero.Queue.t option;
  mutable io_prio : Sero.Queue.prio;
  mutable io_tenant : int;
  mutable bcache : Sero.Bcache.t option;
}

let default_icache_cap = 256
let default_pcache_cap = 256

let create ?(policy = default_policy) ?(icache_cap = default_icache_cap)
    ?(pcache_cap = default_pcache_cap) dev =
  let lay = Sero.Device.layout dev in
  (* Only the usable region below the device's spare lines belongs to
     the file system; the endurance layer owns the rest. *)
  let n_lines = Sero.Layout.usable_lines lay in
  if policy.segment_lines <= 0 || n_lines mod policy.segment_lines <> 0 then
    raise (Fs_error "segment_lines must divide the usable line count");
  let n_segs = n_lines / policy.segment_lines in
  if policy.checkpoint_segments < 2 || policy.checkpoint_segments >= n_segs
  then raise (Fs_error "need at least 2 checkpoint segments and data room");
  let usable_per_seg =
    policy.segment_lines * Sero.Layout.data_blocks_per_line lay
  in
  let dirty = Hashtbl.create 64 in
  {
    dev;
    lay;
    policy;
    usable_per_seg;
    n_segs;
    segs =
      Array.init n_segs (fun _ ->
          {
            state = Enc.Seg_free;
            live = 0;
            group = 0;
            age = 0;
            cursor = 1;
            owners_valid = true;
            owners = Array.make usable_per_seg Enc.Unused;
          });
    open_segs = Hashtbl.create 8;
    imap = Hashtbl.create 64;
    (* Bounded caches: a dirty inode's latest state (and its pointer
       array, which may be newer than the on-medium inode) exists
       nowhere else yet, so dirty inos are pinned until flushed. *)
    icache =
      Sim.Lru.create
        ~evictable:(fun ino _ -> not (Hashtbl.mem dirty ino))
        ~capacity:icache_cap ();
    pcache =
      Sim.Lru.create
        ~evictable:(fun ino _ -> not (Hashtbl.mem dirty ino))
        ~capacity:pcache_cap ();
    dirty;
    next_ino = 1;
    seq = 0;
    metrics =
      {
        user_bytes_written = 0;
        fs_block_writes = 0;
        cleaner_copies = 0;
        heat_relocations = 0;
        collateral_frozen = 0;
        segments_cleaned = 0;
        heats = 0;
      };
    ioq = None;
    io_prio = Sero.Queue.Foreground;
    io_tenant = 0;
    bcache = None;
  }

let now t = Probe.Pdevice.elapsed (Sero.Device.pdevice t.dev)

(* {1 Geometry} *)

let first_data_segment t = t.policy.checkpoint_segments
let data_per_line t = Sero.Layout.data_blocks_per_line t.lay
let blocks_per_line t = Sero.Layout.blocks_per_line t.lay

let seg_of_pba t pba =
  let line = Sero.Layout.line_of_block t.lay pba in
  line / t.policy.segment_lines

let pba_of_slot t ~seg ~slot =
  if slot < 0 || slot >= t.usable_per_seg then
    raise (Fs_error "slot out of range");
  let line_in_seg = slot / data_per_line t
  and within = slot mod data_per_line t in
  let line = (seg * t.policy.segment_lines) + line_in_seg in
  (line * blocks_per_line t) + 1 + within

let slot_of_pba t pba =
  let line = Sero.Layout.line_of_block t.lay pba in
  let within = (pba mod blocks_per_line t) - 1 in
  if within < 0 then raise (Fs_error "slot_of_pba: hash block");
  let seg = line / t.policy.segment_lines in
  let slot = ((line mod t.policy.segment_lines) * data_per_line t) + within in
  (seg, slot)

let lines_of_seg t seg =
  List.init t.policy.segment_lines (fun i -> (seg * t.policy.segment_lines) + i)

let free_segments t =
  let n = ref 0 in
  Array.iteri
    (fun i s ->
      if i >= first_data_segment t && Enc.equal_seg_state s.state Enc.Seg_free
      then incr n)
    t.segs;
  !n

(* {1 Block IO}

   Every block the file system moves — foreground ops, cleaner copies,
   heat relocations — funnels through these three functions.  With a
   request pipeline attached ({!attach_queue}) they become queued
   submissions at the state's current priority class; without one they
   are the original direct device calls. *)

let attach_queue t q =
  if not (Sero.Queue.device q == t.dev) then
    raise (Fs_error "attach_queue: queue serves a different device");
  t.ioq <- Some q

let attach_cache t c =
  if not (Sero.Bcache.device c == t.dev) then
    raise (Fs_error "attach_cache: cache serves a different device");
  t.bcache <- Some c;
  t.ioq <- Some (Sero.Bcache.queue c)

let queue t = t.ioq
let cache t = t.bcache
let set_io_prio t prio = t.io_prio <- prio
let io_prio t = t.io_prio
let set_io_tenant t tenant = t.io_tenant <- tenant
let io_tenant t = t.io_tenant

let dev_read_block t ~pba =
  match t.bcache with
  | Some c -> Sero.Bcache.read_block ~prio:t.io_prio ~tenant:t.io_tenant c ~pba
  | None -> (
      match t.ioq with
      | None -> Sero.Device.read_block t.dev ~pba
      | Some q ->
          Sero.Queue.read_block ~prio:t.io_prio ~tenant:t.io_tenant q ~pba)

let dev_write_block t ~pba payload =
  match t.bcache with
  | Some c ->
      Sero.Bcache.write_block ~prio:t.io_prio ~tenant:t.io_tenant c ~pba
        payload
  | None -> (
      match t.ioq with
      | None -> Sero.Device.write_block t.dev ~pba payload
      | Some q ->
          Sero.Queue.write_block ~prio:t.io_prio ~tenant:t.io_tenant q ~pba
            payload)

let heat_line_dev t ~line =
  let timestamp = Probe.Pdevice.elapsed (Sero.Device.pdevice t.dev) in
  match t.bcache with
  | Some c -> Sero.Bcache.heat_line ~tenant:t.io_tenant c ~line ~timestamp ()
  | None -> (
      match t.ioq with
      | None -> Sero.Device.heat_line t.dev ~line ~timestamp ()
      | Some q -> Sero.Queue.heat_line ~tenant:t.io_tenant q ~line ~timestamp ())

let flush_block_cache t = Option.iter Sero.Bcache.sync t.bcache

let read_payload_opt t ~pba =
  match dev_read_block t ~pba with
  | Ok payload -> Some payload
  | Error _ -> None

let read_payload t ~pba =
  match dev_read_block t ~pba with
  | Ok payload -> payload
  | Error e ->
      raise
        (Fs_error
           (Format.asprintf "read of PBA %d failed: %a" pba
              Sero.Device.pp_read_error e))

let write_block_exn t ~pba payload =
  t.metrics.fs_block_writes <- t.metrics.fs_block_writes + 1;
  match dev_write_block t ~pba payload with
  | Ok () -> ()
  | Error Sero.Device.Read_only_device -> raise Read_only_device
  | Error e ->
      raise
        (Fs_error
           (Format.asprintf "write of PBA %d refused: %a" pba
              Sero.Device.pp_write_error e))

let write_existing = write_block_exn

(* {1 Log allocation} *)

let close_segment t seg =
  let s = t.segs.(seg) in
  s.owners.(0) <- Enc.Summary_block;
  let summary =
    Enc.encode_summary { Enc.seg_index = seg; owners = Array.copy s.owners }
  in
  write_block_exn t ~pba:(pba_of_slot t ~seg ~slot:0) summary;
  if Enc.equal_seg_state s.state Enc.Seg_open then s.state <- Enc.Seg_closed

(* Owners for a segment whose summary was lost from memory (remount):
   reload it from the on-medium summary block. *)
let segment_owners t seg =
  let s = t.segs.(seg) in
  if s.owners_valid then s.owners
  else begin
    (match read_payload_opt t ~pba:(pba_of_slot t ~seg ~slot:0) with
    | None -> raise (Fs_error (Printf.sprintf "segment %d summary unreadable" seg))
    | Some payload -> (
        match Enc.decode_summary payload with
        | None ->
            raise (Fs_error (Printf.sprintf "segment %d summary corrupt" seg))
        | Some summary ->
            if Array.length summary.Enc.owners <> t.usable_per_seg then
              raise (Fs_error "summary arity mismatch");
            Array.blit summary.Enc.owners 0 s.owners 0 t.usable_per_seg));
    s.owners_valid <- true;
    s.owners
  end

let close_open_segments t =
  Hashtbl.iter (fun _ seg -> close_segment t seg) t.open_segs;
  Hashtbl.reset t.open_segs

let find_free_segment t =
  let found = ref (-1) in
  (try
     for i = first_data_segment t to t.n_segs - 1 do
       if Enc.equal_seg_state t.segs.(i).state Enc.Seg_free then begin
         found := i;
         raise Exit
       end
     done
   with Exit -> ());
  if !found < 0 then raise Out_of_space;
  !found

let open_segment_for t ~group =
  let key = if t.policy.clustering then group else 0 in
  match Hashtbl.find_opt t.open_segs key with
  | Some seg when t.segs.(seg).cursor < t.usable_per_seg -> seg
  | maybe_full ->
      (match maybe_full with
      | Some seg ->
          close_segment t seg;
          Hashtbl.remove t.open_segs key
      | None -> ());
      let seg = find_free_segment t in
      let s = t.segs.(seg) in
      s.state <- Enc.Seg_open;
      s.group <- group;
      s.age <- t.seq;
      s.cursor <- 1;
      s.live <- 0;
      s.owners_valid <- true;
      Array.fill s.owners 0 t.usable_per_seg Enc.Unused;
      Hashtbl.replace t.open_segs key seg;
      seg

let alloc_block t ~group ~owner payload =
  let seg = open_segment_for t ~group in
  let s = t.segs.(seg) in
  let slot = s.cursor in
  s.cursor <- s.cursor + 1;
  s.owners.(slot) <- owner;
  s.live <- s.live + 1;
  s.age <- t.seq;
  let pba = pba_of_slot t ~seg ~slot in
  write_block_exn t ~pba payload;
  if s.cursor >= t.usable_per_seg then begin
    close_segment t seg;
    Hashtbl.remove t.open_segs (if t.policy.clustering then group else 0)
  end;
  pba

(* A private segment for relocation: opened outside the group-head
   table, filled slot-by-slot by the caller via [alloc_block_in]. *)
let alloc_private_segment t ~group =
  let seg = find_free_segment t in
  let s = t.segs.(seg) in
  s.state <- Enc.Seg_open;
  s.group <- group;
  s.age <- t.seq;
  s.cursor <- 1;
  s.live <- 0;
  s.owners_valid <- true;
  Array.fill s.owners 0 t.usable_per_seg Enc.Unused;
  seg

let alloc_block_in t ~seg ~owner payload =
  let s = t.segs.(seg) in
  if s.cursor >= t.usable_per_seg then raise Out_of_space;
  let slot = s.cursor in
  s.cursor <- s.cursor + 1;
  s.owners.(slot) <- owner;
  s.live <- s.live + 1;
  let pba = pba_of_slot t ~seg ~slot in
  write_block_exn t ~pba payload;
  pba

let skip_pad_block t ~seg =
  let s = t.segs.(seg) in
  if s.cursor >= t.usable_per_seg then raise Out_of_space;
  let slot = s.cursor in
  s.cursor <- s.cursor + 1;
  s.owners.(slot) <- Enc.Unused;
  let pba = pba_of_slot t ~seg ~slot in
  write_block_exn t ~pba (String.make Codec.Sector.payload_bytes '\x00')

let seg_cursor t seg = t.segs.(seg).cursor

let free_block t ~pba =
  let seg, slot = slot_of_pba t pba in
  let s = t.segs.(seg) in
  if s.live > 0 then s.live <- s.live - 1;
  if s.owners_valid then s.owners.(slot) <- Enc.Unused;
  if
    s.live = 0
    && Enc.equal_seg_state s.state Enc.Seg_closed
    && seg >= first_data_segment t
  then s.state <- Enc.Seg_free

let mark_segment_heated t seg = t.segs.(seg).state <- Enc.Seg_heated

(* {1 Inode cache} *)

let inode_pba t ino = Hashtbl.find_opt t.imap ino

let load_inode t ino =
  match Sim.Lru.find t.icache ino with
  | Some i -> i
  | None -> (
      match Hashtbl.find_opt t.imap ino with
      | None -> raise (Fs_error (Printf.sprintf "unknown inode %d" ino))
      | Some pba -> (
          match Enc.decode_inode (read_payload t ~pba) with
          | None ->
              raise (Fs_error (Printf.sprintf "inode %d does not parse" ino))
          | Some i ->
              ignore (Sim.Lru.add t.icache ino i);
              i))

let cache_inode t (i : Enc.inode) = ignore (Sim.Lru.add t.icache i.Enc.ino i)
let mark_dirty t ino = Hashtbl.replace t.dirty ino ()

(* {1 Checkpoint} *)

let checkpoint_half_capacity t = t.usable_per_seg * Codec.Sector.payload_bytes

let checkpoint_blob t =
  let imap =
    Hashtbl.fold (fun ino pba acc -> (ino, pba) :: acc) t.imap []
    |> List.sort compare
  in
  let segments =
    Array.map
      (fun s ->
        {
          Enc.state = s.state;
          live_blocks = s.live;
          seg_group = s.group;
          age = s.age;
        })
      t.segs
  in
  Enc.encode_checkpoint
    { Enc.seq = t.seq; timestamp = now t; next_ino = t.next_ino; imap; segments }

let write_checkpoint t =
  (* Invariant: a checkpoint only ever describes closed segments.
     [restore_from_checkpoint] marks every checkpointed segment's
     in-memory owner table stale ([owners_valid = false]) and reloads
     it from the on-medium summary block on demand — so any segment
     still open here would remount as a closed segment whose summary
     was never written, and the first cleaner pass over it would die
     with "summary unreadable" (the historical small-geometry mkfs
     bug: tiny devices have so few segments that the cleaner runs on
     the very first write after mkfs). *)
  close_open_segments t;
  t.seq <- t.seq + 1;
  let blob = checkpoint_blob t in
  if String.length blob > checkpoint_half_capacity t then
    raise (Fs_error "checkpoint exceeds the reserved area");
  let half = t.seq mod t.policy.checkpoint_segments in
  let payload_bytes = Codec.Sector.payload_bytes in
  let n_chunks = (String.length blob + payload_bytes - 1) / payload_bytes in
  for chunk = 0 to n_chunks - 1 do
    let off = chunk * payload_bytes in
    let len = min payload_bytes (String.length blob - off) in
    write_block_exn t
      ~pba:(pba_of_slot t ~seg:half ~slot:chunk)
      (String.sub blob off len)
  done

(* Reassemble a checkpoint blob from one half, [policy] giving the
   geometry.  Static because mount needs it before the state exists. *)
let read_checkpoint_half dev policy half =
  let lay = Sero.Device.layout dev in
  let data_per_line = Sero.Layout.data_blocks_per_line lay in
  let blocks_per_line = Sero.Layout.blocks_per_line lay in
  let usable = policy.segment_lines * data_per_line in
  let pba_of slot =
    let line_in_seg = slot / data_per_line and within = slot mod data_per_line in
    let line = (half * policy.segment_lines) + line_in_seg in
    (line * blocks_per_line) + 1 + within
  in
  match Sero.Device.read_block dev ~pba:(pba_of 0) with
  | Error _ -> None
  | Ok first -> (
      let r = Codec.Binio.R.of_string first in
      match
        let _crc = Codec.Binio.R.u32 r in
        Codec.Binio.R.u32 r
      with
      | exception Codec.Binio.R.Truncated -> None
      | body_len ->
          let total = body_len + 8 in
          let payload_bytes = Codec.Sector.payload_bytes in
          let n_chunks = (total + payload_bytes - 1) / payload_bytes in
          if n_chunks > usable then None
          else begin
            let buf = Buffer.create total in
            Buffer.add_string buf first;
            let ok = ref true in
            for chunk = 1 to n_chunks - 1 do
              match Sero.Device.read_block dev ~pba:(pba_of chunk) with
              | Ok payload -> Buffer.add_string buf payload
              | Error _ -> ok := false
            done;
            if not !ok then None
            else Enc.decode_checkpoint (Buffer.contents buf)
          end)

let read_latest_checkpoint dev policy =
  let candidates =
    List.filter_map
      (fun half -> read_checkpoint_half dev policy half)
      (List.init policy.checkpoint_segments (fun i -> i))
  in
  List.fold_left
    (fun best (c : Enc.checkpoint) ->
      match best with
      | None -> Some c
      | Some (b : Enc.checkpoint) -> if c.Enc.seq > b.Enc.seq then Some c else Some b)
    None candidates

let restore_from_checkpoint t (c : Enc.checkpoint) =
  t.seq <- c.Enc.seq;
  t.next_ino <- c.Enc.next_ino;
  Hashtbl.reset t.imap;
  List.iter (fun (ino, pba) -> Hashtbl.replace t.imap ino pba) c.Enc.imap;
  Sim.Lru.clear t.icache;
  Sim.Lru.clear t.pcache;
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.open_segs;
  if Array.length c.Enc.segments <> t.n_segs then
    raise (Fs_error "checkpoint segment table size mismatch");
  Array.iteri
    (fun i (r : Enc.seg_record) ->
      let s = t.segs.(i) in
      s.state <-
        (* Open segments do not survive a remount; they were closed by
           the unmount that wrote this checkpoint. *)
        (if Enc.equal_seg_state r.Enc.state Enc.Seg_open then Enc.Seg_closed
         else r.Enc.state);
      s.live <- r.Enc.live_blocks;
      s.group <- r.Enc.seg_group;
      s.age <- r.Enc.age;
      s.cursor <- t.usable_per_seg;
      s.owners_valid <- false)
    c.Enc.segments
