type t = { st : State.t }

let state t = t.st
let device t = t.st.State.dev
let attach_queue t q = State.attach_queue t.st q
let attach_cache t c = State.attach_cache t.st c
let queue t = State.queue t.st
let cache t = State.cache t.st

let format ?policy ?icache_cap ?pcache_cap dev =
  let st = State.create ?policy ?icache_cap ?pcache_cap dev in
  Dirops.init_root st;
  File.flush_all st;
  State.write_checkpoint st;
  { st }

let mount ?policy ?icache_cap ?pcache_cap dev =
  let st = State.create ?policy ?icache_cap ?pcache_cap dev in
  match State.read_latest_checkpoint dev st.State.policy with
  | None -> Error "no valid checkpoint found"
  | Some cp ->
      State.restore_from_checkpoint st cp;
      Sero.Device.refresh_heated_cache dev;
      (* Heated lines on the medium override the checkpointed state. *)
      let lay = st.State.lay in
      for line = 0 to Sero.Layout.usable_lines lay - 1 do
        if Sero.Device.is_line_heated dev ~line then
          State.mark_segment_heated st
            (line / st.State.policy.State.segment_lines)
      done;
      Ok { st }

let sync t =
  File.flush_all t.st;
  State.write_checkpoint t.st;
  (* sync means durable: write-behind data (including the checkpoint
     blocks just written) must reach the medium before returning. *)
  State.flush_block_cache t.st

let unmount t = sync t

type recovery = { fs : t; torn_completed : int list; fsck : Fsck.report }

(* Power-loss recovery: a cut mid-heat leaves a torn write-once area
   (burned prefix, blank tail).  The data blocks it covers were written
   and flushed before the burn started, so completing the burn from
   them reproduces the interrupted hash exactly; then fsck inventories
   the heated files and a normal mount replays the latest checkpoint. *)
let recover ?policy dev =
  let lay = Sero.Device.layout dev in
  let torn = ref [] in
  for line = 0 to Sero.Layout.usable_lines lay - 1 do
    match Sero.Device.read_hash_block dev ~line with
    | `Torn _ -> (
        match Sero.Device.heat_line dev ~line () with
        | Ok _ -> torn := line :: !torn
        | Error _ -> ())
    | `Not_heated | `Burned _ | `Tampered _ -> ()
  done;
  let fsck = Fsck.run dev in
  match mount ?policy dev with
  | Error _ as e -> e
  | Ok fs -> Ok { fs; torn_completed = List.rev !torn; fsck }

(* Wrap internal exceptions into result errors. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception State.Fs_error msg -> Error msg
  | exception State.Out_of_space -> Error "out of space"
  | exception State.Read_only_device -> Error "device is read-only (endurance)"

let resolve t path =
  match Dirops.lookup t.st path with
  | Some (ino, kind) -> Ok (ino, kind)
  | None -> Error (Printf.sprintf "no such file or directory: %s" path)

let resolve_file t path =
  match resolve t path with
  | Error _ as e -> e
  | Ok (_, Enc.Directory) -> Error (Printf.sprintf "%s is a directory" path)
  | Ok (ino, Enc.Regular) -> Ok ino

let ( let* ) = Result.bind

let file_heated t ino = Heat.is_file_heated t.st ~ino

let any_line_heated t ino =
  List.exists
    (fun l -> Sero.Device.is_line_heated t.st.State.dev ~line:l)
    (Heat.file_lines t.st ~ino)

let mkdir t path =
  guard (fun () ->
      match Dirops.parent_of t.st path with
      | Error e -> raise (State.Fs_error e)
      | Ok (parent, name) ->
          Cleaner.maybe_clean t.st;
          let inode = File.create_inode t.st ~kind:Enc.Directory ~heat_group:0 in
          Dirops.store_empty t.st inode.Enc.ino;
          Dirops.add_entry t.st ~dir:parent
            { Enc.name; entry_ino = inode.Enc.ino; entry_kind = Enc.Directory })

let create t ?(heat_group = 0) path =
  guard (fun () ->
      match Dirops.parent_of t.st path with
      | Error e -> raise (State.Fs_error e)
      | Ok (parent, name) ->
          Cleaner.maybe_clean t.st;
          let inode = File.create_inode t.st ~kind:Enc.Regular ~heat_group in
          Dirops.add_entry t.st ~dir:parent
            { Enc.name; entry_ino = inode.Enc.ino; entry_kind = Enc.Regular })

let exists t path = Option.is_some (Dirops.lookup t.st path)

let readdir t path =
  let* ino, kind = resolve t path in
  match kind with
  | Enc.Regular -> Error (Printf.sprintf "%s is not a directory" path)
  | Enc.Directory -> guard (fun () -> Dirops.entries t.st ino)

let unlink t path =
  let* ino, kind = resolve t path in
  guard (fun () ->
      (match kind with
      | Enc.Directory ->
          if Dirops.entries t.st ino <> [] then
            raise (State.Fs_error "directory not empty")
      | Enc.Regular -> ());
      if any_line_heated t ino then
        raise
          (State.Fs_error
             "file is heated (read-only): rm would invalidate the burned hash");
      match Dirops.parent_of t.st path with
      | Error e -> raise (State.Fs_error e)
      | Ok (parent, name) ->
          Dirops.remove_entry t.st ~dir:parent name;
          let inode = State.load_inode t.st ino in
          if inode.Enc.nlink <= 1 then File.delete t.st ino
          else begin
            State.mark_dirty t.st ino;
            State.cache_inode t.st
              { inode with Enc.nlink = inode.Enc.nlink - 1 }
          end)

let link t existing fresh =
  let* ino = resolve_file t existing in
  guard (fun () ->
      if any_line_heated t ino then
        raise
          (State.Fs_error
             "file is heated (read-only): ln would rewrite the inode");
      match Dirops.parent_of t.st fresh with
      | Error e -> raise (State.Fs_error e)
      | Ok (parent, name) ->
          let inode = State.load_inode t.st ino in
          State.mark_dirty t.st ino;
          State.cache_inode t.st { inode with Enc.nlink = inode.Enc.nlink + 1 };
          Dirops.add_entry t.st ~dir:parent
            { Enc.name; entry_ino = ino; entry_kind = Enc.Regular })

let write_file t path ~offset data =
  let* ino = resolve_file t path in
  guard (fun () ->
      if any_line_heated t ino then
        raise (State.Fs_error "file is heated (read-only)");
      Cleaner.maybe_clean t.st;
      File.write t.st ino ~offset data)

let append t path data =
  let* ino = resolve_file t path in
  guard (fun () ->
      if any_line_heated t ino then
        raise (State.Fs_error "file is heated (read-only)");
      Cleaner.maybe_clean t.st;
      let inode = State.load_inode t.st ino in
      File.write t.st ino ~offset:inode.Enc.size data)

let read_range t path ~offset ~len =
  let* ino = resolve_file t path in
  guard (fun () -> File.read t.st ino ~offset ~len)

let read_file t path =
  let* ino = resolve_file t path in
  guard (fun () ->
      let inode = State.load_inode t.st ino in
      File.read t.st ino ~offset:0 ~len:inode.Enc.size)

let file_size t path =
  let* ino = resolve_file t path in
  guard (fun () -> (State.load_inode t.st ino).Enc.size)

let heat t ?(strategy = Heat.Auto) path =
  let* ino = resolve_file t path in
  guard (fun () ->
      Cleaner.maybe_clean t.st;
      let r = Heat.heat_file t.st ~ino ~strategy in
      (* The burned state must be reachable after a crash, so the
         checkpoint needs every inode flushed — not just the heated
         one (its directory entry lives in a possibly-dirty parent). *)
      File.flush_all t.st;
      State.write_checkpoint t.st;
      State.flush_block_cache t.st;
      r)

let verify t path =
  let* ino = resolve_file t path in
  guard (fun () -> Heat.verify_file t.st ~ino)

let is_heated t path =
  let* ino = resolve_file t path in
  guard (fun () -> file_heated t ino)

let clean_now t =
  match Cleaner.select_victim t.st with
  | None -> 0
  | Some seg -> Cleaner.clean_segment t.st seg

type stats = {
  free_segments : int;
  heated_segments : int;
  closed_segments : int;
  partially_heated_segments : int;
  live_utilisation : float list;
  metrics : State.metrics;
  device : Sero.Device.stats;
}

let stats t =
  let st = t.st in
  let heated = ref 0 and closed = ref 0 and utils = ref [] in
  let partial = ref 0 in
  Array.iteri
    (fun i s ->
      if i >= State.first_data_segment st then begin
        (* Heated lines per segment, from device ground truth: the
           Section 4.1 bimodality claim is that segments are mostly
           heated or mostly unheated, never half-and-half. *)
        let heated_lines =
          List.length
            (List.filter
               (fun l -> Sero.Device.is_line_heated st.State.dev ~line:l)
               (State.lines_of_seg st i))
        in
        if heated_lines > 0 && heated_lines < st.State.policy.State.segment_lines
        then incr partial;
        match s.State.state with
        | Enc.Seg_heated -> incr heated
        | Enc.Seg_closed ->
            incr closed;
            utils := Cleaner.segment_utilisation st i :: !utils
        | Enc.Seg_free | Enc.Seg_open -> ()
      end)
    st.State.segs;
  {
    free_segments = State.free_segments st;
    heated_segments = !heated;
    closed_segments = !closed;
    partially_heated_segments = !partial;
    live_utilisation = List.rev !utils;
    metrics = st.State.metrics;
    device = Sero.Device.stats st.State.dev;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "segments: %d free, %d closed, %d heated@ \
     writes: %d user bytes, %d fs blocks, %d cleaner copies, %d heat \
     relocations, %d collateral frozen@ %a"
    s.free_segments s.closed_segments s.heated_segments
    s.metrics.State.user_bytes_written s.metrics.State.fs_block_writes
    s.metrics.State.cleaner_copies s.metrics.State.heat_relocations
    s.metrics.State.collateral_frozen Sero.Device.pp_stats s.device
