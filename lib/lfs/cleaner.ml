let rec is_live st ~pba owner =
  match owner with
  | Enc.Unused | Enc.Summary_block -> false
  | Enc.Data_of { o_ino; block_index } -> (
      match State.inode_pba st o_ino with
      | None -> Sim.Lru.mem st.State.icache o_ino && check_ptr st o_ino block_index pba
      | Some _ -> check_ptr st o_ino block_index pba)
  | Enc.Inode_of ino -> State.inode_pba st ino = Some pba
  | Enc.Indirect_of { o_ino; slot } -> (
      match
        (try Some (State.load_inode st o_ino) with State.Fs_error _ -> None)
      with
      | None -> false
      | Some inode -> (
          if slot = -1 then inode.Enc.single_ind = pba
          else if slot = -2 then inode.Enc.double_ind = pba
          else if inode.Enc.double_ind = 0 then false
          else
            match
              Enc.decode_pointer_block
                (State.read_payload st ~pba:inode.Enc.double_ind)
            with
            | Some root -> slot < Array.length root && root.(slot) = pba
            | None -> false))

and check_ptr st ino block_index pba =
  match (try Some (File.pointers st ino) with State.Fs_error _ -> None) with
  | None -> false
  | Some ptrs -> block_index < Array.length ptrs && ptrs.(block_index) = pba

let segment_utilisation (st : State.t) seg =
  float_of_int st.State.segs.(seg).State.live /. float_of_int st.State.usable_per_seg

let cleanable (st : State.t) seg =
  seg >= State.first_data_segment st
  && Enc.equal_seg_state st.State.segs.(seg).State.state Enc.Seg_closed

let select_victim st =
  let best = ref None in
  for seg = State.first_data_segment st to st.State.n_segs - 1 do
    (* A fully live segment reclaims nothing: copying it would consume
       as much space as it frees (and can live-lock the watermark
       loop), so it is never a victim. *)
    if cleanable st seg && st.State.segs.(seg).State.live < st.State.usable_per_seg
    then begin
      let s = st.State.segs.(seg) in
      let u = segment_utilisation st seg in
      let age = float_of_int (max 1 (st.State.seq - s.State.age + 1)) in
      let score =
        if s.State.live = 0 then infinity else (1. -. u) *. age /. (1. +. u)
      in
      match !best with
      | Some (_, best_score) when best_score >= score -> ()
      | _ -> best := Some (seg, score)
    end
  done;
  Option.map fst !best

let clean_segment st seg =
  let owners = State.segment_owners st seg in
  (* Take the victim out of circulation for the duration: while copies
     and inode flushes run, [free_block] may momentarily drop its live
     count to zero, and the auto-free transition would hand the segment
     straight back to the allocator mid-clean. *)
  st.State.segs.(seg).State.state <- Enc.Seg_open;
  let touched = Hashtbl.create 8 in
  let copies = ref 0 in
  Array.iteri
    (fun slot owner ->
      let pba = State.pba_of_slot st ~seg ~slot in
      match owner with
      | Enc.Unused | Enc.Summary_block -> ()
      | Enc.Data_of { o_ino; block_index } ->
          if is_live st ~pba owner then begin
            let payload = State.read_payload st ~pba in
            let inode = State.load_inode st o_ino in
            let new_pba =
              State.alloc_block st ~group:inode.Enc.heat_group
                ~owner:(Enc.Data_of { o_ino; block_index })
                payload
            in
            State.mark_dirty st o_ino;
            File.set_pointer st o_ino block_index new_pba;
            State.free_block st ~pba;
            Hashtbl.replace touched o_ino ();
            incr copies
          end
      | Enc.Inode_of ino | Enc.Indirect_of { o_ino = ino; _ } ->
          (* Metadata moves by re-flushing the inode, which rewrites the
             whole tree at the current log head and frees this block. *)
          if is_live st ~pba owner then begin
            State.mark_dirty st ino;
            Hashtbl.replace touched ino ();
            incr copies
          end)
    owners;
  let must_move pba = State.seg_of_pba st pba = seg in
  Hashtbl.iter
    (fun ino () ->
      State.mark_dirty st ino;
      File.flush_inode_with ~must_move st ino ~alloc:(fun ~owner payload ->
          State.alloc_block st
            ~group:(State.load_inode st ino).Enc.heat_group
            ~owner payload);
      Hashtbl.remove st.State.dirty ino)
    touched;
  let s = st.State.segs.(seg) in
  (* Everything live has been copied out; any residue is accounting
     drift, which would now be a bug. *)
  if s.State.live > 0 then begin
    (match Sys.getenv_opt "LFS_CLEAN_DEBUG" with
    | Some _ ->
        Array.iteri
          (fun slot owner ->
            let pba = State.pba_of_slot st ~seg ~slot in
            match owner with
            | Enc.Unused | Enc.Summary_block -> ()
            | Enc.Data_of { o_ino; block_index } ->
                Printf.eprintf "residual slot %d pba %d: data ino=%d bi=%d live=%b\n%!"
                  slot pba o_ino block_index (is_live st ~pba owner)
            | Enc.Inode_of ino ->
                Printf.eprintf "residual slot %d pba %d: inode ino=%d live=%b imap=%s\n%!"
                  slot pba ino (is_live st ~pba owner)
                  (match State.inode_pba st ino with Some p -> string_of_int p | None -> "-")
            | Enc.Indirect_of { o_ino; slot = k } ->
                Printf.eprintf "residual slot %d pba %d: indirect ino=%d k=%d live=%b\n%!"
                  slot pba o_ino k (is_live st ~pba owner))
          s.State.owners
    | None -> ());
    raise (State.Fs_error (Printf.sprintf "segment %d still live after clean" seg))
  end;
  s.State.state <- Enc.Seg_free;
  st.State.metrics.State.cleaner_copies <-
    st.State.metrics.State.cleaner_copies + !copies;
  st.State.metrics.State.segments_cleaned <-
    st.State.metrics.State.segments_cleaned + 1;
  !copies

(* Cleaning is background work: with a request pipeline attached, its
   copies are tagged [Background] so they only occupy the sled when no
   foreground request is waiting (and show up in the queue's
   background-class ledger). *)
let as_background st f =
  let saved = State.io_prio st in
  State.set_io_prio st Sero.Queue.Background;
  Fun.protect ~finally:(fun () -> State.set_io_prio st saved) f

let maybe_clean st =
  as_background st @@ fun () ->
  if State.free_segments st < st.State.policy.State.cleaner_low then begin
    let continue = ref true in
    (* Every victim has dead blocks (fully live segments are never
       selected), so each pass makes fractional progress.  Work per
       invocation is still bounded: on a nearly full device each clean
       reclaims almost nothing, and foreground writes should not stall
       behind an unbounded compaction — any remaining shortfall simply
       resurfaces at the next write. *)
    let budget = ref (st.State.policy.State.cleaner_high + 2) in
    while
      !continue && !budget > 0
      && State.free_segments st < st.State.policy.State.cleaner_high
    do
      decr budget;
      match select_victim st with
      | None -> continue := false
      | Some seg -> ignore (clean_segment st seg)
    done
  end
