(** The SERO device: the paper's six sector-level operations on top of
    the probe device.

    - {!read_block} / {!write_block} — the magnetic sector operations
      [mrs] / [mws];
    - {!read_hash_block} / the internal electrical write — [ers] / [ews];
    - {!heat_line} — the atomic read/hash/burn/verify sequence;
    - {!verify_line} — recompute and compare.

    Two properties the paper insists on are enforced here and nowhere
    else:

    {b Physical addressing.}  Blocks are addressed by PBA, every frame
    embeds its own PBA, and hashes live only in block 0 of each 2^N-
    aligned line, so a verifier always knows "exactly at which PBA to
    look for heated hashes" and a splicing attacker cannot present data
    as a hash (Section 5.1, fourth bullet).  The [strict_hash_locations]
    flag exists solely so experiment E10 can ablate this and demonstrate
    the splice going undetected.

    {b Tamper evidence, not prevention.}  Magnetic writes into heated
    lines are physically possible (the attacker has the hardware) and
    are not blocked — honest software should consult {!is_line_heated}.
    What the device guarantees is that {!verify_line} afterwards returns
    a {!Tamper.verdict} exposing the interference. *)

type t

type ras = {
  ras_enabled : bool;
      (** Master switch for read retry, burn re-pulse and torn-burn
          completion; tip sparing additionally needs [spare_tips > 0]. *)
  read_retries : int;  (** Extra {!read_block} attempts on failure. *)
  max_repulses : int;  (** Extra burn attempts before giving up. *)
  spare_tips : int;  (** Physical spare tips built into the array. *)
  scrub_threshold : int;
      (** Corrected-symbol count at which {!Scrub} rewrites a sector. *)
}

val default_ras : ras
(** Everything off — the fail-stop device of the paper. *)

val active_ras : ras
(** A serviceable profile: 3 retries, 2 re-pulses, 4 spare tips,
    rewrite at 6 corrected symbols. *)

type endurance = {
  health_enabled : bool;
      (** Gate for retirement {e decisions} ({!line_due}, {!maintenance},
          the Healthy/Degraded/Read-only state machine).  The health
          ledger itself observes unconditionally — observation never
          changes device behaviour. *)
  spare_lines : int;
      (** Lines reserved at format time at the top of the address space
          for grown-defect remapping ({!Layout.usable_lines}). *)
  ewma_alpha : float;  (** Smoothing for the per-line error EWMA. *)
  retire_margin : float;
      (** RS-budget margin at or below which a line is evacuated. *)
}

val default_endurance : endurance
(** Lifecycle off, no spares. *)

val active_endurance : endurance
(** Lifecycle on: 4 spare lines, alpha 0.4, retire at margin 0.5. *)

type config = {
  n_blocks : int;
  line_exp : int;  (** Lines are [2^line_exp] blocks. *)
  n_tips : int;
  seed : int;
  defect_rate : float;
  geometry : Physics.Constants.dot_geometry;
  material : Physics.Constants.material;
  costs : Probe.Timing.costs;
  erb_cycles : int;
  strict_hash_locations : bool;
      (** When [false] (ablation only), {!verify_line} accepts a burned
          hash found at {e any} block of the line. *)
  ras : ras;
  endurance : endurance;
}

val default_config : ?n_blocks:int -> ?line_exp:int -> unit -> config
(** 512 blocks in lines of 8, 32 tips, seed 42, no defects, 100 nm
    Co/Pt medium, default costs, 8 erb cycles, strict locations, RAS
    off. *)

val create : config -> t

val clone : ?plan:Fault.Plan.t -> t -> t
(** Copy-on-write snapshot for fleet fan-out: the medium shares every
    unmutated segment with the parent (each side pays per-segment copies
    only as it diverges), all mutable SERO state (generations, remap
    tables, health ledger, counters, probe ledgers) is deep-copied, and
    the clone's PRNG continues independently from the parent's current
    state.  Mutation/fault listeners are {e not} inherited — an observer
    attached to one device never sees the other's mutations, so clones
    cannot share or launder tamper evidence.  A live fault injector on
    the parent is never inherited either (its PRNG cursor and event
    ledger are the parent's history); pass [?plan] to arm the clone with
    a {e fresh} injector over that plan, so campaign fan-outs can fault
    clones independently while parent evidence still never crosses the
    clone boundary.  The clone starts parked (no scratch buffers; see
    {!park}). *)

val park : t -> unit
(** Return the device's scratch buffers to the per-domain pool.  A
    parked device holds no transient buffers (they re-materialise from
    the pool on the next operation), so thousands of idle clones cost
    only their state arrays. *)

val config : t -> config
val layout : t -> Layout.t
val pdevice : t -> Probe.Pdevice.t
val health : t -> Health.t
(** The per-line endurance ledger (indexed by logical line). *)

(** {1 Fault injection and servicing} *)

val install_fault : t -> Fault.Injector.t -> unit
(** Route the device's bit operations through a fault injector (see
    {!Probe.Pdevice.install_fault}); a configured power cut surfaces as
    {!Fault.Injector.Power_cut} from whatever device call was in
    flight. *)

val clear_fault : t -> unit

val fault_installed : t -> bool
(** Whether a fault injector is currently routed through the device's
    bit operations. *)

val on_fault_install : t -> (unit -> unit) -> unit
(** Register a callback that fires at each {!install_fault}, {e before}
    the injector arms.  The buffer cache uses this as a barrier: it
    flushes write-behind data through the still-healthy device and
    drops its copies, so a fault plan perturbs exactly the medium an
    uncached device would present. *)

val add_mutation_listener : t -> (pba:int -> n:int -> unit) -> unit
(** Register a callback fired after any operation that changes block
    contents on the medium — writes (including {!scrub_rewrite_block}
    and the raw attacker surface), successful {!heat_line} burns and
    torn-burn completions, and {!unsafe_magnetic_wipe} — with the
    affected PBA range.  Lets a cache above the device invalidate
    stale copies so they can never mask a tamper verdict. *)

val service_failed_tips : t -> int
(** Remap every failed logical tip onto a healthy spare (when [ras]
    reserves any); returns the number of remaps performed.  Called
    automatically by {!read_block}'s retry path and by {!Scrub}. *)

(** {1 Magnetic sector operations} *)

type write_error =
  | Reserved_hash_block  (** Block 0 of a line is not for data. *)
  | In_heated_line
      (** Honest firmware refuses to overwrite read-only data; attackers
          use {!unsafe_write_block}. *)
  | Read_only_device
      (** The endurance state machine has reached [Read_only]: spares
          are exhausted and a critically weak line cannot be evacuated,
          so the device stops taking writes to degrade gracefully. *)

type read_error =
  | Blank  (** Never written (or wiped): no valid frame. *)
  | Unreadable of Codec.Sector.error
  | Wrong_location of int  (** Frame decodes but was written for PBA [n]. *)

val write_block : t -> pba:int -> string -> (unit, write_error) result
(** [mws]: frame and magnetically write up to 512 bytes at [pba]. *)

val read_block : t -> pba:int -> (string, read_error) result
(** [mrs]: read and unframe the 512-byte payload at [pba].  With
    [ras.ras_enabled], a failed decode first remaps any failed tips
    ({!service_failed_tips}) and then re-reads up to
    [ras.read_retries] times — transient flips decorrelate between
    attempts ([stats] counts attempts and wins). *)

val read_blocks :
  t -> pba:int -> n:int -> (string, read_error) result array
(** [n] consecutive sectors [pba .. pba+n-1] in one sled pass — the
    coalescing primitive behind {!Queue}'s adjacent-request batching.
    When the bulk packed kernel applies (healthy tips, no fault
    injector, zero read noise, defect-free span, and block boundaries
    aligned on scan rows) the whole span is transferred in a single
    run; otherwise every block falls back to {!read_block}.  Results,
    counters, ledger charges and PRNG draws are identical to calling
    {!read_block} sequentially; the only possible divergence is the
    position of RAS retry re-reads for a corrupted non-blank frame
    (issued after the span rather than mid-pass).
    @raise Invalid_argument if the range leaves the device or [n <= 0]. *)

val pp_write_error : Format.formatter -> write_error -> unit
val pp_read_error : Format.formatter -> read_error -> unit

(** {1 Line operations} *)

type heat_error =
  | Unreadable_data of int list
      (** Data blocks that failed [mrs]; the line cannot be hashed.
          Write (e.g. zero-fill) them first. *)
  | Already_heated
  | Burn_verify_failed
      (** The post-burn read-back ([ers]) did not return the burned
          hash — device failure. *)

val heat_line :
  t -> line:int -> ?timestamp:float -> unit -> (Hash.Sha256.t, heat_error) result
(** The WO operation of Section 3: read blocks 1..2^N−1, hash them with
    their PBAs, burn the Manchester-encoded hash + metadata into block
    0's write-once area, and verify the burn.  Returns the burned hash.

    Recovery semantics: a {e torn} area (interrupted or underpowered
    earlier burn, see {!read_hash_block}) is completed idempotently —
    re-burning only fills the missing cells, and if the line's data no
    longer matches the burned prefix the completion creates HH cells
    and fails, preserving the tamper evidence.  With
    [ras.ras_enabled], an incomplete post-burn readback is re-pulsed
    up to [ras.max_repulses] times before [Burn_verify_failed]. *)

val pp_heat_error : Format.formatter -> heat_error -> unit

type burned_meta = {
  line : int;
  n_data_blocks : int;
  timestamp : float;
  hash : Hash.Sha256.t;
}

type torn = {
  burned_cells : int;  (** Cells carrying a valid Manchester symbol. *)
  partial_payload : string;  (** Blank cells decode as zero bits. *)
}

val read_hash_block :
  t ->
  line:int ->
  [ `Not_heated
  | `Burned of burned_meta
  | `Torn of torn
  | `Tampered of Tamper.evidence list ]
(** [ers]: electrically read line [line]'s write-once area.  [`Torn] is
    a mixed burned/blank area with {e no} HH cells — the signature of
    an interrupted burn (cells burn low-to-high, so a power cut leaves
    a prefix) or of underpowered pulses; {!verify_line} reports it as
    [Partially_burned] evidence until {!heat_line} completes it. *)

val verify_line : t -> line:int -> Tamper.verdict
(** Recompute the hash of the line's data blocks and compare against the
    burned hash; any discrepancy is evidence (Section 3, "Verify a
    heated line"). *)

val verify_region : t -> hash_pba:int -> data_pbas:int list -> Tamper.verdict
(** Verify an arbitrary (hash block, data blocks) region — the primitive
    behind the splice/coalesce attack study (E10).  A strict device
    rejects a [hash_pba] that is not a line's block 0 as evidence
    ([Address_mismatch]); the ablated device ([strict_hash_locations =
    false]) accepts any burned-looking area, which is exactly what lets
    the Section 5.1 splicing attack pass. *)

val is_line_heated : t -> line:int -> bool
(** Cheap cached query (maintained by heat/scan operations). *)

(** {1 Whole-device operations} *)

type scan_entry = { scanned_line : int; verdict : Tamper.verdict }

val scan : ?deep:bool -> t -> scan_entry list
(** The fsck-style recovery pass (Section 5.2: after an attacker clears
    the directory structure, "a scan of the medium would definitely
    recover (albeit slowly) all the heated files").  Reads every line's
    write-once area electrically; with [deep] also verifies the data of
    burned lines.  Rebuilds the heated-line cache as a side effect. *)

type block_class =
  | Healthy
  | Heated_block
  | Torn_block
  | Bad_block
  | Retired_block
      (** The block lies in the reserved spare region — a pristine spare
          or a retired carcass.  Owned by the endurance layer; must not
          be reported as a bad block by fsck or scrub inventories. *)

val classify_block : t -> pba:int -> block_class
(** The paper's bad-block challenge: "a heated block should not be
    misinterpreted as a bad block."  An unreadable block is probed
    electrically — heated dots answer the erb protocol as heated, while
    a merely defective (bad) block still holds reversible magnetisation.
    A hash block over a half-burned write-once area is [Torn_block]:
    recoverable by re-running {!heat_line}, not heated, not bad. *)

val pp_block_class : Format.formatter -> block_class -> unit

type device_state =
  | Healthy
  | Degraded  (** Spares exhausted; existing data still fully served. *)
  | Read_only
      (** A critically weak line cannot be evacuated: writes are refused
          ([Read_only_device]) so what is readable stays readable. *)

type stats = {
  n_lines : int;
  heated_lines : int;
  ro_fraction : float;
  wmrm_data_blocks_left : int;  (** Data blocks in unheated lines. *)
  heated_runs : int;
      (** Maximal runs of consecutive heated lines — low relative to
          [heated_lines] means well-clustered RO space (Section 4.1). *)
  elapsed : float;  (** Simulated seconds on the device ledger. *)
  energy : float;
  reads : int;  (** mrs count *)
  writes : int;  (** mws count *)
  heats : int;  (** heat_line count *)
  verifies : int;
  collateral_damage : int;  (** Dots destroyed as thermal bystanders. *)
  retries : int;  (** Extra read attempts made by the RAS path. *)
  retry_successes : int;  (** Retries that recovered the sector. *)
  repulses : int;  (** Extra burn pulses in {!heat_line}. *)
  remapped_tips : int;  (** Failed tips remapped onto spares. *)
  scrub_rewrites : int;  (** Sectors refreshed by {!Scrub}. *)
  torn_completions : int;  (** Torn burns completed by {!heat_line}. *)
  line_retirements : int;  (** Lines evacuated onto spares. *)
  reattest_failures : int;
      (** Migrations refused or failed because the evidence chain would
          not survive the move. *)
  spare_lines_left : int;
  state : device_state;
}

val stats : t -> stats
val is_fully_ro : t -> bool
(** Device end-of-life: every line heated (Section 8, the device
    "ends life as a Read-only device"). *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Raw access (attacker / test surface)}

    These bypass the honest firmware checks but obey physics: magnetic
    writes cannot alter heated dots and electrical writes are one-way. *)

val scrub_rewrite_block : t -> pba:int -> string -> unit
(** Rewrite a decaying sector in place with a fresh frame (scrubber
    use; counted in [stats.scrub_rewrites]). *)

val unsafe_write_block : t -> pba:int -> string -> unit
(** Frame and magnetically write anywhere, including heated lines and
    hash blocks. *)

val unsafe_write_raw : t -> pba:int -> string -> unit
(** Write a pre-framed 604-byte image verbatim (lets an attacker forge a
    frame whose embedded PBA differs from where it lands). *)

val unsafe_read_raw : t -> pba:int -> string
(** The raw framed bytes as the magnetic channel returns them. *)

val read_raw_view : t -> pba:int -> Bytes.t
(** Like {!unsafe_read_raw} but returning a {e view} of the device's
    internal scratch buffer instead of a fresh string: zero-copy, valid
    only until the next device operation (any read, write, heat or
    verify overwrites it), and never to be mutated.  Callers that need
    the image past the next call must copy ({!unsafe_read_raw}). *)

val bytes_copied : t -> int
(** Running total of payload-sized bytes the device had to copy into
    freshly materialised buffers (bool-array fallback paths, retained
    {!unsafe_read_raw} strings).  The packed zero-copy read/write paths
    leave it untouched — the bench counters assert exactly that. *)

val unsafe_forge_burn :
  t -> hash_pba:int -> data_pbas:int list -> claim_line:int -> unit
(** Burn a structurally valid hash+metadata area at an arbitrary block,
    covering [data_pbas] and claiming region id [claim_line] — the
    splice/coalesce forgery of Section 5.1.  {!verify_region} on a
    strict device still rejects it by location; the ablated device
    accepts it (E10). *)

val unsafe_heat_dots : t -> dot:int -> n:int -> unit
(** Apply ewb pulses to [n] consecutive dots starting at [dot]. *)

val unsafe_magnetic_wipe : t -> unit
(** Bulk eraser (Section 5.2): drives every dot's magnetisation to a
    single direction.  Heated dots are unaffected — they have no
    perpendicular axis left — so burned evidence survives. *)

val refresh_heated_cache : t -> unit
(** Re-derive the heated-line cache from the medium (used after raw
    attacks so honest queries see ground truth). *)

(** {1 Endurance lifecycle}

    The graceful-degradation layer over the health ledger: spare lines
    reserved at format time, a grown-defect remap table (logical line ->
    physical line permutation; frames keep their logical PBAs so a
    migrated line reproduces its burned hash at its new home), and
    evacuate-and-re-attest migration off weakening lines before the RS
    budget exhausts. *)

val device_state : t -> device_state
val pp_device_state : Format.formatter -> device_state -> unit

type migration = {
  m_line : int;  (** Logical line that was rehomed. *)
  m_from : int;  (** Physical line it vacated (the carcass). *)
  m_to : int;  (** Physical line now serving it. *)
  m_heated : bool;
  m_hash : Hash.Sha256.t option;
      (** The burned hash carried across — the old->new attestation
          link.  {!verify_line} on the quarantined carcass checks its
          burn against this, and the re-burned area at the new home
          must reproduce it exactly. *)
  m_timestamp : float;
}

val migrations : t -> migration list
(** The grown-defect list, oldest first. *)

val spares_left : t -> int

val spare_pool : t -> int list
(** Physical line ids of the unused spares (image persistence). *)

val phys_of_line : t -> line:int -> int
(** Current physical line serving a logical line (identity until the
    line is retired). *)

val quarantined : t -> line:int -> bool
(** Whether logical [line] (necessarily in the spare region) addresses
    a retired carcass.  {!verify_line} and {!scan} judge such lines
    against their migration link, never against the superseded data. *)

type migrate_error =
  | No_spare
  | Line_quarantined
  | Source_unreadable of int list
      (** Data blocks that could not be read even through RAS; the line
          cannot be relocated without loss and is left in place. *)
  | Reattest_failed
      (** The source is tamper-evident (hash mismatch, torn or tampered
          write-once area) or the re-burn failed verification: migrating
          would launder the evidence, so the line stays. *)

val evacuate_line :
  t -> line:int -> ?timestamp:float -> unit -> (migration, migrate_error) result
(** Relocate a usable logical line onto a fresh spare: read every data
    payload through the current mapping, pre-image the spare (frames
    with logical PBAs and bumped generations, explicit blanks for
    unwritten slots), swap the remap entries (the commit point), and —
    for a heated line — re-burn the {e original} hash and metadata at
    the new home and verify the burn.  A power cut before the swap
    leaves the old line serving; a cut during the re-burn leaves a torn
    area over complete matching data, which [Fs.recover]'s torn-burn
    completion finishes to the identical hash and timestamp.  Mutation
    listeners fire over both affected line ranges (cache coherence).
    @raise Invalid_argument if [line] is not a usable line. *)

val pp_migrate_error : Format.formatter -> migrate_error -> unit

val line_margin : t -> line:int -> float
(** {!Health.margin} of the line's ledger entry. *)

val line_due : t -> line:int -> bool
(** Whether the endurance policy wants this line evacuated (lifecycle
    enabled, margin at or below the retirement threshold, not already
    rehomed onto a spare that is itself failing). *)

val next_due : t -> int option
(** The weakest due line, if any — what a background migration task
    should evacuate next. *)

val maintenance : t -> ?timestamp:float -> unit -> migration list
(** One synchronous maintenance sweep: evacuate every due line, weakest
    first, while spares last; failed evacuations are skipped.  Updates
    the device state machine and returns the performed migrations. *)

(** {1 Image persistence hooks} *)

val restore_endurance :
  t ->
  phys_line:int array ->
  spare_pool:int list ->
  migrations:migration list ->
  state:device_state ->
  unit
(** Overwrite the remap table, spare pool, grown-defect list and state
    machine from a loaded image (the inverse permutation and carcass
    flags are rebuilt).  Follow with {!refresh_heated_cache}. *)
