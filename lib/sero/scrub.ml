type config = {
  correction_threshold : int;
  period : float;
  deep_verify : bool;
}

let default_config =
  { correction_threshold = 6; period = 3600.; deep_verify = false }

type report = {
  lines_swept : int;
  sectors_checked : int;
  rewritten : int;
  unrecoverable : int list;
  tips_remapped : int;
  torn_completed : int list;
  tamper_found : (int * Tamper.verdict) list;
}

(* Erased-block detection: a written sector carries header, CRC and RS
   parity, so its image is dense in set bits.  A handful of set bits is
   a blank block that caught stray flips, not a destroyed sector. *)
let effectively_blank s =
  let popcount = ref 0 in
  String.iter
    (fun c ->
      let b = ref (Char.code c) in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr popcount
      done)
    s;
  !popcount < 32

let pass ?(config = default_config) dev =
  let lay = Device.layout dev in
  (* Remap first so the sweep itself reads through healthy spares. *)
  let tips_remapped = Device.service_failed_tips dev in
  let checked = ref 0 and rewritten = ref 0 in
  let unrecoverable = ref [] in
  let torn_completed = ref [] in
  let tamper = ref [] in
  let n_lines = Layout.n_lines lay in
  for line = 0 to n_lines - 1 do
    match Device.read_hash_block dev ~line with
    | `Not_heated ->
        (* WMRM territory: refresh decaying sectors before the RS
           budget runs out. *)
        Layout.iter_data_blocks lay line (fun pba ->
            let image = Device.unsafe_read_raw dev ~pba in
            if not (effectively_blank image) then begin
              incr checked;
              match Codec.Sector.decode image with
              | Ok d when d.Codec.Sector.pba = pba ->
                  if
                    d.Codec.Sector.corrected_symbols
                    >= config.correction_threshold
                  then begin
                    Device.scrub_rewrite_block dev ~pba
                      d.Codec.Sector.payload;
                    incr rewritten
                  end
              | Ok _ | Error _ -> (
                  (* Undecodable in one shot: give the device's RAS
                     read path (retry + remap) a chance. *)
                  match Device.read_block dev ~pba with
                  | Ok payload ->
                      Device.scrub_rewrite_block dev ~pba payload;
                      incr rewritten
                  | Error Device.Blank -> ()
                  | Error _ -> unrecoverable := pba :: !unrecoverable)
            end)
    | `Torn _ -> (
        match Device.heat_line dev ~line () with
        | Ok _ -> torn_completed := line :: !torn_completed
        | Error _ ->
            tamper :=
              (line, Tamper.Tampered [ Tamper.Partially_burned ]) :: !tamper)
    | `Burned _ ->
        if config.deep_verify then (
          match Device.verify_line dev ~line with
          | Tamper.Intact -> ()
          | v -> tamper := (line, v) :: !tamper)
    | `Tampered evs -> tamper := (line, Tamper.Tampered evs) :: !tamper
  done;
  {
    lines_swept = n_lines;
    sectors_checked = !checked;
    rewritten = !rewritten;
    unrecoverable = List.rev !unrecoverable;
    tips_remapped;
    torn_completed = List.rev !torn_completed;
    tamper_found = List.rev !tamper;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "scrub: %d lines, %d sectors checked, %d rewritten, %d unrecoverable, %d \
     tips remapped, %d torn completed, %d tampered"
    r.lines_swept r.sectors_checked r.rewritten
    (List.length r.unrecoverable)
    r.tips_remapped
    (List.length r.torn_completed)
    (List.length r.tamper_found)

let schedule ?(config = default_config) des dev ~on_pass =
  let rec arm () =
    Sim.Des.schedule des ~delay:config.period (fun _ ->
        on_pass (pass ~config dev);
        arm ())
  in
  arm ()
