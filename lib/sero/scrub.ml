type config = {
  correction_threshold : int;
  period : float;
  deep_verify : bool;
}

let default_config =
  { correction_threshold = 6; period = 3600.; deep_verify = false }

type report = {
  lines_swept : int;
  sectors_checked : int;
  rewritten : int;
  unrecoverable : int list;
  tips_remapped : int;
  torn_completed : int list;
  tamper_found : (int * Tamper.verdict) list;
  retired_skipped : int;
}

(* Erased-block detection: a written sector carries header, CRC and RS
   parity, so its image is dense in set bits.  A handful of set bits is
   a blank block that caught stray flips, not a destroyed sector. *)
let effectively_blank b =
  let popcount = ref 0 in
  Bytes.iter
    (fun c ->
      let v = ref (Char.code c) in
      while !v <> 0 do
        v := !v land (!v - 1);
        incr popcount
      done)
    b;
  !popcount < 32

type progress = {
  mutable p_lines_swept : int;
  mutable p_sectors_checked : int;
  mutable p_rewritten : int;
  mutable p_unrecoverable : int list; (* reversed *)
  mutable p_tips_remapped : int;
  mutable p_torn_completed : int list; (* reversed *)
  mutable p_tamper_found : (int * Tamper.verdict) list; (* reversed *)
  mutable p_retired_skipped : int;
}

let progress_create () =
  {
    p_lines_swept = 0;
    p_sectors_checked = 0;
    p_rewritten = 0;
    p_unrecoverable = [];
    p_tips_remapped = 0;
    p_torn_completed = [];
    p_tamper_found = [];
    p_retired_skipped = 0;
  }

let add_remapped p n = p.p_tips_remapped <- p.p_tips_remapped + n

let report_of_progress p =
  {
    lines_swept = p.p_lines_swept;
    sectors_checked = p.p_sectors_checked;
    rewritten = p.p_rewritten;
    unrecoverable = List.rev p.p_unrecoverable;
    tips_remapped = p.p_tips_remapped;
    torn_completed = List.rev p.p_torn_completed;
    tamper_found = List.rev p.p_tamper_found;
    retired_skipped = p.p_retired_skipped;
  }

let sweep_line ?(config = default_config) dev prog ~line =
  let lay = Device.layout dev in
  (* The spare region is the endurance layer's: pristine spares are
     blank by construction and quarantined carcasses are frozen
     evidence — refreshing either would defeat its purpose. *)
  if Layout.is_spare_line lay line then
    prog.p_retired_skipped <- prog.p_retired_skipped + 1
  else begin
  prog.p_lines_swept <- prog.p_lines_swept + 1;
  match Device.read_hash_block dev ~line with
  | `Not_heated ->
      (* WMRM territory: refresh decaying sectors before the RS
         budget runs out. *)
      Layout.iter_data_blocks lay line (fun pba ->
          (* A scratch view, decoded in place — the view is consumed
             before the next device call could overwrite it. *)
          let image = Device.read_raw_view dev ~pba in
          if not (effectively_blank image) then begin
            prog.p_sectors_checked <- prog.p_sectors_checked + 1;
            match Codec.Sector.decode_sub image ~off:0 with
            | Ok d when d.Codec.Sector.pba = pba ->
                (* The scrubber's direct decode bypasses the device read
                   path, so feed the health ledger here too. *)
                Health.note_decode (Device.health dev) ~line
                  ~corrected:d.Codec.Sector.corrected_symbols;
                if
                  d.Codec.Sector.corrected_symbols
                  >= config.correction_threshold
                then begin
                  Device.scrub_rewrite_block dev ~pba
                    d.Codec.Sector.payload;
                  prog.p_rewritten <- prog.p_rewritten + 1
                end
            | Ok _ | Error _ -> (
                (* Undecodable in one shot: give the device's RAS
                   read path (retry + remap) a chance. *)
                match Device.read_block dev ~pba with
                | Ok payload ->
                    Device.scrub_rewrite_block dev ~pba payload;
                    prog.p_rewritten <- prog.p_rewritten + 1
                | Error Device.Blank -> ()
                | Error _ ->
                    prog.p_unrecoverable <- pba :: prog.p_unrecoverable)
          end)
  | `Torn _ -> (
      match Device.heat_line dev ~line () with
      | Ok _ -> prog.p_torn_completed <- line :: prog.p_torn_completed
      | Error _ ->
          prog.p_tamper_found <-
            (line, Tamper.Tampered [ Tamper.Partially_burned ])
            :: prog.p_tamper_found)
  | `Burned _ ->
      if config.deep_verify then (
        match Device.verify_line dev ~line with
        | Tamper.Intact -> ()
        | v -> prog.p_tamper_found <- (line, v) :: prog.p_tamper_found)
  | `Tampered evs ->
      prog.p_tamper_found <-
        (line, Tamper.Tampered evs) :: prog.p_tamper_found
  end

(* ------------------------------------------------------------------ *)
(* Sweep planners                                                      *)

type policy = Sequential | Weakest_first | Sampled of int

type planner = {
  pol : policy;
  pdev : Device.t;
  prng : Sim.Prng.t option;
  mutable todo : int list;
}

let planner ?(policy = Sequential) dev =
  {
    pol = policy;
    pdev = dev;
    prng =
      (match policy with
      | Sampled seed -> Some (Sim.Prng.create seed)
      | Sequential | Weakest_first -> None);
    todo = [];
  }

let planner_policy p = p.pol

let refill p =
  let n = Layout.n_lines (Device.layout p.pdev) in
  match p.pol with
  | Sequential -> p.todo <- List.init n Fun.id
  | Weakest_first ->
      (* One full round per refill, weakest margins first: every line is
         still visited each round (no starvation), but the ones closest
         to exhausting their RS budget are verified soonest.  The sort
         is stable with line-ascending input, so ties break low. *)
      let h = Device.health p.pdev in
      p.todo <-
        List.stable_sort
          (fun a b -> compare (Health.margin h ~line:a) (Health.margin h ~line:b))
          (List.init n Fun.id)
  | Sampled _ ->
      (* Memoryless uniform sampling: each slot draws a fresh line from
         the planner's private stream, so an adversary cannot predict
         coverage from the sweep history. *)
      p.todo <- [ Sim.Prng.int (Option.get p.prng) n ]

let planner_position p =
  if p.todo = [] then refill p;
  List.hd p.todo

let planner_next p =
  let line = planner_position p in
  p.todo <- List.tl p.todo;
  line

let pass ?(config = default_config) dev =
  let lay = Device.layout dev in
  let prog = progress_create () in
  (* Remap first so the sweep itself reads through healthy spares. *)
  prog.p_tips_remapped <- Device.service_failed_tips dev;
  for line = 0 to Layout.n_lines lay - 1 do
    sweep_line ~config dev prog ~line
  done;
  report_of_progress prog

let pp_report ppf r =
  Format.fprintf ppf
    "scrub: %d lines, %d sectors checked, %d rewritten, %d unrecoverable, %d \
     tips remapped, %d torn completed, %d tampered, %d retired skipped"
    r.lines_swept r.sectors_checked r.rewritten
    (List.length r.unrecoverable)
    r.tips_remapped
    (List.length r.torn_completed)
    (List.length r.tamper_found)
    r.retired_skipped

let schedule ?(config = default_config) des dev ~on_pass =
  let rec arm () =
    Sim.Des.schedule des ~delay:config.period (fun _ ->
        on_pass (pass ~config dev);
        arm ())
  in
  arm ()
