(** Physical layout: how blocks and lines map onto dot addresses.

    A {e block} is one 512-byte sector occupying
    {!Codec.Sector.physical_bits} dots.  A {e line} is a sequence of
    [2^N] contiguous blocks aligned on a [2^N]-block boundary
    (Section 3, "Heat a line"); block 0 of a line carries the burned
    hash and metadata in its write-once area, blocks 1..2^N-1 carry
    magnetically written data.

    The device addresses blocks by {e physical} block address (PBA)
    only — the paper's addressing requirement — so this module is pure
    arithmetic with no indirection. *)

type t = {
  n_blocks : int;
  line_exp : int;  (** N; a line is [2^N] blocks. *)
  spare_lines : int;
      (** Lines reserved at the top of the address space for grown-defect
          remapping; honest software allocates only in
          [0 .. usable_lines-1]. *)
}

val create : ?spare_lines:int -> n_blocks:int -> line_exp:int -> unit -> t
(** @raise Invalid_argument unless [n_blocks] is a positive multiple of
    [2^line_exp], [line_exp >= 1] and [0 <= spare_lines < n_lines]. *)

val blocks_per_line : t -> int
val data_blocks_per_line : t -> int
(** [2^N - 1]. *)

val n_lines : t -> int

val n_spare_lines : t -> int
val usable_lines : t -> int
(** [n_lines - spare_lines]: the lines honest software may allocate in.
    The spare region above is owned by the device's endurance layer. *)

val usable_blocks : t -> int
(** [usable_lines * blocks_per_line]. *)

val is_spare_line : t -> int -> bool
(** Whether line [l] lies in the reserved spare region. *)

val block_dots : int
(** Dots occupied by one block ({!Codec.Sector.physical_bits}). *)

val wo_area_dots : int
(** Dots of the write-once area inside a line's block 0: 4096 (the
    block's 512-byte payload expressed as raw dots — Figure 3's "bit
    number 0..4095"). *)

val wo_area_bytes : int
(** Logical bytes the Manchester-encoded write-once area holds: 256. *)

val total_dots : t -> int

val line_of_block : t -> int -> int
(** @raise Invalid_argument if the PBA is out of range. *)

val hash_block_of_line : t -> int -> int
(** PBA of line [l]'s block 0 — the known physical location where the
    burned hash must live. *)

val is_hash_block : t -> int -> bool
val data_blocks_of_line : t -> int -> int list
(** PBAs of blocks 1..2^N-1 of line [l], in order. *)

val first_data_block : t -> int -> int
(** PBA of block 1 of line [l] — [List.hd (data_blocks_of_line t l)]
    without building the list. *)

val iter_data_blocks : t -> int -> (int -> unit) -> unit
(** Visit the PBAs of {!data_blocks_of_line} in order without
    allocating the list (the per-line hot loops of {!Device} and
    {!Scrub}). *)

val block_first_dot : t -> int -> int
(** First dot address of a block. *)

val wo_first_dot : t -> line:int -> int
(** First dot of line [l]'s write-once area. *)

val space_overhead : t -> float
(** Fraction of blocks lost to hash blocks: [1 / 2^N] (Section 8,
    "Efficiency"). *)
