let magic = "SEROIMG3"

let write_float = Codec.Binio.W.f64
let read_float = Codec.Binio.R.f64

let save (dev : Device.t) path =
  let cfg = Device.config dev in
  let medium = Probe.Pdevice.medium (Device.pdevice dev) in
  let w = Codec.Binio.W.create ~capacity:4096 () in
  Codec.Binio.W.raw w magic;
  Codec.Binio.W.u32 w cfg.Device.n_blocks;
  Codec.Binio.W.u8 w cfg.Device.line_exp;
  Codec.Binio.W.u16 w cfg.Device.n_tips;
  Codec.Binio.W.u32 w cfg.Device.seed;
  write_float w cfg.Device.defect_rate;
  (* Geometry *)
  write_float w cfg.Device.geometry.Physics.Constants.diameter;
  write_float w cfg.Device.geometry.Physics.Constants.thickness;
  write_float w cfg.Device.geometry.Physics.Constants.pitch;
  (* Material *)
  Codec.Binio.W.str w cfg.Device.material.Physics.Constants.label;
  write_float w cfg.Device.material.Physics.Constants.k_interface;
  write_float w cfg.Device.material.Physics.Constants.ms;
  write_float w cfg.Device.material.Physics.Constants.bilayer_period;
  Codec.Binio.W.u16 w cfg.Device.material.Physics.Constants.n_bilayers;
  write_float w cfg.Device.material.Physics.Constants.mix_activation_energy;
  write_float w cfg.Device.material.Physics.Constants.mix_attempt_rate;
  write_float w cfg.Device.material.Physics.Constants.cryst_activation_energy;
  write_float w cfg.Device.material.Physics.Constants.cryst_attempt_rate;
  write_float w cfg.Device.material.Physics.Constants.anneal_duration;
  Codec.Binio.W.u8 w cfg.Device.erb_cycles;
  Codec.Binio.W.u8 w (if cfg.Device.strict_hash_locations then 1 else 0);
  (* RAS profile (format v3) *)
  Codec.Binio.W.u8 w (if cfg.Device.ras.Device.ras_enabled then 1 else 0);
  Codec.Binio.W.u8 w cfg.Device.ras.Device.read_retries;
  Codec.Binio.W.u8 w cfg.Device.ras.Device.max_repulses;
  Codec.Binio.W.u8 w cfg.Device.ras.Device.spare_tips;
  Codec.Binio.W.u16 w cfg.Device.ras.Device.scrub_threshold;
  (* Dot states: 2 bits per dot, packed as the oracle sees them. *)
  let n = Pmedia.Medium.size medium in
  Codec.Binio.W.u32 w n;
  let packed = Bytes.make ((n + 3) / 4) '\x00' in
  for i = 0 to n - 1 do
    let v =
      match Pmedia.Medium.get medium i with
      | Pmedia.Dot.Magnetised Pmedia.Dot.Down -> 0
      | Pmedia.Dot.Magnetised Pmedia.Dot.Up -> 1
      | Pmedia.Dot.Heated -> 2
    in
    let byte = i / 4 and shift = 2 * (i mod 4) in
    Bytes.set packed byte
      (Char.chr (Char.code (Bytes.get packed byte) lor (v lsl shift)))
  done;
  Codec.Binio.W.str w (Bytes.unsafe_to_string packed);
  let body = Codec.Binio.W.contents w in
  let crc = Int32.to_int (Codec.Crc32.string body) land 0xFFFFFFFF in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc body;
      let tail = Codec.Binio.W.create () in
      Codec.Binio.W.u32 tail crc;
      output_string oc (Codec.Binio.W.contents tail))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | raw ->
      if String.length raw < 12 then Error "image too short"
      else begin
        let body = String.sub raw 0 (String.length raw - 4) in
        let crc_r = Codec.Binio.R.of_string ~off:(String.length raw - 4) raw in
        let stored_crc = Codec.Binio.R.u32 crc_r in
        if Int32.to_int (Codec.Crc32.string body) land 0xFFFFFFFF <> stored_crc
        then Error "image checksum mismatch"
        else begin
          let r = Codec.Binio.R.of_string body in
          match
            let m = Codec.Binio.R.raw r (String.length magic) in
            if not (String.equal m magic) then failwith "bad magic";
            let n_blocks = Codec.Binio.R.u32 r in
            let line_exp = Codec.Binio.R.u8 r in
            let n_tips = Codec.Binio.R.u16 r in
            let seed = Codec.Binio.R.u32 r in
            let defect_rate = read_float r in
            let diameter = read_float r in
            let thickness = read_float r in
            let pitch = read_float r in
            let label = Codec.Binio.R.str r in
            let k_interface = read_float r in
            let ms = read_float r in
            let bilayer_period = read_float r in
            let n_bilayers = Codec.Binio.R.u16 r in
            let mix_activation_energy = read_float r in
            let mix_attempt_rate = read_float r in
            let cryst_activation_energy = read_float r in
            let cryst_attempt_rate = read_float r in
            let anneal_duration = read_float r in
            let erb_cycles = Codec.Binio.R.u8 r in
            let strict = Codec.Binio.R.u8 r = 1 in
            let ras_enabled = Codec.Binio.R.u8 r = 1 in
            let read_retries = Codec.Binio.R.u8 r in
            let max_repulses = Codec.Binio.R.u8 r in
            let spare_tips = Codec.Binio.R.u8 r in
            let scrub_threshold = Codec.Binio.R.u16 r in
            let n = Codec.Binio.R.u32 r in
            let packed = Codec.Binio.R.str r in
            let config =
              {
                Device.n_blocks;
                line_exp;
                n_tips;
                seed;
                defect_rate;
                geometry = { Physics.Constants.diameter; thickness; pitch };
                material =
                  {
                    Physics.Constants.label;
                    k_interface;
                    ms;
                    bilayer_period;
                    n_bilayers;
                    mix_activation_energy;
                    mix_attempt_rate;
                    cryst_activation_energy;
                    cryst_attempt_rate;
                    anneal_duration;
                  };
                costs = Probe.Timing.default_costs;
                erb_cycles;
                strict_hash_locations = strict;
                ras =
                  {
                    Device.ras_enabled;
                    read_retries;
                    max_repulses;
                    spare_tips;
                    scrub_threshold;
                  };
              }
            in
            let dev = Device.create config in
            let medium = Probe.Pdevice.medium (Device.pdevice dev) in
            if Pmedia.Medium.size medium <> n then failwith "size mismatch";
            for i = 0 to n - 1 do
              let byte = Char.code packed.[i / 4] in
              let v = (byte lsr (2 * (i mod 4))) land 3 in
              Pmedia.Medium.set medium i
                (match v with
                | 0 -> Pmedia.Dot.Magnetised Pmedia.Dot.Down
                | 1 -> Pmedia.Dot.Magnetised Pmedia.Dot.Up
                | _ -> Pmedia.Dot.Heated)
            done;
            Device.refresh_heated_cache dev;
            dev
          with
          | exception Failure e -> Error e
          | exception Codec.Binio.R.Truncated -> Error "image truncated"
          | dev -> Ok dev
        end
      end
