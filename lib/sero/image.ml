let magic_v3 = "SEROIMG3"
let magic_v4 = "SEROIMG4"

let write_float = Codec.Binio.W.f64
let read_float = Codec.Binio.R.f64

let dstate_code = function
  | Device.Healthy -> 0
  | Device.Degraded -> 1
  | Device.Read_only -> 2

let dstate_of_code = function
  | 0 -> Device.Healthy
  | 1 -> Device.Degraded
  | 2 -> Device.Read_only
  | _ -> failwith "bad device state"

let write_endurance w (dev : Device.t) =
  let cfg = Device.config dev in
  let lay = Device.layout dev in
  let e = cfg.Device.endurance in
  Codec.Binio.W.u8 w (if e.Device.health_enabled then 1 else 0);
  write_float w e.Device.ewma_alpha;
  write_float w e.Device.retire_margin;
  Codec.Binio.W.u16 w e.Device.spare_lines;
  Codec.Binio.W.u8 w (dstate_code (Device.device_state dev));
  let n_lines = Layout.n_lines lay in
  for l = 0 to n_lines - 1 do
    Codec.Binio.W.u32 w (Device.phys_of_line dev ~line:l)
  done;
  let pool = Device.spare_pool dev in
  Codec.Binio.W.u16 w (List.length pool);
  List.iter (Codec.Binio.W.u32 w) pool;
  let health = Device.health dev in
  for l = 0 to n_lines - 1 do
    let h = Health.line health ~line:l in
    write_float w h.Health.ewma_corrected;
    Codec.Binio.W.u32 w h.Health.reads;
    Codec.Binio.W.u32 w h.Health.retries;
    Codec.Binio.W.u32 w h.Health.retry_wins;
    Codec.Binio.W.u32 w h.Health.unreadable;
    Codec.Binio.W.u32 w h.Health.defect_dots
  done;
  Codec.Binio.W.u32 w (Health.tip_remaps health);
  let migrations = Device.migrations dev in
  Codec.Binio.W.u16 w (List.length migrations);
  List.iter
    (fun (m : Device.migration) ->
      Codec.Binio.W.u32 w m.Device.m_line;
      Codec.Binio.W.u32 w m.Device.m_from;
      Codec.Binio.W.u32 w m.Device.m_to;
      Codec.Binio.W.u8 w (if m.Device.m_heated then 1 else 0);
      (match m.Device.m_hash with
      | None ->
          Codec.Binio.W.u8 w 0;
          Codec.Binio.W.raw w (String.make 32 '\x00')
      | Some h ->
          Codec.Binio.W.u8 w 1;
          Codec.Binio.W.raw w (Hash.Sha256.to_raw h));
      write_float w m.Device.m_timestamp)
    migrations

let read_endurance_config r =
  let health_enabled = Codec.Binio.R.u8 r = 1 in
  let ewma_alpha = read_float r in
  let retire_margin = read_float r in
  let spare_lines = Codec.Binio.R.u16 r in
  { Device.health_enabled; spare_lines; ewma_alpha; retire_margin }

(* The device must already exist (the remap table length is the line
   count, known only from the geometry fields read before it). *)
let restore_endurance_state r (dev : Device.t) =
  let lay = Device.layout dev in
  let n_lines = Layout.n_lines lay in
  let state = dstate_of_code (Codec.Binio.R.u8 r) in
  let phys_line = Array.init n_lines (fun _ -> Codec.Binio.R.u32 r) in
  let n_pool = Codec.Binio.R.u16 r in
  let spare_pool = List.init n_pool (fun _ -> Codec.Binio.R.u32 r) in
  let health = Device.health dev in
  for l = 0 to n_lines - 1 do
    let ewma = read_float r in
    let reads = Codec.Binio.R.u32 r in
    let retries = Codec.Binio.R.u32 r in
    let retry_wins = Codec.Binio.R.u32 r in
    let unreadable = Codec.Binio.R.u32 r in
    let defect_dots = Codec.Binio.R.u32 r in
    Health.restore_line health ~line:l ~ewma ~reads ~retries ~retry_wins
      ~unreadable ~defect_dots
  done;
  Health.set_tip_remaps health (Codec.Binio.R.u32 r);
  let n_migrations = Codec.Binio.R.u16 r in
  let migrations =
    List.init n_migrations (fun _ ->
        let m_line = Codec.Binio.R.u32 r in
        let m_from = Codec.Binio.R.u32 r in
        let m_to = Codec.Binio.R.u32 r in
        let m_heated = Codec.Binio.R.u8 r = 1 in
        let has_hash = Codec.Binio.R.u8 r = 1 in
        let raw_hash = Codec.Binio.R.raw r 32 in
        let m_hash =
          if has_hash then Some (Hash.Sha256.of_raw raw_hash) else None
        in
        let m_timestamp = read_float r in
        { Device.m_line; m_from; m_to; m_heated; m_hash; m_timestamp })
  in
  Device.restore_endurance dev ~phys_line ~spare_pool ~migrations ~state

let save ?(format = `V4) (dev : Device.t) path =
  let cfg = Device.config dev in
  let medium = Probe.Pdevice.medium (Device.pdevice dev) in
  let w = Codec.Binio.W.create ~capacity:4096 () in
  Codec.Binio.W.raw w (match format with `V3 -> magic_v3 | `V4 -> magic_v4);
  Codec.Binio.W.u32 w cfg.Device.n_blocks;
  Codec.Binio.W.u8 w cfg.Device.line_exp;
  Codec.Binio.W.u16 w cfg.Device.n_tips;
  Codec.Binio.W.u32 w cfg.Device.seed;
  write_float w cfg.Device.defect_rate;
  (* Geometry *)
  write_float w cfg.Device.geometry.Physics.Constants.diameter;
  write_float w cfg.Device.geometry.Physics.Constants.thickness;
  write_float w cfg.Device.geometry.Physics.Constants.pitch;
  (* Material *)
  Codec.Binio.W.str w cfg.Device.material.Physics.Constants.label;
  write_float w cfg.Device.material.Physics.Constants.k_interface;
  write_float w cfg.Device.material.Physics.Constants.ms;
  write_float w cfg.Device.material.Physics.Constants.bilayer_period;
  Codec.Binio.W.u16 w cfg.Device.material.Physics.Constants.n_bilayers;
  write_float w cfg.Device.material.Physics.Constants.mix_activation_energy;
  write_float w cfg.Device.material.Physics.Constants.mix_attempt_rate;
  write_float w cfg.Device.material.Physics.Constants.cryst_activation_energy;
  write_float w cfg.Device.material.Physics.Constants.cryst_attempt_rate;
  write_float w cfg.Device.material.Physics.Constants.anneal_duration;
  Codec.Binio.W.u8 w cfg.Device.erb_cycles;
  Codec.Binio.W.u8 w (if cfg.Device.strict_hash_locations then 1 else 0);
  (* RAS profile (since format v3) *)
  Codec.Binio.W.u8 w (if cfg.Device.ras.Device.ras_enabled then 1 else 0);
  Codec.Binio.W.u8 w cfg.Device.ras.Device.read_retries;
  Codec.Binio.W.u8 w cfg.Device.ras.Device.max_repulses;
  Codec.Binio.W.u8 w cfg.Device.ras.Device.spare_tips;
  Codec.Binio.W.u16 w cfg.Device.ras.Device.scrub_threshold;
  (* Endurance lifecycle (since format v4): config, remap table, spare
     pool, health ledger, grown-defect list. *)
  (match format with `V3 -> () | `V4 -> write_endurance w dev);
  (* Dot states: 2 bits per dot, packed as the oracle sees them.  The
     medium's packed store already holds exactly this encoding (codes
     0/1/2, reserved code 3 unrepresentable), so the states section is
     streamed straight out of the store in chunks — O(chunk) memory
     however large the device — and the file stays byte-identical to
     the per-dot writer this replaces.  [u32 n] then [u32 length ^
     bytes] reproduce what [W.str] would have framed. *)
  let n = Pmedia.Medium.size medium in
  Codec.Binio.W.u32 w n;
  let packed_len = Pmedia.Medium.packed_length medium in
  Codec.Binio.W.u32 w packed_len;
  let header = Codec.Binio.W.contents w in
  (* The trailing CRC covers header and states; chain it across the
     chunks. *)
  let crc = ref (Codec.Crc32.string header) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      let chunk = Bytes.create (min packed_len 65536) in
      let pos = ref 0 in
      while !pos < packed_len do
        let len = min (Bytes.length chunk) (packed_len - !pos) in
        Pmedia.Medium.blit_packed medium ~pos:!pos ~dst:chunk ~dst_off:0 ~len;
        crc := Codec.Crc32.bytes ~crc:!crc chunk 0 len;
        output_bytes oc (Bytes.sub chunk 0 len);
        pos := !pos + len
      done;
      let tail = Codec.Binio.W.create () in
      Codec.Binio.W.u32 tail (Int32.to_int !crc land 0xFFFFFFFF);
      output_string oc (Codec.Binio.W.contents tail))

(* Streaming loader: two passes over the file, O(chunk) memory for the
   states section however large the device.  Pass 1 pipes the body
   through the CRC so a corrupt file reports "image checksum mismatch"
   before any parse error, exactly like the whole-file loader this
   replaces.  Pass 2 parses the header region — everything up to the
   packed states, whose size is pinned by the block count sitting at
   fixed byte offset 8, right after the 8-byte magic — then streams the
   states straight into the medium's packed store. *)

let chunk_size = 65536

let crc_of_channel ic ~len =
  let chunk = Bytes.create (min chunk_size (max len 1)) in
  let crc = ref 0l in
  let pos = ref 0 in
  while !pos < len do
    let k = min (Bytes.length chunk) (len - !pos) in
    really_input ic chunk 0 k;
    crc := Codec.Crc32.bytes ~crc:!crc chunk 0 k;
    pos := !pos + k
  done;
  Int32.to_int !crc land 0xFFFFFFFF

let be32_at ic ~pos =
  seek_in ic pos;
  let s = really_input_string ic 4 in
  Codec.Binio.R.u32 (Codec.Binio.R.of_string s)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let file_len = in_channel_length ic in
        if file_len < 12 then Error "image too short"
        else begin
          let body_len = file_len - 4 in
          let crc = crc_of_channel ic ~len:body_len in
          let stored_crc = be32_at ic ~pos:body_len in
          if crc <> stored_crc then Error "image checksum mismatch"
          else begin
            let n_blocks_hint = be32_at ic ~pos:8 in
            let packed_len = ((n_blocks_hint * Layout.block_dots) + 3) / 4 in
            let header_len = body_len - packed_len in
            if header_len < 12 then Error "image truncated"
            else begin
              seek_in ic 0;
              let r =
                Codec.Binio.R.of_string (really_input_string ic header_len)
              in
              match
            let m = Codec.Binio.R.raw r (String.length magic_v4) in
            let version =
              if String.equal m magic_v3 then `V3
              else if String.equal m magic_v4 then `V4
              else failwith "bad magic"
            in
            let n_blocks = Codec.Binio.R.u32 r in
            let line_exp = Codec.Binio.R.u8 r in
            let n_tips = Codec.Binio.R.u16 r in
            let seed = Codec.Binio.R.u32 r in
            let defect_rate = read_float r in
            let diameter = read_float r in
            let thickness = read_float r in
            let pitch = read_float r in
            let label = Codec.Binio.R.str r in
            let k_interface = read_float r in
            let ms = read_float r in
            let bilayer_period = read_float r in
            let n_bilayers = Codec.Binio.R.u16 r in
            let mix_activation_energy = read_float r in
            let mix_attempt_rate = read_float r in
            let cryst_activation_energy = read_float r in
            let cryst_attempt_rate = read_float r in
            let anneal_duration = read_float r in
            let erb_cycles = Codec.Binio.R.u8 r in
            let strict = Codec.Binio.R.u8 r = 1 in
            let ras_enabled = Codec.Binio.R.u8 r = 1 in
            let read_retries = Codec.Binio.R.u8 r in
            let max_repulses = Codec.Binio.R.u8 r in
            let spare_tips = Codec.Binio.R.u8 r in
            let scrub_threshold = Codec.Binio.R.u16 r in
            let endurance =
              match version with
              | `V3 -> Device.default_endurance
              | `V4 -> read_endurance_config r
            in
            let config =
              {
                Device.n_blocks;
                line_exp;
                n_tips;
                seed;
                defect_rate;
                geometry = { Physics.Constants.diameter; thickness; pitch };
                material =
                  {
                    Physics.Constants.label;
                    k_interface;
                    ms;
                    bilayer_period;
                    n_bilayers;
                    mix_activation_energy;
                    mix_attempt_rate;
                    cryst_activation_energy;
                    cryst_attempt_rate;
                    anneal_duration;
                  };
                costs = Probe.Timing.default_costs;
                erb_cycles;
                strict_hash_locations = strict;
                ras =
                  {
                    Device.ras_enabled;
                    read_retries;
                    max_repulses;
                    spare_tips;
                    scrub_threshold;
                  };
                endurance;
              }
            in
            let dev = Device.create config in
            (match version with
            | `V3 -> ()
            | `V4 -> restore_endurance_state r dev);
            let n = Codec.Binio.R.u32 r in
            let plen = Codec.Binio.R.u32 r in
            let medium = Probe.Pdevice.medium (Device.pdevice dev) in
            (* The dot-count field is u32 and redundant with the header's
               n_blocks (which sized the medium); on multi-GB media it
               wraps, so compare modulo 2^32. *)
            if Pmedia.Medium.size medium land 0xFFFFFFFF <> n then
              failwith "size mismatch";
            if plen <> packed_len then failwith "size mismatch";
            (* The channel sits right after the header region: stream
               the states section into the store chunk by chunk. *)
            let chunk = Bytes.create (min chunk_size (max packed_len 1)) in
            let pos = ref 0 in
            while !pos < packed_len do
              let k = min (Bytes.length chunk) (packed_len - !pos) in
              really_input ic chunk 0 k;
              Pmedia.Medium.load_packed medium ~pos:!pos ~src:chunk
                ~src_off:0 ~len:k;
              pos := !pos + k
            done;
            Pmedia.Medium.recount_heated medium;
            Device.refresh_heated_cache dev;
            dev
          with
          | exception Failure e -> Error e
          | exception Codec.Binio.R.Truncated -> Error "image truncated"
          | dev -> Ok dev
            end
          end
        end)
  with
  | exception Sys_error e -> Error e
  | result -> result
