(** Device-image persistence for the command-line tools: serialises the
    full physical state of a simulated device (every dot, defect map,
    frame generations) to a file, so that $(b,serotool) invocations
    compose like operations on a real disk.

    The PRNG position and the time/energy ledger are not preserved —
    a reloaded device is "powered on" fresh; its medium is bit-exact. *)

val save : ?format:[ `V3 | `V4 ] -> Device.t -> string -> unit
(** [save dev path] writes a [SEROIMG4] image: configuration, the
    endurance lifecycle state (remap table, spare pool, health ledger,
    grown-defect list, device state) and every dot.  [~format:`V3]
    writes the legacy [SEROIMG3] layout with no endurance section, for
    exchange with older tools (lifecycle state is dropped).
    @raise Sys_error on IO failure. *)

val load : string -> (Device.t, string) result
(** Recreate a device from [path]; the configuration (block count, line
    size, tips, material, costs) is restored from the image header.
    Both [SEROIMG4] and legacy [SEROIMG3] images load; a v3 image gets
    {!Device.default_endurance} (lifecycle off). *)
