(* Sized LRU block cache over the request pipeline: read hits cost zero
   sled service, misses prefetch forward as Background reads, writes are
   buffered dirty and flushed as coalesced spans.  Coherence against
   everything that mutates the medium under the cache (scrub, heat,
   attacks, fault plans) is driven by the Device listener hooks — see
   the interface comment for the three rules. *)

type entry = {
  mutable payload : string;
  mutable dirty : bool;
  mutable prefetched : bool;
}

type t = {
  q : Queue.t;
  dev : Device.t;
  capacity : int;
  read_ahead : int;
  dirty_high : int;
  entries : (int, entry) Sim.Lru.t;
  inflight : (int, unit) Hashtbl.t; (* prefetch reads not yet landed *)
  mutable n_dirty : int;
  (* Reentrancy/ownership state for the mutation listener: while a
     flush span is in service, single-block notifications inside that
     span are our own writes, not foreign mutations. *)
  mutable flush_span : (int * int) option;
  mutable epoch : int; (* bumped by every invalidation; stale prefetches drop *)
  (* Last-hit shortcut: the entry most recently touched, checked against
     the LRU head before any hash lookup.  Valid only while its pba is
     still the MRU head (then [Lru.find] would not move it, so skipping
     the find is observationally identical); every code path that
     removes or replaces entries clears or refreshes it. *)
  mutable last : (int * entry) option;
  mutable hits : int;
  mutable misses : int;
  mutable read_aheads : int;
  mutable read_ahead_hits : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable flushed_blocks : int;
  mutable flushed_spans : int;
  mutable write_absorbed : int;
  mutable invalidations : int;
  mutable bypasses : int;
  dirty_gauge : Sim.Stats.t;
}

(* One flush span is one queue request and one sled pass; keep it to a
   bounded group so a big dirty set drains as several schedulable
   requests instead of one monster pass. *)
let max_flush_span = 16

let remove_entry t pba =
  match Sim.Lru.peek t.entries pba with
  | None -> ()
  | Some e ->
      if e.dirty then t.n_dirty <- t.n_dirty - 1;
      Sim.Lru.remove t.entries pba;
      (match t.last with Some (p, _) when p = pba -> t.last <- None | _ -> ());
      t.invalidations <- t.invalidations + 1

let invalidate_range t ~pba ~n =
  t.epoch <- t.epoch + 1;
  for p = pba to pba + n - 1 do
    remove_entry t p
  done

let invalidate t ~pba = invalidate_range t ~pba ~n:1

let invalidate_line t ~line =
  let layout = Device.layout t.dev in
  invalidate_range t
    ~pba:(Layout.hash_block_of_line layout line)
    ~n:(Layout.blocks_per_line layout)

let invalidate_all t =
  t.epoch <- t.epoch + 1;
  t.invalidations <- t.invalidations + Sim.Lru.length t.entries;
  t.n_dirty <- 0;
  t.last <- None;
  Sim.Lru.clear t.entries

let bypassing t = Device.fault_installed t.dev

(* {1 Write-behind flush} *)

(* Dirty PBAs, ascending, grouped into physically consecutive spans. *)
let dirty_spans ?range t =
  let keep =
    match range with
    | None -> fun _ -> true
    | Some (lo, n) -> fun pba -> pba >= lo && pba < lo + n
  in
  let pbas =
    Sim.Lru.fold
      (fun pba e acc -> if e.dirty && keep pba then pba :: acc else acc)
      t.entries []
    |> List.sort compare
  in
  let rec group acc cur = function
    | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
    | pba :: rest -> (
        match cur with
        | last :: _ when pba = last + 1 && List.length cur < max_flush_span ->
            group acc (pba :: cur) rest
        | [] -> group acc [ pba ] rest
        | _ -> group (List.rev cur :: acc) [ pba ] rest)
  in
  group [] [] pbas

let flush_spans ?prio ?tenant t spans =
  if spans <> [] then begin
    t.flushes <- t.flushes + 1;
    List.iter
      (fun span ->
        let first = List.hd span in
        let n = List.length span in
        (* Snapshot the payloads: completions firing during the pump
           must not be able to change what this span writes. *)
        let payloads =
          Array.of_list
            (List.map
               (fun pba ->
                 match Sim.Lru.peek t.entries pba with
                 | Some e -> e.payload
                 | None -> assert false)
               span)
        in
        t.flush_span <- Some (first, n);
        let results = Queue.write_span ?prio ?tenant t.q ~pba:first payloads in
        t.flush_span <- None;
        t.flushed_spans <- t.flushed_spans + 1;
        List.iteri
          (fun i pba ->
            match results.(i) with
            | Ok () -> (
                t.flushed_blocks <- t.flushed_blocks + 1;
                match Sim.Lru.peek t.entries pba with
                | Some e when e.dirty && e.payload == payloads.(i) ->
                    e.dirty <- false;
                    t.n_dirty <- t.n_dirty - 1
                | Some _ | None -> ())
            | Error _ ->
                (* The medium refused (e.g. the line was heated under
                   us by a direct device call).  The medium wins: drop
                   the buffered write rather than retry forever. *)
                remove_entry t pba)
          span)
      spans
  end

let flush ?prio ?tenant t = flush_spans ?prio ?tenant t (dirty_spans t)

let flush_line ?prio ?tenant t ~line =
  let layout = Device.layout t.dev in
  let range =
    (Layout.hash_block_of_line layout line, Layout.blocks_per_line layout)
  in
  flush_spans ?prio ?tenant t (dirty_spans ~range t)

let sync t =
  flush t;
  Queue.drain t.q

(* {1 Construction} *)

let create ?(capacity = 64) ?(read_ahead = 8) ?dirty_high q =
  if capacity < 1 then invalid_arg "Bcache.create: capacity must be positive";
  if read_ahead < 0 then invalid_arg "Bcache.create: read_ahead must be >= 0";
  let dirty_high =
    match dirty_high with Some d -> max 1 d | None -> max 1 (capacity / 2)
  in
  let t =
    {
      q;
      dev = Queue.device q;
      capacity;
      read_ahead;
      dirty_high;
      entries =
        Sim.Lru.create ~evictable:(fun _ e -> not e.dirty) ~capacity ();
      inflight = Hashtbl.create 16;
      n_dirty = 0;
      flush_span = None;
      epoch = 0;
      last = None;
      hits = 0;
      misses = 0;
      read_aheads = 0;
      read_ahead_hits = 0;
      evictions = 0;
      flushes = 0;
      flushed_spans = 0;
      flushed_blocks = 0;
      write_absorbed = 0;
      invalidations = 0;
      bypasses = 0;
      dirty_gauge = Sim.Stats.create ~name:"dirty ratio" ();
    }
  in
  Device.add_mutation_listener t.dev (fun ~pba ~n ->
      let own_write =
        n = 1
        &&
        match t.flush_span with
        | Some (first, len) -> pba >= first && pba < first + len
        | None -> false
      in
      if not own_write then invalidate_range t ~pba ~n);
  Device.on_fault_install t.dev (fun () ->
      (* Barrier: push buffered writes through the still-healthy device
         and forget everything, so the armed plan sees the medium an
         uncached device would have. *)
      flush t;
      invalidate_all t);
  t

let queue t = t.q
let device t = t.dev

(* {1 Cache fill} *)

let insert_clean t ~prefetched pba payload =
  let e = { payload; dirty = false; prefetched } in
  let evicted = Sim.Lru.add t.entries pba e in
  t.last <- Some (pba, e);
  t.evictions <- t.evictions + List.length evicted

let read_ahead ?tenant t ~pba =
  if t.read_ahead > 0 && not (bypassing t) then begin
    let layout = Device.layout t.dev in
    let n_blocks = (Device.config t.dev).Device.n_blocks in
    let epoch0 = t.epoch in
    for p = pba + 1 to min (n_blocks - 1) (pba + t.read_ahead) do
      if
        (not (Layout.is_hash_block layout p))
        && (not (Sim.Lru.mem t.entries p))
        && not (Hashtbl.mem t.inflight p)
      then begin
        Hashtbl.replace t.inflight p ();
        t.read_aheads <- t.read_aheads + 1;
        Queue.submit_read t.q ~prio:Queue.Background ?tenant ~pba:p (fun r ->
            Hashtbl.remove t.inflight p;
            match r with
            | Ok payload
              when t.epoch = epoch0
                   && (not (Sim.Lru.mem t.entries p))
                   && not (bypassing t) ->
                insert_clean t ~prefetched:true p payload
            | Ok _ | Error _ -> ())
      end
    done
  end

(* {1 Block I/O} *)

let hit t pba e =
  t.hits <- t.hits + 1;
  t.last <- Some (pba, e);
  if e.prefetched then begin
    t.read_ahead_hits <- t.read_ahead_hits + 1;
    e.prefetched <- false
  end;
  Ok e.payload

let read_block ?prio ?tenant t ~pba =
  if bypassing t then begin
    t.bypasses <- t.bypasses + 1;
    Queue.read_block ?prio ?tenant t.q ~pba
  end
  else
    match t.last with
    (* Repeat read of the hottest block: skip the hash lookup.  Only
       taken while the pba is still the recency head, where [Lru.find]
       would not reorder anything — identical stats, identical result. *)
    | Some (p, e) when p = pba && Sim.Lru.is_head t.entries pba -> hit t pba e
    | _ -> (
    match Sim.Lru.find t.entries pba with
    | Some e -> hit t pba e
    | None ->
        (* A prefetch for this block may already be in flight: join it
           (pump the DES until it lands) instead of issuing a duplicate
           pass.  The wait is the remaining in-flight time, which is
           why a read arriving just behind its prefetch is cheaper than
           a cold miss. *)
        if Hashtbl.mem t.inflight pba then begin
          let des = Queue.des t.q in
          while Hashtbl.mem t.inflight pba do
            if not (Sim.Des.step des) then
              failwith "Bcache: in-flight prefetch cannot complete"
          done
        end;
        (match Sim.Lru.find t.entries pba with
        | Some e -> hit t pba e
        | None ->
            t.misses <- t.misses + 1;
            let r = Queue.read_block ?prio ?tenant t.q ~pba in
            (match r with
            | Ok payload -> insert_clean t ~prefetched:false pba payload
            | Error _ -> ());
            read_ahead ?tenant t ~pba;
            r))

let dirty_ratio t = float_of_int t.n_dirty /. float_of_int t.capacity

let write_block ?prio ?tenant t ~pba payload =
  if bypassing t then begin
    t.bypasses <- t.bypasses + 1;
    Queue.write_block ?prio ?tenant t.q ~pba payload
  end
  else
    let layout = Device.layout t.dev in
    (* Same refusals as {!Device.write_block}, checked against live
       device state so the error surface matches an uncached write. *)
    if Layout.is_hash_block layout pba then Error Device.Reserved_hash_block
    else if Device.is_line_heated t.dev ~line:(Layout.line_of_block layout pba)
    then Error Device.In_heated_line
    else begin
      (match Sim.Lru.find t.entries pba with
      | Some e ->
          if e.dirty then t.write_absorbed <- t.write_absorbed + 1
          else t.n_dirty <- t.n_dirty + 1;
          e.payload <- payload;
          e.dirty <- true;
          e.prefetched <- false;
          t.last <- Some (pba, e)
      | None ->
          t.n_dirty <- t.n_dirty + 1;
          let e = { payload; dirty = true; prefetched = false } in
          let evicted = Sim.Lru.add t.entries pba e in
          t.last <- Some (pba, e);
          t.evictions <- t.evictions + List.length evicted);
      Sim.Stats.add t.dirty_gauge (dirty_ratio t);
      if t.n_dirty > t.dirty_high then flush ?prio ?tenant t;
      Ok ()
    end

let heat_line ?tenant t ~line ?timestamp () =
  if bypassing t then begin
    t.bypasses <- t.bypasses + 1;
    Queue.heat_line ?tenant t.q ~line ?timestamp ()
  end
  else begin
    (* The burn hashes the medium, so the line's buffered writes must
       land first; afterwards ewb is irreversible and the burned
       Manchester hash must be re-read from the dots, so the whole
       line's cached copies are dropped. *)
    flush_line ?tenant t ~line;
    let r = Queue.heat_line ?tenant t.q ~line ?timestamp () in
    invalidate_line t ~line;
    r
  end

let verify_line t ~line =
  if not (bypassing t) then flush_line t ~line;
  Device.verify_line t.dev ~line

(* {1 Measurement} *)

type stats = {
  hits : int;
  misses : int;
  read_aheads : int;
  read_ahead_hits : int;
  evictions : int;
  flushes : int;
  flushed_blocks : int;
  flushed_spans : int;
  write_absorbed : int;
  invalidations : int;
  bypasses : int;
}

let stats (t : t) : stats =
  {
    hits = t.hits;
    misses = t.misses;
    read_aheads = t.read_aheads;
    read_ahead_hits = t.read_ahead_hits;
    evictions = t.evictions;
    flushes = t.flushes;
    flushed_blocks = t.flushed_blocks;
    flushed_spans = t.flushed_spans;
    write_absorbed = t.write_absorbed;
    invalidations = t.invalidations;
    bypasses = t.bypasses;
  }

let hit_rate (t : t) =
  float_of_int t.hits /. float_of_int (t.hits + t.misses)

let dirty_gauge t = t.dirty_gauge

let pp_stats ppf (t : t) =
  let s = stats t in
  Format.fprintf ppf
    "bcache[%d blocks, ra=%d]: %d hits / %d misses (%.1f%% hit rate, %d via \
     read-ahead of %d issued)@ %d evictions, %d invalidations, %d bypasses@ \
     write-behind: %d dirty now (%.1f%% of cap), %d absorbed overwrites, %d \
     blocks flushed in %d spans over %d passes@."
    t.capacity t.read_ahead s.hits s.misses
    (100. *. hit_rate t)
    s.read_ahead_hits s.read_aheads s.evictions s.invalidations s.bypasses
    t.n_dirty
    (100. *. dirty_ratio t)
    s.write_absorbed s.flushed_blocks s.flushed_spans s.flushes
