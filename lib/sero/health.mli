(** Per-line endurance ledger.

    Grown errors are the norm over a patterned medium's life (thermal
    decay, tip wear, dot defects), and the Reed-Solomon framing corrects
    them {e silently} until the budget runs out.  This module watches
    the correction margins the stack already produces — corrected-symbol
    counts from {!Codec.Sector.decode}, RAS retry outcomes, tip remaps,
    manufacturing defect density — and condenses them into a per-line
    {e margin}: the fraction of the RS budget still unspent.  The
    device's endurance layer retires a line when its margin crosses the
    configured threshold, {e before} the next grown error is fatal.

    Observation is unconditional and side-effect-free with respect to
    device behaviour: feeding the ledger never changes what a read or
    write returns, so a health-enabled device with no retirement due is
    bit-identical to a baseline device. *)

type config = {
  alpha : float;  (** EWMA smoothing factor in (0, 1]. *)
  retire_margin : float;
      (** Margin at or below which a line is due for evacuation. *)
}

val default_config : config
(** alpha 0.4, retire at margin 0.5. *)

val rs_budget : int
(** Corrected symbols a sector can absorb before the next error is
    uncorrectable: 12 per RS slice, 3 interleaved slices = 36. *)

type line_health = {
  mutable ewma_corrected : float;
      (** EWMA of corrected symbols per decode (unreadable sectors count
          as a full-budget sample). *)
  mutable reads : int;
  mutable retries : int;
  mutable retry_wins : int;
  mutable unreadable : int;
  mutable defect_dots : int;  (** Manufacturing defects in the line. *)
}

type t

val create : ?config:config -> n_lines:int -> unit -> t

val copy : t -> t
(** Independent ledger with the same per-line state — device cloning
    must not share mutable health entries. *)

val config : t -> config
val n_lines : t -> int

val line : t -> line:int -> line_health
(** The raw ledger entry (shared, mutable — used by image persistence
    and reporting). *)

(** {1 Signal feeders} *)

val note_decode : t -> line:int -> corrected:int -> unit
val note_unreadable : t -> line:int -> unit
val note_retry : t -> line:int -> won:bool -> unit
val note_tip_remap : t -> unit
val tip_remaps : t -> int

val set_defects : t -> line:int -> int -> unit
(** Record the line's manufacturing defect-dot count (set once at
    device create, and again when a migration rehomes the line). *)

(** {1 Margins} *)

val margin : t -> line:int -> float
(** [1 - (ewma_corrected + defect_dots) / rs_budget]: 1.0 is a pristine
    line, 0.0 means the observed error level already consumes the whole
    RS budget.  Defect dots count as permanently at-risk symbols (worst
    case: all in one sector). *)

val weakest : ?limit:int -> t -> (int * float) option
(** Line with the smallest margin among lines [0, limit) (default: all),
    ties to the lowest line number. *)

val lines_at_or_below : ?limit:int -> t -> float -> int list
(** Ascending lines of [0, limit) whose margin is at or below the
    threshold. *)

val reset_line : t -> line:int -> defect_dots:int -> unit
(** Forget a line's history (it was rehomed onto fresh medium with the
    given defect density). *)

(** {1 Persistence hooks (Image)} *)

val restore_line :
  t ->
  line:int ->
  ewma:float ->
  reads:int ->
  retries:int ->
  retry_wins:int ->
  unreadable:int ->
  defect_dots:int ->
  unit

val set_tip_remaps : t -> int -> unit
val pp : Format.formatter -> t -> unit
