(** Background media scrubbing.

    Magnetic sectors accumulate symbol errors (defects, stray flips,
    tip trouble) silently: Reed–Solomon keeps correcting until the
    budget (12 symbols per codeword) is gone, and only then does a read
    fail.  The scrubber turns that cliff into a slope — it sweeps the
    device, {e rewrites} any still-correctable sector whose corrected-
    symbol count crossed [ras.scrub_threshold] (resetting its error
    count), remaps failed tips to spares, completes torn burns, and
    optionally deep-verifies heated lines.

    A pass is a plain function so tests can call it directly;
    {!schedule} hangs it on the DES kernel ({!Sim.Des}) for periodic
    background operation. *)

type config = {
  correction_threshold : int;
      (** Rewrite a sector once RS had to correct at least this many
          symbols (the device's [ras.scrub_threshold] by default). *)
  period : float;  (** Simulated seconds between scheduled passes. *)
  deep_verify : bool;  (** Also re-verify every heated line's data. *)
}

val default_config : config
(** Threshold 6, one pass per simulated hour, no deep verify. *)

type report = {
  lines_swept : int;
  sectors_checked : int;
  rewritten : int;  (** Decaying sectors refreshed. *)
  unrecoverable : int list;  (** PBAs no retry could bring back. *)
  tips_remapped : int;
  torn_completed : int list;  (** Lines whose torn burn was finished. *)
  tamper_found : (int * Tamper.verdict) list;
      (** Lines whose write-once area or data is evidence. *)
  retired_skipped : int;
      (** Spare-region lines left alone: pristine spares are blank and
          quarantined carcasses are frozen evidence, judged by
          {!Device.scan} against their migration link instead. *)
}

val pass : ?config:config -> Device.t -> report
(** One full sweep.  Unheated lines: every written sector is decoded
    raw; past-threshold sectors are rewritten in place, undecodable
    ones go through the device's RAS read path and are rewritten on
    success or reported unrecoverable.  Torn lines are completed via
    [heat_line].  Heated lines are re-verified when [deep_verify].
    Failed tips are remapped first so the sweep itself reads through
    spares. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Incremental sweeping}

    {!pass} sweeps the whole device in one synchronous call.  The
    request pipeline ({!Queue}) instead issues one line at a time as a
    background request, accumulating into a [progress] and turning it
    into a {!report} whenever the caller wants a snapshot. *)

type progress

val progress_create : unit -> progress

val sweep_line : ?config:config -> Device.t -> progress -> line:int -> unit
(** Sweep one line exactly as {!pass} would (same per-line decode /
    rewrite / torn-completion / verify logic) and fold the outcome into
    [progress].  Unlike {!pass} it does {e not} remap failed tips
    first — callers servicing tips should use
    {!Device.service_failed_tips} and add the count themselves. *)

val add_remapped : progress -> int -> unit
(** Fold a {!Device.service_failed_tips} count into the progress. *)

val report_of_progress : progress -> report
(** Snapshot of everything swept so far ([lines_swept] counts
    {!sweep_line} calls on usable lines, not distinct lines;
    spare-region calls land in [retired_skipped] instead). *)

val schedule :
  ?config:config -> Sim.Des.t -> Device.t -> on_pass:(report -> unit) -> unit
(** Run a pass now-ish and re-schedule every [config.period] simulated
    seconds forever; bound the simulation with [Sim.Des.run ~until]. *)

(** {1 Sweep planners}

    Which line does the next background scrub slot go to?  That choice
    is the defender's cheapest audit knob: a sequential sweep is
    predictable (an insider tampers just {e behind} the cursor and buys
    almost a full rotation of latency), weakest-first chases the health
    ledger (and can be decoyed by targeted noise), and seeded sampling
    is memoryless, so no position is ever safe for long.  A planner is
    deterministic state — same policy, same device history, same line
    sequence — so campaigns over it replay byte-identically. *)

type policy =
  | Sequential  (** Round-robin over all lines — today's default. *)
  | Weakest_first
      (** Each round visits every line, ordered by ascending health
          margin ({!Health.margin}), so the lines nearest RS-budget
          exhaustion are verified soonest.  Ties break low. *)
  | Sampled of int
      (** Memoryless uniform line choice from a private stream seeded
          with the payload — unpredictable coverage at the price of
          coupon-collector gaps. *)

type planner

val planner : ?policy:policy -> Device.t -> planner
(** A planner over the device's line space; [policy] defaults to
    {!Sequential}, which yields exactly the 0,1,…,n-1,0,… sequence the
    pre-planner scheduler used. *)

val planner_policy : planner -> policy

val planner_position : planner -> int
(** The line the next {!planner_next} will return, without consuming
    it.  This is precisely what a scheduling-aware insider can observe
    (the sweep cursor), so campaign adversaries race it honestly. *)

val planner_next : planner -> int
(** Yield the next line to sweep and advance the plan. *)
