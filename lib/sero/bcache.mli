(** Block buffer cache: sized LRU over the {!Queue} request pipeline,
    with sequential read-ahead and write-behind.

    PR 3 made service order realistic; this layer makes {e repeat}
    service unnecessary.  Read hits complete on the DES clock with zero
    sled service; misses fetch through the queue at the caller's
    priority and trigger sequential read-ahead submitted as
    Background-class reads of the following PBAs, so prefetch rides the
    pipeline's existing coalescing into {!Device.read_blocks} spans.
    Writes are buffered dirty (HAMR-style media price writes far above
    reads, so batching them is the device-accurate optimisation) and
    flushed as coalesced {!Queue.submit_write_span} groups on pressure
    (dirty high-water), {!sync}, or {!heat_line}.

    {2 Coherence: the cache can never mask the medium}

    The SERO device is a tamper-evidence machine, so a stale cached
    block is not just a performance bug — it could hide exactly the
    mutation a verdict must expose.  Three rules keep the cache
    honest:

    - {b Heat is irreversible.}  {!heat_line} first flushes the line's
      dirty blocks (the burn hashes what is on the medium), then
      invalidates the whole line after the burn: the frozen contents
      and the Manchester-encoded hash must be re-read from the dots.
    - {b The medium wins.}  A {!Device.add_mutation_listener} hook
      drops cached copies — clean or dirty — whenever anything writes
      under the cache: scrub rewrites, torn-burn completions, raw
      attacker writes, wipes.  Buffered writes superseded this way are
      lost, exactly as if the out-of-band mutation had happened after
      an uncached write.
    - {b Faults bypass.}  A {!Device.on_fault_install} barrier flushes
      and empties the cache {e before} an injector arms, and every
      operation passes straight through while {!Device.fault_installed}
      holds — a fault plan perturbs the same medium, in the same op
      order, that an uncached device would present.

    The twin-device qcheck in [test_sero] holds a cached and an
    uncached device to bit-identical results — every read, every
    {!heat_line}, every {!verify_line} verdict — under random
    op/fault/heat interleavings including scrub and torn-burn
    recovery. *)

type t

val create :
  ?capacity:int -> ?read_ahead:int -> ?dirty_high:int -> Queue.t -> t
(** A cache over [q]'s device.  [capacity] (default 64) is the block
    count bound — a soft bound: dirty blocks are pinned until flushed
    and can briefly push past it.  [read_ahead] (default 8) is the
    prefetch depth after a miss; [0] disables.  [dirty_high] (default
    [max 1 (capacity / 2)]) is the write-behind high-water mark: a
    write that pushes the dirty count past it triggers a flush.
    @raise Invalid_argument if [capacity < 1] or [read_ahead < 0]. *)

val queue : t -> Queue.t
val device : t -> Device.t

(** {1 Block I/O}

    Drop-in replacements for the {!Queue} synchronous facade; [prio]
    (default [Foreground]) is the class used for miss fetches and
    pressure flushes, and [tenant] (default [0]) tags the queued
    requests they submit — including the read-ahead a miss triggers,
    so prefetch work is charged to the tenant that caused it. *)

val read_block :
  ?prio:Queue.prio ->
  ?tenant:int ->
  t ->
  pba:int ->
  (string, Device.read_error) result

val write_block :
  ?prio:Queue.prio ->
  ?tenant:int ->
  t ->
  pba:int ->
  string ->
  (unit, Device.write_error) result
(** Buffers the payload dirty and returns; the medium is written at the
    next flush.  Reserved-hash-block and heated-line refusals are
    checked here, against live device state, so the error surface
    matches an uncached write. *)

val heat_line :
  ?tenant:int ->
  t ->
  line:int ->
  ?timestamp:float ->
  unit ->
  (Hash.Sha256.t, Device.heat_error) result
(** Flush the line's dirty blocks, heat through the queue, then
    invalidate the line. *)

val verify_line : t -> line:int -> Tamper.verdict
(** Flush the line's dirty blocks first (the verdict must judge the
    medium the caller believes is durable), then {!Device.verify_line}. *)

val flush : ?prio:Queue.prio -> ?tenant:int -> t -> unit
(** Write every dirty block out as coalesced spans.  Does not drain
    outstanding read-ahead. *)

val sync : t -> unit
(** {!flush} then {!Queue.drain} — on return the medium is up to date
    and the pipeline idle. *)

(** {1 Invalidation} *)

val invalidate : t -> pba:int -> unit
(** Drop any cached copy of [pba], dirty or clean, without writing it
    back. *)

val invalidate_line : t -> line:int -> unit
val invalidate_all : t -> unit

(** {1 Measurement} *)

type stats = {
  hits : int;
  misses : int;
  read_aheads : int;  (** Prefetch reads submitted. *)
  read_ahead_hits : int;  (** Hits whose block arrived by prefetch. *)
  evictions : int;
  flushes : int;  (** Flush passes (pressure, sync, heat, line). *)
  flushed_blocks : int;
  flushed_spans : int;  (** Coalesced write groups those blocks used. *)
  write_absorbed : int;  (** Overwrites of a still-dirty block. *)
  invalidations : int;  (** Blocks dropped by invalidation hooks. *)
  bypasses : int;  (** Operations passed through under a fault plan. *)
}

val stats : t -> stats

val hit_rate : t -> float
(** Hits over lookups ([nan] before the first lookup). *)

val dirty_ratio : t -> float
(** Dirty blocks over capacity, now. *)

val dirty_gauge : t -> Sim.Stats.t
(** The dirty ratio sampled at each buffered write — the write-behind
    pressure profile over the run. *)

val pp_stats : Format.formatter -> t -> unit
