type t = { n_blocks : int; line_exp : int; spare_lines : int }

let block_dots = Codec.Sector.physical_bits
let wo_area_dots = 8 * Codec.Sector.payload_bytes (* 4096 *)
let wo_area_bytes = wo_area_dots / 16 (* Manchester: 16 dots per byte *)

let create ?(spare_lines = 0) ~n_blocks ~line_exp () =
  if line_exp < 1 || line_exp > 20 then
    invalid_arg "Layout.create: line_exp must be in 1..20";
  let bpl = 1 lsl line_exp in
  if n_blocks <= 0 || n_blocks mod bpl <> 0 then
    invalid_arg "Layout.create: n_blocks must be a positive multiple of 2^N";
  if spare_lines < 0 || spare_lines >= n_blocks / bpl then
    invalid_arg "Layout.create: spare_lines must be in 0..n_lines-1";
  { n_blocks; line_exp; spare_lines }

let blocks_per_line t = 1 lsl t.line_exp
let data_blocks_per_line t = blocks_per_line t - 1
let n_lines t = t.n_blocks / blocks_per_line t
let n_spare_lines t = t.spare_lines
let usable_lines t = n_lines t - t.spare_lines
let usable_blocks t = usable_lines t * blocks_per_line t
let is_spare_line t l = l >= usable_lines t && l < n_lines t
let total_dots t = t.n_blocks * block_dots

let check_block t pba =
  if pba < 0 || pba >= t.n_blocks then
    invalid_arg "Layout: block address out of range"

let check_line t l =
  if l < 0 || l >= n_lines t then invalid_arg "Layout: line out of range"

let line_of_block t pba =
  check_block t pba;
  pba / blocks_per_line t

let hash_block_of_line t l =
  check_line t l;
  l * blocks_per_line t

let is_hash_block t pba =
  check_block t pba;
  pba mod blocks_per_line t = 0

let data_blocks_of_line t l =
  check_line t l;
  let base = l * blocks_per_line t in
  List.init (data_blocks_per_line t) (fun i -> base + 1 + i)

let first_data_block t l =
  check_line t l;
  (l * blocks_per_line t) + 1

let iter_data_blocks t l f =
  check_line t l;
  let base = l * blocks_per_line t in
  for i = 1 to blocks_per_line t - 1 do
    f (base + i)
  done

let block_first_dot t pba =
  check_block t pba;
  pba * block_dots

let wo_first_dot t ~line = block_first_dot t (hash_block_of_line t line)

let space_overhead t = 1. /. float_of_int (blocks_per_line t)
