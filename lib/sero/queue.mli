(** The asynchronous request pipeline: queued submit/complete I/O
    through {!Device} on the {!Sim.Des} clock.

    Section 6 of the paper expects the SERO device to "behave like a
    disk" for random WMRM I/O served by one shared sled.  A disk earns
    that behaviour from its request queue: requests are {e submitted},
    wait their turn, are {e served} in whatever order the scheduler
    picks, and {e complete} asynchronously.  This module gives the SERO
    device the same lifecycle:

    {v
      submit ──▶ pending (per priority class)
                     │   Sched.order picks the next offset
                     ▼
                 service (sled pass; adjacent reads coalesce
                     │    into one bulk Device.read_blocks)
                     ▼
      complete ◀── Des event at now + measured service time
    v}

    One request group is in flight at a time (the sled is a single
    mechanical resource; service is non-preemptive).  Whenever the sled
    goes idle, the scheduler re-orders the {e currently pending}
    requests with {!Probe.Sched.order} from the sled's current scan
    offset and serves the head — so the configured policy drives the
    real service order, not just the E19 cost estimate.  Foreground
    requests strictly precede background ones; background work
    (scrubbing, cleaning) therefore contends with the foreground only
    through the non-preemptive service time of the request it already
    occupies the sled with.

    Timing: the device's own {!Probe.Timing} ledger is read before and
    after each sled pass and the delta becomes the service time; the
    completion event fires that many simulated seconds after service
    starts.  Per-request wait/latency/energy feed {!Sim.Stats}
    counters, so percentiles and throughput come for free.

    The synchronous facade ({!read_block} / {!write_block} /
    {!heat_line}) submits and then pumps the DES until that one request
    completes — with an otherwise empty queue this is bit-identical
    (results, counters, ledger, PRNG draws) to calling {!Device}
    directly. *)

type t

type prio =
  | Foreground  (** FS and user traffic; always served first. *)
  | Background  (** Scrub and cleaner traffic; fills idle time. *)

val pp_prio : Format.formatter -> prio -> unit

val create :
  ?policy:Probe.Sched.policy ->
  ?coalesce:bool ->
  ?max_span:int ->
  ?read_retry_limit:int ->
  ?retry_backoff:float ->
  ?watchdog_age:float ->
  Sim.Des.t ->
  Device.t ->
  t
(** A queue serving [dev] on the [des] clock.  [policy] defaults to
    {!Probe.Sched.Elevator}; [coalesce] (default [true]) merges reads
    of consecutive PBAs that are also adjacent in service order into
    one {!Device.read_blocks} span of at most [max_span] (default 8)
    blocks.

    Request-level RAS: a read that completes with [Error] is re-queued
    up to [read_retry_limit] times (default 0 — deliver errors
    immediately) with deterministic exponential backoff off the DES
    clock: the nth retry waits [retry_backoff * 2^(n-1)] simulated
    seconds (default backoff 100 us).  The original submit time is
    kept, so latency percentiles and the watchdog see the whole ordeal;
    only the final delivery updates the completion counters.  Any
    request whose completion takes longer than [watchdog_age] simulated
    seconds (default [infinity]) trips {!watchdog_trips} — a liveness
    canary for stuck retry storms, not an abort. *)

val device : t -> Device.t
val des : t -> Sim.Des.t
val policy : t -> Probe.Sched.policy

(** {1 Multi-tenant arbitration}

    Requests carry a tenant tag (default [0]).  An installed arbiter
    turns dispatch into a two-level decision: first {e which tenant} is
    served (the arbiter's call — fair share, weights, whatever the host
    layer installs), then {e which of that tenant's requests} (the sled
    policy's call, exactly as before).  Span coalescing never crosses
    tenants, so every sled pass is charged to exactly one tenant's
    service/energy ledger — and the charge lands when the pass runs,
    before the next dispatch, which is what a fair-share arbiter needs
    to see.  With no arbiter (the default), dispatch is tenant-blind
    and bit-identical to the pre-tenant pipeline. *)

type arbiter_view = {
  av_tenant : int;
  av_backlog : int;  (** Pending requests of this tenant in the class. *)
  av_oldest : float;  (** Submit time of its oldest pending request. *)
}

val set_arbiter : t -> (arbiter_view list -> int) option -> unit
(** Install (or remove) the tenant arbiter.  At each dispatch with more
    than one tenant backlogged in the preferred class, the arbiter is
    given one view per backlogged tenant (sorted by tenant id) and
    returns the tenant to serve; an answer naming no backlogged tenant
    falls back to the first view. *)

val tenants : t -> int list
(** Tenant ids that have been charged service or completions, sorted. *)

val tenant_completed : t -> int -> int
val tenant_service : t -> int -> float
(** Cumulative sled-busy seconds charged to the tenant (updated at
    service time, not completion). *)

val tenant_energy : t -> int -> float

(** {1 Asynchronous submission}

    Each [submit_*] enqueues a request and returns immediately; the
    callback fires from the completion event.  [prio] defaults to
    [Foreground] except for scrub lines; [tenant] defaults to [0]
    (system traffic — scrub and migration always ride tenant 0). *)

val submit_read :
  t ->
  ?prio:prio ->
  ?tenant:int ->
  pba:int ->
  ((string, Device.read_error) result -> unit) ->
  unit

val submit_write :
  t ->
  ?prio:prio ->
  ?tenant:int ->
  pba:int ->
  string ->
  ((unit, Device.write_error) result -> unit) ->
  unit

val submit_write_span :
  t ->
  ?prio:prio ->
  ?tenant:int ->
  pba:int ->
  string array ->
  ((unit, Device.write_error) result array -> unit) ->
  unit
(** Write [n] consecutive blocks starting at [pba] as {e one} request:
    a single non-preemptive sled pass serves the whole span, which is
    how the buffer cache flushes write-behind data without paying one
    queue slot per dirty block.  Per-block results come back in order;
    counted in {!coalesced_requests} as span size − 1. *)

val submit_heat_line :
  t ->
  ?prio:prio ->
  ?tenant:int ->
  line:int ->
  ?timestamp:float ->
  ((Hash.Sha256.t, Device.heat_error) result -> unit) ->
  unit
(** [timestamp] defaults to the DES clock at submit time. *)

val submit_erb :
  t ->
  ?prio:prio ->
  ?tenant:int ->
  line:int ->
  ([ `Not_heated
   | `Burned of Device.burned_meta
   | `Torn of Device.torn
   | `Tampered of Tamper.evidence list ] ->
  unit) ->
  unit
(** Electrical read of a line's write-once area
    ({!Device.read_hash_block}) as a queued request. *)

val submit_scrub_line :
  t ->
  ?prio:prio ->
  ?config:Scrub.config ->
  Scrub.progress ->
  line:int ->
  (unit -> unit) ->
  unit
(** One {!Scrub.sweep_line} as a request ([prio] defaults to
    [Background]); outcomes accumulate into the given progress. *)

val submit_verify_line :
  t ->
  ?prio:prio ->
  ?tenant:int ->
  line:int ->
  (Tamper.verdict -> unit) ->
  unit
(** One {!Device.verify_line} as a queued request — the audit traffic
    class.  [prio] defaults to [Background], so sampled audits contend
    under the arbiter like any other background work instead of jumping
    the foreground; give them a tenant of their own to meter their
    budget through per-tenant accounting. *)

val submit_migrate :
  t ->
  ?prio:prio ->
  line:int ->
  ?timestamp:float ->
  ((Device.migration, Device.migrate_error) result -> unit) ->
  unit
(** One {!Device.evacuate_line} as a queued request ([prio] defaults to
    [Background]): the whole evacuation — copy, remap, re-burn,
    verify — is a single non-preemptive sled pass.  [timestamp]
    defaults to the DES clock when the request is served. *)

val schedule_scrub :
  ?config:Scrub.config ->
  ?planner:Scrub.planner ->
  t ->
  period:float ->
  stop:(unit -> bool) ->
  Scrub.progress
(** Background scrubbing as queue traffic: every [period] simulated
    seconds submit the line the [planner] names next (at most one
    outstanding scrub request at a time) until [stop ()] holds at a
    tick.  [planner] defaults to a fresh {!Scrub.Sequential} planner,
    which is bit-identical to the pre-planner round-robin.  Returns the
    progress the sweeps accumulate into — snapshot it with
    {!Scrub.report_of_progress}. *)

val schedule_migration :
  t -> period:float -> stop:(unit -> bool) -> Device.migration list ref
(** Endurance maintenance as background queue traffic: every [period]
    simulated seconds, if no migration is outstanding and
    {!Device.next_due} names a weakening line, submit one
    {!submit_migrate} for it.  Evacuations ride the Background class,
    so they only contend with the foreground through the one sled pass
    they occupy.  Returns the list the completed migrations accumulate
    into (newest first). *)

(** {1 Pumping} *)

val idle : t -> bool
(** No request pending or in flight. *)

val pending : t -> int
(** Requests waiting (not counting the group in service). *)

val drain : t -> unit
(** Step the DES until the queue is {!idle} — note this also fires any
    unrelated events scheduled on the same DES that come due. *)

(** {1 Synchronous facade}

    Submit one foreground request and pump the DES until {e that}
    request completes (earlier-queued requests may be served on the
    way, exactly as a disk would).  Drop-in replacements for the
    corresponding {!Device} calls. *)

val read_block :
  ?prio:prio -> ?tenant:int -> t -> pba:int -> (string, Device.read_error) result

val write_block :
  ?prio:prio ->
  ?tenant:int ->
  t ->
  pba:int ->
  string ->
  (unit, Device.write_error) result

val write_span :
  ?prio:prio ->
  ?tenant:int ->
  t ->
  pba:int ->
  string array ->
  (unit, Device.write_error) result array

val heat_line :
  ?tenant:int ->
  t ->
  line:int ->
  ?timestamp:float ->
  unit ->
  (Hash.Sha256.t, Device.heat_error) result

(** {1 Measurement}

    All times in simulated seconds.  [latency] = completion − submit;
    [wait] = service start − submit; [service] is per sled pass (a
    coalesced span counts once). *)

val latency : t -> prio -> Sim.Stats.t
val wait : t -> prio -> Sim.Stats.t
val service : t -> Sim.Stats.t
val energy_spent : t -> prio -> float
val completed : t -> prio -> int

val last_completion : t -> prio -> float
(** DES time of the class's most recent completion (0 if none) — the
    numerator's clock for closed-loop throughput. *)

val depth_histogram : t -> Sim.Stats.Histogram.h
(** Queue depth (waiting + in-flight) sampled at each submit. *)

val served_offsets : t -> int list
(** Scan offsets in actual service order (oldest first) — the
    observable that the policy-conformance tests compare against
    {!Probe.Sched.order}. *)

val coalesced_requests : t -> int
(** Read requests absorbed into a bulk span (span size − 1 per span). *)

val retried_reads : t -> int
(** Failed reads sent back through the queue by the retry policy. *)

val abandoned_reads : t -> int
(** Reads whose error was delivered after the retry budget ran out
    (only counted when [read_retry_limit > 0]). *)

val watchdog_trips : t -> int
(** Completions that took longer than [watchdog_age] end to end. *)

val pp_summary : Format.formatter -> t -> unit
