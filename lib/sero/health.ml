type config = { alpha : float; retire_margin : float }

let default_config = { alpha = 0.4; retire_margin = 0.5 }

(* 24 RS parity symbols per 231-byte slice correct 12 symbols each; a
   sector interleaves 3 slices, so 36 corrected symbols is the point
   past which one more grown error loses the sector. *)
let rs_budget = 36

type line_health = {
  mutable ewma_corrected : float;
  mutable reads : int;
  mutable retries : int;
  mutable retry_wins : int;
  mutable unreadable : int;
  mutable defect_dots : int;
}

type t = {
  cfg : config;
  lines : line_health array;
  mutable tip_remaps : int;
}

let fresh_line () =
  {
    ewma_corrected = 0.;
    reads = 0;
    retries = 0;
    retry_wins = 0;
    unreadable = 0;
    defect_dots = 0;
  }

let create ?(config = default_config) ~n_lines () =
  if n_lines <= 0 then invalid_arg "Health.create: n_lines must be positive";
  { cfg = config; lines = Array.init n_lines (fun _ -> fresh_line ()); tip_remaps = 0 }

let copy t =
  {
    cfg = t.cfg;
    lines =
      Array.map
        (fun h ->
          {
            ewma_corrected = h.ewma_corrected;
            reads = h.reads;
            retries = h.retries;
            retry_wins = h.retry_wins;
            unreadable = h.unreadable;
            defect_dots = h.defect_dots;
          })
        t.lines;
    tip_remaps = t.tip_remaps;
  }

let config t = t.cfg
let n_lines t = Array.length t.lines

let line t ~line =
  if line < 0 || line >= Array.length t.lines then
    invalid_arg "Health.line: line out of range";
  t.lines.(line)

let bump t ~line x =
  let h = t.lines.(line) in
  h.ewma_corrected <-
    (t.cfg.alpha *. x) +. ((1. -. t.cfg.alpha) *. h.ewma_corrected)

let note_decode t ~line ~corrected =
  let h = t.lines.(line) in
  h.reads <- h.reads + 1;
  bump t ~line (float_of_int corrected)

(* An undecodable sector is a worst-case sample: the grown error count
   is at least the whole budget. *)
let note_unreadable t ~line =
  let h = t.lines.(line) in
  h.reads <- h.reads + 1;
  h.unreadable <- h.unreadable + 1;
  bump t ~line (float_of_int rs_budget)

let note_retry t ~line ~won =
  let h = t.lines.(line) in
  h.retries <- h.retries + 1;
  if won then h.retry_wins <- h.retry_wins + 1

let note_tip_remap t = t.tip_remaps <- t.tip_remaps + 1
let tip_remaps t = t.tip_remaps
let set_defects t ~line n = (t.lines.(line)).defect_dots <- n

(* A manufacturing defect dot corrupts at most one bit, hence at most
   one RS symbol; counting each as a permanently at-risk symbol is the
   conservative worst case (all of a line's defects landing in one
   sector). *)
let margin t ~line =
  let h = t.lines.(line) in
  let at_risk = h.ewma_corrected +. float_of_int h.defect_dots in
  1. -. (at_risk /. float_of_int rs_budget)

let reset_line t ~line ~defect_dots =
  let h = t.lines.(line) in
  h.ewma_corrected <- 0.;
  h.reads <- 0;
  h.retries <- 0;
  h.retry_wins <- 0;
  h.unreadable <- 0;
  h.defect_dots <- defect_dots

(* The weakest line of [0, limit): the retirement scheduler's pick. *)
let weakest ?limit t =
  let limit =
    match limit with None -> Array.length t.lines | Some l -> l
  in
  let best = ref None in
  for l = 0 to min limit (Array.length t.lines) - 1 do
    let m = margin t ~line:l in
    match !best with
    | Some (_, bm) when bm <= m -> ()
    | _ -> best := Some (l, m)
  done;
  !best

let lines_at_or_below ?limit t threshold =
  let limit =
    match limit with None -> Array.length t.lines | Some l -> l
  in
  let acc = ref [] in
  for l = min limit (Array.length t.lines) - 1 downto 0 do
    if margin t ~line:l <= threshold then acc := l :: !acc
  done;
  !acc

let restore_line t ~line ~ewma ~reads ~retries ~retry_wins ~unreadable
    ~defect_dots =
  let h = t.lines.(line) in
  h.ewma_corrected <- ewma;
  h.reads <- reads;
  h.retries <- retries;
  h.retry_wins <- retry_wins;
  h.unreadable <- unreadable;
  h.defect_dots <- defect_dots

let set_tip_remaps t n = t.tip_remaps <- n

let pp ppf t =
  Format.fprintf ppf "health: %d lines, %d tip remaps@." (n_lines t)
    t.tip_remaps;
  Array.iteri
    (fun l h ->
      Format.fprintf ppf
        "  line %4d: margin %+.3f ewma %.2f reads %d retries %d (%d won) \
         unreadable %d defects %d@."
        l (margin t ~line:l) h.ewma_corrected h.reads h.retries h.retry_wins
        h.unreadable h.defect_dots)
    t.lines
