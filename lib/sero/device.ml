type ras = {
  ras_enabled : bool;
  read_retries : int;
  max_repulses : int;
  spare_tips : int;
  scrub_threshold : int;
}

let default_ras =
  {
    ras_enabled = false;
    read_retries = 0;
    max_repulses = 0;
    spare_tips = 0;
    scrub_threshold = 6;
  }

let active_ras =
  {
    ras_enabled = true;
    read_retries = 3;
    max_repulses = 2;
    spare_tips = 4;
    scrub_threshold = 6;
  }

type endurance = {
  health_enabled : bool;
  spare_lines : int;
  ewma_alpha : float;
  retire_margin : float;
}

let default_endurance =
  {
    health_enabled = false;
    spare_lines = 0;
    ewma_alpha = 0.4;
    retire_margin = 0.5;
  }

let active_endurance =
  {
    health_enabled = true;
    spare_lines = 4;
    ewma_alpha = 0.4;
    retire_margin = 0.5;
  }

type config = {
  n_blocks : int;
  line_exp : int;
  n_tips : int;
  seed : int;
  defect_rate : float;
  geometry : Physics.Constants.dot_geometry;
  material : Physics.Constants.material;
  costs : Probe.Timing.costs;
  erb_cycles : int;
  strict_hash_locations : bool;
  ras : ras;
  endurance : endurance;
}

let default_config ?(n_blocks = 512) ?(line_exp = 3) () =
  {
    n_blocks;
    line_exp;
    n_tips = 32;
    seed = 42;
    defect_rate = 0.;
    geometry = Physics.Constants.dot_100nm;
    material = Physics.Constants.co_pt;
    costs = Probe.Timing.default_costs;
    erb_cycles = 8;
    strict_hash_locations = true;
    ras = default_ras;
    endurance = default_endurance;
  }

type device_state = Healthy | Degraded | Read_only

let pp_device_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Healthy -> "healthy"
    | Degraded -> "degraded"
    | Read_only -> "read-only")

type migration = {
  m_line : int;  (** Logical line that was rehomed. *)
  m_from : int;  (** Physical line it vacated (the carcass). *)
  m_to : int;  (** Physical line now serving it. *)
  m_heated : bool;
  m_hash : Hash.Sha256.t option;  (** Burned hash carried across. *)
  m_timestamp : float;
}

(* Reusable bit buffers for the sector and write-once hot paths; a
   block image is 38 KB as a bool array, too much to allocate per read.
   Every buffer size is a layout constant, so scratch sets are
   interchangeable between devices: they live in a per-domain free list
   and a device only holds one from first I/O until [park] — a parked
   or freshly-cloned device pins no transient buffers.  Contents are
   dead between device calls (always fully overwritten before being
   read), so recycling is semantically invisible. *)
type scratch = {
  sc_block : bool array;
  sc_wo : bool array;
  sc_image : Bytes.t; (* one packed block image, block_dots / 8 *)
  mutable sc_span : Bytes.t; (* coalesced-span images, grown on demand *)
}

let scratch_pool : scratch list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let scratch_acquire () =
  let pool = Domain.DLS.get scratch_pool in
  match !pool with
  | s :: rest ->
      pool := rest;
      s
  | [] ->
      {
        sc_block = Array.make Layout.block_dots false;
        sc_wo = Array.make Layout.wo_area_dots false;
        sc_image = Bytes.create (Layout.block_dots / 8);
        sc_span = Bytes.empty;
      }

let scratch_release s =
  let pool = Domain.DLS.get scratch_pool in
  pool := s :: !pool

(* An all-zero block image, shared by every device and never written
   (it is only ever a [write_image_at] source). *)
let zero_image = Bytes.make (Layout.block_dots / 8) '\x00'

type t = {
  config : config;
  layout : Layout.t;
  pdevice : Probe.Pdevice.t;
  generations : int array; (* per logical PBA *)
  heated : bool array; (* per logical line; cache of the medium's truth *)
  (* Grown-defect remap: [phys_line] maps logical line -> physical line
     (a permutation; identity until a retirement), [log_of_phys] its
     inverse.  Frames always embed the {e logical} PBA, so a migrated
     line's data re-hashes to the same burned hash at its new home. *)
  phys_line : int array;
  log_of_phys : int array;
  mutable spare_pool : int list; (* pristine spare physical lines, FIFO *)
  retired : bool array; (* per physical line: a vacated carcass *)
  health : Health.t; (* indexed by logical line *)
  defects_of_phys : int array; (* manufacturing defect dots per phys line *)
  mutable dstate : device_state;
  mutable migrations : migration list; (* oldest first *)
  (* Scratch buffers, pooled per domain: materialised on first use,
     given back by [park].  Never live across a nested device call. *)
  mutable scratch : scratch option;
  (* Payload-sized memory traffic on paths that had to materialise a
     fresh buffer (bool-array fallbacks, retained string copies).  The
     zero-copy read/write paths leave it untouched, which is what the
     bench counters assert. *)
  mutable bytes_copied : int;
  mutable reads : int;
  mutable writes : int;
  mutable heats : int;
  mutable verifies : int;
  (* RAS counters *)
  mutable retries : int;
  mutable retry_successes : int;
  mutable repulses : int;
  mutable remapped_tips : int;
  mutable scrub_rewrites : int;
  mutable torn_completions : int;
  mutable line_retirements : int;
  mutable reattest_failures : int;
  (* Mutation listeners let a layer above (the buffer cache) observe
     every path that changes block contents under it — scrub rewrites,
     heat/burn completions, attacker writes — so stale copies can never
     mask what is actually on the medium. *)
  mutable mutation_listeners : (pba:int -> n:int -> unit) list;
  mutable fault_listeners : (unit -> unit) list;
}

let create config =
  let layout =
    Layout.create ~spare_lines:config.endurance.spare_lines
      ~n_blocks:config.n_blocks ~line_exp:config.line_exp ()
  in
  let medium =
    Pmedia.Medium.create
      {
        Pmedia.Medium.rows = config.n_blocks;
        cols = Layout.block_dots;
        geometry = config.geometry;
        material = config.material;
        defect_rate = config.defect_rate;
        seed = config.seed;
      }
  in
  let pconfig =
    {
      Probe.Pdevice.n_tips = config.n_tips;
      spare_tips = config.ras.spare_tips;
      costs = config.costs;
      profile = None;
      erb_cycles = config.erb_cycles;
    }
  in
  let n_lines = Layout.n_lines layout in
  let line_dots = Layout.blocks_per_line layout * Layout.block_dots in
  (* Manufacturing defect density per physical line, fed to the health
     ledger as permanently at-risk symbols.  The clean-row bitmap makes
     the common (defect-free) line a single query. *)
  let defects_of_phys =
    Array.init n_lines (fun l ->
        let start = l * line_dots in
        if Pmedia.Medium.run_defect_free medium ~start ~len:line_dots then 0
        else begin
          let n = ref 0 in
          for d = start to start + line_dots - 1 do
            if Pmedia.Medium.is_defect medium d then incr n
          done;
          !n
        end)
  in
  let health =
    Health.create
      ~config:
        {
          Health.alpha = config.endurance.ewma_alpha;
          retire_margin = config.endurance.retire_margin;
        }
      ~n_lines ()
  in
  Array.iteri (fun l n -> Health.set_defects health ~line:l n) defects_of_phys;
  {
    config;
    layout;
    pdevice = Probe.Pdevice.create ~config:pconfig medium;
    generations = Array.make config.n_blocks 0;
    heated = Array.make n_lines false;
    phys_line = Array.init n_lines (fun l -> l);
    log_of_phys = Array.init n_lines (fun l -> l);
    spare_pool =
      List.init config.endurance.spare_lines (fun i ->
          Layout.usable_lines layout + i);
    retired = Array.make n_lines false;
    health;
    defects_of_phys;
    dstate = Healthy;
    migrations = [];
    scratch = None;
    bytes_copied = 0;
    reads = 0;
    writes = 0;
    heats = 0;
    verifies = 0;
    retries = 0;
    retry_successes = 0;
    repulses = 0;
    remapped_tips = 0;
    scrub_rewrites = 0;
    torn_completions = 0;
    line_retirements = 0;
    reattest_failures = 0;
    mutation_listeners = [];
    fault_listeners = [];
  }

(* CoW device snapshot off a golden image.  The probe device clones
   copy-on-write ({!Probe.Pdevice.clone}); every mutable SERO-layer
   array deep-copies; immutable lists (spare pool, migration log — both
   only ever replaced wholesale) are shared.  Listener lists are
   deliberately {e not} inherited: a cache or campaign observer attached
   to the parent must never see (or mask) the clone's mutations, and
   clones can never share or launder tamper evidence through a common
   observer.  A parent's live injector is likewise never inherited
   (its PRNG cursor and ledger are the parent's history); [?plan] arms
   the clone with a {e fresh} injector of its own instead. *)
let clone ?plan t =
  let c =
    {
    config = t.config;
    layout = t.layout;
    pdevice = Probe.Pdevice.clone t.pdevice;
    generations = Array.copy t.generations;
    heated = Array.copy t.heated;
    phys_line = Array.copy t.phys_line;
    log_of_phys = Array.copy t.log_of_phys;
    spare_pool = t.spare_pool;
    retired = Array.copy t.retired;
    health = Health.copy t.health;
    defects_of_phys = t.defects_of_phys (* immutable after create *);
    dstate = t.dstate;
    migrations = t.migrations;
    scratch = None;
    bytes_copied = t.bytes_copied;
    reads = t.reads;
    writes = t.writes;
    heats = t.heats;
    verifies = t.verifies;
    retries = t.retries;
    retry_successes = t.retry_successes;
    repulses = t.repulses;
    remapped_tips = t.remapped_tips;
    scrub_rewrites = t.scrub_rewrites;
    torn_completions = t.torn_completions;
    line_retirements = t.line_retirements;
      reattest_failures = t.reattest_failures;
      mutation_listeners = [];
      fault_listeners = [];
    }
  in
  (match plan with
  | Some p -> Probe.Pdevice.install_fault c.pdevice (Fault.Injector.create p)
  | None -> ());
  c

let scratch t =
  match t.scratch with
  | Some s -> s
  | None ->
      let s = scratch_acquire () in
      t.scratch <- Some s;
      s

let park t =
  match t.scratch with
  | Some s ->
      t.scratch <- None;
      scratch_release s
  | None -> ()

let config t = t.config
let layout t = t.layout
let pdevice t = t.pdevice
let health t = t.health
let device_state t = t.dstate
let migrations t = t.migrations
let spares_left t = List.length t.spare_pool
let spare_pool t = t.spare_pool
let phys_of_line t ~line = t.phys_line.(line)
let bytes_copied t = t.bytes_copied

(* {1 Grown-defect address translation}

   Honest firmware addresses dots through the remap table, so a retired
   line's logical blocks transparently read from their new physical
   home; frames keep their logical PBAs, which is what lets a migrated
   line reproduce its burned hash.  The raw attacker surface below
   bypasses this (the attacker addresses the physical medium). *)

let phys_block t pba =
  let bpl = Layout.blocks_per_line t.layout in
  let line = pba / bpl in
  let p = Array.unsafe_get t.phys_line line in
  if p = line then pba else (p * bpl) + (pba - (line * bpl))

let block_start t pba = Layout.block_first_dot t.layout (phys_block t pba)

let wo_start t ~line =
  Layout.wo_first_dot t.layout ~line:t.phys_line.(line)

(* Whether every line touched by [pba .. pba+n-1] is identity-mapped:
   the precondition for the bulk packed span (physical contiguity). *)
let span_identity t ~pba ~n =
  let bpl = Layout.blocks_per_line t.layout in
  let first = pba / bpl and last = (pba + n - 1) / bpl in
  let ok = ref true in
  for l = first to last do
    if t.phys_line.(l) <> l then ok := false
  done;
  !ok

let quarantined t ~line =
  Layout.is_spare_line t.layout line && t.retired.(t.phys_line.(line))

let migration_from t ~phys =
  List.find_opt (fun m -> m.m_from = phys) t.migrations

let add_mutation_listener t f =
  t.mutation_listeners <- f :: t.mutation_listeners

let notify_mutation t ~pba ~n =
  List.iter (fun f -> f ~pba ~n) t.mutation_listeners

let on_fault_install t f = t.fault_listeners <- f :: t.fault_listeners
let fault_installed t = Probe.Pdevice.fault t.pdevice <> None

let install_fault t inj =
  (* Listeners run first, before the injector arms: a cache flushing
     write-behind data here still writes through a healthy device, so
     the medium a fault plan perturbs is the same one an uncached
     device would present. *)
  List.iter (fun f -> f ()) t.fault_listeners;
  Probe.Pdevice.install_fault t.pdevice inj

let clear_fault t = Probe.Pdevice.clear_fault t.pdevice

(* Remap every logical tip whose serving unit is broken onto the next
   healthy spare; returns how many remaps happened. *)
let service_failed_tips t =
  if t.config.ras.spare_tips = 0 then 0
  else begin
    let tips = Probe.Pdevice.tips t.pdevice in
    let n = ref 0 in
    for i = 0 to Probe.Tips.n_tips tips - 1 do
      if Probe.Tips.tip_failed tips i && Probe.Tips.remap_tip tips i then begin
        incr n;
        t.remapped_tips <- t.remapped_tips + 1;
        Health.note_tip_remap t.health
      end
    done;
    !n
  end

(* Bits are bytes scanned MSB-first, matching Codec.Manchester. *)
let bits_of_string_into out s =
  let n = String.length s in
  for i = 0 to n - 1 do
    let v = Char.code (String.unsafe_get s i) in
    let base = 8 * i in
    Array.unsafe_set out base (v land 0x80 <> 0);
    Array.unsafe_set out (base + 1) (v land 0x40 <> 0);
    Array.unsafe_set out (base + 2) (v land 0x20 <> 0);
    Array.unsafe_set out (base + 3) (v land 0x10 <> 0);
    Array.unsafe_set out (base + 4) (v land 0x08 <> 0);
    Array.unsafe_set out (base + 5) (v land 0x04 <> 0);
    Array.unsafe_set out (base + 6) (v land 0x02 <> 0);
    Array.unsafe_set out (base + 7) (v land 0x01 <> 0)
  done;
  out

(* Pack a bool array into MSB-first bytes, into a caller-owned buffer
   (the bridge from the bool-array fallback read to the packed image
   the decoders consume). *)
let pack_bits_into bits (dst : Bytes.t) =
  let n = Bytes.length dst in
  for byte = 0 to n - 1 do
    let base = 8 * byte in
    let v =
      (if Array.unsafe_get bits base then 0x80 else 0)
      lor (if Array.unsafe_get bits (base + 1) then 0x40 else 0)
      lor (if Array.unsafe_get bits (base + 2) then 0x20 else 0)
      lor (if Array.unsafe_get bits (base + 3) then 0x10 else 0)
      lor (if Array.unsafe_get bits (base + 4) then 0x08 else 0)
      lor (if Array.unsafe_get bits (base + 5) then 0x04 else 0)
      lor (if Array.unsafe_get bits (base + 6) then 0x02 else 0)
      lor if Array.unsafe_get bits (base + 7) then 0x01 else 0
    in
    Bytes.unsafe_set dst byte (Char.unsafe_chr v)
  done

(* {1 Magnetic sector ops} *)

type write_error = Reserved_hash_block | In_heated_line | Read_only_device

type read_error =
  | Blank
  | Unreadable of Codec.Sector.error
  | Wrong_location of int

let pp_write_error ppf = function
  | Reserved_hash_block ->
      Format.pp_print_string ppf "reserved hash block"
  | In_heated_line -> Format.pp_print_string ppf "line is read-only (heated)"
  | Read_only_device ->
      Format.pp_print_string ppf
        "device is read-only (endurance spares exhausted)"

let pp_read_error ppf = function
  | Blank -> Format.pp_print_string ppf "blank"
  | Unreadable e -> Format.fprintf ppf "unreadable (%a)" Codec.Sector.pp_error e
  | Wrong_location pba -> Format.fprintf ppf "frame belongs at PBA %d" pba

let frame_kind pba t =
  if Layout.is_hash_block t.layout pba then Codec.Sector.Hash_meta
  else Codec.Sector.Data

(* Write a block image at a physical first dot, preferring the packed
   kernel (which consumes the encoded image bytes directly); the
   bool-array unpack only happens when the kernel declines (faults,
   broken or remapped tips).  Both sides leave identical medium state,
   ledgers and wear. *)
let write_image_at t ~start image =
  if
    not
      (Probe.Pdevice.write_run_packed t.pdevice ~start ~len:Layout.block_dots
         ~src:image)
  then begin
    t.bytes_copied <- t.bytes_copied + Bytes.length image;
    Probe.Pdevice.write_run t.pdevice ~start
      (bits_of_string_into (scratch t).sc_block (Bytes.unsafe_to_string image))
  end

let unsafe_write_block t ~pba payload =
  t.writes <- t.writes + 1;
  t.generations.(pba) <- t.generations.(pba) + 1;
  let image =
    Codec.Sector.encode ~pba ~kind:(frame_kind pba t)
      ~generation:t.generations.(pba) payload
  in
  write_image_at t ~start:(block_start t pba) (Bytes.unsafe_of_string image);
  notify_mutation t ~pba ~n:1

let unsafe_write_raw t ~pba image =
  if String.length image <> Codec.Sector.physical_bytes then
    invalid_arg "Device.unsafe_write_raw: wrong image size";
  t.writes <- t.writes + 1;
  write_image_at t ~start:(block_start t pba) (Bytes.unsafe_of_string image);
  notify_mutation t ~pba ~n:1

(* Read the raw image of [pba] into [scratch_image].  The packed read
   skips the bool-array unpack/repack round trip; it declines (touching
   nothing) under faults, broken tips, defects or read noise, and the
   classic path takes over and packs into the same scratch. *)
let read_image_into_scratch t ~pba =
  t.reads <- t.reads + 1;
  let sc = scratch t in
  let start = block_start t pba in
  if
    not
      (Probe.Pdevice.read_run_packed t.pdevice ~start ~len:Layout.block_dots
         ~dst:sc.sc_image)
  then begin
    Probe.Pdevice.read_run_into t.pdevice ~start ~len:Layout.block_dots
      ~dst:sc.sc_block;
    t.bytes_copied <- t.bytes_copied + Bytes.length sc.sc_image;
    pack_bits_into sc.sc_block sc.sc_image
  end

let read_raw_view t ~pba =
  read_image_into_scratch t ~pba;
  (scratch t).sc_image

let unsafe_read_raw t ~pba =
  read_image_into_scratch t ~pba;
  let image = (scratch t).sc_image in
  t.bytes_copied <- t.bytes_copied + Bytes.length image;
  Bytes.sub_string image 0 (Bytes.length image)

let write_block t ~pba payload =
  if t.dstate = Read_only then Error Read_only_device
  else if Layout.is_hash_block t.layout pba then Error Reserved_hash_block
  else if t.heated.(Layout.line_of_block t.layout pba) then
    Error In_heated_line
  else begin
    unsafe_write_block t ~pba payload;
    Ok ()
  end

let all_zero_sub buf off len =
  let ok = ref true in
  for i = off to off + len - 1 do
    if Bytes.unsafe_get buf i <> '\x00' then ok := false
  done;
  !ok

(* Every sector decode feeds the health ledger — pure observation, so a
   health-enabled device still returns bit-identical results.  Decodes
   straight out of the caller's buffer (scratch image or span). *)
let decode_image_sub t ~pba buf ~off =
  let line = Layout.line_of_block t.layout pba in
  match Codec.Sector.decode_sub buf ~off with
  | Error e ->
      if all_zero_sub buf off Codec.Sector.physical_bytes then Error Blank
      else begin
        Health.note_unreadable t.health ~line;
        Error (Unreadable e)
      end
  | Ok d ->
      Health.note_decode t.health ~line
        ~corrected:d.Codec.Sector.corrected_symbols;
      if d.Codec.Sector.pba <> pba then Error (Wrong_location d.Codec.Sector.pba)
      else Ok d.Codec.Sector.payload

let read_block_once t ~pba =
  read_image_into_scratch t ~pba;
  decode_image_sub t ~pba (scratch t).sc_image ~off:0

(* Bounded read retry: transient flips decorrelate between attempts, so
   a re-read often lands within the RS budget.  A persistent failure may
   be a dead tip — remap to a spare (if configured) before retrying. *)
let ras_reread t ~pba first =
  ignore (service_failed_tips t);
  let line = Layout.line_of_block t.layout pba in
  let rec retry n last =
    if n >= t.config.ras.read_retries then last
    else begin
      t.retries <- t.retries + 1;
      match read_block_once t ~pba with
      | Ok _ as ok ->
          t.retry_successes <- t.retry_successes + 1;
          Health.note_retry t.health ~line ~won:true;
          ok
      | Error Blank as b -> b
      | Error _ as e ->
          Health.note_retry t.health ~line ~won:false;
          retry (n + 1) e
    end
  in
  retry 0 first

let read_block t ~pba =
  match read_block_once t ~pba with
  | (Ok _ | Error Blank) as r -> r
  | Error _ as first ->
      if not t.config.ras.ras_enabled then first else ras_reread t ~pba first

(* Coalesced sector reads: [n] consecutive blocks in one sled pass.
   When the packed whole-span kernel is available (healthy tips, no
   faults, defect-free, and block boundaries aligned with scan rows so
   the per-offset charges land exactly as n single reads would), the
   span is read in one [read_run_packed] and sliced into frames;
   otherwise each block goes through the ordinary [read_block].  Either
   way, results, counters, ledger charges and PRNG draws match the
   sequential loop — the only divergence is {e when} RAS retries of a
   failing non-blank frame are issued (after the span instead of
   mid-pass), which can reorder retry seeks. *)
let read_blocks t ~pba ~n =
  if n <= 0 then invalid_arg "Device.read_blocks: n must be positive";
  if pba < 0 || pba + n > t.config.n_blocks then
    invalid_arg "Device.read_blocks: PBA range out of bounds";
  let bytes_per_block = Layout.block_dots / 8 in
  let len = n * Layout.block_dots in
  (* The span scratch is reused across calls (grown on demand, never
     shrunk) and is not live across a nested device call: the only
     device re-entry below, [ras_reread], reads through [sc_image]. *)
  let sc = scratch t in
  if n > 1 && Bytes.length sc.sc_span < n * bytes_per_block then
    sc.sc_span <- Bytes.create (n * bytes_per_block);
  if
    n > 1
    && Layout.block_dots mod t.config.n_tips = 0
    && span_identity t ~pba ~n
    && Probe.Pdevice.read_run_packed t.pdevice
         ~start:(Layout.block_first_dot t.layout pba)
         ~len ~dst:sc.sc_span
  then begin
    t.reads <- t.reads + n;
    Array.init n (fun k ->
        let pba = pba + k in
        match decode_image_sub t ~pba sc.sc_span ~off:(k * bytes_per_block) with
        | (Ok _ | Error Blank) as r -> r
        | Error _ as first ->
            if not t.config.ras.ras_enabled then first
            else ras_reread t ~pba first)
  end
  else Array.init n (fun k -> read_block t ~pba:(pba + k))

(* {1 The write-once area} *)

let wo_magic = 0x534C

(* Logical layout of the 256 Manchester-encoded bytes: 32-byte hash,
   then magic, line, data-block count and timestamp; the remainder is
   zero-filled so that {e every} cell of a burned area is non-blank and
   nothing can be burned in later without creating HH evidence. *)
let wo_payload ~hash ~line ~n_data ~timestamp =
  let w = Codec.Binio.W.create ~capacity:Layout.wo_area_bytes () in
  Codec.Binio.W.raw w (Hash.Sha256.to_raw hash);
  Codec.Binio.W.u16 w wo_magic;
  Codec.Binio.W.u32 w line;
  Codec.Binio.W.u16 w n_data;
  Codec.Binio.W.f64 w timestamp;
  let body = Codec.Binio.W.contents w in
  body ^ String.make (Layout.wo_area_bytes - String.length body) '\x00'

type burned_meta = {
  line : int;
  n_data_blocks : int;
  timestamp : float;
  hash : Hash.Sha256.t;
}

type torn = { burned_cells : int; partial_payload : string }

let parse_wo_payload payload =
  let r = Codec.Binio.R.of_string payload in
  match
    let hash = Hash.Sha256.of_raw (Codec.Binio.R.raw r 32) in
    let magic = Codec.Binio.R.u16 r in
    let line = Codec.Binio.R.u32 r in
    let n_data = Codec.Binio.R.u16 r in
    let timestamp = Codec.Binio.R.f64 r in
    (hash, magic, line, n_data, timestamp)
  with
  | exception Codec.Binio.R.Truncated -> None
  | hash, magic, line, n_data, timestamp ->
      if magic <> wo_magic then None
      else Some { line; n_data_blocks = n_data; timestamp; hash }

(* Electrically read a write-once area whose first dot is [start].

   The paper's erb sequence misreads a heated dot as unheated with
   probability 1/4 per invert/verify round (its two verification reads
   of a heated dot are random and can both agree by luck), so a naive
   single pass over 4096 dots regularly turns one heated dot of a
   legitimately burned area into a phantom blank cell.  The device
   therefore reads adaptively: a cheap first pass, then heavy re-probing
   of only the cells that decoded as blank.  After 2 + 24 rounds the
   residual miss probability per dot is 4^-26. *)
let escalation_cycles = 24

let read_wo_area t ~start =
  let heated_dots = (scratch t).sc_wo in
  Probe.Pdevice.erb_run_into t.pdevice ~start ~len:Layout.wo_area_dots
    ~dst:heated_dots;
  let decode () =
    Codec.Manchester.decode
      ~heated:(fun i -> heated_dots.(i))
      ~n_bytes:Layout.wo_area_bytes
  in
  let first = decode () in
  let n_cells = 8 * Layout.wo_area_bytes in
  let all_blank =
    List.length first.Codec.Manchester.blank_cells = n_cells
  in
  let decoded =
    if all_blank || first.Codec.Manchester.blank_cells = [] then first
    else begin
      (* Suspicious blanks inside a burned area: re-probe those cells'
         dots hard before believing them. *)
      List.iter
        (fun cell ->
          let d0 = start + (2 * cell) in
          let re =
            Probe.Pdevice.erb_run ~cycles:escalation_cycles t.pdevice
              ~start:d0 ~len:2
          in
          heated_dots.(2 * cell) <- heated_dots.(2 * cell) || re.(0);
          heated_dots.((2 * cell) + 1) <- heated_dots.((2 * cell) + 1) || re.(1))
        first.Codec.Manchester.blank_cells;
      decode ()
    end
  in
  if all_blank then `Not_heated
  else if decoded.Codec.Manchester.tampered_cells <> [] then
    `Tampered
      [ Tamper.Invalid_cells (List.length decoded.Codec.Manchester.tampered_cells) ]
  else if decoded.Codec.Manchester.blank_cells <> [] then
    (* Burned and blank cells mixed, but no HH evidence anywhere: the
       signature of an interrupted or underpowered burn (cells are
       written low-to-high, so a power cut leaves a burned prefix;
       weak pulses leave isolated holes).  Verification still treats
       this as [Partially_burned] evidence; [heat_line] can complete
       it. *)
    `Torn
      {
        burned_cells =
          n_cells - List.length decoded.Codec.Manchester.blank_cells;
        partial_payload = decoded.Codec.Manchester.payload;
      }
  else
    match parse_wo_payload decoded.Codec.Manchester.payload with
    | None -> `Tampered [ Tamper.Meta_corrupt ]
    | Some meta -> `Burned meta

let read_hash_block t ~line = read_wo_area t ~start:(wo_start t ~line)

(* {1 Hashing} *)

let hash_prefix = "SERO-line-v1"

(* Big-endian, matching what {!Codec.Binio.W} would lay out — the hash
   preimage is unchanged; only the per-block writer allocation is
   gone. *)
let set_be32 b off v =
  Bytes.unsafe_set b off (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr (v land 0xFF))

let line_hash_of_payloads ~line payloads =
  let ctx = Hash.Sha256.init () in
  Hash.Sha256.feed_string ctx hash_prefix;
  let b = Bytes.create 8 in
  set_be32 b 0 line;
  Hash.Sha256.feed_bytes ctx b 0 4;
  List.iter
    (fun (pba, payload) ->
      set_be32 b 0 (pba lsr 32);
      set_be32 b 4 pba;
      Hash.Sha256.feed_bytes ctx b 0 8;
      Hash.Sha256.feed_string ctx payload)
    payloads;
  Hash.Sha256.finalize ctx

(* Read the data blocks of a region, partitioning failures. *)
let read_region t ~data_pbas =
  List.fold_left
    (fun (ok, unreadable, relocated) pba ->
      match read_block t ~pba with
      | Ok payload -> ((pba, payload) :: ok, unreadable, relocated)
      | Error (Blank | Unreadable _) -> (ok, pba :: unreadable, relocated)
      | Error (Wrong_location _) -> (ok, unreadable, pba :: relocated))
    ([], [], []) data_pbas
  |> fun (ok, u, r) -> (List.rev ok, List.rev u, List.rev r)

(* Same partitioning over a whole line's data blocks without building
   the PBA list.  A line's data blocks are physically contiguous, so
   the whole line goes through one coalesced span read — one sled pass
   and one packed kernel call when the fast path holds, block-by-block
   otherwise. *)
let read_line t ~line =
  let first = Layout.first_data_block t.layout line in
  let n = Layout.data_blocks_per_line t.layout in
  let results = read_blocks t ~pba:first ~n in
  let ok = ref [] and unreadable = ref [] and relocated = ref [] in
  for k = n - 1 downto 0 do
    let pba = first + k in
    match results.(k) with
    | Ok payload -> ok := (pba, payload) :: !ok
    | Error (Blank | Unreadable _) -> unreadable := pba :: !unreadable
    | Error (Wrong_location _) -> relocated := pba :: !relocated
  done;
  (!ok, !unreadable, !relocated)

(* {1 Heat and verify} *)

type heat_error = Unreadable_data of int list | Already_heated | Burn_verify_failed

let pp_heat_error ppf = function
  | Unreadable_data pbas ->
      Format.fprintf ppf "unreadable data blocks: %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        pbas
  | Already_heated -> Format.pp_print_string ppf "line already heated"
  | Burn_verify_failed -> Format.pp_print_string ppf "burn verification failed"

let burn_wo_area t ~start ~payload =
  let pattern = Codec.Manchester.encode payload in
  Probe.Pdevice.heat_run t.pdevice ~start pattern

let heat_line_inner t ~line ~timestamp =
  t.heats <- t.heats + 1;
  let payloads, unreadable, relocated = read_line t ~line in
  if unreadable <> [] || relocated <> [] then
    Error (Unreadable_data (unreadable @ relocated))
  else begin
    let hash = line_hash_of_payloads ~line payloads in
    let start = wo_start t ~line in
    (* Burn, verify, and (with RAS) re-pulse while the readback still
       looks like an incomplete burn rather than tamper evidence.
       Re-burning is idempotent: ewb on an already-heated dot is a
       no-op, so each attempt only fills the missing cells. *)
    let burn_and_verify payload =
      let attempts =
        1 + if t.config.ras.ras_enabled then t.config.ras.max_repulses else 0
      in
      let rec go n =
        burn_wo_area t ~start ~payload;
        match read_hash_block t ~line with
        | `Burned meta when Hash.Sha256.equal meta.hash hash ->
            t.heated.(line) <- true;
            Ok hash
        | (`Not_heated | `Torn _ | `Tampered _ | `Burned _) as readback ->
            let incomplete =
              match readback with
              | `Not_heated | `Torn _ -> true
              | `Tampered evs ->
                  List.for_all (( = ) Tamper.Partially_burned) evs
              | `Burned _ -> false
            in
            if incomplete && n < attempts then begin
              t.repulses <- t.repulses + 1;
              go (n + 1)
            end
            else Error Burn_verify_failed
      in
      go 1
    in
    match read_hash_block t ~line with
    | `Burned meta when Hash.Sha256.equal meta.hash hash ->
        (* Idempotent re-heat: the burn pattern is already present. *)
        Ok hash
    | `Burned _ | `Tampered _ -> Error Already_heated
    | `Torn partial ->
        (* Torn-burn completion.  If the burned prefix covers the
           metadata, keep the original timestamp; the recomputed
           pattern must agree with every already-burned cell or the
           completion itself creates HH evidence and fails verify —
           data changed under a torn line stays detectable. *)
        let timestamp =
          match parse_wo_payload partial.partial_payload with
          | Some meta when meta.line = line -> meta.timestamp
          | Some _ | None -> timestamp
        in
        let payload =
          wo_payload ~hash ~line ~n_data:(List.length payloads) ~timestamp
        in
        Result.map
          (fun h ->
            t.torn_completions <- t.torn_completions + 1;
            h)
          (burn_and_verify payload)
    | `Not_heated ->
        burn_and_verify
          (wo_payload ~hash ~line ~n_data:(List.length payloads) ~timestamp)
  end

let heat_line t ~line ?(timestamp = 0.) () =
  let r = heat_line_inner t ~line ~timestamp in
  (* A successful heat (fresh burn, torn completion, or idempotent
     re-heat) freezes the line and burns its write-once area: anything
     cached for those blocks must now be re-read from the medium. *)
  (match r with
  | Ok _ ->
      notify_mutation t
        ~pba:(Layout.hash_block_of_line t.layout line)
        ~n:(Layout.blocks_per_line t.layout)
  | Error _ -> ());
  r

let verify_payloads ~hash ~region_id (payloads, unreadable, relocated) =
  let evidence = ref [] in
  if relocated <> [] then evidence := [ Tamper.Address_mismatch relocated ];
  if unreadable <> [] then
    evidence := Tamper.Data_unreadable unreadable :: !evidence;
  if !evidence <> [] then Tamper.Tampered !evidence
  else begin
    let computed = line_hash_of_payloads ~line:region_id payloads in
    if Hash.Sha256.equal computed hash then Tamper.Intact
    else Tamper.Tampered [ Tamper.Hash_mismatch ]
  end

let verify_data_against t ~hash ~region_id ~data_pbas =
  verify_payloads ~hash ~region_id (read_region t ~data_pbas)

(* A quarantined carcass is judged against its migration link, never
   against its (decaying, superseded) data: the burn must still carry
   the hash that was re-attested at the line's new home.  An attacker
   altering either copy of the evidence chain therefore still shows. *)
let verify_carcass t ~line =
  match migration_from t ~phys:t.phys_line.(line) with
  | None -> Tamper.Tampered [ Tamper.Meta_corrupt ]
  | Some m -> (
      match (read_hash_block t ~line, m.m_hash) with
      | `Not_heated, None -> Tamper.Not_heated
      | `Burned meta, Some h
        when meta.line = m.m_line && Hash.Sha256.equal meta.hash h ->
          Tamper.Intact
      | `Torn _, _ -> Tamper.Tampered [ Tamper.Partially_burned ]
      | `Tampered evs, _ -> Tamper.Tampered evs
      | (`Not_heated | `Burned _), _ ->
          Tamper.Tampered [ Tamper.Meta_corrupt ])

let verify_line t ~line =
  t.verifies <- t.verifies + 1;
  if quarantined t ~line then verify_carcass t ~line
  else
    match read_hash_block t ~line with
    | `Not_heated -> Tamper.Not_heated
    | `Tampered evs -> Tamper.Tampered evs
    | `Torn _ ->
        (* Until completed, a torn burn is indistinguishable from an
           interrupted forgery: report it. *)
        Tamper.Tampered [ Tamper.Partially_burned ]
    | `Burned meta ->
        if meta.line <> line then Tamper.Tampered [ Tamper.Meta_corrupt ]
        else verify_payloads ~hash:meta.hash ~region_id:line (read_line t ~line)

let verify_region t ~hash_pba ~data_pbas =
  t.verifies <- t.verifies + 1;
  let aligned = Layout.is_hash_block t.layout hash_pba in
  if t.config.strict_hash_locations && not aligned then
    (* The device insists hashes live at known physical addresses; a
       claimed hash anywhere else is itself evidence (Section 5.1). *)
    Tamper.Tampered [ Tamper.Address_mismatch [ hash_pba ] ]
  else
    match read_wo_area t ~start:(block_start t hash_pba) with
    | `Not_heated -> Tamper.Not_heated
    | `Tampered evs -> Tamper.Tampered evs
    | `Torn _ -> Tamper.Tampered [ Tamper.Partially_burned ]
    | `Burned meta ->
        verify_data_against t ~hash:meta.hash ~region_id:meta.line ~data_pbas

let is_line_heated t ~line = t.heated.(line)

(* {1 Whole-device operations} *)

type scan_entry = { scanned_line : int; verdict : Tamper.verdict }

let scan ?(deep = false) t =
  List.init (Layout.n_lines t.layout) (fun line ->
      let verdict =
        if quarantined t ~line then verify_carcass t ~line
        else
          match read_hash_block t ~line with
          | `Not_heated -> Tamper.Not_heated
          | `Tampered evs -> Tamper.Tampered evs
          | `Torn _ -> Tamper.Tampered [ Tamper.Partially_burned ]
          | `Burned _ when not deep -> Tamper.Intact
          | `Burned _ -> verify_line t ~line
      in
      t.heated.(line) <-
        (match verdict with
        | Tamper.Not_heated -> false
        | Tamper.Intact | Tamper.Tampered _ -> true);
      { scanned_line = line; verdict })

type block_class =
  | Healthy
  | Heated_block
  | Torn_block
  | Bad_block
  | Retired_block

let pp_block_class ppf c =
  Format.pp_print_string ppf
    (match c with
    | Healthy -> "healthy"
    | Heated_block -> "heated"
    | Torn_block -> "torn"
    | Bad_block -> "bad"
    | Retired_block -> "retired")

let classify_block t ~pba =
  (* The spare region is owned by the endurance layer: pristine spares
     and retired carcasses alike must not be reported as bad blocks by
     fsck or scrub inventories. *)
  if Layout.is_spare_line t.layout (Layout.line_of_block t.layout pba) then
    Retired_block
  else
    match read_block t ~pba with
  | Ok _ | Error Blank -> Healthy
  | Error (Unreadable _ | Wrong_location _) -> (
      (* A hash block with a half-burned write-once area is a torn
         burn — recoverable by re-running heat_line — not a heated or
         bad block. *)
      let torn_hash_area () =
        if not (Layout.is_hash_block t.layout pba) then None
        else
          match read_hash_block t ~line:(Layout.line_of_block t.layout pba) with
          | `Torn _ -> Some Torn_block
          | `Burned _ -> Some Heated_block
          | `Not_heated | `Tampered _ -> None
      in
      match torn_hash_area () with
      | Some c -> c
      | None ->
          (* Probe a sample of the block's dots electrically: heated dots
             answer the erb protocol as heated, defective-but-magnetic
             dots do not. *)
          let start = block_start t pba in
          let sample = 128 in
          let heated = Probe.Pdevice.erb_run t.pdevice ~start ~len:sample in
          let n =
            Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 heated
          in
          if 4 * n >= sample then Heated_block else Bad_block)

type stats = {
  n_lines : int;
  heated_lines : int;
  ro_fraction : float;
  wmrm_data_blocks_left : int;
  heated_runs : int;
  elapsed : float;
  energy : float;
  reads : int;
  writes : int;
  heats : int;
  verifies : int;
  collateral_damage : int;
  retries : int;
  retry_successes : int;
  repulses : int;
  remapped_tips : int;
  scrub_rewrites : int;
  torn_completions : int;
  line_retirements : int;
  reattest_failures : int;
  spare_lines_left : int;
  state : device_state;
}

let stats t =
  let n_lines = Layout.n_lines t.layout in
  let heated_lines = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.heated in
  let runs = ref 0 in
  Array.iteri
    (fun i h -> if h && ((i = 0) || not t.heated.(i - 1)) then incr runs)
    t.heated;
  let counters = Pmedia.Bitops.counters (Probe.Pdevice.bitops t.pdevice) in
  {
    n_lines;
    heated_lines;
    ro_fraction = float_of_int heated_lines /. float_of_int n_lines;
    wmrm_data_blocks_left =
      (n_lines - heated_lines) * Layout.data_blocks_per_line t.layout;
    heated_runs = !runs;
    elapsed = Probe.Pdevice.elapsed t.pdevice;
    energy = Probe.Pdevice.energy t.pdevice;
    reads = t.reads;
    writes = t.writes;
    heats = t.heats;
    verifies = t.verifies;
    collateral_damage = counters.Pmedia.Bitops.collateral;
    retries = t.retries;
    retry_successes = t.retry_successes;
    repulses = t.repulses;
    remapped_tips = t.remapped_tips;
    scrub_rewrites = t.scrub_rewrites;
    torn_completions = t.torn_completions;
    line_retirements = t.line_retirements;
    reattest_failures = t.reattest_failures;
    spare_lines_left = List.length t.spare_pool;
    state = t.dstate;
  }

let is_fully_ro t = Array.for_all (fun h -> h) t.heated

(* Scrub-initiated rewrite of a decaying (but still correctable) sector:
   same payload, fresh frame, so the accumulated symbol errors reset. *)
let scrub_rewrite_block (t : t) ~pba payload =
  t.scrub_rewrites <- t.scrub_rewrites + 1;
  unsafe_write_block t ~pba payload

let pp_stats ppf s =
  Format.fprintf ppf
    "lines=%d heated=%d (%.1f%% RO, %d runs) wmrm-data-blocks=%d@ \
     ops: %d reads, %d writes, %d heats, %d verifies@ \
     simulated: %.3f s, %.3g J, %d collateral dots@ \
     ras: %d retries (%d won), %d re-pulses, %d remapped tips, %d scrub \
     rewrites, %d torn completions@ \
     endurance: %a, %d retirements (%d re-attest failures), %d spares left"
    s.n_lines s.heated_lines (100. *. s.ro_fraction) s.heated_runs
    s.wmrm_data_blocks_left s.reads s.writes s.heats s.verifies s.elapsed
    s.energy s.collateral_damage s.retries s.retry_successes s.repulses
    s.remapped_tips s.scrub_rewrites s.torn_completions pp_device_state
    s.state s.line_retirements s.reattest_failures s.spare_lines_left

(* {1 Endurance lifecycle: evacuate-and-re-attest migration} *)

type migrate_error =
  | No_spare
  | Line_quarantined
  | Source_unreadable of int list
  | Reattest_failed

let pp_migrate_error ppf = function
  | No_spare -> Format.pp_print_string ppf "no spare line left"
  | Line_quarantined ->
      Format.pp_print_string ppf "line is quarantined (already a carcass)"
  | Source_unreadable pbas ->
      Format.fprintf ppf "source blocks unreadable: %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        pbas
  | Reattest_failed ->
      Format.pp_print_string ppf
        "re-attestation failed (evidence would not survive the move)"

(* Write a frame carrying the {e logical} [pba] at an explicit physical
   block — the copy primitive of migration.  Bumps the generation like
   any rewrite of the block. *)
let write_frame_at_phys (t : t) ~pba ~phys_pba payload =
  t.writes <- t.writes + 1;
  t.generations.(pba) <- t.generations.(pba) + 1;
  let image =
    Codec.Sector.encode ~pba ~kind:(frame_kind pba t)
      ~generation:t.generations.(pba) payload
  in
  write_image_at t
    ~start:(Layout.block_first_dot t.layout phys_pba)
    (Bytes.unsafe_of_string image)

let blank_block_at_phys (t : t) ~phys_pba =
  t.writes <- t.writes + 1;
  write_image_at t
    ~start:(Layout.block_first_dot t.layout phys_pba)
    zero_image

let update_state t =
  if t.config.endurance.health_enabled && t.spare_pool = [] then begin
    if t.dstate = Healthy && t.line_retirements > 0 then t.dstate <- Degraded;
    (* A critically weak line (its observed error level already consumes
       the whole RS budget) with nowhere to go: stop taking writes so
       what is still readable stays readable. *)
    let critical = ref false in
    for l = 0 to Layout.usable_lines t.layout - 1 do
      if Health.margin t.health ~line:l <= 0. then critical := true
    done;
    if !critical then t.dstate <- Read_only
  end

(* Relocate logical line [line] onto a fresh spare.

   Crash-ordering (the simulation keeps device state across a power
   cut, modelling a remap table persisted before the burn):
   1. read every data payload through the current mapping;
   2. pre-image the spare: each data slot gets its frame (logical PBA,
      bumped generation) or an explicit blank — a cut here leaves the
      mapping untouched, the old line still serves;
   3. swap the remap entries (the commit point) and quarantine the
      carcass;
   4. for a heated line, re-burn the {e original} hash/metadata at the
      new home — a cut mid-burn leaves a torn area over complete,
      matching data, which {!heat_line} (via [Fs.recover]) completes to
      the identical hash and timestamp.

   A heated line whose data no longer matches its burned hash, or whose
   write-once area is torn/tampered, is {e not} migrated: moving it
   would launder the tamper evidence ([Reattest_failed]). *)
let evacuate_line t ~line ?(timestamp = 0.) () =
  if line < 0 || line >= Layout.usable_lines t.layout then
    invalid_arg "Device.evacuate_line: not a usable line";
  if quarantined t ~line || t.retired.(t.phys_line.(line)) then
    Error Line_quarantined
  else
    match t.spare_pool with
    | [] ->
        update_state t;
        Error No_spare
    | spare :: rest -> (
        (* Like [read_line], but a blank block is a legal empty slot to
           carry across, not a loss. *)
        let payloads = ref [] and bad = ref [] in
        Layout.iter_data_blocks t.layout line (fun pba ->
            match read_block t ~pba with
            | Ok payload -> payloads := (pba, payload) :: !payloads
            | Error Blank -> ()
            | Error (Unreadable _ | Wrong_location _) -> bad := pba :: !bad);
        let payloads = List.rev !payloads and bad = List.rev !bad in
        if bad <> [] then Error (Source_unreadable bad)
        else
          let wo = read_hash_block t ~line in
          let proceed meta_opt =
            let bpl = Layout.blocks_per_line t.layout in
            (* 2: pre-image every data slot of the spare. *)
            Layout.iter_data_blocks t.layout line (fun pba ->
                let phys_pba = (spare * bpl) + (pba mod bpl) in
                match List.assoc_opt pba payloads with
                | Some payload -> write_frame_at_phys t ~pba ~phys_pba payload
                | None -> blank_block_at_phys t ~phys_pba);
            (* 3: commit — swap the permutation entries. *)
            let old_phys = t.phys_line.(line) in
            let spare_logical = t.log_of_phys.(spare) in
            t.phys_line.(line) <- spare;
            t.log_of_phys.(spare) <- line;
            t.phys_line.(spare_logical) <- old_phys;
            t.log_of_phys.(old_phys) <- spare_logical;
            t.spare_pool <- rest;
            t.retired.(old_phys) <- true;
            t.line_retirements <- t.line_retirements + 1;
            let m =
              {
                m_line = line;
                m_from = old_phys;
                m_to = spare;
                m_heated = meta_opt <> None;
                m_hash =
                  Option.map (fun (m : burned_meta) -> m.hash) meta_opt;
                m_timestamp = timestamp;
              }
            in
            t.migrations <- t.migrations @ [ m ];
            t.heated.(spare_logical) <- t.heated.(line);
            (* The line reads from fresh medium now: forget its error
               history, keep the new home's manufacturing defects. *)
            Health.reset_line t.health ~line
              ~defect_dots:t.defects_of_phys.(spare);
            let finish r =
              update_state t;
              notify_mutation t
                ~pba:(Layout.hash_block_of_line t.layout line)
                ~n:bpl;
              notify_mutation t
                ~pba:(Layout.hash_block_of_line t.layout spare_logical)
                ~n:bpl;
              r
            in
            match meta_opt with
            | None ->
                t.heated.(line) <- false;
                finish (Ok m)
            | Some (meta : burned_meta) ->
                (* 4: re-attest — burn the original hash and metadata at
                   the new write-once area and verify the burn. *)
                let payload =
                  wo_payload ~hash:meta.hash ~line
                    ~n_data:meta.n_data_blocks ~timestamp:meta.timestamp
                in
                let attempts =
                  1
                  + if t.config.ras.ras_enabled then t.config.ras.max_repulses
                    else 0
                in
                let rec go n =
                  burn_wo_area t ~start:(wo_start t ~line) ~payload;
                  match read_hash_block t ~line with
                  | `Burned got when Hash.Sha256.equal got.hash meta.hash ->
                      t.heated.(line) <- true;
                      finish (Ok m)
                  | (`Not_heated | `Torn _) when n < attempts ->
                      t.repulses <- t.repulses + 1;
                      go (n + 1)
                  | _ ->
                      t.reattest_failures <- t.reattest_failures + 1;
                      finish (Error Reattest_failed)
                in
                go 1
          in
          match wo with
          | `Not_heated -> proceed None
          | `Burned meta ->
              (* The evidence chain must survive the move: the data just
                 read has to reproduce the burned hash before the copy
                 is allowed to supersede it. *)
              let computed = line_hash_of_payloads ~line payloads in
              if
                meta.line = line && Hash.Sha256.equal computed meta.hash
              then proceed (Some meta)
              else begin
                t.reattest_failures <- t.reattest_failures + 1;
                Error Reattest_failed
              end
          | `Torn _ | `Tampered _ ->
              t.reattest_failures <- t.reattest_failures + 1;
              Error Reattest_failed)

let line_margin t ~line = Health.margin t.health ~line

let line_due t ~line =
  t.config.endurance.health_enabled
  && line < Layout.usable_lines t.layout
  && (not (t.retired.(t.phys_line.(line))))
  && Health.margin t.health ~line <= t.config.endurance.retire_margin

let next_due t =
  if not t.config.endurance.health_enabled then None
  else
    match
      Health.weakest ~limit:(Layout.usable_lines t.layout) t.health
    with
    | Some (line, margin)
      when margin <= t.config.endurance.retire_margin
           && not t.retired.(t.phys_line.(line)) ->
        Some line
    | _ -> None

(* One maintenance sweep: evacuate every due line, weakest first, while
   spares last.  A line whose evacuation fails (tamper-evident source,
   unreadable blocks) is skipped rather than blocking the rest.
   Returns the performed migrations in order. *)
let maintenance t ?(timestamp = 0.) () =
  let ms =
    if not t.config.endurance.health_enabled then []
    else begin
      let due =
        Health.lines_at_or_below
          ~limit:(Layout.usable_lines t.layout)
          t.health t.config.endurance.retire_margin
        |> List.filter (fun line -> not t.retired.(t.phys_line.(line)))
        |> List.sort (fun a b ->
               compare
                 (Health.margin t.health ~line:a, a)
                 (Health.margin t.health ~line:b, b))
      in
      List.filter_map
        (fun line ->
          match evacuate_line t ~line ~timestamp () with
          | Ok m -> Some m
          | Error _ -> None)
        due
    end
  in
  update_state t;
  ms

(* {1 Raw attacker surface} *)

(* The splicing attacker of Section 5.1 knows the WO format and can
   compute hashes; forging a plausible burned area anywhere is within
   the threat model.  Only the physical-address discipline defeats it. *)
let unsafe_forge_burn t ~hash_pba ~data_pbas ~claim_line =
  let payloads =
    List.filter_map
      (fun pba ->
        match read_block t ~pba with
        | Ok payload -> Some (pba, payload)
        | Error _ -> None)
      data_pbas
  in
  let hash = line_hash_of_payloads ~line:claim_line payloads in
  let payload =
    wo_payload ~hash ~line:claim_line ~n_data:(List.length payloads)
      ~timestamp:0.
  in
  burn_wo_area t ~start:(Layout.block_first_dot t.layout hash_pba) ~payload;
  notify_mutation t ~pba:hash_pba ~n:1

let unsafe_heat_dots t ~dot ~n =
  let pattern = Array.make n true in
  Probe.Pdevice.heat_run t.pdevice ~start:dot pattern;
  let first = dot / Layout.block_dots in
  let last = min (t.config.n_blocks - 1) ((dot + n - 1) / Layout.block_dots) in
  notify_mutation t ~pba:first ~n:(last - first + 1)

let unsafe_magnetic_wipe t =
  let medium = Probe.Pdevice.medium t.pdevice in
  let n = Pmedia.Medium.size medium in
  for i = 0 to n - 1 do
    match Pmedia.Medium.get medium i with
    | Pmedia.Dot.Heated -> () (* no perpendicular axis left to erase *)
    | Pmedia.Dot.Magnetised _ ->
        Pmedia.Medium.set medium i (Pmedia.Dot.Magnetised Pmedia.Dot.Down)
  done;
  notify_mutation t ~pba:0 ~n:t.config.n_blocks

let refresh_heated_cache t =
  let medium = Probe.Pdevice.medium t.pdevice in
  for line = 0 to Layout.n_lines t.layout - 1 do
    let start = wo_start t ~line in
    let heated_dots =
      Pmedia.Medium.count_heated_run medium ~start ~len:Layout.wo_area_dots
    in
    (* A legitimately burned area has exactly one heated dot per cell,
       i.e. half the area; anything substantial counts as heated. *)
    t.heated.(line) <- 4 * heated_dots >= Layout.wo_area_dots
  done

(* {1 Image persistence hooks} *)

let restore_endurance t ~phys_line ~spare_pool ~migrations ~state =
  let n_lines = Layout.n_lines t.layout in
  if Array.length phys_line <> n_lines then
    invalid_arg "Device.restore_endurance: remap table arity mismatch";
  Array.blit phys_line 0 t.phys_line 0 n_lines;
  Array.iteri (fun l p -> t.log_of_phys.(p) <- l) t.phys_line;
  Array.fill t.retired 0 n_lines false;
  List.iter (fun m -> t.retired.(m.m_from) <- true) migrations;
  t.spare_pool <- spare_pool;
  t.migrations <- migrations;
  t.line_retirements <- List.length migrations;
  t.dstate <- state
