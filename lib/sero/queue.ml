type prio = Foreground | Background

let pp_prio ppf = function
  | Foreground -> Format.pp_print_string ppf "fg"
  | Background -> Format.pp_print_string ppf "bg"

(* A request's scheduling key is the scan offset of its first dot —
   the same key E19 feeds to [Sched.order], so measured service order
   is directly comparable to the estimator. *)
type kind =
  | KRead of { pba : int; k : (string, Device.read_error) result -> unit }
  | KOther of { exec : unit -> unit -> unit }
      (** [exec ()] performs the device operation immediately (the sled
          is committed) and returns the completion thunk that fires the
          caller's callback later. *)

type req = {
  kind : kind;
  rprio : prio;
  tenant : int;
  offset : int;
  submitted : float;
  mutable attempts : int;
      (* Service attempts so far; bounded by [read_retry_limit]. *)
}

type arbiter_view = { av_tenant : int; av_backlog : int; av_oldest : float }

(* What a service pass produced for one request: [Done] fires the
   caller's callback at completion; [Retryable] is a failed read whose
   callback is only fired if the retry budget is spent. *)
type outcome = Done of (unit -> unit) | Retryable of (unit -> unit)

type class_stats = {
  latency : Sim.Stats.t;
  wait : Sim.Stats.t;
  mutable energy : float;
  mutable completed : int;
  mutable last_completion : float;
}

(* Per-tenant service ledger.  Service and energy are charged when the
   sled pass runs (a group is single-tenant, see [dispatch]), so an
   installed arbiter sees the work a tenant has consumed *before* it
   chooses the next one — the property fair-share needs. *)
type tenant_stats = {
  mutable t_completed : int;
  mutable t_service : float;
  mutable t_energy : float;
}

type t = {
  des : Sim.Des.t;
  dev : Device.t;
  policy : Probe.Sched.policy;
  coalesce : bool;
  max_span : int;
  read_retry_limit : int;
  retry_backoff : float;
  watchdog_age : float;
  mutable pending_fg : req list; (* newest first *)
  mutable pending_bg : req list; (* newest first *)
  mutable busy : bool;
  mutable dispatch_armed : bool;
  mutable current_offset : int;
  fg : class_stats;
  bg : class_stats;
  mutable arbiter : (arbiter_view list -> int) option;
  by_tenant : (int, tenant_stats) Hashtbl.t;
  service : Sim.Stats.t;
  depth_hist : Sim.Stats.Histogram.h;
  mutable served_rev : int list;
  mutable coalesced : int;
  mutable retry_pending : int;
      (* Retries scheduled on the DES but not yet re-enqueued: [idle]
         must see them or [drain] stops with the request in flight. *)
  mutable retried_reads : int;
  mutable abandoned_reads : int;
  mutable watchdog_trips : int;
}

let class_stats_create name =
  {
    latency = Sim.Stats.create ~name:(name ^ " latency") ();
    wait = Sim.Stats.create ~name:(name ^ " wait") ();
    energy = 0.;
    completed = 0;
    last_completion = 0.;
  }

let create ?(policy = Probe.Sched.Elevator) ?(coalesce = true) ?(max_span = 8)
    ?(read_retry_limit = 0) ?(retry_backoff = 1e-4)
    ?(watchdog_age = infinity) des dev =
  if max_span < 1 then invalid_arg "Queue.create: max_span must be >= 1";
  if read_retry_limit < 0 then
    invalid_arg "Queue.create: read_retry_limit must be >= 0";
  if retry_backoff <= 0. then
    invalid_arg "Queue.create: retry_backoff must be positive";
  {
    des;
    dev;
    policy;
    coalesce;
    max_span;
    read_retry_limit;
    retry_backoff;
    watchdog_age;
    pending_fg = [];
    pending_bg = [];
    busy = false;
    dispatch_armed = false;
    current_offset = 0;
    fg = class_stats_create "fg";
    bg = class_stats_create "bg";
    arbiter = None;
    by_tenant = Hashtbl.create 8;
    service = Sim.Stats.create ~name:"service" ();
    depth_hist = Sim.Stats.Histogram.create ~lo:0. ~hi:64. ~bins:16;
    served_rev = [];
    coalesced = 0;
    retry_pending = 0;
    retried_reads = 0;
    abandoned_reads = 0;
    watchdog_trips = 0;
  }

let device t = t.dev
let des t = t.des
let policy t = t.policy
let stats_of t = function Foreground -> t.fg | Background -> t.bg
let set_arbiter t a = t.arbiter <- a

let tenant_stats_of t tenant =
  match Hashtbl.find_opt t.by_tenant tenant with
  | Some ts -> ts
  | None ->
      let ts = { t_completed = 0; t_service = 0.; t_energy = 0. } in
      Hashtbl.add t.by_tenant tenant ts;
      ts

let tenants t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.by_tenant [])

let tenant_completed t tenant =
  match Hashtbl.find_opt t.by_tenant tenant with
  | Some ts -> ts.t_completed
  | None -> 0

let tenant_service t tenant =
  match Hashtbl.find_opt t.by_tenant tenant with
  | Some ts -> ts.t_service
  | None -> 0.

let tenant_energy t tenant =
  match Hashtbl.find_opt t.by_tenant tenant with
  | Some ts -> ts.t_energy
  | None -> 0.
let pending t = List.length t.pending_fg + List.length t.pending_bg
let idle t =
  (not t.busy) && t.retry_pending = 0 && t.pending_fg = []
  && t.pending_bg = []

let offset_of_pba t pba =
  snd
    (Probe.Tips.locate
       (Probe.Pdevice.tips (Device.pdevice t.dev))
       (Layout.block_first_dot (Device.layout t.dev) pba))

let offset_of_line t line =
  offset_of_pba t (Layout.hash_block_of_line (Device.layout t.dev) line)

(* Remove the first (oldest) pending request of [prio] whose offset is
   [off] (and, when [tenant] is given, whose tenant matches); [pend] is
   stored newest-first, so "oldest with that offset" is the last
   matching element. *)
let take_oldest_at ?tenant t prio off =
  let pend =
    match prio with Foreground -> t.pending_fg | Background -> t.pending_bg
  in
  let wanted r =
    r.offset = off
    && match tenant with None -> true | Some tid -> r.tenant = tid
  in
  let taken = ref None in
  let rest =
    (* Walk oldest-first, take the first match, keep the rest. *)
    List.fold_left
      (fun acc r ->
        if !taken = None && wanted r then begin
          taken := Some r;
          acc
        end
        else r :: acc)
      [] (List.rev pend)
  in
  match !taken with
  | None -> None
  | Some r ->
      (match prio with
      | Foreground -> t.pending_fg <- rest
      | Background -> t.pending_bg <- rest);
      Some r

(* Arbiter views: one per tenant with pending work in the class, sorted
   by tenant id so the arbiter's input (and thus every downstream
   decision) is deterministic. *)
let views_of pend =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.tenant with
      | None ->
          Hashtbl.add tbl r.tenant
            { av_tenant = r.tenant; av_backlog = 1; av_oldest = r.submitted }
      | Some v ->
          Hashtbl.replace tbl r.tenant
            {
              v with
              av_backlog = v.av_backlog + 1;
              av_oldest = min v.av_oldest r.submitted;
            })
    pend;
  List.sort
    (fun a b -> compare a.av_tenant b.av_tenant)
    (Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

(* Serve one group: execute the device operations now (they move the
   sled and charge the ledger), then schedule a completion event after
   the measured service time that fires the callbacks and re-arms the
   dispatcher. *)
let rec serve_group t group =
  let pd = Device.pdevice t.dev in
  let t0 = Probe.Pdevice.elapsed pd and e0 = Probe.Pdevice.energy pd in
  let read_outcome k r =
    match r with
    | Ok _ -> Done (fun () -> k r)
    | Error _ -> Retryable (fun () -> k r)
  in
  let outcomes =
    match group with
    | [ { kind = KOther { exec }; _ } ] -> [ Done (exec ()) ]
    | [ { kind = KRead { pba; k }; _ } ] ->
        [ read_outcome k (Device.read_block t.dev ~pba) ]
    | { kind = KRead { pba = first; _ }; _ } :: _ ->
        let results =
          Device.read_blocks t.dev ~pba:first ~n:(List.length group)
        in
        List.mapi
          (fun i r ->
            match r.kind with
            | KRead { k; _ } -> read_outcome k results.(i)
            | KOther _ -> assert false)
          group
    | _ -> assert false
  in
  let dt = Probe.Pdevice.elapsed pd -. t0
  and de = Probe.Pdevice.energy pd -. e0 in
  Sim.Stats.add t.service dt;
  (* Groups are single-tenant (coalescing never crosses tenants), so
     the whole pass is charged to the head's tenant — immediately, not
     at completion, so a fair-share arbiter sees it next dispatch. *)
  (let ts = tenant_stats_of t (List.hd group).tenant in
   ts.t_service <- ts.t_service +. dt;
   ts.t_energy <- ts.t_energy +. de);
  t.coalesced <- t.coalesced + List.length group - 1;
  List.iter
    (fun r ->
      t.served_rev <- r.offset :: t.served_rev;
      t.current_offset <- r.offset)
    group;
  let started = Sim.Des.now t.des in
  Sim.Des.schedule t.des ~delay:dt (fun des ->
      let now = Sim.Des.now des in
      let complete r fire =
        let cs = stats_of t r.rprio in
        Sim.Stats.add cs.latency (now -. r.submitted);
        Sim.Stats.add cs.wait (started -. r.submitted);
        cs.energy <- cs.energy +. (de /. float_of_int (List.length group));
        cs.completed <- cs.completed + 1;
        cs.last_completion <- now;
        (tenant_stats_of t r.tenant).t_completed <-
          (tenant_stats_of t r.tenant).t_completed + 1;
        if now -. r.submitted > t.watchdog_age then
          t.watchdog_trips <- t.watchdog_trips + 1;
        fire ()
      in
      List.iter2
        (fun r outcome ->
          match outcome with
          | Done fire -> complete r fire
          | Retryable fire ->
              if r.attempts < t.read_retry_limit then begin
                (* Deterministic exponential backoff off the DES clock:
                   backoff * 2^(attempt-1), original submit time kept so
                   latency and the watchdog see the whole ordeal. *)
                r.attempts <- r.attempts + 1;
                t.retried_reads <- t.retried_reads + 1;
                let delay =
                  t.retry_backoff *. (2. ** float_of_int (r.attempts - 1))
                in
                t.retry_pending <- t.retry_pending + 1;
                Sim.Des.schedule des ~delay (fun _ ->
                    t.retry_pending <- t.retry_pending - 1;
                    enqueue t r)
              end
              else begin
                t.abandoned_reads <-
                  t.abandoned_reads + (if t.read_retry_limit > 0 then 1 else 0);
                complete r fire
              end)
        group outcomes;
      t.busy <- false;
      arm_dispatch t)

(* Pick the next group to serve: the head of [Sched.order] over the
   pending offsets of the preferred class, restarted from the sled's
   current offset.  Re-running the policy on every dispatch reproduces
   the full-batch order head by head (greedy Sstf stays greedy, the
   elevator keeps sweeping from wherever it is, Fifo sees arrival
   order), so the concatenated service log of a settled batch equals
   one [Sched.order] call over it — the property the conformance test
   asserts. *)
and dispatch t =
  if t.busy then ()
  else
    let prio =
      if t.pending_fg <> [] then Some Foreground
      else if t.pending_bg <> [] then Some Background
      else None
    in
    match prio with
    | None -> ()
    | Some prio ->
        let pend =
          match prio with
          | Foreground -> t.pending_fg
          | Background -> t.pending_bg
        in
        (* With an arbiter installed, the tenant is chosen first (fair
           share across tenants), then the sled policy orders that
           tenant's requests only.  Without one, dispatch is
           tenant-blind — bit-identical to the pre-tenant pipeline. *)
        let tenant_filter =
          match t.arbiter with
          | None -> None
          | Some choose -> (
              match views_of pend with
              | [] -> None
              | [ v ] -> Some v.av_tenant
              | vs ->
                  let pick = choose vs in
                  if List.exists (fun v -> v.av_tenant = pick) vs then
                    Some pick
                  else Some (List.hd vs).av_tenant)
        in
        let eligible =
          match tenant_filter with
          | None -> pend
          | Some tid -> List.filter (fun r -> r.tenant = tid) pend
        in
        let offsets = List.rev_map (fun r -> r.offset) eligible in
        let ordered =
          Probe.Sched.order t.policy ~current:t.current_offset offsets
        in
        let head_off = List.hd ordered in
        let head =
          match take_oldest_at ?tenant:tenant_filter t prio head_off with
          | Some r -> r
          | None -> assert false
        in
        (* Coalesce: absorb follow-up reads that are both next in the
           policy's order and physically consecutive, so the group is a
           prefix of the service order and one sled pass covers it. *)
        let group =
          match head.kind with
          | KOther _ -> [ head ]
          | KRead { pba = first; _ } when t.coalesce ->
              let rec absorb acc last_pba = function
                | _ when List.length acc >= t.max_span -> acc
                | [] -> acc
                | off :: rest -> (
                    let next_pba = last_pba + 1 in
                    if
                      next_pba >= (Device.config t.dev).Device.n_blocks
                      || off <> offset_of_pba t next_pba
                    then acc
                    else
                      (* Only absorb an actual pending read of that PBA. *)
                      (* Never absorb across tenants: the pass is
                         charged to one tenant's ledger, and a fair
                         share must not smuggle another tenant's work
                         into it. *)
                      let matches r =
                        match r.kind with
                        | KRead { pba; _ } ->
                            pba = next_pba && r.offset = off
                            && r.tenant = head.tenant
                        | KOther _ -> false
                      in
                      let pend_now =
                        match prio with
                        | Foreground -> t.pending_fg
                        | Background -> t.pending_bg
                      in
                      match
                        List.exists matches (List.rev pend_now)
                      with
                      | false -> acc
                      | true ->
                          let oldest =
                            List.find matches (List.rev pend_now)
                          in
                          (* The offset head of the remaining order must
                             be this request; remove it from pending. *)
                          let rest_pend =
                            let removed = ref false in
                            List.filter
                              (fun r ->
                                if (not !removed) && r == oldest then begin
                                  removed := true;
                                  false
                                end
                                else true)
                              pend_now
                          in
                          (match prio with
                          | Foreground -> t.pending_fg <- rest_pend
                          | Background -> t.pending_bg <- rest_pend);
                          absorb (acc @ [ oldest ]) next_pba rest)
              in
              absorb [ head ] first (List.tl ordered)
          | KRead _ -> [ head ]
        in
        t.busy <- true;
        serve_group t group

and arm_dispatch t =
  if (not t.dispatch_armed) && not t.busy then begin
    t.dispatch_armed <- true;
    Sim.Des.schedule t.des ~delay:0. (fun _ ->
        t.dispatch_armed <- false;
        dispatch t)
  end

and enqueue t r =
  (match r.rprio with
  | Foreground -> t.pending_fg <- r :: t.pending_fg
  | Background -> t.pending_bg <- r :: t.pending_bg);
  Sim.Stats.Histogram.add t.depth_hist
    (float_of_int (pending t + (if t.busy then 1 else 0)));
  arm_dispatch t

let submit_read t ?(prio = Foreground) ?(tenant = 0) ~pba k =
  enqueue t
    {
      kind = KRead { pba; k };
      rprio = prio;
      tenant;
      offset = offset_of_pba t pba;
      submitted = Sim.Des.now t.des;
      attempts = 1;
    }

let submit_other t prio tenant offset exec =
  enqueue t
    {
      kind = KOther { exec };
      rprio = prio;
      tenant;
      offset;
      submitted = Sim.Des.now t.des;
      attempts = 1;
    }

let submit_write t ?(prio = Foreground) ?(tenant = 0) ~pba payload k =
  submit_other t prio tenant (offset_of_pba t pba) (fun () ->
      let r = Device.write_block t.dev ~pba payload in
      fun () -> k r)

let submit_write_span t ?(prio = Foreground) ?(tenant = 0) ~pba payloads k =
  let n = Array.length payloads in
  if n = 0 then invalid_arg "Queue.submit_write_span: empty span";
  if pba < 0 || pba + n > (Device.config t.dev).Device.n_blocks then
    invalid_arg "Queue.submit_write_span: PBA range out of bounds";
  (* One request, one sled pass: the span is a single non-preemptive
     service group, so a write-behind flush of n consecutive dirty
     blocks costs one queue slot instead of n. *)
  submit_other t prio tenant (offset_of_pba t pba) (fun () ->
      let rs =
        Array.mapi (fun i p -> Device.write_block t.dev ~pba:(pba + i) p)
          payloads
      in
      t.coalesced <- t.coalesced + (n - 1);
      fun () -> k rs)

let submit_heat_line t ?(prio = Foreground) ?(tenant = 0) ~line ?timestamp k =
  let timestamp =
    match timestamp with Some ts -> ts | None -> Sim.Des.now t.des
  in
  submit_other t prio tenant (offset_of_line t line) (fun () ->
      let r = Device.heat_line t.dev ~line ~timestamp () in
      fun () -> k r)

let submit_erb t ?(prio = Foreground) ?(tenant = 0) ~line k =
  submit_other t prio tenant (offset_of_line t line) (fun () ->
      let r = Device.read_hash_block t.dev ~line in
      fun () -> k r)

let submit_scrub_line t ?(prio = Background) ?config prog ~line k =
  submit_other t prio 0 (offset_of_line t line) (fun () ->
      Scrub.add_remapped prog (Device.service_failed_tips t.dev);
      Scrub.sweep_line ?config t.dev prog ~line;
      k)

let submit_verify_line t ?(prio = Background) ?(tenant = 0) ~line k =
  submit_other t prio tenant (offset_of_line t line) (fun () ->
      let v = Device.verify_line t.dev ~line in
      fun () -> k v)

let schedule_scrub ?config ?planner t ~period ~stop =
  let prog = Scrub.progress_create () in
  let planner =
    match planner with Some p -> p | None -> Scrub.planner t.dev
  in
  let outstanding = ref false in
  let rec arm () =
    Sim.Des.schedule t.des ~delay:period (fun _ ->
        if not (stop ()) then begin
          if not !outstanding then begin
            outstanding := true;
            submit_scrub_line t ?config prog ~line:(Scrub.planner_next planner)
              (fun () -> outstanding := false)
          end;
          arm ()
        end)
  in
  arm ();
  prog

let submit_migrate t ?(prio = Background) ~line ?timestamp k =
  submit_other t prio 0 (offset_of_line t line) (fun () ->
      let timestamp =
        match timestamp with Some ts -> ts | None -> Sim.Des.now t.des
      in
      let r = Device.evacuate_line t.dev ~line ~timestamp () in
      fun () -> k r)

let schedule_migration t ~period ~stop =
  let migrated = ref [] in
  let outstanding = ref false in
  let rec arm () =
    Sim.Des.schedule t.des ~delay:period (fun _ ->
        if not (stop ()) then begin
          (if not !outstanding then
             match Device.next_due t.dev with
             | None -> ()
             | Some line ->
                 outstanding := true;
                 submit_migrate t ~line (fun r ->
                     (match r with
                     | Ok m -> migrated := m :: !migrated
                     | Error _ -> ());
                     outstanding := false));
          arm ()
        end)
  in
  arm ();
  migrated

let drain t =
  while not (idle t) do
    if not (Sim.Des.step t.des) then
      failwith "Sero.Queue.drain: pending requests but no scheduled event"
  done

let await t done_flag =
  while not !done_flag do
    if not (Sim.Des.step t.des) then
      failwith "Sero.Queue: awaited request cannot complete (empty DES)"
  done

let read_block ?prio ?tenant t ~pba =
  let cell = ref None and fin = ref false in
  submit_read t ?prio ?tenant ~pba (fun r ->
      cell := Some r;
      fin := true);
  await t fin;
  Option.get !cell

let write_block ?prio ?tenant t ~pba payload =
  let cell = ref None and fin = ref false in
  submit_write t ?prio ?tenant ~pba payload (fun r ->
      cell := Some r;
      fin := true);
  await t fin;
  Option.get !cell

let write_span ?prio ?tenant t ~pba payloads =
  let cell = ref None and fin = ref false in
  submit_write_span t ?prio ?tenant ~pba payloads (fun r ->
      cell := Some r;
      fin := true);
  await t fin;
  Option.get !cell

let heat_line ?tenant t ~line ?timestamp () =
  let cell = ref None and fin = ref false in
  submit_heat_line t ?tenant ~line ?timestamp (fun r ->
      cell := Some r;
      fin := true);
  await t fin;
  Option.get !cell

let latency t prio = (stats_of t prio).latency
let wait t prio = (stats_of t prio).wait
let service t = t.service
let energy_spent t prio = (stats_of t prio).energy
let completed t prio = (stats_of t prio).completed
let last_completion t prio = (stats_of t prio).last_completion
let depth_histogram t = t.depth_hist
let served_offsets t = List.rev t.served_rev
let coalesced_requests t = t.coalesced
let retried_reads t = t.retried_reads
let abandoned_reads t = t.abandoned_reads
let watchdog_trips t = t.watchdog_trips

let pp_summary ppf t =
  let pc prio =
    let cs = stats_of t prio in
    let p50, p95, p99 = Sim.Stats.quantiles cs.latency in
    Format.fprintf ppf
      "  %a: %d done, lat p50=%.4g p95=%.4g p99=%.4g s, wait mean=%.4g s, \
       %.3g J@."
      pp_prio prio cs.completed p50 p95 p99 (Sim.Stats.mean cs.wait) cs.energy
  in
  Format.fprintf ppf "queue [%a]: %d pending, %d coalesced, service mean=%.4g s@."
    Probe.Sched.pp_policy t.policy (pending t) t.coalesced
    (Sim.Stats.mean t.service);
  if t.read_retry_limit > 0 || t.watchdog_trips > 0 then
    Format.fprintf ppf
      "  retries: %d re-served, %d abandoned, %d watchdog trips@."
      t.retried_reads t.abandoned_reads t.watchdog_trips;
  pc Foreground;
  pc Background;
  match tenants t with
  | [] | [ 0 ] -> ()
  | ts ->
      List.iter
        (fun tid ->
          Format.fprintf ppf "  tenant %d: %d done, service %.4g s, %.3g J@."
            tid (tenant_completed t tid) (tenant_service t tid)
            (tenant_energy t tid))
        ts
