(** The four low-level bit operations of Section 3.

    - [mrb] — magnetic read: direction of a magnetised dot; a heated dot
      "would yield a more or less random result" (its perpendicular
      stray field is gone, the channel thresholds noise), so the result
      is a coin flip from the medium's PRNG.
    - [mwb] — magnetic write: sets the direction; silently ineffective
      on a heated dot (no perpendicular axis remains).
    - [ewb] — electrical write: heats the dot, destroying it
      irreversibly; may collaterally heat neighbours with the
      probability given by the thermal model.
    - [erb] — electrical read, {e built out of} magnetic reads and
      writes as the paper's 5-step atomic sequence: read, write inverse,
      verify inverse, write back, verify original.  Any failed
      verification means the dot no longer holds out-of-plane data.

    Every operation increments the per-medium counters, from which the
    device layer derives simulated time and energy; [erb] costs exactly
    5 primitive operations per cycle, which is where the paper's
    "at least 5 times slower than mrb" comes from. *)

type counters = {
  mutable mrb : int;
  mutable mwb : int;
  mutable ewb : int;
  mutable erb : int;  (** erb {e sequences}, not primitive ops. *)
  mutable collateral : int;  (** Neighbour dots destroyed by ewb pulses. *)
}

type ctx
(** A medium together with its counters and thermal write profile. *)

val make :
  ?profile:Physics.Thermal.profile ->
  ?read_ber:float ->
  Medium.t ->
  ctx
(** [profile] defaults to {!Physics.Thermal.default_profile} of the
    medium's geometry; [read_ber] is the raw magnetic-read error
    probability on healthy dots (default 0 — sector-level ECC is
    exercised separately with fault injection). *)

val clone : ctx -> Medium.t -> ctx
(** [clone ctx medium'] is a context over [medium'] (normally
    [Medium.clone (medium ctx)]) with the same physics and a private
    copy of the counters.  A live fault injector is never inherited —
    injector position state is the parent's history — so the clone's
    [fault] is [None] until the caller installs a fresh one. *)

val medium : ctx -> Medium.t
val counters : ctx -> counters
val reset_counters : ctx -> unit
val profile : ctx -> Physics.Thermal.profile

val fault : ctx -> Fault.Injector.t option
val set_fault : ctx -> Fault.Injector.t option -> unit
(** Install (or remove) a fault injector.  With one installed, every
    primitive op ticks the injector first (so a configured power cut
    raises {!Fault.Injector.Power_cut} {e before} the op touches the
    medium); mrb results pass through the stuck-dot and bit-flip
    filters; ewb pulses may be underpowered and leave their dot
    magnetic.  [None] (the default) restores fault-free behaviour. *)

val mrb : ctx -> int -> Dot.direction
val mwb : ctx -> int -> Dot.direction -> unit
val ewb : ctx -> int -> unit

val erb : ?cycles:int -> ctx -> int -> bool
(** [erb ctx i] is [true] iff the dot is detected as heated.  [cycles]
    (default 1) repeats the invert/verify round: a heated dot passes one
    round by luck with probability 1/4 (both random reads agreeing), so
    callers that must not miss heated dots escalate the cycle count.
    A magnetised dot always comes back with its original data restored. *)

val primitive_ops : counters -> int
(** Total mrb + mwb operations issued, counting the ones inside erb —
    the denominator for op-cost accounting. *)

(** {1 Run kernels}

    Bulk mrb/mwb/erb over a run of consecutive dot addresses, with
    counters charged in bulk.  Each kernel takes a fast, allocation-free
    path only when that is semantically invisible — no fault injector
    installed, [read_ber = 0], and (for the read kernels) the run
    provably defect-free per {!Medium.run_defect_free} — and otherwise
    falls back to a per-dot loop over the scalar ops, so fault and RAS
    semantics are bit-identical either way.  The fast paths reproduce
    the scalar path's PRNG draws (heated-dot coin flips, heated-dot erb
    protocol reads) in the exact same order from the medium's PRNG. *)

val mrb_run :
  ctx -> start:int -> len:int -> dst:bool array -> dst_pos:int -> unit
(** Magnetic read of dots [start, start+len) into [dst.(dst_pos ..)],
    [true] = Up; equivalent to [len] calls of {!mrb} piped through
    {!Dot.to_bool}. *)

val read_fast_available : ctx -> start:int -> len:int -> bool
(** Whether the read kernels' fast path is available over the run: no
    injector, [read_ber = 0], and the run defect-free.  Lets callers
    that must not charge anything before committing (see
    {!mrb_run_packed}) test the guards up front. *)

val mrb_run_packed :
  ctx -> start:int -> len:int -> dst:Bytes.t -> dst_pos:int -> bool
(** Magnetic read of an 8-dot-aligned run straight into packed bytes:
    dot [start + 8b + j] lands in bit [7 - j] of [dst.(dst_pos + b)]
    (MSB-first, the sector image order), skipping the intermediate bool
    array entirely.  Only available on the fast path: returns [false]
    — having charged nothing and drawn nothing — when [start] or [len]
    is not a multiple of 8 or {!mrb_run}'s fast-path guards fail, and
    the caller must fall back to {!mrb_run} plus packing.  When it runs
    it is bit- and draw-identical to that fallback. *)

val mwb_run :
  ctx -> start:int -> len:int -> src:bool array -> src_pos:int -> unit
(** Magnetic write of [src.(src_pos ..)] over the run; equivalent to
    [len] calls of {!mwb} via {!Dot.of_bool} (heated dots ignore the
    write). *)

val mwb_run_packed :
  ctx -> start:int -> len:int -> src:Bytes.t -> src_pos:int -> bool
(** Magnetic write of an 8-dot-aligned run straight from packed bytes
    (bit [7 - j] of [src.(src_pos + b)] → dot [start + 8b + j], the
    inverse of {!mrb_run_packed}'s layout).  Returns [false] — having
    touched nothing — when [start] or [len] is not a multiple of 8 or a
    fault injector is installed; the caller falls back to {!mwb_run}.
    When it runs it leaves the medium, counters and PRNG exactly as
    that fallback would (heated dots ignore the write on both paths,
    and mwb never draws randomness). *)

val erb_run :
  ?cycles:int ->
  ctx ->
  start:int ->
  len:int ->
  dst:bool array ->
  dst_pos:int ->
  unit
(** Electrical read of the run; [dst.(dst_pos + k)] is [true] iff dot
    [start + k] is detected heated.  Equivalent to [len] calls of
    {!erb}. *)
